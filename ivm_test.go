package dcdatalog

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/queries"
	"repro/internal/storage"
)

// TestRelationReturnsCopy is the aliasing regression test: mutating the
// slice (or the tuples) returned by Database.Relation must not corrupt
// the stored relation.
func TestRelationReturnsCopy(t *testing.T) {
	db := newTCDB(t)
	got := db.Relation("arc")
	if len(got) != 3 {
		t.Fatalf("arc has %d tuples", len(got))
	}
	got[0][0] = storage.IntVal(99)
	got = append(got[:0], got[2:]...)
	again := db.Relation("arc")
	if len(again) != 3 {
		t.Fatalf("stored relation shrank to %d tuples after caller append", len(again))
	}
	if again[0][0] == storage.IntVal(99) {
		t.Fatal("caller write through Relation() corrupted stored tuple")
	}
	res, err := db.Query(tcProgram)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len("tc") != 6 {
		t.Fatalf("tc = %d rows after aliasing attempt, want 6", res.Len("tc"))
	}
}

// TestPartialInvalidation proves single-relation mutations drop only
// that relation's memoized indexes: after mutating one of two
// relations, re-running a two-relation query serves the untouched
// relation's index from cache (hits grow, misses only for the mutated
// relation).
func TestPartialInvalidation(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("arc", Col("x", Int), Col("y", Int))
	db.MustDeclare("lbl", Col("x", Int), Col("l", Int))
	db.MustLoad("arc", [][]any{{1, 2}, {2, 3}, {3, 4}})
	db.MustLoad("lbl", [][]any{{2, 20}, {3, 30}, {4, 40}})
	src := `
		r(X, Y) :- arc(X, Y).
		r(X, Y) :- r(X, Z), arc(Z, Y).
		out(X, L) :- r(X, Y), lbl(Y, L).
	`
	if _, err := db.Query(src); err != nil {
		t.Fatal(err)
	}
	warm := db.BaseStats()
	if warm.Misses == 0 {
		t.Fatalf("first run built no indexes: %+v", warm)
	}

	// Mutate ONLY arc; lbl's indexes must survive the rebase.
	if err := db.Insert("arc", [][]any{{4, 5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(src); err != nil {
		t.Fatal(err)
	}
	after := db.BaseStats()
	if after.Hits <= warm.Hits {
		t.Fatalf("no cache hits after single-relation mutation: %+v -> %+v", warm, after)
	}
	// arc changed, so at least one rebuild; but fewer than the cold run.
	rebuilds := after.Misses - warm.Misses
	if rebuilds == 0 {
		t.Fatalf("mutated relation's index was not rebuilt: %+v -> %+v", warm, after)
	}
	if rebuilds >= warm.Misses {
		t.Fatalf("mutation rebuilt every index (%d of %d), per-relation invalidation broken", rebuilds, warm.Misses)
	}
}

// ivmStream describes how the differential fuzzer mutates one query's
// EDB relations.
type ivmStream struct {
	q      queries.Query
	opts   []Option
	gen    func(rng *rand.Rand) map[string][]Tuple
	mut    func(rng *rand.Rand, rel *storage.Schema, live []Tuple) (Tuple, bool)
	rounds int
}

func intTuple(vals ...int64) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = storage.IntVal(v)
	}
	return t
}

// randomEdges makes n random (x, y) pairs over [0, nodes).
func randomEdges(rng *rand.Rand, n, nodes int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		out[i] = intTuple(rng.Int63n(int64(nodes)), rng.Int63n(int64(nodes)))
	}
	return out
}

// sortedDecoded sorts decoded rows by their integer columns (every
// benchmark query's output is unique on them).
func sortedDecoded(rows [][]any) [][]any {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			av, aInt := a[k].(int64)
			bv, bInt := b[k].(int64)
			if !aInt || !bInt {
				continue
			}
			if av != bv {
				return av < bv
			}
		}
		return false
	})
	return rows
}

func rowsEqual(a, b [][]any) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d rows vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			switch av := a[i][j].(type) {
			case float64:
				bv, ok := b[i][j].(float64)
				if !ok {
					return fmt.Errorf("row %d col %d: type mismatch", i, j)
				}
				if diff := math.Abs(av - bv); diff > 1e-6*math.Max(1, math.Abs(av)) {
					return fmt.Errorf("row %d col %d: %v vs %v", i, j, av, bv)
				}
			default:
				if a[i][j] != b[i][j] {
					return fmt.Errorf("row %d: %v vs %v", i, a[i], b[i])
				}
			}
		}
	}
	return nil
}

// TestViewStreamDifferential fuzzes insert/delete streams under every
// benchmark query × strategy and checks after each refresh that the
// maintained view equals a cold recompute of the same program over the
// database's current relations. TC and SG exercise the incremental
// delta pipeline; the aggregate and non-linear queries pin the
// fallback-to-recompute path.
func TestViewStreamDifferential(t *testing.T) {
	defaultGen := func(edges string) func(*rand.Rand) map[string][]Tuple {
		return func(rng *rand.Rand) map[string][]Tuple {
			return map[string][]Tuple{edges: randomEdges(rng, 36, 18)}
		}
	}
	edgeMut := func(rng *rand.Rand, sch *storage.Schema, live []Tuple) (Tuple, bool) {
		if rng.Intn(2) == 0 && len(live) > 0 {
			return live[rng.Intn(len(live))], true
		}
		t := make(Tuple, sch.Arity())
		for i := range t {
			t[i] = storage.IntVal(rng.Int63n(18))
		}
		if sch.Name == "warc" {
			t[2] = storage.IntVal(1 + rng.Int63n(9))
		}
		return t, false
	}

	streams := []ivmStream{
		{q: queries.TC(), gen: defaultGen("arc"), mut: edgeMut, rounds: 8},
		{q: queries.SG(), gen: defaultGen("arc"), mut: edgeMut, rounds: 6},
		{q: queries.CC(), gen: defaultGen("arc"), mut: edgeMut, rounds: 4},
		{
			q: queries.APSP(),
			gen: func(rng *rand.Rand) map[string][]Tuple {
				edges := make([]Tuple, 24)
				for i := range edges {
					edges[i] = intTuple(rng.Int63n(12), rng.Int63n(12), 1+rng.Int63n(9))
				}
				return map[string][]Tuple{"warc": edges}
			},
			mut: edgeMut, rounds: 4,
		},
		{
			q:    queries.SSSP(),
			opts: []Option{WithParam("start", 0)},
			gen: func(rng *rand.Rand) map[string][]Tuple {
				edges := make([]Tuple, 30)
				for i := range edges {
					edges[i] = intTuple(rng.Int63n(15), rng.Int63n(15), 1+rng.Int63n(9))
				}
				return map[string][]Tuple{"warc": edges}
			},
			mut: edgeMut, rounds: 4,
		},
		{
			q:    queries.PR(),
			opts: []Option{WithParam("alpha", 0.85), WithParam("vnum", 12)},
			gen: func(rng *rand.Rand) map[string][]Tuple {
				rows := make([]Tuple, 24)
				for i := range rows {
					rows[i] = Tuple{
						storage.IntVal(rng.Int63n(12)), storage.IntVal(rng.Int63n(12)),
						storage.FloatVal(2),
					}
				}
				return map[string][]Tuple{"matrix": rows}
			},
			mut: func(rng *rand.Rand, sch *storage.Schema, live []Tuple) (Tuple, bool) {
				if rng.Intn(2) == 0 && len(live) > 0 {
					return live[rng.Intn(len(live))], true
				}
				return Tuple{
					storage.IntVal(rng.Int63n(12)), storage.IntVal(rng.Int63n(12)),
					storage.FloatVal(2),
				}, false
			},
			rounds: 3,
		},
		{
			q: queries.Attend(),
			gen: func(rng *rand.Rand) map[string][]Tuple {
				friends := make([]Tuple, 40)
				for i := range friends {
					friends[i] = intTuple(rng.Int63n(10), rng.Int63n(10))
				}
				return map[string][]Tuple{
					"organizer": {intTuple(0), intTuple(1), intTuple(2)},
					"friend":    friends,
				}
			},
			mut: edgeMut, rounds: 4,
		},
		{
			q: queries.Delivery(),
			gen: func(rng *rand.Rand) map[string][]Tuple {
				basic := make([]Tuple, 8)
				for i := range basic {
					basic[i] = intTuple(int64(i), 1+rng.Int63n(20))
				}
				assbl := make([]Tuple, 16)
				for i := range assbl {
					// Parts only assemble lower-numbered subparts: acyclic.
					p := 1 + rng.Int63n(11)
					assbl[i] = intTuple(p+4, rng.Int63n(p))
				}
				return map[string][]Tuple{"basic": basic, "assbl": assbl}
			},
			mut: func(rng *rand.Rand, sch *storage.Schema, live []Tuple) (Tuple, bool) {
				if rng.Intn(2) == 0 && len(live) > 0 {
					return live[rng.Intn(len(live))], true
				}
				if sch.Name == "basic" {
					return intTuple(rng.Int63n(8), 1+rng.Int63n(20)), false
				}
				p := 1 + rng.Int63n(11)
				return intTuple(p+4, rng.Int63n(p)), false
			},
			rounds: 4,
		},
	}

	for _, s := range streams {
		for _, strat := range []Strategy{Global, SSP, DWS} {
			s, strat := s, strat
			t.Run(fmt.Sprintf("%s/strat%d", s.q.Name, strat), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(7 + strat)))
				db := NewDatabase()
				for _, sch := range s.q.EDB {
					if err := db.DeclareSchema(sch); err != nil {
						t.Fatal(err)
					}
				}
				for rel, tuples := range s.gen(rng) {
					if err := db.LoadTuples(rel, tuples); err != nil {
						t.Fatal(err)
					}
				}
				opts := append([]Option{
					WithWorkers(3), WithStrategy(strat), WithBatchSize(8),
					WithCrossover(0.95),
				}, s.opts...)
				v, err := db.Materialize("v", s.q.Source, opts...)
				if err != nil {
					t.Fatal(err)
				}
				incremental := false
				for round := 0; round < s.rounds; round++ {
					for _, sch := range s.q.EDB {
						n := 1 + rng.Intn(3)
						for i := 0; i < n; i++ {
							tup, del := s.mut(rng, sch, db.Relation(sch.Name))
							var err error
							if del {
								err = db.DeleteTuples(sch.Name, []Tuple{tup})
							} else {
								err = db.InsertTuples(sch.Name, []Tuple{tup})
							}
							if err != nil {
								t.Fatal(err)
							}
						}
					}
					st, err := v.Refresh(context.Background())
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if st.Mode == "incremental" {
						incremental = true
					}
					cold, err := db.Query(s.q.Source, opts...)
					if err != nil {
						t.Fatalf("round %d cold: %v", round, err)
					}
					got := sortedDecoded(v.Rows(s.q.Output))
					want := sortedDecoded(cold.Rows(s.q.Output))
					if err := rowsEqual(got, want); err != nil {
						t.Fatalf("round %d (%s): view diverged from cold recompute: %v",
							round, st.Mode, err)
					}
				}
				if (s.q.Name == "TC" || s.q.Name == "SG") && !incremental {
					t.Fatal("no refresh exercised the incremental path")
				}
				if s.q.Name != "TC" && s.q.Name != "SG" {
					if r := v.Stats().Ineligible; r == "" {
						t.Fatalf("%s unexpectedly eligible for incremental maintenance", s.q.Name)
					}
				}
			})
		}
	}
}

// TestViewRefreshCancellation cancels a refresh mid-flight and checks
// the view recovers on the next refresh without leaking goroutines.
func TestViewRefreshCancellation(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("arc", Col("x", Int), Col("y", Int))
	var edges []Tuple
	for i := int64(0); i < 400; i++ {
		edges = append(edges, intTuple(i, i+1))
	}
	if err := db.LoadTuples("arc", edges); err != nil {
		t.Fatal(err)
	}
	v, err := db.Materialize("tc", tcProgram, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	if err := db.InsertTuples("arc", []Tuple{intTuple(401, 0)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	if _, err := v.Refresh(ctx); err == nil {
		t.Fatal("refresh survived an expired deadline")
	}
	if !v.Stats().Stale {
		t.Fatal("view not marked stale after canceled refresh")
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutine leak after canceled refresh: %d > %d", n, base)
	}

	st, err := v.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "full" {
		t.Fatalf("recovery mode = %s, want full", st.Mode)
	}
	cold, err := db.Query(tcProgram)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(v.Relation("tc")), cold.Len("tc"); got != want {
		t.Fatalf("recovered view has %d tc rows, cold recompute %d", got, want)
	}
}
