// Command datagen writes the paper's synthetic datasets as TSV files:
//
//	datagen -kind rmat -n 10000 -o rmat10k.tsv
//	datagen -kind gnp -n 10000 -m 100000 -o g10k.tsv
//	datagen -kind hub -n 10000 -m 100000 -skew 1.3 -o hub10k.tsv
//	datagen -kind tree -height 11 -o tree11.tsv
//	datagen -kind ntree -n 300000 -o n300k          # writes .assbl/.basic
//	datagen -kind livejournal -scale 0.001 -o lj.tsv
//
// Add -weights 100 to attach uniform edge weights, -undirect to double
// every edge. Add -updates 1000 -insfrac 0.6 to also emit an
// insert/delete stream over the generated graph as <out>.updates, one
// op per line: a "+" or "-" field followed by the edge's columns.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/storage"
)

func main() {
	if err := mainErr(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func mainErr() error {
	kind := flag.String("kind", "rmat", "rmat, gnp, hub, tree, ntree, livejournal, orkut, arabic, twitter")
	n := flag.Int64("n", 10000, "vertex count (rmat/gnp/hub/ntree)")
	m := flag.Int("m", 0, "edge count (gnp/hub; rmat defaults to 10n)")
	height := flag.Int("height", 11, "tree height")
	scale := flag.Float64("scale", 0.001, "scale for real-graph stand-ins")
	skew := flag.Float64("skew", 1.3, "Zipf exponent for the hub-skewed generator (hub)")
	seed := flag.Int64("seed", 42, "generator seed")
	weights := flag.Int64("weights", 0, "attach uniform weights in [1,w]")
	undirect := flag.Bool("undirect", false, "emit both edge directions")
	source := flag.Bool("source", false, "also print the graph's hub vertex (highest out-degree), the deterministic source for bound point queries")
	updates := flag.Int("updates", 0, "also emit an insert/delete stream of this many ops as <out>.updates")
	insFrac := flag.Float64("insfrac", 0.5, "insertion fraction of the update stream")
	out := flag.String("o", "", "output file (required)")
	flag.Parse()

	if *out == "" {
		return fmt.Errorf("-o is required")
	}

	if *kind == "ntree" {
		bom := datasets.NTree(*n, *seed)
		if err := writeTuples(*out+".assbl", bom.Assbl); err != nil {
			return err
		}
		if err := writeTuples(*out+".basic", bom.Basic); err != nil {
			return err
		}
		fmt.Printf("wrote %s.assbl (%d rows) and %s.basic (%d rows), %d parts\n",
			*out, len(bom.Assbl), *out, len(bom.Basic), bom.Parts)
		return nil
	}

	var edges []datasets.Edge
	switch *kind {
	case "rmat":
		mm := *m
		if mm == 0 {
			mm = int(10 * *n)
		}
		edges = datasets.RMAT(*n, mm, *seed)
	case "gnp":
		mm := *m
		if mm == 0 {
			mm = int(float64(*n) * float64(*n) * 0.001)
		}
		edges = datasets.Gnp(*n, mm, *seed)
	case "hub":
		mm := *m
		if mm == 0 {
			mm = int(10 * *n)
		}
		edges = datasets.Hub(*n, mm, *skew, *seed)
	case "tree":
		edges = datasets.Tree(*height, 2, 6, *seed)
	case "livejournal":
		edges = datasets.LiveJournalLike(*scale).Generate(*seed)
	case "orkut":
		edges = datasets.OrkutLike(*scale).Generate(*seed)
	case "arabic":
		edges = datasets.ArabicLike(*scale).Generate(*seed)
	case "twitter":
		edges = datasets.TwitterLike(*scale).Generate(*seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if *undirect {
		edges = datasets.Undirect(edges)
	}

	var tuples []storage.Tuple
	if *weights > 0 {
		tuples = datasets.WEdgeTuples(datasets.Weight(edges, *weights, *seed))
	} else {
		tuples = datasets.EdgeTuples(edges)
	}
	if err := writeTuples(*out, tuples); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", *out, len(tuples))
	if *source {
		fmt.Printf("source %d\n", datasets.HubVertex(edges))
	}

	if *updates > 0 {
		if *weights > 0 {
			return fmt.Errorf("-updates does not support weighted output")
		}
		// Hub graphs keep their source skew in the stream; everything
		// else inserts uniformly. The vertex space is whatever the
		// generator actually produced (tree and real-graph kinds don't
		// take -n).
		exp := 0.0
		if *kind == "hub" {
			exp = *skew
		}
		vspace := int64(2)
		for _, e := range edges {
			if e.Src >= vspace {
				vspace = e.Src + 1
			}
			if e.Dst >= vspace {
				vspace = e.Dst + 1
			}
		}
		ops := datasets.UpdateStream(edges, vspace, *updates, *insFrac, exp, *seed+1)
		if err := writeUpdates(*out+".updates", ops); err != nil {
			return err
		}
		fmt.Printf("wrote %s.updates (%d ops, %.0f%% inserts)\n", *out, len(ops), 100**insFrac)
	}
	return nil
}

func writeUpdates(path string, ops []datasets.UpdateOp) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, op := range ops {
		sign := "+"
		if op.Delete {
			sign = "-"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\n", sign, op.Edge.Src, op.Edge.Dst)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTuples(path string, tuples []storage.Tuple) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, t := range tuples {
		for i, v := range t {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprint(w, v.Int())
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
