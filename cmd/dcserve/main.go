// Command dcserve runs the Datalog engine as a long-lived HTTP query
// service: datasets are loaded once (at startup or over HTTP) and
// shared read-only across queries, programs are compiled once and
// cached, and concurrent evaluations are multiplexed over a bounded
// machine-wide worker budget with 429 backpressure on overload.
//
//	dcserve -addr :8080 -dataset graph/arc:int,int=edges.tsv
//
//	curl -X POST localhost:8080/v1/query -d '{
//	  "dataset": "graph",
//	  "program": "tc(X,Y) :- arc(X,Y). tc(X,Y) :- tc(X,Z), arc(Z,Y).",
//	  "relations": ["tc"], "limit": 10
//	}'
//
// Endpoints: POST /v1/datasets, POST /v1/query, GET /healthz,
// GET /metrics (Prometheus text format). SIGINT/SIGTERM drains
// gracefully: in-flight queries finish (their deadlines still apply),
// new ones get 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	if err := mainErr(); err != nil {
		fmt.Fprintln(os.Stderr, "dcserve:", err)
		os.Exit(1)
	}
}

func mainErr() error {
	var datasets listFlag
	addr := flag.String("addr", ":8080", "listen address")
	flag.Var(&datasets, "dataset", "dataset relation spec ds/rel:type,...=file.tsv (repeatable; relations with the same ds form one dataset)")
	budget := flag.Int("worker-budget", 0, "machine-wide worker-slot budget (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 16, "admission queue bound before 429s")
	maxWorkers := flag.Int("max-workers-per-query", 0, "per-query worker clamp (0 = budget)")
	defTimeout := flag.Duration("default-timeout", 30*time.Second, "query deadline when the request sets none")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "hard cap on requested query deadlines")
	cacheSize := flag.Int("cache", 128, "prepared-program cache entries")
	maxTuples := flag.Int64("max-tuples", 0, "default per-stratum tuple budget (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	srv := server.New(server.Config{
		WorkerBudget:       *budget,
		MaxQueue:           *maxQueue,
		MaxWorkersPerQuery: *maxWorkers,
		DefaultTimeout:     *defTimeout,
		MaxTimeout:         *maxTimeout,
		CacheSize:          *cacheSize,
		DefaultMaxTuples:   *maxTuples,
	})
	if err := loadDatasets(srv, datasets); err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		log.Printf("dcserve: listening on %s (datasets: %s)", *addr, strings.Join(srv.Registry().Names(), ", "))
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("dcserve: %s — draining (budget %s)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("dcserve: %v — forcing shutdown", err)
	}
	// Shutdown stops the listener and waits for handler returns; after
	// Drain that is immediate unless the drain budget ran out, in
	// which case the remaining request contexts are canceled and
	// RunContext aborts them mid-fixpoint.
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Print("dcserve: drained, bye")
	return nil
}

// loadDatasets groups -dataset specs ("ds/rel:types=file") by dataset
// name and registers each group as one frozen dataset.
func loadDatasets(srv *server.Server, specs []string) error {
	grouped := make(map[string][]server.RelationSpec)
	var order []string
	for _, spec := range specs {
		dsName, rest, ok := strings.Cut(spec, "/")
		if !ok {
			return fmt.Errorf("bad -dataset %q (want ds/rel:types=file)", spec)
		}
		decl, path, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf("bad -dataset %q (missing =file)", spec)
		}
		relName, typesStr, ok := strings.Cut(decl, ":")
		if !ok {
			return fmt.Errorf("bad -dataset %q (missing :types)", spec)
		}
		if _, seen := grouped[dsName]; !seen {
			order = append(order, dsName)
		}
		grouped[dsName] = append(grouped[dsName], server.RelationSpec{
			Name:  relName,
			Types: strings.Split(typesStr, ","),
			Path:  path,
		})
	}
	for _, dsName := range order {
		ds, err := server.BuildDataset(dsName, grouped[dsName])
		if err != nil {
			return err
		}
		if err := srv.Registry().Register(ds); err != nil {
			return err
		}
		log.Printf("dcserve: dataset %q loaded: %s", dsName, strings.Join(ds.Relations(), ", "))
	}
	return nil
}
