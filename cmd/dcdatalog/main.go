// Command dcdatalog evaluates a Datalog program against TSV relations:
//
//	dcdatalog -program tc.dl -rel arc:int,int=edges.tsv -out tc
//	dcdatalog -program sssp.dl -rel warc:int,int,int=w.tsv -param start=1 -out results
//
// Relations are declared inline as name:type,... and loaded from
// whitespace-separated files; -explain prints the plan instead of
// running.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	dcdatalog "repro"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	if err := mainErr(); err != nil {
		fmt.Fprintln(os.Stderr, "dcdatalog:", err)
		os.Exit(1)
	}
}

func mainErr() error {
	var rels, params listFlag
	program := flag.String("program", "", "path to the .dl program (required)")
	flag.Var(&rels, "rel", "relation spec name:type,...=file.tsv (repeatable)")
	flag.Var(&params, "param", "query parameter name=value (repeatable)")
	out := flag.String("out", "", "relation to print (default: all derived)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	strategy := flag.String("strategy", "dws", "coordination strategy: dws, ssp, global")
	explain := flag.Bool("explain", false, "print the evaluation plan and exit")
	stats := flag.Bool("stats", false, "print execution statistics")
	limit := flag.Int("limit", 0, "print at most this many rows per relation (0 = all)")
	timeout := flag.Duration("timeout", 0, "abort evaluation after this duration, e.g. 30s (0 = no limit)")
	maxTuples := flag.Int64("max-tuples", 0, "per-stratum derived-tuple budget; truncated results are printed with a warning (0 = no limit)")
	flag.Parse()

	if *program == "" {
		return fmt.Errorf("-program is required")
	}
	srcBytes, err := os.ReadFile(*program)
	if err != nil {
		return err
	}

	db := dcdatalog.NewDatabase()
	for _, spec := range rels {
		if err := loadRel(db, spec); err != nil {
			return err
		}
	}

	opts := []dcdatalog.Option{}
	if *workers > 0 {
		opts = append(opts, dcdatalog.WithWorkers(*workers))
	}
	if *maxTuples > 0 {
		opts = append(opts, dcdatalog.WithMaxTuples(*maxTuples))
	}
	switch *strategy {
	case "dws":
	case "ssp":
		opts = append(opts, dcdatalog.WithStrategy(dcdatalog.SSP))
	case "global":
		opts = append(opts, dcdatalog.WithStrategy(dcdatalog.Global))
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	for _, p := range params {
		name, val, ok := strings.Cut(p, "=")
		if !ok {
			return fmt.Errorf("bad -param %q (want name=value)", p)
		}
		if i, err := strconv.ParseInt(val, 10, 64); err == nil {
			opts = append(opts, dcdatalog.WithParam(name, i))
		} else if f, err := strconv.ParseFloat(val, 64); err == nil {
			opts = append(opts, dcdatalog.WithParam(name, f))
		} else {
			opts = append(opts, dcdatalog.WithParam(name, val))
		}
	}

	if *explain {
		plan, err := db.Explain(string(srcBytes), opts...)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := db.QueryContext(ctx, string(srcBytes), opts...)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("evaluation exceeded -timeout %s: %w", *timeout, err)
	case errors.Is(err, dcdatalog.ErrBudgetExceeded):
		// Truncated but usable: warn on stderr, then print the
		// partial rows like a normal result.
		fmt.Fprintln(os.Stderr, "dcdatalog: warning:", err)
	case err != nil:
		return err
	}
	printRel := func(name string) {
		rows := res.Rows(name)
		fmt.Printf("%% %s: %d tuples\n", name, len(rows))
		n := len(rows)
		if *limit > 0 && n > *limit {
			n = *limit
		}
		for _, r := range rows[:n] {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = fmt.Sprint(v)
			}
			fmt.Println(strings.Join(parts, "\t"))
		}
		if n < len(rows) {
			fmt.Printf("%% ... %d more\n", len(rows)-n)
		}
	}
	if *out != "" {
		printRel(*out)
	} else {
		st := res.Stats()
		var names []string
		for _, s := range st.Strata {
			names = append(names, s.Preds...)
		}
		sort.Strings(names)
		for _, n := range names {
			printRel(n)
		}
	}
	if *stats {
		st := res.Stats()
		fmt.Printf("%% workers=%d strategy=%s time=%s iters=%d\n",
			st.Workers, st.Strategy, st.Duration, st.TotalIters())
	}
	return nil
}

// loadRel parses "name:int,int=path" and loads the file.
func loadRel(db *dcdatalog.Database, spec string) error {
	decl, path, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("bad -rel %q (want name:types=file)", spec)
	}
	name, typesStr, ok := strings.Cut(decl, ":")
	if !ok {
		return fmt.Errorf("bad -rel %q (missing :types)", spec)
	}
	var cols []dcdatalog.Column
	for i, ts := range strings.Split(typesStr, ",") {
		var t dcdatalog.Type
		switch strings.TrimSpace(ts) {
		case "int":
			t = dcdatalog.Int
		case "float":
			t = dcdatalog.Float
		case "sym", "string":
			t = dcdatalog.Sym
		default:
			return fmt.Errorf("bad column type %q in %q", ts, spec)
		}
		cols = append(cols, dcdatalog.Col(fmt.Sprintf("c%d", i), t))
	}
	if err := db.Declare(name, cols...); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.LoadTSV(name, f)
}
