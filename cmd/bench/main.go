// Command bench regenerates the paper's tables and figures on scaled
// datasets:
//
//	bench -exp all            # everything
//	bench -exp table2         # one experiment
//	bench -exp fig9a -workers 8 -scale 2
//	bench -exp table2 -cpuprofile cpu.out -mutexprofile mtx.out
//	bench -setup              # cold vs warm setup time (prepared base)
//
// Experiments: table2, table3, table4, fig1, fig3, fig8, fig9a, fig9b,
// probes (tag-reject / key-skip / Bloom-skip rates on the tracking suite),
// steal (morsel scheduler on vs off: time, busy-time imbalance, steal
// counters on the tracking suite incl. the hub-skewed cell), ivm
// (materialized-view incremental refresh vs full recompute across
// delta sizes on the TC tracking cell), demand (magic-set rewrite on
// vs off on the bound point-query cells, interleaved A/B).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the exit code out so the profile-writing defers run;
// os.Exit in main would discard them.
func realMain() int {
	exp := flag.String("exp", "all", "experiment to run: all, table2, table3, table4, fig1, fig3, fig8, fig9a, fig9b, probes, steal, ivm, demand")
	scale := flag.Float64("scale", 1, "dataset scale multiplier")
	workers := flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS, min 4)")
	seed := flag.Int64("seed", 42, "generator seed")
	benchjson := flag.String("benchjson", "", "run the fixed tracking suite (TC, CC, SSSP, SG, hub-skewed CC at 1/4/8/16 workers) and write JSON to this file ('-' = stdout)")
	nosteal := flag.Bool("nosteal", false, "disable morsel work stealing in the tracking suite (A/B against the default)")
	setup := flag.Bool("setup", false, "measure cold vs warm setup time (prepared-base index cache) over the tracking suite")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	mutexfrac := flag.Int("mutexfrac", 5, "mutex profiling sample rate (1 in N contention events; 0 disables)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(*mutexfrac)
		defer func() {
			f, err := os.Create(*mutexprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable objects out of the live set
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := bench.Config{Scale: *scale, Workers: *workers, Seed: *seed, NoSteal: *nosteal}

	if *setup {
		bench.SetupReport(cfg).Render(os.Stdout)
		return 0
	}

	if *benchjson != "" {
		points := bench.Trajectory(cfg)
		out := os.Stdout
		if *benchjson != "-" {
			f, err := os.Create(*benchjson)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteTrajectoryJSON(out, points); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	runners := map[string]func() []*bench.Table{
		"table2": func() []*bench.Table { return []*bench.Table{bench.Table2(cfg)} },
		"table3": func() []*bench.Table { return []*bench.Table{bench.Table3(cfg)} },
		"table4": func() []*bench.Table { return []*bench.Table{bench.Table4(cfg)} },
		"fig1":   func() []*bench.Table { return []*bench.Table{bench.Figure1(cfg)} },
		"fig3":   func() []*bench.Table { return []*bench.Table{bench.Figure3()} },
		"fig8":   func() []*bench.Table { return []*bench.Table{bench.Figure8(cfg)} },
		"fig9a":  func() []*bench.Table { return bench.Figure9a(cfg) },
		"fig9b":  func() []*bench.Table { return []*bench.Table{bench.Figure9b(cfg)} },
		"probes": func() []*bench.Table { return []*bench.Table{bench.ProbeReport(cfg)} },
		"steal":  func() []*bench.Table { return []*bench.Table{bench.StealReport(cfg)} },
		"ivm":    func() []*bench.Table { return []*bench.Table{bench.IvmReport(cfg)} },
		"demand": func() []*bench.Table { return []*bench.Table{bench.DemandReport(cfg)} },
	}
	order := []string{"fig3", "fig1", "table2", "table3", "table4", "fig8", "fig9a", "fig9b", "probes", "steal", "ivm", "demand"}

	var selected []string
	switch *exp {
	case "all":
		selected = order
	default:
		for _, name := range strings.Split(*exp, ",") {
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (choose from %s)\n", name, strings.Join(order, ", "))
				return 2
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		for _, t := range runners[name]() {
			t.Render(os.Stdout)
		}
	}
	return 0
}
