package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	dcdatalog "repro"
	"repro/internal/rewrite"
)

// Config sizes the service.
type Config struct {
	// WorkerBudget is the machine-wide worker-slot budget shared by
	// all concurrent queries; 0 uses GOMAXPROCS.
	WorkerBudget int
	// MaxQueue bounds the admission queue; beyond it queries are
	// rejected with 429. Default 16; negative means no queue at all
	// (reject the moment the budget is exhausted).
	MaxQueue int
	// MaxWorkersPerQuery clamps any single query's worker request;
	// 0 means the full budget.
	MaxWorkersPerQuery int
	// DefaultWorkersPerQuery is used when a request doesn't ask;
	// 0 means min(4, budget).
	DefaultWorkersPerQuery int
	// DefaultTimeout bounds queries that don't set one. Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout. Default 5m.
	MaxTimeout time.Duration
	// CacheSize bounds the prepared-program LRU. Default 128.
	CacheSize int
	// DefaultMaxTuples is the per-stratum tuple budget applied when a
	// request doesn't set one; 0 leaves evaluation unbounded (the
	// timeout is then the only guard against divergence).
	DefaultMaxTuples int64
}

func (c Config) withDefaults() Config {
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.MaxWorkersPerQuery <= 0 || c.MaxWorkersPerQuery > c.WorkerBudget {
		c.MaxWorkersPerQuery = c.WorkerBudget
	}
	if c.DefaultWorkersPerQuery <= 0 {
		c.DefaultWorkersPerQuery = 4
	}
	if c.DefaultWorkersPerQuery > c.MaxWorkersPerQuery {
		c.DefaultWorkersPerQuery = c.MaxWorkersPerQuery
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	return c
}

// Server is the long-lived query service: a dataset registry, a
// prepared-program cache, an admission controller and the HTTP
// surface (POST /v1/datasets, POST /v1/query, GET /healthz,
// GET /metrics).
type Server struct {
	cfg      Config
	registry *Registry
	cache    *preparedCache
	adm      *Admission
	metrics  Metrics
	mux      *http.ServeMux

	draining atomic.Bool
	inflight atomic.Int64
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(),
		cache:    newPreparedCache(cfg.CacheSize),
		adm:      NewAdmission(cfg.WorkerBudget, cfg.MaxQueue),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/mutate", s.handleMutate)
	s.mux.HandleFunc("POST /v1/views", s.handleCreateView)
	s.mux.HandleFunc("GET /v1/views", s.handleListViews)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Registry exposes the dataset registry (startup loading, tests).
func (s *Server) Registry() *Registry { return s.registry }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admitting queries (healthz flips to draining, query
// returns 503) and waits until every in-flight query has finished or
// ctx expires. In-flight queries keep running to completion — their
// own deadlines still apply — which is the graceful half of graceful
// shutdown; the caller typically pairs Drain with http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for {
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d queries still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// Inflight reports the number of queries currently executing.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// datasetRequest registers one named dataset in a single atomic call.
type datasetRequest struct {
	Name      string         `json:"name"`
	Relations []RelationSpec `json:"relations"`
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req datasetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad dataset request: %v", err)
		return
	}
	ds, err := BuildDataset(req.Name, req.Relations)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.registry.Register(ds); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"dataset":   ds.Name,
		"relations": ds.Relations(),
	})
}

// queryRequest is one evaluation request against a registered dataset.
type queryRequest struct {
	// Dataset names a registered dataset.
	Dataset string `json:"dataset"`
	// Program is the Datalog source.
	Program string `json:"program"`
	// Params binds $parameters (JSON numbers become int64 when
	// integral, float64 otherwise; strings stay strings).
	Params map[string]any `json:"params,omitempty"`
	// Workers requests a parallelism level (clamped by the server).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds evaluation wall time (capped by MaxTimeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxTuples overrides the server's default per-stratum budget.
	MaxTuples int64 `json:"max_tuples,omitempty"`
	// Relations selects which derived relations to return (default:
	// all).
	Relations []string `json:"relations,omitempty"`
	// Limit caps rows returned per relation (counts stay exact).
	Limit int `json:"limit,omitempty"`
}

type queryResponse struct {
	Relations map[string][][]any `json:"relations"`
	Counts    map[string]int     `json:"counts"`
	Stats     queryStats         `json:"stats"`
	Cached    bool               `json:"cached"`
	Truncated bool               `json:"truncated,omitempty"`
	Error     string             `json:"error,omitempty"`
}

type queryStats struct {
	DurationMS float64 `json:"duration_ms"`
	// SetupMS is the pre-evaluation cost (base registration + index
	// attach/build). Warm queries against the dataset's prepared base
	// report near-zero here; the first query per lookup signature pays
	// the build.
	SetupMS    float64 `json:"setup_ms"`
	Workers    int     `json:"workers"`
	Iterations int64   `json:"iterations"`
	Tuples     int     `json:"tuples"`
}

// decodeParams converts JSON param values into the Go types WithParam
// accepts, using json.Number to keep int64s exact.
func decodeParams(raw map[string]any) (map[string]any, error) {
	out := make(map[string]any, len(raw))
	for k, v := range raw {
		switch x := v.(type) {
		case json.Number:
			if i, err := strconv.ParseInt(x.String(), 10, 64); err == nil {
				out[k] = i
			} else if f, err := x.Float64(); err == nil {
				out[k] = f
			} else {
				return nil, fmt.Errorf("param %q: bad number %q", k, x.String())
			}
		case string:
			out[k] = x
		default:
			return nil, fmt.Errorf("param %q: unsupported type %T", k, v)
		}
	}
	return out, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Count the whole handler as in-flight (including admission
	// queueing), so Drain cannot declare the server idle while a
	// queued query is about to start executing.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	var req queryRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	if req.Program == "" {
		httpError(w, http.StatusBadRequest, "query needs a program")
		return
	}
	ds, ok := s.registry.Get(req.Dataset)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	params, err := decodeParams(req.Params)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Per-query deadline, capped by policy, anchored before admission
	// so time spent queueing counts against the client's budget.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Admission: claim worker slots or shed load.
	want := req.Workers
	if want <= 0 {
		want = s.cfg.DefaultWorkersPerQuery
	}
	if want > s.cfg.MaxWorkersPerQuery {
		want = s.cfg.MaxWorkersPerQuery
	}
	granted, release, err := s.adm.Acquire(ctx, want)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.Rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		s.metrics.QueriesCanceled.Add(1)
		httpError(w, http.StatusGatewayTimeout, "timed out in admission queue: %v", err)
		return
	}
	defer release()

	// Compile once per (dataset, program, params); reuse forever.
	key := cacheKey(req.Dataset, req.Program, params)
	prep, cached := s.cache.get(key)
	if !cached {
		opts := make([]dcdatalog.Option, 0, len(params))
		for k, v := range params {
			opts = append(opts, dcdatalog.WithParam(k, v))
		}
		prep, err = ds.DB().Prepare(req.Program, opts...)
		if err != nil {
			s.metrics.QueriesFailed.Add(1)
			httpError(w, http.StatusBadRequest, "compile: %v", err)
			return
		}
		s.cache.put(key, prep)
	}

	maxTuples := s.cfg.DefaultMaxTuples
	if req.MaxTuples > 0 {
		maxTuples = req.MaxTuples
	}
	execOpts := []dcdatalog.Option{dcdatalog.WithWorkers(granted)}
	if maxTuples > 0 {
		execOpts = append(execOpts, dcdatalog.WithMaxTuples(maxTuples))
	}

	start := time.Now()
	res, err := prep.Exec(ctx, execOpts...)
	elapsed := time.Since(start)

	truncated := false
	switch {
	case errors.Is(err, dcdatalog.ErrBudgetExceeded):
		truncated = true // res is the partial result; fall through
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.QueriesCanceled.Add(1)
		httpError(w, http.StatusGatewayTimeout, "query exceeded its %s deadline", timeout)
		return
	case errors.Is(err, context.Canceled):
		s.metrics.QueriesCanceled.Add(1)
		// 499: client closed request (nginx convention) — the client
		// is usually gone, but write a body for proxies that aren't.
		httpError(w, 499, "query canceled: %v", err)
		return
	case err != nil:
		s.metrics.QueriesFailed.Add(1)
		httpError(w, http.StatusInternalServerError, "execution: %v", err)
		return
	}

	// Collect requested relations (default: every derived relation).
	stats := res.Stats()
	names := req.Relations
	if len(names) == 0 {
		for _, st := range stats.Strata {
			for _, p := range st.Preds {
				// Magic predicates are rewrite plumbing (the demanded
				// binding sets), not part of the program the client wrote.
				if rewrite.IsMagic(p) {
					continue
				}
				names = append(names, p)
			}
		}
	}
	resp := queryResponse{
		Relations: make(map[string][][]any, len(names)),
		Counts:    make(map[string]int, len(names)),
		Cached:    cached,
		Truncated: truncated,
	}
	if truncated {
		resp.Error = err.Error()
	}
	total := 0
	for _, name := range names {
		rows := res.Rows(name)
		resp.Counts[name] = len(rows)
		total += len(rows)
		if req.Limit > 0 && len(rows) > req.Limit {
			rows = rows[:req.Limit]
		}
		resp.Relations[name] = rows
	}
	resp.Stats = queryStats{
		DurationMS: float64(elapsed.Nanoseconds()) / 1e6,
		SetupMS:    float64(stats.SetupDuration.Nanoseconds()) / 1e6,
		Workers:    granted,
		Iterations: stats.TotalIters(),
		Tuples:     total,
	}

	if truncated {
		s.metrics.QueriesTruncated.Add(1)
	} else {
		s.metrics.QueriesOK.Add(1)
	}
	s.metrics.LatencyNanos.Add(elapsed.Nanoseconds())
	s.metrics.LatencyCount.Add(1)
	s.metrics.Iterations.Add(stats.TotalIters())
	s.metrics.TuplesOut.Add(int64(total))
	s.metrics.ProbeTagProbes.Add(stats.Probe.TagProbes)
	s.metrics.ProbeTagRejects.Add(stats.Probe.TagRejects)
	s.metrics.ProbeKeyCompares.Add(stats.Probe.KeyCompares)
	s.metrics.ProbeKeySkips.Add(stats.Probe.KeySkips)
	s.metrics.ProbeBloomChecks.Add(stats.Probe.BloomChecks)
	s.metrics.ProbeBloomSkips.Add(stats.Probe.BloomSkips)
	s.metrics.StealMorsels.Add(stats.Steal.MorselsExecuted)
	s.metrics.StealStolen.Add(stats.Steal.MorselsStolen)
	s.metrics.StealAttempts.Add(stats.Steal.Attempts)
	s.metrics.StealFailures.Add(stats.Steal.Failures)
	s.metrics.SetupSeconds.Observe(stats.SetupDuration)
	if res.DemandRewritten() {
		s.metrics.DemandRewrites.Add(1)
	}
	if est, actual := res.DemandCardinalities(); est > 0 {
		s.metrics.DemandEstTuples.Add(est)
		s.metrics.DemandActualTuples.Add(actual)
	}

	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"datasets": s.registry.Names(),
		"inflight": s.inflight.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, entries := s.cache.stats()
	base := s.registry.BaseStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w,
		[]counter{
			{"dcserve_edb_index_cache_hits_total", "Base-relation index requests served from a dataset's prepared base.", base.Hits},
			{"dcserve_edb_index_cache_misses_total", "Base-relation index requests that performed a build.", base.Misses},
		},
		gauge{"dcserve_queue_depth", "Queries waiting for admission.", int64(s.adm.QueueDepth())},
		gauge{"dcserve_workers_in_use", "Worker slots currently granted.", int64(s.adm.InUse())},
		gauge{"dcserve_worker_budget", "Total worker-slot budget.", int64(s.adm.Budget())},
		gauge{"dcserve_inflight", "Queries currently executing.", s.inflight.Load()},
		gauge{"dcserve_prepared_cache_hits_total", "Prepared-program cache hits.", hits},
		gauge{"dcserve_prepared_cache_misses_total", "Prepared-program cache misses.", misses},
		gauge{"dcserve_prepared_cache_entries", "Prepared programs cached.", int64(entries)},
		gauge{"dcserve_edb_indexes_resident", "Distinct base-relation indexes cached across datasets.", int64(base.Indexes)},
		gauge{"dcserve_datasets", "Registered datasets.", int64(s.registry.Len())},
	)
}
