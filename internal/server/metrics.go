package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics aggregates per-query counters; everything is an atomic so
// the query path never takes a lock for accounting. Gauges (queue
// depth, in-flight, cache entries) are read from their owners at
// scrape time instead of being mirrored here.
type Metrics struct {
	QueriesOK        atomic.Int64 // completed with a full fixpoint
	QueriesTruncated atomic.Int64 // completed but budget-capped
	QueriesCanceled  atomic.Int64 // deadline or client disconnect
	QueriesFailed    atomic.Int64 // compile or execution errors
	Rejected         atomic.Int64 // 429s from admission

	LatencyNanos atomic.Int64 // summed over completed queries
	LatencyCount atomic.Int64
	Iterations   atomic.Int64 // local iterations, summed
	TuplesOut    atomic.Int64 // derived tuples returned, summed

	// Probe-path counters, summed over completed queries: the tagged
	// directory's traffic (probes / tag rejects), the audited-bucket
	// compare ledger (compares done / compares skipped) and the Bloom
	// guards (probes checked / directory walks skipped). Ratios are for
	// dashboards to derive: e.g. skip efficiency = skips / (compares +
	// skips).
	ProbeTagProbes   atomic.Int64
	ProbeTagRejects  atomic.Int64
	ProbeKeyCompares atomic.Int64
	ProbeKeySkips    atomic.Int64
	ProbeBloomChecks atomic.Int64
	ProbeBloomSkips  atomic.Int64

	// Morsel-scheduler counters, summed over completed queries: delta
	// blocks published to the steal plane, the subset executed by a
	// non-owner, and the idle workers' steal probes (attempts /
	// failures). A high stolen share on a dashboard means the workload
	// is skew-bound and the scheduler is absorbing it.
	StealMorsels  atomic.Int64
	StealStolen   atomic.Int64
	StealAttempts atomic.Int64
	StealFailures atomic.Int64

	// SetupSeconds distributes per-query setup time (base-relation
	// registration + index attach/build before evaluation): warm
	// queries against a prepared base land in the lowest buckets, cold
	// ones in the milliseconds.
	SetupSeconds Histogram

	// Mutation-path counters: accepted mutation batches, tuples
	// inserted/deleted, and batches that failed validation or were shed
	// by admission control.
	MutationsOK       atomic.Int64
	MutationsFailed   atomic.Int64
	MutationsRejected atomic.Int64
	TuplesInserted    atomic.Int64
	TuplesDeleted     atomic.Int64

	// Materialized-view counters: refreshes by mode and the summed
	// delta-kernel output (tuples added + over-deleted + re-derived) of
	// incremental refreshes. A dashboard divides IvmDeltaTuples by
	// IvmRefreshIncremental to see the average incremental batch the
	// views absorb without recomputing.
	IvmRefreshIncremental atomic.Int64
	IvmRefreshFull        atomic.Int64
	IvmDeltaTuples        atomic.Int64

	// Demand-rewrite counters: queries whose program the magic-set
	// rewrite restricted to the demanded bindings, plus the planner's
	// estimated vs the engine's actual derivation counts for the
	// estimable (non-recursive, fully statistics-covered) strata. A
	// dashboard divides actual by est to watch the cost model's bias.
	DemandRewrites     atomic.Int64
	DemandEstTuples    atomic.Int64
	DemandActualTuples atomic.Int64

	// IvmRefreshSeconds distributes view-refresh wall time: incremental
	// refreshes of small deltas land decades below the cold fixpoint
	// recompute they replace.
	IvmRefreshSeconds Histogram
}

// setupBuckets are the Histogram's upper bounds in seconds. Decades
// from 10µs to 1s: a warm index attach is microseconds, a cold build
// on a benchmark-scale graph is milliseconds to tens of milliseconds.
var setupBuckets = [...]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// Histogram is a fixed-bucket duration histogram with atomic cells,
// rendered in the Prometheus histogram exposition format.
type Histogram struct {
	counts [len(setupBuckets) + 1]atomic.Int64 // last cell = +Inf
	sum    atomic.Int64                        // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(setupBuckets) && s > setupBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(d.Nanoseconds())
}

// write renders the histogram (cumulative buckets, sum, count).
func (h *Histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, le := range setupBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLE(le), cum)
	}
	cum += h.counts[len(setupBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sum.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// formatLE renders a bucket bound the way Prometheus clients do.
func formatLE(v float64) string { return fmt.Sprintf("%g", v) }

// counter is one caller-supplied monotonic value appended at scrape
// (for counters whose source of truth lives outside Metrics, like the
// per-dataset EDB index caches).
type counter struct {
	name  string
	help  string
	value int64
}

// gauge is one point-in-time value appended at scrape.
type gauge struct {
	name  string
	help  string
	value int64
}

// WritePrometheus renders the counters and the setup-time histogram
// (plus caller-supplied counters and gauges) in the Prometheus text
// exposition format.
func (m *Metrics) WritePrometheus(w io.Writer, counters []counter, gauges ...gauge) {
	emit := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	emit("dcserve_queries_ok_total", "Queries that reached the fixpoint.", m.QueriesOK.Load())
	emit("dcserve_queries_truncated_total", "Queries stopped by a tuple/iteration budget.", m.QueriesTruncated.Load())
	emit("dcserve_queries_canceled_total", "Queries aborted by deadline or disconnect.", m.QueriesCanceled.Load())
	emit("dcserve_queries_failed_total", "Queries that failed to compile or execute.", m.QueriesFailed.Load())
	emit("dcserve_rejected_total", "Queries rejected with 429 by admission control.", m.Rejected.Load())
	emit("dcserve_query_latency_nanoseconds_sum", "Summed wall time of completed queries.", m.LatencyNanos.Load())
	emit("dcserve_query_latency_count", "Number of latency observations.", m.LatencyCount.Load())
	emit("dcserve_iterations_total", "Local evaluation iterations, summed over queries.", m.Iterations.Load())
	emit("dcserve_tuples_derived_total", "Derived tuples returned, summed over queries.", m.TuplesOut.Load())
	emit("dcserve_probe_tag_probes_total", "Occupied directory slots inspected via the tag lane.", m.ProbeTagProbes.Load())
	emit("dcserve_probe_tag_rejects_total", "Directory slots rejected by the 1-byte tag without a key compare.", m.ProbeTagRejects.Load())
	emit("dcserve_probe_key_compares_total", "Full-key arena compares performed on probe paths.", m.ProbeKeyCompares.Load())
	emit("dcserve_probe_key_skips_total", "Full-key compares eliminated by the single-key bucket audit.", m.ProbeKeySkips.Load())
	emit("dcserve_probe_bloom_checks_total", "Probes consulted against a Bloom guard.", m.ProbeBloomChecks.Load())
	emit("dcserve_probe_bloom_skips_total", "Directory walks skipped because the Bloom guard ruled the key out.", m.ProbeBloomSkips.Load())
	emit("dcserve_steal_morsels_total", "Delta blocks published to the work-stealing plane.", m.StealMorsels.Load())
	emit("dcserve_steal_stolen_total", "Published morsels executed by a worker other than their owner.", m.StealStolen.Load())
	emit("dcserve_steal_attempts_total", "Steal probes against a peer's deque.", m.StealAttempts.Load())
	emit("dcserve_steal_failures_total", "Steal probes that lost the race for an already-drained deque.", m.StealFailures.Load())
	emit("dcserve_mutations_total", "Mutation batches applied.", m.MutationsOK.Load())
	emit("dcserve_mutations_failed_total", "Mutation batches that failed validation or application.", m.MutationsFailed.Load())
	emit("dcserve_mutations_rejected_total", "Mutation batches shed by admission control.", m.MutationsRejected.Load())
	emit("dcserve_tuples_inserted_total", "EDB tuples inserted via the mutation endpoint.", m.TuplesInserted.Load())
	emit("dcserve_tuples_deleted_total", "EDB tuples deleted via the mutation endpoint.", m.TuplesDeleted.Load())
	emit("dcserve_ivm_refresh_incremental_total", "View refreshes served by the delta kernel.", m.IvmRefreshIncremental.Load())
	emit("dcserve_ivm_refresh_full_total", "View refreshes that fell back to a full recompute.", m.IvmRefreshFull.Load())
	emit("dcserve_ivm_delta_tuples_total", "Delta-kernel tuples (added, over-deleted, re-derived) across incremental refreshes.", m.IvmDeltaTuples.Load())
	emit("dcserve_demand_rewrites_total", "Queries evaluated under the demand (magic-set) rewrite.", m.DemandRewrites.Load())
	emit("dcserve_demand_est_tuples_total", "Planner-estimated derivations for estimable strata, summed over queries.", m.DemandEstTuples.Load())
	emit("dcserve_demand_actual_tuples_total", "Actual derivations for the same estimable strata, summed over queries.", m.DemandActualTuples.Load())
	for _, c := range counters {
		emit(c.name, c.help, c.value)
	}
	m.SetupSeconds.write(w, "dcserve_setup_seconds", "Per-query setup time (base registration and index attach/build) in seconds.")
	m.IvmRefreshSeconds.write(w, "dcserve_ivm_refresh_seconds", "Materialized-view refresh wall time in seconds.")
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.value)
	}
}
