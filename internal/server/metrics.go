package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics aggregates per-query counters; everything is an atomic so
// the query path never takes a lock for accounting. Gauges (queue
// depth, in-flight, cache entries) are read from their owners at
// scrape time instead of being mirrored here.
type Metrics struct {
	QueriesOK        atomic.Int64 // completed with a full fixpoint
	QueriesTruncated atomic.Int64 // completed but budget-capped
	QueriesCanceled  atomic.Int64 // deadline or client disconnect
	QueriesFailed    atomic.Int64 // compile or execution errors
	Rejected         atomic.Int64 // 429s from admission

	LatencyNanos atomic.Int64 // summed over completed queries
	LatencyCount atomic.Int64
	Iterations   atomic.Int64 // local iterations, summed
	TuplesOut    atomic.Int64 // derived tuples returned, summed
}

// gauge is one point-in-time value appended at scrape.
type gauge struct {
	name  string
	help  string
	value int64
}

// WritePrometheus renders the counters (plus caller-supplied gauges)
// in the Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer, gauges ...gauge) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("dcserve_queries_ok_total", "Queries that reached the fixpoint.", m.QueriesOK.Load())
	counter("dcserve_queries_truncated_total", "Queries stopped by a tuple/iteration budget.", m.QueriesTruncated.Load())
	counter("dcserve_queries_canceled_total", "Queries aborted by deadline or disconnect.", m.QueriesCanceled.Load())
	counter("dcserve_queries_failed_total", "Queries that failed to compile or execute.", m.QueriesFailed.Load())
	counter("dcserve_rejected_total", "Queries rejected with 429 by admission control.", m.Rejected.Load())
	counter("dcserve_query_latency_nanoseconds_sum", "Summed wall time of completed queries.", m.LatencyNanos.Load())
	counter("dcserve_query_latency_count", "Number of latency observations.", m.LatencyCount.Load())
	counter("dcserve_iterations_total", "Local evaluation iterations, summed over queries.", m.Iterations.Load())
	counter("dcserve_tuples_derived_total", "Derived tuples returned, summed over queries.", m.TuplesOut.Load())
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.value)
	}
}
