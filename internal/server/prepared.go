package server

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	dcdatalog "repro"
)

// preparedCache is an LRU of compiled programs keyed by (dataset,
// program text, parameter bindings). A hit skips the whole front end —
// parse, safety/stratification analysis, logical planning, physical
// compilation — and reuses the immutable physical.Program; only the
// per-run evaluation state is rebuilt, which is exactly the part that
// must be per-query anyway. Parameters are part of the key because
// physical compilation bakes them into the plan.
type preparedCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key string
	p   *dcdatalog.Prepared
}

func newPreparedCache(capacity int) *preparedCache {
	if capacity < 1 {
		capacity = 1
	}
	return &preparedCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// cacheKey canonicalizes the triple that determines a compiled
// program. Params are sorted by name; values arrive as the JSON-level
// Go values (int64 / float64 / string), whose formatting is injective
// enough per type tag.
func cacheKey(dataset, program string, params map[string]any) string {
	var b strings.Builder
	b.WriteString(dataset)
	b.WriteByte(0)
	b.WriteString(program)
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "\x00%s=%T:%v", k, params[k], params[k])
	}
	return b.String()
}

// get returns the cached program and bumps it to most-recent, counting
// the hit or miss.
func (c *preparedCache) get(key string) (*dcdatalog.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).p, true
	}
	c.misses.Add(1)
	return nil, false
}

// put inserts a compiled program, evicting the least-recently-used
// entry past capacity. Concurrent compiles of the same key may both
// put; the second simply refreshes the entry — compiling twice is
// wasteful but sound, and rare enough not to warrant request collapse.
func (c *preparedCache) put(key string, p *dcdatalog.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).p = p
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, p: p})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
	}
}

// stats returns (hits, misses, entries).
func (c *preparedCache) stats() (int64, int64, int) {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), n
}
