package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

const tcProgram = `
	tc(X, Y) :- arc(X, Y).
	tc(X, Y) :- tc(X, Z), arc(Z, Y).
`

// divergingProgram never reaches a fixpoint on a cyclic graph.
const divergingProgram = `
	p(X, Z) :- arc(X, Y), Z = 0.
	p(Y, M) :- p(X, N), arc(X, Y), M = N + 1.
`

// cycleTSV renders the n-cycle 0→1→…→n-1→0 as TSV.
func cycleTSV(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d\t%d\n", i, (i+1)%n)
	}
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func registerCycle(t *testing.T, ts *httptest.Server, name string, n int) {
	t.Helper()
	body, _ := json.Marshal(datasetRequest{
		Name: name,
		Relations: []RelationSpec{
			{Name: "arc", Types: []string{"int", "int"}, Data: cycleTSV(n)},
		},
	})
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("dataset registration: status %d: %s", resp.StatusCode, msg)
	}
}

func postQuery(t *testing.T, ts *httptest.Server, req queryRequest) (*http.Response, queryResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil && resp.StatusCode == http.StatusOK {
		t.Fatalf("bad response body: %v", err)
	}
	return resp, qr
}

func TestQueryOverRegisteredDataset(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 16)
	resp, qr := postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram, Relations: []string{"tc"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// TC of a 16-cycle is complete: 256 pairs.
	if qr.Counts["tc"] != 256 {
		t.Fatalf("tc count = %d, want 256", qr.Counts["tc"])
	}
	if qr.Cached {
		t.Fatal("first query must be a cache miss")
	}
	if qr.Stats.Iterations <= 0 || qr.Stats.Workers <= 0 {
		t.Fatalf("stats not populated: %+v", qr.Stats)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 8)
	// Unknown dataset.
	resp, _ := postQuery(t, ts, queryRequest{Dataset: "nope", Program: tcProgram})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", resp.StatusCode)
	}
	// Compile error.
	resp, _ = postQuery(t, ts, queryRequest{Dataset: "graph", Program: "tc(X :- broken"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("compile error: status %d, want 400", resp.StatusCode)
	}
	// Duplicate dataset registration conflicts.
	body, _ := json.Marshal(datasetRequest{Name: "graph", Relations: []RelationSpec{{Name: "arc", Types: []string{"int", "int"}, Data: "1 2\n"}}})
	r2, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate dataset: status %d, want 409", r2.StatusCode)
	}
}

func TestPreparedCacheHitMiss(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 8)
	_, qr := postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram})
	if qr.Cached {
		t.Fatal("first execution must miss")
	}
	_, qr = postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram})
	if !qr.Cached {
		t.Fatal("second execution must hit the prepared cache")
	}
	hits, misses, entries := s.cache.stats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("cache stats = hits %d misses %d entries %d, want 1/1/1", hits, misses, entries)
	}
	// A different param binding is a different physical program.
	prog := `reach(Y) :- arc($start, Y). reach(Y) :- reach(X), arc(X, Y).`
	_, qr = postQuery(t, ts, queryRequest{Dataset: "graph", Program: prog, Params: map[string]any{"start": 1}})
	if qr.Cached {
		t.Fatal("new param binding must miss")
	}
	_, qr = postQuery(t, ts, queryRequest{Dataset: "graph", Program: prog, Params: map[string]any{"start": 2}})
	if qr.Cached {
		t.Fatal("changed param binding must miss")
	}
	_, qr = postQuery(t, ts, queryRequest{Dataset: "graph", Program: prog, Params: map[string]any{"start": 2}})
	if !qr.Cached {
		t.Fatal("repeated param binding must hit")
	}
}

// TestConcurrentQueries is the acceptance criterion: ≥8 concurrent TC
// queries against one shared registered dataset, all correct.
func TestConcurrentQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{WorkerBudget: 4, MaxQueue: 64})
	registerCycle(t, ts, "graph", 20)
	const concurrency = 8
	var wg sync.WaitGroup
	errs := make(chan error, concurrency)
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(queryRequest{Dataset: "graph", Program: tcProgram, Workers: 2, Relations: []string{"tc"}})
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var qr queryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, qr.Error)
				return
			}
			if qr.Counts["tc"] != 400 { // TC of a 20-cycle: 20×20
				errs <- fmt.Errorf("tc count = %d, want 400", qr.Counts["tc"])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDeadlineOverUnboundedRecursion is the acceptance criterion: a
// 50ms deadline over a diverging recursion returns a deadline error in
// under 500ms with zero leaked goroutines.
func TestDeadlineOverUnboundedRecursion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 64)
	// Warm up with a converging query, then shut down the client's
	// keepalive pool so idle-connection goroutines (client and server
	// side) don't masquerade as engine leaks in the counts below.
	postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram})
	http.DefaultClient.CloseIdleConnections()
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	start := time.Now()
	resp, _ := postQuery(t, ts, queryRequest{Dataset: "graph", Program: divergingProgram, TimeoutMS: 50})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("50ms deadline took %s to surface (want < 500ms)", elapsed)
	}
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines leaked: %d before, %d after", base, n)
	}
}

func TestBudgetTruncationVisible(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 8)
	resp, qr := postQuery(t, ts, queryRequest{Dataset: "graph", Program: divergingProgram, MaxTuples: 10_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !qr.Truncated || qr.Error == "" {
		t.Fatalf("truncation must be visible: truncated=%v error=%q", qr.Truncated, qr.Error)
	}
	if qr.Counts["p"] == 0 {
		t.Fatal("truncated query must still return partial rows")
	}
}

// TestOverloadReturns429: with a budget of 1 and no queue, a second
// concurrent query is shed with 429.
func TestOverloadReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{WorkerBudget: 1, MaxQueue: -1})
	registerCycle(t, ts, "graph", 64)
	// Occupy the only slot with a diverging query bounded by timeout.
	first := make(chan int, 1)
	go func() {
		resp, _ := postQuery(t, ts, queryRequest{Dataset: "graph", Program: divergingProgram, TimeoutMS: 800})
		first <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.adm.InUse() == 1 })
	resp, _ := postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if code := <-first; code != http.StatusGatewayTimeout {
		t.Fatalf("occupying query: status %d, want 504", code)
	}
	if s.metrics.Rejected.Load() != 1 {
		t.Fatalf("rejected metric = %d", s.metrics.Rejected.Load())
	}
}

// TestGracefulDrain: Drain must wait for the in-flight query to finish
// and reject new work with 503 meanwhile.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 64)

	inFlight := make(chan int, 1)
	go func() {
		// Diverging query bounded by a 400ms deadline: the handler is
		// busy for ~400ms, which Drain must sit out.
		resp, _ := postQuery(t, ts, queryRequest{Dataset: "graph", Program: divergingProgram, TimeoutMS: 400})
		inFlight <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.Inflight() == 1 })

	drainStart := time.Now()
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, func() bool { return s.Draining() })

	// New queries are rejected while draining; healthz reports it.
	resp, _ := postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d, want 503", resp.StatusCode)
	}
	// So are mutations and view creation: writes are part of the same
	// drain boundary.
	mresp, _ := postJSON(t, ts, "/v1/mutate", map[string]any{
		"dataset": "graph",
		"ops":     []map[string]any{{"relation": "arc", "insert": "100\t0\n"}},
	})
	if mresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutate during drain: status %d, want 503", mresp.StatusCode)
	}
	vresp, _ := postJSON(t, ts, "/v1/views", map[string]any{
		"dataset": "graph", "name": "tc", "program": tcProgram,
	})
	if vresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("view create during drain: status %d, want 503", vresp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", hresp.StatusCode)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := time.Since(drainStart); got < 200*time.Millisecond {
		t.Fatalf("drain returned after %s — before the in-flight query could have finished", got)
	}
	select {
	case code := <-inFlight:
		if code != http.StatusGatewayTimeout {
			t.Fatalf("in-flight query: status %d, want 504", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight query never completed")
	}
	if s.Inflight() != 0 {
		t.Fatalf("inflight after drain = %d", s.Inflight())
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 8)
	postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram})
	postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram})

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string   `json:"status"`
		Datasets []string `json:"datasets"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || len(health.Datasets) != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"dcserve_queries_ok_total 2",
		"dcserve_prepared_cache_hits_total 1",
		"dcserve_prepared_cache_misses_total 1",
		"dcserve_queue_depth 0",
		"dcserve_worker_budget",
		"dcserve_iterations_total",
		"dcserve_tuples_derived_total",
		"dcserve_rejected_total 0",
		"dcserve_probe_tag_probes_total",
		"dcserve_probe_tag_rejects_total",
		"dcserve_probe_key_compares_total",
		"dcserve_probe_key_skips_total",
		"dcserve_probe_bloom_checks_total",
		"dcserve_probe_bloom_skips_total",
		"dcserve_steal_morsels_total",
		"dcserve_steal_stolen_total",
		"dcserve_steal_attempts_total",
		"dcserve_steal_failures_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// The TC queries probe the arc index, so the tag lane and compare
	// ledger must have accumulated real traffic (not just be exported).
	for _, zero := range []string{
		"dcserve_probe_tag_probes_total 0\n",
		"dcserve_probe_key_compares_total 0\n",
	} {
		if strings.Contains(text, zero) {
			t.Errorf("probe counter stuck at zero: %q\n%s", zero, text)
		}
	}
}

// TestBoundQueryDemandMetrics exercises the demand (magic-set) rewrite
// over HTTP: a bound reachability query answers correctly, hides its
// magic plumbing from the default relation listing, and increments the
// rewrite counter on /metrics.
func TestBoundQueryDemandMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 16)
	boundProgram := tcProgram + "\nreach(Y) :- tc($src, Y).\n"
	resp, qr := postQuery(t, ts, queryRequest{
		Dataset: "graph",
		Program: boundProgram,
		Params:  map[string]any{"src": 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Every vertex of a 16-cycle is reachable from vertex 3.
	if qr.Counts["reach"] != 16 {
		t.Fatalf("reach count = %d, want 16", qr.Counts["reach"])
	}
	// The default relation listing must not leak magic predicates.
	for name := range qr.Relations {
		if strings.HasSuffix(name, "__magic") {
			t.Fatalf("magic predicate %q leaked into the default relation listing", name)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "dcserve_demand_rewrites_total 1") {
		t.Errorf("demand rewrite counter not incremented:\n%s", text)
	}
	for _, want := range []string{
		"dcserve_demand_est_tuples_total",
		"dcserve_demand_actual_tuples_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// chainTSV renders n disjoint 2-chains (2i → 2i+1): large enough for
// the arc index build to cost real time, while TC over it derives
// nothing beyond the edges themselves.
func chainTSV(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d\t%d\n", 2*i, 2*i+1)
	}
	return b.String()
}

// TestWarmQuerySetupFastPath asserts the service-level payoff of the
// prepared-base plane: on a TC-scale dataset the first query pays the
// index build (cold setup) and every later query attaches the cached
// indexes, reporting setup time at least 10x lower. Timing-sensitive,
// so it takes the best of three attempts on fresh servers before
// failing.
func TestWarmQuerySetupFastPath(t *testing.T) {
	data := chainTSV(60000)
	var coldMS, warmMS float64
	for attempt := 0; attempt < 3; attempt++ {
		_, ts := newTestServer(t, Config{})
		body, _ := json.Marshal(datasetRequest{
			Name: "chains",
			Relations: []RelationSpec{
				{Name: "arc", Types: []string{"int", "int"}, Data: data},
			},
		})
		resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("dataset registration: status %d", resp.StatusCode)
		}
		req := queryRequest{Dataset: "chains", Program: tcProgram, Relations: []string{"tc"}, Limit: 1}

		hresp, cold := postQuery(t, ts, req)
		if hresp.StatusCode != http.StatusOK {
			t.Fatalf("cold query: status %d", hresp.StatusCode)
		}
		coldMS = cold.Stats.SetupMS
		warmMS = coldMS
		for i := 0; i < 3; i++ {
			hresp, warm := postQuery(t, ts, req)
			if hresp.StatusCode != http.StatusOK {
				t.Fatalf("warm query: status %d", hresp.StatusCode)
			}
			if i > 0 && !warm.Cached {
				t.Fatal("repeat query should hit the prepared-program cache")
			}
			if warm.Stats.SetupMS < warmMS {
				warmMS = warm.Stats.SetupMS
			}
		}
		if warmMS > 0 && coldMS >= 10*warmMS {
			// The acceptance bar: warm setup at least 10x below cold.
			mresp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			mbody, _ := io.ReadAll(mresp.Body)
			mresp.Body.Close()
			text := string(mbody)
			for _, want := range []string{
				"dcserve_edb_index_cache_hits_total",
				"dcserve_edb_index_cache_misses_total",
				"dcserve_setup_seconds_bucket",
				"dcserve_setup_seconds_count 4",
				"dcserve_edb_indexes_resident",
			} {
				if !strings.Contains(text, want) {
					t.Errorf("metrics missing %q", want)
				}
			}
			var hits int64
			for _, line := range strings.Split(text, "\n") {
				if strings.HasPrefix(line, "dcserve_edb_index_cache_hits_total ") {
					fmt.Sscanf(line, "dcserve_edb_index_cache_hits_total %d", &hits)
				}
			}
			if hits == 0 {
				t.Error("warm queries never hit the EDB index cache")
			}
			return
		}
	}
	t.Fatalf("warm setup (%.3fms) not 10x below cold setup (%.3fms) in 3 attempts", warmMS, coldMS)
}
