package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	dcdatalog "repro"
)

// mutationOp is one relation's worth of changes inside a mutation
// batch: TSV rows to append and TSV rows to remove (multiset
// semantics — one occurrence per listed row, absent rows are no-ops).
type mutationOp struct {
	Relation string `json:"relation"`
	Insert   string `json:"insert,omitempty"`
	Delete   string `json:"delete,omitempty"`
}

// mutateRequest applies a batch of EDB mutations to a registered
// dataset and, by default, refreshes every materialized view that
// depends on the touched relations.
type mutateRequest struct {
	Dataset string       `json:"dataset"`
	Ops     []mutationOp `json:"ops"`
	// Refresh controls whether registered views are brought up to date
	// in this call (default true). When false the mutations queue in
	// each view's pending log and the next refresh absorbs them.
	Refresh   *bool `json:"refresh,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// viewRefreshResult reports how one view absorbed the batch.
type viewRefreshResult struct {
	Mode        string  `json:"mode"`
	Reason      string  `json:"reason,omitempty"`
	DeltaTuples int     `json:"delta_tuples"`
	DurationMS  float64 `json:"duration_ms"`
	Error       string  `json:"error,omitempty"`
}

type mutateResponse struct {
	Inserted int                          `json:"inserted"`
	Deleted  int                          `json:"deleted"`
	Views    map[string]viewRefreshResult `json:"views,omitempty"`
}

// viewRequest materializes a program over a registered dataset.
type viewRequest struct {
	Dataset   string         `json:"dataset"`
	Name      string         `json:"name"`
	Program   string         `json:"program"`
	Params    map[string]any `json:"params,omitempty"`
	Workers   int            `json:"workers,omitempty"`
	Crossover float64        `json:"crossover,omitempty"`
	TimeoutMS int64          `json:"timeout_ms,omitempty"`
}

// viewInfo is one materialized view's registry entry with its
// cumulative refresh counters.
type viewInfo struct {
	Dataset        string   `json:"dataset"`
	View           string   `json:"view"`
	Relations      []string `json:"relations"`
	Refreshes      int64    `json:"refreshes"`
	Incremental    int64    `json:"incremental"`
	Full           int64    `json:"full"`
	DeltaTuples    int64    `json:"delta_tuples"`
	Pending        int      `json:"pending"`
	Stale          bool     `json:"stale,omitempty"`
	Ineligible     string   `json:"ineligible,omitempty"`
	LastMode       string   `json:"last_mode,omitempty"`
	LastReason     string   `json:"last_reason,omitempty"`
	LastDurationMS float64  `json:"last_duration_ms,omitempty"`
}

func viewInfoOf(dataset string, v *dcdatalog.View) viewInfo {
	st := v.Stats()
	return viewInfo{
		Dataset:        dataset,
		View:           v.Name(),
		Relations:      v.Relations(),
		Refreshes:      st.Refreshes,
		Incremental:    st.Incremental,
		Full:           st.Full,
		DeltaTuples:    st.DeltaTuples,
		Pending:        st.Pending,
		Stale:          st.Stale,
		Ineligible:     st.Ineligible,
		LastMode:       st.Last.Mode,
		LastReason:     st.Last.Reason,
		LastDurationMS: float64(st.Last.Duration.Nanoseconds()) / 1e6,
	}
}

// recordRefresh folds one view refresh into the scrapeable counters.
func (s *Server) recordRefresh(st dcdatalog.RefreshStats) {
	switch st.Mode {
	case "incremental":
		s.metrics.IvmRefreshIncremental.Add(1)
		s.metrics.IvmDeltaTuples.Add(int64(st.DeltaTuples))
	case "full":
		s.metrics.IvmRefreshFull.Add(1)
	default: // noop refreshes don't move the counters
		return
	}
	s.metrics.IvmRefreshSeconds.Observe(st.Duration)
}

// reqTimeout resolves a request's timeout against the server policy.
func (s *Server) reqTimeout(ms int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// handleMutate applies one mutation batch under a write slot from the
// same admission plane queries use: mutations queue behind in-flight
// work, are shed with 429 when the queue is full, and are refused
// outright while the server drains.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad mutate request: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		httpError(w, http.StatusBadRequest, "mutate needs at least one op")
		return
	}
	ds, ok := s.registry.Get(req.Dataset)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	db := ds.DB()

	// Parse every op before touching the database so a malformed row in
	// a later op cannot leave the batch half-applied.
	type parsedOp struct {
		rel      string
		ins, del []dcdatalog.Tuple
	}
	parsed := make([]parsedOp, 0, len(req.Ops))
	for _, op := range req.Ops {
		p := parsedOp{rel: op.Relation}
		var err error
		if op.Insert != "" {
			if p.ins, err = db.ParseTSV(op.Relation, strings.NewReader(op.Insert)); err != nil {
				s.metrics.MutationsFailed.Add(1)
				httpError(w, http.StatusBadRequest, "insert %s: %v", op.Relation, err)
				return
			}
		}
		if op.Delete != "" {
			if p.del, err = db.ParseTSV(op.Relation, strings.NewReader(op.Delete)); err != nil {
				s.metrics.MutationsFailed.Add(1)
				httpError(w, http.StatusBadRequest, "delete %s: %v", op.Relation, err)
				return
			}
		}
		parsed = append(parsed, p)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout(req.TimeoutMS))
	defer cancel()

	// One write slot: mutations serialize against the worker budget so
	// a mutation storm cannot starve queries, and Drain sees them as
	// in-flight work like everything else.
	_, release, err := s.adm.Acquire(ctx, 1)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.MutationsRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		s.metrics.MutationsRejected.Add(1)
		httpError(w, http.StatusGatewayTimeout, "timed out in admission queue: %v", err)
		return
	}
	defer release()

	resp := mutateResponse{}
	for _, p := range parsed {
		if len(p.ins) > 0 {
			if err := db.InsertTuples(p.rel, p.ins); err != nil {
				s.metrics.MutationsFailed.Add(1)
				httpError(w, http.StatusInternalServerError, "insert %s: %v", p.rel, err)
				return
			}
			resp.Inserted += len(p.ins)
		}
		if len(p.del) > 0 {
			if err := db.DeleteTuples(p.rel, p.del); err != nil {
				s.metrics.MutationsFailed.Add(1)
				httpError(w, http.StatusInternalServerError, "delete %s: %v", p.rel, err)
				return
			}
			resp.Deleted += len(p.del)
		}
	}
	s.metrics.MutationsOK.Add(1)
	s.metrics.TuplesInserted.Add(int64(resp.Inserted))
	s.metrics.TuplesDeleted.Add(int64(resp.Deleted))

	if req.Refresh == nil || *req.Refresh {
		names := db.Views()
		if len(names) > 0 {
			resp.Views = make(map[string]viewRefreshResult, len(names))
			for _, name := range names {
				v := db.View(name)
				if v == nil {
					continue
				}
				st, err := v.Refresh(ctx)
				res := viewRefreshResult{
					Mode:        st.Mode,
					Reason:      st.Reason,
					DeltaTuples: st.DeltaTuples,
					DurationMS:  float64(st.Duration.Nanoseconds()) / 1e6,
				}
				if err != nil {
					res.Error = err.Error()
				} else {
					s.recordRefresh(st)
				}
				resp.Views[name] = res
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCreateView materializes a program over a dataset. The initial
// fixpoint is a full evaluation, so it claims worker slots through
// admission exactly like a query.
func (s *Server) handleCreateView(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	var req viewRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad view request: %v", err)
		return
	}
	if req.Name == "" || req.Program == "" {
		httpError(w, http.StatusBadRequest, "view needs a name and a program")
		return
	}
	ds, ok := s.registry.Get(req.Dataset)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	params, err := decodeParams(req.Params)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout(req.TimeoutMS))
	defer cancel()

	want := req.Workers
	if want <= 0 {
		want = s.cfg.DefaultWorkersPerQuery
	}
	if want > s.cfg.MaxWorkersPerQuery {
		want = s.cfg.MaxWorkersPerQuery
	}
	granted, release, err := s.adm.Acquire(ctx, want)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.Rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		s.metrics.QueriesCanceled.Add(1)
		httpError(w, http.StatusGatewayTimeout, "timed out in admission queue: %v", err)
		return
	}
	defer release()

	opts := []dcdatalog.Option{dcdatalog.WithWorkers(granted)}
	if req.Crossover != 0 {
		opts = append(opts, dcdatalog.WithCrossover(req.Crossover))
	}
	for k, v := range params {
		opts = append(opts, dcdatalog.WithParam(k, v))
	}
	v, err := ds.DB().MaterializeContext(ctx, req.Name, req.Program, opts...)
	if err != nil {
		switch {
		case strings.Contains(err.Error(), "already materialized"):
			httpError(w, http.StatusConflict, "%v", err)
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.QueriesCanceled.Add(1)
			httpError(w, http.StatusGatewayTimeout, "%v", err)
		default:
			s.metrics.QueriesFailed.Add(1)
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, viewInfoOf(ds.Name, v))
}

// handleListViews lists every materialized view across datasets with
// its cumulative refresh counters.
func (s *Server) handleListViews(w http.ResponseWriter, r *http.Request) {
	out := []viewInfo{}
	for _, name := range s.registry.Names() {
		ds, ok := s.registry.Get(name)
		if !ok {
			continue
		}
		db := ds.DB()
		for _, vn := range db.Views() {
			if v := db.View(vn); v != nil {
				out = append(out, viewInfoOf(name, v))
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"views": out})
}
