package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned by Acquire when the admission queue is
// full; the HTTP layer maps it to 429 Too Many Requests.
var ErrOverloaded = errors.New("server overloaded: admission queue full")

// Admission multiplexes concurrent queries over a bounded machine-wide
// worker budget. Each query asks for n worker slots (clamped to the
// budget); when they don't fit, the query waits in a bounded FIFO
// queue — bounded so that overload turns into fast 429 backpressure
// instead of an ever-growing latency cliff. FIFO grant order is
// deliberate: a wide query at the head blocks narrower ones behind it
// rather than starving forever.
type Admission struct {
	mu     sync.Mutex
	budget int
	inUse  int
	queue  []*waiter

	maxQueue int
	rejected atomic.Int64
}

type waiter struct {
	n     int
	ready chan struct{}
}

// NewAdmission returns a controller with the given worker budget and
// queue bound.
func NewAdmission(budget, maxQueue int) *Admission {
	if budget < 1 {
		budget = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{budget: budget, maxQueue: maxQueue}
}

// Acquire claims n worker slots, queueing (FIFO) while they don't
// fit. It returns the granted slot count — n clamped to the budget —
// and a release function the caller must invoke exactly once when the
// query finishes. A full queue fails fast with ErrOverloaded; a
// context cancellation while queued returns ctx.Err().
func (a *Admission) Acquire(ctx context.Context, n int) (int, func(), error) {
	if n < 1 {
		n = 1
	}
	a.mu.Lock()
	if n > a.budget {
		n = a.budget
	}
	if len(a.queue) == 0 && a.inUse+n <= a.budget {
		a.inUse += n
		a.mu.Unlock()
		return n, a.releaseFunc(n), nil
	}
	if len(a.queue) >= a.maxQueue {
		a.mu.Unlock()
		a.rejected.Add(1)
		return 0, nil, ErrOverloaded
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return n, a.releaseFunc(n), nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.mu.Unlock()
				return 0, nil, ctx.Err()
			}
		}
		a.mu.Unlock()
		// Lost the race: the grant landed between ctx firing and the
		// lock. Give the slots back before reporting the cancel.
		a.release(n)
		return 0, nil, ctx.Err()
	}
}

// releaseFunc wraps release in a Once so a double-released query
// cannot corrupt the accounting.
func (a *Admission) releaseFunc(n int) func() {
	var once sync.Once
	return func() { once.Do(func() { a.release(n) }) }
}

// release returns n slots and grants queued waiters in FIFO order
// while they fit.
func (a *Admission) release(n int) {
	a.mu.Lock()
	a.inUse -= n
	for len(a.queue) > 0 {
		w := a.queue[0]
		if a.inUse+w.n > a.budget {
			break
		}
		a.inUse += w.n
		a.queue = a.queue[1:]
		close(w.ready)
	}
	a.mu.Unlock()
}

// QueueDepth reports the number of queries waiting for admission.
func (a *Admission) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// InUse reports the worker slots currently granted.
func (a *Admission) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// Budget reports the total worker budget.
func (a *Admission) Budget() int { return a.budget }

// Rejected reports the cumulative count of ErrOverloaded rejections.
func (a *Admission) Rejected() int64 { return a.rejected.Load() }
