// Package server turns the engine into a long-lived query service:
// named datasets are loaded once and shared across queries, programs
// are compiled once per (dataset, text, params) and cached as immutable
// physical plans, and an admission controller multiplexes concurrent
// evaluations over a bounded machine-wide worker budget. Evaluation is
// fully cancellable — a client disconnect or per-query deadline aborts
// a recursion mid-fixpoint through engine.RunContext. Datasets accept
// post-registration mutations through POST /v1/mutate: the Database is
// internally synchronized, queries run over immutable snapshots, and
// registered materialized views absorb each batch incrementally.
package server

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	dcdatalog "repro"
)

// RelationSpec declares one relation of a dataset and names its data:
// either inline TSV (Data) or a server-side file (Path).
type RelationSpec struct {
	// Name is the relation name referenced by programs.
	Name string `json:"name"`
	// Types lists the column types: "int", "float", "sym" (or
	// "string").
	Types []string `json:"types"`
	// Data is inline tab- or whitespace-separated rows.
	Data string `json:"data,omitempty"`
	// Path is a server-side TSV file to load instead of Data.
	Path string `json:"path,omitempty"`
}

// Dataset is one named database. Relations are bulk-loaded at
// registration; afterwards the mutation endpoint may insert and delete
// tuples. Concurrent queries are safe throughout: each evaluation runs
// over an immutable snapshot taken when it starts.
type Dataset struct {
	Name string
	db   *dcdatalog.Database
	// rels names the declared relations in registration order.
	rels []string
}

// DB returns the dataset's database.
func (d *Dataset) DB() *dcdatalog.Database { return d.db }

// Relations describes the dataset as "name(rows)" strings, sorted,
// with live row counts (mutations move them).
func (d *Dataset) Relations() []string {
	out := make([]string, 0, len(d.rels))
	for _, name := range d.rels {
		out = append(out, fmt.Sprintf("%s(%d)", name, d.db.Len(name)))
	}
	sort.Strings(out)
	return out
}

// parseColType maps a spec string to a column type.
func parseColType(s string) (dcdatalog.Type, error) {
	switch strings.TrimSpace(s) {
	case "int":
		return dcdatalog.Int, nil
	case "float":
		return dcdatalog.Float, nil
	case "sym", "string":
		return dcdatalog.Sym, nil
	default:
		return 0, fmt.Errorf("unknown column type %q (want int, float or sym)", s)
	}
}

// BuildDataset declares and loads every relation. Loading happens
// entirely before the dataset becomes visible, so readers never observe
// a partially loaded relation.
func BuildDataset(name string, rels []RelationSpec) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("dataset needs a name")
	}
	if len(rels) == 0 {
		return nil, fmt.Errorf("dataset %q needs at least one relation", name)
	}
	db := dcdatalog.NewDatabase()
	names := make([]string, 0, len(rels))
	for _, r := range rels {
		if r.Name == "" {
			return nil, fmt.Errorf("dataset %q: relation needs a name", name)
		}
		cols := make([]dcdatalog.Column, len(r.Types))
		for i, ts := range r.Types {
			t, err := parseColType(ts)
			if err != nil {
				return nil, fmt.Errorf("dataset %q relation %q: %v", name, r.Name, err)
			}
			cols[i] = dcdatalog.Col(fmt.Sprintf("c%d", i), t)
		}
		if err := db.Declare(r.Name, cols...); err != nil {
			return nil, err
		}
		switch {
		case r.Path != "" && r.Data != "":
			return nil, fmt.Errorf("dataset %q relation %q: give data or path, not both", name, r.Name)
		case r.Path != "":
			f, err := os.Open(r.Path)
			if err != nil {
				return nil, fmt.Errorf("dataset %q relation %q: %v", name, r.Name, err)
			}
			err = db.LoadTSV(r.Name, f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("dataset %q relation %q: %v", name, r.Name, err)
			}
		default:
			if err := db.LoadTSV(r.Name, strings.NewReader(r.Data)); err != nil {
				return nil, fmt.Errorf("dataset %q relation %q: %v", name, r.Name, err)
			}
		}
		names = append(names, r.Name)
	}
	// Snapshot the prepared-base plane at registration: every query on
	// this dataset shares one immutable tuple snapshot and one memoized
	// index cache, so base indexes are built once per lookup signature
	// for the dataset's whole lifetime.
	db.Prewarm()
	return &Dataset{Name: name, db: db, rels: names}, nil
}

// Registry is the named dataset registry. Registration is
// register-once: a dataset's identity never changes after it appears
// (its contents evolve only through the synchronized mutation path).
type Registry struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*Dataset)}
}

// Register adds a dataset; re-registering a name is an error (replace
// would yank relations out from under in-flight queries).
func (r *Registry) Register(ds *Dataset) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.datasets[ds.Name]; ok {
		return fmt.Errorf("dataset %q already registered", ds.Name)
	}
	r.datasets[ds.Name] = ds
	return nil
}

// Get looks a dataset up by name.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ds, ok := r.datasets[name]
	return ds, ok
}

// Names lists registered datasets, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.datasets))
	for name := range r.datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.datasets)
}

// BaseStats sums the shared EDB index-cache counters over every
// registered dataset (scraped by /metrics).
func (r *Registry) BaseStats() dcdatalog.BaseStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total dcdatalog.BaseStats
	for _, ds := range r.datasets {
		st := ds.db.BaseStats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Indexes += st.Indexes
	}
	return total
}
