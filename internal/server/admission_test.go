package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionGrantAndClamp(t *testing.T) {
	a := NewAdmission(4, 2)
	n, release, err := a.Acquire(context.Background(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("granted %d, want clamp to budget 4", n)
	}
	if a.InUse() != 4 {
		t.Fatalf("inUse = %d", a.InUse())
	}
	release()
	release() // idempotent
	if a.InUse() != 0 {
		t.Fatalf("inUse after release = %d", a.InUse())
	}
}

func TestAdmissionQueuesFIFO(t *testing.T) {
	a := NewAdmission(2, 4)
	_, rel1, err := a.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 2)
	for i := 1; i <= 2; i++ {
		i := i
		go func() {
			_, rel, err := a.Acquire(context.Background(), 2)
			if err != nil {
				t.Error(err)
				return
			}
			got <- i
			rel()
		}()
		// Serialize goroutine enqueue order so FIFO is observable.
		waitFor(t, func() bool { return a.QueueDepth() == i })
	}
	rel1()
	if first := <-got; first != 1 {
		t.Fatalf("grant order: got %d first, want 1", first)
	}
	<-got
}

func TestAdmissionOverload(t *testing.T) {
	a := NewAdmission(1, 1)
	_, rel, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// One waiter fits in the queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() {
		_, _, err := a.Acquire(ctx, 1)
		queued <- err
	}()
	waitFor(t, func() bool { return a.QueueDepth() == 1 })
	// The next one overflows.
	if _, _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if a.Rejected() != 1 {
		t.Fatalf("rejected = %d", a.Rejected())
	}
	// Canceling the queued waiter removes it from the queue.
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued err = %v, want Canceled", err)
	}
	if a.QueueDepth() != 0 {
		t.Fatalf("queue depth after cancel = %d", a.QueueDepth())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
