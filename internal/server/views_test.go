package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(body)
}

// TestMutateAndViewFlow is the end-to-end service path: materialize a
// TC view, mutate the EDB through the endpoint, and observe the view
// refreshed incrementally (not recomputed), with the delta visible to
// subsequent queries and in the scrape.
func TestMutateAndViewFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 16)

	resp, body := postJSON(t, ts, "/v1/views", map[string]any{
		"dataset": "graph", "name": "tc_view", "program": tcProgram,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create view: status %d: %v", resp.StatusCode, body)
	}
	if body["view"] != "tc_view" || body["ineligible"] != nil {
		t.Fatalf("view info = %v", body)
	}

	// Duplicates conflict; unknown datasets 404; broken programs 400.
	resp, _ = postJSON(t, ts, "/v1/views", map[string]any{
		"dataset": "graph", "name": "tc_view", "program": tcProgram,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate view: status %d, want 409", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/views", map[string]any{
		"dataset": "nope", "name": "x", "program": tcProgram,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/views", map[string]any{
		"dataset": "graph", "name": "broken", "program": "tc(X :- nope",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken program: status %d, want 400", resp.StatusCode)
	}

	// Insert a pendant edge 100→0: node 100 now reaches the whole
	// 16-cycle, so tc grows by exactly 16 rows.
	resp, body = postJSON(t, ts, "/v1/mutate", map[string]any{
		"dataset": "graph",
		"ops":     []map[string]any{{"relation": "arc", "insert": "100\t0\n"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d: %v", resp.StatusCode, body)
	}
	if body["inserted"] != float64(1) {
		t.Fatalf("inserted = %v, want 1", body["inserted"])
	}
	views, _ := body["views"].(map[string]any)
	vr, _ := views["tc_view"].(map[string]any)
	if vr == nil || vr["mode"] != "incremental" {
		t.Fatalf("view refresh = %v, want incremental", views)
	}
	if dt, _ := vr["delta_tuples"].(float64); dt < 16 {
		t.Fatalf("delta_tuples = %v, want >= 16", vr["delta_tuples"])
	}

	// Queries over the mutated dataset see the new fixpoint.
	qresp, qr := postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram, Relations: []string{"tc"}})
	if qresp.StatusCode != http.StatusOK || qr.Counts["tc"] != 272 {
		t.Fatalf("post-insert tc count = %d (status %d), want 272", qr.Counts["tc"], qresp.StatusCode)
	}

	// Delete the edge again: counting DRed retracts the 16 rows.
	resp, body = postJSON(t, ts, "/v1/mutate", map[string]any{
		"dataset": "graph",
		"ops":     []map[string]any{{"relation": "arc", "delete": "100\t0\n"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete mutate: status %d: %v", resp.StatusCode, body)
	}
	if body["deleted"] != float64(1) {
		t.Fatalf("deleted = %v, want 1", body["deleted"])
	}
	views, _ = body["views"].(map[string]any)
	vr, _ = views["tc_view"].(map[string]any)
	if vr == nil || vr["mode"] != "incremental" {
		t.Fatalf("delete refresh = %v, want incremental", views)
	}
	_, qr = postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram, Relations: []string{"tc"}})
	if qr.Counts["tc"] != 256 {
		t.Fatalf("post-delete tc count = %d, want 256", qr.Counts["tc"])
	}

	// The view registry reports both refreshes as incremental.
	lresp, err := http.Get(ts.URL + "/v1/views")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Views []viewInfo `json:"views"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list.Views) != 1 {
		t.Fatalf("views = %+v, want 1", list.Views)
	}
	vi := list.Views[0]
	if vi.View != "tc_view" || vi.Refreshes != 2 || vi.Incremental != 2 || vi.Full != 0 {
		t.Fatalf("view info = %+v, want 2 incremental refreshes and no full recompute", vi)
	}

	// The scrape carries the mutation and refresh counters.
	text := scrapeMetrics(t, ts)
	for _, want := range []string{
		"dcserve_mutations_total 2",
		"dcserve_mutations_failed_total 0",
		"dcserve_tuples_inserted_total 1",
		"dcserve_tuples_deleted_total 1",
		"dcserve_ivm_refresh_incremental_total 2",
		"dcserve_ivm_refresh_full_total 0",
		"dcserve_ivm_refresh_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	if strings.Contains(text, "dcserve_ivm_delta_tuples_total 0\n") {
		t.Error("ivm delta counter stuck at zero")
	}
}

// TestMutateValidation: malformed ops fail atomically before any
// tuple is applied.
func TestMutateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 8)

	resp, _ := postJSON(t, ts, "/v1/mutate", map[string]any{
		"dataset": "graph", "ops": []map[string]any{},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ops: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/mutate", map[string]any{
		"dataset": "nope",
		"ops":     []map[string]any{{"relation": "arc", "insert": "1\t2\n"}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", resp.StatusCode)
	}
	// Second op is malformed (arity), so the valid first op must not
	// have been applied either.
	resp, _ = postJSON(t, ts, "/v1/mutate", map[string]any{
		"dataset": "graph",
		"ops": []map[string]any{
			{"relation": "arc", "insert": "50\t51\n"},
			{"relation": "arc", "insert": "1\t2\t3\n"},
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad arity: status %d, want 400", resp.StatusCode)
	}
	_, qr := postQuery(t, ts, queryRequest{Dataset: "graph", Program: tcProgram, Relations: []string{"tc"}})
	if qr.Counts["tc"] != 64 {
		t.Fatalf("tc count = %d, want 64 (failed batch must not half-apply)", qr.Counts["tc"])
	}
}

// TestMutateOverloadReturns429: mutations share the admission plane —
// with the only worker slot held and no queue, a mutation is shed.
func TestMutateOverloadReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{WorkerBudget: 1, MaxQueue: -1})
	registerCycle(t, ts, "graph", 64)
	first := make(chan int, 1)
	go func() {
		resp, _ := postQuery(t, ts, queryRequest{Dataset: "graph", Program: divergingProgram, TimeoutMS: 800})
		first <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.adm.InUse() == 1 })
	resp, _ := postJSON(t, ts, "/v1/mutate", map[string]any{
		"dataset": "graph",
		"ops":     []map[string]any{{"relation": "arc", "insert": "100\t0\n"}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if s.metrics.MutationsRejected.Load() != 1 {
		t.Fatalf("mutations rejected metric = %d", s.metrics.MutationsRejected.Load())
	}
	if code := <-first; code != http.StatusGatewayTimeout {
		t.Fatalf("occupying query: status %d, want 504", code)
	}
	// The shed mutation must not have been applied.
	_, qr := postQuery(t, ts, queryRequest{Dataset: "graph", Program: "e(X, Y) :- arc(X, Y).", Relations: []string{"e"}})
	if qr.Counts["e"] != 64 {
		t.Fatalf("arc count = %d, want 64", qr.Counts["e"])
	}
}

// TestMutateQueuesBehindLoad: with a queue available, a mutation waits
// for the write slot instead of being shed, then applies.
func TestMutateQueuesBehindLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{WorkerBudget: 1, MaxQueue: 8})
	registerCycle(t, ts, "graph", 32)
	first := make(chan int, 1)
	go func() {
		resp, _ := postQuery(t, ts, queryRequest{Dataset: "graph", Program: divergingProgram, TimeoutMS: 300})
		first <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.adm.InUse() == 1 })
	resp, body := postJSON(t, ts, "/v1/mutate", map[string]any{
		"dataset":    "graph",
		"ops":        []map[string]any{{"relation": "arc", "insert": "100\t0\n"}},
		"timeout_ms": 5000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queued mutation: status %d: %v", resp.StatusCode, body)
	}
	if code := <-first; code != http.StatusGatewayTimeout {
		t.Fatalf("occupying query: status %d, want 504", code)
	}
	_, qr := postQuery(t, ts, queryRequest{Dataset: "graph", Program: "e(X, Y) :- arc(X, Y).", Relations: []string{"e"}})
	if qr.Counts["e"] != 33 {
		t.Fatalf("arc count = %d, want 33", qr.Counts["e"])
	}
}

// TestViewFullFallbackOverHTTP: a 100%-churn batch crosses the
// crossover and the service reports the full-recompute fallback.
func TestViewFullFallbackOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerCycle(t, ts, "graph", 8)
	resp, body := postJSON(t, ts, "/v1/views", map[string]any{
		"dataset": "graph", "name": "tc", "program": tcProgram,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create view: status %d: %v", resp.StatusCode, body)
	}
	// Replace every edge: churn 2.0 ≫ crossover.
	resp, body = postJSON(t, ts, "/v1/mutate", map[string]any{
		"dataset": "graph",
		"ops": []map[string]any{{
			"relation": "arc",
			"insert":   chainTSV(8),
			"delete":   cycleTSV(8),
		}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d: %v", resp.StatusCode, body)
	}
	views, _ := body["views"].(map[string]any)
	vr, _ := views["tc"].(map[string]any)
	if vr == nil || vr["mode"] != "full" {
		t.Fatalf("refresh = %v, want full fallback", views)
	}
	text := scrapeMetrics(t, ts)
	if !strings.Contains(text, "dcserve_ivm_refresh_full_total 1") {
		t.Errorf("metrics missing full-refresh count:\n%s", text)
	}
}
