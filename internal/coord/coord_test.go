package coord

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBarrierSynchronizes(t *testing.T) {
	const n = 4
	b := NewBarrier(n)
	var phase atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				if int(phase.Load()) != round {
					t.Errorf("phase skew: %d vs %d", phase.Load(), round)
					return
				}
				if b.Wait(false) {
					t.Error("flag OR should be false")
					return
				}
				// One winner advances the phase; the barrier below
				// makes the update visible to all before re-checking.
				phase.CompareAndSwap(int32(round), int32(round+1))
				b.Wait(false)
			}
		}()
	}
	wg.Wait()
	if phase.Load() != 50 {
		t.Fatalf("phase = %d", phase.Load())
	}
}

func TestBarrierFlagOR(t *testing.T) {
	const n = 3
	b := NewBarrier(n)
	var wg sync.WaitGroup
	results := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = b.Wait(id == 1) // only worker 1 raises the flag
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !r {
			t.Fatalf("worker %d missed the OR flag", i)
		}
	}
	// The flag must reset for the next round.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = b.Wait(false)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r {
			t.Fatalf("worker %d saw a stale flag", i)
		}
	}
}

func TestClockSlack(t *testing.T) {
	c := NewClock(3, 2)
	if !c.MayProceed(0) {
		t.Fatal("fresh clock should allow everyone")
	}
	// Worker 0 races ahead.
	c.Advance(0)
	c.Advance(0)
	if !c.MayProceed(0) {
		t.Fatal("within slack")
	}
	c.Advance(0)
	if c.MayProceed(0) {
		t.Fatal("3 ahead with slack 2 must wait")
	}
	// Straggler catches up by one.
	c.Advance(1)
	c.Advance(2)
	if !c.MayProceed(0) {
		t.Fatal("should proceed after stragglers advance")
	}
	if c.Iter(0) != 3 {
		t.Fatalf("iter = %d", c.Iter(0))
	}
}

func TestClockIgnoresParked(t *testing.T) {
	c := NewClock(2, 0)
	c.Advance(0)
	if c.MayProceed(0) {
		t.Fatal("slack 0: one ahead must wait")
	}
	c.Park(1)
	if !c.MayProceed(0) {
		t.Fatal("parked straggler must not block")
	}
	c.Unpark(1)
	if c.MayProceed(0) {
		t.Fatal("unparked straggler blocks again")
	}
}

func TestBarrierManyRoundsUnderContention(t *testing.T) {
	const n = 8
	b := NewBarrier(n)
	var sum atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				sum.Add(1)
				b.Wait(false)
			}
		}()
	}
	wg.Wait()
	if sum.Load() != n*200 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("barrier too slow")
	}
}

// TestBarrierCancel: canceling a barrier releases every blocked waiter
// with a false flag and makes all future Waits non-blocking — the
// mechanism that unblocks Global-strategy workers on run cancellation.
func TestBarrierCancel(t *testing.T) {
	const n = 3
	b := NewBarrier(n)
	results := make(chan bool, n)
	// n-1 waiters block (the n-th participant never arrives).
	for i := 0; i < n-1; i++ {
		go func() { results <- b.Wait(true) }()
	}
	time.Sleep(5 * time.Millisecond)
	b.Cancel()
	for i := 0; i < n-1; i++ {
		select {
		case out := <-results:
			if out {
				t.Fatal("canceled Wait must return false")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Cancel did not release a blocked waiter")
		}
	}
	// Future waits return immediately; Cancel is idempotent.
	b.Cancel()
	done := make(chan bool, 1)
	go func() { done <- b.Wait(true) }()
	select {
	case out := <-done:
		if out {
			t.Fatal("post-cancel Wait must return false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post-cancel Wait blocked")
	}
}
