// Package coord provides the coordination primitives behind the three
// parallel evaluation strategies the paper compares (§4): the reusable
// barrier of the Global (BSP) strategy, the bounded-staleness clock of
// SSP, and the asynchronous global-fixpoint detector used by SSP and
// DWS (§6.1: all workers inactive and every produced tuple consumed).
package coord

import (
	"sync"
	"sync/atomic"
)

// Kind selects a coordination strategy.
type Kind uint8

const (
	// Global coordinates with a barrier after every global iteration
	// (the DeALS-MC scheme, Algorithm 1).
	Global Kind = iota
	// SSP lets fast workers run up to Slack local iterations ahead of
	// the slowest active worker (the stale-synchronous scheme of [14]).
	SSP
	// DWS is the paper's Dynamic Weight-based Strategy: no global
	// coordination, per-worker (ω, τ) wait decisions from queueing
	// statistics (Algorithm 2).
	DWS
)

// String names the strategy as used in benchmark output.
func (k Kind) String() string {
	switch k {
	case Global:
		return "global"
	case SSP:
		return "ssp"
	case DWS:
		return "dws"
	default:
		return "unknown"
	}
}

// Barrier is a reusable n-party barrier with a per-round OR-reduction:
// Wait returns the disjunction of every participant's flag for the
// round. The Global strategy uses the flag to agree on "someone still
// has a delta". A canceled barrier (see Cancel) releases every waiter
// and makes all future Waits return false immediately, so workers of
// an aborted run can never deadlock waiting for a peer that already
// exited.
type Barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	count    int
	gen      uint64
	flag     bool
	out      bool
	canceled bool
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants arrive and returns the OR of
// their flags. On a canceled barrier Wait returns false immediately —
// the caller must treat that as "no one has a delta" and exit its
// round loop (workers additionally observe the run's cancel flag).
func (b *Barrier) Wait(flag bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.canceled {
		return false
	}
	gen := b.gen
	if flag {
		b.flag = true
	}
	b.count++
	if b.count == b.n {
		b.out = b.flag
		b.flag = false
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.out
	}
	for gen == b.gen && !b.canceled {
		b.cond.Wait()
	}
	if b.canceled {
		return false
	}
	return b.out
}

// Cancel permanently releases the barrier: every blocked Wait wakes
// and returns false, and every future Wait returns false without
// blocking. Used to unblock Global-strategy workers when a run is
// canceled; idempotent.
func (b *Barrier) Cancel() {
	b.mu.Lock()
	b.canceled = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Clock tracks per-worker local iteration counts for the SSP bound:
// worker w may start its next iteration only while it is at most Slack
// iterations ahead of the slowest non-parked worker. Parked workers
// (local fixpoint, waiting for input) do not hold others back.
type Clock struct {
	slack  int64
	iters  []atomic.Int64
	parked []atomic.Bool
}

// NewClock returns a clock for n workers with the given slack s.
func NewClock(n, slack int) *Clock {
	return &Clock{
		slack:  int64(slack),
		iters:  make([]atomic.Int64, n),
		parked: make([]atomic.Bool, n),
	}
}

// Advance records a completed local iteration of worker w.
func (c *Clock) Advance(w int) { c.iters[w].Add(1) }

// Iter returns worker w's local iteration count.
func (c *Clock) Iter(w int) int64 { return c.iters[w].Load() }

// Park marks worker w as waiting for input.
func (c *Clock) Park(w int) { c.parked[w].Store(true) }

// Unpark marks worker w runnable.
func (c *Clock) Unpark(w int) { c.parked[w].Store(false) }

// MayProceed reports whether worker w is within the staleness bound.
func (c *Clock) MayProceed(w int) bool {
	my := c.iters[w].Load()
	min := int64(-1)
	for i := range c.iters {
		if i == w || c.parked[i].Load() {
			continue
		}
		it := c.iters[i].Load()
		if min < 0 || it < min {
			min = it
		}
	}
	if min < 0 {
		return true // everyone else is parked
	}
	return my-min <= c.slack
}
