package coord

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestInboxSetDrain(t *testing.T) {
	b := NewInbox(16)
	if b.Any() {
		t.Fatal("fresh inbox should be empty")
	}
	b.Set(3)
	b.Set(11)
	b.Set(3) // idempotent
	if !b.Any() {
		t.Fatal("Any should see flagged producers")
	}
	var got []int
	b.Drain(func(j int) { got = append(got, j) })
	if len(got) != 2 || got[0] != 3 || got[1] != 11 {
		t.Fatalf("Drain visited %v, want [3 11]", got)
	}
	if b.Any() {
		t.Fatal("Drain should clear the bitmap")
	}
	b.Drain(func(j int) { t.Fatalf("unexpected visit of %d", j) })
}

func TestInboxMultiWord(t *testing.T) {
	const n = 130 // three words
	b := NewInbox(n)
	want := []int{0, 63, 64, 127, 128, 129}
	for _, j := range want {
		b.Set(j)
	}
	var got []int
	b.Drain(func(j int) { got = append(got, j) })
	if len(got) != len(want) {
		t.Fatalf("Drain visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain visited %v, want %v", got, want)
		}
	}
}

// TestInboxNoLostWakeup is the protocol test: producers "push" by
// bumping a per-producer pending counter then calling Set (push before
// flag), the consumer drains by swapping the bitmap then collecting
// flagged counters (flag before scan). Every produced unit must be
// collected — a lost wakeup would strand units and hang the loop.
func TestInboxNoLostWakeup(t *testing.T) {
	const producers = 8
	const perProducer = 20000
	b := NewInbox(producers)
	pending := make([]atomic.Int64, producers)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < perProducer; k++ {
				pending[p].Add(1) // the "ring push"
				b.Set(p)
			}
		}(p)
	}

	collected := int64(0)
	for collected < producers*perProducer {
		if !b.Any() {
			runtime.Gosched()
			continue
		}
		b.Drain(func(j int) {
			collected += pending[j].Swap(0) // the "ring drain"
		})
	}
	wg.Wait()
	// Residue check: all bits that matter were observed.
	b.Drain(func(j int) {
		if v := pending[j].Load(); v != 0 {
			t.Errorf("producer %d left %d units stranded", j, v)
		}
	})
	if collected != producers*perProducer {
		t.Fatalf("collected %d, want %d", collected, producers*perProducer)
	}
}
