package coord

import (
	"math/bits"
	"sync/atomic"
)

// Inbox is one consumer's wakeup bitmap over its n producers: bit j is
// set when producer j may have pushed into the consumer's ring M^j
// since the consumer last looked. It replaces the O(n) scan of every
// inbox ring (2n cache lines, most of them owned by other cores) with
// a load of one word — and lets a parked worker spin on that single
// word instead of walking all its rings.
//
// The protocol that makes wakeups lossless with only a conditional
// read-mostly flag write on the producer side:
//
//   - producer: push the frame into the ring FIRST, then set the bit —
//     but only if a load sees it clear;
//   - consumer: swap the word to zero FIRST, then drain the flagged
//     rings.
//
// If the producer's load sees the bit set, either the consumer has not
// swapped yet (the standing bit covers the new frame), or — because
// the swap and the load hit the same atomic word and Go atomics are
// sequentially consistent — the swap ordered after the load, which
// ordered after the push, so the consumer's subsequent ring drain must
// observe the frame. Either way nothing is stranded; in steady state a
// busy consumer's bit stays set and producers only perform shared
// reads of it, causing no coherence traffic at all.
type Inbox struct {
	words []atomic.Uint64
}

// NewInbox returns an inbox bitmap for n producers. The backing array
// is rounded up to whole cache lines so two consumers' bitmaps never
// share a line.
func NewInbox(n int) *Inbox {
	nw := (n + 63) / 64
	if nw == 0 {
		nw = 1
	}
	padded := (nw + 7) &^ 7
	return &Inbox{words: make([]atomic.Uint64, padded)[:nw]}
}

// Set flags producer j. Call only after the corresponding ring push
// has completed.
func (b *Inbox) Set(j int) {
	w, bit := j>>6, uint64(1)<<(uint(j)&63)
	for {
		old := b.words[w].Load()
		if old&bit != 0 {
			return // steady state: shared read only
		}
		// CAS loop instead of Uint64.Or to keep the module's go1.22
		// floor; contention is rare because the bit is usually set.
		if b.words[w].CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// Any reports whether any producer is flagged. For n ≤ 64 this is a
// single shared load — the word a parked worker spins on.
func (b *Inbox) Any() bool {
	for i := range b.words {
		if b.words[i].Load() != 0 {
			return true
		}
	}
	return false
}

// Drain atomically claims the flagged producers and visits each one.
// The caller must scan producer j's ring to empty when visited; frames
// pushed concurrently re-flag the bit for the next Drain.
func (b *Inbox) Drain(visit func(j int)) {
	for i := range b.words {
		if b.words[i].Load() == 0 {
			continue
		}
		s := b.words[i].Swap(0)
		for s != 0 {
			j := bits.TrailingZeros64(s)
			s &= s - 1
			visit(i<<6 + j)
		}
	}
}
