package coord

import (
	"testing"
	"time"
)

func TestCoarseClockMonotone(t *testing.T) {
	c := NewCoarseClock()
	if c.Now() <= 0 {
		t.Fatal("a fresh clock must read positive (zero is the unset sentinel)")
	}
	r1 := c.Refresh()
	time.Sleep(time.Millisecond)
	r2 := c.Refresh()
	if r2 <= r1 {
		t.Fatalf("refresh not monotone: %d then %d", r1, r2)
	}
	if now := c.Now(); now != r2 {
		t.Fatalf("Now = %d, want last refresh %d", now, r2)
	}
}

func TestBackoffEscalation(t *testing.T) {
	var b Backoff
	for i := 0; i < backoffYieldRounds; i++ {
		if b.Pause() {
			t.Fatalf("round %d slept; the first %d rounds must only yield", i, backoffYieldRounds)
		}
	}
	if !b.Pause() {
		t.Fatal("sleep tier should begin after the yield rounds")
	}
	if b.sleep != BackoffSleepMin {
		t.Fatalf("first sleep = %v, want %v", b.sleep, BackoffSleepMin)
	}
	for i := 0; i < 10; i++ {
		b.Pause()
	}
	if b.sleep != BackoffSleepMax {
		t.Fatalf("sleep did not cap: %v, want %v", b.sleep, BackoffSleepMax)
	}
	b.Reset()
	if b.Pause() {
		t.Fatal("Reset must return to the yield tier")
	}
}

func TestBackoffHelpPreemptsSleep(t *testing.T) {
	helped := 0
	b := Backoff{Help: func() bool { helped++; return helped <= 3 }}
	// While Help keeps finding work, the backoff must never sleep and
	// must reset to the yield tier after each helped round.
	for i := 0; i < 3*(backoffYieldRounds+1); i++ {
		if b.Pause() {
			t.Fatalf("slept on round %d while Help still had work", i)
		}
	}
	if helped != 3 {
		t.Fatalf("Help called %d times, want 3", helped)
	}
	// Once Help runs dry the sleep tier resumes.
	slept := false
	for i := 0; i < backoffYieldRounds+2 && !slept; i++ {
		slept = b.Pause()
	}
	if !slept {
		t.Fatal("backoff never escalated to sleep after Help ran dry")
	}
	if helped != 4 {
		t.Fatalf("Help called %d times total, want 4 (one failed probe)", helped)
	}
}

func TestBackoffRefreshesClock(t *testing.T) {
	c := NewCoarseClock()
	before := c.Now()
	b := Backoff{Clk: c}
	for !b.Pause() {
	}
	if c.Now() <= before {
		t.Fatal("a sleep tick must refresh the coarse clock")
	}
}
