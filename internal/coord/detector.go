package coord

import "sync/atomic"

// detShard is one worker's private slice of the fixpoint detector's
// state. Every field is written by exactly one worker; TryFinish (any
// caller) only reads. The shard is padded to two cache lines so that a
// worker bumping its produced counter never invalidates a line another
// worker's counters live on — with the old process-wide counters, every
// flushed or drained frame forced a cross-core exchange of the same two
// lines.
type detShard struct {
	// produced counts tuples this worker has sent into other workers'
	// buffers (recorded before the enqueue, so for true totals
	// produced ≥ consumed always holds).
	produced atomic.Int64
	// consumed counts tuples this worker has drained from its buffers.
	consumed atomic.Int64
	// state is the worker's activity epoch: even = active, odd =
	// parked. Every transition increments it, so the epoch is strictly
	// monotone and an unchanged epoch between two reads proves the
	// worker made no transition — and therefore, by the engine's
	// discipline that Produce/Consume happen only while active, that
	// the shard's counters were frozen in between.
	state atomic.Uint64

	_ [104]byte // pad the shard to 128 B (2 lines: no false sharing, no adjacent-line prefetch traffic)
}

// Detector implements the asynchronous termination check of §6.1 with
// worker-local state: per-worker padded (produced, consumed, epoch)
// shards replace the global counters, so the steady-state cost of
// recording a flushed or drained frame is an uncontended RMW on the
// worker's own cache line. The global fixpoint is reached when every
// worker is parked and every produced tuple has been consumed.
type Detector struct {
	done   atomic.Bool
	shards []detShard
}

// NewDetector returns a detector for n workers, all initially active
// (epoch 0).
func NewDetector(n int) *Detector {
	return &Detector{shards: make([]detShard, n)}
}

// Workers returns the number of worker shards.
func (d *Detector) Workers() int { return len(d.shards) }

// Produce records k tuples worker w sent into some other worker's
// buffer. It must be called before the tuples are enqueued so that
// true-produced ≥ true-consumed always holds for in-flight work, and
// only while w is active.
func (d *Detector) Produce(w, k int) { d.shards[w].produced.Add(int64(k)) }

// Consume records k tuples worker w drained from its buffers. It must
// only be called while w is active (SetActive precedes the drain).
func (d *Detector) Consume(w, k int) { d.shards[w].consumed.Add(int64(k)) }

// SetInactive marks worker w idle (empty delta, empty buffers). The
// worker must currently be active.
func (d *Detector) SetInactive(w int) { d.shards[w].state.Add(1) }

// SetActive marks the idle worker w busy again. It must precede any
// Consume or Produce call of the new activity period.
func (d *Detector) SetActive(w int) { d.shards[w].state.Add(1) }

// TryFinish declares the global fixpoint if every worker is parked and
// no tuple is in flight; it returns the final done state.
//
// Why the double scan is sound: epochs are strictly monotone, so the
// two scans summing to the same value means every worker's epoch was
// unchanged — each worker was parked for the whole window between its
// first-scan read and its second-scan read, a window that covers every
// counter read in the middle. Produce/Consume are only called while
// active, so every shard's counters were frozen while we read them:
// the produced and consumed sums are exact totals at a single common
// instant. Their equality means no tuple was in flight at that
// instant, and a parked worker holds no pending delta, so nothing can
// ever produce again — the fixpoint is permanent. Without the epoch
// freeze there is a real race: a worker can wake, consume, produce and
// re-park entirely between the produced read and the consumed read,
// making stale sums look equal while its derivations sit unconsumed.
func (d *Detector) TryFinish() bool {
	if d.done.Load() {
		return true
	}
	var sum1 uint64
	for i := range d.shards {
		s := d.shards[i].state.Load()
		if s&1 == 0 {
			return false // worker i is active
		}
		sum1 += s
	}
	var produced, consumed int64
	for i := range d.shards {
		consumed += d.shards[i].consumed.Load()
		produced += d.shards[i].produced.Load()
	}
	if produced != consumed {
		return false
	}
	var sum2 uint64
	for i := range d.shards {
		s := d.shards[i].state.Load()
		if s&1 == 0 {
			return false
		}
		sum2 += s
	}
	if sum1 != sum2 {
		return false // some worker transitioned mid-check
	}
	d.done.Store(true)
	return true
}

// Done reports whether the global fixpoint has been declared.
func (d *Detector) Done() bool { return d.done.Load() }

// Produced returns the cumulative produced-tuple count (for stats).
func (d *Detector) Produced() int64 {
	var n int64
	for i := range d.shards {
		n += d.shards[i].produced.Load()
	}
	return n
}

// Consumed returns the cumulative consumed-tuple count (for tests and
// stats).
func (d *Detector) Consumed() int64 {
	var n int64
	for i := range d.shards {
		n += d.shards[i].consumed.Load()
	}
	return n
}
