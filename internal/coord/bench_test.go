package coord

import (
	"sync/atomic"
	"testing"
)

// globalDetector is the pre-sharding Detector — two process-wide
// counters plus an inactive count — kept verbatim as the contention
// baseline for BenchmarkDetector. Every Produce/Consume from every
// worker hits the same two cache lines.
type globalDetector struct {
	n        int32
	produced atomic.Int64
	consumed atomic.Int64
	inactive atomic.Int32
	done     atomic.Bool
}

func (d *globalDetector) Produce(k int) { d.produced.Add(int64(k)) }
func (d *globalDetector) Consume(k int) { d.consumed.Add(int64(k)) }
func (d *globalDetector) SetInactive()  { d.inactive.Add(1) }
func (d *globalDetector) TryFinish() bool {
	if d.done.Load() {
		return true
	}
	if d.inactive.Load() == d.n && d.produced.Load() == d.consumed.Load() {
		if d.inactive.Load() == d.n {
			d.done.Store(true)
			return true
		}
	}
	return false
}

// BenchmarkDetector measures the steady-state cost of recording
// exchanged frames — one Produce and one Consume per op, the exact
// accounting flushBatch and gather perform — under parallel load.
// The global baseline serializes all goroutines on two shared cache
// lines; the sharded detector gives each goroutine its own padded
// line. (On a single-core host the gap understates the multicore
// effect: there is no cross-core coherence traffic to eliminate.)
func BenchmarkDetector(b *testing.B) {
	const workers = 16
	b.Run("global", func(b *testing.B) {
		d := &globalDetector{n: workers}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				d.Produce(1)
				d.Consume(1)
			}
		})
	})
	b.Run("sharded", func(b *testing.B) {
		d := NewDetector(workers)
		var ids atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			w := int(ids.Add(1)-1) % workers
			for pb.Next() {
				d.Produce(w, 1)
				d.Consume(w, 1)
			}
		})
	})
}

// BenchmarkDetectorTryFinish measures the fixpoint probe on a
// quiescent-looking but unfinished system (counters unequal), the
// state a parked worker polls in. The sharded probe is O(workers) —
// which is exactly why park() throttles it exponentially behind the
// O(1) inbox-bitmap check.
func BenchmarkDetectorTryFinish(b *testing.B) {
	const workers = 16
	b.Run("global", func(b *testing.B) {
		d := &globalDetector{n: workers}
		d.Produce(1)
		for i := 0; i < workers; i++ {
			d.SetInactive()
		}
		for i := 0; i < b.N; i++ {
			if d.TryFinish() {
				b.Fatal("must not finish")
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		d := NewDetector(workers)
		d.Produce(0, 1)
		for i := 0; i < workers; i++ {
			d.SetInactive(i)
		}
		for i := 0; i < b.N; i++ {
			if d.TryFinish() {
				b.Fatal("must not finish")
			}
		}
	})
}

// BenchmarkInboxSet measures the producer-side flag cost in the steady
// state where the bit is already set: a single shared read, no write.
func BenchmarkInboxSet(b *testing.B) {
	ib := NewInbox(16)
	for i := 0; i < b.N; i++ {
		ib.Set(7)
	}
}
