package coord

import (
	"runtime"
	"sync/atomic"
	"time"
)

// CoarseClock is an engine-wide monotonic clock with amortized reads:
// one atomic nanosecond word that workers refresh at natural
// boundaries (iteration start/end, backoff sleeps) and everything else
// reads for free. The exchange hot path used to call
// time.Now().UnixNano() per flushed frame and per gate tick — a vDSO
// call plus a fresh timestamp computation each time; with the coarse
// clock those sites cost one shared atomic load.
//
// Readings are nanoseconds since the clock's creation, always ≥ 1 (so
// a reading never collides with a zero "unset" sentinel). Concurrent
// refreshes may store values a few nanoseconds out of order; durations
// computed from one goroutine's own Refresh results are exact, and
// Now() is monotone up to that refresher jitter — coarse by design.
type CoarseClock struct {
	base  time.Time
	nanos atomic.Int64
}

// NewCoarseClock returns a running clock whose readings start at 1.
func NewCoarseClock() *CoarseClock {
	c := &CoarseClock{base: time.Now()}
	c.nanos.Store(1)
	return c
}

// Refresh takes a real monotonic reading, publishes it, and returns it.
func (c *CoarseClock) Refresh() int64 {
	n := int64(time.Since(c.base)) + 1
	c.nanos.Store(n)
	return n
}

// Now returns the last published reading without touching the wall
// clock. It is as stale as the gap since anyone's last Refresh.
func (c *CoarseClock) Now() int64 { return c.nanos.Load() }

// Backoff waiting tiers. The yield tier comes first: on an
// oversubscribed or single-core host a pure spin starves the very
// producer being waited on, so the cheapest tier is runtime.Gosched
// (a handoff within the Go scheduler, no syscall when there is nothing
// to run). After backoffYieldRounds the backoff escalates to sleeping,
// doubling from BackoffSleepMin to BackoffSleepMax.
const (
	backoffYieldRounds = 16
	// BackoffSleepMin is the first sleep duration of the sleep tier.
	BackoffSleepMin = 20 * time.Microsecond
	// BackoffSleepMax caps the sleep tier; it bounds both wakeup
	// latency and the interval between a parked worker's fixpoint
	// checks. Kept close to BackoffSleepMin: the trajectory suite's
	// coordination-bound cells (small deltas, many workers) pay the cap
	// as wakeup latency on the critical path, and a 200µs cap measurably
	// slowed them where 50µs (the old flat park sleep) does not.
	BackoffSleepMax = 50 * time.Microsecond
)

// Backoff is the shared adaptive spin→yield→sleep helper behind
// park(), dwsGate() and sspGate(). The zero value is ready to use;
// Reset it when the condition being waited for is fulfilled so the
// next wait starts cheap again.
type Backoff struct {
	// Clk, when set, is refreshed after every sleep so stale coarse
	// readings cannot outlive a sleep tick.
	Clk *CoarseClock
	// Help, when set, is consulted before the backoff escalates past
	// the yield tier: if it finds (and performs) useful work it returns
	// true and the backoff resets to the cheapest tier instead of
	// sleeping. This is how gate and park waits stay responsive to the
	// engine's steal plane — a worker about to sleep 20–50µs first asks
	// whether a peer has morsels it could run.
	Help  func() bool
	round uint32
	sleep time.Duration
}

// Reset returns the backoff to the cheapest tier.
func (b *Backoff) Reset() {
	b.round = 0
	b.sleep = 0
}

// Pause blocks the caller for the current tier's duration and
// escalates. It reports whether it slept — the expensive tier —
// which callers use to amortize costly checks (an O(n) TryFinish, a
// clock refresh) onto sleep ticks only.
func (b *Backoff) Pause() bool {
	if b.round < backoffYieldRounds {
		b.round++
		runtime.Gosched()
		return false
	}
	if b.Help != nil && b.Help() {
		b.Reset()
		return false
	}
	if b.sleep == 0 {
		b.sleep = BackoffSleepMin
	} else if b.sleep < BackoffSleepMax {
		b.sleep *= 2
		if b.sleep > BackoffSleepMax {
			b.sleep = BackoffSleepMax
		}
	}
	time.Sleep(b.sleep)
	if b.Clk != nil {
		b.Clk.Refresh()
	}
	return true
}
