package coord

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestDetectorBasicLifecycle(t *testing.T) {
	d := NewDetector(2)
	if d.TryFinish() {
		t.Fatal("active workers should block termination")
	}
	d.Produce(0, 5)
	d.SetInactive(0)
	d.SetInactive(1)
	if d.TryFinish() {
		t.Fatal("in-flight tuples should block termination")
	}
	d.SetActive(1)
	d.Consume(1, 5)
	d.SetInactive(1)
	if !d.TryFinish() || !d.Done() {
		t.Fatal("all inactive + drained should terminate")
	}
}

func TestDetectorReactivation(t *testing.T) {
	d := NewDetector(2)
	d.SetInactive(0)
	d.Produce(1, 1)
	// Worker 0 wakes up to process the tuple.
	d.SetInactive(1)
	d.SetActive(0)
	d.Consume(0, 1)
	if d.TryFinish() {
		t.Fatal("one active worker should block termination")
	}
	d.SetInactive(0)
	if !d.TryFinish() {
		t.Fatal("should terminate after final park")
	}
	if d.Produced() != 1 || d.Consumed() != 1 {
		t.Fatalf("produced = %d, consumed = %d", d.Produced(), d.Consumed())
	}
}

// TestDetectorEpochFreeze drives the exact interleaving the epoch
// double-scan exists for: between TryFinish's counter reads, a parked
// worker wakes, consumes, produces and re-parks, leaving stale sums
// that look equal while its derivations sit unconsumed. The epoch sum
// must change and veto the fixpoint.
func TestDetectorEpochFreeze(t *testing.T) {
	d := NewDetector(2)
	d.Produce(0, 2)
	d.SetInactive(0)
	d.SetInactive(1)

	// Simulate worker 1 waking and re-parking: any such round trip
	// changes its epoch by 2, so two scans can never sum equal across
	// it. We can't pause TryFinish mid-call, so assert the ingredient
	// directly: the epoch delta.
	before := d.shards[1].state.Load()
	d.SetActive(1)
	d.Consume(1, 2)
	d.Produce(1, 3)
	d.SetInactive(1)
	after := d.shards[1].state.Load()
	if after != before+2 {
		t.Fatalf("wake/park round trip moved epoch %d -> %d, want +2", before, after)
	}
	// Counters are now unequal (3 in flight); no fixpoint.
	if d.TryFinish() {
		t.Fatal("fixpoint declared with 3 tuples in flight")
	}
	d.SetActive(0)
	d.Consume(0, 3)
	d.SetInactive(0)
	if !d.TryFinish() {
		t.Fatal("quiescent system must reach fixpoint")
	}
}

func TestDetectorShardLayout(t *testing.T) {
	var s detShard
	if sz := unsafe.Sizeof(s); sz != 128 {
		t.Fatalf("detShard size = %d, want 128 (two cache lines)", sz)
	}
	d := NewDetector(4)
	a0 := uintptr(unsafe.Pointer(&d.shards[0]))
	a1 := uintptr(unsafe.Pointer(&d.shards[1]))
	if a1-a0 != 128 {
		t.Fatalf("shard stride = %d, want 128", a1-a0)
	}
}

// TestDetectorNoPrematureFixpoint bounces a single token between two
// workers that fully park between hops while a third goroutine hammers
// TryFinish on every scheduler slot it gets. The fixpoint must never be
// declared while the token is alive; when it is declared, the hop
// budget must be exhausted and both channels empty.
func TestDetectorNoPrematureFixpoint(t *testing.T) {
	const hops = 5000
	d := NewDetector(2)
	var remaining atomic.Int64
	remaining.Store(hops)
	ch := [2]chan struct{}{make(chan struct{}, 1), make(chan struct{}, 1)}

	var wg sync.WaitGroup
	run := func(i int) {
		defer wg.Done()
		hasToken := i == 0 // worker 0's initial local delta
		for {
			if hasToken {
				if remaining.Add(-1) >= 0 {
					// Produce before enqueue, exactly like flushBatch.
					d.Produce(i, 1)
					ch[1-i] <- struct{}{}
				}
				hasToken = false
				continue
			}
			d.SetInactive(i)
			for {
				if d.TryFinish() {
					return
				}
				if len(ch[i]) > 0 {
					// Inbox check, then SetActive, then consume —
					// the engine's park() ordering.
					d.SetActive(i)
					<-ch[i]
					d.Consume(i, 1)
					hasToken = true
					break
				}
				runtime.Gosched()
			}
		}
	}
	wg.Add(3)
	go run(0)
	go run(1)
	var declaredEarly atomic.Int64
	go func() {
		defer wg.Done()
		for !d.TryFinish() {
			// Yield between probes: a raw spin starves the token
			// workers on a single-core host without making the
			// interleaving any more adversarial.
			runtime.Gosched()
		}
		if r := remaining.Load(); r >= 0 {
			declaredEarly.Store(r + 1)
		}
	}()
	wg.Wait()
	if v := declaredEarly.Load(); v != 0 {
		t.Fatalf("fixpoint declared with %d hops still pending", v)
	}
	if len(ch[0])+len(ch[1]) != 0 {
		t.Fatal("fixpoint declared with a token still enqueued")
	}
	if d.Produced() != d.Consumed() {
		t.Fatalf("produced %d != consumed %d at fixpoint", d.Produced(), d.Consumed())
	}
}

// TestDetectorQuiescenceProperty is the randomized termination-safety
// test: n workers exchange tokens through buffered channels following
// the engine's exact discipline (Produce before enqueue; inbox check,
// SetActive, then Consume; SetInactive only with nothing pending), with
// random fan-out and scheduling jitter. Whenever any worker observes
// the fixpoint, the ground-truth in-flight count must be zero and every
// channel empty; afterwards the detector's totals must balance. Run
// with -race in CI.
func TestDetectorQuiescenceProperty(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("n=%d/seed=%d", n, seed), func(t *testing.T) {
				runQuiescenceSim(t, n, seed)
			})
		}
	}
}

func runQuiescenceSim(t *testing.T, n int, seed int64) {
	const totalBudget = 4000
	d := NewDetector(n)
	var budget, inflight atomic.Int64
	budget.Store(totalBudget)
	chans := make([]chan struct{}, n)
	for i := range chans {
		chans[i] = make(chan struct{}, totalBudget+1)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1009 + int64(i)))
			pending := 0
			if i == 0 {
				pending = 64 // seed work, like base rules
			}
			for {
				// Drain the inbox (we are active here).
				for len(chans[i]) > 0 {
					<-chans[i]
					d.Consume(i, 1)
					inflight.Add(-1)
					pending++
				}
				if pending > 0 {
					pending--
					for k := rng.Intn(3); k > 0; k-- {
						if budget.Add(-1) < 0 {
							break
						}
						dest := rng.Intn(n)
						if dest == i {
							pending++ // self-bound derivation: no exchange
							continue
						}
						d.Produce(i, 1)
						inflight.Add(1)
						chans[dest] <- struct{}{}
					}
					if rng.Intn(4) == 0 {
						runtime.Gosched()
					}
					continue
				}
				d.SetInactive(i)
				for {
					if d.TryFinish() {
						if v := inflight.Load(); v != 0 {
							t.Errorf("worker %d saw fixpoint with %d tuples in flight", i, v)
						}
						return
					}
					if len(chans[i]) > 0 {
						d.SetActive(i)
						break
					}
					runtime.Gosched()
				}
			}
		}(i)
	}
	wg.Wait()

	if !d.Done() {
		t.Fatal("simulation ended without a declared fixpoint")
	}
	for i, ch := range chans {
		if len(ch) != 0 {
			t.Errorf("channel %d holds %d tokens after fixpoint", i, len(ch))
		}
	}
	if d.Produced() != d.Consumed() {
		t.Errorf("produced %d != consumed %d", d.Produced(), d.Consumed())
	}
	if v := inflight.Load(); v != 0 {
		t.Errorf("ground-truth in-flight = %d after fixpoint", v)
	}
}
