// Package physical lowers logical rule plans into executable slot
// programs (paper §5.2). Each rule becomes a pipeline over a flat slot
// array: an outer access that binds slots from delta or base tuples,
// followed by join probes, anti-join probes, selections and lets, and a
// head emitter that feeds the Distribute operator. The compiler also
// resolves which replica (access path) every recursive probe targets
// and which global hash indexes must exist on base relations.
package physical

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Param is a typed query-parameter value ($name bindings).
type Param struct {
	Value storage.Value
	Type  storage.Type
}

// Program is a fully compiled, executable query.
type Program struct {
	Plan   *plan.Plan
	Syms   *storage.SymbolTable
	Params map[string]Param
	Strata []*Stratum
	// BaseLookups records, per base (EDB or earlier-stratum) relation,
	// the column sets that need global hash indexes.
	BaseLookups map[string][][]int
}

// Stratum is the executable form of one evaluation unit.
type Stratum struct {
	Logical   *plan.StratumPlan
	Recursive bool
	Preds     []*Pred
	PredIdx   map[string]int
	BaseRules []*Rule
	RecRules  []*Rule
}

// Pred is the runtime descriptor of a stratum-local predicate.
type Pred struct {
	Plan *plan.PredPlan
	Idx  int
	// Lookups lists the column sets for which replicas maintain
	// incremental join indexes (set-semantics predicates only;
	// aggregate replicas are probed through their group B+-tree).
	Lookups [][]int
	// KeyTypes caches the column types for hashing and B+-tree keys.
	KeyTypes []storage.Type
	// KeyOrders gives, per replica, the permutation of group-key
	// columns used as the replica's B+-tree key: the partition path
	// first, the remaining group columns after. Aligned probes are
	// then always prefix scans (§6.2.1's access-aware index layout).
	KeyOrders [][]int
}

// ValueSrc produces one value from a slot or a constant.
type ValueSrc struct {
	// Slot is the source slot, or -1 for a constant.
	Slot  int
	Const storage.Value
	// Type is the source's type (conversion happens at the sink).
	Type storage.Type
}

// Get reads the source against a slot array.
func (v ValueSrc) Get(slots []storage.Value) storage.Value {
	if v.Slot >= 0 {
		return slots[v.Slot]
	}
	return v.Const
}

// ColSlot assigns a tuple column to a slot.
type ColSlot struct{ Col, Slot int }

// Access describes reading one atom: the outer scan, a join probe or a
// negation probe.
type Access struct {
	Pred      string
	Recursive bool
	// PredIdx is the stratum-local predicate index, -1 for base and
	// earlier-stratum relations.
	PredIdx int
	// PathIdx selects the replica whose partitioning matches the probe
	// key (recursive probes).
	PathIdx int
	// LookupIdx selects the incremental index on the replica
	// (set-semantics recursive probes) or the global hash index (base
	// probes); -1 for full scans and aggregate B+-tree probes.
	LookupIdx int
	// KeyCols/KeySrcs form the equi-probe key.
	KeyCols []int
	KeySrcs []ValueSrc
	// AggProbe marks a probe into an aggregate replica's group
	// B+-tree; PrefixLen group columns form the scan prefix.
	AggProbe  bool
	PrefixLen int
	// PostCols/PostSrcs are equality checks applied to matches (bound
	// columns that could not join the key).
	PostCols []int
	PostSrcs []ValueSrc
	// EqCols are intra-atom repeated-variable checks: column pairs
	// that must be equal.
	EqCols [][2]int
	// Assign binds unbound columns to fresh slots.
	Assign []ColSlot
	// Method is the plan's join label (for stats and EXPLAIN).
	Method plan.JoinMethod
}

// OpKind discriminates pipeline operators.
type OpKind uint8

const (
	// OpJoin probes a relation and binds new slots per match.
	OpJoin OpKind = iota
	// OpNeg rejects the binding when a match exists.
	OpNeg
	// OpCond filters by a comparison.
	OpCond
	// OpLet binds a slot from an expression.
	OpLet
)

// Op is one pipeline operator after the outer access.
type Op struct {
	Kind   OpKind
	Access *Access
	// OpCond
	Cmp  ast.CmpOp
	L, R *Expr
	// OpLet
	Slot     int
	Expr     *Expr
	SlotType storage.Type
}

// Head emits the rule's derivations.
type Head struct {
	Pred    string
	PredIdx int
	// Cols produce the group-key columns (aggregates) or the whole
	// tuple (set semantics).
	Cols []ValueSrc
	// Types are the target schema column types, including the
	// aggregate column.
	Types []storage.Type
	Agg   storage.AggKind
	// AggVal produces the aggregated value (min/max/sum); for count it
	// is the constant 1.
	AggVal ValueSrc
	// Contrib produces the contributor (count/sum).
	Contrib ValueSrc
}

// Rule is a compiled rule or delta variant.
type Rule struct {
	Logical  *plan.RulePlan
	NumSlots int
	// Outer is the driving access; nil for fact rules.
	Outer *Access
	Ops   []Op
	Head  Head
	// OuterPredIdx / OuterPathIdx locate the delta stream driving a
	// recursive variant; OuterPredIdx is -1 for base rules.
	OuterPredIdx int
	OuterPathIdx int
	// LastJoin is the index of the deepest OpJoin in Ops (-1 when the
	// rule has none) and PrevJoin[i] the nearest OpJoin strictly before
	// op i (-1 when none). The engine's iterative kernel backtracks
	// through these instead of unwinding a call stack: when op i fails
	// or the head emits, control jumps straight to the join frame whose
	// cursor can produce the next match.
	LastJoin int
	PrevJoin []int
	// MaxKeyLen is the widest probe key over all accesses, so the
	// executor can size per-frame key scratch once.
	MaxKeyLen int
}

// Compile lowers a logical plan with concrete parameter bindings.
func Compile(p *plan.Plan, params map[string]Param, syms *storage.SymbolTable) (*Program, error) {
	if syms == nil {
		syms = storage.NewSymbolTable()
	}
	prog := &Program{
		Plan:        p,
		Syms:        syms,
		Params:      params,
		BaseLookups: make(map[string][][]int),
	}
	for _, sp := range p.Strata {
		st := &Stratum{
			Logical:   sp,
			Recursive: sp.Stratum.Recursive,
			PredIdx:   make(map[string]int),
		}
		for _, name := range sp.Stratum.Preds {
			pp := sp.Preds[name]
			pred := &Pred{Plan: pp, Idx: len(st.Preds)}
			for _, c := range pp.Schema.Cols {
				pred.KeyTypes = append(pred.KeyTypes, c.Type)
			}
			for _, path := range pp.Paths {
				pred.KeyOrders = append(pred.KeyOrders, keyOrder(path, pp.GroupLen))
			}
			st.PredIdx[name] = pred.Idx
			st.Preds = append(st.Preds, pred)
		}
		for _, rp := range sp.BaseRules {
			r, err := prog.compileRule(st, rp)
			if err != nil {
				return nil, err
			}
			st.BaseRules = append(st.BaseRules, r)
		}
		for _, rp := range sp.RecRules {
			r, err := prog.compileRule(st, rp)
			if err != nil {
				return nil, err
			}
			st.RecRules = append(st.RecRules, r)
		}
		prog.Strata = append(prog.Strata, st)
	}
	return prog, nil
}

// ruleCompiler tracks per-rule compilation state.
type ruleCompiler struct {
	prog     *Program
	stratum  *Stratum
	slots    map[string]int
	varTypes map[string]storage.Type
	numSlots int
}

func (c *ruleCompiler) slotOf(name string) (int, bool) {
	s, ok := c.slots[name]
	return s, ok
}

func (c *ruleCompiler) alloc(name string) int {
	s := c.numSlots
	c.slots[name] = s
	c.numSlots++
	return s
}

func (prog *Program) compileRule(st *Stratum, rp *plan.RulePlan) (*Rule, error) {
	a := prog.Plan.Analysis
	vt, err := a.RuleVarTypes(rp.Rule)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", rp.Rule.Pos, err)
	}
	c := &ruleCompiler{
		prog:     prog,
		stratum:  st,
		slots:    make(map[string]int),
		varTypes: vt,
	}
	r := &Rule{Logical: rp, OuterPredIdx: -1, OuterPathIdx: -1}

	for i, e := range rp.Elems {
		switch e.Kind {
		case plan.ElemAtom:
			acc, err := c.compileAccess(e, i == 0)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", rp.Rule.Pos, err)
			}
			if i == 0 {
				r.Outer = acc
				if rp.OuterDelta {
					r.OuterPredIdx = acc.PredIdx
					r.OuterPathIdx = pathIndexOf(st.Preds[acc.PredIdx].Plan, rp.OuterPath)
					if r.OuterPathIdx < 0 {
						return nil, fmt.Errorf("%s: outer path %v missing on %s", rp.Rule.Pos, rp.OuterPath, acc.Pred)
					}
				}
				continue
			}
			r.Ops = append(r.Ops, Op{Kind: OpJoin, Access: acc})
		case plan.ElemNeg:
			acc, err := c.compileAccess(e, false)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", rp.Rule.Pos, err)
			}
			acc.Assign = nil // negation binds nothing
			r.Ops = append(r.Ops, Op{Kind: OpNeg, Access: acc})
		case plan.ElemCond:
			l, err := c.compileExpr(e.Cond.L)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", rp.Rule.Pos, err)
			}
			rr, err := c.compileExpr(e.Cond.R)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", rp.Rule.Pos, err)
			}
			r.Ops = append(r.Ops, Op{Kind: OpCond, Cmp: e.Cond.Op, L: l, R: rr})
		case plan.ElemLet:
			ex, err := c.compileExpr(e.LetExpr)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", rp.Rule.Pos, err)
			}
			slot := c.alloc(e.LetVar)
			ty, ok := vt[e.LetVar]
			if !ok {
				ty = ex.Typ
			}
			r.Ops = append(r.Ops, Op{Kind: OpLet, Slot: slot, Expr: ex, SlotType: ty})
		}
	}

	head, err := c.compileHead(rp.Rule.Head)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", rp.Rule.Pos, err)
	}
	r.Head = *head
	r.NumSlots = c.numSlots
	r.finalize()
	return r, nil
}

// finalize computes the flat-kernel metadata: backtracking targets per
// op and the widest probe key.
func (r *Rule) finalize() {
	r.PrevJoin = make([]int, len(r.Ops))
	last := -1
	maxKey := 0
	if r.Outer != nil && len(r.Outer.KeySrcs) > maxKey {
		maxKey = len(r.Outer.KeySrcs)
	}
	for i := range r.Ops {
		r.PrevJoin[i] = last
		if r.Ops[i].Kind == OpJoin {
			last = i
		}
		if acc := r.Ops[i].Access; acc != nil && len(acc.KeySrcs) > maxKey {
			maxKey = len(acc.KeySrcs)
		}
	}
	r.LastJoin = last
	r.MaxKeyLen = maxKey
}

// compileAccess lowers one atom into an Access. For the outer (isOuter)
// every variable column becomes an assignment; for probes, bound
// columns become the key (or post-checks) and unbound ones assignments.
func (c *ruleCompiler) compileAccess(e *plan.Elem, isOuter bool) (*Access, error) {
	atom := e.Atom
	acc := &Access{
		Pred:      atom.Pred,
		Recursive: e.Recursive,
		PredIdx:   -1,
		PathIdx:   -1,
		LookupIdx: -1,
		Method:    e.Method,
	}
	if e.Recursive {
		acc.PredIdx = c.stratum.PredIdx[atom.Pred]
	}

	termSrc := func(t ast.Term) (ValueSrc, error) {
		switch x := t.(type) {
		case *ast.Var:
			slot, ok := c.slotOf(x.Name)
			if !ok {
				return ValueSrc{}, fmt.Errorf("internal: variable %s not bound at probe of %s", x.Name, atom.Pred)
			}
			return ValueSrc{Slot: slot, Type: c.varTypes[x.Name]}, nil
		case *ast.Num:
			if x.IsFloat {
				return ValueSrc{Slot: -1, Const: storage.FloatVal(x.Float), Type: storage.TFloat}, nil
			}
			return ValueSrc{Slot: -1, Const: storage.IntVal(x.Int), Type: storage.TInt}, nil
		case *ast.Str:
			return ValueSrc{Slot: -1, Const: storage.SymVal(c.prog.Syms.Intern(x.Val)), Type: storage.TSym}, nil
		case *ast.Param:
			p, ok := c.prog.Params[x.Name]
			if !ok {
				return ValueSrc{}, fmt.Errorf("parameter $%s is not bound", x.Name)
			}
			return ValueSrc{Slot: -1, Const: p.Value, Type: p.Type}, nil
		default:
			return ValueSrc{}, fmt.Errorf("unexpected term %s in body atom", t)
		}
	}

	schema := c.prog.Plan.Analysis.Schemas[atom.Pred]
	// Variables first bound by this very atom cannot participate in
	// the probe key (their slots are only assigned per match), so a
	// repeated occurrence becomes an intra-atom column equality.
	assignedInAtom := make(map[string]int)
	var boundCols []int
	var boundSrcs []ValueSrc
	for i, t := range atom.Args {
		v, isVar := t.(*ast.Var)
		if isVar {
			if prev, ok := assignedInAtom[v.Name]; ok {
				acc.EqCols = append(acc.EqCols, [2]int{prev, i})
				continue
			}
			if slot, ok := c.slotOf(v.Name); ok {
				src := ValueSrc{Slot: slot, Type: c.varTypes[v.Name]}
				boundCols = append(boundCols, i)
				boundSrcs = append(boundSrcs, src)
				continue
			}
			slot := c.alloc(v.Name)
			if _, known := c.varTypes[v.Name]; !known && schema != nil {
				c.varTypes[v.Name] = schema.ColType(i)
			}
			assignedInAtom[v.Name] = i
			acc.Assign = append(acc.Assign, ColSlot{Col: i, Slot: slot})
			continue
		}
		src, err := termSrc(t)
		if err != nil {
			return nil, err
		}
		boundCols = append(boundCols, i)
		boundSrcs = append(boundSrcs, src)
	}

	if isOuter {
		// The outer scans tuples directly: every bound column is a
		// post-check (constants in delta-driven atoms).
		acc.PostCols, acc.PostSrcs = boundCols, boundSrcs
		return acc, nil
	}

	if acc.Recursive {
		pp := c.stratum.Preds[acc.PredIdx].Plan
		acc.PathIdx = pathIndexOf(pp, boundCols)
		if acc.PathIdx < 0 {
			if !pp.Broadcast {
				return nil, fmt.Errorf("internal: probe of %s on cols %v has no aligned replica (paths %v)", atom.Pred, boundCols, pp.Paths)
			}
			acc.PathIdx = 0
		}
	}

	aggKind := storage.AggNone
	if acc.Recursive {
		aggKind = c.stratum.Preds[acc.PredIdx].Plan.Agg
	}
	if acc.Recursive && aggKind != storage.AggNone {
		// Aggregate replicas are probed through the replica's group
		// B+-tree, whose key order puts the partition path first: the
		// longest fully bound prefix of that order scans, the rest
		// post-filters.
		acc.AggProbe = true
		order := c.stratum.Preds[acc.PredIdx].KeyOrders[acc.PathIdx]
		inKey := make(map[int]ValueSrc)
		for i, col := range boundCols {
			inKey[col] = boundSrcs[i]
		}
		for _, col := range order {
			src, ok := inKey[col]
			if !ok {
				break
			}
			acc.KeyCols = append(acc.KeyCols, col)
			acc.KeySrcs = append(acc.KeySrcs, src)
			delete(inKey, col)
		}
		acc.PrefixLen = len(acc.KeyCols)
		for i, col := range boundCols {
			if _, still := inKey[col]; still {
				acc.PostCols = append(acc.PostCols, col)
				acc.PostSrcs = append(acc.PostSrcs, boundSrcs[i])
			}
		}
	} else {
		acc.KeyCols, acc.KeySrcs = boundCols, boundSrcs
	}

	switch {
	case acc.Recursive:
		if !acc.AggProbe && len(acc.KeyCols) > 0 {
			acc.LookupIdx = c.registerPredLookup(acc.PredIdx, acc.KeyCols)
		}
	default:
		if len(acc.KeyCols) > 0 {
			acc.LookupIdx = c.registerBaseLookup(atom.Pred, acc.KeyCols)
		}
	}
	return acc, nil
}

// keyOrder builds a replica's B+-tree key permutation: partition path
// columns first, then the remaining group columns.
func keyOrder(path []int, groupLen int) []int {
	order := append([]int(nil), path...)
	seen := make(map[int]bool, len(path))
	for _, c := range path {
		seen[c] = true
	}
	for c := 0; c < groupLen; c++ {
		if !seen[c] {
			order = append(order, c)
		}
	}
	return order
}

func pathIndexOf(pp *plan.PredPlan, cols []int) int {
	for i, p := range pp.Paths {
		if equalIntSlices(p, cols) {
			return i
		}
	}
	return -1
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// registerPredLookup ensures the stratum predicate maintains an
// incremental index on the column set and returns its ordinal.
func (c *ruleCompiler) registerPredLookup(predIdx int, cols []int) int {
	p := c.stratum.Preds[predIdx]
	for i, l := range p.Lookups {
		if equalIntSlices(l, cols) {
			return i
		}
	}
	p.Lookups = append(p.Lookups, append([]int(nil), cols...))
	return len(p.Lookups) - 1
}

// registerBaseLookup ensures a global hash index exists on the base
// relation's columns and returns its ordinal.
func (c *ruleCompiler) registerBaseLookup(pred string, cols []int) int {
	ls := c.prog.BaseLookups[pred]
	for i, l := range ls {
		if equalIntSlices(l, cols) {
			return i
		}
	}
	c.prog.BaseLookups[pred] = append(ls, append([]int(nil), cols...))
	return len(c.prog.BaseLookups[pred]) - 1
}

func (c *ruleCompiler) compileHead(h *ast.Atom) (*Head, error) {
	schema := c.prog.Plan.Analysis.Schemas[h.Pred]
	head := &Head{Pred: h.Pred, PredIdx: -1}
	if idx, ok := c.stratum.PredIdx[h.Pred]; ok {
		head.PredIdx = idx
	}
	for _, col := range schema.Cols {
		head.Types = append(head.Types, col.Type)
	}
	termSrc := func(t ast.Term) (ValueSrc, error) {
		switch x := t.(type) {
		case *ast.Var:
			slot, ok := c.slotOf(x.Name)
			if !ok {
				return ValueSrc{}, fmt.Errorf("head variable %s is not bound", x.Name)
			}
			return ValueSrc{Slot: slot, Type: c.varTypes[x.Name]}, nil
		case *ast.Num:
			if x.IsFloat {
				return ValueSrc{Slot: -1, Const: storage.FloatVal(x.Float), Type: storage.TFloat}, nil
			}
			return ValueSrc{Slot: -1, Const: storage.IntVal(x.Int), Type: storage.TInt}, nil
		case *ast.Str:
			return ValueSrc{Slot: -1, Const: storage.SymVal(c.prog.Syms.Intern(x.Val)), Type: storage.TSym}, nil
		case *ast.Param:
			p, ok := c.prog.Params[x.Name]
			if !ok {
				return ValueSrc{}, fmt.Errorf("parameter $%s is not bound", x.Name)
			}
			return ValueSrc{Slot: -1, Const: p.Value, Type: p.Type}, nil
		default:
			return ValueSrc{}, fmt.Errorf("unexpected head term %s", t)
		}
	}
	for _, t := range h.Args {
		if agg, ok := t.(*ast.Agg); ok {
			switch agg.Kind {
			case "min":
				head.Agg = storage.AggMin
			case "max":
				head.Agg = storage.AggMax
			case "count":
				head.Agg = storage.AggCount
			case "sum":
				head.Agg = storage.AggSum
			}
			if agg.Value != nil {
				src, err := termSrc(agg.Value)
				if err != nil {
					return nil, err
				}
				head.AggVal = src
			} else {
				head.AggVal = ValueSrc{Slot: -1, Const: storage.IntVal(1), Type: storage.TInt}
			}
			if agg.Contributor != nil {
				src, err := termSrc(agg.Contributor)
				if err != nil {
					return nil, err
				}
				head.Contrib = src
			}
			continue
		}
		src, err := termSrc(t)
		if err != nil {
			return nil, err
		}
		head.Cols = append(head.Cols, src)
	}
	return head, nil
}
