package physical

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/plan"
	"repro/internal/storage"
)

func intSchema(name string, cols ...string) *storage.Schema {
	cs := make([]storage.Column, len(cols))
	for i, c := range cols {
		cs[i] = storage.Column{Name: c, Type: storage.TInt}
	}
	return storage.NewSchema(name, cs...)
}

func compile(t *testing.T, src string, schemas map[string]*storage.Schema, params map[string]Param) *Program {
	t.Helper()
	pt := make(map[string]storage.Type)
	for k, v := range params {
		pt[k] = v.Type
	}
	a, err := pcg.Analyze(parser.MustParse(src), schemas, pt)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := plan.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(lp, params, storage.NewSymbolTable())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func graphSchemas() map[string]*storage.Schema {
	return map[string]*storage.Schema{
		"arc":  intSchema("arc", "x", "y"),
		"warc": intSchema("warc", "x", "y", "w"),
	}
}

func TestCompileTC(t *testing.T) {
	prog := compile(t, `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`, graphSchemas(), nil)
	if len(prog.Strata) != 1 {
		t.Fatalf("strata = %d", len(prog.Strata))
	}
	st := prog.Strata[0]
	if len(st.BaseRules) != 1 || len(st.RecRules) != 1 {
		t.Fatalf("rules base=%d rec=%d", len(st.BaseRules), len(st.RecRules))
	}
	rec := st.RecRules[0]
	if rec.OuterPredIdx != 0 || rec.OuterPathIdx != 0 {
		t.Fatalf("outer pred/path = %d/%d", rec.OuterPredIdx, rec.OuterPathIdx)
	}
	if rec.Outer == nil || len(rec.Outer.Assign) != 2 {
		t.Fatalf("outer assigns = %+v", rec.Outer)
	}
	if len(rec.Ops) != 1 || rec.Ops[0].Kind != OpJoin {
		t.Fatalf("ops = %+v", rec.Ops)
	}
	join := rec.Ops[0].Access
	if join.Pred != "arc" || len(join.KeyCols) != 1 || join.KeyCols[0] != 0 {
		t.Fatalf("join = %+v", join)
	}
	if join.LookupIdx != 0 {
		t.Fatalf("lookup idx = %d", join.LookupIdx)
	}
	// The base lookup on arc col 0 must be registered globally.
	if ls := prog.BaseLookups["arc"]; len(ls) != 1 || ls[0][0] != 0 {
		t.Fatalf("base lookups = %v", prog.BaseLookups)
	}
	if rec.Head.Pred != "tc" || len(rec.Head.Cols) != 2 || rec.Head.Agg != storage.AggNone {
		t.Fatalf("head = %+v", rec.Head)
	}
}

func TestCompileExprAndLet(t *testing.T) {
	prog := compile(t, `
		sp(To, min<C>) :- To = $start, C = 0.
		sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
	`, graphSchemas(), map[string]Param{"start": {Value: storage.IntVal(7), Type: storage.TInt}})
	st := prog.Strata[0]
	base := st.BaseRules[0]
	if base.Outer != nil {
		t.Fatal("fact-style rule should have no outer")
	}
	lets := 0
	for _, op := range base.Ops {
		if op.Kind == OpLet {
			lets++
			got := op.Expr.Eval(make([]storage.Value, base.NumSlots))
			if op.Slot == 0 && got.Int() != 7 {
				t.Fatalf("param expr = %d", got.Int())
			}
		}
	}
	if lets != 2 {
		t.Fatalf("lets = %d", lets)
	}
	rec := st.RecRules[0]
	var let *Op
	for i := range rec.Ops {
		if rec.Ops[i].Kind == OpLet {
			let = &rec.Ops[i]
		}
	}
	if let == nil {
		t.Fatal("C = C1 + C2 missing")
	}
	// Evaluate C1+C2 with crafted slots.
	slots := make([]storage.Value, rec.NumSlots)
	for i := range slots {
		slots[i] = storage.IntVal(int64(10 * (i + 1)))
	}
	if got := let.Expr.Eval(slots); got.Int() == 0 {
		t.Fatalf("let eval = %d", got.Int())
	}
}

func TestCompileAggHead(t *testing.T) {
	prog := compile(t, `
		cc2(Y, min<Y>) :- arc(Y, _).
		cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
	`, graphSchemas(), nil)
	st := prog.Strata[0]
	h := st.RecRules[0].Head
	if h.Agg != storage.AggMin || len(h.Cols) != 1 {
		t.Fatalf("head = %+v", h)
	}
	if h.AggVal.Slot < 0 {
		t.Fatal("min value must come from a slot")
	}
}

func TestCompileAggProbePrefix(t *testing.T) {
	// Attend: the probe of cnt(X, N) binds X (group prefix) and
	// assigns N from the aggregate payload.
	prog := compile(t, `
		attend(X) :- organizer(X).
		cnt(Y, count<X>) :- attend(X), friend(Y, X).
		attend(X) :- cnt(X, N), N >= 3.
	`, map[string]*storage.Schema{
		"organizer": intSchema("organizer", "x"),
		"friend":    intSchema("friend", "y", "x"),
	}, nil)
	var rec *Stratum
	for _, st := range prog.Strata {
		if st.Recursive {
			rec = st
		}
	}
	if rec == nil {
		t.Fatal("recursive stratum missing")
	}
	// Find the variant whose outer is cnt (driving attend).
	var outerCnt *Rule
	for _, r := range rec.RecRules {
		if r.Outer.Pred == "cnt" {
			outerCnt = r
		}
	}
	if outerCnt == nil {
		t.Fatal("cnt-driven variant missing")
	}
	if outerCnt.Head.Pred != "attend" {
		t.Fatalf("head = %s", outerCnt.Head.Pred)
	}
}

func TestCompileNonLinearReplicas(t *testing.T) {
	prog := compile(t, `
		path(A, B, min<D>) :- warc(A, B, D).
		path(A, B, min<D>) :- path(A, C, D1), path(C, B, D2), D = D1 + D2.
	`, graphSchemas(), nil)
	st := prog.Strata[0]
	if len(st.RecRules) != 2 {
		t.Fatalf("variants = %d", len(st.RecRules))
	}
	for _, r := range st.RecRules {
		var join *Access
		for i := range r.Ops {
			if r.Ops[i].Kind == OpJoin && r.Ops[i].Access.Recursive {
				join = r.Ops[i].Access
			}
		}
		if join == nil {
			t.Fatal("inner recursive probe missing")
		}
		if !join.AggProbe || join.PrefixLen != 1 {
			t.Fatalf("inner probe = %+v", join)
		}
		if join.PathIdx < 0 || r.OuterPathIdx < 0 {
			t.Fatalf("paths unresolved: %+v / %d", join, r.OuterPathIdx)
		}
		if join.PathIdx == r.OuterPathIdx {
			t.Fatal("inner and outer must use different replicas")
		}
	}
}

func TestCompileMissingParamFails(t *testing.T) {
	a, err := pcg.Analyze(parser.MustParse(`sp(To, min<C>) :- To = $start, C = 0.`), nil,
		map[string]storage.Type{"start": storage.TInt})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := plan.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(lp, nil, nil); err == nil {
		t.Fatal("missing parameter must fail compilation")
	}
}

func TestCompileRepeatedVariableInAtom(t *testing.T) {
	prog := compile(t, `
		loop(X) :- arc(X, X).
		loop(X) :- loop(X), arc(X, X).
	`, graphSchemas(), nil)
	base := prog.Strata[0].BaseRules[0]
	if len(base.Outer.EqCols) != 1 {
		t.Fatalf("outer EqCols = %v", base.Outer.EqCols)
	}
}

func TestExprTypedArithmetic(t *testing.T) {
	// (1 - 0.25) * 4 with int/float mixing.
	e := &Expr{
		kind: eBin, op: ast.Mul, Typ: storage.TFloat,
		l: &Expr{
			kind: eBin, op: ast.Sub, Typ: storage.TFloat,
			l: &Expr{kind: eConst, constant: storage.IntVal(1), Typ: storage.TInt},
			r: &Expr{kind: eConst, constant: storage.FloatVal(0.25), Typ: storage.TFloat},
		},
		r: &Expr{kind: eConst, constant: storage.IntVal(4), Typ: storage.TInt},
	}
	if got := e.Eval(nil).Float(); got != 3.0 {
		t.Fatalf("eval = %g", got)
	}
	// Integer division truncates; division by zero yields 0.
	d := &Expr{
		kind: eBin, op: ast.Div, Typ: storage.TInt,
		l: &Expr{kind: eConst, constant: storage.IntVal(7), Typ: storage.TInt},
		r: &Expr{kind: eConst, constant: storage.IntVal(2), Typ: storage.TInt},
	}
	if got := d.Eval(nil).Int(); got != 3 {
		t.Fatalf("7/2 = %d", got)
	}
	z := &Expr{
		kind: eBin, op: ast.Div, Typ: storage.TInt,
		l: &Expr{kind: eConst, constant: storage.IntVal(7), Typ: storage.TInt},
		r: &Expr{kind: eConst, constant: storage.IntVal(0), Typ: storage.TInt},
	}
	if got := z.Eval(nil).Int(); got != 0 {
		t.Fatalf("7/0 = %d", got)
	}
}

func TestCompareTyped(t *testing.T) {
	if !compare(ast.Lt, storage.IntVal(1), storage.TInt, storage.FloatVal(1.5), storage.TFloat) {
		t.Fatal("1 < 1.5 mixed")
	}
	if compare(ast.Eq, storage.IntVal(2), storage.TInt, storage.IntVal(3), storage.TInt) {
		t.Fatal("2 != 3")
	}
	if !compare(ast.Ge, storage.IntVal(3), storage.TInt, storage.IntVal(3), storage.TInt) {
		t.Fatal("3 >= 3")
	}
	if !compare(ast.Ne, storage.SymVal(1), storage.TSym, storage.SymVal(2), storage.TSym) {
		t.Fatal("sym inequality")
	}
}
