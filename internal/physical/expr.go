package physical

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/storage"
)

// Expr is a compiled arithmetic expression evaluated against a rule's
// slot array. Types are resolved at compile time: integer operands are
// promoted to float when mixed, and every node knows its result type.
type Expr struct {
	kind exprKind
	// slot source
	slot int
	// constant source
	constant storage.Value
	// binary op
	op   ast.ArithOp
	l, r *Expr
	// Typ is the result type.
	Typ storage.Type
}

type exprKind uint8

const (
	eSlot exprKind = iota
	eConst
	eBin
)

// Eval computes the expression over the slot array.
func (e *Expr) Eval(slots []storage.Value) storage.Value {
	switch e.kind {
	case eSlot:
		return slots[e.slot]
	case eConst:
		return e.constant
	default:
		l := e.l.Eval(slots)
		r := e.r.Eval(slots)
		if e.Typ == storage.TFloat {
			lf, rf := l.AsFloat(e.l.Typ), r.AsFloat(e.r.Typ)
			var out float64
			switch e.op {
			case ast.Add:
				out = lf + rf
			case ast.Sub:
				out = lf - rf
			case ast.Mul:
				out = lf * rf
			case ast.Div:
				out = lf / rf
			}
			return storage.FloatVal(out)
		}
		li, ri := l.Int(), r.Int()
		var out int64
		switch e.op {
		case ast.Add:
			out = li + ri
		case ast.Sub:
			out = li - ri
		case ast.Mul:
			out = li * ri
		case ast.Div:
			if ri == 0 {
				out = 0 // integer division by zero yields 0 by convention
			} else {
				out = li / ri
			}
		}
		return storage.IntVal(out)
	}
}

// compileExpr lowers an AST expression given the rule's slot map.
func (c *ruleCompiler) compileExpr(e ast.Expr) (*Expr, error) {
	switch x := e.(type) {
	case *ast.Var:
		slot, ok := c.slots[x.Name]
		if !ok {
			return nil, fmt.Errorf("variable %s used before it is bound", x.Name)
		}
		t := c.varTypes[x.Name]
		return &Expr{kind: eSlot, slot: slot, Typ: t}, nil
	case *ast.Num:
		if x.IsFloat {
			return &Expr{kind: eConst, constant: storage.FloatVal(x.Float), Typ: storage.TFloat}, nil
		}
		return &Expr{kind: eConst, constant: storage.IntVal(x.Int), Typ: storage.TInt}, nil
	case *ast.Str:
		return &Expr{kind: eConst, constant: storage.SymVal(c.prog.Syms.Intern(x.Val)), Typ: storage.TSym}, nil
	case *ast.Param:
		p, ok := c.prog.Params[x.Name]
		if !ok {
			return nil, fmt.Errorf("parameter $%s is not bound", x.Name)
		}
		return &Expr{kind: eConst, constant: p.Value, Typ: p.Type}, nil
	case *ast.Bin:
		l, err := c.compileExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(x.R)
		if err != nil {
			return nil, err
		}
		t := storage.TInt
		if l.Typ == storage.TFloat || r.Typ == storage.TFloat {
			t = storage.TFloat
		}
		if l.Typ == storage.TSym || r.Typ == storage.TSym {
			return nil, fmt.Errorf("arithmetic on symbol values")
		}
		return &Expr{kind: eBin, op: x.Op, l: l, r: r, Typ: t}, nil
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

// convert coerces a value of type from into type to (int↔float).
func convert(v storage.Value, from, to storage.Type) storage.Value {
	if from == to {
		return v
	}
	return storage.FromFloat(v.AsFloat(from), to)
}

// compare evaluates a comparison between two typed values.
func compare(op ast.CmpOp, l storage.Value, lt storage.Type, r storage.Value, rt storage.Type) bool {
	var c int
	if lt == storage.TFloat || rt == storage.TFloat {
		lf, rf := l.AsFloat(lt), r.AsFloat(rt)
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	} else {
		c = storage.Compare(l, r, lt)
	}
	switch op {
	case ast.Eq:
		return c == 0
	case ast.Ne:
		return c != 0
	case ast.Lt:
		return c < 0
	case ast.Le:
		return c <= 0
	case ast.Gt:
		return c > 0
	case ast.Ge:
		return c >= 0
	default:
		return false
	}
}
