package spsc

import (
	"testing"
	"unsafe"
)

// TestQueueLayout pins the false-sharing contract of the ring: the
// consumer's index pair and the producer's index pair each begin a
// fresh cache line, at least one full line apart, for any element
// type (offsets cannot depend on T — buf is a fixed 24-byte header).
func TestQueueLayout(t *testing.T) {
	check := func(name string, head, tail, size uintptr) {
		t.Helper()
		if head%cacheLine != 0 {
			t.Errorf("%s: head offset %d not cache-line aligned", name, head)
		}
		if tail%cacheLine != 0 {
			t.Errorf("%s: tail offset %d not cache-line aligned", name, tail)
		}
		if tail-head < cacheLine {
			t.Errorf("%s: head and tail only %d bytes apart", name, tail-head)
		}
		if size%cacheLine != 0 {
			t.Errorf("%s: size %d is not a whole number of lines", name, size)
		}
	}

	var qp Queue[*int]
	check("Queue[*int]",
		unsafe.Offsetof(qp.head), unsafe.Offsetof(qp.tail), unsafe.Sizeof(qp))

	var qw Queue[[5]uint64]
	check("Queue[[5]uint64]",
		unsafe.Offsetof(qw.head), unsafe.Offsetof(qw.tail), unsafe.Sizeof(qw))

	// The cached opposing index must share its owner's line — that
	// sharing is the point (the consumer refreshes cachedTail from the
	// producer's line only on apparent emptiness).
	if unsafe.Offsetof(qp.cachedTail)-unsafe.Offsetof(qp.head) >= cacheLine {
		t.Error("cachedTail drifted off the consumer's cache line")
	}
	if unsafe.Offsetof(qp.cachedHead)-unsafe.Offsetof(qp.tail) >= cacheLine {
		t.Error("cachedHead drifted off the producer's cache line")
	}
}
