package spsc

import (
	"runtime"
	"sync"
	"testing"
)

func TestPushPopOrder(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		if !q.TryPush(i) {
			t.Fatalf("TryPush(%d) failed", i)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestCapacityRounding(t *testing.T) {
	if got := New[int](5).Cap(); got != 8 {
		t.Fatalf("Cap = %d, want 8", got)
	}
	if got := New[int](0).Cap(); got != 2 {
		t.Fatalf("Cap = %d, want 2", got)
	}
	if got := New[int](16).Cap(); got != 16 {
		t.Fatalf("Cap = %d, want 16", got)
	}
}

func TestFullQueueRejectsPush(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push into full queue succeeded")
	}
	q.TryPop()
	if !q.TryPush(99) {
		t.Fatal("push after pop failed")
	}
}

func TestWrapAround(t *testing.T) {
	q := New[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !q.TryPush(round*10 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryPop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: pop = (%d,%v)", round, v, ok)
			}
		}
	}
}

func TestDrain(t *testing.T) {
	q := New[int](16)
	for i := 0; i < 10; i++ {
		q.TryPush(i)
	}
	var got []int
	n := q.Drain(func(v int) { got = append(got, v) })
	if n != 10 || len(got) != 10 {
		t.Fatalf("Drain = %d, got %v", n, got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("drain order: %v", got)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty after drain")
	}
}

func TestLen(t *testing.T) {
	q := New[int](8)
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	q.TryPush(1)
	q.TryPush(2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

// TestConcurrentFIFO drives a real producer/consumer pair through a
// small ring, checking that every element arrives exactly once and in
// order — the property the engine's delta exchange relies on.
func TestConcurrentFIFO(t *testing.T) {
	const n = 20000
	q := New[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
	}()
	next := 0
	for next < n {
		v, ok := q.TryPop()
		if !ok {
			runtime.Gosched() // single-core hosts need the yield
			continue
		}
		if v != next {
			t.Errorf("out of order: got %d, want %d", v, next)
			break
		}
		next++
	}
	wg.Wait()
	if next != n {
		t.Fatalf("consumed %d of %d", next, n)
	}
}

func TestTryPushNPopN(t *testing.T) {
	q := New[int](8)
	if n := q.TryPushN([]int{0, 1, 2, 3, 4}); n != 5 {
		t.Fatalf("TryPushN = %d, want 5", n)
	}
	// Only 3 slots remain; a 5-element batch is truncated.
	if n := q.TryPushN([]int{5, 6, 7, 8, 9}); n != 3 {
		t.Fatalf("TryPushN into nearly full ring = %d, want 3", n)
	}
	if n := q.TryPushN([]int{99}); n != 0 {
		t.Fatalf("TryPushN into full ring = %d, want 0", n)
	}
	dst := make([]int, 6)
	if n := q.PopN(dst); n != 6 {
		t.Fatalf("PopN = %d, want 6", n)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("PopN order: %v", dst)
		}
	}
	if n := q.PopN(dst); n != 2 || dst[0] != 6 || dst[1] != 7 {
		t.Fatalf("second PopN = %d, %v", n, dst[:2])
	}
	if n := q.PopN(dst); n != 0 {
		t.Fatalf("PopN from empty ring = %d, want 0", n)
	}
}

func TestBatchWrapAround(t *testing.T) {
	q := New[int](8)
	dst := make([]int, 5)
	next := 0
	for round := 0; round < 200; round++ {
		batch := []int{round * 5, round*5 + 1, round*5 + 2, round*5 + 3, round*5 + 4}
		q.PushN(batch)
		popped := 0
		for popped < 5 {
			n := q.PopN(dst[popped:])
			for i := 0; i < n; i++ {
				if dst[popped+i] != next {
					t.Fatalf("round %d: got %d, want %d", round, dst[popped+i], next)
				}
				next++
			}
			popped += n
		}
	}
}

func TestBatchInteropWithSingleOps(t *testing.T) {
	q := New[int](16)
	q.TryPush(0)
	q.TryPushN([]int{1, 2, 3})
	q.TryPush(4)
	var got []int
	q.Drain(func(v int) { got = append(got, v) })
	if len(got) != 5 {
		t.Fatalf("drained %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed-op order: %v", got)
		}
	}
}

// TestConcurrentBatchFIFO is the batched analogue of TestConcurrentFIFO:
// a producer pushing variable-size batches against a consumer popping
// variable-size batches, exercising the single-store publish under the
// race detector.
func TestConcurrentBatchFIFO(t *testing.T) {
	const n = 50000
	q := New[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for i < n {
			sz := 1 + i%7
			if i+sz > n {
				sz = n - i
			}
			batch := make([]int, sz)
			for j := range batch {
				batch[j] = i + j
			}
			q.PushN(batch)
			i += sz
		}
	}()
	dst := make([]int, 13)
	next := 0
	for next < n {
		m := q.PopN(dst)
		if m == 0 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < m; i++ {
			if dst[i] != next {
				t.Fatalf("out of order: got %d, want %d", dst[i], next)
			}
			next++
		}
	}
	wg.Wait()
	if _, ok := q.TryPop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestPopNReleasesPointers(t *testing.T) {
	q := New[*int](4)
	v := 7
	q.TryPushN([]*int{&v, &v})
	dst := make([]*int, 2)
	q.PopN(dst)
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatalf("slot %d still references a popped element", i)
		}
	}
}

func TestPointerValuesReleased(t *testing.T) {
	q := New[*int](4)
	v := 7
	q.TryPush(&v)
	q.TryPop()
	// The slot behind head must be zeroed so the GC can reclaim it.
	if q.buf[0] != nil {
		t.Fatal("popped slot still references the element")
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryPush(i)
		q.TryPop()
	}
}

// BenchmarkSPSCBatchThroughput measures cross-goroutine tuple-pointer
// throughput with batched push/pop (the engine's frame exchange shape);
// b.N counts elements transferred end to end.
func BenchmarkSPSCBatchThroughput(b *testing.B) {
	const batch = 32
	q := New[int](1024)
	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]int, batch)
		for i := range buf {
			buf[i] = i
		}
		sent := 0
		for sent < b.N {
			n := batch
			if b.N-sent < n {
				n = b.N - sent
			}
			q.PushN(buf[:n])
			sent += n
		}
	}()
	dst := make([]int, batch)
	got := 0
	for got < b.N {
		n := q.PopN(dst)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		got += n
	}
	<-done
}

// BenchmarkSPSCSingleThroughput is the unbatched baseline for
// BenchmarkSPSCBatchThroughput: same transfer, one atomic per element.
func BenchmarkSPSCSingleThroughput(b *testing.B) {
	q := New[int](1024)
	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			q.Push(i)
		}
	}()
	got := 0
	for got < b.N {
		if _, ok := q.TryPop(); !ok {
			runtime.Gosched()
			continue
		}
		got++
	}
	<-done
}
