package spsc

import (
	"runtime"
	"sync"
	"testing"
)

func TestPushPopOrder(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		if !q.TryPush(i) {
			t.Fatalf("TryPush(%d) failed", i)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestCapacityRounding(t *testing.T) {
	if got := New[int](5).Cap(); got != 8 {
		t.Fatalf("Cap = %d, want 8", got)
	}
	if got := New[int](0).Cap(); got != 2 {
		t.Fatalf("Cap = %d, want 2", got)
	}
	if got := New[int](16).Cap(); got != 16 {
		t.Fatalf("Cap = %d, want 16", got)
	}
}

func TestFullQueueRejectsPush(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push into full queue succeeded")
	}
	q.TryPop()
	if !q.TryPush(99) {
		t.Fatal("push after pop failed")
	}
}

func TestWrapAround(t *testing.T) {
	q := New[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !q.TryPush(round*10 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryPop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: pop = (%d,%v)", round, v, ok)
			}
		}
	}
}

func TestDrain(t *testing.T) {
	q := New[int](16)
	for i := 0; i < 10; i++ {
		q.TryPush(i)
	}
	var got []int
	n := q.Drain(func(v int) { got = append(got, v) })
	if n != 10 || len(got) != 10 {
		t.Fatalf("Drain = %d, got %v", n, got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("drain order: %v", got)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty after drain")
	}
}

func TestLen(t *testing.T) {
	q := New[int](8)
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	q.TryPush(1)
	q.TryPush(2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

// TestConcurrentFIFO drives a real producer/consumer pair through a
// small ring, checking that every element arrives exactly once and in
// order — the property the engine's delta exchange relies on.
func TestConcurrentFIFO(t *testing.T) {
	const n = 20000
	q := New[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
	}()
	next := 0
	for next < n {
		v, ok := q.TryPop()
		if !ok {
			runtime.Gosched() // single-core hosts need the yield
			continue
		}
		if v != next {
			t.Errorf("out of order: got %d, want %d", v, next)
			break
		}
		next++
	}
	wg.Wait()
	if next != n {
		t.Fatalf("consumed %d of %d", next, n)
	}
}

func TestPointerValuesReleased(t *testing.T) {
	q := New[*int](4)
	v := 7
	q.TryPush(&v)
	q.TryPop()
	// The slot behind head must be zeroed so the GC can reclaim it.
	if q.buf[0] != nil {
		t.Fatal("popped slot still references the element")
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryPush(i)
		q.TryPop()
	}
}
