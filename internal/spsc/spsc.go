// Package spsc implements the single-producer single-consumer ring
// queue from paper §6.1. During DWS evaluation a worker W_i that wants
// to hand tuples to W_j appends to the dedicated buffer M_j^i; because
// exactly one goroutine ever pushes and exactly one ever pops, the ring
// needs no locks — the head and tail indexes are maintained with atomic
// loads and stores, and each side caches the opposing index to avoid
// cache-line ping-pong.
package spsc

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// cacheLine is the coherence granule the padding isolates: each index
// pair below must own its line outright, or producer and consumer
// ping-pong it on every operation.
const cacheLine = 64

// Queue is a bounded SPSC ring. The zero value is not usable; construct
// with New.
//
// Layout: the consumer's fields (head + cachedTail) and the producer's
// fields (tail + cachedHead) each start on their own cache-line
// boundary. The pads are computed from the preceding fields' sizes —
// the old scheme inserted fixed 56-byte pads that silently assumed an
// 8-byte neighbor, so reordering or widening any field would have
// quietly re-introduced false sharing. Compile-time guards below (and
// the layout test) make any such drift a build error instead.
type Queue[T any] struct {
	buf  []T    // 24 bytes (slice header)
	mask uint64 // 8 bytes
	_    [cacheLine - (24+8)%cacheLine]byte

	head atomic.Uint64 // next slot to pop; advanced by the consumer
	// cachedTail is the consumer's last observed tail.
	cachedTail uint64
	_          [cacheLine - 16]byte

	tail atomic.Uint64 // next slot to push; advanced by the producer
	// cachedHead is the producer's last observed head.
	cachedHead uint64
	_          [cacheLine - 16]byte
}

// layoutProbe instantiates Queue for the compile-time layout guards;
// field offsets do not depend on T (buf is always a 24-byte header).
var layoutProbe Queue[struct{}]

// Negative array lengths are compile errors, so each of these vars
// fails the build if the named field does not start exactly on a
// cache-line boundary (or the struct's size stops being a whole number
// of lines, which would let the tail of one heap neighbor share a line
// with our head).
var (
	_ [-(unsafe.Offsetof(layoutProbe.head) % cacheLine)]byte
	_ [-(unsafe.Offsetof(layoutProbe.tail) % cacheLine)]byte
	_ [-(unsafe.Sizeof(layoutProbe) % cacheLine)]byte
)

// New returns a queue with capacity rounded up to the next power of
// two (minimum 2).
func New[T any](capacity int) *Queue[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Queue[T]{buf: make([]T, n), mask: n - 1}
}

// Cap returns the fixed capacity of the ring.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// TryPush appends v, reporting false when the ring is full. Only one
// goroutine may call TryPush/Push.
func (q *Queue[T]) TryPush(v T) bool {
	tail := q.tail.Load()
	if tail-q.cachedHead >= uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if tail-q.cachedHead >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Push appends v, yielding the processor while the ring is full.
func (q *Queue[T]) Push(v T) {
	for !q.TryPush(v) {
		runtime.Gosched()
	}
}

// TryPushN appends up to len(vs) elements and returns how many were
// accepted (0 when the ring is full). The whole batch is published with
// a single tail store, so the atomic (and the cache-line transfer it
// causes on the consumer side) is amortized over the batch — paper
// §6.1's "collect in one operation", applied to the producer.
func (q *Queue[T]) TryPushN(vs []T) int {
	tail := q.tail.Load()
	free := uint64(len(q.buf)) - (tail - q.cachedHead)
	if free < uint64(len(vs)) {
		q.cachedHead = q.head.Load()
		free = uint64(len(q.buf)) - (tail - q.cachedHead)
	}
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		q.buf[(tail+i)&q.mask] = vs[i]
	}
	if n > 0 {
		q.tail.Store(tail + n)
	}
	return int(n)
}

// PushN appends all of vs, yielding the processor whenever the ring
// fills up.
func (q *Queue[T]) PushN(vs []T) {
	for len(vs) > 0 {
		n := q.TryPushN(vs)
		vs = vs[n:]
		if len(vs) > 0 {
			runtime.Gosched()
		}
	}
}

// TryPop removes the oldest element, reporting false when the ring is
// empty. Only one goroutine may call TryPop/PopN/Drain.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	head := q.head.Load()
	if head >= q.cachedTail {
		q.cachedTail = q.tail.Load()
		if head >= q.cachedTail {
			return zero, false
		}
	}
	v := q.buf[head&q.mask]
	q.buf[head&q.mask] = zero // release for GC
	q.head.Store(head + 1)
	return v, true
}

// PopN removes up to len(dst) of the oldest elements into dst with a
// single head publish, returning how many were popped (0 when empty).
func (q *Queue[T]) PopN(dst []T) int {
	var zero T
	head := q.head.Load()
	avail := q.cachedTail - head
	if avail < uint64(len(dst)) {
		q.cachedTail = q.tail.Load()
		avail = q.cachedTail - head
	}
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		slot := (head + i) & q.mask
		dst[i] = q.buf[slot]
		q.buf[slot] = zero // release for GC
	}
	if n > 0 {
		q.head.Store(head + n)
	}
	return int(n)
}

// drainChunk bounds the elements moved per head publish in Drain.
const drainChunk = 32

// Drain pops every currently visible element into fn and returns the
// number drained. This is the consumer's one-shot collection step from
// §6.1 ("W_j can collect all contents from M_j in one operation");
// elements are moved in chunks so head updates are amortized.
func (q *Queue[T]) Drain(fn func(T)) int {
	var buf [drainChunk]T
	var zero T
	total := 0
	for {
		n := q.PopN(buf[:])
		if n == 0 {
			return total
		}
		for i := 0; i < n; i++ {
			fn(buf[i])
			buf[i] = zero
		}
		total += n
	}
}

// Len reports the number of buffered elements. It is an instantaneous
// estimate when called concurrently with push/pop.
func (q *Queue[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// Empty reports whether the ring currently holds no elements.
func (q *Queue[T]) Empty() bool { return q.Len() == 0 }
