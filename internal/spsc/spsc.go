// Package spsc implements the single-producer single-consumer ring
// queue from paper §6.1. During DWS evaluation a worker W_i that wants
// to hand tuples to W_j appends to the dedicated buffer M_j^i; because
// exactly one goroutine ever pushes and exactly one ever pops, the ring
// needs no locks — the head and tail indexes are maintained with atomic
// loads and stores, and each side caches the opposing index to avoid
// cache-line ping-pong.
package spsc

import (
	"runtime"
	"sync/atomic"
)

// pad keeps the producer and consumer indexes on separate cache lines.
type pad [56]byte

// Queue is a bounded SPSC ring. The zero value is not usable; construct
// with New.
type Queue[T any] struct {
	buf  []T
	mask uint64

	_    pad
	head atomic.Uint64 // next slot to pop; advanced by the consumer
	// cachedTail is the consumer's last observed tail.
	cachedTail uint64

	_    pad
	tail atomic.Uint64 // next slot to push; advanced by the producer
	// cachedHead is the producer's last observed head.
	cachedHead uint64
	_          pad
}

// New returns a queue with capacity rounded up to the next power of
// two (minimum 2).
func New[T any](capacity int) *Queue[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Queue[T]{buf: make([]T, n), mask: n - 1}
}

// Cap returns the fixed capacity of the ring.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// TryPush appends v, reporting false when the ring is full. Only one
// goroutine may call TryPush/Push.
func (q *Queue[T]) TryPush(v T) bool {
	tail := q.tail.Load()
	if tail-q.cachedHead >= uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if tail-q.cachedHead >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Push appends v, yielding the processor while the ring is full.
func (q *Queue[T]) Push(v T) {
	for !q.TryPush(v) {
		runtime.Gosched()
	}
}

// TryPop removes the oldest element, reporting false when the ring is
// empty. Only one goroutine may call TryPop/Drain.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	head := q.head.Load()
	if head >= q.cachedTail {
		q.cachedTail = q.tail.Load()
		if head >= q.cachedTail {
			return zero, false
		}
	}
	v := q.buf[head&q.mask]
	q.buf[head&q.mask] = zero // release for GC
	q.head.Store(head + 1)
	return v, true
}

// Drain pops every currently visible element into fn and returns the
// number drained. This is the consumer's one-shot collection step from
// §6.1 ("W_j can collect all contents from M_j in one operation").
func (q *Queue[T]) Drain(fn func(T)) int {
	n := 0
	for {
		v, ok := q.TryPop()
		if !ok {
			return n
		}
		fn(v)
		n++
	}
}

// Len reports the number of buffered elements. It is an instantaneous
// estimate when called concurrently with push/pop.
func (q *Queue[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// Empty reports whether the ring currently holds no elements.
func (q *Queue[T]) Empty() bool { return q.Len() == 0 }
