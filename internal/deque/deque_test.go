package deque

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// TestLayout pins the padded layout at runtime too (the compile-time
// guards already enforce it; this documents the intent in test output).
func TestLayout(t *testing.T) {
	var d Deque
	if off := unsafe.Offsetof(d.bottom); off%cacheLine != 0 {
		t.Fatalf("bottom offset %d not line-aligned", off)
	}
	if off := unsafe.Offsetof(d.top); off%cacheLine != 0 {
		t.Fatalf("top offset %d not line-aligned", off)
	}
	if sz := unsafe.Sizeof(d); sz%cacheLine != 0 {
		t.Fatalf("size %d not a whole number of lines", sz)
	}
}

func TestSequentialLIFOAndCapacity(t *testing.T) {
	d := New(7) // rounds to 8
	if d.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", d.Cap())
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("pop on empty succeeded")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal on empty succeeded")
	}
	for i := 0; i < 8; i++ {
		if !d.PushBottom(uint64(i)) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if d.PushBottom(99) {
		t.Fatal("push succeeded on full deque")
	}
	// Owner pops newest-first.
	for i := 7; i >= 4; i-- {
		v, ok := d.PopBottom()
		if !ok || v != uint64(i) {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	// Thief steals oldest-first.
	for i := 0; i < 4; i++ {
		v, ok := d.Steal()
		if !ok || v != uint64(i) {
			t.Fatalf("steal = %d,%v want %d", v, ok, i)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("len = %d after draining", d.Len())
	}
}

// TestOwnerVsStealers is the property test: one owner interleaves
// pushes and pops while several thieves steal concurrently. Every
// pushed element must be consumed exactly once — by the owner or by
// exactly one thief — with none lost and none duplicated. Run under
// -race this also exercises the memory-order discipline.
func TestOwnerVsStealers(t *testing.T) {
	const (
		total    = 1 << 16
		stealers = 4
		capacity = 64
	)
	d := New(capacity)
	seen := make([]atomic.Int32, total)
	var consumed atomic.Int64
	take := func(v uint64) {
		if n := seen[v].Add(1); n != 1 {
			t.Errorf("element %d consumed %d times", v, n)
		}
		consumed.Add(1)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	for s := 0; s < stealers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if v, ok := d.Steal(); ok {
					take(v)
				}
			}
			// Final sweep: the owner may have pushed after our last
			// failed steal.
			for {
				v, ok := d.Steal()
				if !ok {
					return
				}
				take(v)
			}
		}()
	}

	rng := rand.New(rand.NewSource(1))
	next := uint64(0)
	for next < total {
		// Push a random burst (inline-executing on overflow, like the
		// engine's fallback — here "execute" is just consuming it).
		burst := 1 + rng.Intn(8)
		for i := 0; i < burst && next < total; i++ {
			if d.PushBottom(next) {
				next++
			} else if v, ok := d.PopBottom(); ok {
				take(v) // make room the way the owner would
			}
		}
		// Pop a few of our own.
		for i := rng.Intn(4); i > 0; i-- {
			v, ok := d.PopBottom()
			if !ok {
				break
			}
			take(v)
		}
	}
	// Owner drains what it can; thieves race it for the rest.
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		take(v)
	}
	done.Store(true)
	wg.Wait()

	if got := consumed.Load(); got != total {
		missing := 0
		for i := range seen {
			if seen[i].Load() == 0 {
				missing++
			}
		}
		t.Fatalf("consumed %d of %d (missing %d)", got, total, missing)
	}
}

// FuzzStealInterleaving drives random owner schedules against two
// thieves; the invariant is the same exactly-once consumption.
func FuzzStealInterleaving(f *testing.F) {
	f.Add(uint16(1000), int64(7))
	f.Add(uint16(3), int64(42))
	f.Fuzz(func(t *testing.T, n uint16, seed int64) {
		total := int(n)%2048 + 1
		d := New(16)
		seen := make([]atomic.Int32, total)
		var wg sync.WaitGroup
		var done atomic.Bool
		take := func(v uint64) {
			if c := seen[v].Add(1); c != 1 {
				t.Errorf("element %d consumed %d times", v, c)
			}
		}
		for s := 0; s < 2; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !done.Load() {
					if v, ok := d.Steal(); ok {
						take(v)
					}
				}
				for {
					v, ok := d.Steal()
					if !ok {
						return
					}
					take(v)
				}
			}()
		}
		rng := rand.New(rand.NewSource(seed))
		for next := 0; next < total; {
			if rng.Intn(3) > 0 {
				if d.PushBottom(uint64(next)) {
					next++
					continue
				}
			}
			if v, ok := d.PopBottom(); ok {
				take(v)
			}
		}
		for {
			v, ok := d.PopBottom()
			if !ok {
				break
			}
			take(v)
		}
		done.Store(true)
		wg.Wait()
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("element %d consumed %d times", i, seen[i].Load())
			}
		}
	})
}
