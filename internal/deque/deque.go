// Package deque implements the Chase–Lev work-stealing deque (Chase &
// Lev, "Dynamic Circular Work-Stealing Deque", SPAA 2005; the
// load/store discipline follows Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models", PPoPP 2013 — Go's sync/atomic
// operations are sequentially consistent, which subsumes every fence
// the latter paper requires).
//
// One goroutine — the owner — pushes and pops at the bottom in LIFO
// order, so its own most-recently-produced work stays cache-warm. Any
// number of thieves steal from the top in FIFO order, claiming the
// oldest element with a single CAS. The engine stores one element per
// morsel: a uint64 index into the owner's morsel arena, never a
// pointer, so a thief that loses its CAS race holds nothing it could
// dereference stale.
//
// The deque is fixed-capacity (no growth): the engine bounds
// outstanding morsels per worker and falls back to executing inline
// when the ring fills, which keeps the hot path allocation-free and
// sidesteps the classic grow-under-steal complexity entirely.
package deque

import (
	"sync/atomic"
	"unsafe"
)

// cacheLine is the coherence granule the padding isolates; same
// convention as package spsc.
const cacheLine = 64

// Deque is a bounded Chase–Lev deque of uint64 payloads. The zero
// value is not usable; construct with New.
//
// Layout: bottom is written only by the owner on every push/pop; top
// is CASed by thieves on every steal. Each owns its cache line so an
// owner push never ping-pongs the line thieves are contending on. The
// pads are computed from the preceding fields' sizes and checked by
// compile-time negative-array guards, exactly like internal/spsc.
type Deque struct {
	buf  []slot // 24 bytes (slice header)
	mask uint64 // 8 bytes
	_    [cacheLine - (24+8)%cacheLine]byte

	// bottom is the next slot the owner pushes into; only the owner
	// stores it, but thieves load it to bound their scan.
	bottom atomic.Int64
	_      [cacheLine - 8]byte

	// top is the next slot thieves steal from; it only moves forward
	// (monotone), which is what makes the single CAS ABA-free.
	top atomic.Int64
	_   [cacheLine - 8]byte
}

// slot wraps each payload in an atomic so an owner overwrite racing a
// doomed thief read is a defined (and race-detector-clean) load of a
// value the failed CAS then discards.
type slot struct {
	v atomic.Uint64
}

// Compile-time layout guards: negative array lengths are build errors,
// so these fail if bottom/top drift off their cache-line boundaries or
// the struct stops being a whole number of lines.
var layoutProbe Deque

var (
	_ [-(unsafe.Offsetof(layoutProbe.bottom) % cacheLine)]byte
	_ [-(unsafe.Offsetof(layoutProbe.top) % cacheLine)]byte
	_ [-(unsafe.Sizeof(layoutProbe) % cacheLine)]byte
)

// New returns a deque with capacity rounded up to the next power of two
// (minimum 2).
func New(capacity int) *Deque {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Deque{buf: make([]slot, n), mask: n - 1}
}

// Cap returns the fixed capacity.
func (d *Deque) Cap() int { return len(d.buf) }

// Len reports the number of elements currently in the deque. It is an
// instantaneous estimate when called concurrently with steals.
func (d *Deque) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		// PopBottom's transient decrement can be observed.
		return 0
	}
	return int(n)
}

// PushBottom appends v at the bottom, reporting false when the deque is
// full. Only the owner may call it.
//
// The capacity check reads a fresh top: bottom-top can only shrink
// concurrently (thieves advance top), so a passed check cannot be
// invalidated before the store — the owner is the only writer of
// bottom.
func (d *Deque) PushBottom(v uint64) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t >= int64(len(d.buf)) {
		return false
	}
	d.buf[uint64(b)&d.mask].v.Store(v)
	// Publishing bottom is the release edge: a thief that observes
	// bottom > b also observes the slot store above (and everything the
	// owner wrote before this call, e.g. the arena entry v indexes).
	d.bottom.Store(b + 1)
	return true
}

// PopBottom removes and returns the newest element. Only the owner may
// call it. On the last element it races thieves for top with the same
// CAS they use; exactly one side wins.
func (d *Deque) PopBottom() (uint64, bool) {
	b := d.bottom.Load() - 1
	// Reserve the slot first, then read top: a thief that began after
	// this store sees the shrunken deque, so owner and thieves can only
	// contend on the single remaining element, settled by CAS below.
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty (the decrement overshot); restore.
		d.bottom.Store(b + 1)
		return 0, false
	}
	v := d.buf[uint64(b)&d.mask].v.Load()
	if t == b {
		// Last element: win it with the thieves' CAS or lose it to one.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !won {
			return 0, false
		}
		return v, true
	}
	return v, true
}

// Steal removes and returns the oldest element. Any goroutine may call
// it concurrently with the owner and other thieves.
func (d *Deque) Steal() (uint64, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false
	}
	// Read the payload before claiming it: after a successful CAS the
	// owner may immediately reuse the slot. If the CAS fails (the owner
	// popped it, or another thief won) the value is discarded — it is a
	// plain uint64, so holding a stale copy is harmless.
	v := d.buf[uint64(t)&d.mask].v.Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return 0, false
	}
	return v, true
}
