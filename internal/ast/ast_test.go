package ast

import (
	"strings"
	"testing"
)

func TestPositionString(t *testing.T) {
	p := Position{Line: 3, Col: 14}
	if p.String() != "3:14" {
		t.Fatalf("pos = %q", p)
	}
}

func TestAtomString(t *testing.T) {
	a := &Atom{Pred: "arc", Args: []Term{&Var{Name: "X"}, &Num{Int: 7}}}
	if a.String() != "arc(X, 7)" {
		t.Fatalf("atom = %q", a)
	}
}

func TestRuleString(t *testing.T) {
	r := &Rule{
		Head: &Atom{Pred: "tc", Args: []Term{&Var{Name: "X"}, &Var{Name: "Y"}}},
		Body: []Literal{
			&Atom{Pred: "tc", Args: []Term{&Var{Name: "X"}, &Var{Name: "Z"}}},
			&Atom{Pred: "arc", Args: []Term{&Var{Name: "Z"}, &Var{Name: "Y"}}},
		},
	}
	if r.String() != "tc(X, Y) :- tc(X, Z), arc(Z, Y)." {
		t.Fatalf("rule = %q", r)
	}
	fact := &Rule{Head: &Atom{Pred: "arc", Args: []Term{&Num{Int: 1}, &Num{Int: 2}}}}
	if fact.String() != "arc(1, 2)." || !fact.IsFact() {
		t.Fatalf("fact = %q", fact)
	}
}

func TestAggString(t *testing.T) {
	min := &Agg{Kind: "min", Value: &Var{Name: "D"}}
	if min.String() != "min<D>" {
		t.Fatalf("min = %q", min)
	}
	cnt := &Agg{Kind: "count", Contributor: &Var{Name: "X"}}
	if cnt.String() != "count<X>" {
		t.Fatalf("count = %q", cnt)
	}
	sum := &Agg{Kind: "sum", Contributor: &Var{Name: "Y"}, Value: &Var{Name: "K"}}
	if sum.String() != "sum<(Y,K)>" {
		t.Fatalf("sum = %q", sum)
	}
}

func TestConditionAndExprString(t *testing.T) {
	c := &Condition{
		Op: Ge,
		L:  &Var{Name: "N"},
		R:  &Bin{Op: Add, L: &Num{Int: 1}, R: &Param{Name: "k"}},
	}
	if c.String() != "N >= (1 + $k)" {
		t.Fatalf("cond = %q", c)
	}
	neg := &Negation{Atom: &Atom{Pred: "tc", Args: []Term{&Var{Name: "X"}}}}
	if neg.String() != "!tc(X)" {
		t.Fatalf("neg = %q", neg)
	}
	if (&Str{Val: "a\"b"}).String() != `"a\"b"` {
		t.Fatalf("str = %q", &Str{Val: `a"b`})
	}
	f := &Num{IsFloat: true, Float: 2.5}
	if f.String() != "2.5" {
		t.Fatalf("float = %q", f)
	}
}

func TestCmpOpAndArithOpNames(t *testing.T) {
	ops := map[string]string{
		Eq.String(): "=", Ne.String(): "!=", Lt.String(): "<",
		Le.String(): "<=", Gt.String(): ">", Ge.String(): ">=",
	}
	for got, want := range ops {
		if got != want {
			t.Fatalf("cmp op %q != %q", got, want)
		}
	}
	if Add.String() != "+" || Sub.String() != "-" || Mul.String() != "*" || Div.String() != "/" {
		t.Fatal("arith op names")
	}
}

func TestVarsCollection(t *testing.T) {
	e := &Bin{Op: Mul,
		L: &Bin{Op: Add, L: &Var{Name: "A"}, R: &Var{Name: "B"}},
		R: &Var{Name: "C"},
	}
	vs := Vars(e, nil)
	if len(vs) != 3 || vs[0] != "A" || vs[1] != "B" || vs[2] != "C" {
		t.Fatalf("vars = %v", vs)
	}
	if len(Vars(&Num{Int: 1}, nil)) != 0 {
		t.Fatal("literal has no vars")
	}
}

func TestHeadAgg(t *testing.T) {
	h := &Atom{Pred: "cc2", Args: []Term{
		&Var{Name: "Y"},
		&Agg{Kind: "min", Value: &Var{Name: "Z"}},
	}}
	agg, pos := h.HeadAgg()
	if agg == nil || pos != 1 || agg.Kind != "min" {
		t.Fatalf("agg = %v at %d", agg, pos)
	}
	plain := &Atom{Pred: "tc", Args: []Term{&Var{Name: "X"}}}
	if agg, pos := plain.HeadAgg(); agg != nil || pos != -1 {
		t.Fatal("plain head has no aggregate")
	}
}

func TestProgramString(t *testing.T) {
	p := &Program{
		Decls: []*Decl{{Name: "arc", Cols: []ColDecl{{Name: "x", Type: "int"}, {Name: "y", Type: "int"}}}},
		Rules: []*Rule{{Head: &Atom{Pred: "p", Args: []Term{&Num{Int: 1}}}}},
	}
	out := p.String()
	if !strings.Contains(out, ".decl arc(x:int, y:int)") || !strings.Contains(out, "p(1).") {
		t.Fatalf("program = %q", out)
	}
	if p.DeclFor("arc") == nil || p.DeclFor("zzz") != nil {
		t.Fatal("DeclFor")
	}
}

func TestRuleAtoms(t *testing.T) {
	r := &Rule{
		Head: &Atom{Pred: "p", Args: []Term{&Var{Name: "X"}}},
		Body: []Literal{
			&Atom{Pred: "a", Args: []Term{&Var{Name: "X"}}},
			&Condition{Op: Lt, L: &Var{Name: "X"}, R: &Num{Int: 5}},
			&Negation{Atom: &Atom{Pred: "b", Args: []Term{&Var{Name: "X"}}}},
			&Atom{Pred: "c", Args: []Term{&Var{Name: "X"}}},
		},
	}
	atoms := r.Atoms()
	if len(atoms) != 2 || atoms[0].Pred != "a" || atoms[1].Pred != "c" {
		t.Fatalf("atoms = %v", atoms)
	}
}
