// Package ast defines the abstract syntax of DCDatalog programs: typed
// relation declarations, rules built from atoms and conditions, head
// aggregates (min/max/count/sum, including the keyed sum<(Y,K)> form of
// the paper's Query 6), arithmetic expressions, query parameters ($p),
// and stratified negation.
package ast

import (
	"fmt"
	"strings"
)

// Position locates a syntax element in the source text.
type Position struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Program is a parsed Datalog program: declarations, rules and ground
// facts given inline.
type Program struct {
	Decls []*Decl
	Rules []*Rule
}

// DeclFor returns the declaration of the named relation, if present.
func (p *Program) DeclFor(name string) *Decl {
	for _, d := range p.Decls {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// String renders the program back to (normalized) source text.
func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.Decls {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Decl is a relation declaration: .decl name(col:type, ...).
type Decl struct {
	Pos  Position
	Name string
	Cols []ColDecl
}

// ColDecl is one typed column in a declaration.
type ColDecl struct {
	Name string
	Type string // "int", "float", "sym"
}

// String renders the declaration.
func (d *Decl) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".decl %s(", d.Name)
	for i, c := range d.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Type)
	}
	b.WriteString(")")
	return b.String()
}

// Rule is a Datalog rule head :- body. A rule with an empty body is a
// fact (possibly with head constants only).
type Rule struct {
	Pos  Position
	Head *Atom
	Body []Literal
}

// IsFact reports whether the rule has no body literals.
func (r *Rule) IsFact() bool { return len(r.Body) == 0 }

// Atoms returns the positive relational atoms of the body.
func (r *Rule) Atoms() []*Atom {
	var out []*Atom
	for _, l := range r.Body {
		if a, ok := l.(*Atom); ok {
			out = append(out, a)
		}
	}
	return out
}

// String renders the rule.
func (r *Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	if len(r.Body) > 0 {
		b.WriteString(" :- ")
		for i, l := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(l.String())
		}
	}
	b.WriteByte('.')
	return b.String()
}

// Literal is a body element: a positive atom, a negated atom, or a
// condition (comparison / binding).
type Literal interface {
	fmt.Stringer
	literal()
}

// Atom is a predicate applied to terms: pred(t1, ..., tk).
type Atom struct {
	Pos  Position
	Pred string
	Args []Term
}

func (*Atom) literal() {}

// String renders the atom.
func (a *Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Negation is a negated atom in a rule body ("!atom" / "not atom").
// DCDatalog supports it only across strata (stratified negation), never
// inside a recursive clique, matching the paper's stated limitation.
type Negation struct {
	Atom *Atom
}

func (*Negation) literal() {}

// String renders the negation.
func (n *Negation) String() string { return "!" + n.Atom.String() }

// CmpOp enumerates comparison operators in conditions.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator as written in source.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "?"
	}
}

// Condition is a comparison between two expressions. An equality whose
// left side is a not-yet-bound variable acts as a binding (let), e.g.
// "D = D1 + D2" in SSSP; the planner decides which role it plays.
type Condition struct {
	Pos Position
	Op  CmpOp
	L   Expr
	R   Expr
}

func (*Condition) literal() {}

// String renders the condition.
func (c *Condition) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// Term is an argument of an atom.
type Term interface {
	fmt.Stringer
	term()
}

// Var is a variable term. The parser renames each "_" wildcard to a
// unique variable.
type Var struct {
	Name string
}

func (*Var) term() {}
func (*Var) expr() {}

// String returns the variable name.
func (v *Var) String() string { return v.Name }

// Num is a numeric literal term.
type Num struct {
	IsFloat bool
	Int     int64
	Float   float64
}

func (*Num) term() {}
func (*Num) expr() {}

// String renders the literal.
func (n *Num) String() string {
	if n.IsFloat {
		return fmt.Sprintf("%g", n.Float)
	}
	return fmt.Sprintf("%d", n.Int)
}

// Str is a string literal term.
type Str struct {
	Val string
}

func (*Str) term() {}
func (*Str) expr() {}

// String renders the literal with quotes.
func (s *Str) String() string { return fmt.Sprintf("%q", s.Val) }

// Param is a query parameter ($name) bound at execution time, e.g. the
// source vertex of SSSP or PageRank's damping factor.
type Param struct {
	Name string
}

func (*Param) term() {}
func (*Param) expr() {}

// String renders the parameter reference.
func (p *Param) String() string { return "$" + p.Name }

// AggKindName enumerates the aggregate spellings accepted in heads.
var AggKindName = map[string]bool{"min": true, "max": true, "sum": true, "count": true}

// Agg is an aggregate term in a rule head, e.g. min<D>, count<X> or the
// keyed form sum<(Y,K)> where Y identifies the contributor whose latest
// contribution K participates in the sum.
type Agg struct {
	Kind string // "min" | "max" | "sum" | "count"
	// Contributor is set for the keyed forms: count<X> counts distinct
	// X, sum<(Y,K)> sums K per distinct Y. It is nil for min/max.
	Contributor Term
	// Value is the aggregated expression: the minimized/maximized/
	// summed term. For count it is nil (each contributor counts 1).
	Value Term
}

func (*Agg) term() {}

// String renders the aggregate.
func (a *Agg) String() string {
	switch {
	case a.Kind == "count":
		return fmt.Sprintf("count<%s>", a.Contributor)
	case a.Contributor != nil:
		return fmt.Sprintf("%s<(%s,%s)>", a.Kind, a.Contributor, a.Value)
	default:
		return fmt.Sprintf("%s<%s>", a.Kind, a.Value)
	}
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String renders the operator.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return "?"
	}
}

// Expr is an arithmetic expression over variables, literals and
// parameters.
type Expr interface {
	fmt.Stringer
	expr()
}

// Bin is a binary arithmetic expression.
type Bin struct {
	Op   ArithOp
	L, R Expr
}

func (*Bin) expr() {}

// String renders the expression fully parenthesized.
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Vars appends the variables referenced by e to dst.
func Vars(e Expr, dst []string) []string {
	switch x := e.(type) {
	case *Var:
		return append(dst, x.Name)
	case *Bin:
		return Vars(x.R, Vars(x.L, dst))
	default:
		return dst
	}
}

// HeadAgg returns the aggregate term of the atom along with its
// argument position, or nil when the head carries no aggregate.
func (a *Atom) HeadAgg() (*Agg, int) {
	for i, t := range a.Args {
		if g, ok := t.(*Agg); ok {
			return g, i
		}
	}
	return nil, -1
}
