package btree

import "repro/internal/storage"

// Cursor is an allocation-free forward iterator over a tree's leaf
// chain. It is a value type: embed it in a reusable frame and reposition
// it with First/Seek instead of allocating per scan. The tree must not
// be mutated while a cursor is live (the engine guarantees this —
// replicas merge only between local iterations, never under an active
// probe).
type Cursor struct {
	n *node
	i int
}

// First positions a cursor at the smallest key.
func (t *Tree) First() Cursor {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	c := Cursor{n: n}
	c.norm()
	return c
}

// Seek positions a cursor at the first key >= key. A shorter key that is
// a prefix of stored keys acts as an inclusive lower bound, so prefix
// scans seek the prefix and walk until it stops matching.
func (t *Tree) Seek(key storage.Tuple) Cursor {
	n := t.root
	for !n.leaf {
		i, exact := t.search(n, key)
		if exact {
			i++
		}
		n = n.children[i]
	}
	i, _ := t.search(n, key)
	c := Cursor{n: n, i: i}
	c.norm()
	return c
}

// norm advances past exhausted leaves (Seek can land one past the last
// key of a leaf; empty trees have an empty root leaf).
func (c *Cursor) norm() {
	for c.n != nil && c.i >= len(c.n.keys) {
		c.n = c.n.next
		c.i = 0
	}
}

// Valid reports whether the cursor is positioned on a key.
func (c *Cursor) Valid() bool { return c.n != nil }

// Key returns the current key. Only call when Valid.
func (c *Cursor) Key() storage.Tuple { return c.n.keys[c.i] }

// Val returns the current payload. Only call when Valid.
func (c *Cursor) Val() storage.Value { return c.n.vals[c.i] }

// Next advances to the next key in order.
func (c *Cursor) Next() {
	c.i++
	c.norm()
}

// HasPrefix reports whether key starts with prefix under the tree's
// column ordering (the termination check for cursor-driven prefix
// scans).
func (t *Tree) HasPrefix(key, prefix storage.Tuple) bool {
	if len(key) < len(prefix) {
		return false
	}
	for i := range prefix {
		ty := storage.TInt
		if i < len(t.types) {
			ty = t.types[i]
		}
		if storage.Compare(key[i], prefix[i], ty) != 0 {
			return false
		}
	}
	return true
}
