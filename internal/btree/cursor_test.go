package btree

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func k2(a, b int64) storage.Tuple {
	return storage.Tuple{storage.IntVal(a), storage.IntVal(b)}
}

func TestCursorEmptyTree(t *testing.T) {
	tr := intTree()
	if c := tr.First(); c.Valid() {
		t.Fatal("First on empty tree is valid")
	}
	if c := tr.Seek(k1(0)); c.Valid() {
		t.Fatal("Seek on empty tree is valid")
	}
}

// TestCursorFullWalk inserts enough keys to force several levels of
// splits and checks the cursor visits every key in order, crossing leaf
// boundaries via norm.
func TestCursorFullWalk(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(9)).Perm(1000)
	for _, p := range perm {
		tr.Insert(k1(int64(p)), storage.IntVal(int64(p)*3))
	}
	want := int64(0)
	for c := tr.First(); c.Valid(); c.Next() {
		if c.Key()[0].Int() != want {
			t.Fatalf("cursor key = %d, want %d", c.Key()[0].Int(), want)
		}
		if c.Val().Int() != want*3 {
			t.Fatalf("cursor val = %d, want %d", c.Val().Int(), want*3)
		}
		want++
	}
	if want != 1000 {
		t.Fatalf("cursor visited %d keys, want 1000", want)
	}
}

func TestCursorSeek(t *testing.T) {
	tr := intTree()
	// Even keys only: 0, 2, 4, ..., 398.
	for i := int64(0); i < 200; i++ {
		tr.Insert(k1(i*2), storage.IntVal(i))
	}
	// Exact hit.
	if c := tr.Seek(k1(100)); !c.Valid() || c.Key()[0].Int() != 100 {
		t.Fatalf("Seek(100) landed on %v", c)
	}
	// Between keys: first key >= 101 is 102.
	if c := tr.Seek(k1(101)); !c.Valid() || c.Key()[0].Int() != 102 {
		t.Fatalf("Seek(101) landed on %v", c)
	}
	// Before all keys.
	if c := tr.Seek(k1(-5)); !c.Valid() || c.Key()[0].Int() != 0 {
		t.Fatalf("Seek(-5) landed on %v", c)
	}
	// Past all keys.
	if c := tr.Seek(k1(399)); c.Valid() {
		t.Fatal("Seek past the last key should be invalid")
	}
}

// TestCursorPrefixRange drives the cursor the way the engine's
// aggregate prefix probe does: Seek the prefix, walk while HasPrefix
// holds.
func TestCursorPrefixRange(t *testing.T) {
	tr := New([]storage.Type{storage.TInt, storage.TInt})
	rng := rand.New(rand.NewSource(4))
	want := map[int64]int{}
	for i := 0; i < 2000; i++ {
		a, b := rng.Int63n(50), rng.Int63n(100)
		if _, existed := tr.Insert(k2(a, b), storage.IntVal(a+b)); !existed {
			want[a]++
		}
	}
	for a := int64(0); a < 50; a++ {
		prefix := k1(a)
		got := 0
		prev := int64(-1)
		for c := tr.Seek(prefix); c.Valid(); c.Next() {
			if !tr.HasPrefix(c.Key(), prefix) {
				break
			}
			if c.Key()[0].Int() != a {
				t.Fatalf("prefix %d scan saw key %v", a, c.Key())
			}
			if b := c.Key()[1].Int(); b <= prev {
				t.Fatalf("prefix %d scan out of order: %d after %d", a, b, prev)
			} else {
				prev = b
			}
			got++
		}
		if got != want[a] {
			t.Fatalf("prefix %d: %d keys, want %d", a, got, want[a])
		}
	}
}

func TestHasPrefix(t *testing.T) {
	tr := New([]storage.Type{storage.TInt, storage.TInt})
	if !tr.HasPrefix(k2(3, 7), k1(3)) {
		t.Fatal("(3,7) has prefix (3)")
	}
	if tr.HasPrefix(k2(3, 7), k1(4)) {
		t.Fatal("(3,7) lacks prefix (4)")
	}
	if !tr.HasPrefix(k2(3, 7), k2(3, 7)) {
		t.Fatal("full key is its own prefix")
	}
	if tr.HasPrefix(k1(3), k2(3, 7)) {
		t.Fatal("shorter key cannot match longer prefix")
	}
	if !tr.HasPrefix(k2(3, 7), storage.Tuple{}) {
		t.Fatal("empty prefix matches everything")
	}
}

// TestCursorMatchesAscend cross-checks the cursor against Ascend on a
// random two-column tree.
func TestCursorMatchesAscend(t *testing.T) {
	tr := New([]storage.Type{storage.TInt, storage.TInt})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		tr.Insert(k2(rng.Int63n(200), rng.Int63n(200)), storage.IntVal(int64(i)))
	}
	var fromAscend [][2]int64
	tr.Ascend(func(key storage.Tuple, _ storage.Value) bool {
		fromAscend = append(fromAscend, [2]int64{key[0].Int(), key[1].Int()})
		return true
	})
	i := 0
	for c := tr.First(); c.Valid(); c.Next() {
		k := [2]int64{c.Key()[0].Int(), c.Key()[1].Int()}
		if i >= len(fromAscend) || k != fromAscend[i] {
			t.Fatalf("cursor key %d = %v, Ascend saw %v", i, k, fromAscend[i])
		}
		i++
	}
	if i != len(fromAscend) {
		t.Fatalf("cursor visited %d keys, Ascend %d", i, len(fromAscend))
	}
}
