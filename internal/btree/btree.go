// Package btree implements the in-memory B+-tree used to index
// recursive relations during semi-naive evaluation (paper §3, §6.2).
//
// Keys are composite tuples ordered column-wise according to the column
// types supplied at construction; every value lives in a leaf and the
// leaves are chained for ordered range scans. The tree additionally
// stores a 64-bit payload per key, which the engine uses either as a row
// id or, for aggregate relations, as the current aggregate value so that
// merges are resolved by a single index lookup (§6.2.1).
package btree

import "repro/internal/storage"

// degree is the branching factor: every node except the root holds
// between degree-1 and 2*degree-1 keys.
const degree = 16

const (
	maxKeys = 2*degree - 1
	minKeys = degree - 1
)

// Tree is a B+-tree keyed by composite value tuples.
type Tree struct {
	types []storage.Type
	root  *node
	size  int
}

type node struct {
	leaf     bool
	keys     []storage.Tuple
	vals     []storage.Value // leaves only, parallel to keys
	children []*node         // internal nodes only, len(keys)+1
	next     *node           // leaf chain
}

// New returns an empty tree whose keys are tuples typed column-wise by
// types.
func New(types []storage.Type) *Tree {
	return &Tree{
		types: types,
		root:  &node{leaf: true},
	}
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.size }

// compare orders two composite keys lexicographically. A shorter key
// that is a prefix of a longer one sorts first, which lets prefix scans
// use a partial key as an inclusive lower bound.
func (t *Tree) compare(a, b storage.Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ty := storage.TInt
		if i < len(t.types) {
			ty = t.types[i]
		}
		if c := storage.Compare(a[i], b[i], ty); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// search returns the first index i in n.keys with keys[i] >= key, and
// whether an exact match sits at i.
func (t *Tree) search(n *node, key storage.Tuple) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && t.compare(n.keys[lo], key) == 0
}

// Get returns the payload stored under key.
func (t *Tree) Get(key storage.Tuple) (storage.Value, bool) {
	n := t.root
	for !n.leaf {
		i, exact := t.search(n, key)
		if exact {
			i++ // internal separator equal to key routes right
		}
		n = n.children[i]
	}
	i, exact := t.search(n, key)
	if !exact {
		return 0, false
	}
	return n.vals[i], true
}

// Insert stores val under key, replacing any previous payload. It
// returns the previous payload and whether the key already existed.
func (t *Tree) Insert(key storage.Tuple, val storage.Value) (storage.Value, bool) {
	prev, existed := t.insert(t.root, key, val)
	if len(t.root.keys) > maxKeys {
		left := t.root
		sep, right := t.split(left)
		t.root = &node{
			keys:     []storage.Tuple{sep},
			children: []*node{left, right},
		}
	}
	if !existed {
		t.size++
	}
	return prev, existed
}

// InsertFresh stores val under key like Insert, but the tree clones the
// key only when it is actually added, so callers may pass a reusable
// scratch buffer. The common repeat-key path (e.g. a count/sum
// contributor deriving the same contribution again) is allocation-free.
func (t *Tree) InsertFresh(key storage.Tuple, val storage.Value) (storage.Value, bool) {
	n := t.root
	for !n.leaf {
		i, exact := t.search(n, key)
		if exact {
			i++
		}
		n = n.children[i]
	}
	if i, exact := t.search(n, key); exact {
		prev := n.vals[i]
		n.vals[i] = val
		return prev, true
	}
	t.Insert(key.Clone(), val)
	return 0, false
}

// Update applies fn to the payload under key, inserting fn(zero, false)
// when absent. It reports whether the stored payload changed and
// returns the resulting payload. This is the one-lookup merge path used
// for aggregates in recursion.
func (t *Tree) Update(key storage.Tuple, fn func(cur storage.Value, exists bool) storage.Value) (storage.Value, bool) {
	n := t.root
	for !n.leaf {
		i, exact := t.search(n, key)
		if exact {
			i++
		}
		n = n.children[i]
	}
	i, exact := t.search(n, key)
	if exact {
		next := fn(n.vals[i], true)
		changed := next != n.vals[i]
		n.vals[i] = next
		return next, changed
	}
	next := fn(0, false)
	t.Insert(key.Clone(), next)
	return next, true
}

// insert descends to the proper leaf, splitting full children on the
// way back up.
func (t *Tree) insert(n *node, key storage.Tuple, val storage.Value) (storage.Value, bool) {
	if n.leaf {
		i, exact := t.search(n, key)
		if exact {
			prev := n.vals[i]
			n.vals[i] = val
			return prev, true
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		return 0, false
	}
	i, exact := t.search(n, key)
	if exact {
		i++
	}
	prev, existed := t.insert(n.children[i], key, val)
	if len(n.children[i].keys) > maxKeys {
		sep, right := t.split(n.children[i])
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = sep
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
	}
	return prev, existed
}

// split divides an overfull node, returning the separator key and the
// new right sibling.
func (t *Tree) split(n *node) (storage.Tuple, *node) {
	mid := len(n.keys) / 2
	right := &node{leaf: n.leaf}
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		right.next = n.next
		n.next = right
		return right.keys[0], right
	}
	sep := n.keys[mid]
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key storage.Tuple) bool {
	deleted := t.delete(t.root, key)
	if !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree) delete(n *node, key storage.Tuple) bool {
	if n.leaf {
		i, exact := t.search(n, key)
		if !exact {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	i, exact := t.search(n, key)
	if exact {
		i++
	}
	deleted := t.delete(n.children[i], key)
	if len(n.children[i].keys) < minKeys {
		t.rebalance(n, i)
	}
	return deleted
}

// rebalance restores the occupancy invariant of n.children[i] by
// borrowing from a sibling or merging with one.
func (t *Tree) rebalance(n *node, i int) {
	child := n.children[i]
	// Borrow from the left sibling when it can spare a key.
	if i > 0 && len(n.children[i-1].keys) > minKeys {
		left := n.children[i-1]
		if child.leaf {
			last := len(left.keys) - 1
			child.keys = append([]storage.Tuple{left.keys[last]}, child.keys...)
			child.vals = append([]storage.Value{left.vals[last]}, child.vals...)
			left.keys = left.keys[:last]
			left.vals = left.vals[:last]
			n.keys[i-1] = child.keys[0]
		} else {
			last := len(left.keys) - 1
			child.keys = append([]storage.Tuple{n.keys[i-1]}, child.keys...)
			n.keys[i-1] = left.keys[last]
			child.children = append([]*node{left.children[last+1]}, child.children...)
			left.keys = left.keys[:last]
			left.children = left.children[:last+1]
		}
		return
	}
	// Borrow from the right sibling.
	if i < len(n.children)-1 && len(n.children[i+1].keys) > minKeys {
		right := n.children[i+1]
		if child.leaf {
			child.keys = append(child.keys, right.keys[0])
			child.vals = append(child.vals, right.vals[0])
			right.keys = right.keys[1:]
			right.vals = right.vals[1:]
			n.keys[i] = right.keys[0]
		} else {
			child.keys = append(child.keys, n.keys[i])
			n.keys[i] = right.keys[0]
			child.children = append(child.children, right.children[0])
			right.keys = right.keys[1:]
			right.children = right.children[1:]
		}
		return
	}
	// Merge with a sibling. Normalize so we merge children[i] into
	// children[i-1].
	if i == 0 {
		i = 1
	}
	left, right := n.children[i-1], n.children[i]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i-1])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i-1], n.keys[i:]...)
	n.children = append(n.children[:i], n.children[i+1:]...)
}

// Ascend visits every key/payload pair in key order until fn returns
// false.
func (t *Tree) Ascend(fn func(key storage.Tuple, val storage.Value) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		for i := range n.keys {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// AscendRange visits keys in [lo, hi) in order; a nil bound is
// unbounded on that side.
func (t *Tree) AscendRange(lo, hi storage.Tuple, fn func(key storage.Tuple, val storage.Value) bool) {
	n := t.root
	if lo == nil {
		for !n.leaf {
			n = n.children[0]
		}
	} else {
		for !n.leaf {
			i, exact := t.search(n, lo)
			if exact {
				i++
			}
			n = n.children[i]
		}
	}
	start := 0
	if lo != nil {
		start, _ = t.search(n, lo)
	}
	for n != nil {
		for i := start; i < len(n.keys); i++ {
			if hi != nil && t.compare(n.keys[i], hi) >= 0 {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		start = 0
		n = n.next
	}
}

// AscendPrefix visits every key whose leading columns equal prefix.
func (t *Tree) AscendPrefix(prefix storage.Tuple, fn func(key storage.Tuple, val storage.Value) bool) {
	t.AscendRange(prefix, nil, func(key storage.Tuple, val storage.Value) bool {
		for i := range prefix {
			ty := storage.TInt
			if i < len(t.types) {
				ty = t.types[i]
			}
			if storage.Compare(key[i], prefix[i], ty) != 0 {
				return false
			}
		}
		return fn(key, val)
	})
}
