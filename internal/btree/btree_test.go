package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func k1(v int64) storage.Tuple { return storage.Tuple{storage.IntVal(v)} }

func intTree() *Tree { return New([]storage.Type{storage.TInt}) }

func TestInsertGet(t *testing.T) {
	tr := intTree()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(k1(i*7%1000), storage.IntVal(i))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		if _, ok := tr.Get(k1(i)); !ok {
			t.Fatalf("missing key %d", i)
		}
	}
	if _, ok := tr.Get(k1(1000)); ok {
		t.Fatal("found absent key")
	}
}

func TestInsertReplaces(t *testing.T) {
	tr := intTree()
	if _, existed := tr.Insert(k1(5), storage.IntVal(1)); existed {
		t.Fatal("fresh key reported as existing")
	}
	prev, existed := tr.Insert(k1(5), storage.IntVal(2))
	if !existed || prev.Int() != 1 {
		t.Fatalf("replace = (%d,%v)", prev.Int(), existed)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	if v, _ := tr.Get(k1(5)); v.Int() != 2 {
		t.Fatal("replacement not visible")
	}
}

func TestAscendOrdered(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, p := range perm {
		tr.Insert(k1(int64(p)), storage.IntVal(int64(p)))
	}
	var got []int64
	tr.Ascend(func(key storage.Tuple, val storage.Value) bool {
		got = append(got, key[0].Int())
		return true
	})
	if len(got) != 500 {
		t.Fatalf("visited %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Ascend out of order")
	}
}

func TestAscendRange(t *testing.T) {
	tr := intTree()
	for i := int64(0); i < 100; i++ {
		tr.Insert(k1(i), storage.IntVal(i))
	}
	var got []int64
	tr.AscendRange(k1(10), k1(20), func(key storage.Tuple, _ storage.Value) bool {
		got = append(got, key[0].Int())
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range [10,20) = %v", got)
	}
	// Unbounded high end.
	n := 0
	tr.AscendRange(k1(95), nil, func(storage.Tuple, storage.Value) bool { n++; return true })
	if n != 5 {
		t.Fatalf("range [95,∞) visited %d", n)
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New([]storage.Type{storage.TInt, storage.TInt})
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			tr.Insert(storage.Tuple{storage.IntVal(a), storage.IntVal(b)}, storage.IntVal(a*10+b))
		}
	}
	n := 0
	tr.AscendPrefix(k1(4), func(key storage.Tuple, _ storage.Value) bool {
		if key[0].Int() != 4 {
			t.Fatalf("prefix scan leaked key %v", key)
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("prefix scan visited %d, want 10", n)
	}
}

func TestDelete(t *testing.T) {
	tr := intTree()
	const n = 2000
	for i := int64(0); i < n; i++ {
		tr.Insert(k1(i), storage.IntVal(i))
	}
	// Delete the odd keys.
	for i := int64(1); i < n; i += 2 {
		if !tr.Delete(k1(i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Delete(k1(1)) {
		t.Fatal("double delete should fail")
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i := int64(0); i < n; i++ {
		_, ok := tr.Get(k1(i))
		if want := i%2 == 0; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
	// Order must survive rebalancing.
	prev := int64(-1)
	tr.Ascend(func(key storage.Tuple, _ storage.Value) bool {
		if key[0].Int() <= prev {
			t.Fatalf("order violated: %d after %d", key[0].Int(), prev)
		}
		prev = key[0].Int()
		return true
	})
}

func TestDeleteAll(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(7)).Perm(1500)
	for _, p := range perm {
		tr.Insert(k1(int64(p)), storage.IntVal(int64(p)))
	}
	perm2 := rand.New(rand.NewSource(8)).Perm(1500)
	for _, p := range perm2 {
		if !tr.Delete(k1(int64(p))) {
			t.Fatalf("Delete(%d) failed", p)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	n := 0
	tr.Ascend(func(storage.Tuple, storage.Value) bool { n++; return true })
	if n != 0 {
		t.Fatalf("Ascend visited %d keys in an empty tree", n)
	}
}

func TestUpdate(t *testing.T) {
	tr := intTree()
	v, changed := tr.Update(k1(1), func(cur storage.Value, exists bool) storage.Value {
		if exists {
			t.Fatal("first update should see absent key")
		}
		return storage.IntVal(10)
	})
	if !changed || v.Int() != 10 {
		t.Fatalf("update insert = (%d,%v)", v.Int(), changed)
	}
	// Monotone min-style merge: keep the smaller value.
	v, changed = tr.Update(k1(1), func(cur storage.Value, exists bool) storage.Value {
		if !exists || cur.Int() != 10 {
			t.Fatal("second update should see 10")
		}
		return storage.IntVal(3)
	})
	if !changed || v.Int() != 3 {
		t.Fatal("min merge should change to 3")
	}
	_, changed = tr.Update(k1(1), func(cur storage.Value, exists bool) storage.Value { return cur })
	if changed {
		t.Fatal("identity update must report unchanged")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestCompositeKeysOrderLexicographically(t *testing.T) {
	tr := New([]storage.Type{storage.TInt, storage.TFloat})
	keys := []storage.Tuple{
		{storage.IntVal(2), storage.FloatVal(0.1)},
		{storage.IntVal(1), storage.FloatVal(9.9)},
		{storage.IntVal(1), storage.FloatVal(0.5)},
		{storage.IntVal(2), storage.FloatVal(0.05)},
	}
	for i, k := range keys {
		tr.Insert(k, storage.IntVal(int64(i)))
	}
	var got []storage.Tuple
	tr.Ascend(func(k storage.Tuple, _ storage.Value) bool { got = append(got, k); return true })
	want := [][2]float64{{1, 0.5}, {1, 9.9}, {2, 0.05}, {2, 0.1}}
	for i, w := range want {
		if got[i][0].Int() != int64(w[0]) || got[i][1].Float() != w[1] {
			t.Fatalf("position %d = (%d,%g), want %v", i, got[i][0].Int(), got[i][1].Float(), w)
		}
	}
}

// Property: tree contents always match a map model under a random
// sequence of inserts and deletes.
func TestTreeMatchesMapModel(t *testing.T) {
	type op struct {
		Key    int16
		Val    int32
		Delete bool
	}
	f := func(ops []op) bool {
		tr := intTree()
		model := map[int16]int32{}
		for _, o := range ops {
			if o.Delete {
				_, inModel := model[o.Key]
				delete(model, o.Key)
				if tr.Delete(k1(int64(o.Key))) != inModel {
					return false
				}
			} else {
				model[o.Key] = o.Val
				tr.Insert(k1(int64(o.Key)), storage.IntVal(int64(o.Val)))
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := tr.Get(k1(int64(k)))
			if !ok || got.Int() != int64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := intTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(k1(int64(i)), storage.IntVal(int64(i)))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := intTree()
	for i := int64(0); i < 100000; i++ {
		tr.Insert(k1(i), storage.IntVal(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(k1(int64(i) % 100000))
	}
}
