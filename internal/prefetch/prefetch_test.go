package prefetch

import (
	"testing"
	"unsafe"
)

// TestT0 exercises the hint against live, interior, and slice-element
// addresses. A prefetch has no observable effect, so the test is that
// nothing faults and the data is untouched.
func TestT0(t *testing.T) {
	var x [1024]uint64
	for i := range x {
		x[i] = uint64(i)
	}
	T0(unsafe.Pointer(&x[0]))
	T0(unsafe.Pointer(&x[1023]))
	T0(unsafe.Pointer(uintptr(unsafe.Pointer(&x[0])) + 3)) // misaligned interior
	s := make([]byte, 64)
	T0(unsafe.Pointer(&s[0]))
	for i := range x {
		if x[i] != uint64(i) {
			t.Fatalf("prefetch mutated memory at %d", i)
		}
	}
}

func BenchmarkT0(b *testing.B) {
	var x uint64
	p := unsafe.Pointer(&x)
	for i := 0; i < b.N; i++ {
		T0(p)
	}
}
