// Package prefetch exposes the CPU's software prefetch hint as a Go
// call. A prefetch is advisory: it starts pulling the addressed cache
// line toward L1 without blocking, faulting, or changing semantics, so
// a wrong address costs at most one wasted line fill. The join
// pipeline in internal/engine issues hints a probe group ahead of the
// walk, overlapping the directory and arena line fills of many
// independent probe chains instead of stalling on them one at a time.
//
// On amd64 and arm64, T0 lowers to a single hint instruction
// (PREFETCHT0 / PRFM PLDL1KEEP) via tiny assembly stubs; other
// architectures get an empty function, so callers never need build
// tags. The stubs are NOSPLIT leaf functions — passing an
// unsafe.Pointer keeps the referenced object alive across the call,
// and the hint never dereferences it architecturally, so a stale or
// interior pointer is safe.
package prefetch
