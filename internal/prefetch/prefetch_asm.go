//go:build amd64 || arm64

package prefetch

import "unsafe"

// T0 hints the cache line containing p into all cache levels
// (temporal locality, L1 target). Implemented in assembly; see
// prefetch_amd64.s and prefetch_arm64.s.
//
//go:noescape
func T0(p unsafe.Pointer)
