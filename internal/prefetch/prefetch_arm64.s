//go:build arm64

#include "textflag.h"

// func T0(p unsafe.Pointer)
TEXT ·T0(SB), NOSPLIT, $0-8
	MOVD p+0(FP), R0
	PRFM (R0), PLDL1KEEP
	RET
