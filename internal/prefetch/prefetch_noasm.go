//go:build !amd64 && !arm64

package prefetch

import "unsafe"

// T0 is a no-op on architectures without an assembly stub; the
// compiler inlines the empty body away, so portable builds pay
// nothing.
func T0(p unsafe.Pointer) {}
