package des

import (
	"testing"

	"repro/internal/coord"
	"repro/internal/datasets"
)

func simulate(t *testing.T, k coord.Kind) Result {
	t.Helper()
	r := Figure3(k)
	if r.Time <= 0 {
		t.Fatalf("%v makespan = %g", k, r.Time)
	}
	return r
}

// TestFigure3Ordering reproduces the paper's Figure 3 result: on the
// straggler-heavy example, DWS beats SSP, which beats Global (paper
// values: 67 < 88 < 128 time units).
func TestFigure3Ordering(t *testing.T) {
	global := simulate(t, coord.Global)
	ssp := simulate(t, coord.SSP)
	dws := simulate(t, coord.DWS)
	t.Logf("global=%.1f ssp=%.1f dws=%.1f", global.Time, ssp.Time, dws.Time)
	if !(dws.Time <= ssp.Time && ssp.Time < global.Time) {
		t.Fatalf("ordering violated: dws=%.1f ssp=%.1f global=%.1f", dws.Time, ssp.Time, global.Time)
	}
	// The paper reports DWS at roughly half of Global (67/128 ≈ 0.52)
	// and SSP at ≈0.69; accept a generous band around those ratios.
	if r := dws.Time / global.Time; r > 0.9 {
		t.Fatalf("DWS/Global ratio = %.2f, expected a clear win", r)
	}
}

// TestSimulationConverges checks that all strategies compute the same
// fixpoint work (every vertex labeled) and terminate.
func TestSimulationConverges(t *testing.T) {
	edges := datasets.Undirect(datasets.RMAT(256, 1024, 1))
	for _, k := range []coord.Kind{coord.Global, coord.SSP, coord.DWS} {
		r := SimulateCC(edges, Config{Workers: 8, Strategy: k})
		if r.Time <= 0 {
			t.Fatalf("%v did not run", k)
		}
		total := 0
		for _, n := range r.Tuples {
			total += n
		}
		if total < 256 {
			t.Fatalf("%v processed only %d tuples", k, total)
		}
	}
}

// TestGlobalWaitsMoreThanDWS: idle waiting is the quantity DWS is
// designed to remove. The advantage materializes under worker
// imbalance (the paper's motivating scenario): with a straggler, the
// Global barrier forces everyone to wait for it every round.
func TestGlobalWaitsMoreThanDWS(t *testing.T) {
	edges := datasets.Undirect(datasets.RMATn(512, 2))
	speed := []float64{3, 1, 1, 1, 1, 1, 1, 1}
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	g := SimulateCC(edges, Config{Workers: 8, Strategy: coord.Global, CoordCost: 2, Speed: speed})
	d := SimulateCC(edges, Config{Workers: 8, Strategy: coord.DWS, CoordCost: 2, Speed: speed})
	if sum(g.Waiting) <= sum(d.Waiting) {
		t.Fatalf("waiting: global=%.1f dws=%.1f", sum(g.Waiting), sum(d.Waiting))
	}
	if d.Time >= g.Time {
		t.Fatalf("makespan: dws=%.1f global=%.1f", d.Time, g.Time)
	}
}

// TestScaleUpShape reproduces Figure 9(a)'s shape on the simulator:
// adding workers reduces the makespan with diminishing returns.
func TestScaleUpShape(t *testing.T) {
	edges := datasets.Undirect(datasets.RMATn(1024, 3))
	var prev float64
	speedup1 := 0.0
	for i, workers := range []int{1, 2, 4, 8, 16, 32} {
		r := SimulateCC(edges, Config{Workers: workers, Strategy: coord.DWS})
		if i == 0 {
			speedup1 = r.Time
			prev = r.Time
			continue
		}
		if r.Time > prev*1.15 {
			t.Fatalf("makespan grew at %d workers: %.1f after %.1f", workers, r.Time, prev)
		}
		prev = r.Time
	}
	if speedup1/prev < 3 {
		t.Fatalf("32-worker speedup only %.1fx", speedup1/prev)
	}
}

// TestStragglerSpeedHurtsGlobalMost models heterogeneous cores: one
// slow worker drags the Global barrier every round, while DWS only
// pays where the slow worker actually owns work.
func TestStragglerSpeedHurtsGlobalMost(t *testing.T) {
	edges := datasets.Undirect(datasets.RMAT(512, 2048, 4))
	speed := []float64{4, 1, 1, 1, 1, 1, 1, 1} // worker 0 is 4× slower
	g := SimulateCC(edges, Config{Workers: 8, Strategy: coord.Global, Speed: speed, CoordCost: 5})
	d := SimulateCC(edges, Config{Workers: 8, Strategy: coord.DWS, Speed: speed, CoordCost: 5})
	if d.Time >= g.Time {
		t.Fatalf("straggler: dws=%.1f should beat global=%.1f", d.Time, g.Time)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers != 4 || c.PerTuple != 1 || c.CoordCost != 1 || c.Slack != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.speed(0) != 1 || c.speed(99) != 1 {
		t.Fatal("speed default")
	}
	c.Speed = []float64{2}
	if c.speed(0) != 2 {
		t.Fatal("speed override")
	}
}
