// Package des is a discrete-event simulator of the three coordination
// strategies (Global / SSP / DWS) over parallel semi-naive evaluation.
// It exists because reproducing the paper's Figures 3, 8 and 9(a)
// requires a 32-core machine: the simulator models per-worker iteration
// cost, barrier waiting, bounded staleness and DWS's (ω, τ) decisions
// on a virtual clock, so the *shape* of those figures — who waits,
// who wins, how speedup scales with workers — can be regenerated on
// any host. The DWS decisions reuse the same queueing-theory code
// (internal/queueing) as the real engine.
package des

import (
	"container/heap"
	"math"

	"repro/internal/coord"
	"repro/internal/datasets"
	"repro/internal/queueing"
)

// Config parameterizes a simulation.
type Config struct {
	// Workers is the number of simulated workers.
	Workers int
	// Strategy selects Global, SSP or DWS.
	Strategy coord.Kind
	// Slack is the SSP staleness bound.
	Slack int
	// PerTuple is the service time per delta tuple (time units).
	PerTuple float64
	// IterOverhead is the fixed cost of a local iteration.
	IterOverhead float64
	// CoordCost is the per-round coordination cost of a Global barrier
	// (index maintenance + exchange across all workers).
	CoordCost float64
	// MsgLatency is the buffer delivery latency between workers.
	MsgLatency float64
	// Speed scales each worker's cost (1 = nominal); shorter slices
	// default to 1. Models stragglers/heterogeneous cores.
	Speed []float64
	// DWSMaxWait caps τ.
	DWSMaxWait float64
	// Owner optionally overrides the vertex → worker assignment
	// (defaults to hash partitioning). Scenario tests use it to
	// recreate the paper's Figure 3 layout.
	Owner func(v int64) int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Slack <= 0 {
		c.Slack = 1
	}
	if c.PerTuple <= 0 {
		c.PerTuple = 1
	}
	if c.IterOverhead < 0 {
		c.IterOverhead = 0
	}
	if c.CoordCost <= 0 {
		c.CoordCost = 1
	}
	if c.MsgLatency < 0 {
		c.MsgLatency = 0
	}
	if c.DWSMaxWait <= 0 {
		c.DWSMaxWait = 8
	}
	return c
}

func (c Config) speed(w int) float64 {
	if w < len(c.Speed) && c.Speed[w] > 0 {
		return c.Speed[w]
	}
	return 1
}

// Result summarizes a simulated run.
type Result struct {
	// Time is the simulated makespan in time units.
	Time float64
	// Iterations counts local iterations per worker.
	Iterations []int
	// Waiting is per-worker idle/blocked time.
	Waiting []float64
	// Tuples counts delta tuples processed per worker.
	Tuples []int
}

// update is one label-improvement message.
type update struct {
	vertex int64
	label  int64
	at     float64 // arrival time
}

// SimulateCC simulates min-label propagation (the CC query) over the
// graph under the chosen strategy and returns the virtual makespan.
// Vertices are hash-partitioned across workers; a worker's local
// iteration relaxes the out-edges of its pending delta vertices.
func SimulateCC(edges []datasets.Edge, cfg Config) Result {
	cfg = cfg.withDefaults()
	n := cfg.Workers
	owner := cfg.Owner
	if owner == nil {
		owner = func(v int64) int { return int(uint64(v*2654435761) % uint64(n)) }
	}

	adj := map[int64][]int64{}
	vertices := map[int64]bool{}
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		vertices[e.Src] = true
		vertices[e.Dst] = true
	}
	label := map[int64]int64{}

	// Seed: every vertex starts labeled with itself at time 0.
	inbox := make([][]update, n)
	for v := range vertices {
		inbox[owner(v)] = append(inbox[owner(v)], update{v, v, 0})
	}

	if cfg.Strategy == coord.Global {
		return simulateGlobal(cfg, adj, label, inbox, owner)
	}
	return simulateAsync(cfg, adj, label, inbox, owner)
}

// simulateGlobal plays BSP rounds: every worker with a delta computes,
// the round closes at the slowest worker plus the coordination cost,
// and updates become visible in the next round (Algorithm 1). Deltas
// coalesce per vertex within a round, as in the real engine.
func simulateGlobal(cfg Config, adj map[int64][]int64, label map[int64]int64, inbox [][]update, owner func(int64) int) Result {
	n := cfg.Workers
	res := Result{Iterations: make([]int, n), Waiting: make([]float64, n), Tuples: make([]int, n)}
	busyTime := make([]float64, n)
	now := 0.0
	for {
		// Merge arrivals into coalesced per-worker delta vertex sets.
		deltas := make([]map[int64]bool, n)
		busy := false
		for w := 0; w < n; w++ {
			for _, u := range inbox[w] {
				if cur, ok := label[u.vertex]; !ok || u.label < cur {
					label[u.vertex] = u.label
					if deltas[w] == nil {
						deltas[w] = make(map[int64]bool)
					}
					deltas[w][u.vertex] = true
				}
			}
			inbox[w] = nil
			if len(deltas[w]) > 0 {
				busy = true
			}
		}
		if !busy {
			break
		}
		roundEnd := now
		next := make([][]update, n)
		for w := 0; w < n; w++ {
			if len(deltas[w]) == 0 {
				continue
			}
			dur := (cfg.IterOverhead + cfg.PerTuple*float64(len(deltas[w]))) * cfg.speed(w)
			finish := now + dur
			busyTime[w] += dur
			res.Iterations[w]++
			res.Tuples[w] += len(deltas[w])
			for v := range deltas[w] {
				lab := label[v]
				for _, dst := range adj[v] {
					if cur, ok := label[dst]; !ok || lab < cur {
						next[owner(dst)] = append(next[owner(dst)], update{dst, lab, finish})
					}
				}
			}
			if finish > roundEnd {
				roundEnd = finish
			}
		}
		roundEnd += cfg.CoordCost
		for w := 0; w < n; w++ {
			inbox[w] = next[w]
		}
		now = roundEnd
	}
	res.Time = now
	for w := 0; w < n; w++ {
		res.Waiting[w] = now - busyTime[w]
	}
	return res
}

// event is a simulation event: a worker becomes ready to act.
type event struct {
	at     float64
	worker int
	seq    int
}

type eventQueue []event

func (q eventQueue) Len() int      { return len(q) }
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	x := old[len(old)-1]
	*q = old[:len(old)-1]
	return x
}

// simulateAsync plays SSP and DWS on an event queue: workers run local
// iterations independently, messages arrive with latency, SSP gates on
// the staleness bound and DWS on its (ω, τ) decision. Pending deltas
// coalesce per vertex, mirroring the real engine's per-group delta
// coalescing.
func simulateAsync(cfg Config, adj map[int64][]int64, label map[int64]int64, inbox [][]update, owner func(int64) int) Result {
	n := cfg.Workers
	res := Result{Iterations: make([]int, n), Waiting: make([]float64, n), Tuples: make([]int, n)}

	freeAt := make([]float64, n)
	iters := make([]int64, n)
	busyTime := make([]float64, n)
	arr := make([]*queueing.ArrivalTracker, n)
	svc := make([]*queueing.ServiceTracker, n)
	for w := 0; w < n; w++ {
		arr[w] = &queueing.ArrivalTracker{}
		svc[w] = &queueing.ServiceTracker{}
	}

	var q eventQueue
	seq := 0
	wake := func(w int, at float64) {
		heap.Push(&q, event{at: at, worker: w, seq: seq})
		seq++
	}
	for w := 0; w < n; w++ {
		wake(w, 0)
	}

	// pending[w] is the coalesced set of delta vertices awaiting
	// evaluation; the label map always holds each vertex's freshest
	// value.
	pending := make([]map[int64]bool, n)
	for w := range pending {
		pending[w] = make(map[int64]bool)
	}
	waitSpent := make([]float64, n) // cumulative DWS wait per decision

	minActiveIter := func() int64 {
		min := int64(math.MaxInt64)
		any := false
		for w := 0; w < n; w++ {
			if len(inbox[w]) == 0 && len(pending[w]) == 0 {
				continue // parked: locally fixpointed for now
			}
			any = true
			if iters[w] < min {
				min = iters[w]
			}
		}
		if !any {
			return math.MaxInt64
		}
		return min
	}

	makespan := 0.0
	guard := 0
	for q.Len() > 0 {
		guard++
		if guard > 50_000_000 {
			break // safety valve; never hit by the benchmarks
		}
		ev := heap.Pop(&q).(event)
		w := ev.worker
		now := ev.at
		if now < freeAt[w] {
			wake(w, freeAt[w])
			continue
		}
		// Move due arrivals through the label filter into pending.
		var later []update
		for _, u := range inbox[w] {
			if u.at <= now {
				if cur, ok := label[u.vertex]; !ok || u.label < cur {
					label[u.vertex] = u.label
					pending[w][u.vertex] = true
				}
			} else {
				later = append(later, u)
			}
		}
		inbox[w] = later
		if len(pending[w]) == 0 {
			next := math.Inf(1)
			for _, u := range later {
				if u.at < next {
					next = u.at
				}
			}
			if !math.IsInf(next, 1) {
				wake(w, next)
			}
			continue
		}

		// Strategy gate.
		switch cfg.Strategy {
		case coord.SSP:
			if iters[w]-minActiveIter() > int64(cfg.Slack) {
				wake(w, now+cfg.PerTuple)
				continue
			}
		case coord.DWS:
			lambda, sa2 := arr[w].Lambda(), arr[w].SigmaA2()
			d := queueing.Decide(lambda, sa2, svc[w].Mu(), svc[w].SigmaS2(), cfg.DWSMaxWait)
			if d.Omega > 0 && len(pending[w]) < d.Omega && d.Tau > 0 &&
				waitSpent[w]+d.Tau <= cfg.DWSMaxWait {
				waitSpent[w] += d.Tau
				wake(w, now+d.Tau)
				continue
			}
		}
		waitSpent[w] = 0

		// Run the local iteration on the coalesced delta.
		delta := pending[w]
		pending[w] = make(map[int64]bool)
		dur := (cfg.IterOverhead + cfg.PerTuple*float64(len(delta))) * cfg.speed(w)
		finish := now + dur
		busyTime[w] += dur
		freeAt[w] = finish
		iters[w]++
		res.Iterations[w]++
		res.Tuples[w] += len(delta)
		svc[w].Record(len(delta), dur)
		for v := range delta {
			lab := label[v]
			for _, dst := range adj[v] {
				if cur, ok := label[dst]; !ok || lab < cur {
					o := owner(dst)
					at := finish + cfg.MsgLatency
					inbox[o] = append(inbox[o], update{dst, lab, at})
					arr[o].Record(1, int64(at*1e9))
					wake(o, at)
				}
			}
		}
		if finish > makespan {
			makespan = finish
		}
		wake(w, finish)
	}
	res.Time = makespan
	for w := 0; w < n; w++ {
		res.Waiting[w] = makespan - busyTime[w]
	}
	return res
}
