package des

import (
	"repro/internal/coord"
	"repro/internal/datasets"
)

// Figure3 replays the paper's Figure 3 worked example: three workers
// evaluating CC where W1 owns a small cluster containing the global
// minimum label and W2/W3 own longer chains through which that label
// must propagate, making them stragglers. The paper's hand-drawn trace
// gives Global=128, SSP=88 and DWS=67 time units; the simulator
// reproduces the ordering and the relative gaps.
func Figure3(strategy coord.Kind) Result {
	edges, owner := figure3Layout()
	return SimulateCC(edges, Config{
		Workers:   3,
		Strategy:  strategy,
		Slack:     1,
		PerTuple:  1,
		CoordCost: 3,
		Owner:     owner,
	})
}

// figure3Layout builds the example graph and its fixed partitioning.
func figure3Layout() ([]datasets.Edge, func(int64) int) {
	var edges []datasets.Edge
	add := func(a, b int64) {
		edges = append(edges, datasets.Edge{Src: a, Dst: b}, datasets.Edge{Src: b, Dst: a})
	}
	// W1's cluster: 1-2-3.
	add(1, 2)
	add(2, 3)
	// W2's chain 4..9 and W3's chain 10..15, cross-linked so the
	// minimum label 1 must walk both chains.
	for v := int64(4); v < 9; v++ {
		add(v, v+1)
	}
	for v := int64(10); v < 15; v++ {
		add(v, v+1)
	}
	add(3, 4)
	add(9, 10)
	add(15, 1)
	owner := func(v int64) int {
		switch {
		case v <= 3:
			return 0
		case v <= 9:
			return 1
		default:
			return 2
		}
	}
	return edges, owner
}
