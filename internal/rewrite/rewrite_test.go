package rewrite

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/storage"
)

func arcSchemas() map[string]*storage.Schema {
	arc := storage.NewSchema("arc",
		storage.Column{Name: "x", Type: storage.TInt},
		storage.Column{Name: "y", Type: storage.TInt})
	return map[string]*storage.Schema{"arc": arc}
}

func analyze(t *testing.T, src string, params map[string]storage.Type) *pcg.Analysis {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a, err := pcg.Analyze(prog, arcSchemas(), params)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// reanalyze asserts the rewritten program is well-formed Datalog by
// pushing it back through the analyzer, as the compile pipeline does.
func reanalyze(t *testing.T, r *Result, params map[string]storage.Type) *pcg.Analysis {
	t.Helper()
	a, err := pcg.Analyze(r.Program, arcSchemas(), params)
	if err != nil {
		t.Fatalf("rewritten program failed analysis: %v\n%s", err, progText(r))
	}
	return a
}

func progText(r *Result) string {
	var b strings.Builder
	for _, rule := range r.Program.Rules {
		b.WriteString(rule.String())
		b.WriteString("\n")
	}
	return b.String()
}

var intParam = map[string]storage.Type{"src": storage.TInt}

const leftLinearBoundTC = `
	tc(X, Y) :- arc(X, Y).
	tc(X, Y) :- tc(X, Z), arc(Z, Y).
	reach(Y) :- tc($src, Y).
`

func TestApplyLeftLinearBoundTC(t *testing.T) {
	r := Apply(analyze(t, leftLinearBoundTC, intParam))
	if !r.Rewritten() {
		t.Fatalf("not rewritten; declined: %v", r.Declined)
	}
	if len(r.Magic) != 1 || r.Magic[0] != "tc__magic" {
		t.Fatalf("Magic = %v, want [tc__magic]", r.Magic)
	}
	if !r.Restricted["tc"] {
		t.Fatalf("Restricted = %v, want tc", r.Restricted)
	}
	text := progText(r)
	// The seed rule carries the demand constant, and every recursive
	// rule is guarded by the magic predicate.
	if !strings.Contains(text, "$src") || !strings.Contains(text, "tc__magic") {
		t.Fatalf("rewritten program lacks seed or guard:\n%s", text)
	}
	reanalyze(t, r, intParam)
}

func TestApplyRightLinearAndNonLinearTC(t *testing.T) {
	for name, src := range map[string]string{
		"right-linear": `
			tc(X, Y) :- arc(X, Y).
			tc(X, Y) :- arc(X, Z), tc(Z, Y).
			reach(Y) :- tc($src, Y).
		`,
		"non-linear": `
			tc(X, Y) :- arc(X, Y).
			tc(X, Y) :- tc(X, Z), tc(Z, Y).
			reach(Y) :- tc($src, Y).
		`,
	} {
		t.Run(name, func(t *testing.T) {
			r := Apply(analyze(t, src, intParam))
			if !r.Rewritten() {
				t.Fatalf("not rewritten; declined: %v", r.Declined)
			}
			reanalyze(t, r, intParam)
		})
	}
}

func TestApplyBoundSG(t *testing.T) {
	src := `
		sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.
		sg(X, Y) :- arc(A, X), sg(A, B), arc(B, Y).
		peer(Y) :- sg($src, Y).
	`
	r := Apply(analyze(t, src, intParam))
	if !r.Rewritten() {
		t.Fatalf("not rewritten; declined: %v", r.Declined)
	}
	if !r.Restricted["sg"] {
		t.Fatalf("Restricted = %v, want sg", r.Restricted)
	}
	reanalyze(t, r, intParam)
}

func TestApplyNegatedExternalSite(t *testing.T) {
	// The negated occurrence binds the same σ column as the positive
	// one, so the demanded group is fully derived and the anti-join
	// stays exact: the rewrite may proceed.
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
		missing(Y) :- arc(_, Y), !tc($src, Y).
	`
	r := Apply(analyze(t, src, intParam))
	if !r.Rewritten() {
		t.Fatalf("not rewritten; declined: %v", r.Declined)
	}
	reanalyze(t, r, intParam)
}

func TestApplyDeclines(t *testing.T) {
	cases := map[string]struct {
		src    string
		reason string // substring the declined message must carry
	}{
		"no external site": {
			src: `
				tc(X, Y) :- arc(X, Y).
				tc(X, Y) :- tc(X, Z), arc(Z, Y).
			`,
			reason: "no occurrence outside",
		},
		"unbound external site": {
			src: `
				tc(X, Y) :- arc(X, Y).
				tc(X, Y) :- tc(X, Z), arc(Z, Y).
				out(X, Y) :- tc(X, Y).
			`,
			reason: "",
		},
		"aggregated clique": {
			src: `
				sp(Y, min<C>) :- Y = $src, C = 0.
				sp(Y, min<C>) :- sp(X, C1), arc(X, Y), C = C1 + 1.
				out(C) :- sp($src, C).
			`,
			reason: "aggregate",
		},
		"second column bound, left-linear": {
			// Demand on tc's column 2 cannot propagate through a
			// left-to-right SIPS walk of tc(X, Z), arc(Z, Y): the
			// recursive occurrence binds neither column, so σ empties.
			src: `
				tc(X, Y) :- arc(X, Y).
				tc(X, Y) :- tc(X, Z), arc(Z, Y).
				sources(X) :- tc(X, $src).
			`,
			reason: "",
		},
		"reserved namespace": {
			src: `
				tc__magic(X) :- arc(X, _).
				tc(X, Y) :- tc__magic(X), arc(X, Y).
				out(Y) :- tc($src, Y).
			`,
			reason: "reserved",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			r := Apply(analyze(t, tc.src, intParam))
			if r.Rewritten() {
				t.Fatalf("rewritten, want decline:\n%s", progText(r))
			}
			if len(r.Declined) == 0 {
				t.Fatal("no declined reason recorded")
			}
			if tc.reason != "" && !strings.Contains(strings.Join(r.Declined, "; "), tc.reason) {
				t.Fatalf("declined = %v, want substring %q", r.Declined, tc.reason)
			}
		})
	}
}

func TestMagicNaming(t *testing.T) {
	if MagicName("tc") != "tc__magic" {
		t.Fatalf("MagicName = %q", MagicName("tc"))
	}
	if !IsMagic("tc__magic") || IsMagic("tc") {
		t.Fatal("IsMagic misclassifies")
	}
}
