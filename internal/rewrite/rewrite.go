// Package rewrite implements the demand-driven (magic-set) program
// transformation: when a recursive predicate is only consumed through
// occurrences that bind columns to constants or $params, the clique's
// rules are guarded by generated magic predicates that seed the
// recursion from the bound values, so the engine derives just the
// demanded subset instead of the full fixpoint. The rewritten program
// is ordinary Datalog — it re-analyzes through pcg and evaluates on
// the unmodified kernel, exchange and stealing planes, exactly like
// the ivm delta programs.
//
// The transform is applied per recursive clique and declined — never
// failing, just skipped — when it cannot be proven semantics-
// preserving for the demanded values:
//
//   - any clique predicate carries an aggregate (restricting the
//     contributor set would change min/max/sum/count results);
//   - the clique has no occurrence outside itself (nothing states a
//     demand, so guarding would empty an output relation);
//   - some external occurrence binds none of the columns every other
//     occurrence binds (σ, the adorned column set, becomes empty — the
//     demand cannot be seeded from constants);
//   - a clique predicate would end up with an empty magic program
//     (its extent would be silently emptied).
//
// Soundness notes. σ_p is the intersection of the constant-bound
// columns of every external occurrence of p with the bound columns of
// every occurrence of p inside the clique (under a left-to-right
// sideways-information-passing walk seeded from the head's σ
// variables), iterated to a fixpoint; every external occurrence
// therefore carries constants on all of σ_p, which also makes negated
// external occurrences sound: the demanded σ-group is fully derived,
// so the anti-join's membership answers are exact. Magic-rule bodies
// keep only the positive prefix (skipping a prefix negation
// over-approximates demand, which is sound). Within a rewritten
// clique the predicates' extents become the demanded subset — callers
// reading a restricted relation directly observe that subset, which
// dcdatalog documents and its differential tests pin.
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/pcg"
	"repro/internal/storage"
)

// Suffix is the reserved magic-predicate namespace: p's demand
// predicate is p+Suffix. Programs already using the namespace are
// never rewritten.
const Suffix = "__magic"

// MagicName returns the demand predicate's name for pred.
func MagicName(pred string) string { return pred + Suffix }

// IsMagic reports whether a relation name is a generated demand
// predicate (used by serving layers to hide them from default output).
func IsMagic(name string) bool { return strings.HasSuffix(name, Suffix) }

// Result describes one Apply outcome.
type Result struct {
	// Program is the rewritten program; nil when no clique was
	// rewritten (Declined says why).
	Program *ast.Program
	// Magic lists the generated demand predicates.
	Magic []string
	// Restricted marks the clique predicates whose extent is now the
	// demanded subset rather than the full fixpoint.
	Restricted map[string]bool
	// Declined collects one human-readable reason per clique (or
	// program-wide condition) the transform skipped.
	Declined []string
}

// Rewritten reports whether Apply produced a transformed program.
func (r *Result) Rewritten() bool { return r.Program != nil }

// Apply runs the demand transform over an analyzed program. It never
// errors: cliques that cannot be soundly rewritten are declined with a
// reason, and when none qualifies the result carries a nil Program.
func Apply(a *pcg.Analysis) *Result {
	res := &Result{Restricted: make(map[string]bool)}
	for name := range a.Schemas {
		if strings.Contains(name, Suffix) {
			res.Declined = append(res.Declined, fmt.Sprintf("program uses the reserved %s namespace (%s)", Suffix, name))
			return res
		}
	}

	var cliques []*cliqueRewrite
	for _, s := range a.Strata {
		if !s.Recursive {
			continue
		}
		c, reason := planClique(a, s)
		if reason != "" {
			res.Declined = append(res.Declined, reason)
			continue
		}
		cliques = append(cliques, c)
	}
	if len(cliques) == 0 {
		return res
	}

	// Assemble: guarded rules replace the cliques' originals in place,
	// magic seed and propagation rules append at the end. Input AST
	// nodes are shared, never mutated; replaced rules are fresh.
	guarded := make(map[*ast.Rule]*ast.Rule)
	for _, c := range cliques {
		for orig, g := range c.guarded {
			guarded[orig] = g
		}
		for p := range c.preds {
			res.Restricted[p] = true
		}
		res.Magic = append(res.Magic, c.magicNames...)
	}
	prog := &ast.Program{Decls: a.Program.Decls}
	for _, r := range a.Program.Rules {
		if g, ok := guarded[r]; ok {
			prog.Rules = append(prog.Rules, g)
		} else {
			prog.Rules = append(prog.Rules, r)
		}
	}
	for _, c := range cliques {
		prog.Rules = append(prog.Rules, c.magicRules...)
	}
	sort.Strings(res.Magic)
	res.Program = prog
	return res
}

// site is one occurrence of a clique predicate outside the clique:
// the demand statement the rewrite seeds from.
type site struct {
	atom    *ast.Atom
	negated bool
}

// cliqueRewrite is the planned transform of one recursive clique.
type cliqueRewrite struct {
	preds      map[string]bool
	sigma      map[string][]int // sorted adorned (bound) columns per pred
	guarded    map[*ast.Rule]*ast.Rule
	magicRules []*ast.Rule
	magicNames []string
}

// planClique adorns one recursive stratum and generates its transform,
// or returns a decline reason.
func planClique(a *pcg.Analysis, s *pcg.Stratum) (*cliqueRewrite, string) {
	cliqueName := fmt.Sprintf("clique {%s}", strings.Join(s.Preds, ", "))
	preds := make(map[string]bool, len(s.Preds))
	for _, p := range s.Preds {
		if a.Aggregates[p] != storage.AggNone {
			return nil, fmt.Sprintf("%s: %s is aggregated; restricting contributors would change its result", cliqueName, p)
		}
		preds[p] = true
	}

	// Demand sites: every occurrence of a clique predicate in a rule
	// whose head lies outside the clique.
	sites := make(map[string][]site)
	nSites := 0
	for _, r := range a.Program.Rules {
		if preds[r.Head.Pred] {
			continue
		}
		for _, l := range r.Body {
			switch x := l.(type) {
			case *ast.Atom:
				if preds[x.Pred] {
					sites[x.Pred] = append(sites[x.Pred], site{atom: x})
					nSites++
				}
			case *ast.Negation:
				if preds[x.Atom.Pred] {
					sites[x.Atom.Pred] = append(sites[x.Atom.Pred], site{atom: x.Atom, negated: true})
					nSites++
				}
			}
		}
	}
	if nSites == 0 {
		return nil, fmt.Sprintf("%s: no occurrence outside the clique states a demand", cliqueName)
	}

	// Adornment fixpoint: σ_p starts at every column, intersects the
	// constant-bound columns of each external site, then shrinks
	// against the bound columns of every in-clique occurrence under the
	// SIPS walk (whose bound sets themselves depend on σ) until stable.
	sigma := make(map[string]map[int]bool, len(preds))
	for p := range preds {
		cols := make(map[int]bool)
		for i := 0; i < a.Schemas[p].Arity(); i++ {
			cols[i] = true
		}
		for _, st := range sites[p] {
			cc := constCols(st.atom)
			for c := range cols {
				if !cc[c] {
					delete(cols, c)
				}
			}
		}
		if len(cols) == 0 {
			return nil, fmt.Sprintf("%s: external occurrences of %s bind no common column to a constant or $param", cliqueName, p)
		}
		sigma[p] = cols
	}
	for changed := true; changed; {
		changed = false
		for _, r := range s.Rules {
			walkRule(r, preds, sigma, func(occ *ast.Atom, bound map[string]bool, _ []ast.Literal) {
				occBound := boundCols(occ, bound)
				for c := range sigma[occ.Pred] {
					if !occBound[c] {
						delete(sigma[occ.Pred], c)
						changed = true
					}
				}
			})
		}
	}
	for p := range preds {
		if len(sigma[p]) == 0 {
			return nil, fmt.Sprintf("%s: adornment of %s is empty after demand propagation", cliqueName, p)
		}
	}
	sortedSigma := make(map[string][]int, len(sigma))
	for p, cols := range sigma {
		var cs []int
		for c := range cols {
			cs = append(cs, c)
		}
		sort.Ints(cs)
		sortedSigma[p] = cs
	}

	c := &cliqueRewrite{preds: preds, sigma: sortedSigma, guarded: make(map[*ast.Rule]*ast.Rule)}

	// Seed rules: one per distinct external-site binding, in the
	// proven condition form `p__magic(V0, ...) :- V0 = <const>, ...`
	// (the same shape SSSP's parameterized seed rule compiles through).
	seen := make(map[string]bool)
	ruleCount := make(map[string]int)
	addMagic := func(r *ast.Rule) {
		key := r.String()
		if seen[key] {
			return
		}
		seen[key] = true
		c.magicRules = append(c.magicRules, r)
		ruleCount[r.Head.Pred]++
	}
	var sitePreds []string
	for p := range sites {
		sitePreds = append(sitePreds, p)
	}
	sort.Strings(sitePreds)
	for _, p := range sitePreds {
		for _, st := range sites[p] {
			head := &ast.Atom{Pred: MagicName(p)}
			var body []ast.Literal
			for i, col := range sortedSigma[p] {
				v := &ast.Var{Name: fmt.Sprintf("MV%d", i)}
				head.Args = append(head.Args, v)
				body = append(body, &ast.Condition{Op: ast.Eq, L: v, R: st.atom.Args[col].(ast.Expr)})
			}
			addMagic(&ast.Rule{Head: head, Body: body})
		}
	}

	// Guarded rules and magic propagation rules, one pass per clique
	// rule: the guard probes the head's demand, and every in-clique
	// occurrence propagates demand through the positive prefix.
	for _, r := range s.Rules {
		guard := &ast.Atom{Pred: MagicName(r.Head.Pred)}
		for _, col := range sortedSigma[r.Head.Pred] {
			guard.Args = append(guard.Args, r.Head.Args[col])
		}
		body := make([]ast.Literal, 0, len(r.Body)+1)
		body = append(body, guard)
		body = append(body, r.Body...)
		c.guarded[r] = &ast.Rule{Pos: r.Pos, Head: r.Head, Body: body}

		walkRule(r, preds, sigma, func(occ *ast.Atom, bound map[string]bool, prefix []ast.Literal) {
			mhead := &ast.Atom{Pred: MagicName(occ.Pred)}
			for _, col := range sortedSigma[occ.Pred] {
				mhead.Args = append(mhead.Args, occ.Args[col])
			}
			// Skip the trivial self-loop m(X) :- m(X): an empty prefix
			// propagating a head's own demand unchanged.
			if len(prefix) == 0 && mhead.Pred == guard.Pred && termsEqual(mhead.Args, guard.Args) {
				return
			}
			mbody := make([]ast.Literal, 0, len(prefix)+1)
			mbody = append(mbody, guard)
			mbody = append(mbody, prefix...)
			addMagic(&ast.Rule{Head: mhead, Body: mbody})
		})
	}

	for p := range preds {
		if ruleCount[MagicName(p)] == 0 {
			return nil, fmt.Sprintf("%s: no demand reaches %s; guarding would empty it", cliqueName, p)
		}
	}
	for p := range preds {
		c.magicNames = append(c.magicNames, MagicName(p))
	}
	sort.Strings(c.magicNames)
	return c, ""
}

// walkRule simulates the left-to-right sideways-information-passing
// pass over one clique rule: variables start bound at the head's σ
// columns, conditions flush as they become evaluable (Eq-lets bind),
// and each positive atom binds its variables after it is consumed.
// visit is called at every in-clique occurrence with the bound-variable
// set and the positive prefix (consumed atoms, conditions and lets, in
// order) as of that occurrence. Negations never join the prefix:
// skipping them over-approximates demand, which is sound.
func walkRule(r *ast.Rule, preds map[string]bool, sigma map[string]map[int]bool, visit func(occ *ast.Atom, bound map[string]bool, prefix []ast.Literal)) {
	bound := make(map[string]bool)
	for col := range sigma[r.Head.Pred] {
		if v, ok := r.Head.Args[col].(*ast.Var); ok {
			bound[v.Name] = true
		}
	}
	var prefix []ast.Literal
	consumed := make([]bool, len(r.Body))

	flush := func() {
		for changed := true; changed; {
			changed = false
			for i, l := range r.Body {
				if consumed[i] {
					continue
				}
				cond, ok := l.(*ast.Condition)
				if !ok {
					continue
				}
				lb := exprBound(cond.L, bound)
				rb := exprBound(cond.R, bound)
				switch {
				case lb && rb:
					consumed[i], changed = true, true
					prefix = append(prefix, cond)
				case cond.Op == ast.Eq && !lb && rb:
					if v, isVar := cond.L.(*ast.Var); isVar {
						consumed[i], changed = true, true
						bound[v.Name] = true
						prefix = append(prefix, cond)
					}
				case cond.Op == ast.Eq && lb && !rb:
					if v, isVar := cond.R.(*ast.Var); isVar {
						consumed[i], changed = true, true
						bound[v.Name] = true
						prefix = append(prefix, cond)
					}
				}
			}
		}
	}

	flush()
	for i, l := range r.Body {
		if consumed[i] {
			continue
		}
		atom, ok := l.(*ast.Atom)
		if !ok {
			// Negation: skipped — it neither binds variables nor joins
			// the prefix. (In-clique negation cannot occur: pcg rejects
			// non-stratified programs.)
			consumed[i] = true
			continue
		}
		if preds[atom.Pred] {
			visit(atom, bound, prefix)
		}
		consumed[i] = true
		for _, t := range atom.Args {
			if v, isVar := t.(*ast.Var); isVar {
				bound[v.Name] = true
			}
		}
		prefix = append(prefix, atom)
		flush()
	}
}

// constCols returns the atom's columns holding a constant or $param.
func constCols(atom *ast.Atom) map[int]bool {
	out := make(map[int]bool)
	for i, t := range atom.Args {
		switch t.(type) {
		case *ast.Num, *ast.Str, *ast.Param:
			out[i] = true
		}
	}
	return out
}

// boundCols returns the atom's columns holding a constant, $param, or
// a bound variable.
func boundCols(atom *ast.Atom, bound map[string]bool) map[int]bool {
	out := constCols(atom)
	for i, t := range atom.Args {
		if v, ok := t.(*ast.Var); ok && bound[v.Name] {
			out[i] = true
		}
	}
	return out
}

func exprBound(e ast.Expr, bound map[string]bool) bool {
	for _, v := range ast.Vars(e, nil) {
		if !bound[v] {
			return false
		}
	}
	return true
}

func termsEqual(a, b []ast.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			return false
		}
	}
	return true
}
