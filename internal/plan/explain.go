package plan

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Explain renders the logical plan as indented text, mirroring the
// paper's Figure 4/5 structure: per stratum, the predicate storage and
// routing decisions followed by the operator pipeline of every rule
// with its Distribute/Gather boundary.
func (p *Plan) Explain() string {
	var b strings.Builder
	for i, sp := range p.Strata {
		kind := "non-recursive"
		switch {
		case sp.Stratum.NonLinear:
			kind = "non-linear recursive"
		case sp.Stratum.Mutual:
			kind = "mutual recursive"
		case sp.Stratum.Recursive:
			kind = "recursive"
		}
		est := ""
		if sp.EstBaseDerived >= 0 {
			est = fmt.Sprintf(" est~%d base derivations", sp.EstBaseDerived)
		}
		fmt.Fprintf(&b, "stratum %d (%s): %s%s\n", i, kind, strings.Join(sp.Stratum.Preds, ", "), est)
		for _, name := range sp.Stratum.Preds {
			pp := sp.Preds[name]
			mode := "partitioned"
			if pp.Broadcast {
				mode = "broadcast"
			}
			fmt.Fprintf(&b, "  store %s agg=%s group=%d %s paths=%v\n", pp.Name, pp.Agg, pp.GroupLen, mode, pp.Paths)
		}
		for _, rp := range sp.BaseRules {
			b.WriteString(rp.explain("  base", 2))
		}
		for _, rp := range sp.RecRules {
			b.WriteString(rp.explain("  delta", 2))
		}
	}
	return b.String()
}

func (rp *RulePlan) explain(tag string, indent int) string {
	var b strings.Builder
	pad := strings.Repeat(" ", indent)
	if rp.Variant >= 0 {
		fmt.Fprintf(&b, "%s%s rule (variant %d, outer path %v): %s\n", pad, tag, rp.Variant, rp.OuterPath, rp.Rule)
	} else {
		fmt.Fprintf(&b, "%s%s rule: %s\n", pad, tag, rp.Rule)
	}
	pad2 := pad + "  "
	for i, e := range rp.Elems {
		// est renders the cost model's cardinality estimate when stats
		// were attached: scan rows for the outer, matches per probe for
		// an inner join.
		est := ""
		if e.EstFanout >= 0 {
			est = fmt.Sprintf(" est~%s", formatEst(e.EstFanout))
		}
		switch e.Kind {
		case ElemAtom:
			switch {
			case i == 0 && rp.OuterDelta:
				fmt.Fprintf(&b, "%sscan δ%s\n", pad2, e.Atom.Pred)
			case i == 0:
				fmt.Fprintf(&b, "%sscan %s%s\n", pad2, e.Atom.Pred, est)
			default:
				src := e.Atom.Pred
				if e.Recursive {
					if rp.InnerFull[i] {
						src += " (R∪δ)"
					} else {
						src += " (R)"
					}
				}
				fmt.Fprintf(&b, "%s%s %s on cols %v%s\n", pad2, e.Method, src, e.BoundCols, est)
			}
		case ElemNeg:
			fmt.Fprintf(&b, "%santi-join %s on cols %v\n", pad2, e.Atom.Pred, e.BoundCols)
		case ElemCond:
			fmt.Fprintf(&b, "%sselect %s\n", pad2, e.Cond)
		case ElemLet:
			fmt.Fprintf(&b, "%slet %s = %s\n", pad2, e.LetVar, e.LetExpr)
		}
	}
	fmt.Fprintf(&b, "%sproject → %s; distribute+gather\n", pad2, rp.Rule.Head)
	return b.String()
}

// formatEst renders a cardinality estimate compactly: whole numbers
// bare, fractional fan-outs with enough digits to compare.
func formatEst(f float64) string {
	if f == math.Trunc(f) && f < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', 3, 64)
}
