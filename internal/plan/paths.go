package plan

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/storage"
)

// derivePaths computes the replica partitionings of every predicate in
// the stratum (paper §4.3). An inner recursive lookup is local exactly
// when the worker that owns the driving delta tuple — chosen by hashing
// the outer atom's path columns — also owns the inner replica tuples
// with the same key, which requires the outer path values and the inner
// lookup values to be the same variable sequence. When that alignment
// is impossible the whole stratum falls back to broadcast replication.
func derivePaths(sp *StratumPlan, forceBroadcast bool) error {
	type constraint struct {
		outerPred string
		outerPath []int
		innerPred string
		innerPath []int
	}
	type flexible struct {
		rp      *RulePlan
		pred    string
		natural []int
	}

	var (
		constraints []constraint
		flexibles   []flexible
	)
	broadcast := forceBroadcast && sp.Stratum.Recursive
	constrainedOf := make(map[*RulePlan][]int)

	for _, rp := range sp.RecRules {
		outer := rp.Elems[0].Atom
		var inners []*Elem
		for _, e := range rp.Elems[1:] {
			if e.Kind == ElemAtom && e.Recursive {
				inners = append(inners, e)
			}
		}
		switch len(inners) {
		case 0:
			flexibles = append(flexibles, flexible{rp, outer.Pred, naturalKey(rp, sp)})
		case 1:
			inner := inners[0]
			outerPath, ok := alignPaths(outer, inner)
			if !ok {
				broadcast = true
				continue
			}
			constraints = append(constraints, constraint{
				outerPred: outer.Pred,
				outerPath: outerPath,
				innerPred: inner.Atom.Pred,
				innerPath: inner.BoundCols,
			})
			constrainedOf[rp] = outerPath
		default:
			// Three or more recursive occurrences cannot share one
			// aligned partitioning (paper handles the two-way case).
			broadcast = true
		}
	}

	addPath := func(pred string, cols []int) {
		pp := sp.Preds[pred]
		for _, p := range pp.Paths {
			if equalInts(p, cols) {
				return
			}
		}
		pp.Paths = append(pp.Paths, cols)
	}

	if !broadcast {
		for _, c := range constraints {
			addPath(c.outerPred, c.outerPath)
			addPath(c.innerPred, c.innerPath)
		}
		// Aggregate replicas must keep each group on one worker.
		for _, pp := range sp.Preds {
			for _, path := range pp.Paths {
				if pp.Agg != storage.AggNone && !subsetOf(path, pp.GroupLen) {
					broadcast = true
				}
				if len(path) == 0 {
					broadcast = true
				}
			}
		}
	}

	if broadcast {
		for _, pp := range sp.Preds {
			pp.Broadcast = true
			pp.Paths = [][]int{defaultPath(pp)}
		}
		for _, rp := range sp.RecRules {
			rp.OuterPath = sp.Preds[rp.Elems[0].Atom.Pred].Paths[0]
		}
		return nil
	}

	for _, f := range flexibles {
		pp := sp.Preds[f.pred]
		if len(pp.Paths) == 0 {
			addPath(f.pred, f.natural)
		}
	}
	for _, pp := range sp.Preds {
		if len(pp.Paths) == 0 {
			pp.Paths = [][]int{defaultPath(pp)}
		}
	}
	for _, rp := range sp.RecRules {
		if path, ok := constrainedOf[rp]; ok {
			rp.OuterPath = path
			continue
		}
		rp.OuterPath = sp.Preds[rp.Elems[0].Atom.Pred].Paths[0]
	}
	// Sanity: every variant's outer path must be a replica of its
	// predicate, or its deltas would never be observed.
	for _, rp := range sp.RecRules {
		pp := sp.Preds[rp.Elems[0].Atom.Pred]
		found := false
		for _, p := range pp.Paths {
			if equalInts(p, rp.OuterPath) {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("internal: variant of %s drives path %v not registered on %s (paths %v)",
				rp.Rule.Head.Pred, rp.OuterPath, pp.Name, pp.Paths)
		}
	}
	return nil
}

// alignPaths maps the inner atom's bound lookup columns back to the
// positions of the same variables in the outer atom, preserving order
// so both sides hash identically. It fails when a lookup column is a
// constant or its variable does not occur in the outer atom.
func alignPaths(outer *ast.Atom, inner *Elem) ([]int, bool) {
	if len(inner.BoundCols) == 0 {
		return nil, false
	}
	outerPosOf := func(name string) int {
		for i, t := range outer.Args {
			if v, ok := t.(*ast.Var); ok && v.Name == name {
				return i
			}
		}
		return -1
	}
	path := make([]int, 0, len(inner.BoundCols))
	for _, c := range inner.BoundCols {
		v, ok := inner.Atom.Args[c].(*ast.Var)
		if !ok {
			return nil, false
		}
		p := outerPosOf(v.Name)
		if p < 0 {
			return nil, false
		}
		path = append(path, p)
	}
	return path, true
}

// naturalKey picks the delta partition columns for an outer occurrence
// with no inner recursive partner: the outer columns whose variables
// join with other body atoms, restricted to the group key for
// aggregated predicates, defaulting to the full group/tuple.
func naturalKey(rp *RulePlan, sp *StratumPlan) []int {
	outer := rp.Elems[0].Atom
	pp := sp.Preds[outer.Pred]
	shared := make(map[string]bool)
	for _, e := range rp.Elems[1:] {
		if e.Kind != ElemAtom && e.Kind != ElemNeg {
			continue
		}
		for _, t := range e.Atom.Args {
			if v, ok := t.(*ast.Var); ok {
				shared[v.Name] = true
			}
		}
	}
	var cols []int
	for i, t := range outer.Args {
		v, ok := t.(*ast.Var)
		if !ok || !shared[v.Name] {
			continue
		}
		if pp.Agg != storage.AggNone && i >= pp.GroupLen {
			continue
		}
		cols = append(cols, i)
	}
	if len(cols) == 0 {
		return defaultPath(pp)
	}
	return cols
}

// defaultPath partitions by the full group key (aggregates) or the full
// tuple (sets).
func defaultPath(pp *PredPlan) []int {
	n := pp.GroupLen
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func subsetOf(cols []int, groupLen int) bool {
	for _, c := range cols {
		if c >= groupLen {
			return false
		}
	}
	return true
}
