// Package plan is the Logical Planner of the Query Processor (paper
// §5.1): it maps each rule of an analyzed program onto an ordered
// operator pipeline. The recursive relation is always moved to the
// outer (leftmost) position of the join as the paper prescribes, the
// remaining atoms are ordered greedily by how many of their columns are
// already bound, selections are pushed to the earliest point at which
// their variables are bound, and every join is labeled with the
// hash/index/nested-loop heuristic of §5.2.1. The planner also derives
// the partitioning scheme of every derived predicate: the access paths
// (replica partition columns) that make inner recursive lookups local
// to their worker (§4.3), falling back to broadcast replication when no
// aligned partitioning exists — the strategy the paper attributes to
// SociaLite/DDlog for APSP.
package plan

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/pcg"
	"repro/internal/storage"
)

// JoinMethod labels the physical join algorithm chosen by the §5.2.1
// heuristic.
type JoinMethod uint8

const (
	// NestedLoopJoin scans the entire inner relation per outer binding.
	NestedLoopJoin JoinMethod = iota
	// IndexJoin probes an index on the inner relation's bound columns.
	IndexJoin
	// HashJoin probes a hash table shared by base tables with equal
	// join keys.
	HashJoin
)

// String names the method for EXPLAIN output.
func (m JoinMethod) String() string {
	switch m {
	case IndexJoin:
		return "index-join"
	case HashJoin:
		return "hash-join"
	default:
		return "nested-loop-join"
	}
}

// ElemKind discriminates pipeline elements.
type ElemKind uint8

const (
	// ElemAtom is a positive relational atom (scan or join).
	ElemAtom ElemKind = iota
	// ElemNeg is a negated atom (anti-join probe).
	ElemNeg
	// ElemCond is a filtering comparison.
	ElemCond
	// ElemLet is an equality that binds a fresh variable.
	ElemLet
)

// Elem is one element of a rule's ordered pipeline.
type Elem struct {
	Kind ElemKind
	// Atom is set for ElemAtom/ElemNeg.
	Atom *ast.Atom
	// Recursive marks atoms of the rule's own stratum.
	Recursive bool
	// BoundCols are the atom's columns whose variables are bound when
	// the element executes: the join/probe key.
	BoundCols []int
	// Method is the §5.2.1 join label (ElemAtom beyond the outer).
	Method JoinMethod
	// Cond is set for ElemCond and ElemLet.
	Cond *ast.Condition
	// LetVar is the variable an ElemLet binds.
	LetVar string
	// LetExpr is the bound expression of an ElemLet.
	LetExpr ast.Expr
	// EstFanout is the cost model's cardinality estimate for this
	// element when statistics were attached (WithStats) and cover the
	// atom's relation: estimated scan rows for the outer, estimated
	// matching rows per probe for an inner join. -1 means no estimate
	// (no stats, or the relation — e.g. an IDB predicate — is not in
	// the base snapshot).
	EstFanout float64
}

// RulePlan is the ordered pipeline for one rule, or for one delta
// variant of a recursive rule (one variant per recursive body atom
// serving as the delta-driven outer).
type RulePlan struct {
	Rule *ast.Rule
	// Variant numbers the delta variants of a recursive rule; -1 for
	// non-recursive rules.
	Variant int
	// Elems is the pipeline; Elems[0] is the outer scan.
	Elems []*Elem
	// OuterDelta reports whether the outer scans the delta of a
	// recursive predicate rather than a full relation.
	OuterDelta bool
	// OuterPath is the access path (partition columns of the outer
	// predicate) whose deltas drive this variant.
	OuterPath []int
	// InnerFull marks inner recursive atoms that read R∪δ instead of R
	// (elements before the delta position in the semi-naive expansion).
	InnerFull map[int]bool
}

// PredPlan captures how one derived predicate is stored and routed.
type PredPlan struct {
	Name   string
	Schema *storage.Schema
	Agg    storage.AggKind
	// GroupLen is the number of leading group-key columns (= arity for
	// set-semantics predicates).
	GroupLen int
	// Paths are the replica partition column sets; Paths[0] is the
	// primary replica that owns the authoritative result.
	Paths [][]int
	// Broadcast replicates the full relation on every worker instead
	// of partitioning (fallback when no aligned partitioning exists).
	Broadcast bool
}

// StratumPlan is the executable plan of one stratum.
type StratumPlan struct {
	Stratum *pcg.Stratum
	// Preds plans every predicate defined in this stratum.
	Preds map[string]*PredPlan
	// BaseRules seed the stratum (no recursive body atoms).
	BaseRules []*RulePlan
	// RecRules are the delta variants of the recursive rules.
	RecRules []*RulePlan
	// EstBaseDerived is the cost model's estimate of how many tuples
	// the stratum's base rules derive (pre-dedup, so comparable to
	// StratumStats.TuplesDerived for non-recursive strata): the sum
	// over base rules of outer rows × the product of inner fan-outs.
	// -1 when no statistics were attached or any base rule's outer
	// relation is outside the base snapshot.
	EstBaseDerived int64
}

// Plan is the logical plan of a whole program.
type Plan struct {
	Analysis *pcg.Analysis
	Strata   []*StratumPlan
}

// StatsProvider supplies base-relation statistics to the cost-based
// join ordering: row count plus an estimated distinct-value count per
// column. ok is false for relations outside the provider's snapshot
// (IDB predicates, magic predicates), for which the planner falls back
// to a fixed prior. engine.PreparedBase satisfies this structurally;
// the indirection keeps plan free of an engine import (engine already
// imports physical, which imports plan).
type StatsProvider interface {
	RelStats(name string) (rows int, distinct []int, ok bool)
}

// BuildOption tweaks planning.
type BuildOption func(*buildConfig)

type buildConfig struct {
	forceBroadcast bool
	stats          StatsProvider
}

// WithStats attaches base-relation statistics: inner atoms are then
// ordered by estimated probe fan-out (rows over the product of the
// bound columns' distinct counts, clamped at rows) instead of the
// static greediest-bound-columns heuristic, and the plan carries
// cardinality estimates for EXPLAIN and the served est-vs-actual
// counters. The paper's recursive-atom-outermost invariant is kept
// either way. A nil provider is identical to omitting the option.
func WithStats(sp StatsProvider) BuildOption {
	return func(c *buildConfig) { c.stats = sp }
}

// WithForceBroadcast makes every recursive predicate use broadcast
// replication instead of aligned partitioning — the strategy the paper
// attributes to SociaLite/DDlog for APSP (§7.2), kept as a baseline.
func WithForceBroadcast() BuildOption {
	return func(c *buildConfig) { c.forceBroadcast = true }
}

// Build derives the logical plan from an analyzed program.
func Build(a *pcg.Analysis, opts ...BuildOption) (*Plan, error) {
	var cfg buildConfig
	for _, o := range opts {
		o(&cfg)
	}
	p := &Plan{Analysis: a}
	for _, s := range a.Strata {
		sp, err := buildStratum(a, s, &cfg)
		if err != nil {
			return nil, err
		}
		p.Strata = append(p.Strata, sp)
	}
	return p, nil
}

func buildStratum(a *pcg.Analysis, s *pcg.Stratum, cfg *buildConfig) (*StratumPlan, error) {
	sp := &StratumPlan{Stratum: s, Preds: make(map[string]*PredPlan)}
	inStratum := make(map[string]bool)
	for _, pr := range s.Preds {
		inStratum[pr] = true
		agg := a.Aggregates[pr]
		schema := a.Schemas[pr]
		groupLen := schema.Arity()
		if agg != storage.AggNone {
			groupLen--
		}
		sp.Preds[pr] = &PredPlan{Name: pr, Schema: schema, Agg: agg, GroupLen: groupLen}
	}

	for _, r := range s.Rules {
		info := a.RuleInfoFor(s, r)
		if len(info.RecursiveAtoms) == 0 || !s.Recursive {
			rp, err := orderRule(r, -1, inStratum, cfg.stats)
			if err != nil {
				return nil, err
			}
			sp.BaseRules = append(sp.BaseRules, rp)
			continue
		}
		for v := range info.RecursiveAtoms {
			rp, err := orderRule(r, v, inStratum, cfg.stats)
			if err != nil {
				return nil, err
			}
			sp.RecRules = append(sp.RecRules, rp)
		}
	}

	if err := derivePaths(sp, cfg.forceBroadcast); err != nil {
		return nil, err
	}
	sp.EstBaseDerived = estimateBaseDerived(sp, cfg.stats)
	return sp, nil
}

// estimateBaseDerived applies the independence-assumption product over
// every base rule: outer rows times each inner join's fan-out. The
// result is comparable to the engine's pre-dedup TuplesDerived counter.
// It returns -1 (unknown) without stats, or when any base rule's
// pipeline contains an atom the stats don't cover — a partial sum would
// read as an underestimate rather than an unknown.
func estimateBaseDerived(sp *StratumPlan, stats StatsProvider) int64 {
	if stats == nil {
		return -1
	}
	total := 0.0
	for _, rp := range sp.BaseRules {
		est := 1.0 // a fact/condition-only rule derives one binding
		for _, e := range rp.Elems {
			if e.Kind != ElemAtom {
				continue
			}
			if e.EstFanout < 0 {
				return -1
			}
			est *= e.EstFanout
		}
		total += est
	}
	const maxEst = float64(1 << 62)
	if total > maxEst {
		total = maxEst
	}
	return int64(total)
}

// orderRule builds the pipeline for rule r. For variant ≥ 0, the
// variant-th recursive body atom becomes the delta-driven outer; for
// variant -1 the first body atom in program order is the outer. With
// stats attached, inner atoms are ordered by estimated probe fan-out;
// without, by the static greediest-bound-columns heuristic.
func orderRule(r *ast.Rule, variant int, inStratum map[string]bool, stats StatsProvider) (*RulePlan, error) {
	rp := &RulePlan{Rule: r, Variant: variant, InnerFull: make(map[int]bool)}

	type pending struct {
		lit      ast.Literal
		recIdx   int // ordinal among recursive atoms, else -1
		bodyPos  int
		consumed bool
	}
	var items []*pending
	recOrd := 0
	for i, l := range r.Body {
		it := &pending{lit: l, recIdx: -1, bodyPos: i}
		if atom, ok := l.(*ast.Atom); ok && inStratum[atom.Pred] {
			it.recIdx = recOrd
			recOrd++
		}
		items = append(items, it)
	}

	bound := map[string]bool{}
	bindAtomVars := func(atom *ast.Atom) {
		for _, t := range atom.Args {
			if v, ok := t.(*ast.Var); ok {
				bound[v.Name] = true
			}
		}
	}
	boundColsOf := func(atom *ast.Atom) []int {
		var cols []int
		for i, t := range atom.Args {
			switch x := t.(type) {
			case *ast.Var:
				if bound[x.Name] {
					cols = append(cols, i)
				}
			case *ast.Num, *ast.Str, *ast.Param:
				cols = append(cols, i)
			}
		}
		return cols
	}

	// estFanout is the cost model: expected matching rows per probe of
	// atom on cols, assuming column independence — rows over the product
	// of the bound columns' distinct counts, clamped to [1/rows-exact,
	// rows]. -1 when the relation is outside the stats snapshot.
	estFanout := func(atom *ast.Atom, cols []int) float64 {
		if stats == nil {
			return -1
		}
		rows, distinct, ok := stats.RelStats(atom.Pred)
		if !ok {
			return -1
		}
		if rows == 0 {
			return 0
		}
		keys := 1.0
		for _, c := range cols {
			if c < len(distinct) && distinct[c] > 1 {
				keys *= float64(distinct[c])
			}
		}
		if keys > float64(rows) {
			keys = float64(rows)
		}
		return float64(rows) / keys
	}

	// Choose and emit the outer.
	var outer *pending
	if variant >= 0 {
		for _, it := range items {
			if it.recIdx == variant {
				outer = it
				break
			}
		}
		rp.OuterDelta = true
	} else {
		for _, it := range items {
			if _, ok := it.lit.(*ast.Atom); ok {
				outer = it
				break
			}
		}
	}
	if outer != nil {
		atom := outer.lit.(*ast.Atom)
		outer.consumed = true
		rp.Elems = append(rp.Elems, &Elem{
			Kind:      ElemAtom,
			Atom:      atom,
			Recursive: inStratum[atom.Pred],
			EstFanout: estFanout(atom, nil), // outer: estimated scan rows
		})
		bindAtomVars(atom)
	}

	// flushConds emits every evaluable condition, let and negation.
	flushConds := func() {
		for changed := true; changed; {
			changed = false
			for _, it := range items {
				if it.consumed {
					continue
				}
				switch x := it.lit.(type) {
				case *ast.Condition:
					lb := exprBound(x.L, bound)
					rb := exprBound(x.R, bound)
					switch {
					case lb && rb:
						it.consumed, changed = true, true
						rp.Elems = append(rp.Elems, &Elem{Kind: ElemCond, Cond: x, EstFanout: -1})
					case x.Op == ast.Eq && !lb && rb:
						if v, ok := x.L.(*ast.Var); ok {
							it.consumed, changed = true, true
							bound[v.Name] = true
							rp.Elems = append(rp.Elems, &Elem{Kind: ElemLet, Cond: x, LetVar: v.Name, LetExpr: x.R, EstFanout: -1})
						}
					case x.Op == ast.Eq && lb && !rb:
						if v, ok := x.R.(*ast.Var); ok {
							it.consumed, changed = true, true
							bound[v.Name] = true
							rp.Elems = append(rp.Elems, &Elem{Kind: ElemLet, Cond: x, LetVar: v.Name, LetExpr: x.L, EstFanout: -1})
						}
					}
				case *ast.Negation:
					all := true
					for _, t := range x.Atom.Args {
						if v, ok := t.(*ast.Var); ok && !bound[v.Name] {
							all = false
							break
						}
					}
					if all {
						it.consumed, changed = true, true
						rp.Elems = append(rp.Elems, &Elem{Kind: ElemNeg, Atom: x.Atom, BoundCols: boundColsOf(x.Atom), EstFanout: -1})
					}
				}
			}
		}
	}

	// priorFanout reproduces the static heuristic's preferences on the
	// cost scale for relations without stats (IDB predicates, or no
	// provider): a fixed row prior shrunk by a fixed selectivity per
	// bound column, so more bound columns still probe first.
	const (
		priorRows   = float64(1 << 20)
		priorColSel = 4.0
	)

	flushConds()
	for {
		// Pick the cheapest unconsumed atom: smallest estimated probe
		// fan-out when stats cover it, the bound-column prior otherwise.
		// Ties prefer base tables (their indexes are free), then program
		// order. Without stats every atom uses the prior, which orders
		// identically to the original greediest-bound-columns heuristic.
		var best *pending
		bestCost := 0.0
		bestBase := false
		for _, it := range items {
			if it.consumed {
				continue
			}
			atom, ok := it.lit.(*ast.Atom)
			if !ok {
				continue
			}
			cost := estFanout(atom, boundColsOf(atom))
			if cost < 0 {
				cost = priorRows
				for range boundColsOf(atom) {
					cost /= priorColSel
				}
			}
			isBase := !inStratum[atom.Pred]
			if best == nil || cost < bestCost || (cost == bestCost && isBase && !bestBase) {
				best, bestCost, bestBase = it, cost, isBase
			}
		}
		if best == nil {
			break
		}
		atom := best.lit.(*ast.Atom)
		best.consumed = true
		elem := &Elem{
			Kind:      ElemAtom,
			Atom:      atom,
			Recursive: inStratum[atom.Pred],
			BoundCols: boundColsOf(atom),
		}
		elem.EstFanout = estFanout(atom, elem.BoundCols)
		elem.Method = chooseMethod(r, atom, elem.BoundCols, inStratum)
		if elem.Recursive && variant >= 0 && best.recIdx < variant {
			// Semi-naive expansion: occurrences before the delta
			// position read R∪δ; later ones read R.
			rp.InnerFull[len(rp.Elems)] = true
		}
		rp.Elems = append(rp.Elems, elem)
		bindAtomVars(atom)
		flushConds()
	}

	for _, it := range items {
		if !it.consumed {
			return nil, fmt.Errorf("%s: cannot schedule %s (unbound variables)", r.Pos, it.lit)
		}
	}
	return rp, nil
}

// chooseMethod applies the paper's §5.2.1 heuristic: hash join when two
// or more base tables in the rule share identical join keys, index join
// when the probe has bound columns, nested loop otherwise.
func chooseMethod(r *ast.Rule, atom *ast.Atom, boundCols []int, inStratum map[string]bool) JoinMethod {
	if len(boundCols) == 0 {
		return NestedLoopJoin
	}
	if inStratum[atom.Pred] {
		return IndexJoin
	}
	// Look for another base atom sharing a variable at the same column
	// positions (the "same join keys" case).
	probe := map[string]bool{}
	for _, c := range boundCols {
		if v, ok := atom.Args[c].(*ast.Var); ok {
			probe[v.Name] = true
		}
	}
	for _, other := range r.Atoms() {
		if other == atom || inStratum[other.Pred] {
			continue
		}
		for _, t := range other.Args {
			if v, ok := t.(*ast.Var); ok && probe[v.Name] {
				return HashJoin
			}
		}
	}
	return IndexJoin
}

func exprBound(e ast.Expr, bound map[string]bool) bool {
	for _, v := range ast.Vars(e, nil) {
		if !bound[v] {
			return false
		}
	}
	return true
}
