package plan

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/storage"
)

// fakeStats is a hand-built catalog for pinning the cost-based join
// order without loading data.
type fakeStats map[string]struct {
	rows     int
	distinct []int
}

func (f fakeStats) RelStats(name string) (int, []int, bool) {
	e, ok := f[name]
	if !ok {
		return 0, nil, false
	}
	return e.rows, e.distinct, true
}

func buildPlanStats(t *testing.T, src string, schemas map[string]*storage.Schema, stats StatsProvider) *Plan {
	t.Helper()
	a, err := pcg.Analyze(parser.MustParse(src), schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(a, WithStats(stats))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlanStatsEstimates pins the estimate annotations: the outer scan
// carries its row count, probes carry their fan-out, and the stratum
// sums a base-derivation estimate — while the stats-free build records
// no estimates at all.
func TestPlanStatsEstimates(t *testing.T) {
	schemas := map[string]*storage.Schema{
		"big":   intSchema("big", "x", "z"),
		"small": intSchema("small", "z", "y"),
	}
	src := `out(X, Y) :- big(X, Z), small(Z, Y).`

	// Skewed catalog: big is a million rows whose join column has only
	// ten distinct values; small is a thousand rows, all-distinct.
	stats := fakeStats{
		"big":   {rows: 1_000_000, distinct: []int{10, 1_000_000}},
		"small": {rows: 1_000, distinct: []int{1_000, 1_000}},
	}

	p := buildPlanStats(t, src, schemas, stats)
	rp := p.Strata[0].BaseRules[0]
	// The outer stays program order (the planner only cost-orders the
	// inner atoms) and carries its estimated scan rows.
	if rp.Elems[0].Atom.Pred != "big" || rp.Elems[0].EstFanout != 1_000_000 {
		t.Fatalf("outer = %s fanout %g, want big scan est 1e6",
			rp.Elems[0].Atom.Pred, rp.Elems[0].EstFanout)
	}
	// small probes on Z = its column 0, all-distinct: fanout 1.
	join := rp.Elems[1]
	if join.Atom.Pred != "small" || join.EstFanout != 1 {
		t.Fatalf("join = %s fanout %g, want small fanout 1", join.Atom.Pred, join.EstFanout)
	}
	// The stratum's base-derivation estimate is the product chain.
	if got := p.Strata[0].EstBaseDerived; got != 1_000_000 {
		t.Fatalf("EstBaseDerived = %d, want 1e6", got)
	}

	// Without stats, no estimates are recorded anywhere.
	plain := buildPlan(t, src, schemas, nil)
	rp = plain.Strata[0].BaseRules[0]
	if rp.Elems[0].EstFanout >= 0 {
		t.Fatalf("stats-free EstFanout = %g, want unknown (<0)", rp.Elems[0].EstFanout)
	}
	if plain.Strata[0].EstBaseDerived >= 0 {
		t.Fatalf("stats-free EstBaseDerived = %d, want -1", plain.Strata[0].EstBaseDerived)
	}
}

// TestPlanCostBasedInnerOrder pins that among equally-bound inner
// atoms, the one with the smaller estimated probe fan-out joins first.
func TestPlanCostBasedInnerOrder(t *testing.T) {
	schemas := map[string]*storage.Schema{
		"probe": intSchema("probe", "x"),
		"wide":  intSchema("wide", "x", "a"),
		"tight": intSchema("tight", "x", "b"),
	}
	src := `out(X, A, B) :- probe(X), wide(X, A), tight(X, B).`

	stats := fakeStats{
		"probe": {rows: 100, distinct: []int{100}},
		// wide fans out 100k rows per probe key; tight is key-unique.
		"wide":  {rows: 1_000_000, distinct: []int{10, 1_000_000}},
		"tight": {rows: 1_000, distinct: []int{1_000, 1_000}},
	}

	p := buildPlanStats(t, src, schemas, stats)
	rp := p.Strata[0].BaseRules[0]
	order := []string{rp.Elems[0].Atom.Pred, rp.Elems[1].Atom.Pred, rp.Elems[2].Atom.Pred}
	want := []string{"probe", "tight", "wide"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("join order = %v, want %v", order, want)
		}
	}

	// Stats-free: the prior ties wide and tight, so program order wins.
	plain := buildPlan(t, src, schemas, nil)
	rp = plain.Strata[0].BaseRules[0]
	if rp.Elems[1].Atom.Pred != "wide" {
		t.Fatalf("stats-free second = %s, want wide (program order)", rp.Elems[1].Atom.Pred)
	}
}

// TestPlanStatsKeepRecursiveOuter pins that the cost model never
// demotes the recursive delta from the outer position, whatever the
// statistics say.
func TestPlanStatsKeepRecursiveOuter(t *testing.T) {
	stats := fakeStats{
		// arc is tiny, so a pure cost ranking would want it outermost.
		"arc": {rows: 4, distinct: []int{4, 4}},
	}
	p := buildPlanStats(t, `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- arc(Z, Y), tc(X, Z).
	`, graphSchemas(), stats)
	rp := p.Strata[0].RecRules[0]
	if !rp.OuterDelta || rp.Elems[0].Atom.Pred != "tc" {
		t.Fatalf("outer = %s, want δtc", rp.Elems[0].Atom.Pred)
	}
}
