package plan

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/storage"
)

func intSchema(name string, cols ...string) *storage.Schema {
	cs := make([]storage.Column, len(cols))
	for i, c := range cols {
		cs[i] = storage.Column{Name: c, Type: storage.TInt}
	}
	return storage.NewSchema(name, cs...)
}

func buildPlan(t *testing.T, src string, schemas map[string]*storage.Schema, params map[string]storage.Type) *Plan {
	t.Helper()
	a, err := pcg.Analyze(parser.MustParse(src), schemas, params)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func graphSchemas() map[string]*storage.Schema {
	return map[string]*storage.Schema{
		"arc":  intSchema("arc", "x", "y"),
		"warc": intSchema("warc", "x", "y", "w"),
	}
}

func TestPlanTCReordersRecursiveFirst(t *testing.T) {
	// The classic TC: the recursive atom must become the outer even
	// when written second.
	p2 := buildPlan(t, `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- arc(Z, Y), tc(X, Z).
	`, graphSchemas(), nil)
	sp := p2.Strata[0]
	if len(sp.BaseRules) != 1 || len(sp.RecRules) != 1 {
		t.Fatalf("rules: base=%d rec=%d", len(sp.BaseRules), len(sp.RecRules))
	}
	rp := sp.RecRules[0]
	if !rp.OuterDelta || rp.Elems[0].Atom.Pred != "tc" {
		t.Fatalf("outer = %s, want δtc", rp.Elems[0].Atom.Pred)
	}
	join := rp.Elems[1]
	if join.Atom.Pred != "arc" || len(join.BoundCols) != 1 || join.BoundCols[0] != 0 {
		t.Fatalf("join elem = %+v", join)
	}
	if join.Method == NestedLoopJoin {
		t.Fatal("bound join should not be nested loop")
	}
}

func TestPlanSelectionPushdown(t *testing.T) {
	p := buildPlan(t, `
		sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.
		sg(X, Y) :- arc(A, X), sg(A, B), arc(B, Y).
	`, graphSchemas(), nil)
	sp := p.Strata[0]
	base := sp.BaseRules[0]
	// X != Y must run immediately after the second arc scan binds Y,
	// i.e. before the end of the pipeline.
	lastKind := base.Elems[len(base.Elems)-1].Kind
	if lastKind != ElemCond {
		t.Fatalf("condition position: %v", lastKind)
	}
	rec := sp.RecRules[0]
	if rec.Elems[0].Atom.Pred != "sg" {
		t.Fatal("recursive atom must be outer")
	}
	// Both arc joins are index joins probing column 0.
	joins := 0
	for _, e := range rec.Elems[1:] {
		if e.Kind == ElemAtom {
			joins++
			if len(e.BoundCols) != 1 || e.BoundCols[0] != 0 {
				t.Fatalf("arc probe cols = %v", e.BoundCols)
			}
		}
	}
	if joins != 2 {
		t.Fatalf("joins = %d", joins)
	}
}

func TestPlanLetScheduling(t *testing.T) {
	p := buildPlan(t, `
		sp(To, min<C>) :- To = $start, C = 0.
		sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
	`, graphSchemas(), map[string]storage.Type{"start": storage.TInt})
	sp := p.Strata[0]
	rec := sp.RecRules[0]
	var sawJoin bool
	for _, e := range rec.Elems {
		if e.Kind == ElemAtom && e.Atom.Pred == "warc" {
			sawJoin = true
		}
		if e.Kind == ElemLet && e.LetVar == "C" && !sawJoin {
			t.Fatal("let C = C1+C2 scheduled before its inputs are bound")
		}
	}
	// The base rule is all lets: everything must be scheduled.
	base := sp.BaseRules[0]
	lets := 0
	for _, e := range base.Elems {
		if e.Kind == ElemLet {
			lets++
		}
	}
	if lets != 2 {
		t.Fatalf("base rule lets = %d, want 2", lets)
	}
}

func TestPlanPathsLinearAggregate(t *testing.T) {
	p := buildPlan(t, `
		cc2(Y, min<Y>) :- arc(Y, _).
		cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
	`, graphSchemas(), nil)
	pp := p.Strata[0].Preds["cc2"]
	if pp.Broadcast {
		t.Fatal("cc2 should not need broadcast")
	}
	if len(pp.Paths) != 1 || !equalInts(pp.Paths[0], []int{0}) {
		t.Fatalf("cc2 paths = %v, want [[0]]", pp.Paths)
	}
	if pp.Agg != storage.AggMin || pp.GroupLen != 1 {
		t.Fatalf("cc2 agg=%v group=%d", pp.Agg, pp.GroupLen)
	}
}

func TestPlanPathsAPSPTwoWay(t *testing.T) {
	p := buildPlan(t, `
		path(A, B, min<D>) :- warc(A, B, D).
		path(A, B, min<D>) :- path(A, C, D1), path(C, B, D2), D = D1 + D2.
	`, graphSchemas(), nil)
	pp := p.Strata[0].Preds["path"]
	if pp.Broadcast {
		t.Fatal("APSP aligns; broadcast not needed")
	}
	if len(pp.Paths) != 2 {
		t.Fatalf("path paths = %v, want two replicas", pp.Paths)
	}
	// The two replicas are partitioned by the C-position of each
	// occurrence: column 1 (outer variant 0) and column 0 (inner).
	has := func(cols []int) bool {
		for _, p := range pp.Paths {
			if equalInts(p, cols) {
				return true
			}
		}
		return false
	}
	if !has([]int{1}) || !has([]int{0}) {
		t.Fatalf("paths = %v, want [1] and [0]", pp.Paths)
	}
	sp := p.Strata[0]
	if len(sp.RecRules) != 2 {
		t.Fatalf("variants = %d, want 2", len(sp.RecRules))
	}
	for _, rp := range sp.RecRules {
		if len(rp.OuterPath) != 1 {
			t.Fatalf("outer path = %v", rp.OuterPath)
		}
	}
	// One variant must read R∪δ on its inner occurrence and the other
	// plain R, per the semi-naive expansion.
	full := 0
	for _, rp := range sp.RecRules {
		full += len(rp.InnerFull)
	}
	if full != 1 {
		t.Fatalf("InnerFull count = %d, want 1", full)
	}
}

func TestPlanMutualRecursionPaths(t *testing.T) {
	p := buildPlan(t, `
		attend(X) :- organizer(X).
		cnt(Y, count<X>) :- attend(X), friend(Y, X).
		attend(X) :- cnt(X, N), N >= 3.
	`, map[string]*storage.Schema{
		"organizer": intSchema("organizer", "x"),
		"friend":    intSchema("friend", "y", "x"),
	}, nil)
	var sp *StratumPlan
	for _, s := range p.Strata {
		if s.Stratum.Mutual {
			sp = s
		}
	}
	if sp == nil {
		t.Fatal("mutual stratum missing")
	}
	if sp.Preds["attend"].Broadcast || sp.Preds["cnt"].Broadcast {
		t.Fatal("mutual recursion here does not need broadcast")
	}
	if !equalInts(sp.Preds["cnt"].Paths[0], []int{0}) {
		t.Fatalf("cnt paths = %v", sp.Preds["cnt"].Paths)
	}
	if len(sp.BaseRules) != 1 || len(sp.RecRules) != 2 {
		t.Fatalf("base=%d rec=%d", len(sp.BaseRules), len(sp.RecRules))
	}
}

func TestPlanBroadcastFallback(t *testing.T) {
	// The inner lookup key (Z, bound by the base atom, not the outer
	// recursive atom) cannot be aligned with the outer partitioning,
	// so the stratum must fall back to broadcast.
	p := buildPlan(t, `
		q(X, Y) :- arc(X, Y).
		q(X, Y) :- q(X, W), arc(W, Z), q(Z, Y).
	`, graphSchemas(), nil)
	pp := p.Strata[0].Preds["q"]
	if !pp.Broadcast {
		t.Fatalf("expected broadcast fallback, paths = %v", pp.Paths)
	}
	if len(pp.Paths) != 1 {
		t.Fatalf("broadcast should use one primary path, got %v", pp.Paths)
	}
}

func TestPlanNegationScheduledWhenBound(t *testing.T) {
	p := buildPlan(t, `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
		unreach(X, Y) :- arc(X, _), arc(Y, _), !tc(X, Y).
	`, graphSchemas(), nil)
	last := p.Strata[len(p.Strata)-1]
	rp := last.BaseRules[0]
	neg := rp.Elems[len(rp.Elems)-1]
	if neg.Kind != ElemNeg || neg.Atom.Pred != "tc" {
		t.Fatalf("final elem = %+v", neg)
	}
	if len(neg.BoundCols) != 2 {
		t.Fatalf("neg bound cols = %v", neg.BoundCols)
	}
}

func TestPlanHashJoinHeuristic(t *testing.T) {
	// Two base atoms sharing the same join variable P: the paper's
	// heuristic labels the probe a hash join.
	p := buildPlan(t, `
		sib(X, Y) :- arc(P, X), arc(P, Y), X != Y.
	`, graphSchemas(), nil)
	rp := p.Strata[0].BaseRules[0]
	var method JoinMethod
	for i, e := range rp.Elems {
		if i > 0 && e.Kind == ElemAtom {
			method = e.Method
		}
	}
	if method != HashJoin {
		t.Fatalf("method = %v, want hash-join", method)
	}
}

func TestPlanExplainMentionsEverything(t *testing.T) {
	p := buildPlan(t, `
		cc2(Y, min<Y>) :- arc(Y, _).
		cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
		cc(Y, min<Z>) :- cc2(Y, Z).
	`, graphSchemas(), nil)
	out := p.Explain()
	for _, want := range []string{"stratum 0", "recursive", "δcc2", "distribute+gather", "store cc2 agg=min", "paths=[[0]]"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanUnschedulableRuleFails(t *testing.T) {
	// Safety passes (Y is bound by arc) but force a condition with an
	// unbindable variable through a crafted program: actually safety
	// catches everything, so instead check orderRule directly with an
	// artificial rule: p(X) :- arc(X, Y), X < Z. must fail analysis,
	// confirming the planner never sees unschedulable rules.
	_, err := pcg.Analyze(parser.MustParse(`p(X) :- arc(X, Y), X < Z.`), graphSchemas(), nil)
	if err == nil {
		t.Fatal("unsafe rule must be rejected before planning")
	}
}

func TestPlanFactRule(t *testing.T) {
	p := buildPlan(t, `
		seed(1, 2).
		tc(X, Y) :- seed(X, Y).
		tc(X, Y) :- tc(X, Z), seed(Z, Y).
	`, nil, nil)
	// seed's stratum: a fact rule with no body.
	var factPlan *RulePlan
	for _, sp := range p.Strata {
		for _, rp := range sp.BaseRules {
			if rp.Rule.IsFact() {
				factPlan = rp
			}
		}
	}
	if factPlan == nil {
		t.Fatal("fact rule not planned")
	}
	if len(factPlan.Elems) != 0 {
		t.Fatalf("fact pipeline = %v", factPlan.Elems)
	}
	if _, ok := factPlan.Rule.Head.Args[0].(*ast.Num); !ok {
		t.Fatal("fact head should be constants")
	}
}
