package naive

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/storage"
)

func intSchema(name string, cols ...string) *storage.Schema {
	cs := make([]storage.Column, len(cols))
	for i, c := range cols {
		cs[i] = storage.Column{Name: c, Type: storage.TInt}
	}
	return storage.NewSchema(name, cs...)
}

func eval(t *testing.T, src string, schemas map[string]*storage.Schema,
	edb map[string][]storage.Tuple, params map[string]storage.Value,
	paramTypes map[string]storage.Type, opts ...Option) map[string][]storage.Tuple {
	t.Helper()
	a, err := pcg.Analyze(parser.MustParse(src), schemas, paramTypes)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Eval(a, edb, nil, params, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func rows(ts []storage.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		s := ""
		for j, v := range t {
			if j > 0 {
				s += ","
			}
			s += fmt.Sprint(v.Int())
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func pairs(ps [][2]int64) []storage.Tuple {
	out := make([]storage.Tuple, len(ps))
	for i, p := range ps {
		out[i] = storage.Tuple{storage.IntVal(p[0]), storage.IntVal(p[1])}
	}
	return out
}

func TestNaiveTC(t *testing.T) {
	out := eval(t, `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`, map[string]*storage.Schema{"arc": intSchema("arc", "x", "y")},
		map[string][]storage.Tuple{"arc": pairs([][2]int64{{1, 2}, {2, 3}})}, nil, nil)
	got := rows(out["tc"])
	want := []string{"1,2", "1,3", "2,3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tc = %v", got)
	}
}

func TestNaiveMinAggregate(t *testing.T) {
	out := eval(t, `
		cc2(Y, min<Y>) :- arc(Y, _).
		cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
	`, map[string]*storage.Schema{"arc": intSchema("arc", "x", "y")},
		map[string][]storage.Tuple{"arc": pairs([][2]int64{{3, 5}, {5, 3}, {7, 9}, {9, 7}})}, nil, nil)
	got := rows(out["cc2"])
	want := []string{"3,3", "5,3", "7,7", "9,7"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cc2 = %v", got)
	}
}

func TestNaiveCountAndNegation(t *testing.T) {
	out := eval(t, `
		attend(X) :- organizer(X).
		cnt(Y, count<X>) :- attend(X), friend(Y, X).
		attend(X) :- cnt(X, N), N >= 2.
		skipped(Y) :- friend(Y, _), !attend(Y).
	`, map[string]*storage.Schema{
		"organizer": intSchema("organizer", "x"),
		"friend":    intSchema("friend", "y", "x"),
	}, map[string][]storage.Tuple{
		"organizer": {{storage.IntVal(1)}, {storage.IntVal(2)}},
		"friend":    pairs([][2]int64{{10, 1}, {10, 2}, {11, 1}}),
	}, nil, nil)
	if fmt.Sprint(rows(out["attend"])) != "[1 10 2]" {
		t.Fatalf("attend = %v", rows(out["attend"]))
	}
	if fmt.Sprint(rows(out["skipped"])) != "[11]" {
		t.Fatalf("skipped = %v", rows(out["skipped"]))
	}
}

func TestNaiveArithmeticAndParams(t *testing.T) {
	out := eval(t, `
		sp(To, min<C>) :- To = $start, C = 0.
		sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
	`, map[string]*storage.Schema{"warc": intSchema("warc", "x", "y", "w")},
		map[string][]storage.Tuple{"warc": {
			{storage.IntVal(0), storage.IntVal(1), storage.IntVal(4)},
			{storage.IntVal(1), storage.IntVal(2), storage.IntVal(3)},
			{storage.IntVal(0), storage.IntVal(2), storage.IntVal(9)},
		}},
		map[string]storage.Value{"start": storage.IntVal(0)},
		map[string]storage.Type{"start": storage.TInt})
	got := rows(out["sp"])
	want := []string{"0,0", "1,4", "2,7"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("sp = %v", got)
	}
}

func TestNaiveMaxIters(t *testing.T) {
	out := eval(t, `
		num(X) :- X = 0.
		num(Y) :- num(X), Y = X + 1, Y < 100000.
	`, nil, nil, nil, nil, WithMaxIters(5))
	if len(out["num"]) == 0 || len(out["num"]) >= 100000 {
		t.Fatalf("num = %d rows", len(out["num"]))
	}
}

func TestNaiveKeyedSum(t *testing.T) {
	out := eval(t, `
		total(G, sum<(C, V)>) :- obs(G, C, V).
	`, map[string]*storage.Schema{"obs": intSchema("obs", "g", "c", "v")},
		map[string][]storage.Tuple{"obs": {
			{storage.IntVal(1), storage.IntVal(10), storage.IntVal(5)},
			{storage.IntVal(1), storage.IntVal(11), storage.IntVal(7)},
			{storage.IntVal(1), storage.IntVal(10), storage.IntVal(5)}, // duplicate contributor
			{storage.IntVal(2), storage.IntVal(10), storage.IntVal(1)},
		}}, nil, nil)
	got := rows(out["total"])
	want := []string{"1,12", "2,1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("total = %v", got)
	}
}
