// Package naive is a deliberately simple, single-threaded, semi-naive
// Datalog evaluator that works directly on the AST. It exists as an
// independent oracle: it shares no planning or execution code with the
// parallel engine, so differential tests can check that the two agree
// on randomized programs and datasets. It supports the same language
// surface (recursion of all shapes, min/max/count/keyed-sum aggregates,
// stratified negation, arithmetic, parameters).
//
// Caveat shared with the declarative semantics of keyed sums: a
// sum<(C,V)> aggregate is only well-defined when each (group,
// contributor) pair maps to one value. If two rules derive different
// values for the same pair (e.g. PageRank on a graph with self-loops,
// where the seed rule and the propagation rule share contributor X),
// the naive evaluator oscillates between them and does not converge.
package naive

import (
	"fmt"
	"math"

	"repro/internal/ast"
	"repro/internal/pcg"
	"repro/internal/storage"
)

// Evaluator runs programs against in-memory relations.
type Evaluator struct {
	analysis *pcg.Analysis
	syms     *storage.SymbolTable
	params   map[string]storage.Value

	// rels maps every predicate to its current tuple set, keyed by the
	// tuple hash with buckets for collisions.
	rels map[string]*relation
	// epsilon for float sums.
	eps float64
	// maxIters bounds fixpoint rounds per stratum (0 = unbounded).
	maxIters int
}

// relation is a set of tuples with, for aggregated predicates, a
// group → aggregate map and contributor tracking.
type relation struct {
	schema *storage.Schema
	agg    storage.AggKind
	// set semantics
	set map[string]storage.Tuple
	// aggregate semantics: group key string → value, plus contributor
	// maps for count/sum.
	groups  map[string]storage.Tuple // group key → full row (group+val)
	contrib map[string]storage.Value // group||contributor → contribution
}

func key(t storage.Tuple) string {
	b := make([]byte, 0, len(t)*8)
	for _, v := range t {
		for i := 0; i < 8; i++ {
			b = append(b, byte(v>>(8*i)))
		}
	}
	return string(b)
}

func newRelation(schema *storage.Schema, agg storage.AggKind) *relation {
	r := &relation{schema: schema, agg: agg}
	if agg == storage.AggNone {
		r.set = make(map[string]storage.Tuple)
	} else {
		r.groups = make(map[string]storage.Tuple)
		if agg == storage.AggCount || agg == storage.AggSum {
			r.contrib = make(map[string]storage.Value)
		}
	}
	return r
}

// tuples returns the current contents.
func (r *relation) tuples() []storage.Tuple {
	if r.agg == storage.AggNone {
		out := make([]storage.Tuple, 0, len(r.set))
		for _, t := range r.set {
			out = append(out, t)
		}
		return out
	}
	out := make([]storage.Tuple, 0, len(r.groups))
	for _, t := range r.groups {
		out = append(out, t)
	}
	return out
}

// merge folds a derivation; contributor is meaningful for count/sum.
// It reports whether the relation changed.
func (r *relation) merge(t storage.Tuple, contributor storage.Value, eps float64) bool {
	switch r.agg {
	case storage.AggNone:
		k := key(t)
		if _, ok := r.set[k]; ok {
			return false
		}
		r.set[k] = t
		return true
	default:
		groupLen := r.schema.Arity() - 1
		valType := r.schema.ColType(groupLen)
		gk := key(t[:groupLen])
		cur, exists := r.groups[gk]
		switch r.agg {
		case storage.AggMin, storage.AggMax:
			if !exists {
				r.groups[gk] = t.Clone()
				return true
			}
			c := storage.Compare(t[groupLen], cur[groupLen], valType)
			if (r.agg == storage.AggMin && c < 0) || (r.agg == storage.AggMax && c > 0) {
				cur[groupLen] = t[groupLen]
				return true
			}
			return false
		case storage.AggCount:
			ck := gk + key(storage.Tuple{contributor})
			if _, seen := r.contrib[ck]; seen {
				return false
			}
			r.contrib[ck] = 1
			if !exists {
				row := t[:groupLen].Clone()
				row = append(row, storage.IntVal(1))
				r.groups[gk] = row
				return true
			}
			cur[groupLen] = storage.IntVal(cur[groupLen].Int() + 1)
			return true
		case storage.AggSum:
			ck := gk + key(storage.Tuple{contributor})
			prev, seen := r.contrib[ck]
			val := t[groupLen]
			if seen && prev == val {
				return false
			}
			r.contrib[ck] = val
			if !exists {
				row := t[:groupLen].Clone()
				row = append(row, val)
				r.groups[gk] = row
				return true
			}
			if valType == storage.TFloat {
				sum := cur[groupLen].Float() + val.Float()
				if seen {
					sum -= prev.Float()
				}
				old := cur[groupLen].Float()
				cur[groupLen] = storage.FloatVal(sum)
				return eps <= 0 || math.Abs(sum-old) > eps
			}
			sum := cur[groupLen].Int() + val.Int()
			if seen {
				sum -= prev.Int()
			}
			changed := sum != cur[groupLen].Int()
			cur[groupLen] = storage.IntVal(sum)
			return changed
		}
	}
	return false
}

// Option configures the evaluator.
type Option func(*Evaluator)

// WithEpsilon sets the float-sum convergence threshold.
func WithEpsilon(eps float64) Option { return func(e *Evaluator) { e.eps = eps } }

// WithMaxIters bounds fixpoint rounds per stratum.
func WithMaxIters(n int) Option { return func(e *Evaluator) { e.maxIters = n } }

// Eval analyzes and evaluates a program. edb supplies the extensional
// tuples; params the $parameter bindings (already encoded values with
// their types).
func Eval(analysis *pcg.Analysis, edb map[string][]storage.Tuple, syms *storage.SymbolTable,
	params map[string]storage.Value, opts ...Option) (map[string][]storage.Tuple, error) {

	e := &Evaluator{
		analysis: analysis,
		syms:     syms,
		params:   params,
		rels:     make(map[string]*relation),
		eps:      1e-9,
	}
	for _, o := range opts {
		o(e)
	}
	if e.syms == nil {
		e.syms = storage.NewSymbolTable()
	}
	for name := range analysis.EDB {
		rel := newRelation(analysis.Schemas[name], storage.AggNone)
		for _, t := range edb[name] {
			rel.merge(t, 0, 0)
		}
		e.rels[name] = rel
	}
	for _, s := range analysis.Strata {
		for _, p := range s.Preds {
			e.rels[p] = newRelation(e.analysis.Schemas[p], e.analysis.Aggregates[p])
		}
		if err := e.evalStratum(s); err != nil {
			return nil, err
		}
	}
	out := make(map[string][]storage.Tuple)
	for _, s := range analysis.Strata {
		for _, p := range s.Preds {
			out[p] = e.rels[p].tuples()
		}
	}
	return out, nil
}

// evalStratum runs all rules of a stratum to fixpoint (one pass when
// non-recursive). For simplicity the oracle re-derives everything each
// round (naive rather than semi-naive); merges are idempotent, so this
// only costs time.
func (e *Evaluator) evalStratum(s *pcg.Stratum) error {
	for round := 0; ; round++ {
		if e.maxIters > 0 && round >= e.maxIters {
			return nil
		}
		changed := false
		for _, r := range s.Rules {
			ch, err := e.evalRule(r)
			if err != nil {
				return err
			}
			changed = changed || ch
		}
		if !changed || !s.Recursive {
			return nil
		}
	}
}

// binding maps variable names to values with their types.
type binding struct {
	vals  map[string]storage.Value
	types map[string]storage.Type
}

// evalRule enumerates all satisfying bindings of the body and merges
// head derivations.
func (e *Evaluator) evalRule(r *ast.Rule) (bool, error) {
	b := &binding{vals: map[string]storage.Value{}, types: map[string]storage.Type{}}
	changed := false
	err := e.evalBody(r, r.Body, b, func() error {
		ch, err := e.emit(r, b)
		if err != nil {
			return err
		}
		changed = changed || ch
		return nil
	})
	return changed, err
}

// evalBody picks the first schedulable literal (atoms always are;
// conditions and negations once their variables are bound, equalities
// also when they can bind a fresh variable), processes it, and recurses
// on the rest. Safety analysis guarantees a schedulable literal exists.
func (e *Evaluator) evalBody(r *ast.Rule, rest []ast.Literal, b *binding, emit func() error) error {
	if len(rest) == 0 {
		return emit()
	}
	pick := -1
	for i, lit := range rest {
		switch x := lit.(type) {
		case *ast.Atom:
			pick = i
		case *ast.Negation:
			if _, defer_ := e.negSatisfied(x, b); !defer_ {
				pick = i
			}
		case *ast.Condition:
			if _, defer_, err := e.condSatisfied(x, b); err == nil && !defer_ {
				pick = i
			}
		}
		if pick >= 0 {
			break
		}
	}
	if pick < 0 {
		return fmt.Errorf("naive: cannot schedule %s (unbound variables)", rest[0])
	}
	lit := rest[pick]
	remaining := make([]ast.Literal, 0, len(rest)-1)
	remaining = append(remaining, rest[:pick]...)
	remaining = append(remaining, rest[pick+1:]...)

	switch x := lit.(type) {
	case *ast.Atom:
		rel := e.rels[x.Pred]
		if rel == nil {
			return fmt.Errorf("naive: unknown relation %s", x.Pred)
		}
		for _, t := range rel.tuples() {
			saved := e.bindAtom(x, t, b)
			if saved != nil {
				if err := e.evalBody(r, remaining, b, emit); err != nil {
					return err
				}
				e.unbind(saved, b)
			}
		}
		return nil
	case *ast.Negation:
		ok, _ := e.negSatisfied(x, b)
		if !ok {
			return nil
		}
		return e.evalBody(r, remaining, b, emit)
	case *ast.Condition:
		res, _, err := e.condSatisfied(x, b)
		if err != nil {
			return err
		}
		if !res.ok {
			return nil
		}
		if res.bindVar != "" {
			b.vals[res.bindVar] = res.bindVal
			b.types[res.bindVar] = res.bindType
			if err := e.evalBody(r, remaining, b, emit); err != nil {
				return err
			}
			delete(b.vals, res.bindVar)
			delete(b.types, res.bindVar)
			return nil
		}
		return e.evalBody(r, remaining, b, emit)
	}
	return fmt.Errorf("naive: unknown literal %T", lit)
}

// bindAtom matches a tuple against an atom's terms, extending the
// binding; it returns the newly bound names (to undo) or nil on
// mismatch.
func (e *Evaluator) bindAtom(a *ast.Atom, t storage.Tuple, b *binding) []string {
	schema := e.analysis.Schemas[a.Pred]
	var bound []string
	undo := func() []string {
		for _, n := range bound {
			delete(b.vals, n)
			delete(b.types, n)
		}
		return nil
	}
	for i, term := range a.Args {
		colType := schema.ColType(i)
		switch x := term.(type) {
		case *ast.Var:
			if v, ok := b.vals[x.Name]; ok {
				if !valuesEqual(v, b.types[x.Name], t[i], colType) {
					return undo()
				}
				continue
			}
			b.vals[x.Name] = t[i]
			b.types[x.Name] = colType
			bound = append(bound, x.Name)
		default:
			v, vt, err := e.termValue(term, b)
			if err != nil || !valuesEqual(v, vt, t[i], colType) {
				return undo()
			}
		}
	}
	if bound == nil {
		bound = []string{}
	}
	return bound
}

func (e *Evaluator) unbind(names []string, b *binding) {
	for _, n := range names {
		delete(b.vals, n)
		delete(b.types, n)
	}
}

// negSatisfied checks a negated atom; defer_ is true when some variable
// is still unbound.
func (e *Evaluator) negSatisfied(n *ast.Negation, b *binding) (ok, defer_ bool) {
	for _, term := range n.Atom.Args {
		if v, isVar := term.(*ast.Var); isVar {
			if _, bound := b.vals[v.Name]; !bound {
				return false, true
			}
		}
	}
	rel := e.rels[n.Atom.Pred]
	if rel == nil {
		return true, false
	}
	for _, t := range rel.tuples() {
		if e.bindCheck(n.Atom, t, b) {
			return false, false
		}
	}
	return true, false
}

// bindCheck tests whether the tuple matches under the current binding
// without extending it.
func (e *Evaluator) bindCheck(a *ast.Atom, t storage.Tuple, b *binding) bool {
	schema := e.analysis.Schemas[a.Pred]
	for i, term := range a.Args {
		v, vt, err := e.termValue(term, b)
		if err != nil {
			return false
		}
		if !valuesEqual(v, vt, t[i], schema.ColType(i)) {
			return false
		}
	}
	return true
}

type condResult struct {
	ok       bool
	bindVar  string
	bindVal  storage.Value
	bindType storage.Type
}

// condSatisfied evaluates a comparison; an equality with exactly one
// unbound variable side becomes a binding.
func (e *Evaluator) condSatisfied(c *ast.Condition, b *binding) (condResult, bool, error) {
	lOK := exprReady(c.L, b)
	rOK := exprReady(c.R, b)
	if c.Op == ast.Eq {
		if lv, isVar := c.L.(*ast.Var); isVar && !lOK && rOK {
			v, vt, err := e.exprValue(c.R, b)
			if err != nil {
				return condResult{}, false, err
			}
			return condResult{ok: true, bindVar: lv.Name, bindVal: v, bindType: vt}, false, nil
		}
		if rv, isVar := c.R.(*ast.Var); isVar && !rOK && lOK {
			v, vt, err := e.exprValue(c.L, b)
			if err != nil {
				return condResult{}, false, err
			}
			return condResult{ok: true, bindVar: rv.Name, bindVal: v, bindType: vt}, false, nil
		}
	}
	if !lOK || !rOK {
		return condResult{}, true, nil
	}
	lv, lt, err := e.exprValue(c.L, b)
	if err != nil {
		return condResult{}, false, err
	}
	rv, rt, err := e.exprValue(c.R, b)
	if err != nil {
		return condResult{}, false, err
	}
	return condResult{ok: comparesTrue(c.Op, lv, lt, rv, rt)}, false, nil
}

func exprReady(x ast.Expr, b *binding) bool {
	for _, v := range ast.Vars(x, nil) {
		if _, ok := b.vals[v]; !ok {
			return false
		}
	}
	return true
}

// emit builds the head derivation from a complete binding and merges.
func (e *Evaluator) emit(r *ast.Rule, b *binding) (bool, error) {
	head := r.Head
	rel := e.rels[head.Pred]
	schema := e.analysis.Schemas[head.Pred]
	row := make(storage.Tuple, 0, len(head.Args))
	var contributor storage.Value
	for i, term := range head.Args {
		if agg, ok := term.(*ast.Agg); ok {
			var val storage.Value
			if agg.Value != nil {
				v, vt, err := e.termValue(agg.Value, b)
				if err != nil {
					return false, err
				}
				val = convert(v, vt, schema.ColType(i))
			} else {
				val = storage.IntVal(1)
			}
			if agg.Contributor != nil {
				c, _, err := e.termValue(agg.Contributor, b)
				if err != nil {
					return false, err
				}
				contributor = c
			}
			row = append(row, val)
			continue
		}
		v, vt, err := e.termValue(term, b)
		if err != nil {
			return false, err
		}
		row = append(row, convert(v, vt, schema.ColType(i)))
	}
	return rel.merge(row, contributor, e.eps), nil
}

// termValue resolves a term to a typed value under the binding.
func (e *Evaluator) termValue(t ast.Term, b *binding) (storage.Value, storage.Type, error) {
	switch x := t.(type) {
	case *ast.Var:
		v, ok := b.vals[x.Name]
		if !ok {
			return 0, 0, fmt.Errorf("naive: unbound variable %s", x.Name)
		}
		return v, b.types[x.Name], nil
	case *ast.Num:
		if x.IsFloat {
			return storage.FloatVal(x.Float), storage.TFloat, nil
		}
		return storage.IntVal(x.Int), storage.TInt, nil
	case *ast.Str:
		return storage.SymVal(e.syms.Intern(x.Val)), storage.TSym, nil
	case *ast.Param:
		v, ok := e.params[x.Name]
		if !ok {
			return 0, 0, fmt.Errorf("naive: unbound parameter $%s", x.Name)
		}
		t, ok := e.analysis.ParamTypes[x.Name]
		if !ok {
			t = storage.TInt
		}
		return v, t, nil
	default:
		ex, ok := t.(ast.Expr)
		if !ok {
			return 0, 0, fmt.Errorf("naive: unexpected term %s", t)
		}
		return e.exprValue(ex, b)
	}
}

// exprValue evaluates arithmetic with int→float promotion.
func (e *Evaluator) exprValue(x ast.Expr, b *binding) (storage.Value, storage.Type, error) {
	switch v := x.(type) {
	case *ast.Bin:
		lv, lt, err := e.exprValue(v.L, b)
		if err != nil {
			return 0, 0, err
		}
		rv, rt, err := e.exprValue(v.R, b)
		if err != nil {
			return 0, 0, err
		}
		if lt == storage.TFloat || rt == storage.TFloat {
			a, c := lv.AsFloat(lt), rv.AsFloat(rt)
			var out float64
			switch v.Op {
			case ast.Add:
				out = a + c
			case ast.Sub:
				out = a - c
			case ast.Mul:
				out = a * c
			case ast.Div:
				out = a / c
			}
			return storage.FloatVal(out), storage.TFloat, nil
		}
		a, c := lv.Int(), rv.Int()
		var out int64
		switch v.Op {
		case ast.Add:
			out = a + c
		case ast.Sub:
			out = a - c
		case ast.Mul:
			out = a * c
		case ast.Div:
			if c != 0 {
				out = a / c
			}
		}
		return storage.IntVal(out), storage.TInt, nil
	default:
		return e.termValue(x.(ast.Term), b)
	}
}

func valuesEqual(a storage.Value, at storage.Type, b storage.Value, bt storage.Type) bool {
	if at == bt {
		return a == b
	}
	if at == storage.TSym || bt == storage.TSym {
		return false
	}
	return a.AsFloat(at) == b.AsFloat(bt)
}

func comparesTrue(op ast.CmpOp, l storage.Value, lt storage.Type, r storage.Value, rt storage.Type) bool {
	var c int
	if lt == storage.TFloat || rt == storage.TFloat {
		a, b := l.AsFloat(lt), r.AsFloat(rt)
		switch {
		case a < b:
			c = -1
		case a > b:
			c = 1
		}
	} else {
		c = storage.Compare(l, r, lt)
	}
	switch op {
	case ast.Eq:
		return c == 0
	case ast.Ne:
		return c != 0
	case ast.Lt:
		return c < 0
	case ast.Le:
		return c <= 0
	case ast.Gt:
		return c > 0
	case ast.Ge:
		return c >= 0
	}
	return false
}

func convert(v storage.Value, from, to storage.Type) storage.Value {
	if from == to {
		return v
	}
	return storage.FromFloat(v.AsFloat(from), to)
}
