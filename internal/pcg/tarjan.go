package pcg

// tarjan computes strongly connected components of a directed graph
// given as adjacency lists over [0,n). Components are returned in
// reverse topological order (callees before callers), which is exactly
// the bottom-up evaluation order the engine wants for strata.
func tarjan(n int, adj [][]int) [][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		counter int
		sccs    [][]int
	)

	// Iterative Tarjan: each frame tracks the vertex and the position
	// in its adjacency list, so deep recursion on long rule chains
	// cannot overflow the goroutine stack.
	type frame struct {
		v, i int
	}
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(adj[f.v]) {
				w := adj[f.v][f.i]
				f.i++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}
