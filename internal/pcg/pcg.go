// Package pcg performs the semantic analysis stage of the Query
// Processor (paper §3, §5): it builds the predicate connection graph of
// a parsed program, identifies recursive cliques with Tarjan's SCC
// algorithm, orders them into bottom-up strata, classifies recursion as
// linear / non-linear / mutual, checks rule safety and the "no negation
// inside recursion" restriction, infers IDB schemas, and exposes the
// AND/OR tree view used by EXPLAIN output.
package pcg

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/storage"
)

// Stratum is one evaluation unit: a maximal set of mutually recursive
// predicates (or a single non-recursive predicate) plus the rules that
// define them.
type Stratum struct {
	// Preds lists the predicates defined in this stratum, sorted.
	Preds []string
	// Recursive reports whether any rule in the stratum depends on a
	// predicate of the same stratum.
	Recursive bool
	// Mutual reports whether the stratum contains two or more
	// predicates (mutual recursion, paper §4.3 Query 4).
	Mutual bool
	// NonLinear reports whether some rule has two or more recursive
	// body atoms (paper §4.3 Query 3).
	NonLinear bool
	// Rules are the defining rules, in program order.
	Rules []*ast.Rule
}

// RuleInfo is the per-rule metadata the planner consumes.
type RuleInfo struct {
	Rule *ast.Rule
	// RecursiveAtoms indexes the body atoms whose predicate belongs to
	// the rule's own stratum.
	RecursiveAtoms []int
	// Agg is the head aggregate, if any (always the last argument).
	Agg *ast.Agg
}

// Analysis is the result of analyzing a program against a set of known
// EDB schemas.
type Analysis struct {
	Program *ast.Program
	// Schemas maps every predicate (EDB and IDB) to its typed schema.
	Schemas map[string]*storage.Schema
	// EDB marks the extensional predicates (never defined by a rule).
	EDB map[string]bool
	// Aggregates maps aggregated IDB predicates to their kind.
	Aggregates map[string]storage.AggKind
	// Strata lists evaluation units bottom-up.
	Strata []*Stratum
	// ParamTypes records the type of every $parameter referenced.
	ParamTypes map[string]storage.Type
	// strataOf maps a predicate to its stratum index.
	strataOf map[string]int
}

// StratumOf returns the index of the stratum defining pred, or -1 for
// EDB predicates.
func (a *Analysis) StratumOf(pred string) int {
	if i, ok := a.strataOf[pred]; ok {
		return i
	}
	return -1
}

// RuleInfoFor computes planner metadata for a rule belonging to the
// given stratum.
func (a *Analysis) RuleInfoFor(s *Stratum, r *ast.Rule) RuleInfo {
	info := RuleInfo{Rule: r}
	inStratum := make(map[string]bool, len(s.Preds))
	for _, p := range s.Preds {
		inStratum[p] = true
	}
	for i, l := range r.Body {
		if atom, ok := l.(*ast.Atom); ok && inStratum[atom.Pred] {
			info.RecursiveAtoms = append(info.RecursiveAtoms, i)
		}
	}
	info.Agg, _ = r.Head.HeadAgg()
	return info
}

// Analyze validates prog and computes its evaluation structure. Known
// EDB schemas come from relations already registered with the database;
// declarations inside the program add to them. paramTypes gives the
// type of each $parameter supplied for this query.
func Analyze(prog *ast.Program, edbSchemas map[string]*storage.Schema, paramTypes map[string]storage.Type) (*Analysis, error) {
	a := &Analysis{
		Program:    prog,
		Schemas:    make(map[string]*storage.Schema),
		EDB:        make(map[string]bool),
		Aggregates: make(map[string]storage.AggKind),
		ParamTypes: make(map[string]storage.Type),
		strataOf:   make(map[string]int),
	}
	for name, s := range edbSchemas {
		a.Schemas[name] = s
	}
	for name, t := range paramTypes {
		a.ParamTypes[name] = t
	}
	for _, d := range prog.Decls {
		sch, err := declSchema(d)
		if err != nil {
			return nil, err
		}
		a.Schemas[d.Name] = sch
	}

	idb := make(map[string]bool)
	for _, r := range prog.Rules {
		idb[r.Head.Pred] = true
	}
	// Every referenced predicate not defined by a rule is extensional.
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			var atom *ast.Atom
			switch x := l.(type) {
			case *ast.Atom:
				atom = x
			case *ast.Negation:
				atom = x.Atom
			default:
				continue
			}
			if !idb[atom.Pred] {
				a.EDB[atom.Pred] = true
				if _, known := a.Schemas[atom.Pred]; !known {
					return nil, fmt.Errorf("%s: relation %q is not declared and not loaded", atom.Pos, atom.Pred)
				}
			}
		}
	}

	if err := a.checkArities(); err != nil {
		return nil, err
	}
	if err := a.checkAggregates(); err != nil {
		return nil, err
	}
	if err := a.checkSafety(); err != nil {
		return nil, err
	}
	if err := a.buildStrata(idb); err != nil {
		return nil, err
	}
	if err := a.inferSchemas(); err != nil {
		return nil, err
	}
	return a, nil
}

func declSchema(d *ast.Decl) (*storage.Schema, error) {
	cols := make([]storage.Column, len(d.Cols))
	for i, c := range d.Cols {
		t, err := storage.ParseType(c.Type)
		if err != nil {
			return nil, fmt.Errorf("%s: column %s of %s: %v", d.Pos, c.Name, d.Name, err)
		}
		cols[i] = storage.Column{Name: c.Name, Type: t}
	}
	return storage.NewSchema(d.Name, cols...), nil
}

// checkArities verifies that every predicate is used with one arity
// throughout the program and matches its declaration when present.
func (a *Analysis) checkArities() error {
	arity := make(map[string]int)
	for name, s := range a.Schemas {
		arity[name] = s.Arity()
	}
	check := func(atom *ast.Atom) error {
		if n, ok := arity[atom.Pred]; ok {
			if n != len(atom.Args) {
				return fmt.Errorf("%s: %s used with arity %d, elsewhere %d", atom.Pos, atom.Pred, len(atom.Args), n)
			}
		} else {
			arity[atom.Pred] = len(atom.Args)
		}
		return nil
	}
	for _, r := range a.Program.Rules {
		if err := check(r.Head); err != nil {
			return err
		}
		for _, l := range r.Body {
			switch x := l.(type) {
			case *ast.Atom:
				if err := check(x); err != nil {
					return err
				}
			case *ast.Negation:
				if err := check(x.Atom); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkAggregates enforces the shape the engine supports: an aggregate
// must be the final head argument, and every rule of an aggregated
// predicate must use the same aggregate kind.
func (a *Analysis) checkAggregates() error {
	for _, r := range a.Program.Rules {
		agg, pos := r.Head.HeadAgg()
		if agg == nil {
			continue
		}
		if pos != len(r.Head.Args)-1 {
			return fmt.Errorf("%s: aggregate %s must be the last argument of %s", r.Pos, agg, r.Head.Pred)
		}
		for i, t := range r.Head.Args {
			if _, ok := t.(*ast.Agg); ok && i != pos {
				return fmt.Errorf("%s: %s has more than one aggregate", r.Pos, r.Head.Pred)
			}
		}
		var kind storage.AggKind
		switch agg.Kind {
		case "min":
			kind = storage.AggMin
		case "max":
			kind = storage.AggMax
		case "count":
			kind = storage.AggCount
		case "sum":
			kind = storage.AggSum
		}
		if prev, ok := a.Aggregates[r.Head.Pred]; ok && prev != kind {
			return fmt.Errorf("%s: %s mixes %s and %s aggregates", r.Pos, r.Head.Pred, prev, kind)
		}
		a.Aggregates[r.Head.Pred] = kind
	}
	// Mixed aggregated / plain heads for one predicate are rejected.
	for _, r := range a.Program.Rules {
		if kind, ok := a.Aggregates[r.Head.Pred]; ok {
			if agg, _ := r.Head.HeadAgg(); agg == nil {
				return fmt.Errorf("%s: %s is aggregated (%s) but this rule's head has no aggregate", r.Pos, r.Head.Pred, kind)
			}
		}
	}
	return nil
}

// checkSafety verifies that every variable needed by a rule head,
// negation or comparison is bound by a positive body atom or derivable
// through a chain of equality bindings.
func (a *Analysis) checkSafety() error {
	for _, r := range a.Program.Rules {
		bound := make(map[string]bool)
		for _, l := range r.Body {
			if atom, ok := l.(*ast.Atom); ok {
				for _, t := range atom.Args {
					if v, ok := t.(*ast.Var); ok {
						bound[v.Name] = true
					}
				}
			}
		}
		// Equality conditions bind their variable side once the other
		// side is fully bound; iterate to fixpoint.
		for changed := true; changed; {
			changed = false
			for _, l := range r.Body {
				c, ok := l.(*ast.Condition)
				if !ok || c.Op != ast.Eq {
					continue
				}
				if v, ok := c.L.(*ast.Var); ok && !bound[v.Name] && exprBound(c.R, bound) {
					bound[v.Name] = true
					changed = true
				}
				if v, ok := c.R.(*ast.Var); ok && !bound[v.Name] && exprBound(c.L, bound) {
					bound[v.Name] = true
					changed = true
				}
			}
		}
		need := func(names []string, what string) error {
			for _, n := range names {
				if !bound[n] {
					return fmt.Errorf("%s: variable %s in %s of rule for %s is not bound by the body", r.Pos, n, what, r.Head.Pred)
				}
			}
			return nil
		}
		var headVars []string
		for _, t := range r.Head.Args {
			switch x := t.(type) {
			case *ast.Var:
				headVars = append(headVars, x.Name)
			case *ast.Agg:
				if v, ok := x.Value.(*ast.Var); ok {
					headVars = append(headVars, v.Name)
				}
				if v, ok := x.Contributor.(*ast.Var); ok {
					headVars = append(headVars, v.Name)
				}
			}
		}
		if err := need(headVars, "the head"); err != nil {
			return err
		}
		for _, l := range r.Body {
			switch x := l.(type) {
			case *ast.Negation:
				var vs []string
				for _, t := range x.Atom.Args {
					if v, ok := t.(*ast.Var); ok {
						vs = append(vs, v.Name)
					}
				}
				if err := need(vs, "a negation"); err != nil {
					return err
				}
			case *ast.Condition:
				if x.Op == ast.Eq {
					continue // handled by the binding pass
				}
				vs := ast.Vars(x.L, nil)
				vs = ast.Vars(x.R, vs)
				if err := need(vs, "a comparison"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func exprBound(e ast.Expr, bound map[string]bool) bool {
	for _, v := range ast.Vars(e, nil) {
		if !bound[v] {
			return false
		}
	}
	return true
}

// buildStrata computes the SCC condensation of the predicate
// connection graph and rejects negation inside a recursive clique.
func (a *Analysis) buildStrata(idb map[string]bool) error {
	preds := make([]string, 0, len(idb))
	for p := range idb {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	id := make(map[string]int, len(preds))
	for i, p := range preds {
		id[p] = i
	}
	adj := make([][]int, len(preds))
	type negEdge struct {
		from, to string
		pos      ast.Position
	}
	var negs []negEdge
	for _, r := range a.Program.Rules {
		h := id[r.Head.Pred]
		for _, l := range r.Body {
			switch x := l.(type) {
			case *ast.Atom:
				if b, ok := id[x.Pred]; ok {
					adj[h] = append(adj[h], b)
				}
			case *ast.Negation:
				if b, ok := id[x.Atom.Pred]; ok {
					adj[h] = append(adj[h], b)
					negs = append(negs, negEdge{x.Atom.Pred, r.Head.Pred, x.Atom.Pos})
				}
			}
		}
	}
	sccs := tarjan(len(preds), adj)

	selfLoop := make(map[string]bool)
	for _, r := range a.Program.Rules {
		for _, atom := range r.Atoms() {
			if atom.Pred == r.Head.Pred {
				selfLoop[r.Head.Pred] = true
			}
		}
	}

	for _, comp := range sccs {
		s := &Stratum{}
		inComp := make(map[string]bool, len(comp))
		for _, v := range comp {
			s.Preds = append(s.Preds, preds[v])
			inComp[preds[v]] = true
		}
		sort.Strings(s.Preds)
		s.Mutual = len(comp) > 1
		s.Recursive = s.Mutual
		for _, p := range s.Preds {
			if selfLoop[p] {
				s.Recursive = true
			}
		}
		for _, r := range a.Program.Rules {
			if !inComp[r.Head.Pred] {
				continue
			}
			s.Rules = append(s.Rules, r)
			rec := 0
			for _, atom := range r.Atoms() {
				if inComp[atom.Pred] && (s.Mutual || atom.Pred == r.Head.Pred) {
					rec++
				}
			}
			if rec >= 2 {
				s.NonLinear = true
			}
		}
		idx := len(a.Strata)
		for _, p := range s.Preds {
			a.strataOf[p] = idx
		}
		a.Strata = append(a.Strata, s)
	}

	// Stratified negation: the negated predicate must not share a
	// stratum with the rule head (no negation inside recursion).
	for _, e := range negs {
		if a.strataOf[e.from] == a.strataOf[e.to] {
			return fmt.Errorf("%s: negation of %s inside the recursion defining %s is not supported (programs must be negation-stratified)", e.pos, e.from, e.to)
		}
	}
	return nil
}
