package pcg

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/storage"
)

func arcSchema() map[string]*storage.Schema {
	return map[string]*storage.Schema{
		"arc": storage.NewSchema("arc",
			storage.Column{Name: "x", Type: storage.TInt},
			storage.Column{Name: "y", Type: storage.TInt}),
	}
}

func analyze(t *testing.T, src string, schemas map[string]*storage.Schema) *Analysis {
	t.Helper()
	a, err := Analyze(parser.MustParse(src), schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeTC(t *testing.T) {
	a := analyze(t, `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`, arcSchema())
	if len(a.Strata) != 1 {
		t.Fatalf("strata = %d, want 1", len(a.Strata))
	}
	s := a.Strata[0]
	if !s.Recursive || s.Mutual || s.NonLinear {
		t.Fatalf("stratum flags = %+v", s)
	}
	if !a.EDB["arc"] || a.EDB["tc"] {
		t.Fatal("EDB classification wrong")
	}
	if got := a.Schemas["tc"]; got.Arity() != 2 || got.ColType(0) != storage.TInt {
		t.Fatalf("tc schema = %v", got)
	}
}

func TestAnalyzeStrataOrder(t *testing.T) {
	a := analyze(t, `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
		two_hop(X, Y) :- tc(X, Z), tc(Z, Y).
	`, arcSchema())
	if len(a.Strata) != 2 {
		t.Fatalf("strata = %d, want 2", len(a.Strata))
	}
	if a.StratumOf("tc") != 0 || a.StratumOf("two_hop") != 1 {
		t.Fatalf("order: tc=%d two_hop=%d", a.StratumOf("tc"), a.StratumOf("two_hop"))
	}
	if a.Strata[1].Recursive {
		t.Fatal("two_hop is not recursive")
	}
	if a.StratumOf("arc") != -1 {
		t.Fatal("EDB has no stratum")
	}
}

func TestAnalyzeMutualRecursion(t *testing.T) {
	a := analyze(t, `
		attend(X) :- organizer(X).
		cnt(Y, count<X>) :- attend(X), friend(Y, X).
		attend(X) :- cnt(X, N), N >= 3.
	`, map[string]*storage.Schema{
		"organizer": storage.NewSchema("organizer", storage.Column{Name: "x", Type: storage.TInt}),
		"friend": storage.NewSchema("friend",
			storage.Column{Name: "y", Type: storage.TInt},
			storage.Column{Name: "x", Type: storage.TInt}),
	})
	var rec *Stratum
	for _, s := range a.Strata {
		if s.Recursive {
			rec = s
		}
	}
	if rec == nil || !rec.Mutual || len(rec.Preds) != 2 {
		t.Fatalf("mutual stratum = %+v", rec)
	}
	if a.Aggregates["cnt"] != storage.AggCount {
		t.Fatalf("cnt aggregate = %v", a.Aggregates["cnt"])
	}
}

func TestAnalyzeNonLinear(t *testing.T) {
	a := analyze(t, `
		path(A, B, min<D>) :- warc(A, B, D).
		path(A, B, min<D>) :- path(A, C, D1), path(C, B, D2), D = D1 + D2.
	`, map[string]*storage.Schema{
		"warc": storage.NewSchema("warc",
			storage.Column{Name: "a", Type: storage.TInt},
			storage.Column{Name: "b", Type: storage.TInt},
			storage.Column{Name: "d", Type: storage.TInt}),
	})
	s := a.Strata[0]
	if !s.Recursive || !s.NonLinear || s.Mutual {
		t.Fatalf("flags = %+v", s)
	}
	info := a.RuleInfoFor(s, s.Rules[1])
	if len(info.RecursiveAtoms) != 2 {
		t.Fatalf("recursive atoms = %v", info.RecursiveAtoms)
	}
	if a.Aggregates["path"] != storage.AggMin {
		t.Fatal("path aggregate")
	}
}

func TestAnalyzeTypeInferenceFloat(t *testing.T) {
	a, err := Analyze(parser.MustParse(`
		rank(X, sum<(X, I)>) :- matrix(X, _, _), I = (1 - $alpha) / $vnum.
		rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), K = $alpha * (C / D).
	`), map[string]*storage.Schema{
		"matrix": storage.NewSchema("matrix",
			storage.Column{Name: "x", Type: storage.TInt},
			storage.Column{Name: "y", Type: storage.TInt},
			storage.Column{Name: "d", Type: storage.TFloat}),
	}, map[string]storage.Type{"alpha": storage.TFloat, "vnum": storage.TFloat})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Schemas["rank"].ColType(1); got != storage.TFloat {
		t.Fatalf("rank value type = %v, want float", got)
	}
	if got := a.Schemas["rank"].ColType(0); got != storage.TInt {
		t.Fatalf("rank key type = %v, want int", got)
	}
}

func TestAnalyzeSafetyViolations(t *testing.T) {
	cases := []string{
		`p(X, Y) :- arc(X, Z).`,                   // head var Y unbound
		`p(X) :- arc(X, Y), Z > 3.`,               // comparison var unbound
		`p(X) :- arc(X, Y), !arc(Y, Z2), Z2 = W.`, // negation + unbound chain
	}
	for _, src := range cases {
		if _, err := Analyze(parser.MustParse(src), arcSchema(), nil); err == nil {
			t.Errorf("Analyze(%q) should fail", src)
		}
	}
	// A head variable bound through an equality chain is safe (SSSP
	// base rule).
	if _, err := Analyze(parser.MustParse(`sp(To, min<C>) :- To = $start, C = 0.`), nil,
		map[string]storage.Type{"start": storage.TInt}); err != nil {
		t.Errorf("equality-bound head should be safe: %v", err)
	}
}

func TestAnalyzeRejectsNegationInRecursion(t *testing.T) {
	_, err := Analyze(parser.MustParse(`
		win(X) :- move(X, Y), !win(Y).
	`), map[string]*storage.Schema{
		"move": storage.NewSchema("move",
			storage.Column{Name: "x", Type: storage.TInt},
			storage.Column{Name: "y", Type: storage.TInt}),
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "negation") {
		t.Fatalf("err = %v, want negation-in-recursion rejection", err)
	}
}

func TestAnalyzeAllowsStratifiedNegation(t *testing.T) {
	a := analyze(t, `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
		unreach(X, Y) :- arc(X, _), arc(Y, _), !tc(X, Y).
	`, arcSchema())
	if a.StratumOf("unreach") <= a.StratumOf("tc") {
		t.Fatal("negating stratum must come after the negated one")
	}
}

func TestAnalyzeRejectsUndeclaredEDB(t *testing.T) {
	_, err := Analyze(parser.MustParse(`p(X) :- mystery(X).`), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeRejectsArityMismatch(t *testing.T) {
	_, err := Analyze(parser.MustParse(`
		p(X) :- arc(X, Y).
		p(X, Y) :- arc(X, Y).
	`), arcSchema(), nil)
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeRejectsMixedAggregates(t *testing.T) {
	_, err := Analyze(parser.MustParse(`
		d(P, max<D>) :- arc(P, D).
		d(P, min<D>) :- arc(P, D).
	`), arcSchema(), nil)
	if err == nil {
		t.Fatal("mixed min/max should be rejected")
	}
	_, err = Analyze(parser.MustParse(`
		d(P, max<D>) :- arc(P, D).
		d(P, D) :- arc(P, D).
	`), arcSchema(), nil)
	if err == nil {
		t.Fatal("mixed aggregated/plain heads should be rejected")
	}
}

func TestAnalyzeRejectsNonFinalAggregate(t *testing.T) {
	_, err := Analyze(parser.MustParse(`d(max<D>, P) :- arc(P, D).`), arcSchema(), nil)
	if err == nil {
		t.Fatal("non-final aggregate should be rejected")
	}
}

func TestAnalyzeTypeConflict(t *testing.T) {
	_, err := Analyze(parser.MustParse(`p(X) :- arc(X, Y), named(X).`), map[string]*storage.Schema{
		"arc":   arcSchema()["arc"],
		"named": storage.NewSchema("named", storage.Column{Name: "n", Type: storage.TSym}),
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("err = %v", err)
	}
}

func TestAndOrTree(t *testing.T) {
	a := analyze(t, `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`, arcSchema())
	tree := a.AndOrTree("tc")
	if tree.Kind != OrNode || len(tree.Children) != 2 {
		t.Fatalf("root = %+v", tree)
	}
	out := tree.String()
	if !strings.Contains(out, "recursive ref") || !strings.Contains(out, "EDB arc") {
		t.Fatalf("tree rendering:\n%s", out)
	}
}

func TestTarjanProperties(t *testing.T) {
	// Diamond: 0→1→3, 0→2→3 — four singleton SCCs, 3 before 1 and 2,
	// which come before 0... reverse topological = callee-first, so 3
	// is emitted before 0.
	sccs := tarjan(4, [][]int{{1, 2}, {3}, {3}, {}})
	if len(sccs) != 4 {
		t.Fatalf("sccs = %v", sccs)
	}
	pos := make(map[int]int)
	for i, comp := range sccs {
		for _, v := range comp {
			pos[v] = i
		}
	}
	if !(pos[3] < pos[1] && pos[3] < pos[2] && pos[1] < pos[0] && pos[2] < pos[0]) {
		t.Fatalf("not reverse topological: %v", sccs)
	}
	// Cycle 0→1→2→0 plus tail 2→3: the cycle is one SCC.
	sccs = tarjan(4, [][]int{{1}, {2}, {0, 3}, {}})
	var cycle []int
	for _, comp := range sccs {
		if len(comp) == 3 {
			cycle = comp
		}
	}
	if cycle == nil {
		t.Fatalf("cycle SCC missing: %v", sccs)
	}
}

func TestTarjanLongChainNoOverflow(t *testing.T) {
	const n = 200000
	adj := make([][]int, n)
	for i := 0; i < n-1; i++ {
		adj[i] = []int{i + 1}
	}
	sccs := tarjan(n, adj)
	if len(sccs) != n {
		t.Fatalf("sccs = %d, want %d", len(sccs), n)
	}
}
