package pcg

import (
	"fmt"
	"strings"

	"repro/internal/ast"
)

// The AND/OR tree is the classic deductive-database view of a program
// (paper §3: the Datalog Parser "generates its Predicated Connected
// Graph, which is implemented with the data structure of AND/OR Tree"):
// an OR node per derived predicate whose children are AND nodes, one
// per defining rule, whose children are in turn the OR nodes (or EDB
// leaves) of the body predicates. Recursive descent stops at
// back-edges, which are marked instead of expanded.

// NodeKind discriminates AND/OR tree nodes.
type NodeKind uint8

const (
	// OrNode represents a predicate; its children derive it.
	OrNode NodeKind = iota
	// AndNode represents one rule; its children are its body atoms.
	AndNode
	// LeafNode is an EDB predicate.
	LeafNode
)

// Node is one vertex of the AND/OR tree.
type Node struct {
	Kind NodeKind
	// Pred is the predicate name (OR/leaf nodes).
	Pred string
	// Rule is the defining rule (AND nodes).
	Rule *ast.Rule
	// Recursive marks a back-edge: an OR node referring to a predicate
	// already open on the path to the root.
	Recursive bool
	Children  []*Node
}

// AndOrTree builds the tree rooted at the given predicate.
func (a *Analysis) AndOrTree(root string) *Node {
	open := make(map[string]bool)
	return a.buildNode(root, open)
}

func (a *Analysis) buildNode(pred string, open map[string]bool) *Node {
	if a.EDB[pred] {
		return &Node{Kind: LeafNode, Pred: pred}
	}
	if open[pred] {
		return &Node{Kind: OrNode, Pred: pred, Recursive: true}
	}
	open[pred] = true
	defer delete(open, pred)
	or := &Node{Kind: OrNode, Pred: pred}
	for _, r := range a.Program.Rules {
		if r.Head.Pred != pred {
			continue
		}
		and := &Node{Kind: AndNode, Rule: r}
		for _, atom := range r.Atoms() {
			and.Children = append(and.Children, a.buildNode(atom.Pred, open))
		}
		or.Children = append(or.Children, and)
	}
	return or
}

// String renders the tree with indentation for EXPLAIN output.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case OrNode:
		tag := ""
		if n.Recursive {
			tag = " (recursive ref)"
		}
		fmt.Fprintf(b, "%sOR %s%s\n", indent, n.Pred, tag)
	case AndNode:
		fmt.Fprintf(b, "%sAND %s\n", indent, n.Rule)
	case LeafNode:
		fmt.Fprintf(b, "%sEDB %s\n", indent, n.Pred)
	}
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}
