package pcg

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/storage"
)

// typeLattice is the small lattice used during inference: unset is the
// bottom element, int promotes to float, and symbols are incompatible
// with numbers.
type typeLattice struct {
	set bool
	t   storage.Type
}

func (l *typeLattice) join(t storage.Type) error {
	if !l.set {
		l.set, l.t = true, t
		return nil
	}
	if l.t == t {
		return nil
	}
	if (l.t == storage.TInt && t == storage.TFloat) || (l.t == storage.TFloat && t == storage.TInt) {
		l.t = storage.TFloat
		return nil
	}
	return fmt.Errorf("type conflict: %s vs %s", l.t, t)
}

// inferSchemas derives a typed schema for every IDB predicate by
// propagating types from EDB schemas, literals, parameters and
// arithmetic through the rules until a fixpoint.
func (a *Analysis) inferSchemas() error {
	// Column lattices per IDB predicate.
	idbCols := make(map[string][]typeLattice)
	arities := make(map[string]int)
	for _, r := range a.Program.Rules {
		arities[r.Head.Pred] = len(r.Head.Args)
	}
	for p, n := range arities {
		if s, ok := a.Schemas[p]; ok {
			// Respect an explicit declaration of an IDB predicate.
			cols := make([]typeLattice, n)
			for i := range cols {
				cols[i] = typeLattice{set: true, t: s.ColType(i)}
			}
			idbCols[p] = cols
			continue
		}
		idbCols[p] = make([]typeLattice, n)
	}

	current := func(p string, i int) (storage.Type, bool) {
		if cols, ok := idbCols[p]; ok {
			if cols[i].set {
				return cols[i].t, true
			}
			return 0, false
		}
		if s, ok := a.Schemas[p]; ok {
			return s.ColType(i), true
		}
		return 0, false
	}

	for pass := 0; ; pass++ {
		if pass > len(arities)+8 {
			break // inference converges in ≤ #preds passes; be safe
		}
		changed := false
		for _, r := range a.Program.Rules {
			vt, err := ruleVarTypes(r, current, a.ParamTypes)
			if err != nil {
				return fmt.Errorf("%s: %v", r.Pos, err)
			}
			cols := idbCols[r.Head.Pred]
			for i, t := range r.Head.Args {
				var ty storage.Type
				ok := false
				switch x := t.(type) {
				case *ast.Var:
					ty, ok = vt[x.Name]
				case *ast.Num:
					ty, ok = storage.TInt, true
					if x.IsFloat {
						ty = storage.TFloat
					}
				case *ast.Str:
					ty, ok = storage.TSym, true
				case *ast.Param:
					ty, ok = a.ParamTypes[x.Name]
				case *ast.Agg:
					switch x.Kind {
					case "count":
						ty, ok = storage.TInt, true
					default:
						if v, isVar := x.Value.(*ast.Var); isVar {
							ty, ok = vt[v.Name]
						}
					}
				}
				if !ok {
					continue
				}
				before := cols[i]
				if err := cols[i].join(ty); err != nil {
					return fmt.Errorf("%s: column %d of %s: %v", r.Pos, i+1, r.Head.Pred, err)
				}
				if cols[i] != before {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	for p, cols := range idbCols {
		sc := make([]storage.Column, len(cols))
		for i, c := range cols {
			t := storage.TInt // untyped columns (never bound) default to int
			if c.set {
				t = c.t
			}
			sc[i] = storage.Column{Name: fmt.Sprintf("c%d", i), Type: t}
		}
		a.Schemas[p] = storage.NewSchema(p, sc...)
	}
	return nil
}

// RuleVarTypes resolves the type of every variable in a rule given the
// final schemas; the planner uses it to compile expressions.
func (a *Analysis) RuleVarTypes(r *ast.Rule) (map[string]storage.Type, error) {
	current := func(p string, i int) (storage.Type, bool) {
		if s, ok := a.Schemas[p]; ok {
			return s.ColType(i), true
		}
		return 0, false
	}
	return ruleVarTypes(r, current, a.ParamTypes)
}

// ruleVarTypes computes variable types for one rule from atom positions
// and equality bindings.
func ruleVarTypes(r *ast.Rule, colType func(p string, i int) (storage.Type, bool), params map[string]storage.Type) (map[string]storage.Type, error) {
	vars := make(map[string]*typeLattice)
	at := func(name string) *typeLattice {
		l, ok := vars[name]
		if !ok {
			l = &typeLattice{}
			vars[name] = l
		}
		return l
	}
	bindAtom := func(atom *ast.Atom) error {
		for i, t := range atom.Args {
			v, ok := t.(*ast.Var)
			if !ok {
				continue
			}
			ty, known := colType(atom.Pred, i)
			if !known {
				continue
			}
			if err := at(v.Name).join(ty); err != nil {
				return fmt.Errorf("variable %s: %v", v.Name, err)
			}
		}
		return nil
	}
	for _, l := range r.Body {
		switch x := l.(type) {
		case *ast.Atom:
			if err := bindAtom(x); err != nil {
				return nil, err
			}
		case *ast.Negation:
			if err := bindAtom(x.Atom); err != nil {
				return nil, err
			}
		}
	}
	// Propagate through equality bindings: V = expr types V as the
	// expression's type.
	for pass := 0; pass < 4; pass++ {
		changed := false
		for _, l := range r.Body {
			c, ok := l.(*ast.Condition)
			if !ok || c.Op != ast.Eq {
				continue
			}
			prop := func(v *ast.Var, e ast.Expr) error {
				ty, ok := exprType(e, vars, params)
				if !ok {
					return nil
				}
				before := *at(v.Name)
				if err := at(v.Name).join(ty); err != nil {
					return fmt.Errorf("variable %s: %v", v.Name, err)
				}
				if *vars[v.Name] != before {
					changed = true
				}
				return nil
			}
			if v, ok := c.L.(*ast.Var); ok {
				if err := prop(v, c.R); err != nil {
					return nil, err
				}
			}
			if v, ok := c.R.(*ast.Var); ok {
				if err := prop(v, c.L); err != nil {
					return nil, err
				}
			}
		}
		if !changed {
			break
		}
	}
	out := make(map[string]storage.Type, len(vars))
	for name, l := range vars {
		if l.set {
			out[name] = l.t
		}
	}
	return out, nil
}

// exprType derives the result type of an arithmetic expression when all
// of its leaves are typed.
func exprType(e ast.Expr, vars map[string]*typeLattice, params map[string]storage.Type) (storage.Type, bool) {
	switch x := e.(type) {
	case *ast.Var:
		if l, ok := vars[x.Name]; ok && l.set {
			return l.t, true
		}
		return 0, false
	case *ast.Num:
		if x.IsFloat {
			return storage.TFloat, true
		}
		return storage.TInt, true
	case *ast.Str:
		return storage.TSym, true
	case *ast.Param:
		t, ok := params[x.Name]
		return t, ok
	case *ast.Bin:
		lt, lok := exprType(x.L, vars, params)
		rt, rok := exprType(x.R, vars, params)
		if !lok || !rok {
			return 0, false
		}
		if lt == storage.TFloat || rt == storage.TFloat {
			return storage.TFloat, true
		}
		return storage.TInt, true
	default:
		return 0, false
	}
}
