// Package queries ships the eight benchmark programs of the paper
// (§2.1, §4.3, §7.1.1) as ready-to-parse DCDatalog sources plus the EDB
// schema each one expects. The text matches the paper's rules with
// ASCII syntax.
package queries

import "repro/internal/storage"

// Query bundles a program's source with its input schema.
type Query struct {
	// Name is the short name used in the paper's tables (TC, SG, CC,
	// SSSP, PR, Delivery, APSP, Attend).
	Name string
	// Source is the DCDatalog program text.
	Source string
	// EDB lists the extensional schemas the program reads.
	EDB []*storage.Schema
	// Output is the result predicate of interest.
	Output string
	// Params lists required $parameters.
	Params []string
}

func intCols(names ...string) []storage.Column {
	cols := make([]storage.Column, len(names))
	for i, n := range names {
		cols[i] = storage.Column{Name: n, Type: storage.TInt}
	}
	return cols
}

// Arc is the unweighted edge schema arc(x, y).
func Arc() *storage.Schema { return storage.NewSchema("arc", intCols("x", "y")...) }

// WArc is the weighted edge schema warc(x, y, w).
func WArc() *storage.Schema { return storage.NewSchema("warc", intCols("x", "y", "w")...) }

// Matrix is PageRank's matrix(src, dst, outdeg) schema with a float
// degree column.
func Matrix() *storage.Schema {
	return storage.NewSchema("matrix",
		storage.Column{Name: "x", Type: storage.TInt},
		storage.Column{Name: "y", Type: storage.TInt},
		storage.Column{Name: "d", Type: storage.TFloat})
}

// TC is Query 1: transitive closure.
func TC() Query {
	return Query{
		Name:   "TC",
		Output: "tc",
		EDB:    []*storage.Schema{Arc()},
		Source: `
			tc(X, Y) :- arc(X, Y).
			tc(X, Y) :- tc(X, Z), arc(Z, Y).
		`,
	}
}

// CC is Query 2: connected components via min-label propagation.
func CC() Query {
	return Query{
		Name:   "CC",
		Output: "cc",
		EDB:    []*storage.Schema{Arc()},
		Source: `
			cc2(Y, min<Y>) :- arc(Y, _).
			cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
			cc(Y, min<Z>) :- cc2(Y, Z).
		`,
	}
}

// APSP is Query 3: all-pairs shortest paths, the non-linear recursion
// example.
func APSP() Query {
	return Query{
		Name:   "APSP",
		Output: "apsp",
		EDB:    []*storage.Schema{WArc()},
		Source: `
			path(A, B, min<D>) :- warc(A, B, D).
			path(A, B, min<D>) :- path(A, C, D1), path(C, B, D2), D = D1 + D2.
			apsp(A, B, min<D>) :- path(A, B, D).
		`,
	}
}

// Attend is Query 4: who will attend the party, the mutual recursion
// example.
func Attend() Query {
	return Query{
		Name:   "Attend",
		Output: "attend",
		EDB: []*storage.Schema{
			storage.NewSchema("organizer", intCols("x")...),
			storage.NewSchema("friend", intCols("y", "x")...),
		},
		Source: `
			attend(X) :- organizer(X).
			cnt(Y, count<X>) :- attend(X), friend(Y, X).
			attend(X) :- cnt(X, N), N >= 3.
		`,
	}
}

// SG is Query 5: same generation.
func SG() Query {
	return Query{
		Name:   "SG",
		Output: "sg",
		EDB:    []*storage.Schema{Arc()},
		Source: `
			sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.
			sg(X, Y) :- arc(A, X), sg(A, B), arc(B, Y).
		`,
	}
}

// PR is Query 6: PageRank with the keyed sum aggregate. Parameters:
// $alpha (damping, e.g. 0.85) and $vnum (vertex count).
func PR() Query {
	return Query{
		Name:   "PR",
		Output: "results",
		EDB:    []*storage.Schema{Matrix()},
		Params: []string{"alpha", "vnum"},
		Source: `
			rank(X, sum<(X, I)>) :- matrix(X, _, _), I = (1 - $alpha) / $vnum.
			rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), K = $alpha * (C / D).
			results(X, V) :- rank(X, V).
		`,
	}
}

// SSSP is Query 7: single-source shortest path from $start.
func SSSP() Query {
	return Query{
		Name:   "SSSP",
		Output: "results",
		EDB:    []*storage.Schema{WArc()},
		Params: []string{"start"},
		Source: `
			sp(To, min<C>) :- To = $start, C = 0.
			sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
			results(To, min<C>) :- sp(To, C).
		`,
	}
}

// Delivery is Query 8: the bill-of-materials delivery-time query with
// max in recursion.
func Delivery() Query {
	return Query{
		Name:   "Delivery",
		Output: "results",
		EDB: []*storage.Schema{
			storage.NewSchema("basic", intCols("p", "d")...),
			storage.NewSchema("assbl", intCols("p", "s")...),
		},
		Source: `
			delivery(P, max<D>) :- basic(P, D).
			delivery(P, max<D>) :- assbl(P, S), delivery(S, D).
			results(P, max<D>) :- delivery(P, D).
		`,
	}
}

// All returns every benchmark query.
func All() []Query {
	return []Query{TC(), CC(), APSP(), Attend(), SG(), PR(), SSSP(), Delivery()}
}

// BoundTC is the bound point-query variant of TC: vertices reachable
// from the single source $src. The consumer rule binds tc's first
// column to the parameter, which is exactly the shape the demand
// (magic-set) rewrite turns into a seeded recursion — the unrewritten
// program derives the full closure and filters afterwards.
func BoundTC() Query {
	return Query{
		Name:   "TC-bound",
		Output: "reach",
		EDB:    []*storage.Schema{Arc()},
		Params: []string{"src"},
		Source: `
			tc(X, Y) :- arc(X, Y).
			tc(X, Y) :- tc(X, Z), arc(Z, Y).
			reach(Y) :- tc($src, Y).
		`,
	}
}

// BoundSG is the bound point-query variant of SG: the same-generation
// peers of the single vertex $v.
func BoundSG() Query {
	return Query{
		Name:   "SG-bound",
		Output: "peer",
		EDB:    []*storage.Schema{Arc()},
		Params: []string{"v"},
		Source: `
			sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.
			sg(X, Y) :- arc(A, X), sg(A, B), arc(B, Y).
			peer(Y) :- sg($v, Y).
		`,
	}
}
