package queries

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/plan"
	"repro/internal/storage"
)

// TestAllQueriesAnalyzeAndPlan parses, analyzes and plans every paper
// program against its declared EDB schemas.
func TestAllQueriesAnalyzeAndPlan(t *testing.T) {
	for _, q := range All() {
		t.Run(q.Name, func(t *testing.T) {
			prog, err := parser.Parse(q.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			schemas := map[string]*storage.Schema{}
			for _, s := range q.EDB {
				schemas[s.Name] = s
			}
			params := map[string]storage.Type{}
			for _, p := range q.Params {
				params[p] = storage.TFloat
				if p == "start" {
					params[p] = storage.TInt
				}
			}
			a, err := pcg.Analyze(prog, schemas, params)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if a.StratumOf(q.Output) < 0 {
				t.Fatalf("output predicate %s is not derived", q.Output)
			}
			if _, err := plan.Build(a); err != nil {
				t.Fatalf("plan: %v", err)
			}
		})
	}
}

// TestQueryShapes pins the structural properties the paper highlights
// for each program.
func TestQueryShapes(t *testing.T) {
	shape := func(q Query) *pcg.Analysis {
		prog := parser.MustParse(q.Source)
		schemas := map[string]*storage.Schema{}
		for _, s := range q.EDB {
			schemas[s.Name] = s
		}
		params := map[string]storage.Type{}
		for _, p := range q.Params {
			params[p] = storage.TFloat
			if p == "start" {
				params[p] = storage.TInt
			}
		}
		a, err := pcg.Analyze(prog, schemas, params)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		return a
	}

	recursiveStratum := func(a *pcg.Analysis) *pcg.Stratum {
		for _, s := range a.Strata {
			if s.Recursive {
				return s
			}
		}
		return nil
	}

	if s := recursiveStratum(shape(TC())); s == nil || s.NonLinear || s.Mutual {
		t.Error("TC must be plain linear recursion")
	}
	if s := recursiveStratum(shape(APSP())); s == nil || !s.NonLinear {
		t.Error("APSP must be non-linear")
	}
	if s := recursiveStratum(shape(Attend())); s == nil || !s.Mutual {
		t.Error("Attend must be mutual recursion")
	}
	if a := shape(CC()); a.Aggregates["cc2"] != storage.AggMin {
		t.Error("CC must aggregate with min")
	}
	if a := shape(Delivery()); a.Aggregates["delivery"] != storage.AggMax {
		t.Error("Delivery must aggregate with max")
	}
	if a := shape(PR()); a.Aggregates["rank"] != storage.AggSum {
		t.Error("PR must aggregate with sum")
	}
	if a := shape(Attend()); a.Aggregates["cnt"] != storage.AggCount {
		t.Error("Attend must count")
	}
	if a := shape(SSSP()); a.Aggregates["sp"] != storage.AggMin {
		t.Error("SSSP must aggregate with min")
	}
}

func TestQueryMetadata(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("expected the paper's 8 programs, got %d", len(all))
	}
	names := map[string]bool{}
	for _, q := range all {
		if q.Name == "" || q.Source == "" || q.Output == "" {
			t.Fatalf("incomplete query %+v", q)
		}
		if names[q.Name] {
			t.Fatalf("duplicate query name %s", q.Name)
		}
		names[q.Name] = true
	}
	for _, want := range []string{"TC", "CC", "APSP", "Attend", "SG", "PR", "SSSP", "Delivery"} {
		if !names[want] {
			t.Fatalf("missing query %s", want)
		}
	}
	if len(PR().Params) != 2 || len(SSSP().Params) != 1 {
		t.Fatal("parameter lists wrong")
	}
}

func TestSchemaHelpers(t *testing.T) {
	if Arc().Arity() != 2 || WArc().Arity() != 3 || Matrix().Arity() != 3 {
		t.Fatal("schema arities")
	}
	if Matrix().ColType(2) != storage.TFloat {
		t.Fatal("matrix degree must be float")
	}
}
