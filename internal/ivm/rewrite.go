// Package ivm is the incremental view-maintenance plane: it keeps a
// program's IDB fixpoint warm across EDB insert/delete streams instead
// of recomputing it per mutation. The subsystem is three layers:
//
//   - rewrite.go derives three delta programs from the source program:
//     an insertion program (net-new EDB tuples seed the existing
//     semi-naive machinery directly, guarded against re-deriving live
//     tuples by a membership prober over the maintained fixpoint), a
//     counting-DRed over-delete program (what might have lost support),
//     and a re-derivation program (which over-deleted tuples survive
//     through alternative derivations).
//   - index.go maintains per-(predicate, columns) incremental hash
//     indexes over the view's counted fixpoints, so delta programs can
//     seed from small slices of the old fixpoint — the rows that can
//     possibly join the batch — rather than the whole relation.
//   - view.go owns the refresh pipeline: net-effect batching through
//     counted EDB mirrors, the delete → re-derive → insert run
//     sequence, the churn-crossover fallback to full recompute, and
//     cancellation/staleness handling.
package ivm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/pcg"
	"repro/internal/storage"
)

// Synthetic relation-name suffixes. The "__ivm" namespace is reserved:
// Materialize rejects programs whose relations collide with it.
const (
	insSuffix    = "__ivmins"    // EDB: net-inserted tuples of a batch
	delSuffix    = "__ivmdel"    // EDB: net-deleted tuples / IDB: over-delete delta
	oldSuffix    = "__ivmold"    // EDB: pre-mutation snapshot (aliased, indexes shared)
	newSuffix    = "__ivmnew"    // EDB: post-delete snapshot
	dSuffix      = "__ivmd"      // IDB: insert-phase delta
	redSuffix    = "__ivmred"    // IDB: re-derived survivors
	delsetSuffix = "__ivmdelset" // EDB: tuples actually killed by the over-delete
	liveSuffix   = "__ivmlive"   // virtual: the view's live fixpoint, via prober
	sliceInfix   = "__ivmsl"     // EDB: anchored slice of an old fixpoint
)

// sliceSpec describes one seed slice an incremental refresh must
// compute before running a delta program: the live tuples of Pred
// whose Anchor columns match some batch tuple of Src projected to
// SrcCols. A nil Anchor means no variable is shared between the batch
// atom and the fixpoint atom, so the slice degrades to the full live
// snapshot (counted in RefreshStats.FullSlices).
type sliceSpec struct {
	Name    string
	Pred    string
	Anchor  []int
	Src     string
	SrcCols []int
}

// deltaProgram is one generated program plus the bookkeeping the
// refresh needs around it.
type deltaProgram struct {
	Source string
	Slices []sliceSpec
	// Deltas maps each synthetic delta predicate to the original
	// predicate whose change set it computes.
	Deltas map[string]string
}

// rewrite bundles the three generated programs of an eligible view.
type rewrite struct {
	Ins *deltaProgram
	Del *deltaProgram
	Red *deltaProgram
}

// ineligible explains why a program cannot be maintained incrementally
// (the view then falls back to full recompute on every refresh). The
// supported fragment is positive set-semantics Datalog where no rule
// joins two IDB atoms: aggregates would need support-count semantics
// per group, negation breaks the monotone delta decomposition, and a
// second IDB atom would need delta-join variants over the union of old
// and new state that the single-pass slice seeding cannot express.
func ineligible(a *pcg.Analysis) string {
	if len(a.Aggregates) > 0 {
		return "program uses aggregates"
	}
	for name := range a.Schemas {
		if strings.Contains(name, "__ivm") {
			return fmt.Sprintf("relation %q collides with the reserved __ivm namespace", name)
		}
	}
	for _, r := range a.Program.Rules {
		idb := 0
		for _, l := range r.Body {
			switch x := l.(type) {
			case *ast.Negation:
				return "program uses negation"
			case *ast.Atom:
				if !a.EDB[x.Pred] {
					idb++
				}
			}
		}
		if idb > 1 {
			return "a rule joins multiple IDB atoms"
		}
		for _, t := range r.Head.Args {
			if _, bad := t.(*ast.Agg); bad {
				return "program uses aggregates"
			}
		}
	}
	return ""
}

// typeName renders a storage type as its declaration spelling.
func typeName(t storage.Type) string {
	switch t {
	case storage.TFloat:
		return "float"
	case storage.TSym:
		return "sym"
	default:
		return "int"
	}
}

// progBuilder accumulates one generated program: rules, synthetic EDB
// declarations, slice specs, and the delta-predicate map.
type progBuilder struct {
	a       *pcg.Analysis
	decls   map[string]*storage.Schema
	rules   []*ast.Rule
	slices  []sliceSpec
	sliceIx map[string]int
	deltas  map[string]string
}

func newProgBuilder(a *pcg.Analysis) *progBuilder {
	return &progBuilder{
		a:       a,
		decls:   make(map[string]*storage.Schema),
		sliceIx: make(map[string]int),
		deltas:  make(map[string]string),
	}
}

// declare records a synthetic EDB relation carrying pred's schema.
func (b *progBuilder) declare(name, pred string) {
	if _, ok := b.decls[name]; !ok {
		b.decls[name] = b.a.Schemas[pred]
	}
}

// slice interns a seed-slice spec and returns its relation name.
// Identical (pred, anchor, src, srcCols) requests share one slice.
func (b *progBuilder) slice(pred string, anchor []int, src string, srcCols []int) string {
	sig := fmt.Sprintf("%s|%v|%s|%v", pred, anchor, src, srcCols)
	if i, ok := b.sliceIx[sig]; ok {
		return b.slices[i].Name
	}
	name := fmt.Sprintf("%s%s%d", pred, sliceInfix, len(b.slices))
	b.sliceIx[sig] = len(b.slices)
	b.slices = append(b.slices, sliceSpec{Name: name, Pred: pred, Anchor: anchor, Src: src, SrcCols: srcCols})
	b.declare(name, pred)
	return name
}

// delta records that deltaName computes the change set of pred.
func (b *progBuilder) delta(deltaName, pred string) {
	b.deltas[deltaName] = pred
}

// finish renders the program. Delta predicates that were referenced but
// never defined by a rule (a predicate whose only rules are facts, say)
// are declared as empty EDB relations so the program still compiles.
func (b *progBuilder) finish() *deltaProgram {
	defined := make(map[string]bool, len(b.rules))
	for _, r := range b.rules {
		defined[r.Head.Pred] = true
	}
	for _, r := range b.rules {
		for _, at := range r.Atoms() {
			if pred, ok := b.deltas[at.Pred]; ok && !defined[at.Pred] {
				b.declare(at.Pred, pred)
			}
		}
	}
	names := make([]string, 0, len(b.decls))
	for name := range b.decls {
		names = append(names, name)
	}
	sort.Strings(names)
	var src strings.Builder
	for _, name := range names {
		sch := b.decls[name]
		src.WriteString(".decl ")
		src.WriteString(name)
		src.WriteByte('(')
		for i := 0; i < sch.Arity(); i++ {
			if i > 0 {
				src.WriteString(", ")
			}
			fmt.Fprintf(&src, "c%d:%s", i, typeName(sch.ColType(i)))
		}
		src.WriteString(")\n")
	}
	for _, r := range b.rules {
		src.WriteString(r.String())
		src.WriteByte('\n')
	}
	return &deltaProgram{Source: src.String(), Slices: b.slices, Deltas: b.deltas}
}

func mkAtom(pred string, args []ast.Term) *ast.Atom {
	return &ast.Atom{Pred: pred, Args: args}
}

// sharedAnchor computes the join key between a small driver atom and a
// fixpoint atom: for every variable the two share (first occurrence on
// each side), the fixpoint column goes into anchor and the driver
// column into srcCols. Empty results mean no shared variable — the
// slice must be the full fixpoint.
func sharedAnchor(driver, target *ast.Atom) (anchor, srcCols []int) {
	first := map[string]int{}
	for i, t := range driver.Args {
		if v, ok := t.(*ast.Var); ok {
			if _, seen := first[v.Name]; !seen {
				first[v.Name] = i
			}
		}
	}
	used := map[string]bool{}
	for j, t := range target.Args {
		v, ok := t.(*ast.Var)
		if !ok || used[v.Name] {
			continue
		}
		if i, ok2 := first[v.Name]; ok2 {
			anchor = append(anchor, j)
			srcCols = append(srcCols, i)
			used[v.Name] = true
		}
	}
	return anchor, srcCols
}

// conditionsOf returns the rule's non-atom literals in order.
func conditionsOf(r *ast.Rule) []ast.Literal {
	var out []ast.Literal
	for _, l := range r.Body {
		if _, ok := l.(*ast.Atom); !ok {
			out = append(out, l)
		}
	}
	return out
}

// buildIns generates the insertion program. For each source rule and
// each body atom, one variant makes that atom the delta: EDB atoms
// become `pred__ivmins` (the batch's net inserts), the rule's single
// IDB atom becomes either an anchored slice of the old fixpoint (when
// an EDB atom drives) or `pred__ivmd` (the recursive delta). Remaining
// EDB atoms read the canonical post-insert relations, so Δa⋈Δb cross
// terms are covered by the Δa variant. Every variant is guarded with
// `!head__ivmlive(...)`: a derivation already in the live fixpoint is
// neither re-emitted nor re-propagated — its consequences are live
// too. The guard probes the view's counted fixpoint through the
// engine's membership-prober hook, so no snapshot or index of the old
// IDB is built.
func buildIns(a *pcg.Analysis) *deltaProgram {
	b := newProgBuilder(a)
	for _, r := range a.Program.Rules {
		atoms := r.Atoms()
		if len(atoms) == 0 {
			continue // facts and condition-only rules don't react to EDB changes
		}
		conds := conditionsOf(r)
		dHead := mkAtom(r.Head.Pred+dSuffix, r.Head.Args)
		b.delta(dHead.Pred, r.Head.Pred)
		guard := &ast.Negation{Atom: mkAtom(r.Head.Pred+liveSuffix, r.Head.Args)}
		b.declare(guard.Atom.Pred, r.Head.Pred)
		for j, drv := range atoms {
			var body []ast.Literal
			if a.EDB[drv.Pred] {
				ins := drv.Pred + insSuffix
				b.declare(ins, drv.Pred)
				body = append(body, mkAtom(ins, drv.Args))
				for k, other := range atoms {
					if k == j {
						continue
					}
					if a.EDB[other.Pred] {
						body = append(body, mkAtom(other.Pred, other.Args))
						continue
					}
					anchor, srcCols := sharedAnchor(drv, other)
					body = append(body, mkAtom(b.slice(other.Pred, anchor, ins, srcCols), other.Args))
				}
			} else {
				d := drv.Pred + dSuffix
				b.delta(d, drv.Pred)
				body = append(body, mkAtom(d, drv.Args))
				for k, other := range atoms {
					if k != j {
						body = append(body, mkAtom(other.Pred, other.Args))
					}
				}
			}
			body = append(body, conds...)
			body = append(body, guard)
			b.rules = append(b.rules, &ast.Rule{Head: dHead, Body: body})
		}
	}
	return b.finish()
}

// guardTmpl is one prune guard derived from a single-EDB-atom rule of a
// predicate: if that rule still fires for a head tuple after the
// deletes (the negated `rel__ivmnew` probe finds the tuple), the head
// tuple provably keeps support and the over-delete skips it — and,
// transitively, everything derived from it alone.
type guardTmpl struct {
	rel  string
	args []guardArg
}

// guardArg is one argument of an instantiated guard: a position into
// the deleting rule's head (headPos >= 0) or a constant term.
type guardArg struct {
	headPos int
	lit     ast.Term
}

// pruneGuards extracts the guard templates of one predicate. A rule
// qualifies when its head is all distinct variables and its body is a
// single positive EDB atom with no conditions whose variable arguments
// all appear in the head — exactly the shape where "body tuple
// survives" is equivalent to "head tuple still derivable by this
// rule" under positional substitution.
func pruneGuards(a *pcg.Analysis, pred string) []guardTmpl {
	var out []guardTmpl
rules:
	for _, r := range a.Program.Rules {
		if r.Head.Pred != pred || len(r.Body) != 1 {
			continue
		}
		at, ok := r.Body[0].(*ast.Atom)
		if !ok || !a.EDB[at.Pred] {
			continue
		}
		varPos := map[string]int{}
		for i, t := range r.Head.Args {
			v, isVar := t.(*ast.Var)
			if !isVar {
				continue rules
			}
			if _, dup := varPos[v.Name]; dup {
				continue rules
			}
			varPos[v.Name] = i
		}
		g := guardTmpl{rel: at.Pred}
		for _, t := range at.Args {
			if v, isVar := t.(*ast.Var); isVar {
				pos, bound := varPos[v.Name]
				if !bound {
					continue rules // projected-away column: not expressible fully bound
				}
				g.args = append(g.args, guardArg{headPos: pos})
				continue
			}
			g.args = append(g.args, guardArg{headPos: -1, lit: t})
		}
		out = append(out, g)
	}
	return out
}

// instantiate renders a guard template against a deleting rule's head.
func (g guardTmpl) instantiate(head *ast.Atom) *ast.Negation {
	args := make([]ast.Term, len(g.args))
	for i, ga := range g.args {
		if ga.headPos >= 0 {
			args[i] = head.Args[ga.headPos]
		} else {
			args[i] = ga.lit
		}
	}
	return &ast.Negation{Atom: mkAtom(g.rel+newSuffix, args)}
}

// buildDel generates the counting-DRed over-delete program, evaluated
// against the pre-mutation database: deleted EDB tuples arrive as
// `pred__ivmdel`, every other EDB atom reads the `__ivmold` snapshot
// (whose indexes are the previous base's, shared by alias), the rule's
// IDB atom is either a live-fixpoint slice (EDB-driven variants) or
// the recursive `pred__ivmdel` delta. Prune guards negate `__ivmnew`:
// a head tuple with a surviving single-atom derivation is neither
// over-deleted nor cascaded from.
func buildDel(a *pcg.Analysis) *deltaProgram {
	b := newProgBuilder(a)
	guardsFor := map[string][]guardTmpl{}
	for _, r := range a.Program.Rules {
		atoms := r.Atoms()
		if len(atoms) == 0 {
			continue // fact support never depends on the EDB
		}
		conds := conditionsOf(r)
		dHead := mkAtom(r.Head.Pred+delSuffix, r.Head.Args)
		b.delta(dHead.Pred, r.Head.Pred)
		guards, ok := guardsFor[r.Head.Pred]
		if !ok {
			guards = pruneGuards(a, r.Head.Pred)
			guardsFor[r.Head.Pred] = guards
			for _, g := range guards {
				b.declare(g.rel+newSuffix, g.rel)
			}
		}
		for j, drv := range atoms {
			var body []ast.Literal
			if a.EDB[drv.Pred] {
				del := drv.Pred + delSuffix
				b.declare(del, drv.Pred)
				body = append(body, mkAtom(del, drv.Args))
				for k, other := range atoms {
					if k == j {
						continue
					}
					if a.EDB[other.Pred] {
						old := other.Pred + oldSuffix
						b.declare(old, other.Pred)
						body = append(body, mkAtom(old, other.Args))
						continue
					}
					anchor, srcCols := sharedAnchor(drv, other)
					body = append(body, mkAtom(b.slice(other.Pred, anchor, del, srcCols), other.Args))
				}
			} else {
				d := drv.Pred + delSuffix
				b.delta(d, drv.Pred)
				body = append(body, mkAtom(d, drv.Args))
				for k, other := range atoms {
					if k == j {
						continue
					}
					old := other.Pred + oldSuffix
					b.declare(old, other.Pred)
					body = append(body, mkAtom(old, other.Args))
				}
			}
			body = append(body, conds...)
			for _, g := range guards {
				body = append(body, g.instantiate(r.Head))
			}
			b.rules = append(b.rules, &ast.Rule{Head: dHead, Body: body})
		}
	}
	return b.finish()
}

// buildRed generates the re-derivation program: for every source rule,
// the over-deleted tuples (`head__ivmdelset`, the tuples the delete
// pass actually killed) drive a membership-restricted re-evaluation
// against the post-delete database (`__ivmnew` EDB). The rule's IDB
// atom splits into two variants — a slice of the kept (post-kill live)
// fixpoint anchored on the delset's shared variables, and the
// recursive `__ivmred` delta — so survivors re-derived this pass can
// themselves support further re-derivations.
func buildRed(a *pcg.Analysis) *deltaProgram {
	b := newProgBuilder(a)
	for _, r := range a.Program.Rules {
		atoms := r.Atoms()
		conds := conditionsOf(r)
		redHead := mkAtom(r.Head.Pred+redSuffix, r.Head.Args)
		b.delta(redHead.Pred, r.Head.Pred)
		delset := r.Head.Pred + delsetSuffix
		b.declare(delset, r.Head.Pred)
		driver := mkAtom(delset, r.Head.Args)

		var idbAtom *ast.Atom
		for _, at := range atoms {
			if !a.EDB[at.Pred] {
				idbAtom = at
			}
		}
		variants := [][]ast.Literal{nil}
		if idbAtom != nil {
			anchor, srcCols := sharedAnchor(driver, idbAtom)
			variants = [][]ast.Literal{
				{mkAtom(b.slice(idbAtom.Pred, anchor, delset, srcCols), idbAtom.Args)},
				{mkAtom(idbAtom.Pred+redSuffix, idbAtom.Args)},
			}
			b.delta(idbAtom.Pred+redSuffix, idbAtom.Pred)
		}
		for _, idbLit := range variants {
			body := []ast.Literal{driver}
			for _, at := range atoms {
				if at == idbAtom {
					body = append(body, idbLit...)
					continue
				}
				nw := at.Pred + newSuffix
				b.declare(nw, at.Pred)
				body = append(body, mkAtom(nw, at.Args))
			}
			body = append(body, conds...)
			b.rules = append(b.rules, &ast.Rule{Head: redHead, Body: body})
		}
	}
	return b.finish()
}

// buildRewrite generates all three delta programs for an eligible
// analysis.
func buildRewrite(a *pcg.Analysis) *rewrite {
	return &rewrite{Ins: buildIns(a), Del: buildDel(a), Red: buildRed(a)}
}
