package ivm

import (
	"repro/internal/storage"
)

// liveIndex is an incremental hash index over a counted fixpoint,
// keyed by a column subset. It chains tuple ordinals under the key
// hash and extends lazily: each probe batch first indexes the ordinals
// appended since the last extension — O(new tuples), never a rebuild.
// Dead (killed) tuples stay chained but are filtered at probe time by
// their live count; revived tuples need no re-append because their
// ordinal never left the chain. This is what makes seed-slice
// computation O(|Δ| · matches) per refresh instead of O(|fixpoint|).
type liveIndex struct {
	rel     *storage.CountedSetRelation
	cols    []int
	n       int // ordinals [0, n) are indexed
	buckets map[uint64][]int32
}

func newLiveIndex(rel *storage.CountedSetRelation, cols []int) *liveIndex {
	return &liveIndex{rel: rel, cols: cols, buckets: make(map[uint64][]int32)}
}

// extend indexes ordinals appended since the previous call.
func (ix *liveIndex) extend() {
	for ; ix.n < ix.rel.Len(); ix.n++ {
		h := ix.rel.At(ix.n).HashOn(ix.cols)
		ix.buckets[h] = append(ix.buckets[h], int32(ix.n))
	}
}

// probe visits every live tuple whose indexed columns equal key.
func (ix *liveIndex) probe(key []storage.Value, fn func(ord int32, t storage.Tuple)) {
	h := storage.HashValues(key)
	for _, ord := range ix.buckets[h] {
		if ix.rel.CountAt(int(ord)) == 0 {
			continue
		}
		t := ix.rel.At(int(ord))
		match := true
		for i, c := range ix.cols {
			if t[c] != key[i] {
				match = false
				break
			}
		}
		if match {
			fn(ord, t)
		}
	}
}
