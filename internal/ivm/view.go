package ivm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Config parameterizes a materialized view.
type Config struct {
	// Name identifies the view (metrics, registries).
	Name string
	// Source is the program text whose IDB fixpoint the view maintains.
	Source string
	// Schemas are the extensional relations' schemas.
	Schemas map[string]*storage.Schema
	// Syms is the symbol table shared with the owning database.
	Syms *storage.SymbolTable
	// Params are the program's $parameter bindings, fixed at
	// materialization.
	Params map[string]physical.Param
	// Opts are the engine options every refresh and recompute runs
	// with (workers, strategy, Bloom policy, ...). Base and Probers are
	// owned by the view and overwritten per run.
	Opts engine.Options
	// Crossover is the churn fraction — net changed tuples over the
	// mutated relations' pre-batch size — above which Refresh abandons
	// delta propagation for a full recompute. 0 means the default
	// (0.3); a huge delta re-derives most of the fixpoint anyway, and
	// past the crossover the delta machinery's per-tuple overhead makes
	// it slower than recomputing. Negative disables incremental
	// maintenance outright.
	Crossover float64
}

const defaultCrossover = 0.3

// Mutation is one EDB tuple-level change. Tuples are owned by the view
// once applied; callers must not mutate them afterwards.
type Mutation struct {
	Rel    string
	Tuple  storage.Tuple
	Delete bool
}

// RefreshStats describes one Refresh call.
type RefreshStats struct {
	// Mode is "noop" (nothing pending), "incremental", or "full".
	Mode string
	// Reason says why a full recompute ran (ineligible program, churn
	// past the crossover, stale after a failed refresh).
	Reason string
	// InsTuples / DelTuples are the batch's net EDB changes after
	// multiset cancellation.
	InsTuples int
	DelTuples int
	// Added / OverDeleted / Rederived count IDB tuples: fresh or
	// revived derivations from the insert pass, kills from the
	// over-delete pass, and revivals from the re-derive pass.
	Added       int
	OverDeleted int
	Rederived   int
	// DeltaTuples is the total IDB delta volume the refresh processed
	// (Added + OverDeleted + Rederived); the service exports it as
	// dcserve_ivm_delta_tuples_total.
	DeltaTuples int
	// FullSlices counts seed slices that degraded to full live
	// snapshots because the delta shared no variable with the fixpoint
	// atom.
	FullSlices int
	// Durations: total, and the three incremental phases.
	Duration    time.Duration
	DelDuration time.Duration
	RedDuration time.Duration
	InsDuration time.Duration
}

// Stats are a view's cumulative counters.
type Stats struct {
	Refreshes   int64
	Incremental int64
	Full        int64
	DeltaTuples int64
	Pending     int
	Stale       bool
	// Ineligible is non-empty when the program is outside the
	// incrementally maintainable fragment (every refresh recomputes).
	Ineligible string
	Last       RefreshStats
}

// View is a materialized IDB fixpoint kept warm across EDB mutations.
// All methods are safe for concurrent use; refreshes serialize on the
// view lock.
type View struct {
	cfg       Config
	crossover float64
	analysis  *pcg.Analysis
	full      *physical.Program
	rw        *rewrite
	insProg   *physical.Program
	delProg   *physical.Program
	redProg   *physical.Program
	reason    string // non-empty: fallback-only view

	mu sync.Mutex
	// fix[pred] is the maintained fixpoint of one IDB predicate; the
	// count lane is the DRed liveness flag.
	fix map[string]*storage.CountedSetRelation
	// mirrors[rel] is the counted multiset mirror of one EDB relation;
	// its live set is the canonical relation contents.
	mirrors map[string]*storage.CountedSetRelation
	// idx caches incremental live indexes per (pred, anchor columns).
	idx map[string]*liveIndex
	// edb holds the deduplicated live snapshots the engine runs over.
	edb map[string][]storage.Tuple
	// base is the view's prepared-base chain; Rebase carries memoized
	// indexes of unmutated relations across refreshes.
	base    *engine.PreparedBase
	pending []Mutation
	dirty   map[string]bool
	stale   bool
	stats   Stats
}

// compileText compiles one program text against the view's schemas.
func compileText(src string, schemas map[string]*storage.Schema, params map[string]physical.Param, syms *storage.SymbolTable) (*physical.Program, *pcg.Analysis, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	pt := make(map[string]storage.Type, len(params))
	for k, p := range params {
		pt[k] = p.Type
	}
	a, err := pcg.Analyze(prog, schemas, pt)
	if err != nil {
		return nil, nil, err
	}
	lp, err := plan.Build(a)
	if err != nil {
		return nil, nil, err
	}
	phys, err := physical.Compile(lp, params, syms)
	if err != nil {
		return nil, nil, err
	}
	return phys, a, nil
}

// New compiles the view's programs and materializes the initial
// fixpoint from the given EDB contents (tuples are deduplicated into
// multiset mirrors; duplicates count as multiplicity).
func New(ctx context.Context, cfg Config, edb map[string][]storage.Tuple) (*View, error) {
	if cfg.Syms == nil {
		cfg.Syms = storage.NewSymbolTable()
	}
	full, a, err := compileText(cfg.Source, cfg.Schemas, cfg.Params, cfg.Syms)
	if err != nil {
		return nil, fmt.Errorf("ivm: compile %s: %w", cfg.Name, err)
	}
	v := &View{
		cfg:       cfg,
		crossover: cfg.Crossover,
		analysis:  a,
		full:      full,
		mirrors:   make(map[string]*storage.CountedSetRelation),
		idx:       make(map[string]*liveIndex),
		edb:       make(map[string][]storage.Tuple),
		dirty:     make(map[string]bool),
	}
	if v.crossover == 0 {
		v.crossover = defaultCrossover
	}
	v.reason = ineligible(a)
	if v.reason == "" {
		v.rw = buildRewrite(a)
		if v.insProg, _, err = compileText(v.rw.Ins.Source, cfg.Schemas, cfg.Params, cfg.Syms); err != nil {
			return nil, fmt.Errorf("ivm: compile insert program for %s: %w", cfg.Name, err)
		}
		if v.delProg, _, err = compileText(v.rw.Del.Source, cfg.Schemas, cfg.Params, cfg.Syms); err != nil {
			return nil, fmt.Errorf("ivm: compile delete program for %s: %w", cfg.Name, err)
		}
		if v.redProg, _, err = compileText(v.rw.Red.Source, cfg.Schemas, cfg.Params, cfg.Syms); err != nil {
			return nil, fmt.Errorf("ivm: compile rederive program for %s: %w", cfg.Name, err)
		}
	}
	v.stats.Ineligible = v.reason

	for rel := range a.EDB {
		sch := cfg.Schemas[rel]
		if sch == nil {
			return nil, fmt.Errorf("ivm: %s: no schema for relation %s", cfg.Name, rel)
		}
		mir := storage.NewCountedSetRelation(sch)
		for _, t := range edb[rel] {
			mir.Add(t)
		}
		v.mirrors[rel] = mir
		v.edb[rel] = mir.LiveSnapshot()
	}
	v.base = engine.NewPreparedBase(cfg.Schemas, v.edb)
	if err := v.materialize(ctx); err != nil {
		return nil, err
	}
	return v, nil
}

// materialize runs the full program over the current snapshots and
// (re)builds the counted fixpoints. Caller holds the lock (or is New).
func (v *View) materialize(ctx context.Context) error {
	opts := v.cfg.Opts
	opts.Base = v.base
	opts.Probers = nil
	res, err := engine.RunContext(ctx, v.full, v.edb, opts)
	if err != nil {
		v.stale = true
		return err
	}
	fix := make(map[string]*storage.CountedSetRelation, len(res.Relations))
	for pred, tuples := range res.Relations {
		sch := v.analysis.Schemas[pred]
		cs := storage.NewCountedSetRelation(sch)
		for _, t := range tuples {
			cs.Add(t)
		}
		fix[pred] = cs
	}
	v.fix = fix
	v.idx = make(map[string]*liveIndex)
	v.stale = false
	return nil
}

// Apply queues mutations; they take effect at the next Refresh.
// Unknown relations are rejected.
func (v *View) Apply(muts []Mutation) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, m := range muts {
		mir := v.mirrors[m.Rel]
		if mir == nil {
			return fmt.Errorf("ivm: %s: relation %s is not part of the view", v.cfg.Name, m.Rel)
		}
		if len(m.Tuple) != mir.Schema().Arity() {
			return fmt.Errorf("ivm: %s: %s arity mismatch: got %d, want %d",
				v.cfg.Name, m.Rel, len(m.Tuple), mir.Schema().Arity())
		}
	}
	v.pending = append(v.pending, muts...)
	return nil
}

// Pending reports queued, not yet refreshed mutations.
func (v *View) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.pending)
}

// Relations lists the view's IDB predicates, sorted.
func (v *View) Relations() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.fix))
	for pred := range v.fix {
		out = append(out, pred)
	}
	sort.Strings(out)
	return out
}

// Relation returns the live tuples of one IDB predicate (a fresh
// slice; tuples alias the view's arenas and must not be mutated).
func (v *View) Relation(pred string) []storage.Tuple {
	v.mu.Lock()
	defer v.mu.Unlock()
	fx := v.fix[pred]
	if fx == nil {
		return nil
	}
	return fx.LiveSnapshot()
}

// EDBRelations lists the extensional relations the view depends on,
// sorted.
func (v *View) EDBRelations() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.mirrors))
	for rel := range v.mirrors {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out
}

// Schema returns the schema of one of the view's relations (IDB or
// EDB), nil when unknown.
func (v *View) Schema(pred string) *storage.Schema {
	return v.analysis.Schemas[pred]
}

// EDBRelation returns the live tuples of one mirrored EDB relation.
func (v *View) EDBRelation(rel string) []storage.Tuple {
	v.mu.Lock()
	defer v.mu.Unlock()
	mir := v.mirrors[rel]
	if mir == nil {
		return nil
	}
	return mir.LiveSnapshot()
}

// Stats returns the cumulative counters.
func (v *View) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	st := v.stats
	st.Pending = len(v.pending)
	st.Stale = v.stale
	return st
}

// index returns (building if needed) the live index of pred on cols.
func (v *View) index(pred string, cols []int) *liveIndex {
	key := fmt.Sprintf("%s|%v", pred, cols)
	ix := v.idx[key]
	if ix == nil || ix.rel != v.fix[pred] {
		ix = newLiveIndex(v.fix[pred], cols)
		v.idx[key] = ix
	}
	return ix
}

// computeSlice materializes one seed slice: the live tuples of the
// spec's predicate joining the batch on the anchor columns.
func (v *View) computeSlice(spec sliceSpec, src []storage.Tuple, st *RefreshStats) []storage.Tuple {
	fx := v.fix[spec.Pred]
	if fx == nil || len(src) == 0 {
		return nil
	}
	if len(spec.Anchor) == 0 {
		st.FullSlices++
		return fx.LiveSnapshot()
	}
	ix := v.index(spec.Pred, spec.Anchor)
	ix.extend()
	seen := make([]uint64, (fx.Len()+63)/64)
	key := make([]storage.Value, len(spec.SrcCols))
	var out []storage.Tuple
	for _, t := range src {
		for i, c := range spec.SrcCols {
			key[i] = t[c]
		}
		ix.probe(key, func(ord int32, tt storage.Tuple) {
			if seen[ord/64]&(1<<(ord%64)) != 0 {
				return
			}
			seen[ord/64] |= 1 << (ord % 64)
			out = append(out, tt)
		})
	}
	return out
}

// drain applies pending mutations to the mirrors and returns the
// batch's net set-level deltas (tuples that crossed the live boundary).
func (v *View) drain() (netIns, netDel map[string][]storage.Tuple) {
	type touchRel struct {
		set     *storage.SetRelation
		wasLive []bool
	}
	touched := map[string]*touchRel{}
	for _, m := range v.pending {
		mir := v.mirrors[m.Rel]
		tr := touched[m.Rel]
		if tr == nil {
			tr = &touchRel{set: storage.NewSetRelation(mir.Schema())}
			touched[m.Rel] = tr
		}
		if _, added := tr.set.InsertHashed(m.Tuple.Hash(), m.Tuple); added {
			tr.wasLive = append(tr.wasLive, mir.ContainsLive(m.Tuple))
		}
		if m.Delete {
			mir.Remove(m.Tuple)
		} else {
			mir.Add(m.Tuple)
		}
		v.dirty[m.Rel] = true
	}
	v.pending = v.pending[:0]
	netIns, netDel = map[string][]storage.Tuple{}, map[string][]storage.Tuple{}
	for rel, tr := range touched {
		mir := v.mirrors[rel]
		for i := 0; i < tr.set.Len(); i++ {
			t := tr.set.At(i)
			now := mir.ContainsLive(t)
			switch {
			case tr.wasLive[i] && !now:
				netDel[rel] = append(netDel[rel], t)
			case !tr.wasLive[i] && now:
				netIns[rel] = append(netIns[rel], t)
			}
		}
	}
	return netIns, netDel
}

// Refresh brings the view up to date with every queued mutation. Small
// batches run the delta pipeline (over-delete → re-derive → insert);
// ineligible programs, stale views, and batches past the churn
// crossover recompute from scratch. On error (including context
// cancellation) the view is marked stale and the next Refresh
// recomputes; queued mutations are never lost.
func (v *View) Refresh(ctx context.Context) (RefreshStats, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	start := time.Now()
	netIns, netDel := v.drain()
	var st RefreshStats
	for _, ts := range netIns {
		st.InsTuples += len(ts)
	}
	for _, ts := range netDel {
		st.DelTuples += len(ts)
	}
	if st.InsTuples+st.DelTuples == 0 && !v.stale {
		st.Mode = "noop"
		st.Duration = time.Since(start)
		v.recordRefresh(st)
		return st, nil
	}

	// Churn over the mutated relations' pre-batch live sizes.
	preLive := 0
	for rel := range v.dirty {
		preLive += v.mirrors[rel].Live() - len(netIns[rel]) + len(netDel[rel])
	}
	churn := float64(st.InsTuples+st.DelTuples) / float64(max(1, preLive))

	reason := ""
	switch {
	case v.reason != "":
		reason = v.reason
	case v.crossover < 0:
		reason = "incremental maintenance disabled"
	case v.stale:
		reason = "view stale after a failed refresh"
	case churn > v.crossover:
		reason = fmt.Sprintf("churn %.2f past crossover %.2f", churn, v.crossover)
	}
	if reason != "" {
		st.Mode, st.Reason = "full", reason
		err := v.recompute(ctx)
		st.Duration = time.Since(start)
		if err != nil {
			return st, err
		}
		v.recordRefresh(st)
		return st, nil
	}

	st.Mode = "incremental"
	if err := v.incremental(ctx, netIns, netDel, &st); err != nil {
		if errors.Is(err, errOverDeleteBudget) {
			// The DEL run outran its budget before touching any view
			// state: counting DRed was heading for recompute-scale work
			// at delta-kernel prices, so recompute directly instead.
			st.Mode, st.Reason = "full", "over-delete outran its budget"
			st.OverDeleted, st.Rederived = 0, 0
			if rerr := v.recompute(ctx); rerr != nil {
				v.stale = true
				st.Duration = time.Since(start)
				return st, rerr
			}
			st.Duration = time.Since(start)
			v.recordRefresh(st)
			return st, nil
		}
		v.stale = true
		st.Duration = time.Since(start)
		return st, err
	}
	st.DeltaTuples = st.Added + st.OverDeleted + st.Rederived
	st.Duration = time.Since(start)
	v.recordRefresh(st)
	return st, nil
}

func (v *View) recordRefresh(st RefreshStats) {
	v.stats.Refreshes++
	switch st.Mode {
	case "incremental":
		v.stats.Incremental++
	case "full":
		v.stats.Full++
	}
	v.stats.DeltaTuples += int64(st.DeltaTuples)
	v.stats.Last = st
}

// recompute rebuilds snapshots for dirty relations from the mirrors,
// rebases the prepared base (unmutated relations keep their memoized
// indexes), and re-runs the full program.
func (v *View) recompute(ctx context.Context) error {
	edb := make(map[string][]storage.Tuple, len(v.edb))
	for rel, ts := range v.edb {
		if v.dirty[rel] {
			edb[rel] = v.mirrors[rel].LiveSnapshot()
		} else {
			edb[rel] = ts
		}
	}
	base := v.base.Rebase(v.cfg.Schemas, edb, v.dirty)
	old := v.base
	v.base, v.edb = base, edb
	if err := v.materialize(ctx); err != nil {
		v.base = old // keep index reuse possible; snapshots stay current
		return err
	}
	v.dirty = make(map[string]bool)
	return nil
}

// errOverDeleteBudget aborts an incremental refresh whose DEL run
// outgrew its budget; Refresh catches it and recomputes instead. The
// abort happens before any Kill, so view state is untouched.
var errOverDeleteBudget = errors.New("ivm: over-delete outran its budget")

// overDeleteBudget caps the DEL run's derived tuples. Deleting inside
// a dense strongly connected component over-deletes a fixpoint-sized
// support set and re-derives most of it — strictly slower than the
// recompute it is meant to avoid. Aborting once the over-delete set
// grows past a fraction of the maintained fixpoint turns that cliff
// into one bounded probe plus a recompute.
func (v *View) overDeleteBudget(del int) int64 {
	live := 0
	for _, fx := range v.fix {
		live += fx.Live()
	}
	return int64(live/8 + 4*del + 256)
}

// incremental runs the delete → re-derive → insert pipeline for one
// net batch. Caller holds the lock.
func (v *View) incremental(ctx context.Context, netIns, netDel map[string][]storage.Tuple, st *RefreshStats) error {
	// Mid snapshots: post-delete, pre-insert.
	mid := make(map[string][]storage.Tuple)
	final := make(map[string][]storage.Tuple)
	for rel := range v.dirty {
		cur := v.edb[rel]
		if dels := netDel[rel]; len(dels) > 0 {
			gone := storage.NewSetRelation(v.mirrors[rel].Schema())
			for _, t := range dels {
				gone.Insert(t)
			}
			kept := make([]storage.Tuple, 0, len(cur)-len(dels))
			for _, t := range cur {
				if !gone.Contains(t) {
					kept = append(kept, t)
				}
			}
			mid[rel] = kept
		} else {
			mid[rel] = cur
		}
		fin := make([]storage.Tuple, 0, len(mid[rel])+len(netIns[rel]))
		fin = append(fin, mid[rel]...)
		fin = append(fin, netIns[rel]...)
		final[rel] = fin
	}

	// Over-delete + re-derive.
	if st.DelTuples > 0 {
		phase := time.Now()
		rels := make(map[string]engine.DerivedRel, 2*len(v.edb))
		for rel := range v.edb {
			rels[rel+oldSuffix] = engine.DerivedRel{SameAs: rel}
			if m, ok := mid[rel]; ok {
				rels[rel+newSuffix] = engine.DerivedRel{Tuples: m}
			} else {
				rels[rel+newSuffix] = engine.DerivedRel{SameAs: rel}
			}
		}
		derived := v.base.Derive(rels)
		edb := make(map[string][]storage.Tuple)
		for rel, ts := range netDel {
			edb[rel+delSuffix] = ts
		}
		for _, spec := range v.rw.Del.Slices {
			rel := spec.Src[:len(spec.Src)-len(delSuffix)]
			edb[spec.Name] = v.computeSlice(spec, netDel[rel], st)
		}
		opts := v.cfg.Opts
		opts.Base = derived
		if b := v.overDeleteBudget(st.DelTuples); opts.MaxTuples == 0 || b < opts.MaxTuples {
			opts.MaxTuples = b
		}
		res, err := engine.RunContext(ctx, v.delProg, edb, opts)
		if err != nil {
			if errors.Is(err, engine.ErrBudgetExceeded) {
				return errOverDeleteBudget
			}
			return err
		}
		opts.MaxTuples = v.cfg.Opts.MaxTuples
		killed := make(map[string][]storage.Tuple)
		for dname, orig := range v.rw.Del.Deltas {
			fx := v.fix[orig]
			for _, t := range res.Relations[dname] {
				if fx.Kill(t) {
					killed[orig] = append(killed[orig], t)
					st.OverDeleted++
				}
			}
		}
		st.DelDuration = time.Since(phase)

		if st.OverDeleted > 0 {
			phase = time.Now()
			edb := make(map[string][]storage.Tuple)
			for orig, ts := range killed {
				edb[orig+delsetSuffix] = ts
			}
			for _, spec := range v.rw.Red.Slices {
				orig := spec.Src[:len(spec.Src)-len(delsetSuffix)]
				edb[spec.Name] = v.computeSlice(spec, killed[orig], st)
			}
			res, err := engine.RunContext(ctx, v.redProg, edb, opts)
			if err != nil {
				return err
			}
			for rname, orig := range v.rw.Red.Deltas {
				fx := v.fix[orig]
				for _, t := range res.Relations[rname] {
					if fx.Revive(t) {
						st.Rederived++
					}
				}
			}
			st.RedDuration = time.Since(phase)
		}
	}

	// Rebase onto the final snapshots; unmutated relations keep their
	// settled indexes.
	finalEDB := make(map[string][]storage.Tuple, len(v.edb))
	for rel, ts := range v.edb {
		if f, ok := final[rel]; ok {
			finalEDB[rel] = f
		} else {
			finalEDB[rel] = ts
		}
	}
	base := v.base.Rebase(v.cfg.Schemas, finalEDB, v.dirty)

	// Insert pass: net-new tuples seed the semi-naive delta machinery;
	// the live guard probes the maintained fixpoint via the prober
	// hook, so already-live derivations neither re-emit nor propagate.
	if st.InsTuples > 0 {
		phase := time.Now()
		edb := make(map[string][]storage.Tuple)
		for rel, ts := range netIns {
			edb[rel+insSuffix] = ts
		}
		for _, spec := range v.rw.Ins.Slices {
			rel := spec.Src[:len(spec.Src)-len(insSuffix)]
			edb[spec.Name] = v.computeSlice(spec, netIns[rel], st)
		}
		opts := v.cfg.Opts
		opts.Base = base
		opts.Probers = make(map[string]engine.MembershipProber, len(v.fix))
		for pred, fx := range v.fix {
			opts.Probers[pred+liveSuffix] = fx
		}
		res, err := engine.RunContext(ctx, v.insProg, edb, opts)
		if err != nil {
			return err
		}
		for dname, orig := range v.rw.Ins.Deltas {
			fx := v.fix[orig]
			for _, t := range res.Relations[dname] {
				if _, fresh, revived := fx.Add(t); fresh || revived {
					st.Added++
				} else {
					// Guarded program should not re-derive live tuples;
					// tolerate (set semantics) but do not count.
					fx.Remove(t)
				}
			}
		}
		st.InsDuration = time.Since(phase)
	}

	v.base = base
	v.edb = finalEDB
	v.dirty = make(map[string]bool)
	return nil
}
