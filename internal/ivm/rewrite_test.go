package ivm

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/storage"
)

func intSchema(name string, cols ...string) *storage.Schema {
	cs := make([]storage.Column, len(cols))
	for i, c := range cols {
		cs[i] = storage.Column{Name: c, Type: storage.TInt}
	}
	return storage.NewSchema(name, cs...)
}

func analyze(t testing.TB, src string, schemas map[string]*storage.Schema) *pcg.Analysis {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a, err := pcg.Analyze(prog, schemas, nil)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

const tcSrc = `
	tc(X, Y) :- arc(X, Y).
	tc(X, Y) :- tc(X, Z), arc(Z, Y).
`

func tcSchemas() map[string]*storage.Schema {
	return map[string]*storage.Schema{"arc": intSchema("arc", "x", "y")}
}

// TestRewriteTC pins the generated delta programs for transitive
// closure: the insertion program seeds semi-naive evaluation from the
// batch and an anchored old-fixpoint slice under the live guard, the
// delete program over-deletes against the old snapshot with an
// edge-survives prune guard, and the re-derive program restricts
// re-evaluation to the killed set.
func TestRewriteTC(t *testing.T) {
	a := analyze(t, tcSrc, tcSchemas())
	if reason := ineligible(a); reason != "" {
		t.Fatalf("tc should be eligible, got %q", reason)
	}
	rw := buildRewrite(a)

	wantIns := []string{
		"tc__ivmd(X, Y) :- arc__ivmins(X, Y), !tc__ivmlive(X, Y).",
		"tc__ivmd(X, Y) :- arc__ivmins(Z, Y), tc__ivmsl0(X, Z), !tc__ivmlive(X, Y).",
		"tc__ivmd(X, Y) :- tc__ivmd(X, Z), arc(Z, Y), !tc__ivmlive(X, Y).",
	}
	for _, w := range wantIns {
		if !strings.Contains(rw.Ins.Source, w) {
			t.Errorf("ins program missing %q:\n%s", w, rw.Ins.Source)
		}
	}
	// Exactly one slice: old tc anchored on its second column joining
	// the inserted arc's first column.
	if len(rw.Ins.Slices) != 1 {
		t.Fatalf("ins slices = %+v, want 1", rw.Ins.Slices)
	}
	sl := rw.Ins.Slices[0]
	if sl.Pred != "tc" || sl.Src != "arc__ivmins" ||
		len(sl.Anchor) != 1 || sl.Anchor[0] != 1 ||
		len(sl.SrcCols) != 1 || sl.SrcCols[0] != 0 {
		t.Fatalf("ins slice = %+v", sl)
	}
	if rw.Ins.Deltas["tc__ivmd"] != "tc" {
		t.Fatalf("ins deltas = %v", rw.Ins.Deltas)
	}

	wantDel := []string{
		"tc__ivmdel(X, Y) :- arc__ivmdel(X, Y), !arc__ivmnew(X, Y).",
		"tc__ivmdel(X, Y) :- arc__ivmdel(Z, Y), tc__ivmsl0(X, Z), !arc__ivmnew(X, Y).",
		"tc__ivmdel(X, Y) :- tc__ivmdel(X, Z), arc__ivmold(Z, Y), !arc__ivmnew(X, Y).",
	}
	for _, w := range wantDel {
		if !strings.Contains(rw.Del.Source, w) {
			t.Errorf("del program missing %q:\n%s", w, rw.Del.Source)
		}
	}

	wantRed := []string{
		"tc__ivmred(X, Y) :- tc__ivmdelset(X, Y), arc__ivmnew(X, Y).",
		"tc__ivmred(X, Y) :- tc__ivmdelset(X, Y), tc__ivmsl0(X, Z), arc__ivmnew(Z, Y).",
		"tc__ivmred(X, Y) :- tc__ivmdelset(X, Y), tc__ivmred(X, Z), arc__ivmnew(Z, Y).",
	}
	for _, w := range wantRed {
		if !strings.Contains(rw.Red.Source, w) {
			t.Errorf("red program missing %q:\n%s", w, rw.Red.Source)
		}
	}
	// The kept-fixpoint slice anchors on the shared head variable X.
	rsl := rw.Red.Slices[0]
	if rsl.Pred != "tc" || rsl.Src != "tc__ivmdelset" ||
		len(rsl.Anchor) != 1 || rsl.Anchor[0] != 0 || rsl.SrcCols[0] != 0 {
		t.Fatalf("red slice = %+v", rsl)
	}

	// Each generated program must itself compile.
	syms := storage.NewSymbolTable()
	for name, src := range map[string]string{
		"ins": rw.Ins.Source, "del": rw.Del.Source, "red": rw.Red.Source,
	} {
		if _, _, err := compileText(src, tcSchemas(), nil, syms); err != nil {
			t.Errorf("%s program does not compile: %v\n%s", name, err, src)
		}
	}
}

// TestRewriteSameGeneration pins the eligibility gate of the
// same-generation query: two IDB atoms in one rule are outside the
// maintainable fragment.
func TestIneligible(t *testing.T) {
	cases := []struct {
		name, src string
		schemas   map[string]*storage.Schema
		want      string
	}{
		{
			"multi-idb",
			`sg(X, Y) :- arc(P, X), arc(Q, Y), sg(P, Q).
			 sg2(X, Y) :- sg(X, Z), sg(Z, Y).`,
			tcSchemas(),
			"multiple IDB atoms",
		},
		{
			"negation",
			`t(X, Y) :- arc(X, Y), !blocked(X, Y).`,
			map[string]*storage.Schema{
				"arc":     intSchema("arc", "x", "y"),
				"blocked": intSchema("blocked", "x", "y"),
			},
			"negation",
		},
		{
			"namespace",
			`t__ivmfoo(X, Y) :- arc(X, Y).`,
			tcSchemas(),
			"__ivm",
		},
	}
	for _, c := range cases {
		a := analyze(t, c.src, c.schemas)
		got := ineligible(a)
		if !strings.Contains(got, c.want) {
			t.Errorf("%s: ineligible = %q, want substring %q", c.name, got, c.want)
		}
	}
}

// TestPruneGuards pins the guard-extraction rules: constants are kept
// verbatim, non-variable heads and projected-away body variables
// disqualify a rule.
func TestPruneGuards(t *testing.T) {
	schemas := map[string]*storage.Schema{
		"e": intSchema("e", "x", "y"),
		"r": intSchema("r", "x", "y", "z"),
	}
	a := analyze(t, `
		t(X, Y) :- e(X, Y).
		t(X, Y) :- r(X, Y, 7).
		t(X, Y) :- t(X, Z), e(Z, Y).
	`, schemas)
	guards := pruneGuards(a, "t")
	if len(guards) != 2 {
		t.Fatalf("got %d guards, want 2: %+v", len(guards), guards)
	}
	if guards[0].rel != "e" || guards[1].rel != "r" {
		t.Fatalf("guard rels = %s, %s", guards[0].rel, guards[1].rel)
	}
	// r's third argument is the constant 7.
	g := guards[1]
	if len(g.args) != 3 || g.args[2].headPos != -1 {
		t.Fatalf("constant guard arg not preserved: %+v", g.args)
	}

	// A projection rule contributes no guard.
	a2 := analyze(t, `
		p(X) :- r(X, Y, Z).
		p(X) :- p(Y), e(Y, X).
	`, schemas)
	if gs := pruneGuards(a2, "p"); len(gs) != 0 {
		t.Fatalf("projection rule yielded guards: %+v", gs)
	}

	// A constant head argument disqualifies the rule.
	a3 := analyze(t, `
		q(X, 1) :- e(X, _).
		q(X, Y) :- q(X, Z), e(Z, Y).
	`, schemas)
	if gs := pruneGuards(a3, "q"); len(gs) != 0 {
		t.Fatalf("constant-head rule yielded guards: %+v", gs)
	}
}
