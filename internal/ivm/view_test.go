package ivm

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/coord"
	"repro/internal/engine"
	"repro/internal/storage"
)

func rows(ts []storage.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = fmt.Sprint([]storage.Value(t))
	}
	sort.Strings(out)
	return out
}

// coldFixpoint recomputes the fixpoint from scratch for comparison.
func coldFixpoint(t testing.TB, cfg Config, edb map[string][]storage.Tuple, pred string) []string {
	t.Helper()
	prog, _, err := compileText(cfg.Source, cfg.Schemas, cfg.Params, cfg.Syms)
	if err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	res, err := engine.Run(prog, edb, cfg.Opts)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	return rows(res.Relations[pred])
}

func pair(a, b int64) storage.Tuple {
	return storage.Tuple{storage.IntVal(a), storage.IntVal(b)}
}

func tcConfig() Config {
	return Config{
		Name:    "tc",
		Source:  tcSrc,
		Schemas: tcSchemas(),
		Syms:    storage.NewSymbolTable(),
		Opts:    engine.Options{Workers: 2},
	}
}

// checkAgainstCold asserts the view's maintained fixpoint equals a cold
// recompute over the view's own EDB state.
func checkAgainstCold(t testing.TB, v *View, cfg Config, pred string) {
	t.Helper()
	edb := map[string][]storage.Tuple{}
	for rel := range cfg.Schemas {
		edb[rel] = v.EDBRelation(rel)
	}
	want := coldFixpoint(t, cfg, edb, pred)
	got := rows(v.Relation(pred))
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows maintained, %d cold", pred, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: maintained %s, cold %s", pred, i, got[i], want[i])
		}
	}
}

func TestViewInsertOnly(t *testing.T) {
	cfg := tcConfig()
	cfg.Crossover = 0.9 // the graph is tiny; keep single-edge batches incremental
	ctx := context.Background()
	v, err := New(ctx, cfg, map[string][]storage.Tuple{
		"arc": {pair(1, 2), pair(2, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(v.Relation("tc")); len(got) != 3 {
		t.Fatalf("initial tc = %v", got)
	}

	// Single-edge insert bridging to a new chain.
	if err := v.Apply([]Mutation{{Rel: "arc", Tuple: pair(3, 4)}}); err != nil {
		t.Fatal(err)
	}
	st, err := v.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "incremental" {
		t.Fatalf("mode = %s (%s), want incremental", st.Mode, st.Reason)
	}
	if st.InsTuples != 1 || st.Added != 3 {
		t.Fatalf("stats = %+v, want 1 net insert deriving 3 new tc tuples", st)
	}
	checkAgainstCold(t, v, cfg, "tc")

	// Duplicate insert of an existing edge is a multiset no-op.
	if err := v.Apply([]Mutation{{Rel: "arc", Tuple: pair(1, 2)}}); err != nil {
		t.Fatal(err)
	}
	st, err = v.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "noop" {
		t.Fatalf("duplicate insert mode = %s, want noop", st.Mode)
	}
}

func TestViewDeleteRederive(t *testing.T) {
	cfg := tcConfig()
	ctx := context.Background()
	// Diamond: 1→2→4 and 1→3→4, then 4→5. Deleting 2→4 must keep
	// 1⇝4 and 1⇝5 alive through the 3-path (DRed re-derivation).
	v, err := New(ctx, cfg, map[string][]storage.Tuple{
		"arc": {pair(1, 2), pair(2, 4), pair(1, 3), pair(3, 4), pair(4, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Apply([]Mutation{{Rel: "arc", Tuple: pair(2, 4), Delete: true}}); err != nil {
		t.Fatal(err)
	}
	st, err := v.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "incremental" {
		t.Fatalf("mode = %s (%s), want incremental", st.Mode, st.Reason)
	}
	if st.OverDeleted == 0 || st.Rederived == 0 {
		t.Fatalf("stats = %+v, want both over-deletions and re-derivations", st)
	}
	checkAgainstCold(t, v, cfg, "tc")
	got := rows(v.Relation("tc"))
	want := rows([]storage.Tuple{
		pair(1, 2), pair(1, 3), pair(1, 4), pair(1, 5),
		pair(3, 4), pair(3, 5), pair(4, 5),
	})
	if len(got) != len(want) {
		t.Fatalf("tc = %v, want %v", got, want)
	}

	// Deleting an unknown tuple is a no-op.
	if err := v.Apply([]Mutation{{Rel: "arc", Tuple: pair(9, 9), Delete: true}}); err != nil {
		t.Fatal(err)
	}
	if st, err = v.Refresh(ctx); err != nil || st.Mode != "noop" {
		t.Fatalf("ghost delete: mode=%s err=%v", st.Mode, err)
	}
}

func TestViewMixedBatchAndRevive(t *testing.T) {
	cfg := tcConfig()
	cfg.Crossover = 10 // keep even large relative batches incremental
	ctx := context.Background()
	v, err := New(ctx, cfg, map[string][]storage.Tuple{
		"arc": {pair(1, 2), pair(2, 3), pair(3, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One batch: delete 2→3, insert 2→5 and 5→3 (reroute), plus a
	// delete/insert pair of the same tuple that must cancel out.
	err = v.Apply([]Mutation{
		{Rel: "arc", Tuple: pair(2, 3), Delete: true},
		{Rel: "arc", Tuple: pair(2, 5)},
		{Rel: "arc", Tuple: pair(5, 3)},
		{Rel: "arc", Tuple: pair(3, 4), Delete: true},
		{Rel: "arc", Tuple: pair(3, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := v.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "incremental" {
		t.Fatalf("mode = %s (%s)", st.Mode, st.Reason)
	}
	if st.InsTuples != 2 || st.DelTuples != 1 {
		t.Fatalf("net deltas = +%d/-%d, want +2/-1", st.InsTuples, st.DelTuples)
	}
	checkAgainstCold(t, v, cfg, "tc")
	// 1⇝3, 1⇝4 etc. survived the reroute.
	got := rows(v.Relation("tc"))
	for _, must := range []string{rows([]storage.Tuple{pair(1, 4)})[0], rows([]storage.Tuple{pair(1, 3)})[0]} {
		found := false
		for _, g := range got {
			if g == must {
				found = true
			}
		}
		if !found {
			t.Fatalf("tc lost %s across reroute: %v", must, got)
		}
	}
}

func TestViewCrossoverFallback(t *testing.T) {
	cfg := tcConfig()
	ctx := context.Background()
	v, err := New(ctx, cfg, map[string][]storage.Tuple{
		"arc": {pair(1, 2), pair(2, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Churn 2/2 = 1.0 > 0.3 default crossover.
	err = v.Apply([]Mutation{
		{Rel: "arc", Tuple: pair(1, 2), Delete: true},
		{Rel: "arc", Tuple: pair(7, 8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := v.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "full" || st.Reason == "" {
		t.Fatalf("mode = %s (%q), want full with a churn reason", st.Mode, st.Reason)
	}
	checkAgainstCold(t, v, cfg, "tc")
	if s := v.Stats(); s.Full != 1 || s.Refreshes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestViewIneligibleFallsBack(t *testing.T) {
	cfg := Config{
		Name:   "guarded",
		Source: `t(X, Y) :- arc(X, Y), !blocked(X, Y).`,
		Schemas: map[string]*storage.Schema{
			"arc":     intSchema("arc", "x", "y"),
			"blocked": intSchema("blocked", "x", "y"),
		},
		Syms: storage.NewSymbolTable(),
		Opts: engine.Options{Workers: 2},
	}
	ctx := context.Background()
	v, err := New(ctx, cfg, map[string][]storage.Tuple{
		"arc":     {pair(1, 2), pair(2, 3)},
		"blocked": {pair(2, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Stats().Ineligible == "" {
		t.Fatal("negation program should be ineligible")
	}
	if err := v.Apply([]Mutation{{Rel: "blocked", Tuple: pair(2, 3), Delete: true}}); err != nil {
		t.Fatal(err)
	}
	st, err := v.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "full" {
		t.Fatalf("mode = %s, want full", st.Mode)
	}
	checkAgainstCold(t, v, cfg, "t")
}

func TestViewCancellationRecovers(t *testing.T) {
	cfg := tcConfig()
	ctx := context.Background()
	v, err := New(ctx, cfg, map[string][]storage.Tuple{
		"arc": {pair(1, 2), pair(2, 3), pair(3, 4), pair(4, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Apply([]Mutation{{Rel: "arc", Tuple: pair(5, 6)}}); err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := v.Refresh(canceled); err == nil {
		t.Fatal("refresh under a canceled context should fail")
	}
	if s := v.Stats(); !s.Stale {
		t.Fatalf("view should be stale after a failed refresh: %+v", s)
	}
	// The mutation was drained into the mirrors; recovery recomputes.
	st, err := v.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "full" {
		t.Fatalf("recovery mode = %s (%s), want full", st.Mode, st.Reason)
	}
	if s := v.Stats(); s.Stale {
		t.Fatal("view still stale after successful recovery")
	}
	checkAgainstCold(t, v, cfg, "tc")
}

// TestViewRandomizedDifferential fuzzes mutation batches over a random
// graph and checks the maintained fixpoint equals a cold recompute
// after every refresh, across strategies.
func TestViewRandomizedDifferential(t *testing.T) {
	for _, strat := range []coord.Kind{coord.Global, coord.SSP, coord.DWS} {
		strat := strat
		t.Run(fmt.Sprint(strat), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			cfg := tcConfig()
			cfg.Crossover = 0.9
			cfg.Opts = engine.Options{Workers: 3, Strategy: strat, BatchSize: 8}
			const nodes = 24
			var arcs []storage.Tuple
			for i := 0; i < 40; i++ {
				arcs = append(arcs, pair(rng.Int63n(nodes), rng.Int63n(nodes)))
			}
			ctx := context.Background()
			v, err := New(ctx, cfg, map[string][]storage.Tuple{"arc": arcs})
			if err != nil {
				t.Fatal(err)
			}
			incr := 0
			for round := 0; round < 12; round++ {
				n := 1 + rng.Intn(4)
				var muts []Mutation
				for i := 0; i < n; i++ {
					mut := Mutation{Rel: "arc", Tuple: pair(rng.Int63n(nodes), rng.Int63n(nodes))}
					if live := v.EDBRelation("arc"); rng.Intn(2) == 0 && len(live) > 0 {
						mut = Mutation{Rel: "arc", Tuple: live[rng.Intn(len(live))], Delete: true}
					}
					muts = append(muts, mut)
				}
				if err := v.Apply(muts); err != nil {
					t.Fatal(err)
				}
				st, err := v.Refresh(ctx)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if st.Mode == "incremental" {
					incr++
				}
				checkAgainstCold(t, v, cfg, "tc")
			}
			if incr == 0 {
				t.Fatal("no round exercised the incremental path")
			}
		})
	}
}
