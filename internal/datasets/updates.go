package datasets

import "math/rand"

// UpdateOp is one step of an update stream: an edge inserted into or
// removed from an evolving graph.
type UpdateOp struct {
	Edge   Edge
	Delete bool
}

// UpdateStream generates a deterministic insert/delete stream over a
// base edge set, the workload that drives incremental view
// maintenance: each op is an insertion with probability insFrac
// (clamped to [0, 1]) and a deletion otherwise.
//
// Insertions draw fresh edges the same way the skewed generators do —
// Zipf-distributed sources with the given exponent when exponent > 1,
// uniform endpoints otherwise — over the vertex space [0, n), re-drawn
// until they miss the currently live edge set, so a hub keeps
// accumulating out-edges across the stream exactly as it does in the
// base graph. Deletions remove an edge chosen uniformly from the live
// set (base edges and earlier insertions that still survive), so the
// stream never issues a ghost delete; when the live set is empty the
// op becomes an insertion.
func UpdateStream(base []Edge, n int64, ops int, insFrac, exponent float64, seed int64) []UpdateOp {
	if insFrac < 0 {
		insFrac = 0
	}
	if insFrac > 1 {
		insFrac = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if exponent > 1 && n > 1 {
		zipf = rand.NewZipf(rng, exponent, 1, uint64(n-1))
	}
	draw := func() Edge {
		for {
			var src int64
			if zipf != nil {
				src = int64(zipf.Uint64())
			} else {
				src = rng.Int63n(n)
			}
			e := Edge{src, rng.Int63n(n)}
			if e.Src != e.Dst {
				return e
			}
		}
	}

	// The live set doubles as a uniform sampler: live lists the edges,
	// pos maps each edge to its slot so deletion is a swap-remove.
	live := make([]Edge, len(base))
	copy(live, base)
	pos := make(map[Edge]int, len(base))
	for i, e := range live {
		pos[e] = i
	}

	out := make([]UpdateOp, 0, ops)
	for len(out) < ops {
		if rng.Float64() < insFrac || len(live) == 0 {
			e := draw()
			if _, dup := pos[e]; dup {
				continue
			}
			pos[e] = len(live)
			live = append(live, e)
			out = append(out, UpdateOp{Edge: e})
		} else {
			i := rng.Intn(len(live))
			e := live[i]
			last := len(live) - 1
			live[i] = live[last]
			pos[live[i]] = i
			live = live[:last]
			delete(pos, e)
			out = append(out, UpdateOp{Edge: e, Delete: true})
		}
	}
	return out
}

// ApplyUpdates folds a stream over a base edge set and returns the
// resulting live edges (order unspecified) — the ground truth an
// incrementally maintained view must converge to.
func ApplyUpdates(base []Edge, ops []UpdateOp) []Edge {
	set := make(map[Edge]bool, len(base)+len(ops))
	for _, e := range base {
		set[e] = true
	}
	for _, op := range ops {
		if op.Delete {
			delete(set, op.Edge)
		} else {
			set[op.Edge] = true
		}
	}
	out := make([]Edge, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	return out
}
