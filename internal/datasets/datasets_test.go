package datasets

import (
	"sort"
	"testing"
)

func TestRMATDeterministicAndSized(t *testing.T) {
	a := RMAT(1024, 5000, 1)
	b := RMAT(1024, 5000, 1)
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RMAT not deterministic for equal seeds")
		}
	}
	c := RMAT(1024, 5000, 2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical graphs")
	}
	for _, e := range a {
		if e.Src < 0 || e.Src >= 1024 || e.Dst < 0 || e.Dst >= 1024 {
			t.Fatalf("edge out of range: %v", e)
		}
	}
}

func TestRMATIsSkewed(t *testing.T) {
	edges := RMATn(4096, 3)
	deg := map[int64]int{}
	for _, e := range edges {
		deg[e.Src]++
	}
	var degs []int
	for _, d := range deg {
		degs = append(degs, d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	// Power-law-ish: the top 1% of vertices should own far more than
	// 1% of the edges.
	top := 0
	for i := 0; i < len(degs)/100+1; i++ {
		top += degs[i]
	}
	if float64(top) < 0.05*float64(len(edges)) {
		t.Fatalf("degree distribution too flat: top 1%% holds %d of %d", top, len(edges))
	}
}

func TestGnp(t *testing.T) {
	edges := Gnp(100, 500, 1)
	if len(edges) != 500 {
		t.Fatalf("m = %d", len(edges))
	}
	seen := map[Edge]bool{}
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatal("self loop in Gnp")
		}
		if seen[e] {
			t.Fatal("duplicate edge")
		}
		seen[e] = true
	}
	g := G10K(0.05, 1)
	if len(g) == 0 {
		t.Fatal("G10K empty")
	}
}

func TestTreeShape(t *testing.T) {
	edges := Tree(5, 2, 4, 1)
	// A tree has exactly |V|-1 edges and no vertex has two parents.
	parent := map[int64]int64{}
	for _, e := range edges {
		if p, ok := parent[e.Dst]; ok {
			t.Fatalf("vertex %d has parents %d and %d", e.Dst, p, e.Src)
		}
		parent[e.Dst] = e.Src
	}
	if _, ok := parent[0]; ok {
		t.Fatal("root has a parent")
	}
	// Depth of any leaf ≤ height.
	depth := func(v int64) int {
		d := 0
		for v != 0 {
			v = parent[v]
			d++
		}
		return d
	}
	for v := range parent {
		if depth(v) > 5 {
			t.Fatalf("vertex %d deeper than height", v)
		}
	}
}

func TestNTree(t *testing.T) {
	bom := NTree(2000, 1)
	if bom.Parts < 1000 {
		t.Fatalf("parts = %d", bom.Parts)
	}
	// Every assembled part is a parent; every basic part has days in
	// [1,100]; internal and leaf sets are consistent: a part is either
	// assembled from subparts or basic (leaves), and every part is
	// reachable from the root.
	hasChild := map[int64]bool{}
	child := map[int64]bool{}
	for _, t2 := range bom.Assbl {
		hasChild[t2[0].Int()] = true
		child[t2[1].Int()] = true
	}
	for _, b := range bom.Basic {
		d := b[1].Int()
		if d < 1 || d > 100 {
			t.Fatalf("days = %d", d)
		}
		if hasChild[b[0].Int()] {
			t.Fatalf("part %d is both assembled and basic", b[0].Int())
		}
	}
	// Every part appearing as a child or parent that is not assembled
	// must be basic.
	basic := map[int64]bool{}
	for _, b := range bom.Basic {
		basic[b[0].Int()] = true
	}
	for c := range child {
		if !hasChild[c] && !basic[c] {
			t.Fatalf("leaf part %d has no basic delivery time", c)
		}
	}
}

func TestWeightAndUndirect(t *testing.T) {
	edges := []Edge{{1, 2}, {3, 4}}
	und := Undirect(edges)
	if len(und) != 4 || und[1] != (Edge{2, 1}) {
		t.Fatalf("undirect = %v", und)
	}
	w := Weight(edges, 10, 1)
	for _, e := range w {
		if e.W < 1 || e.W > 10 {
			t.Fatalf("weight %d", e.W)
		}
	}
	if len(EdgeTuples(edges)) != 2 || len(WEdgeTuples(w)) != 2 {
		t.Fatal("tuple conversion length")
	}
}

func TestRealGraphScaling(t *testing.T) {
	lj := LiveJournalLike(0.001)
	if lj.Name != "livejournal" || lj.Vertices <= 0 || lj.Edges <= 0 {
		t.Fatalf("lj = %+v", lj)
	}
	full := LiveJournalLike(1)
	if full.Vertices != 4847572 || full.Edges != 68993773 {
		t.Fatalf("unscaled stats wrong: %+v", full)
	}
	// Tiny scales clamp to a minimum viable graph.
	tiny := TwitterLike(1e-9)
	if tiny.Vertices < 64 || tiny.Edges < 256 {
		t.Fatalf("clamp failed: %+v", tiny)
	}
	edges := lj.Generate(1)
	if len(edges) != lj.Edges {
		t.Fatalf("generated %d of %d", len(edges), lj.Edges)
	}
	names := []string{OrkutLike(0.01).Name, ArabicLike(0.01).Name, TwitterLike(0.01).Name}
	if names[0] != "orkut" || names[1] != "arabic" || names[2] != "twitter" {
		t.Fatalf("names = %v", names)
	}
}

func TestHubSkew(t *testing.T) {
	edges := Hub(4096, 16384, 1.3, 7)
	if len(edges) != 16384 {
		t.Fatalf("generated %d edges, want 16384", len(edges))
	}
	seen := map[Edge]bool{}
	deg := map[int64]int{}
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatalf("self-loop %v", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
		deg[e.Src]++
	}
	var degs []int
	for _, d := range deg {
		degs = append(degs, d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	// The whole point: a handful of hubs own a large share of the
	// out-edges. The top vertex alone should beat a uniform share by
	// orders of magnitude.
	if float64(degs[0]) < 0.05*float64(len(edges)) {
		t.Fatalf("top hub owns only %d of %d edges", degs[0], len(edges))
	}
	// Deterministic in the seed; exponent changes the draw.
	again := Hub(4096, 16384, 1.3, 7)
	for i := range edges {
		if edges[i] != again[i] {
			t.Fatalf("not deterministic at %d: %v vs %v", i, edges[i], again[i])
		}
	}
	flatter := Hub(4096, 16384, 3.0, 7)
	if flatter[0] == edges[0] && flatter[1] == edges[1] && flatter[2] == edges[2] {
		t.Fatal("exponent does not influence the draw")
	}
	// Exponents at or below 1 clamp instead of panicking rand.NewZipf.
	if got := Hub(64, 128, 0.5, 1); len(got) != 128 {
		t.Fatalf("clamped exponent generated %d edges", len(got))
	}
}

func TestUpdateStream(t *testing.T) {
	base := Gnp(64, 200, 7)
	ops := UpdateStream(base, 64, 500, 0.6, 0, 11)
	if len(ops) != 500 {
		t.Fatalf("got %d ops, want 500", len(ops))
	}
	// Deterministic under the seed.
	again := UpdateStream(base, 64, 500, 0.6, 0, 11)
	for i := range ops {
		if ops[i] != again[i] {
			t.Fatalf("op %d differs across identical seeds: %+v vs %+v", i, ops[i], again[i])
		}
	}
	// Replaying the stream over the live set: every delete targets a
	// live edge, every insert is fresh, and the insert fraction is in
	// the neighborhood asked for.
	live := make(map[Edge]bool, len(base))
	for _, e := range base {
		live[e] = true
	}
	ins := 0
	for i, op := range ops {
		if op.Delete {
			if !live[op.Edge] {
				t.Fatalf("op %d deletes a non-live edge %+v", i, op.Edge)
			}
			delete(live, op.Edge)
		} else {
			if live[op.Edge] {
				t.Fatalf("op %d inserts an already-live edge %+v", i, op.Edge)
			}
			if op.Edge.Src == op.Edge.Dst || op.Edge.Src >= 64 || op.Edge.Dst >= 64 {
				t.Fatalf("op %d inserts an out-of-space edge %+v", i, op.Edge)
			}
			live[op.Edge] = true
			ins++
		}
	}
	if frac := float64(ins) / 500; frac < 0.5 || frac > 0.7 {
		t.Fatalf("insert fraction = %.2f, want ≈0.6", frac)
	}
	if got := len(ApplyUpdates(base, ops)); got != len(live) {
		t.Fatalf("ApplyUpdates live count = %d, want %d", got, len(live))
	}
	// A skewed stream concentrates insertions on low-rank sources.
	skewed := UpdateStream(nil, 1024, 2000, 1.0, 1.5, 13)
	lowSrc := 0
	for _, op := range skewed {
		if op.Edge.Src < 16 {
			lowSrc++
		}
	}
	if lowSrc < len(skewed)/2 {
		t.Fatalf("zipf stream: only %d/%d inserts from the 16 hottest sources", lowSrc, len(skewed))
	}
}
