// Package datasets generates the synthetic workloads of the paper's
// evaluation (§7.1.1) deterministically from seeds: RMAT-n power-law
// graphs, G-n uniform random graphs, Tree-h random trees, the N-n
// bill-of-materials trees of the Delivery query, weighted variants for
// SSSP/APSP, and scaled stand-ins for the four real-world graphs
// (LiveJournal, Orkut, Arabic, Twitter) whose degree skew RMAT
// reproduces at reduced size.
package datasets

import (
	"math/rand"

	"repro/internal/storage"
)

// Edge is one directed edge.
type Edge struct{ Src, Dst int64 }

// WEdge is one weighted directed edge.
type WEdge struct {
	Src, Dst, W int64
}

// EdgeTuples converts edges to arc(src, dst) tuples.
func EdgeTuples(edges []Edge) []storage.Tuple {
	out := make([]storage.Tuple, len(edges))
	for i, e := range edges {
		out[i] = storage.Tuple{storage.IntVal(e.Src), storage.IntVal(e.Dst)}
	}
	return out
}

// WEdgeTuples converts weighted edges to warc(src, dst, w) tuples.
func WEdgeTuples(edges []WEdge) []storage.Tuple {
	out := make([]storage.Tuple, len(edges))
	for i, e := range edges {
		out[i] = storage.Tuple{storage.IntVal(e.Src), storage.IntVal(e.Dst), storage.IntVal(e.W)}
	}
	return out
}

// HubVertex returns the vertex with the highest out-degree (smallest
// id on ties): the deterministic bound-query source the tracking
// benchmarks and datagen use, chosen so a single-source query still
// touches a meaningful share of the graph.
func HubVertex(edges []Edge) int64 {
	deg := make(map[int64]int)
	for _, e := range edges {
		deg[e.Src]++
	}
	best, bestDeg := int64(0), -1
	for v, d := range deg {
		if d > bestDeg || (d == bestDeg && v < best) {
			best, bestDeg = v, d
		}
	}
	return best
}

// Undirect doubles every edge into both directions.
func Undirect(edges []Edge) []Edge {
	out := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e, Edge{e.Dst, e.Src})
	}
	return out
}

// Weight attaches uniform random weights in [1, maxW] to edges.
func Weight(edges []Edge, maxW int64, seed int64) []WEdge {
	rng := rand.New(rand.NewSource(seed))
	out := make([]WEdge, len(edges))
	for i, e := range edges {
		out[i] = WEdge{e.Src, e.Dst, 1 + rng.Int63n(maxW)}
	}
	return out
}

// RMAT generates an n-vertex, m-edge graph with the classic RMAT
// quadrant probabilities (a=0.57, b=0.19, c=0.19, d=0.05), the
// generator the paper uses for its RMAT-n datasets (10×n edges).
func RMAT(n int64, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	// Round n up to a power of two for quadrant descent, then reject
	// vertices outside [0, n).
	levels := 0
	for int64(1)<<levels < n {
		levels++
	}
	edges := make([]Edge, 0, m)
	seen := make(map[Edge]bool, m)
	for len(edges) < m {
		var src, dst int64
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < 0.57:
				// top-left: no bits
			case r < 0.76:
				dst |= 1 << l
			case r < 0.95:
				src |= 1 << l
			default:
				src |= 1 << l
				dst |= 1 << l
			}
		}
		if src >= n || dst >= n {
			continue
		}
		e := Edge{src, dst}
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	return edges
}

// RMATn reproduces the paper's RMAT-n family: n vertices and 10×n
// directed edges.
func RMATn(n int64, seed int64) []Edge {
	return RMAT(n, int(10*n), seed)
}

// Hub generates an n-vertex, m-edge graph whose source endpoints
// follow a Zipf distribution with the given exponent (s > 1;
// values ≤ 1 are clamped to 1.01): vertex of rank k appears as a
// source with probability ∝ 1/k^s, so a handful of hubs own most of
// the out-edges while destinations stay uniform. Unlike RMAT — whose
// skew depends on the seed and quadrant mixing — Hub makes worker
// imbalance reproducible and tunable: the partition owning a hub's
// join key receives most of each recursive delta, and every one of
// those rows probes the hub's oversized adjacency bucket. Self-loops
// and duplicate edges are re-drawn, so the result has exactly m
// distinct edges (m must fit: m ≤ n·(n-1)).
func Hub(n int64, m int, exponent float64, seed int64) []Edge {
	if exponent <= 1 {
		exponent = 1.01
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, exponent, 1, uint64(n-1))
	seen := make(map[Edge]bool, m)
	out := make([]Edge, 0, m)
	for len(out) < m {
		e := Edge{int64(zipf.Uint64()), rng.Int63n(n)}
		if e.Src == e.Dst || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}

// Gnp generates an n-vertex uniform random graph with m edges sampled
// without replacement — the G-10K dataset uses n=10000 and edge
// probability 0.001, i.e. m ≈ n²/1000.
func Gnp(n int64, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	seen := make(map[Edge]bool, m)
	for len(edges) < m {
		e := Edge{rng.Int63n(n), rng.Int63n(n)}
		if e.Src == e.Dst || seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	return edges
}

// G10K is the paper's G-10K dataset at a configurable scale: scale=1
// gives 10,000 vertices with edge probability 0.001 (≈100k edges).
func G10K(scale float64, seed int64) []Edge {
	n := int64(10000 * scale)
	if n < 16 {
		n = 16
	}
	m := int(float64(n) * float64(n) * 0.001)
	return Gnp(n, m, seed)
}

// Tree generates a random tree of the given height where every
// non-leaf vertex has between minDeg and maxDeg children (Tree-11 uses
// height 11 and degree 2..6). Edges point parent → child.
func Tree(height, minDeg, maxDeg int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	next := int64(1)
	level := []int64{0}
	for h := 0; h < height; h++ {
		var nextLevel []int64
		for _, p := range level {
			deg := minDeg
			if maxDeg > minDeg {
				deg += rng.Intn(maxDeg - minDeg + 1)
			}
			for c := 0; c < deg; c++ {
				edges = append(edges, Edge{p, next})
				nextLevel = append(nextLevel, next)
				next++
			}
		}
		level = nextLevel
	}
	return edges
}

// BoM is a bill-of-materials instance for the Delivery query: assembly
// edges assbl(part, subpart) and leaf delivery days basic(part, days).
type BoM struct {
	Assbl []storage.Tuple
	Basic []storage.Tuple
	Parts int64
}

// NTree generates the paper's N-n datasets: trees grown level by level
// where each node has 5–10 children and each child becomes a leaf with
// probability 20–60%, until about n vertices exist. Leaves get random
// delivery days in [1, 100].
func NTree(n int64, seed int64) BoM {
	rng := rand.New(rand.NewSource(seed))
	var bom BoM
	next := int64(1)
	frontier := []int64{0}
	leaf := func(p int64) {
		bom.Basic = append(bom.Basic, storage.Tuple{storage.IntVal(p), storage.IntVal(1 + rng.Int63n(100))})
	}
	for len(frontier) > 0 && next < n {
		p := frontier[0]
		frontier = frontier[1:]
		kids := 5 + rng.Intn(6)
		leafProb := 0.2 + 0.4*rng.Float64()
		for c := 0; c < kids && next < n; c++ {
			child := next
			next++
			bom.Assbl = append(bom.Assbl, storage.Tuple{storage.IntVal(p), storage.IntVal(child)})
			if rng.Float64() < leafProb {
				leaf(child)
			} else {
				frontier = append(frontier, child)
			}
		}
	}
	// Anything left on the frontier becomes a leaf so every part has a
	// delivery time.
	for _, p := range frontier {
		leaf(p)
	}
	bom.Parts = next
	return bom
}

// RealGraph describes a scaled stand-in for one of the paper's real
// datasets.
type RealGraph struct {
	Name     string
	Vertices int64
	Edges    int
}

// The paper's real graphs, scaled down by the given factor. RMAT's
// heavy-tail degree distribution stands in for the social/web-graph
// skew that drives worker imbalance.
func realGraph(name string, v int64, e int64, scale float64) RealGraph {
	sv := int64(float64(v) * scale)
	se := int(float64(e) * scale)
	if sv < 64 {
		sv = 64
	}
	if se < 256 {
		se = 256
	}
	return RealGraph{Name: name, Vertices: sv, Edges: se}
}

// LiveJournalLike returns the scaled LiveJournal stand-in
// (4,847,572 vertices / 68,993,773 edges at scale 1).
func LiveJournalLike(scale float64) RealGraph {
	return realGraph("livejournal", 4847572, 68993773, scale)
}

// OrkutLike returns the scaled Orkut stand-in (3,072,441 / 117,185,083).
func OrkutLike(scale float64) RealGraph {
	return realGraph("orkut", 3072441, 117185083, scale)
}

// ArabicLike returns the scaled Arabic-2005 stand-in
// (22,744,080 / 639,999,458).
func ArabicLike(scale float64) RealGraph {
	return realGraph("arabic", 22744080, 639999458, scale)
}

// TwitterLike returns the scaled Twitter stand-in
// (41,652,231 / 1,468,365,182).
func TwitterLike(scale float64) RealGraph {
	return realGraph("twitter", 41652231, 1468365182, scale)
}

// Generate materializes the stand-in's edges.
func (g RealGraph) Generate(seed int64) []Edge {
	return RMAT(g.Vertices, g.Edges, seed)
}
