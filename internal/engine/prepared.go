package engine

import (
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// PreparedBase is the prepared-base plane: an immutable snapshot of a
// database's extensional relations plus a growing, memoized cache of
// hash indexes over them, keyed by lookup-column signature. The paper
// assumes base relations are "indexed once per partition before
// evaluation begins" (Algorithm 1, line 3); for a long-lived service
// over frozen datasets that cost is 100% redundant after the first
// query, so a PreparedBase shared across runs pays it exactly once per
// distinct (relation, lookup signature) — any number of concurrent
// RunContext calls attach the same read-only indexes for free.
//
// The tuple snapshot is taken at construction (slice headers are
// copied, so later appends to the caller's slices are invisible);
// indexes are built on demand under a per-entry once, so N concurrent
// cold runs needing the same index trigger exactly one build and N-1
// waiters.
type PreparedBase struct {
	schemas map[string]*storage.Schema
	tuples  map[string][]storage.Tuple

	mu      sync.Mutex
	indexes map[baseIdxKey]*baseIdxEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// baseIdxKey identifies one cached index: relation name plus the
// lookup-column signature.
type baseIdxKey struct {
	rel string
	sig string
}

// baseIdxEntry is the singleflight cell for one index: the first
// claimer builds inside the once, everyone else blocks on it and then
// reads the settled pointer.
type baseIdxEntry struct {
	once sync.Once
	idx  *storage.HashIndex
}

// colSig canonicalizes a lookup column set ("0,2").
func colSig(cols []int) string {
	b := make([]byte, 0, 2*len(cols))
	for i, c := range cols {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(c), 10)
	}
	return string(b)
}

// NewPreparedBase snapshots the given relations into a shareable base.
// Index construction is deferred to the first run that needs each
// lookup signature. The schemas map may be nil; it is carried only for
// introspection.
func NewPreparedBase(schemas map[string]*storage.Schema, edb map[string][]storage.Tuple) *PreparedBase {
	t := make(map[string][]storage.Tuple, len(edb))
	for name, tuples := range edb {
		t[name] = tuples
	}
	return &PreparedBase{
		schemas: schemas,
		tuples:  t,
		indexes: make(map[baseIdxKey]*baseIdxEntry),
	}
}

// Has reports whether the base snapshot covers the relation.
func (b *PreparedBase) Has(name string) bool {
	_, ok := b.tuples[name]
	return ok
}

// Tuples returns the snapshot of one relation (nil when absent).
func (b *PreparedBase) Tuples(name string) []storage.Tuple { return b.tuples[name] }

// Indexes returns the relation's index set for the given lookups,
// building any missing ones with up to `workers` goroutines. Every
// distinct (relation, signature) pair is built at most once across all
// concurrent callers; subsequent calls are pointer reads.
func (b *PreparedBase) Indexes(name string, lookups [][]int, workers int) []*storage.HashIndex {
	if len(lookups) == 0 {
		return nil
	}
	idxs := make([]*storage.HashIndex, len(lookups))
	for i, cols := range lookups {
		key := baseIdxKey{rel: name, sig: colSig(cols)}
		b.mu.Lock()
		e, ok := b.indexes[key]
		if !ok {
			e = &baseIdxEntry{}
			b.indexes[key] = e
		}
		b.mu.Unlock()
		built := false
		e.once.Do(func() {
			e.idx = storage.BuildHashIndexes(b.tuples[name], [][]int{cols}, workers)[0]
			built = true
		})
		if built {
			b.misses.Add(1)
		} else {
			b.hits.Add(1)
		}
		idxs[i] = e.idx
	}
	return idxs
}

// BaseStats are the index-cache counters of a PreparedBase: Hits and
// Misses count per-run index requests (a miss is the request that
// performed the build), Indexes the distinct cached index sets.
type BaseStats struct {
	Hits    int64
	Misses  int64
	Indexes int
}

// Stats returns the current cache counters.
func (b *PreparedBase) Stats() BaseStats {
	b.mu.Lock()
	n := len(b.indexes)
	b.mu.Unlock()
	return BaseStats{Hits: b.hits.Load(), Misses: b.misses.Load(), Indexes: n}
}
