package engine

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// PreparedBase is the prepared-base plane: an immutable snapshot of a
// database's extensional relations plus a growing, memoized cache of
// hash indexes over them, keyed by lookup-column signature. The paper
// assumes base relations are "indexed once per partition before
// evaluation begins" (Algorithm 1, line 3); for a long-lived service
// over frozen datasets that cost is 100% redundant after the first
// query, so a PreparedBase shared across runs pays it exactly once per
// distinct (relation, lookup signature) — any number of concurrent
// RunContext calls attach the same read-only indexes for free.
//
// The tuple snapshot is taken at construction (slice headers are
// copied, so later appends to the caller's slices are invisible);
// indexes are built on demand under a per-entry once, so N concurrent
// cold runs needing the same index trigger exactly one build and N-1
// waiters.
type PreparedBase struct {
	schemas map[string]*storage.Schema
	tuples  map[string][]storage.Tuple

	mu       sync.Mutex
	indexes  map[baseIdxKey]*baseIdxEntry
	relStats map[string]*relStatsEntry

	// parent/aliases implement Derive: an aliased name delegates
	// tuples and index requests to the parent under its canonical
	// name, so builds memoize where they survive the derived base.
	parent  *PreparedBase
	aliases map[string]string

	hits   atomic.Int64
	misses atomic.Int64
}

// baseIdxKey identifies one cached index: relation name plus the
// lookup-column signature.
type baseIdxKey struct {
	rel string
	sig string
}

// baseIdxEntry is the singleflight cell for one index: the first
// claimer builds inside the once, everyone else blocks on it and then
// reads the settled pointer.
type baseIdxEntry struct {
	once sync.Once
	idx  *storage.HashIndex
}

// relStatsEntry is the singleflight cell for one relation's planner
// statistics: the first claimer estimates inside the once, everyone
// else blocks on it and reads the settled values.
type relStatsEntry struct {
	once     sync.Once
	rows     int
	distinct []int
}

// colSig canonicalizes a lookup column set ("0,2").
func colSig(cols []int) string {
	b := make([]byte, 0, 2*len(cols))
	for i, c := range cols {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(c), 10)
	}
	return string(b)
}

// NewPreparedBase snapshots the given relations into a shareable base.
// Index construction is deferred to the first run that needs each
// lookup signature. The schemas map may be nil; it is carried only for
// introspection.
func NewPreparedBase(schemas map[string]*storage.Schema, edb map[string][]storage.Tuple) *PreparedBase {
	t := make(map[string][]storage.Tuple, len(edb))
	for name, tuples := range edb {
		t[name] = tuples
	}
	return &PreparedBase{
		schemas:  schemas,
		tuples:   t,
		indexes:  make(map[baseIdxKey]*baseIdxEntry),
		relStats: make(map[string]*relStatsEntry),
	}
}

// RelStats returns planner statistics for one base relation: its row
// count and an estimated distinct-value count per column (see
// storage.ColumnDistincts). Stats are computed at most once per
// relation across all concurrent callers and survive Rebase for
// unchanged relations, so the cost-based join ordering in plan reads
// them as cached pointer loads after the first Prepare. ok is false
// when the snapshot does not cover the relation — the planner then
// falls back to its static heuristic for that atom.
func (b *PreparedBase) RelStats(name string) (rows int, distinct []int, ok bool) {
	if target, aliased := b.aliases[name]; aliased {
		return b.parent.RelStats(target)
	}
	tuples, covered := b.tuples[name]
	if !covered {
		return 0, nil, false
	}
	b.mu.Lock()
	if b.relStats == nil {
		b.relStats = make(map[string]*relStatsEntry)
	}
	e, cached := b.relStats[name]
	if !cached {
		e = &relStatsEntry{}
		b.relStats[name] = e
	}
	b.mu.Unlock()
	e.once.Do(func() {
		e.rows = len(tuples)
		e.distinct = storage.ColumnDistincts(tuples, runtime.GOMAXPROCS(0))
	})
	return e.rows, e.distinct, true
}

// Has reports whether the base snapshot covers the relation.
func (b *PreparedBase) Has(name string) bool {
	if _, ok := b.tuples[name]; ok {
		return true
	}
	_, ok := b.aliases[name]
	return ok
}

// Tuples returns the snapshot of one relation (nil when absent).
func (b *PreparedBase) Tuples(name string) []storage.Tuple {
	if target, ok := b.aliases[name]; ok {
		return b.parent.Tuples(target)
	}
	return b.tuples[name]
}

// Indexes returns the relation's index set for the given lookups,
// building any missing ones with up to `workers` goroutines. Every
// distinct (relation, signature) pair is built at most once across all
// concurrent callers; subsequent calls are pointer reads.
func (b *PreparedBase) Indexes(name string, lookups [][]int, workers int) []*storage.HashIndex {
	if len(lookups) == 0 {
		return nil
	}
	if target, ok := b.aliases[name]; ok {
		// Aliased relation: build (and memoize) in the parent under the
		// canonical name, so the index outlives this derived base and
		// serves the next refresh's alias too.
		return b.parent.Indexes(target, lookups, workers)
	}
	idxs := make([]*storage.HashIndex, len(lookups))
	for i, cols := range lookups {
		key := baseIdxKey{rel: name, sig: colSig(cols)}
		b.mu.Lock()
		e, ok := b.indexes[key]
		if !ok {
			e = &baseIdxEntry{}
			b.indexes[key] = e
		}
		b.mu.Unlock()
		built := false
		e.once.Do(func() {
			e.idx = storage.BuildHashIndexes(b.tuples[name], [][]int{cols}, workers)[0]
			built = true
		})
		if built {
			b.misses.Add(1)
		} else {
			b.hits.Add(1)
		}
		idxs[i] = e.idx
	}
	return idxs
}

// Rebase returns a new base over the given snapshot that keeps b's
// memoized index entries — and its cumulative hit/miss counters — for
// every relation NOT named in changed. This is the single-relation
// invalidation path: mutating one relation used to dirty the whole
// shared base (every index rebuilt on the next query); with Rebase only
// the changed relations' entries are dropped and the rest keep serving
// hits. A nil changed set keeps every entry whose name still exists
// (pure re-snapshot). The receiver is left untouched, so in-flight runs
// holding the old base stay consistent.
func (b *PreparedBase) Rebase(schemas map[string]*storage.Schema, edb map[string][]storage.Tuple, changed map[string]bool) *PreparedBase {
	nb := NewPreparedBase(schemas, edb)
	b.mu.Lock()
	for key, e := range b.indexes {
		if changed[key.rel] {
			continue
		}
		if _, ok := nb.tuples[key.rel]; !ok {
			continue
		}
		nb.indexes[key] = e
	}
	for name, e := range b.relStats {
		if changed[name] {
			continue
		}
		if _, ok := nb.tuples[name]; !ok {
			continue
		}
		nb.relStats[name] = e
	}
	b.mu.Unlock()
	nb.hits.Store(b.hits.Load())
	nb.misses.Store(b.misses.Load())
	return nb
}

// DerivedRel describes one relation of a Derive call: its tuple
// snapshot, or the name of a receiver relation it aliases (same tuples
// under a new name — requests on the alias delegate to the receiver,
// so index builds land in, and are served from, the receiver's cache).
type DerivedRel struct {
	Tuples []storage.Tuple
	SameAs string
}

// Derive builds a base for a rewritten program whose relations rename
// or restate the receiver's. The ivm delete-phase programs see the
// pre-mutation database under `*__ivmold` names; Derive lets those
// names delegate to the receiver's settled index entries, which is
// what keeps an incremental refresh from re-indexing the unchanged 99%
// of the EDB. Indexes built over fresh (non-alias) relations stay
// private to the derived base and die with it.
func (b *PreparedBase) Derive(rels map[string]DerivedRel) *PreparedBase {
	nb := &PreparedBase{
		schemas: b.schemas,
		tuples:  make(map[string][]storage.Tuple, len(rels)),
		indexes: make(map[baseIdxKey]*baseIdxEntry),
		parent:  b,
		aliases: make(map[string]string),
	}
	for name, dr := range rels {
		if dr.SameAs != "" {
			nb.aliases[name] = dr.SameAs
			continue
		}
		nb.tuples[name] = dr.Tuples
	}
	return nb
}

// BaseStats are the index-cache counters of a PreparedBase: Hits and
// Misses count per-run index requests (a miss is the request that
// performed the build), Indexes the distinct cached index sets.
type BaseStats struct {
	Hits    int64
	Misses  int64
	Indexes int
}

// Stats returns the current cache counters.
func (b *PreparedBase) Stats() BaseStats {
	b.mu.Lock()
	n := len(b.indexes)
	b.mu.Unlock()
	return BaseStats{Hits: b.hits.Load(), Misses: b.misses.Load(), Indexes: n}
}
