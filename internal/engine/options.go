package engine

import (
	"runtime"
	"time"

	"repro/internal/coord"
	"repro/internal/storage"
)

// BloomMode selects when join probes consult the per-index Bloom
// guards built alongside the base hash indexes.
type BloomMode uint8

const (
	// BloomAuto (the default) always guards anti-join existence probes
	// — a negative answer proves absence, which is exactly the common
	// case negation is checking — and guards positive join probes
	// adaptively: a frame walks its first bloomWarmup probes unguarded
	// while counting hits, then freezes the decision — guard from then
	// on if fewer than a quarter hit, otherwise never guard (and pay no
	// further bookkeeping). High-hit-rate joins (the recursive tracking
	// queries) never pay the extra block load.
	BloomAuto BloomMode = iota
	// BloomOff never consults the guards (ablation / differential
	// testing).
	BloomOff
	// BloomForce consults the guard on every lookup-shaped probe,
	// hit-rate regardless (ablation / differential testing).
	BloomForce
)

// Options configures a parallel evaluation run.
type Options struct {
	// Workers is the number of parallel workers (goroutines); 0 uses
	// GOMAXPROCS.
	Workers int
	// Strategy selects the coordination scheme (Global / SSP / DWS).
	Strategy coord.Kind
	// Slack is the SSP staleness bound s (paper uses 5).
	Slack int
	// MaxWait caps the DWS wait budget τ and doubles as the
	// deadlock-avoidance timeout of Algorithm 2.
	MaxWait time.Duration
	// BatchSize is the number of tuples per exchanged message.
	BatchSize int
	// QueueCap is the capacity (messages) of each SPSC ring.
	QueueCap int
	// Epsilon is the convergence threshold for float sum aggregates
	// (PageRank); changes at or below it do not re-enter the delta.
	Epsilon float64
	// MaxLocalIters bounds local iterations per worker per stratum;
	// 0 means run to fixpoint.
	MaxLocalIters int
	// MaxTuples bounds the total tuples exchanged per stratum; 0 means
	// unbounded. Exceeding it drops pending deltas and marks the
	// stratum Capped — the analogue of running out of memory for
	// diverging programs whose blow-up happens inside one iteration.
	MaxTuples int64
	// NoExistCache disables the §6.2.2 existence-check cache
	// (ablation).
	NoExistCache bool
	// NoIndexAgg disables index-assisted extremum merges in favor of
	// the per-batch linear-scan path (§6.2.1 ablation).
	NoIndexAgg bool
	// NoPartialAgg disables partial aggregation in the Distribute
	// operator (ablation).
	NoPartialAgg bool
	// Base, when set, is a shared prepared-base plane: relations it
	// covers skip per-run tuple registration and reuse (or build-once
	// and memoize) their hash indexes across runs. Relations outside
	// the base still come from the edb argument and build cold.
	Base *PreparedBase
	// Probers maps virtual relation names to caller-owned membership
	// oracles. A probed relation carries no tuples: every occurrence in
	// the program must be a fully-bound stratified negation (validated
	// at run start), and its anti-join probes dispatch straight to
	// MembershipProber.ContainsTuple. The ivm plane uses this to let
	// generated delta rules guard on a view's live fixpoint without
	// snapshotting or indexing it per refresh.
	Probers map[string]MembershipProber
	// Bloom selects the Bloom-guard policy for join and anti-join
	// probes (see BloomMode).
	Bloom BloomMode
	// ProbeGroup is G, the number of independent probe chains each
	// worker keeps in flight in the staged join pipeline: probes are
	// hashed and their directory lines prefetched a group ahead of the
	// walk. 0 uses the default (16); 1 disables the pipeline; values
	// above 32 are clamped (the stage buffer is fixed-size so the
	// steady state stays allocation-free).
	//
	// When left at 0, the pipeline additionally gates itself per block
	// on the probed structure's size (pipelineMinRows): staging and
	// prefetching only pay when the directory outsizes the cache, so
	// small cache-resident indexes take the serial walk. Setting
	// ProbeGroup explicitly pins the pipeline on regardless of index
	// size (benchmarks, tests).
	ProbeGroup int

	// StealOff disables morsel-driven work stealing: each worker
	// evaluates only its own gathered delta, as before PR8 (ablation /
	// differential testing). Stealing is also implicitly off at one
	// worker, where there is no peer to steal from.
	StealOff bool

	// probeGroupPinned records that ProbeGroup was set by the caller
	// rather than defaulted; withDefaults derives it.
	probeGroupPinned bool
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Slack <= 0 {
		o.Slack = 5
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 4096
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-9
	}
	if o.ProbeGroup <= 0 {
		o.ProbeGroup = 16
	} else {
		o.probeGroupPinned = true
	}
	if o.ProbeGroup > maxProbeGroup {
		o.ProbeGroup = maxProbeGroup
	}
	return o
}

// StealStats aggregates the morsel scheduler's activity: how many
// delta morsels ran, how many ran on a worker other than the one that
// gathered them, and how the idle workers' steal probes fared.
type StealStats struct {
	// MorselsExecuted counts every shared delta block that went through
	// the steal plane (executed by its owner or by a thief).
	MorselsExecuted int64
	// MorselsStolen counts morsels executed by a non-owner.
	MorselsStolen int64
	// Attempts counts steal probes against a chosen victim's deque;
	// Failures counts the probes that found it already drained (lost
	// the race to the owner or another thief).
	Attempts int64
	Failures int64
}

// Add accumulates o into s.
func (s *StealStats) Add(o StealStats) {
	s.MorselsExecuted += o.MorselsExecuted
	s.MorselsStolen += o.MorselsStolen
	s.Attempts += o.Attempts
	s.Failures += o.Failures
}

// imbalance is max/mean over per-worker busy time; 1.0 is perfectly
// balanced, and 0 means no busy time was recorded at all.
func imbalance(busy []time.Duration) float64 {
	if len(busy) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, b := range busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(busy))
	return float64(max) / mean
}

// StratumStats describes one stratum's execution.
type StratumStats struct {
	Preds          []string
	Recursive      bool
	LocalIters     []int64 // per worker
	TuplesSent     int64   // through SPSC buffers
	TuplesDerived  int64   // kernel output volume incl. self-bound
	TuplesMerged   int64   // replica state changes
	WaitTime       []time.Duration
	Duration       time.Duration
	ResultTuples   map[string]int
	GlobalBarriers int64 // Global strategy rounds
	// Capped reports that MaxLocalIters fired with deltas still
	// pending: the fixpoint was NOT reached (benchmarks report this as
	// the OOM/DNF analogue for diverging baselines).
	Capped bool
	// Probe sums the workers' memory-level probe counters — tag-lane
	// rejects, audited key-compare skips, Bloom-guard skips — for this
	// stratum.
	Probe storage.ProbeCounters
	// BusyTime is per-worker evaluation time: kernel execution over
	// seeds, local deltas and morsels (own or stolen), excluding
	// gathers, gates and parked waiting. Its spread is what the steal
	// plane exists to flatten.
	BusyTime []time.Duration
	// Steal sums the workers' morsel-scheduler counters for this
	// stratum.
	Steal StealStats
}

// Imbalance is the stratum's busy-time imbalance ratio (max/mean); 1.0
// is perfectly balanced.
func (s *StratumStats) Imbalance() float64 { return imbalance(s.BusyTime) }

// Stats summarizes a run.
type Stats struct {
	Workers  int
	Strategy coord.Kind
	// SetupDuration is the pre-evaluation cost: registering the base
	// relations and building (or attaching from a shared PreparedBase)
	// their hash indexes. A warm run against a prepared base spends
	// orders of magnitude less here than a cold one.
	SetupDuration time.Duration
	// Duration is the evaluation time proper — fixpoint plus
	// materialization — excluding SetupDuration.
	Duration time.Duration
	Strata   []StratumStats
	// Probe sums the per-stratum probe counters over the whole run.
	Probe storage.ProbeCounters
	// Steal sums the per-stratum morsel-scheduler counters over the
	// whole run.
	Steal StealStats
}

// BusyTime sums each worker's evaluation time over all strata.
func (s *Stats) BusyTime() []time.Duration {
	busy := make([]time.Duration, s.Workers)
	for _, st := range s.Strata {
		for i, b := range st.BusyTime {
			if i < len(busy) {
				busy[i] += b
			}
		}
	}
	return busy
}

// Imbalance is the run-wide busy-time imbalance ratio (max/mean busy
// over workers, busy summed across strata); 1.0 is perfectly balanced,
// 0 means nothing was measured.
func (s *Stats) Imbalance() float64 { return imbalance(s.BusyTime()) }

// TotalIters sums local iterations over all workers and strata.
func (s *Stats) TotalIters() int64 {
	var n int64
	for _, st := range s.Strata {
		for _, it := range st.LocalIters {
			n += it
		}
	}
	return n
}

// Result is the output of a run: every IDB relation materialized, plus
// execution statistics.
type Result struct {
	Relations map[string][]storage.Tuple
	Stats     Stats
}
