package engine

import (
	"runtime"
	"time"

	"repro/internal/coord"
	"repro/internal/storage"
)

// Options configures a parallel evaluation run.
type Options struct {
	// Workers is the number of parallel workers (goroutines); 0 uses
	// GOMAXPROCS.
	Workers int
	// Strategy selects the coordination scheme (Global / SSP / DWS).
	Strategy coord.Kind
	// Slack is the SSP staleness bound s (paper uses 5).
	Slack int
	// MaxWait caps the DWS wait budget τ and doubles as the
	// deadlock-avoidance timeout of Algorithm 2.
	MaxWait time.Duration
	// BatchSize is the number of tuples per exchanged message.
	BatchSize int
	// QueueCap is the capacity (messages) of each SPSC ring.
	QueueCap int
	// Epsilon is the convergence threshold for float sum aggregates
	// (PageRank); changes at or below it do not re-enter the delta.
	Epsilon float64
	// MaxLocalIters bounds local iterations per worker per stratum;
	// 0 means run to fixpoint.
	MaxLocalIters int
	// MaxTuples bounds the total tuples exchanged per stratum; 0 means
	// unbounded. Exceeding it drops pending deltas and marks the
	// stratum Capped — the analogue of running out of memory for
	// diverging programs whose blow-up happens inside one iteration.
	MaxTuples int64
	// NoExistCache disables the §6.2.2 existence-check cache
	// (ablation).
	NoExistCache bool
	// NoIndexAgg disables index-assisted extremum merges in favor of
	// the per-batch linear-scan path (§6.2.1 ablation).
	NoIndexAgg bool
	// NoPartialAgg disables partial aggregation in the Distribute
	// operator (ablation).
	NoPartialAgg bool
	// Base, when set, is a shared prepared-base plane: relations it
	// covers skip per-run tuple registration and reuse (or build-once
	// and memoize) their hash indexes across runs. Relations outside
	// the base still come from the edb argument and build cold.
	Base *PreparedBase
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Slack <= 0 {
		o.Slack = 5
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 4096
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-9
	}
	return o
}

// StratumStats describes one stratum's execution.
type StratumStats struct {
	Preds          []string
	Recursive      bool
	LocalIters     []int64 // per worker
	TuplesSent     int64   // through SPSC buffers
	TuplesDerived  int64   // kernel output volume incl. self-bound
	TuplesMerged   int64   // replica state changes
	WaitTime       []time.Duration
	Duration       time.Duration
	ResultTuples   map[string]int
	GlobalBarriers int64 // Global strategy rounds
	// Capped reports that MaxLocalIters fired with deltas still
	// pending: the fixpoint was NOT reached (benchmarks report this as
	// the OOM/DNF analogue for diverging baselines).
	Capped bool
}

// Stats summarizes a run.
type Stats struct {
	Workers  int
	Strategy coord.Kind
	// SetupDuration is the pre-evaluation cost: registering the base
	// relations and building (or attaching from a shared PreparedBase)
	// their hash indexes. A warm run against a prepared base spends
	// orders of magnitude less here than a cold one.
	SetupDuration time.Duration
	// Duration is the evaluation time proper — fixpoint plus
	// materialization — excluding SetupDuration.
	Duration time.Duration
	Strata   []StratumStats
}

// TotalIters sums local iterations over all workers and strata.
func (s *Stats) TotalIters() int64 {
	var n int64
	for _, st := range s.Strata {
		for _, it := range st.LocalIters {
			n += it
		}
	}
	return n
}

// Result is the output of a run: every IDB relation materialized, plus
// execution statistics.
type Result struct {
	Relations map[string][]storage.Tuple
	Stats     Stats
}
