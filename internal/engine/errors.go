package engine

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBudgetExceeded is the sentinel matched (via errors.Is) by budget
// truncation: a MaxTuples or MaxLocalIters cap fired with deltas still
// pending, so the fixpoint was NOT reached. Run still returns the
// partial Result alongside the error — callers that treat truncation
// as the out-of-memory analogue (the benchmark harness) keep the
// partial relations and timing, everyone else sees a real error
// instead of a silently short answer.
var ErrBudgetExceeded = errors.New("evaluation budget exceeded")

// BudgetError reports which stratum first blew its tuple or iteration
// budget. It unwraps to ErrBudgetExceeded.
type BudgetError struct {
	// Stratum is the index of the first capped stratum.
	Stratum int
	// Preds names the stratum's recursive predicates.
	Preds []string
	// Tuples is the total tuple count produced by the capped stratum.
	Tuples int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("evaluation budget exceeded in stratum %d (%s) after %d tuples: result truncated short of the fixpoint",
		e.Stratum, strings.Join(e.Preds, ","), e.Tuples)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) hold.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// CanceledError reports that a RunContext evaluation was aborted by
// its context (deadline or explicit cancel). It unwraps to the
// context's error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work as expected.
type CanceledError struct {
	// Stratum is the stratum that was evaluating when the cancel
	// landed.
	Stratum int
	// Err is the underlying context error.
	Err error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("evaluation canceled in stratum %d: %v", e.Stratum, e.Err)
}

// Unwrap exposes the underlying context error.
func (e *CanceledError) Unwrap() error { return e.Err }
