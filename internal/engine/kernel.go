package engine

import (
	"repro/internal/ast"
	"repro/internal/btree"
	"repro/internal/physical"
	"repro/internal/storage"
)

// This file is the flattened, cursor-driven evaluation kernel that
// replaced the recursive closure-per-probe interpreter. A compiled
// physical.Rule becomes a kernel: a flat array of op frames, one per
// pipeline op, each join frame owning an explicit cursor into its probe
// source (base hash-index bucket, base scan, incremental join index,
// set-relation index scan, or aggregate B+-tree). Execution walks the
// frame array iteratively — descend on match, jump to the nearest
// enclosing join frame (precomputed in Rule.PrevJoin) on failure or
// after an emit — so the hot loop performs no recursion, allocates no
// closures, and keeps one rule's cursors and slot array hot while a
// block of delta tuples drives it.

// probeSrc discriminates a join frame's cursor source, resolved once at
// kernel construction.
type probeSrc uint8

const (
	// srcBaseLookup probes a global hash index bucket on a base or
	// earlier-stratum relation.
	srcBaseLookup probeSrc = iota
	// srcBaseScan walks all tuples of a base relation.
	srcBaseScan
	// srcIncLookup walks an incremental join index chain on a
	// set-semantics recursive replica.
	srcIncLookup
	// srcSetScan walks a set replica by insertion index, bounded by the
	// set's length at cursor start.
	srcSetScan
	// srcAggGet resolves a fully-bound group key with one B+-tree get.
	srcAggGet
	// srcAggScan walks a whole aggregate B+-tree in key order.
	srcAggScan
	// srcAggPrefix walks the B+-tree range sharing a bound key prefix.
	srcAggPrefix
	// srcProber asks a registered MembershipProber (negation frames
	// only; the probe key is the full tuple in schema order).
	srcProber
)

// kframe is one executable op frame. Cond/let/neg frames are pure
// filters; join frames additionally carry cursor state that survives
// across enter/advance calls, plus reusable key and aggregate-row
// scratch so the steady state never allocates.
type kframe struct {
	kind     physical.OpKind
	prevJoin int

	// OpCond.
	cmp  ast.CmpOp
	l, r *physical.Expr

	// OpLet.
	slot     int
	expr     *physical.Expr
	slotType storage.Type

	// OpJoin / OpNeg probe shape.
	acc      *physical.Access
	colTypes []storage.Type
	baseIdx  *storage.HashIndex
	scanRows []storage.Tuple
	rep      *replica
	key      []storage.Value
	row      storage.Tuple
	src      probeSrc
	// pureKey marks a negation probe with no residual conditions
	// beyond the key columns, so exists() collapses to a direct
	// HashIndex.Contains bucket walk.
	pureKey bool

	// pc points at the owning worker's probe-counter bag; every
	// directory walk, key compare and Bloom consultation below charges
	// it (plain int64s, single writer).
	pc *storage.ProbeCounters
	// bloom is the frame's guard state (see bloomState). BloomAuto join
	// frames start in bloomWarm, counting probes/hits until the warmup
	// window closes; the decision then freezes into bloomGuard or
	// bloomPass so the steady-state probe carries one byte compare of
	// bookkeeping instead of two counters and a ratio.
	bloom       bloomState
	bloomProbes int32
	bloomHits   int32

	// Cursor state. Base-lookup cursors are [pos, end) row-ordinal
	// ranges into the index arena (srcBaseLookup) or the scan slice
	// (srcBaseScan, srcSetScan) — no per-bucket slice is materialized.
	// keyOK marks an audited (Keyed) base bucket whose first row already
	// verified the probe key: the rest of the walk skips key compares.
	pos     int
	end     int
	keyOK   bool
	inc     incCursor
	aggCur  btree.Cursor
	aggOnce bool

	// prober serves srcProber frames: a caller-owned membership oracle
	// standing in for a stored relation (fully-bound negation only).
	prober MembershipProber
}

// bloomState is a join frame's frozen-or-warming Bloom-guard decision.
type bloomState uint8

const (
	// bloomPass walks the directory unguarded (BloomOff, or a warmed-up
	// BloomAuto frame whose probes mostly hit).
	bloomPass bloomState = iota
	// bloomGuard consults the index's Bloom filter before every walk
	// (BloomForce; anti-joins under BloomAuto; warmed-up miss-heavy
	// BloomAuto join frames).
	bloomGuard
	// bloomWarm counts probes and hits until the warmup window closes,
	// then freezes into bloomGuard or bloomPass (BloomAuto join frames).
	bloomWarm
)

// bloomWarmup is the probe count after which a bloomWarm frame freezes
// its guard decision: guard only if fewer than 1/4 of the warmup
// probes hit.
const bloomWarmup = 512

// decideBloom closes a frame's warmup window.
func (f *kframe) decideBloom() {
	if f.bloomHits < f.bloomProbes/4 {
		f.bloom = bloomGuard
	} else {
		f.bloom = bloomPass
	}
}

// initBloom derives the frame's starting guard state from the run
// policy. Anti-join existence probes are guarded whenever guards are
// allowed at all — absence is the answer negation is looking for.
func (f *kframe) initBloom(mode BloomMode) {
	switch mode {
	case BloomOff:
		f.bloom = bloomPass
	case BloomForce:
		f.bloom = bloomGuard
	default:
		if f.kind == physical.OpNeg {
			f.bloom = bloomGuard
		} else {
			f.bloom = bloomWarm
		}
	}
}

// kernel is one worker's executable form of one rule variant: the frame
// array plus the rule's slot scratch. Built once per (worker, rule) at
// stratum start; all state is reused across every driving tuple.
type kernel struct {
	rule       *physical.Rule
	slots      []storage.Value
	frames     []kframe
	last       int
	outer      *physical.Access
	outerTypes []storage.Type
	// pf is the frame index of the rule's first join when that join is
	// lookup-shaped (base hash index or incremental index) and every
	// frame before it is a pure filter (cond/let) — the shape the
	// staged probe pipeline can hash and prefetch a group ahead
	// (pipeline.go). -1 when the rule doesn't pipeline.
	pf    int
	pfSrc probeSrc
}

// kernelHook, when non-nil, observes the probe sources of every
// compiled kernel. Set only by tests (under their own lock) to assert a
// program actually exercises a given cursor kind; always nil in
// production.
var kernelHook func(rule *physical.Rule, srcs []probeSrc)

// newKernel compiles a rule into frames against this worker's replicas
// and the stratum's store. Probe sources, column types and index
// pointers are resolved once here, not per tuple.
func (w *worker) newKernel(r *physical.Rule) *kernel {
	k := &kernel{
		rule:   r,
		slots:  make([]storage.Value, r.NumSlots),
		frames: make([]kframe, len(r.Ops)),
		last:   len(r.Ops) - 1,
		outer:  r.Outer,
		pf:     -1,
	}
	if r.Outer != nil {
		k.outerTypes = w.run.types[r.Outer.Pred]
	}
	for i := range r.Ops {
		op := &r.Ops[i]
		f := &k.frames[i]
		f.kind = op.Kind
		f.prevJoin = r.PrevJoin[i]
		f.pc = &w.pc
		f.initBloom(w.run.opts.Bloom)
		switch op.Kind {
		case physical.OpCond:
			f.cmp, f.l, f.r = op.Cmp, op.L, op.R
		case physical.OpLet:
			f.slot, f.expr, f.slotType = op.Slot, op.Expr, op.SlotType
		case physical.OpJoin, physical.OpNeg:
			acc := op.Access
			f.acc = acc
			f.colTypes = w.run.types[acc.Pred]
			f.key = make([]storage.Value, 0, len(acc.KeySrcs))
			if acc.PredIdx < 0 {
				// Base or earlier-stratum relation through the global
				// store (stratified negation always lands here).
				if p := w.run.store.prober(acc.Pred); p != nil {
					// Virtual relation: membership comes from the
					// registered oracle, not from stored tuples.
					// validateProbers pinned this to a fully-bound
					// negation, so the probe key is the whole tuple.
					f.src = srcProber
					f.prober = p
					f.pureKey = true
					continue
				}
				if acc.LookupIdx >= 0 {
					f.src = srcBaseLookup
					f.baseIdx = w.run.store.index(acc.Pred, acc.LookupIdx)
				} else {
					f.src = srcBaseScan
					f.scanRows = w.run.store.scan(acc.Pred)
				}
				f.pureKey = len(acc.EqCols) == 0 && len(acc.PostCols) == 0 && len(acc.Assign) == 0
				continue
			}
			rep := w.replicas[acc.PredIdx][acc.PathIdx]
			f.rep = rep
			switch {
			case !acc.AggProbe && acc.LookupIdx >= 0:
				f.src = srcIncLookup
			case !acc.AggProbe:
				f.src = srcSetScan
			case acc.PrefixLen == len(rep.keyOrder):
				f.src = srcAggGet
				f.row = make(storage.Tuple, rep.groupLen+1)
			case acc.PrefixLen == 0:
				f.src = srcAggScan
				f.row = make(storage.Tuple, rep.groupLen+1)
			default:
				f.src = srcAggPrefix
				f.row = make(storage.Tuple, rep.groupLen+1)
			}
		}
	}
	// Locate the pipeline frame: the first join, provided nothing but
	// pure filters precede it and its cursor is lookup-shaped. OpNeg
	// before the first join blocks pipelining (its existence probe is a
	// side walk the stages don't model).
	for i := range k.frames {
		f := &k.frames[i]
		if f.kind == physical.OpCond || f.kind == physical.OpLet {
			continue
		}
		if f.kind == physical.OpJoin &&
			((f.src == srcBaseLookup && f.baseIdx != nil) || f.src == srcIncLookup) {
			k.pf, k.pfSrc = i, f.src
		}
		break
	}
	if kernelHook != nil {
		var srcs []probeSrc
		for i := range k.frames {
			f := &k.frames[i]
			if f.kind == physical.OpJoin || f.kind == physical.OpNeg {
				srcs = append(srcs, f.src)
			}
		}
		kernelHook(r, srcs)
	}
	return k
}

// bindOuter applies the rule's outer access to the driving tuple,
// filling slots. It returns false when the tuple does not satisfy the
// access.
func (k *kernel) bindOuter(t storage.Tuple) bool {
	acc := k.outer
	slots := k.slots
	for _, eq := range acc.EqCols {
		if t[eq[0]] != t[eq[1]] {
			return false
		}
	}
	for i, col := range acc.PostCols {
		src := acc.PostSrcs[i]
		if !valueEq(t[col], k.outerTypes[col], src.Get(slots), src.Type) {
			return false
		}
	}
	for _, a := range acc.Assign {
		slots[a.Slot] = t[a.Col]
	}
	return true
}

// exec drives one bound outer tuple through the frame array, emitting a
// head derivation for every complete match. The single slot array
// backtracks naturally: deeper frames overwrite their slots per match,
// and PrevJoin jumps straight to the cursor that can produce the next
// candidate.
func (w *worker) exec(k *kernel) {
	if k.last < 0 {
		w.emit(k.rule, k.slots)
		return
	}
	w.execLoop(k, 0, true)
}

// execLoop is the frame walk itself, parameterized on the start
// position so the staged pipeline (pipeline.go) can resume a kernel at
// its pipeline frame with the cursor already resolved (entering=false
// advances the installed cursor instead of re-probing).
func (w *worker) execLoop(k *kernel, lvl int, entering bool) {
	slots := k.slots
	for {
		f := &k.frames[lvl]
		var ok bool
		if entering {
			switch f.kind {
			case physical.OpJoin:
				ok = f.enterJoin(slots)
			case physical.OpCond:
				ok = evalCompare(f.cmp, f.l.Eval(slots), f.l.Typ, f.r.Eval(slots), f.r.Typ)
			case physical.OpLet:
				slots[f.slot] = convertVal(f.expr.Eval(slots), f.expr.Typ, f.slotType)
				ok = true
			default: // OpNeg
				ok = !f.exists(slots)
			}
		} else {
			ok = f.advance(slots)
		}
		switch {
		case !ok:
			lvl = f.prevJoin
			if lvl < 0 {
				return
			}
			entering = false
		case lvl == k.last:
			w.emit(k.rule, slots)
			if f.kind != physical.OpJoin {
				lvl = f.prevJoin
				if lvl < 0 {
					return
				}
			}
			entering = false
		default:
			lvl++
			entering = true
		}
	}
}

// enterJoin builds the frame's probe key into its scratch buffer,
// repositions the cursor, and advances to the first match.
func (f *kframe) enterJoin(slots []storage.Value) bool {
	key := f.key[:0]
	for _, src := range f.acc.KeySrcs {
		key = append(key, src.Get(slots))
	}
	f.key = key
	switch f.src {
	case srcBaseLookup:
		idx := f.baseIdx
		if idx == nil {
			return false
		}
		h := storage.HashValues(key)
		f.keyOK = false
		switch f.bloom {
		case bloomGuard:
			f.pc.BloomChecks++
			if !idx.MayContain(h) {
				f.pc.BloomSkips++
				f.pos, f.end = 0, 0
				return false
			}
			f.pos, f.end = idx.ProbeRange(h, f.pc)
		case bloomWarm:
			f.pos, f.end = idx.ProbeRange(h, f.pc)
			f.bloomProbes++
			if f.pos < f.end {
				f.bloomHits++
			}
			if f.bloomProbes >= bloomWarmup {
				f.decideBloom()
			}
		default: // bloomPass: steady state, no guard bookkeeping
			f.pos, f.end = idx.ProbeRange(h, f.pc)
		}
	case srcBaseScan:
		f.pos, f.end = 0, len(f.scanRows)
	case srcSetScan:
		f.pos, f.end = 0, f.rep.set.Len()
	case srcIncLookup:
		f.inc = f.rep.incIdx[f.acc.LookupIdx].seek(key)
	case srcAggGet:
		f.aggOnce = true
	case srcAggScan:
		f.aggCur = f.rep.aggTree.First()
	case srcAggPrefix:
		f.aggCur = f.rep.aggTree.Seek(key)
	}
	return f.advance(slots)
}

// advance moves the frame's cursor to its next matching tuple, binding
// the frame's slots; it returns false when the cursor is exhausted.
func (f *kframe) advance(slots []storage.Value) bool {
	switch f.src {
	case srcBaseLookup:
		idx := f.baseIdx
		for f.pos < f.end {
			t := idx.RowAt(f.pos)
			f.pos++
			if f.keyOK {
				// Audited bucket, key already verified on an earlier
				// row: accept the row without touching its key words.
				f.pc.KeySkips++
			} else {
				f.pc.KeyCompares++
				if !idx.MatchesKey(t, f.key) {
					if idx.Keyed() {
						// Single-key bucket holding a different key (a
						// true 64-bit collision with the probe hash):
						// no row here can match.
						f.pos = f.end
						return false
					}
					continue
				}
				f.keyOK = idx.Keyed()
			}
			if f.match(t, slots) {
				return true
			}
		}
		return false
	case srcBaseScan:
		for f.pos < f.end {
			t := f.scanRows[f.pos]
			f.pos++
			if f.match(t, slots) {
				return true
			}
		}
		return false
	case srcSetScan:
		set := f.rep.set
		for f.pos < f.end {
			t := set.At(f.pos)
			f.pos++
			if f.match(t, slots) {
				return true
			}
		}
		return false
	case srcIncLookup:
		for {
			t, ok := f.inc.next(f.key, f.pc)
			if !ok {
				return false
			}
			if f.match(t, slots) {
				return true
			}
		}
	case srcAggGet:
		if !f.aggOnce {
			return false
		}
		f.aggOnce = false
		v, ok := f.rep.aggTree.Get(f.key)
		if !ok {
			return false
		}
		f.fillRow(f.key, v)
		return f.match(f.row, slots)
	default: // srcAggScan, srcAggPrefix
		for f.aggCur.Valid() {
			gk := f.aggCur.Key()
			v := f.aggCur.Val()
			f.aggCur.Next()
			if f.src == srcAggPrefix && !f.rep.aggTree.HasPrefix(gk, f.key) {
				// Keys are ordered: once the prefix stops matching the
				// range is over.
				return false
			}
			f.fillRow(gk, v)
			if f.match(f.row, slots) {
				return true
			}
		}
		return false
	}
}

// fillRow materializes an aggregate (group..., value) row in schema
// order into the frame's reusable buffer.
func (f *kframe) fillRow(key storage.Tuple, v storage.Value) {
	rep := f.rep
	for i, col := range rep.keyOrder {
		f.row[col] = key[i]
	}
	f.row[rep.groupLen] = v
}

// match applies the access's intra-atom equalities, post-checks and
// assignments to a candidate tuple. For negation frames Assign is nil,
// so match doubles as the anti-join candidate test.
func (f *kframe) match(t storage.Tuple, slots []storage.Value) bool {
	acc := f.acc
	for _, eq := range acc.EqCols {
		if t[eq[0]] != t[eq[1]] {
			return false
		}
	}
	for i, col := range acc.PostCols {
		src := acc.PostSrcs[i]
		if !valueEq(t[col], f.colTypes[col], src.Get(slots), src.Type) {
			return false
		}
	}
	for _, a := range acc.Assign {
		slots[a.Slot] = t[a.Col]
	}
	return true
}

// exists is the anti-join probe (stratified negation): true when any
// tuple matches the frame's key and post-checks.
func (f *kframe) exists(slots []storage.Value) bool {
	key := f.key[:0]
	for _, src := range f.acc.KeySrcs {
		key = append(key, src.Get(slots))
	}
	f.key = key
	if f.src == srcProber {
		// Virtual relation: the key is the full tuple in schema order
		// (validated at run start); no Bloom, no index — one oracle
		// call. The buffer is reused, so the oracle must not retain it.
		return f.prober.ContainsTuple(storage.Tuple(key))
	}
	if f.src == srcBaseLookup {
		idx := f.baseIdx
		if idx == nil {
			return false
		}
		h := storage.HashValues(key)
		if f.bloom == bloomGuard {
			f.pc.BloomChecks++
			if !idx.MayContain(h) {
				f.pc.BloomSkips++
				return false
			}
		}
		if f.pureKey {
			return idx.ContainsProbe(h, key, f.pc)
		}
		start, end := idx.ProbeRange(h, f.pc)
		keyOK := false
		for r := start; r < end; r++ {
			t := idx.RowAt(r)
			if keyOK {
				f.pc.KeySkips++
			} else {
				f.pc.KeyCompares++
				if !idx.MatchesKey(t, key) {
					if idx.Keyed() {
						return false
					}
					continue
				}
				keyOK = idx.Keyed()
			}
			if f.match(t, slots) {
				return true
			}
		}
		return false
	}
	for _, t := range f.scanRows {
		if f.match(t, slots) {
			return true
		}
	}
	return false
}
