package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/coord"
	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/storage"
)

func intSchema(name string, cols ...string) *storage.Schema {
	cs := make([]storage.Column, len(cols))
	for i, c := range cols {
		cs[i] = storage.Column{Name: c, Type: storage.TInt}
	}
	return storage.NewSchema(name, cs...)
}

func compileSrc(t testing.TB, src string, schemas map[string]*storage.Schema, params map[string]physical.Param) *physical.Program {
	t.Helper()
	pt := make(map[string]storage.Type)
	for k, v := range params {
		pt[k] = v.Type
	}
	a, err := pcg.Analyze(parser.MustParse(src), schemas, pt)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := plan.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := physical.Compile(lp, params, storage.NewSymbolTable())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runSrc(t testing.TB, src string, schemas map[string]*storage.Schema, edb map[string][]storage.Tuple, params map[string]physical.Param, opts Options) *Result {
	t.Helper()
	prog := compileSrc(t, src, schemas, params)
	res, err := Run(prog, edb, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sortedPairs renders a relation as sorted "a,b,..." strings for
// comparison.
func sortedRows(ts []storage.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		s := ""
		for j, v := range t {
			if j > 0 {
				s += ","
			}
			s += fmt.Sprint(v.Int())
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func pairs(ps [][2]int64) []storage.Tuple {
	out := make([]storage.Tuple, len(ps))
	for i, p := range ps {
		out[i] = storage.Tuple{storage.IntVal(p[0]), storage.IntVal(p[1])}
	}
	return out
}

func triples(ps [][3]int64) []storage.Tuple {
	out := make([]storage.Tuple, len(ps))
	for i, p := range ps {
		out[i] = storage.Tuple{storage.IntVal(p[0]), storage.IntVal(p[1]), storage.IntVal(p[2])}
	}
	return out
}

// allConfigs enumerates strategy × worker-count combinations.
func allConfigs() []Options {
	var out []Options
	for _, k := range []coord.Kind{coord.Global, coord.SSP, coord.DWS} {
		for _, w := range []int{1, 3, 4} {
			out = append(out, Options{Workers: w, Strategy: k, BatchSize: 8})
		}
	}
	return out
}

func cfgName(o Options) string {
	return fmt.Sprintf("%s-w%d", o.Strategy, o.Workers)
}

// --- reference implementations -------------------------------------

func refTC(edges [][2]int64) map[[2]int64]bool {
	adj := map[int64][]int64{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	reach := map[[2]int64]bool{}
	var nodes []int64
	seen := map[int64]bool{}
	for _, e := range edges {
		for _, v := range e {
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	for _, s := range nodes {
		// BFS from s.
		q := []int64{s}
		vis := map[int64]bool{}
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			for _, v := range adj[u] {
				if !vis[v] {
					vis[v] = true
					reach[[2]int64{s, v}] = true
					q = append(q, v)
				}
			}
		}
	}
	return reach
}

func randGraph(rng *rand.Rand, n, m int) [][2]int64 {
	seen := map[[2]int64]bool{}
	var edges [][2]int64
	for len(edges) < m {
		e := [2]int64{rng.Int63n(int64(n)), rng.Int63n(int64(n))}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	return edges
}

// --- tests ----------------------------------------------------------

const tcSrc = `
	tc(X, Y) :- arc(X, Y).
	tc(X, Y) :- tc(X, Z), arc(Z, Y).
`

func arcSchemas() map[string]*storage.Schema {
	return map[string]*storage.Schema{"arc": intSchema("arc", "x", "y")}
}

func TestTCAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	edges := randGraph(rng, 40, 120)
	want := refTC(edges)
	var wantRows []string
	for p := range want {
		wantRows = append(wantRows, fmt.Sprintf("%d,%d", p[0], p[1]))
	}
	sort.Strings(wantRows)

	for _, o := range allConfigs() {
		t.Run(cfgName(o), func(t *testing.T) {
			res := runSrc(t, tcSrc, arcSchemas(), map[string][]storage.Tuple{"arc": pairs(edges)}, nil, o)
			got := sortedRows(res.Relations["tc"])
			if len(got) != len(wantRows) {
				t.Fatalf("tc size = %d, want %d", len(got), len(wantRows))
			}
			for i := range got {
				if got[i] != wantRows[i] {
					t.Fatalf("row %d: %s vs %s", i, got[i], wantRows[i])
				}
			}
		})
	}
}

func TestCCAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Undirected graph as two directed arcs.
	base := randGraph(rng, 60, 80)
	var edges [][2]int64
	for _, e := range base {
		edges = append(edges, e, [2]int64{e[1], e[0]})
	}
	// Reference: component minima via BFS.
	adj := map[int64][]int64{}
	nodes := map[int64]bool{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		nodes[e[0]] = true
		nodes[e[1]] = true
	}
	comp := map[int64]int64{}
	for v := range nodes {
		if _, ok := comp[v]; ok {
			continue
		}
		group := []int64{v}
		vis := map[int64]bool{v: true}
		min := v
		for i := 0; i < len(group); i++ {
			for _, u := range adj[group[i]] {
				if !vis[u] {
					vis[u] = true
					group = append(group, u)
					if u < min {
						min = u
					}
				}
			}
		}
		for _, u := range group {
			comp[u] = min
		}
	}
	var wantRows []string
	for v, m := range comp {
		wantRows = append(wantRows, fmt.Sprintf("%d,%d", v, m))
	}
	sort.Strings(wantRows)

	src := `
		cc2(Y, min<Y>) :- arc(Y, _).
		cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
		cc(Y, min<Z>) :- cc2(Y, Z).
	`
	for _, o := range allConfigs() {
		t.Run(cfgName(o), func(t *testing.T) {
			res := runSrc(t, src, arcSchemas(), map[string][]storage.Tuple{"arc": pairs(edges)}, nil, o)
			got := sortedRows(res.Relations["cc"])
			if len(got) != len(wantRows) {
				t.Fatalf("cc size = %d, want %d", len(got), len(wantRows))
			}
			for i := range got {
				if got[i] != wantRows[i] {
					t.Fatalf("row %d: got %s, want %s", i, got[i], wantRows[i])
				}
			}
		})
	}
}

const ssspSrc = `
	sp(To, min<C>) :- To = $start, C = 0.
	sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
`

func warcSchemas() map[string]*storage.Schema {
	return map[string]*storage.Schema{"warc": intSchema("warc", "x", "y", "w")}
}

func refSSSP(edges [][3]int64, start int64) map[int64]int64 {
	type item struct {
		v, d int64
	}
	adj := map[int64][]item{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], item{e[1], e[2]})
	}
	dist := map[int64]int64{start: 0}
	// Bellman-Ford style relaxation (small graphs).
	for changed := true; changed; {
		changed = false
		for u, d := range dist {
			for _, it := range adj[u] {
				nd := d + it.d
				if old, ok := dist[it.v]; !ok || nd < old {
					dist[it.v] = nd
					changed = true
				}
			}
		}
	}
	return dist
}

func TestSSSPAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var edges [][3]int64
	for i := 0; i < 200; i++ {
		edges = append(edges, [3]int64{rng.Int63n(50), rng.Int63n(50), 1 + rng.Int63n(9)})
	}
	want := refSSSP(edges, 0)
	var wantRows []string
	for v, d := range want {
		wantRows = append(wantRows, fmt.Sprintf("%d,%d", v, d))
	}
	sort.Strings(wantRows)

	params := map[string]physical.Param{"start": {Value: storage.IntVal(0), Type: storage.TInt}}
	for _, o := range allConfigs() {
		t.Run(cfgName(o), func(t *testing.T) {
			res := runSrc(t, ssspSrc, warcSchemas(), map[string][]storage.Tuple{"warc": triples(edges)}, params, o)
			got := sortedRows(res.Relations["sp"])
			if len(got) != len(wantRows) {
				t.Fatalf("sp size = %d, want %d", len(got), len(wantRows))
			}
			for i := range got {
				if got[i] != wantRows[i] {
					t.Fatalf("row %d: got %s, want %s", i, got[i], wantRows[i])
				}
			}
		})
	}
}

func TestDeliveryMaxAggregate(t *testing.T) {
	// A bill-of-materials tree: part 0 assembles 1 and 2; 1 assembles
	// 3 and 4; basic parts carry delivery days.
	assbl := [][2]int64{{0, 1}, {0, 2}, {1, 3}, {1, 4}}
	basic := [][2]int64{{2, 7}, {3, 2}, {4, 9}}
	src := `
		delivery(P, max<D>) :- basic(P, D).
		delivery(P, max<D>) :- assbl(P, S), delivery(S, D).
	`
	schemas := map[string]*storage.Schema{
		"assbl": intSchema("assbl", "p", "s"),
		"basic": intSchema("basic", "p", "d"),
	}
	want := []string{"0,9", "1,9", "2,7", "3,2", "4,9"}
	for _, o := range allConfigs() {
		t.Run(cfgName(o), func(t *testing.T) {
			res := runSrc(t, src, schemas, map[string][]storage.Tuple{
				"assbl": pairs(assbl), "basic": pairs(basic),
			}, nil, o)
			got := sortedRows(res.Relations["delivery"])
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("delivery = %v, want %v", got, want)
			}
		})
	}
}

const apspSrc = `
	path(A, B, min<D>) :- warc(A, B, D).
	path(A, B, min<D>) :- path(A, C, D1), path(C, B, D2), D = D1 + D2.
`

func refAPSP(edges [][3]int64, n int64) map[[2]int64]int64 {
	const inf = int64(1) << 40
	d := map[[2]int64]int64{}
	get := func(a, b int64) int64 {
		if v, ok := d[[2]int64{a, b}]; ok {
			return v
		}
		return inf
	}
	for _, e := range edges {
		if e[2] < get(e[0], e[1]) {
			d[[2]int64{e[0], e[1]}] = e[2]
		}
	}
	for k := int64(0); k < n; k++ {
		for i := int64(0); i < n; i++ {
			for j := int64(0); j < n; j++ {
				if get(i, k)+get(k, j) < get(i, j) {
					d[[2]int64{i, j}] = get(i, k) + get(k, j)
				}
			}
		}
	}
	return d
}

func TestAPSPNonLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 14
	var edges [][3]int64
	for i := 0; i < 40; i++ {
		edges = append(edges, [3]int64{rng.Int63n(n), rng.Int63n(n), 1 + rng.Int63n(5)})
	}
	want := refAPSP(edges, n)
	var wantRows []string
	for p, d := range want {
		wantRows = append(wantRows, fmt.Sprintf("%d,%d,%d", p[0], p[1], d))
	}
	sort.Strings(wantRows)
	for _, o := range allConfigs() {
		t.Run(cfgName(o), func(t *testing.T) {
			res := runSrc(t, apspSrc, warcSchemas(), map[string][]storage.Tuple{"warc": triples(edges)}, nil, o)
			got := sortedRows(res.Relations["path"])
			if len(got) != len(wantRows) {
				t.Fatalf("path size = %d, want %d", len(got), len(wantRows))
			}
			for i := range got {
				if got[i] != wantRows[i] {
					t.Fatalf("row %d: got %s, want %s", i, got[i], wantRows[i])
				}
			}
		})
	}
}

func TestSGSameGeneration(t *testing.T) {
	// A small tree: sg pairs are nodes with a common ancestor at equal
	// depth.
	arcs := [][2]int64{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}, {3, 7}, {5, 8}}
	src := `
		sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.
		sg(X, Y) :- arc(A, X), sg(A, B), arc(B, Y).
	`
	// Reference fixpoint.
	type pair [2]int64
	sg := map[pair]bool{}
	for _, a := range arcs {
		for _, b := range arcs {
			if a[0] == b[0] && a[1] != b[1] {
				sg[pair{a[1], b[1]}] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for p := range sg {
			for _, a := range arcs {
				if a[0] != p[0] {
					continue
				}
				for _, b := range arcs {
					if b[0] != p[1] {
						continue
					}
					np := pair{a[1], b[1]}
					if !sg[np] {
						sg[np] = true
						changed = true
					}
				}
			}
		}
	}
	var wantRows []string
	for p := range sg {
		wantRows = append(wantRows, fmt.Sprintf("%d,%d", p[0], p[1]))
	}
	sort.Strings(wantRows)
	for _, o := range allConfigs() {
		t.Run(cfgName(o), func(t *testing.T) {
			res := runSrc(t, src, arcSchemas(), map[string][]storage.Tuple{"arc": pairs(arcs)}, nil, o)
			got := sortedRows(res.Relations["sg"])
			if fmt.Sprint(got) != fmt.Sprint(wantRows) {
				t.Fatalf("sg = %v, want %v", got, wantRows)
			}
		})
	}
}

func TestAttendMutualRecursion(t *testing.T) {
	// Organizers 1..3 attend; anyone with ≥3 attending friends joins.
	organizers := []int64{1, 2, 3}
	friends := [][2]int64{
		{10, 1}, {10, 2}, {10, 3}, // 10 has three attending friends
		{11, 1}, {11, 2}, // 11 has only two
		{12, 1}, {12, 2}, {12, 10}, // 12 needs 10 to attend first
	}
	src := `
		attend(X) :- organizer(X).
		cnt(Y, count<X>) :- attend(X), friend(Y, X).
		attend(X) :- cnt(X, N), N >= 3.
	`
	schemas := map[string]*storage.Schema{
		"organizer": intSchema("organizer", "x"),
		"friend":    intSchema("friend", "y", "x"),
	}
	org := make([]storage.Tuple, len(organizers))
	for i, v := range organizers {
		org[i] = storage.Tuple{storage.IntVal(v)}
	}
	want := []string{"1", "10", "12", "2", "3"}
	for _, o := range allConfigs() {
		t.Run(cfgName(o), func(t *testing.T) {
			res := runSrc(t, src, schemas, map[string][]storage.Tuple{
				"organizer": org, "friend": pairs(friends),
			}, nil, o)
			got := sortedRows(res.Relations["attend"])
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("attend = %v, want %v", got, want)
			}
		})
	}
}

func TestPageRankFloatSum(t *testing.T) {
	// A 4-node graph with known structure; compare against a plain
	// iterative PageRank.
	edges := [][2]int64{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {3, 2}, {3, 0}}
	outDeg := map[int64]int64{}
	for _, e := range edges {
		outDeg[e[0]]++
	}
	var matrix []storage.Tuple
	for _, e := range edges {
		matrix = append(matrix, storage.Tuple{storage.IntVal(e[0]), storage.IntVal(e[1]), storage.IntVal(outDeg[e[0]])})
	}
	const alpha = 0.85
	const vnum = 4.0
	// Reference power iteration.
	rank := map[int64]float64{0: 1 / vnum, 1: 1 / vnum, 2: 1 / vnum, 3: 1 / vnum}
	for it := 0; it < 100; it++ {
		next := map[int64]float64{}
		for v := range rank {
			next[v] = (1 - alpha) / vnum
		}
		for _, e := range edges {
			next[e[1]] += alpha * rank[e[0]] / float64(outDeg[e[0]])
		}
		rank = next
	}

	src := `
		rank(X, sum<(X, I)>) :- matrix(X, _, _), I = (1 - $alpha) / $vnum.
		rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), K = $alpha * (C / D).
	`
	schemas := map[string]*storage.Schema{
		"matrix": storage.NewSchema("matrix",
			storage.Column{Name: "x", Type: storage.TInt},
			storage.Column{Name: "y", Type: storage.TInt},
			storage.Column{Name: "d", Type: storage.TFloat}),
	}
	// The matrix degree column is float-typed.
	for _, m := range matrix {
		m[2] = storage.FloatVal(float64(m[2].Int()))
	}
	params := map[string]physical.Param{
		"alpha": {Value: storage.FloatVal(alpha), Type: storage.TFloat},
		"vnum":  {Value: storage.FloatVal(vnum), Type: storage.TFloat},
	}
	for _, o := range allConfigs() {
		o.Epsilon = 1e-12
		t.Run(cfgName(o), func(t *testing.T) {
			res := runSrc(t, src, schemas, map[string][]storage.Tuple{"matrix": matrix}, params, o)
			got := map[int64]float64{}
			for _, r := range res.Relations["rank"] {
				got[r[0].Int()] = r[1].Float()
			}
			for v, want := range rank {
				if math.Abs(got[v]-want) > 1e-6 {
					t.Fatalf("rank[%d] = %g, want %g (all: %v)", v, got[v], want, got)
				}
			}
		})
	}
}

func TestStratifiedNegation(t *testing.T) {
	edges := [][2]int64{{0, 1}, {1, 2}, {3, 3}}
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
		node(X) :- arc(X, _).
		node(Y) :- arc(_, Y).
		unreach(X, Y) :- node(X), node(Y), !tc(X, Y).
	`
	res := runSrc(t, src, arcSchemas(), map[string][]storage.Tuple{"arc": pairs(edges)},
		nil, Options{Workers: 3, Strategy: coord.DWS})
	un := map[string]bool{}
	for _, r := range sortedRows(res.Relations["unreach"]) {
		un[r] = true
	}
	if un["0,1"] || un["0,2"] || un["1,2"] || un["3,3"] {
		t.Fatalf("reachable pairs leaked into unreach: %v", un)
	}
	if !un["2,0"] || !un["1,0"] || !un["0,0"] || !un["0,3"] {
		t.Fatalf("expected unreachable pairs missing: %v", un)
	}
}

func TestFactsAndNonRecursiveStratum(t *testing.T) {
	src := `
		arc2(1, 2).
		arc2(2, 3).
		hop2(X, Y) :- arc2(X, Z), arc2(Z, Y).
	`
	res := runSrc(t, src, nil, nil, nil, Options{Workers: 2, Strategy: coord.DWS})
	got := sortedRows(res.Relations["hop2"])
	if fmt.Sprint(got) != "[1,3]" {
		t.Fatalf("hop2 = %v", got)
	}
	if len(res.Relations["arc2"]) != 2 {
		t.Fatalf("arc2 = %v", res.Relations["arc2"])
	}
}

func TestAblationFlagsPreserveResults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randGraph(rng, 40, 60)
	var edges [][2]int64
	for _, e := range base {
		edges = append(edges, e, [2]int64{e[1], e[0]})
	}
	src := `
		cc2(Y, min<Y>) :- arc(Y, _).
		cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
	`
	baseline := runSrc(t, src, arcSchemas(), map[string][]storage.Tuple{"arc": pairs(edges)},
		nil, Options{Workers: 3, Strategy: coord.DWS})
	want := sortedRows(baseline.Relations["cc2"])
	for _, o := range []Options{
		{Workers: 3, Strategy: coord.DWS, NoExistCache: true},
		{Workers: 3, Strategy: coord.DWS, NoIndexAgg: true},
		{Workers: 3, Strategy: coord.DWS, NoPartialAgg: true},
		{Workers: 3, Strategy: coord.DWS, NoExistCache: true, NoIndexAgg: true, NoPartialAgg: true},
	} {
		res := runSrc(t, src, arcSchemas(), map[string][]storage.Tuple{"arc": pairs(edges)}, nil, o)
		got := sortedRows(res.Relations["cc2"])
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("ablation %+v changed results", o)
		}
	}
}

func TestMaxLocalItersCapsRun(t *testing.T) {
	// An infinite counting program would never converge; the iteration
	// cap must stop it. succ generates increasing values via arithmetic.
	src := `
		num(X) :- X = 0.
		num(Y) :- num(X), Y = X + 1, Y < 1000000.
	`
	prog := compileSrc(t, src, nil, nil)
	res, err := Run(prog, nil, Options{Workers: 2, Strategy: coord.DWS, MaxLocalIters: 50})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("capped run must surface ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error is not a *BudgetError: %v", err)
	}
	if res == nil {
		t.Fatal("capped run must still return the partial result")
	}
	if len(res.Relations["num"]) >= 1000000 {
		t.Fatal("cap had no effect")
	}
	if len(res.Relations["num"]) == 0 {
		t.Fatal("no tuples at all")
	}
	if !res.Stats.Strata[0].Capped {
		t.Fatal("stats must still mark the stratum capped")
	}
}

func TestStatsPopulated(t *testing.T) {
	edges := randGraph(rand.New(rand.NewSource(1)), 30, 60)
	res := runSrc(t, tcSrc, arcSchemas(), map[string][]storage.Tuple{"arc": pairs(edges)},
		nil, Options{Workers: 3, Strategy: coord.Global})
	if res.Stats.Workers != 3 || res.Stats.Strategy != coord.Global {
		t.Fatalf("stats header = %+v", res.Stats)
	}
	if len(res.Stats.Strata) == 0 {
		t.Fatal("no strata stats")
	}
	st := res.Stats.Strata[0]
	if !st.Recursive || st.ResultTuples["tc"] == 0 {
		t.Fatalf("stratum stats = %+v", st)
	}
	if res.Stats.TotalIters() == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestEmptyEDB(t *testing.T) {
	res := runSrc(t, tcSrc, arcSchemas(), map[string][]storage.Tuple{"arc": nil}, nil,
		Options{Workers: 2, Strategy: coord.DWS})
	if len(res.Relations["tc"]) != 0 {
		t.Fatalf("tc on empty arc = %v", res.Relations["tc"])
	}
}

func TestSelfLoopAndDuplicateEdges(t *testing.T) {
	edges := [][2]int64{{1, 1}, {1, 2}, {1, 2}, {2, 1}}
	res := runSrc(t, tcSrc, arcSchemas(), map[string][]storage.Tuple{"arc": pairs(edges)}, nil,
		Options{Workers: 2, Strategy: coord.SSP})
	got := sortedRows(res.Relations["tc"])
	want := []string{"1,1", "1,2", "2,1", "2,2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tc = %v", got)
	}
}
