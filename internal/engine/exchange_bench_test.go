package engine

import (
	"sync"
	"testing"

	"repro/internal/coord"
	"repro/internal/spsc"
	"repro/internal/storage"
)

// benchExchangeRun builds the bare exchange plane — rings, inboxes,
// recycle rings — for n workers without compiling a program. getFrame,
// recycleFrame and an empty gather only touch these fields, so the
// microbenchmarks below isolate the coordination structures from the
// join kernels.
func benchExchangeRun(n int) *stratumRun {
	run := &stratumRun{n: n, det: coord.NewDetector(n), clk: coord.NewCoarseClock()}
	run.queues = make([][]*spsc.Queue[*frame], n)
	run.inboxes = make([]*coord.Inbox, n)
	run.recycle = make([][]*spsc.Queue[*frame], n)
	for i := range run.queues {
		run.queues[i] = make([]*spsc.Queue[*frame], n)
		run.inboxes[i] = coord.NewInbox(n)
		run.recycle[i] = make([]*spsc.Queue[*frame], n)
		for j := range run.queues[i] {
			if i != j {
				run.queues[i][j] = spsc.New[*frame](1024)
				run.recycle[i][j] = spsc.New[*frame](1024)
			}
		}
	}
	return run
}

// BenchmarkGatherEmpty measures the cost of discovering that nothing
// arrived — the operation a spinning or polling worker repeats most.
// "ringscan" is the old inbox check: drain every one of the n-1 rings,
// touching two cross-core index lines each. "bitmap" is the new check:
// load one word of the worker's own inbox bitmap.
func BenchmarkGatherEmpty(b *testing.B) {
	const n = 16
	run := benchExchangeRun(n)
	w := &worker{id: 0, run: run, inbox: run.inboxes[0]}

	b.Run("ringscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range run.queues[w.id] {
				if q == nil {
					continue
				}
				q.Drain(func(*frame) {})
			}
		}
	})
	b.Run("bitmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if w.gather() != 0 {
				b.Fatal("unexpected arrivals")
			}
		}
	})
}

// BenchmarkFrameRecycle measures one full frame round trip — producer
// sizes a frame, consumer returns it — for the producer-local free
// list + per-edge recycle ring against the sync.Pool the engine used
// before. On one core sync.Pool's per-P private slot is already cheap;
// the recycle ring's advantage is that it never crosses a pool mutex,
// never loses frames to a GC cycle (allocs/op stays exactly zero), and
// keeps each frame on the worker whose batch sizes shaped it.
func BenchmarkFrameRecycle(b *testing.B) {
	const width, rows = 3, 64

	b.Run("recycle-ring", func(b *testing.B) {
		run := benchExchangeRun(2)
		producer := &worker{id: 0, run: run, inbox: run.inboxes[0]}
		consumer := &worker{id: 1, run: run, inbox: run.inboxes[1]}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := producer.getFrame(width, rows)
			consumer.recycleFrame(producer.id, f)
		}
	})
	b.Run("sync-pool", func(b *testing.B) {
		pool := sync.Pool{New: func() any { return &frame{} }}
		getFrame := func(width, n int) *frame {
			f := pool.Get().(*frame)
			if cap(f.hashes) < n {
				f.hashes = make([]uint64, n)
			}
			if cap(f.words) < n*width {
				f.words = make([]storage.Value, n*width)
			}
			f.hashes = f.hashes[:n]
			f.words = f.words[:n*width]
			f.width = int32(width)
			f.count = int32(n)
			return f
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := getFrame(width, rows)
			f.count = 0
			pool.Put(f)
		}
	})
}

// TestFrameRecycleZeroAlloc pins the steady-state guarantee: after the
// first round trip sizes the frame, the produce/consume cycle allocates
// nothing — no pool interface boxing, no GC-emptied cache to refill.
func TestFrameRecycleZeroAlloc(t *testing.T) {
	const width, rows = 3, 64
	run := benchExchangeRun(2)
	producer := &worker{id: 0, run: run, inbox: run.inboxes[0]}
	consumer := &worker{id: 1, run: run, inbox: run.inboxes[1]}

	// Warm up: size one frame and let the free-list slice settle.
	for i := 0; i < 4; i++ {
		f := producer.getFrame(width, rows)
		consumer.recycleFrame(producer.id, f)
	}
	allocs := testing.AllocsPerRun(100, func() {
		f := producer.getFrame(width, rows)
		consumer.recycleFrame(producer.id, f)
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame cycle allocates %.1f objects per round trip, want 0", allocs)
	}
}
