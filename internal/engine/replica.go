package engine

import (
	"math"

	"repro/internal/btree"
	"repro/internal/physical"
	"repro/internal/storage"
)

// replica is one worker's partition (or full copy, for broadcast
// predicates) of a recursive relation under one access path. Set
// semantics use a deduplicating tuple set plus incremental join
// indexes; aggregate semantics use the paper's B+-tree layout (§6.2.1):
// one tree keyed by the (path-first permuted) group key holding the
// current aggregate, and for count/sum a second tree keyed by
// (group, contributor) holding each contributor's latest contribution.
// Every replica is read and written by exactly one worker goroutine.
//
// All merge entry points take the tuple's wire hash (computed once by
// the sender's Distribute step): the full-tuple hash for set semantics,
// the hash of the wire-order group prefix for aggregates. The set
// relation, the existence cache and the delta coalescing index all
// reuse it instead of re-hashing.
type replica struct {
	pred     *physical.Pred
	pathIdx  int
	agg      storage.AggKind
	groupLen int
	valType  storage.Type
	// keyOrder permutes group columns into B+-tree key order; keyTypes
	// holds the column types in that order (the kernel's prefix-scan
	// termination check compares with them).
	keyOrder []int
	keyTypes []storage.Type

	// Set semantics.
	set    *storage.SetRelation
	incIdx []*incIndex

	// Aggregate semantics.
	aggTree     *btree.Tree
	contribTree *btree.Tree
	cache       *existCache

	// delta queues merged-and-changed tuples (schema order: group +
	// aggregate) for the next local iteration; unset when no variant
	// consumes this path. For aggregates the queue is coalesced per
	// group — only the latest aggregate matters, and without
	// coalescing, update counts amplify exponentially through cycles.
	// Set deltas are stable arena views and cost nothing to queue.
	//
	// Aggregate delta rows live in one of two flat word buffers (views
	// into the active one), and the per-group coalescing index is an
	// open-addressed, generation-stamped slot table keyed by the wire
	// group hash the exchange already shipped — takeDelta swaps the
	// buffers and bumps the generation, so steady-state delta queueing
	// allocates nothing. Double buffering matters: rows handed out by
	// takeDelta are still being evaluated while the next iteration's
	// rows accumulate.
	consume    bool
	delta      []storage.Tuple
	deltaSpare []storage.Tuple
	deltaWords [2][]storage.Value
	deltaCur   int
	deltaSlots []dedupSlot
	deltaMask  uint64
	deltaGen   uint32

	// Options.
	useCache  bool
	scanMerge bool // ablation: per-batch linear-scan merge (§7.3 w/o)
	eps       float64

	keyBuf  storage.Tuple // scratch permuted group key
	ckeyBuf storage.Tuple // scratch permuted (group, contributor) key
}

func newReplica(pred *physical.Pred, pathIdx int, opts *Options) *replica {
	pp := pred.Plan
	r := &replica{
		pred:     pred,
		pathIdx:  pathIdx,
		agg:      pp.Agg,
		groupLen: pp.GroupLen,
		keyOrder: pred.KeyOrders[pathIdx],
		useCache: !opts.NoExistCache,
		eps:      opts.Epsilon,
	}
	if pp.Agg == storage.AggNone {
		r.set = storage.NewSetRelation(pp.Schema)
		for _, cols := range pred.Lookups {
			r.incIdx = append(r.incIdx, newIncIndex(cols, r.set))
		}
		return r
	}
	r.valType = pp.Schema.ColType(pp.Schema.Arity() - 1)
	keyTypes := make([]storage.Type, len(r.keyOrder))
	for i, c := range r.keyOrder {
		keyTypes[i] = pp.Schema.ColType(c)
	}
	r.keyTypes = keyTypes
	r.aggTree = btree.New(keyTypes)
	if pp.Agg == storage.AggCount || pp.Agg == storage.AggSum {
		ctypes := append(append([]storage.Type(nil), keyTypes...), storage.TInt)
		r.contribTree = btree.New(ctypes)
		r.ckeyBuf = make(storage.Tuple, len(r.keyOrder)+1)
	}
	if r.useCache {
		r.cache = newExistCache(12, r.groupLen)
	}
	r.scanMerge = opts.NoIndexAgg && (pp.Agg == storage.AggMin || pp.Agg == storage.AggMax)
	r.keyBuf = make(storage.Tuple, len(r.keyOrder))
	return r
}

// permKey fills the scratch buffer with the wire tuple's group columns
// in B+-tree key order.
func (r *replica) permKey(wire storage.Tuple) storage.Tuple {
	for i, c := range r.keyOrder {
		r.keyBuf[i] = wire[c]
	}
	return r.keyBuf
}

// permCKey fills the contributor-key scratch buffer with the permuted
// group columns followed by the contributor value.
func (r *replica) permCKey(wire storage.Tuple, contributor storage.Value) storage.Tuple {
	for i, c := range r.keyOrder {
		r.ckeyBuf[i] = wire[c]
	}
	r.ckeyBuf[len(r.keyOrder)] = contributor
	return r.ckeyBuf
}

// better reports whether a beats b under the replica's extremum.
func (r *replica) better(a, b storage.Value) bool {
	if r.agg == storage.AggMin {
		return storage.Compare(a, b, r.valType) < 0
	}
	return storage.Compare(a, b, r.valType) > 0
}

// queueDelta records a post-merge (group + aggregate) tuple for the
// next local iteration, coalescing repeated updates of one group into
// a single pending row holding the latest aggregate. h is the wire
// group-key hash.
func (r *replica) queueDelta(h uint64, wire storage.Tuple, val storage.Value) {
	if !r.consume {
		return
	}
	if r.deltaSlots == nil {
		r.deltaSlots = make([]dedupSlot, outBatchMinSlots)
		r.deltaMask = outBatchMinSlots - 1
		r.deltaGen = 1
	}
	slot := h & r.deltaMask
	for {
		s := r.deltaSlots[slot]
		if s.gen != r.deltaGen {
			break
		}
		if s.hash == h {
			row := r.delta[s.idx]
			same := true
			for i := 0; i < r.groupLen; i++ {
				if row[i] != wire[i] {
					same = false
					break
				}
			}
			if same {
				row[r.groupLen] = val
				return
			}
		}
		slot = (slot + 1) & r.deltaMask
	}
	words := r.deltaWords[r.deltaCur]
	off := len(words)
	words = append(words, wire[:r.groupLen]...)
	words = append(words, val)
	r.deltaWords[r.deltaCur] = words
	// Views stay valid across append growth: a reallocation leaves old
	// rows pointing at the retired backing array, which is exactly
	// where their words live.
	row := storage.Tuple(words[off : off+r.groupLen+1 : off+r.groupLen+1])
	r.deltaSlots[slot] = dedupSlot{hash: h, gen: r.deltaGen, idx: int32(len(r.delta))}
	r.delta = append(r.delta, row)
	if uint64(len(r.delta))*4 > uint64(len(r.deltaSlots))*3 {
		r.growDeltaSlots()
	}
}

// growDeltaSlots doubles the coalescing table, rehousing current-
// generation entries.
func (r *replica) growDeltaSlots() {
	old := r.deltaSlots
	r.deltaSlots = make([]dedupSlot, 2*len(old))
	r.deltaMask = uint64(len(r.deltaSlots) - 1)
	for _, s := range old {
		if s.gen != r.deltaGen {
			continue
		}
		slot := s.hash & r.deltaMask
		for r.deltaSlots[slot].gen == r.deltaGen {
			slot = (slot + 1) & r.deltaMask
		}
		r.deltaSlots[slot] = s
	}
}

// takeDelta removes and returns the pending delta rows, swapping in the
// spare row/word buffers so the returned rows stay untouched while the
// next iteration's delta accumulates.
func (r *replica) takeDelta() []storage.Tuple {
	d := r.delta
	r.delta = r.deltaSpare[:0]
	r.deltaSpare = d
	r.deltaCur = 1 - r.deltaCur
	r.deltaWords[r.deltaCur] = r.deltaWords[r.deltaCur][:0]
	r.deltaGen++
	if r.deltaGen == 0 { // generation wrapped: scrub stale stamps once
		for i := range r.deltaSlots {
			r.deltaSlots[i] = dedupSlot{}
		}
		r.deltaGen = 1
	}
	return d
}

// mergeWire folds one wire-format tuple into the replica (the Gather
// operator's per-tuple work) and reports whether the replica changed.
// Everything the replica retains is copied out of wire, so the caller's
// buffer (a pooled frame or the self-pending arena) may be reused.
// Wire layouts: set → full tuple; min/max → group + value; count →
// group + contributor; sum → group + value + contributor.
func (r *replica) mergeWire(h uint64, wire storage.Tuple) bool {
	switch r.agg {
	case storage.AggNone:
		view, added := r.set.InsertHashed(h, wire)
		if !added {
			return false
		}
		id := int32(r.set.Len() - 1)
		for _, ix := range r.incIdx {
			ix.add(id)
		}
		if r.consume {
			r.delta = append(r.delta, view)
		}
		return true

	case storage.AggMin, storage.AggMax:
		val := wire[r.groupLen]
		group := wire[:r.groupLen]
		if r.useCache {
			if cur, ok := r.cache.get(h, group); ok && !r.better(val, cur) {
				return false // cache hit: no improvement, skip the tree
			}
		}
		res, changed := r.aggTree.Update(r.permKey(wire), func(cur storage.Value, exists bool) storage.Value {
			if exists && !r.better(val, cur) {
				return cur
			}
			return val
		})
		if r.useCache {
			r.cache.put(h, group, res)
		}
		if changed {
			r.queueDelta(h, wire, res)
		}
		return changed

	case storage.AggCount:
		contributor := wire[r.groupLen]
		if _, existed := r.contribTree.InsertFresh(r.permCKey(wire, contributor), 1); existed {
			return false
		}
		res, _ := r.aggTree.Update(r.permKey(wire), func(cur storage.Value, exists bool) storage.Value {
			if !exists {
				return storage.IntVal(1)
			}
			return storage.IntVal(cur.Int() + 1)
		})
		r.queueDelta(h, wire, res)
		return true

	case storage.AggSum:
		val := wire[r.groupLen]
		contributor := wire[r.groupLen+1]
		prev, existed := r.contribTree.InsertFresh(r.permCKey(wire, contributor), val)
		if existed && prev == val {
			return false
		}
		emit := true
		res, _ := r.aggTree.Update(r.permKey(wire), func(cur storage.Value, exists bool) storage.Value {
			if r.valType == storage.TFloat {
				sum := val.Float()
				if exists {
					sum += cur.Float()
				}
				if existed {
					sum -= prev.Float()
				}
				if exists && r.eps > 0 && math.Abs(sum-cur.Float()) <= r.eps {
					emit = false
				}
				return storage.FloatVal(sum)
			}
			sum := val.Int()
			if exists {
				sum += cur.Int()
			}
			if existed {
				sum -= prev.Int()
			}
			if exists && sum == cur.Int() {
				emit = false
			}
			return storage.IntVal(sum)
		})
		if emit {
			r.queueDelta(h, wire, res)
		}
		return emit
	}
	return false
}

// mergeFrame folds a drained exchange frame and returns the number of
// state changes. The frame may be recycled as soon as this returns. The
// ablation "w/o optimization" path replaces per-tuple index merges of
// extremum aggregates with the paper's unoptimized alternative: one
// linear scan over the deduplicated recursive table per batch (§6.2.1,
// Figure 7).
func (r *replica) mergeFrame(f *frame) int {
	if r.scanMerge {
		return r.mergeFrameScan(f)
	}
	changed := 0
	n := int(f.count)
	if r.agg == storage.AggNone {
		// Set-semantics frames carry precomputed hashes, so the dedup
		// table's slot line — a random load into a table that outgrows
		// L2 on the recursive queries — can be requested a fixed
		// distance ahead of the walk and arrive by the time InsertHashed
		// probes it.
		for i := 0; i < n; i++ {
			if j := i + mergeAhead; j < n {
				r.set.PrefetchSlot(f.hashes[j])
			}
			if r.mergeWire(f.hashes[i], f.row(i)) {
				changed++
			}
		}
		return changed
	}
	for i := 0; i < n; i++ {
		if r.mergeWire(f.hashes[i], f.row(i)) {
			changed++
		}
	}
	return changed
}

// mergeAhead is the slot-prefetch distance of the merge loops: far
// enough ahead to cover an LLC miss under the merge's per-tuple work,
// near enough that the line is still resident when the walk arrives.
const mergeAhead = 8

// mergeFrameScan merges a min/max frame without index assistance.
func (r *replica) mergeFrameScan(f *frame) int {
	type pend struct {
		wire  storage.Tuple
		wireH uint64 // wire group-key hash, for delta coalescing
		key   storage.Tuple
		val   storage.Value
		found bool
	}
	pending := make(map[uint64][]*pend, f.count)
	for i := 0; i < int(f.count); i++ {
		t := f.row(i)
		key := r.permKey(t).Clone()
		h := storage.HashValues(key)
		merged := false
		for _, p := range pending[h] {
			if p.key.Equal(key) {
				if r.better(t[r.groupLen], p.val) {
					p.val = t[r.groupLen]
					p.wire = t
					p.wireH = f.hashes[i]
				}
				merged = true
				break
			}
		}
		if !merged {
			pending[h] = append(pending[h], &pend{wire: t, wireH: f.hashes[i], key: key, val: t[r.groupLen]})
		}
	}
	// One full pass over the recursive table to resolve existing groups.
	var updates []*pend
	r.aggTree.Ascend(func(key storage.Tuple, cur storage.Value) bool {
		h := storage.HashValues(key)
		for _, p := range pending[h] {
			if !p.found && p.key.Equal(key) {
				p.found = true
				if r.better(p.val, cur) {
					updates = append(updates, p)
				}
				break
			}
		}
		return true
	})
	changed := 0
	apply := func(p *pend) {
		res, ch := r.aggTree.Update(p.key, func(cur storage.Value, exists bool) storage.Value {
			if exists && !r.better(p.val, cur) {
				return cur
			}
			return p.val
		})
		if ch {
			changed++
			r.queueDelta(p.wireH, p.wire, res)
		}
	}
	for _, p := range updates {
		apply(p)
	}
	for _, ps := range pending {
		for _, p := range ps {
			if !p.found {
				apply(p)
			}
		}
	}
	return changed
}

// materialize renders the replica's contents as schema-order tuples.
func (r *replica) materialize() []storage.Tuple {
	if r.agg == storage.AggNone {
		return r.set.Snapshot()
	}
	out := make([]storage.Tuple, 0, r.aggTree.Len())
	r.aggTree.Ascend(func(key storage.Tuple, val storage.Value) bool {
		row := make(storage.Tuple, r.groupLen+1)
		for i, c := range r.keyOrder {
			row[c] = key[i]
		}
		row[r.groupLen] = val
		out = append(out, row)
		return true
	})
	return out
}

// size reports the number of distinct tuples/groups held.
func (r *replica) size() int {
	if r.agg == storage.AggNone {
		return r.set.Len()
	}
	return r.aggTree.Len()
}
