package engine

import (
	"time"

	"repro/internal/coord"
	"repro/internal/deque"
	"repro/internal/queueing"
	"repro/internal/storage"
)

// worker is one parallel evaluation thread (Algorithm 2). It owns one
// replica per (stratum predicate, access path), drains its SPSC inbox
// rings, evaluates delta variants, and distributes derivations.
type worker struct {
	id  int
	run *stratumRun

	// inbox is this worker's wakeup bitmap (run.inboxes[id]).
	inbox *coord.Inbox

	// freeFrames is the producer-local frame free list. Frames this
	// worker sent come back to it through the per-edge recycle rings
	// and are reused here, so a frame's backing arrays stay with the
	// worker whose batch sizes shaped them.
	freeFrames []*frame

	// replicas[pred][path] is this worker's partition of the relation.
	replicas [][]*replica

	// outBufs[dest][pred][path] batches outgoing tuples with partial
	// aggregation (the Distribute operator).
	outBufs [][][]*outBatch

	arrivals []*queueing.ArrivalTracker
	service  queueing.ServiceTracker

	// baseKernels[i] executes run.st.BaseRules[i]; recKernels[pred][path]
	// holds one kernel per delta variant in run.variants[pred][path].
	// Kernels own their slot scratch and per-frame cursors, so the
	// per-tuple path touches no maps and allocates nothing.
	baseKernels []*kernel
	recKernels  [][][]*kernel

	// wireBufs[pred] is the reusable wire-tuple scratch emit writes
	// derivations into before they are hashed and routed.
	wireBufs []storage.Tuple

	// Self-bound derivations are buffered flat until the end of the
	// local iteration (Algorithm 2 line 16: R ← R ∪ δ happens after
	// evaluation, and the replica trees must not mutate under an active
	// probe). selfWords holds the tuple words back to back; selfRefs
	// records routing plus each tuple's precomputed wire hash. Both
	// buffers are reset, not reallocated, every iteration.
	selfWords []storage.Value
	selfRefs  []selfRef

	// flushPending queues out-batches that crossed flushCap rows while a
	// kernel was executing; they are flushed at the next cursor-safe
	// point (between kernel executions). Capping batch size keeps each
	// batch's dedup table cache-resident and ships derivations to their
	// consumers before the local iteration ends.
	flushPending []flushKey
	flushCap     int

	// pc is this worker's probe-counter bag: every kernel frame holds a
	// pointer to it, and runStratum folds it into StratumStats.Probe.
	// Plain int64s — single writer, read only after the worker exits.
	pc storage.ProbeCounters
	// probeGroup is the staged pipeline's group size G (Options.
	// ProbeGroup, already clamped); stages is the pipeline's fixed
	// per-worker scratch.
	probeGroup int
	stages     [maxProbeGroup]probeStage

	// deque and morselBuf are this worker's side of the steal plane
	// (steal.go): published delta blocks live in the fixed morselBuf
	// arena and circulate by index through the Chase–Lev deque.
	// morselN is the arena high-water mark, reset once finishMorsels
	// has joined on every published morsel. steal counts this worker's
	// scheduler activity (single writer; folded after the worker
	// exits). All nil/zero when run.stealOn is false.
	deque     *deque.Deque
	morselBuf []morsel
	morselN   int
	steal     StealStats
	helpFn    func() bool

	localIters    int64
	waitTime      time.Duration
	busyTime      time.Duration
	merged        int64
	droppedDeltas bool
}

// selfRef is one buffered self-bound derivation: an offset into the
// worker's selfWords arena plus the tuple's wire hash.
type selfRef struct {
	pred, path int32
	off        int32
	hash       uint64
}

// flushKey names one (destination, predicate, path) out-batch.
type flushKey struct {
	dest, pred, path int32
}

// flushPendingBatches sends every batch that crossed the row cap. Only
// legal between kernel executions: flushBatch may gather (and therefore
// merge into the replica trees) when a ring is full.
func (w *worker) flushPendingBatches() {
	for _, k := range w.flushPending {
		b := w.outBufs[k.dest][k.pred][k.path]
		if b.count > 0 {
			w.flushBatch(int(k.dest), int(k.pred), int(k.path), b)
		}
	}
	w.flushPending = w.flushPending[:0]
}

// drainSelf merges the buffered self-bound derivations and resets the
// flat buffers for reuse (mergeWire copies everything it retains).
func (w *worker) drainSelf() {
	w.run.derived.Add(int64(len(w.selfRefs)))
	refs := w.selfRefs
	for i, m := range refs {
		// Request the dedup-table slot line of a tuple a fixed distance
		// ahead (see mergeAhead): the self-pending refs carry their wire
		// hashes, so the probe's first random load overlaps the current
		// tuple's merge.
		if j := i + mergeAhead; j < len(refs) {
			n := &refs[j]
			if set := w.replicas[n.pred][n.path].set; set != nil {
				set.PrefetchSlot(n.hash)
			}
		}
		width := w.run.widths[m.pred]
		wire := storage.Tuple(w.selfWords[m.off : int(m.off)+width])
		if w.replicas[m.pred][m.path].mergeWire(m.hash, wire) {
			w.merged++
		}
	}
	w.selfRefs = w.selfRefs[:0]
	w.selfWords = w.selfWords[:0]
}

func newWorker(run *stratumRun, id int) *worker {
	// Four frames' worth of rows per out-batch keeps the batch's dedup
	// slot table small enough to stay cache-resident while preserving
	// most of the within-iteration dedup scope.
	w := &worker{id: id, run: run, flushCap: 4 * run.opts.BatchSize, inbox: run.inboxes[id],
		probeGroup: run.opts.ProbeGroup}
	w.wireBufs = make([]storage.Tuple, len(run.st.Preds))
	for pi := range run.st.Preds {
		w.wireBufs[pi] = make(storage.Tuple, run.widths[pi])
	}
	w.replicas = make([][]*replica, len(run.st.Preds))
	for pi, p := range run.st.Preds {
		w.replicas[pi] = make([]*replica, len(p.Plan.Paths))
		for path := range p.Plan.Paths {
			rep := newReplica(p, path, &run.opts)
			rep.consume = run.consume[pi][path]
			w.replicas[pi][path] = rep
		}
	}
	w.outBufs = make([][][]*outBatch, run.n)
	for d := range w.outBufs {
		if d == id {
			continue
		}
		w.outBufs[d] = make([][]*outBatch, len(run.st.Preds))
		for pi, p := range run.st.Preds {
			w.outBufs[d][pi] = make([]*outBatch, len(p.Plan.Paths))
			for path := range p.Plan.Paths {
				w.outBufs[d][pi][path] = newOutBatch(p, !run.opts.NoPartialAgg)
			}
		}
	}
	w.arrivals = make([]*queueing.ArrivalTracker, run.n)
	for j := range w.arrivals {
		w.arrivals[j] = &queueing.ArrivalTracker{}
	}
	if run.stealOn {
		// Deque and arena are the same size, so a publish can only
		// fail defensively (see shareDelta).
		w.deque = deque.New(morselCap)
		w.morselBuf = make([]morsel, morselCap)
		// One bound method value, built here so gate backoffs can hand
		// it to coord.Backoff.Help without allocating per wait.
		w.helpFn = w.trySteal
	}
	// Compile every rule variant into this worker's cursor kernels
	// (replicas must exist first: join frames resolve replica indexes
	// and trees at construction).
	w.baseKernels = make([]*kernel, len(run.st.BaseRules))
	for i, r := range run.st.BaseRules {
		w.baseKernels[i] = w.newKernel(r)
	}
	w.recKernels = make([][][]*kernel, len(run.variants))
	for pi, paths := range run.variants {
		w.recKernels[pi] = make([][]*kernel, len(paths))
		for path, rules := range paths {
			ks := make([]*kernel, len(rules))
			for vi, r := range rules {
				ks[vi] = w.newKernel(r)
			}
			w.recKernels[pi][path] = ks
		}
	}
	return w
}

// canceled reports whether the run's context was canceled. One shared
// atomic load of a read-mostly word — cheap enough for per-tuple seed
// loops and per-block delta rechecks.
func (w *worker) canceled() bool { return w.run.rc.canceled() }

// pendingDelta counts tuples waiting in consumed delta queues.
func (w *worker) pendingDelta() int {
	total := 0
	for _, paths := range w.replicas {
		for _, rep := range paths {
			total += len(rep.delta)
		}
	}
	return total
}

// gather drains the flagged inbox rings and merges the tuples (the
// Gather operator); it returns the number of tuples consumed. The inbox
// bitmap is claimed before the rings are scanned — the producer-side
// mirror (push, then flag) makes that order lossless — so an empty
// gather costs one word load instead of touching every ring's index
// lines. Drained frames are recycled to the worker that sized them.
func (w *worker) gather() int {
	total := 0
	w.inbox.Drain(func(j int) {
		q := w.run.queues[w.id][j]
		q.Drain(func(f *frame) {
			n := int(f.count)
			w.arrivals[j].Record(n, f.sentAt)
			rep := w.replicas[f.pred][f.path]
			w.merged += int64(rep.mergeFrame(f))
			w.run.det.Consume(w.id, n)
			total += n
			w.recycleFrame(j, f)
		})
	})
	return total
}

// recycleFrame hands a drained frame back to the producer that owns it
// through the per-edge recycle ring. The caller must not touch the
// frame (or views into it) afterwards. A full ring — the owner is far
// behind on reclaiming — drops the frame for the GC; circulation per
// edge is bounded by the ring capacities, so this cannot leak.
func (w *worker) recycleFrame(owner int, f *frame) {
	f.count = 0
	w.run.recycle[owner][w.id].TryPush(f)
}

// getFrame returns a frame sized for n rows of the given width, reusing
// the producer-local free list and refilling it from this worker's
// recycle rings before falling back to allocation.
func (w *worker) getFrame(width, n int) *frame {
	if len(w.freeFrames) == 0 {
		for _, q := range w.run.recycle[w.id] {
			if q == nil {
				continue
			}
			q.Drain(func(f *frame) { w.freeFrames = append(w.freeFrames, f) })
		}
	}
	var f *frame
	if k := len(w.freeFrames) - 1; k >= 0 {
		f = w.freeFrames[k]
		w.freeFrames[k] = nil
		w.freeFrames = w.freeFrames[:k]
	} else {
		f = &frame{}
	}
	if cap(f.hashes) < n {
		f.hashes = make([]uint64, n)
	}
	if cap(f.words) < n*width {
		f.words = make([]storage.Value, n*width)
	}
	f.hashes = f.hashes[:n]
	f.words = f.words[:n*width]
	f.width = int32(width)
	f.count = int32(n)
	return f
}

// inboxNonEmpty cheaply checks for queued messages: one bitmap load.
func (w *worker) inboxNonEmpty() bool {
	return w.inbox.Any()
}

// runBaseRules seeds the stratum: every worker evaluates a stripe of
// each base rule's outer relation.
func (w *worker) runBaseRules() {
	busyStart := w.run.clk.Refresh()
	for _, k := range w.baseKernels {
		if k.outer == nil {
			// Fact-style rule (conditions/lets only): one execution.
			if w.id == 0 {
				w.exec(k)
			}
			continue
		}
		tuples := w.run.store.scan(k.outer.Pred)
		for i := w.id; i < len(tuples); i += w.run.n {
			if w.canceled() {
				// Abandon the seed mid-stripe: the run returns an
				// error and nothing here is materialized.
				return
			}
			if k.bindOuter(tuples[i]) {
				w.exec(k)
			}
			w.drainChecks()
		}
	}
	w.busyTime += time.Duration(w.run.clk.Refresh() - busyStart)
	w.drainSelf()
	w.flushAll()
}

// runAsync is the worker loop shared by SSP and DWS (and by every
// non-recursive stratum): Algorithm 2 with the asynchronous
// global-fixpoint detector of §6.1.
func (w *worker) runAsync() {
	w.runBaseRules()
	for {
		if w.canceled() {
			return
		}
		w.gather()
		total := w.pendingDelta()
		if total == 0 {
			// No local delta: run stolen morsels while still
			// detector-active (their derivations may even land back
			// here as fresh local delta). Only a dry steal plane
			// parks.
			if w.stealWork() {
				continue
			}
			if w.park() {
				return
			}
			continue
		}
		if w.run.st.Recursive {
			switch w.run.opts.Strategy {
			case coord.DWS:
				w.dwsGate(total)
			case coord.SSP:
				w.sspGate()
			}
		}
		w.iterate()
	}
}

// runGlobal is the BSP loop of Algorithm 1: evaluate, barrier, gather,
// agree on emptiness.
func (w *worker) runGlobal() {
	w.runBaseRules()
	w.run.bar.Wait(false) // all seed messages enqueued
	for {
		if w.canceled() {
			// The barrier is canceled too (runCancel.trigger), so no
			// peer blocks waiting for our arrival.
			return
		}
		w.gather()
		has := w.pendingDelta() > 0
		waitStart := w.run.clk.Refresh()
		anyDelta := w.run.bar.Wait(has)
		w.waitTime += time.Duration(w.run.clk.Refresh() - waitStart)
		if w.id == 0 {
			w.run.stats.GlobalBarriers++
		}
		if !anyDelta {
			return
		}
		if has {
			w.iterate()
		} else {
			// Peers with deltas are iterating right now; take morsels
			// off their deques instead of idling at the barrier.
			w.globalSteal()
		}
		waitStart = w.run.clk.Refresh()
		w.run.bar.Wait(false) // all sends of this round enqueued
		w.waitTime += time.Duration(w.run.clk.Refresh() - waitStart)
	}
}

// park marks the worker inactive and waits for new input or the global
// fixpoint; it returns true when evaluation is over. The wait loop spins
// on this worker's one inbox word — the only line a producer touches to
// wake us — and throttles the O(workers) TryFinish scan: it runs on
// power-of-two rounds while yielding and on every sleep tick once the
// backoff has escalated, so a parked fleet probes the shards at sleep
// frequency instead of spin frequency.
//
// The loop also peeks the steal plane each round: a parked worker used
// to escalate into the sleep tier even while a peer advertised morsels
// it could run, stacking up to BackoffSleepMax of idle latency on work
// that was already available. Peek only — claiming a morsel produces
// and consumes exchange traffic, which is only sound while
// detector-active, so the worker unparks first and the main loop's
// stealWork claims it.
func (w *worker) park() bool {
	w.run.det.SetInactive(w.id)
	w.run.clock.Park(w.id)
	clk := w.run.clk
	start := clk.Refresh()
	defer func() { w.waitTime += time.Duration(clk.Refresh() - start) }()
	b := coord.Backoff{Clk: clk}
	slept := true // probe TryFinish on the first round
	for round := uint(0); ; round++ {
		if w.canceled() {
			// A canceled run never reaches the detector's fixpoint
			// (exiting peers may strand produced-but-unconsumed
			// frames), so the parked fleet exits on the cancel flag:
			// each spin round polls it, so the wakeup lands within one
			// backoff tick (≤ BackoffSleepMax of sleep).
			return true
		}
		if w.inboxNonEmpty() || w.stealAvailable() {
			w.run.det.SetActive(w.id)
			w.run.clock.Unpark(w.id)
			return false
		}
		if slept || round&(round-1) == 0 {
			if w.run.det.TryFinish() {
				return true
			}
		}
		slept = b.Pause()
	}
}

// dwsGate implements lines 5–8 of Algorithm 2: derive (ω, τ) from the
// queueing statistics and wait for the delta to fatten, bounded by the
// timeout.
func (w *worker) dwsGate(total int) {
	lambda, sigmaA2 := queueing.Combine(w.arrivals)
	d := queueing.Decide(lambda, sigmaA2, w.service.Mu(), w.service.SigmaS2(), w.run.opts.MaxWait.Seconds())
	if d.Omega <= 0 || total >= d.Omega {
		return
	}
	clk := w.run.clk
	start := clk.Refresh()
	deadline := start + int64(d.Tau*float64(time.Second))
	// While the delta fattens, spend would-be sleep ticks running
	// stolen morsels (the worker is active, so claiming is sound).
	b := coord.Backoff{Clk: clk, Help: w.helpFn}
	for clk.Now() < deadline {
		if w.canceled() {
			break
		}
		b.Pause()
		// pendingDelta scans every replica; skip it when the tick
		// gathered nothing — the delta cannot have fattened.
		if w.gather() > 0 {
			total = w.pendingDelta()
			if total == 0 || total >= d.Omega {
				break
			}
		}
	}
	w.waitTime += time.Duration(clk.Refresh() - start)
}

// sspGate blocks while the worker is more than Slack local iterations
// ahead of the slowest active worker, gathering while it waits.
func (w *worker) sspGate() {
	if w.run.clock.MayProceed(w.id) {
		return
	}
	clk := w.run.clk
	start := clk.Refresh()
	// Helping the slowest worker through its backlog is the fastest
	// way to be allowed to proceed, so the backoff steals before it
	// sleeps.
	b := coord.Backoff{Clk: clk, Help: w.helpFn}
	for {
		w.gather()
		if w.run.clock.MayProceed(w.id) {
			break
		}
		if w.canceled() {
			// Peers that exited on cancel never Advance their clocks;
			// without this check a fast worker could spin here forever.
			break
		}
		b.Pause()
	}
	w.waitTime += time.Duration(clk.Refresh() - start)
}

// deltaBlock is the number of outer delta tuples one rule variant binds
// before the next variant runs. Processing block-at-a-time keeps one
// kernel's frames, cursors and index nodes hot in cache across the
// whole block instead of touching every variant's working set per
// tuple; the block itself stays small enough to sit in L1/L2.
const deltaBlock = 256

// selfDrainWords bounds the self-pending arena. Left unchecked, one
// local iteration of a dense aggregate workload buffers every self-bound
// derivation until the iteration ends — tens of MB of doubling churn —
// and merges improved aggregates only after the whole delta is
// evaluated. Draining once the buffer passes this threshold keeps it
// cache-sized and makes better aggregate values visible to later probes
// of the same iteration, which coalesces away derivations that are
// already stale. Draining is only legal between kernel executions: no
// cursor is live then, so the replica trees may mutate. Merging early
// is monotone — a tuple merged now instead of at the iteration's end
// can only suppress derivations that dedup would discard anyway.
const selfDrainWords = 1 << 15

// iterate runs one local iteration: evaluate every pending delta tuple
// through its variants, then distribute the derivations. The delta is
// processed in blocks — for each block, every variant kernel drives all
// its join levels over the whole block before the next variant starts.
func (w *worker) iterate() {
	// Refreshing the coarse clock at the iteration boundary also keeps
	// the sentAt stamps flushBatch reads from it honest: a frame's stamp
	// is at most one local iteration stale.
	start := w.run.clk.Refresh()
	processed := 0
	// A canceled worker still drains its deltas (takeDelta) so exits
	// stay cheap, but evaluates none of them — same shape as a blown
	// budget, except the run returns the context's error, not Capped.
	capped := w.canceled() ||
		(w.run.opts.MaxLocalIters > 0 && w.localIters >= int64(w.run.opts.MaxLocalIters)) ||
		(w.run.opts.MaxTuples > 0 && w.run.derived.Load() > w.run.opts.MaxTuples)
	for pi, paths := range w.replicas {
		for path, rep := range paths {
			if len(rep.delta) == 0 {
				continue
			}
			delta := rep.takeDelta()
			processed += len(delta)
			if capped {
				w.droppedDeltas = true
				continue
			}
			if w.run.stealOn && w.run.stealable[pi][path] && len(delta) > deltaBlock {
				// Publish the tail blocks for peers to steal; the
				// budget/cancel rechecks run per morsel inside.
				w.shareDelta(pi, path, delta)
				continue
			}
			kernels := w.recKernels[pi][path]
			busyStart := w.run.clk.Refresh()
			for lo := 0; lo < len(delta); lo += deltaBlock {
				// Re-check the tuple budget (and the cancel flag) per
				// block: diverging programs can explode inside a
				// single iteration.
				if w.canceled() {
					w.droppedDeltas = true
					break
				}
				if w.run.opts.MaxTuples > 0 &&
					w.run.derived.Load() > w.run.opts.MaxTuples {
					w.droppedDeltas = true
					break
				}
				hi := lo + deltaBlock
				if hi > len(delta) {
					hi = len(delta)
				}
				block := delta[lo:hi]
				for _, k := range kernels {
					w.execBlock(k, block)
				}
			}
			w.busyTime += time.Duration(w.run.clk.Refresh() - busyStart)
		}
	}
	// Join on published morsels before touching the self buffers: no
	// delta buffer may be recycled while a thief still reads it.
	w.finishMorsels()
	w.drainSelf()
	w.flushAll()
	w.service.Record(processed, float64(w.run.clk.Refresh()-start)/1e9)
	w.localIters++
	w.run.clock.Advance(w.id)
}
