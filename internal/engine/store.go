package engine

import (
	"repro/internal/storage"
)

// relStore holds the relations visible to a stratum as read-only
// inputs: the EDB plus every already-materialized IDB predicate. In a
// shared-memory engine these are immutable during evaluation, so all
// workers read them (and their hash indexes) without synchronization —
// the partitioning that matters for races is confined to the recursive
// replicas. The store itself is per-run scaffolding: when a run
// attaches a shared PreparedBase, the tuple slices and index pointers
// it holds are owned by the base and shared across runs.
type relStore struct {
	schemas map[string]*storage.Schema
	tuples  map[string][]storage.Tuple
	// indexes[pred][i] is the hash index for BaseLookups[pred][i].
	indexes map[string][]*storage.HashIndex
	// probers maps virtual relation names to caller-owned membership
	// oracles; the kernel consults them instead of tuples/indexes
	// (validated to occur only as fully-bound negation).
	probers map[string]MembershipProber
}

func newRelStore(schemas map[string]*storage.Schema) *relStore {
	return &relStore{
		schemas: schemas,
		tuples:  make(map[string][]storage.Tuple),
		indexes: make(map[string][]*storage.HashIndex),
	}
}

// add registers a relation's tuples and builds the hash indexes the
// compiled program needs on it, sharded over up to `workers`
// goroutines.
func (s *relStore) add(name string, tuples []storage.Tuple, lookups [][]int, workers int) {
	s.tuples[name] = tuples
	s.indexes[name] = storage.BuildHashIndexes(tuples, lookups, workers)
}

// attach registers a relation whose tuples and indexes are owned by a
// shared PreparedBase — no per-run build happens here.
func (s *relStore) attach(name string, tuples []storage.Tuple, idxs []*storage.HashIndex) {
	s.tuples[name] = tuples
	s.indexes[name] = idxs
}

// attachProber registers a membership oracle for a virtual relation.
func (s *relStore) attachProber(name string, p MembershipProber) {
	if s.probers == nil {
		s.probers = make(map[string]MembershipProber)
	}
	s.probers[name] = p
}

// prober returns the relation's membership oracle, if any.
func (s *relStore) prober(name string) MembershipProber { return s.probers[name] }

// scan returns all tuples of the relation (nil when empty or unknown).
func (s *relStore) scan(name string) []storage.Tuple { return s.tuples[name] }

// lookup probes the relation's i-th hash index.
func (s *relStore) lookup(name string, idx int, key []storage.Value, fn func(storage.Tuple) bool) {
	ixs := s.indexes[name]
	if idx < len(ixs) && ixs[idx] != nil {
		ixs[idx].Lookup(key, fn)
	}
}

// index returns the relation's i-th hash index (nil when the relation
// is empty/unknown or the ordinal is out of range). The kernel resolves
// indexes once at compile time and probes their buckets directly.
func (s *relStore) index(name string, idx int) *storage.HashIndex {
	ixs := s.indexes[name]
	if idx < 0 || idx >= len(ixs) {
		return nil
	}
	return ixs[idx]
}

// contains reports whether any tuple matches the key on the i-th index
// (anti-join probe). The probe walks the bucket directory directly —
// no callback, no closure allocation.
func (s *relStore) contains(name string, idx int, key []storage.Value) bool {
	ixs := s.indexes[name]
	if idx < len(ixs) && ixs[idx] != nil {
		return ixs[idx].Contains(key)
	}
	return false
}
