package engine

import (
	"repro/internal/storage"
)

// relStore holds the relations visible to a stratum as read-only
// inputs: the EDB plus every already-materialized IDB predicate. In a
// shared-memory engine these are immutable during evaluation, so all
// workers read them (and their hash indexes) without synchronization —
// the partitioning that matters for races is confined to the recursive
// replicas.
type relStore struct {
	schemas map[string]*storage.Schema
	tuples  map[string][]storage.Tuple
	// indexes[pred][i] is the hash index for BaseLookups[pred][i].
	indexes map[string][]*storage.HashIndex
}

func newRelStore(schemas map[string]*storage.Schema) *relStore {
	return &relStore{
		schemas: schemas,
		tuples:  make(map[string][]storage.Tuple),
		indexes: make(map[string][]*storage.HashIndex),
	}
}

// add registers a relation's tuples and builds the hash indexes the
// compiled program needs on it.
func (s *relStore) add(name string, tuples []storage.Tuple, lookups [][]int) {
	s.tuples[name] = tuples
	idxs := make([]*storage.HashIndex, len(lookups))
	for i, cols := range lookups {
		idxs[i] = storage.NewHashIndex(tuples, cols)
	}
	s.indexes[name] = idxs
}

// scan returns all tuples of the relation (nil when empty or unknown).
func (s *relStore) scan(name string) []storage.Tuple { return s.tuples[name] }

// lookup probes the relation's i-th hash index.
func (s *relStore) lookup(name string, idx int, key []storage.Value, fn func(storage.Tuple) bool) {
	ixs := s.indexes[name]
	if idx < len(ixs) && ixs[idx] != nil {
		ixs[idx].Lookup(key, fn)
	}
}

// index returns the relation's i-th hash index (nil when the relation
// is empty/unknown or the ordinal is out of range). The kernel resolves
// indexes once at compile time and probes their buckets directly.
func (s *relStore) index(name string, idx int) *storage.HashIndex {
	ixs := s.indexes[name]
	if idx < 0 || idx >= len(ixs) {
		return nil
	}
	return ixs[idx]
}

// contains reports whether any tuple matches the key on the i-th index
// (anti-join probe).
func (s *relStore) contains(name string, idx int, key []storage.Value) bool {
	found := false
	s.lookup(name, idx, key, func(storage.Tuple) bool {
		found = true
		return false
	})
	return found
}
