package engine

import "repro/internal/storage"

// existCache is the constant-time existence-check cache of paper
// §6.2.2: a direct-mapped array of (group-key, aggregate) pairs sitting
// in front of a replica's B+-tree. A hit with a value at least as good
// as the incoming derivation skips the logarithmic index probe
// entirely. Each replica has its own cache and a single writer, so no
// synchronization is needed.
type existCache struct {
	mask uint64
	keys []storage.Tuple
	vals []storage.Value
}

// newExistCache returns a cache with 2^bits slots.
func newExistCache(bits uint) *existCache {
	n := uint64(1) << bits
	return &existCache{
		mask: n - 1,
		keys: make([]storage.Tuple, n),
		vals: make([]storage.Value, n),
	}
}

// get returns the cached aggregate for the key, if present.
func (c *existCache) get(h uint64, key storage.Tuple) (storage.Value, bool) {
	slot := h & c.mask
	k := c.keys[slot]
	if k == nil || !k.Equal(key) {
		return 0, false
	}
	return c.vals[slot], true
}

// put stores the key's current aggregate, evicting whatever shared the
// slot. The key is cloned so callers may reuse buffers.
func (c *existCache) put(h uint64, key storage.Tuple, val storage.Value) {
	slot := h & c.mask
	if k := c.keys[slot]; k != nil && k.Equal(key) {
		c.vals[slot] = val
		return
	}
	c.keys[slot] = key.Clone()
	c.vals[slot] = val
}

// incIndex is the incremental equi-join index maintained on
// set-semantics recursive replicas: tuples are immutable once inserted,
// so the index only ever appends.
type incIndex struct {
	cols    []int
	buckets map[uint64][]storage.Tuple
}

func newIncIndex(cols []int) *incIndex {
	return &incIndex{cols: cols, buckets: make(map[uint64][]storage.Tuple)}
}

// add indexes a newly inserted tuple.
func (ix *incIndex) add(t storage.Tuple) {
	h := t.HashOn(ix.cols)
	ix.buckets[h] = append(ix.buckets[h], t)
}

// lookup streams tuples matching the key until fn returns false.
func (ix *incIndex) lookup(key []storage.Value, fn func(storage.Tuple) bool) {
	h := storage.HashValues(key)
	for _, t := range ix.buckets[h] {
		ok := true
		for i, c := range ix.cols {
			if t[c] != key[i] {
				ok = false
				break
			}
		}
		if ok && !fn(t) {
			return
		}
	}
}
