package engine

import (
	"unsafe"

	"repro/internal/prefetch"
	"repro/internal/storage"
)

// existCache is the constant-time existence-check cache of paper
// §6.2.2: a direct-mapped array of (group-key, aggregate) pairs sitting
// in front of a replica's B+-tree. A hit with a value at least as good
// as the incoming derivation skips the logarithmic index probe
// entirely. Each replica has its own cache and a single writer, so no
// synchronization is needed.
//
// Keys are group prefixes of wire tuples (fixed width per replica), so
// they are stored inline in one flat value array: put copies the key
// words into the slot and never allocates.
type existCache struct {
	mask  uint64
	width int
	keys  []storage.Value // slot i holds keys[i*width:(i+1)*width]
	vals  []storage.Value
	full  []bool
}

// newExistCache returns a cache with 2^bits slots for width-column
// group keys.
func newExistCache(bits uint, width int) *existCache {
	n := uint64(1) << bits
	return &existCache{
		mask:  n - 1,
		width: width,
		keys:  make([]storage.Value, int(n)*width),
		vals:  make([]storage.Value, n),
		full:  make([]bool, n),
	}
}

// keyAt returns the key stored in a slot.
func (c *existCache) keyAt(slot uint64) []storage.Value {
	off := int(slot) * c.width
	return c.keys[off : off+c.width]
}

// get returns the cached aggregate for the key, if present.
func (c *existCache) get(h uint64, key []storage.Value) (storage.Value, bool) {
	slot := h & c.mask
	if !c.full[slot] {
		return 0, false
	}
	k := c.keyAt(slot)
	for i := range k {
		if k[i] != key[i] {
			return 0, false
		}
	}
	return c.vals[slot], true
}

// put stores the key's current aggregate, evicting whatever shared the
// slot. The key words are copied, so callers may reuse buffers.
func (c *existCache) put(h uint64, key []storage.Value, val storage.Value) {
	slot := h & c.mask
	copy(c.keyAt(slot), key)
	c.vals[slot] = val
	c.full[slot] = true
}

// incIndex is the incremental equi-join index maintained on
// set-semantics recursive replicas: tuples are immutable once inserted,
// so the index only ever appends. It is a power-of-two bucket array of
// chain heads over flat per-entry arrays (next pointer, cached key
// hash, view index into the owning set relation) — growth rebuilds the
// bucket heads from the cached hashes, and steady-state adds only
// extend the entry arrays. Entries name tuples by their 4-byte set
// index rather than a 24-byte Tuple header, so every array here is
// pointer-free and invisible to the garbage collector; the cursor
// reconstructs tuple views through SetRelation.At.
type incIndex struct {
	cols  []int
	set   *storage.SetRelation
	mask  uint64
	head  []int32 // bucket -> most recent entry, -1 when empty
	next  []int32 // entry -> previous entry in the same bucket
	khash []uint64
	// ktag mirrors khash with the 1-byte directory tag (storage.TagOf):
	// a chain walk scans the byte lane and touches the 8-byte hash —
	// and the set tuple behind it — only on a tag match.
	ktag []uint8
	ids  []int32 // entry -> view index in set
}

const incIndexMinBuckets = 16

func newIncIndex(cols []int, set *storage.SetRelation) *incIndex {
	ix := &incIndex{
		cols: cols,
		set:  set,
		mask: incIndexMinBuckets - 1,
		head: make([]int32, incIndexMinBuckets),
	}
	for i := range ix.head {
		ix.head[i] = -1
	}
	return ix
}

// add indexes the id-th tuple of the owning set relation (which must
// already hold it).
func (ix *incIndex) add(id int32) {
	if len(ix.ids) >= len(ix.head) {
		ix.grow()
	}
	h := ix.set.At(int(id)).HashOn(ix.cols)
	b := h & ix.mask
	ix.next = append(ix.next, ix.head[b])
	ix.head[b] = int32(len(ix.ids))
	ix.khash = append(ix.khash, h)
	ix.ktag = append(ix.ktag, storage.TagOf(h))
	ix.ids = append(ix.ids, id)
}

// grow doubles the bucket array and re-chains every entry from its
// cached key hash.
func (ix *incIndex) grow() {
	ix.head = make([]int32, 2*len(ix.head))
	for i := range ix.head {
		ix.head[i] = -1
	}
	ix.mask = uint64(len(ix.head) - 1)
	for i, h := range ix.khash {
		b := h & ix.mask
		ix.next[i] = ix.head[b]
		ix.head[b] = int32(i)
	}
}

// lookup streams tuples matching the key until fn returns false
// (most-recently-indexed first). Non-kernel callers don't carry probe
// counters; the stack-local bag keeps the cursor API uniform without
// sharing a discard sink across goroutines.
func (ix *incIndex) lookup(key []storage.Value, fn func(storage.Tuple) bool) {
	var pc storage.ProbeCounters
	c := ix.seek(key)
	for {
		t, ok := c.next(key, &pc)
		if !ok {
			return
		}
		if !fn(t) {
			return
		}
	}
}

// incCursor walks one incIndex chain without callbacks: seek hashes the
// key once, next advances to the following match. It is a value type so
// executors can embed it in a reusable frame; no per-probe allocation.
type incCursor struct {
	ix *incIndex
	i  int32
	h  uint64
}

// seek positions a cursor on the chain for key (most recent first).
func (ix *incIndex) seek(key []storage.Value) incCursor {
	return ix.seekHash(storage.HashValues(key))
}

// seekHash is seek for callers that already hold the key hash — the
// staged pipeline hashes a probe group ahead of the walk and resolves
// the chain heads here without touching the key again.
func (ix *incIndex) seekHash(h uint64) incCursor {
	return incCursor{ix: ix, i: ix.head[h&ix.mask], h: h}
}

// prefetchHead hints the chain-head word a seekHash(h) will load.
func (ix *incIndex) prefetchHead(h uint64) {
	prefetch.T0(unsafe.Pointer(&ix.head[h&ix.mask]))
}

// prefetchEntry hints a resolved chain entry's tag/hash lane lines.
func (ix *incIndex) prefetchEntry(i int32) {
	if i >= 0 {
		prefetch.T0(unsafe.Pointer(&ix.ktag[i]))
		prefetch.T0(unsafe.Pointer(&ix.khash[i]))
	}
}

// next returns the next tuple whose key columns equal key, advancing the
// cursor past it; ok is false when the chain is exhausted. Chain
// positions are screened through the byte tag lane first, then the
// cached 64-bit hash; only a full hash match loads the set tuple for
// the key compare.
func (c *incCursor) next(key []storage.Value, pc *storage.ProbeCounters) (storage.Tuple, bool) {
	ix := c.ix
	tg := storage.TagOf(c.h)
	for i := c.i; i >= 0; i = ix.next[i] {
		pc.TagProbes++
		if ix.ktag[i] != tg {
			pc.TagRejects++
			continue
		}
		if ix.khash[i] != c.h {
			continue
		}
		t := ix.set.At(int(ix.ids[i]))
		pc.KeyCompares++
		match := true
		for j, col := range ix.cols {
			if t[col] != key[j] {
				match = false
				break
			}
		}
		if match {
			c.i = ix.next[i]
			return t, true
		}
	}
	c.i = -1
	return nil, false
}
