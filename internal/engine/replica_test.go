package engine

import (
	"testing"

	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/storage"
)

func it(vs ...int64) storage.Tuple {
	t := make(storage.Tuple, len(vs))
	for i, v := range vs {
		t[i] = storage.IntVal(v)
	}
	return t
}

// wireHash computes the wire hash the engine's Distribute step would
// ship with t: full-tuple hash for sets, group-prefix hash otherwise.
func wireHash(rep *replica, t storage.Tuple) uint64 {
	if rep.agg == storage.AggNone {
		return t.Hash()
	}
	return storage.HashValues(t[:rep.groupLen])
}

// merge is a test shim for mergeWire that derives the wire hash.
func merge(rep *replica, t storage.Tuple) bool {
	return rep.mergeWire(wireHash(rep, t), t)
}

// frameOf packages tuples as an exchange frame bound for rep.
func frameOf(rep *replica, tuples []storage.Tuple) *frame {
	width := len(tuples[0])
	f := &frame{width: int32(width), count: int32(len(tuples))}
	for _, tu := range tuples {
		f.hashes = append(f.hashes, wireHash(rep, tu))
		f.words = append(f.words, tu...)
	}
	return f
}

func TestExistCache(t *testing.T) {
	c := newExistCache(4, 2)
	k1 := it(1, 2)
	h1 := storage.HashValues(k1)
	if _, ok := c.get(h1, k1); ok {
		t.Fatal("empty cache hit")
	}
	c.put(h1, k1, storage.IntVal(9))
	if v, ok := c.get(h1, k1); !ok || v.Int() != 9 {
		t.Fatal("cache miss after put")
	}
	// Overwrite the same key.
	c.put(h1, k1, storage.IntVal(5))
	if v, _ := c.get(h1, k1); v.Int() != 5 {
		t.Fatal("overwrite failed")
	}
	// A colliding key evicts (direct-mapped).
	k2 := it(99, 98)
	h2 := h1 // force the same slot
	c.put(h2, k2, storage.IntVal(7))
	if _, ok := c.get(h1, k1); ok {
		t.Fatal("evicted key still hits")
	}
	if v, ok := c.get(h2, k2); !ok || v.Int() != 7 {
		t.Fatal("new key should hit")
	}
}

func TestIncIndex(t *testing.T) {
	schema := storage.NewSchema("p",
		storage.Column{Name: "a", Type: storage.TInt},
		storage.Column{Name: "b", Type: storage.TInt})
	set := storage.NewSetRelation(schema)
	ix := newIncIndex([]int{1}, set)
	for _, tu := range []storage.Tuple{it(1, 10), it(2, 10), it(3, 11)} {
		set.Insert(tu)
		ix.add(int32(set.Len() - 1))
	}
	var got []int64
	ix.lookup([]storage.Value{storage.IntVal(10)}, func(tu storage.Tuple) bool {
		got = append(got, tu[0].Int())
		return true
	})
	if len(got) != 2 {
		t.Fatalf("lookup(10) = %v", got)
	}
	n := 0
	ix.lookup([]storage.Value{storage.IntVal(10)}, func(storage.Tuple) bool { n++; return false })
	if n != 1 {
		t.Fatal("early stop ignored")
	}
	ix.lookup([]storage.Value{storage.IntVal(12)}, func(storage.Tuple) bool {
		t.Fatal("phantom match")
		return false
	})
}

// minPred builds a physical.Pred for a min-aggregated binary relation
// partitioned on column 0.
func minPred(t *testing.T) *physical.Pred {
	t.Helper()
	schema := storage.NewSchema("m",
		storage.Column{Name: "k", Type: storage.TInt},
		storage.Column{Name: "v", Type: storage.TInt})
	pp := &plan.PredPlan{
		Name: "m", Schema: schema, Agg: storage.AggMin, GroupLen: 1,
		Paths: [][]int{{0}},
	}
	return &physical.Pred{
		Plan:      pp,
		KeyTypes:  []storage.Type{storage.TInt, storage.TInt},
		KeyOrders: [][]int{{0}},
	}
}

func TestReplicaMinMerge(t *testing.T) {
	rep := newReplica(minPred(t), 0, &Options{Epsilon: 1e-9})
	rep.consume = true
	if !merge(rep, it(1, 10)) {
		t.Fatal("first merge should change")
	}
	if merge(rep, it(1, 12)) {
		t.Fatal("worse value should not change")
	}
	if !merge(rep, it(1, 5)) {
		t.Fatal("better value should change")
	}
	if rep.size() != 1 {
		t.Fatalf("size = %d", rep.size())
	}
	delta := rep.takeDelta()
	// Coalesced: one pending row for group 1 with the latest value 5.
	if len(delta) != 1 || delta[0][1].Int() != 5 {
		t.Fatalf("delta = %v", delta)
	}
	rows := rep.materialize()
	if len(rows) != 1 || rows[0][0].Int() != 1 || rows[0][1].Int() != 5 {
		t.Fatalf("materialize = %v", rows)
	}
}

func TestReplicaMinMergeWithoutCache(t *testing.T) {
	rep := newReplica(minPred(t), 0, &Options{NoExistCache: true, Epsilon: 1e-9})
	rep.consume = true
	merge(rep, it(1, 10))
	if merge(rep, it(1, 10)) {
		t.Fatal("equal value should not change")
	}
	if !merge(rep, it(1, 3)) {
		t.Fatal("better value should change")
	}
}

func TestReplicaScanMergeMatchesIndexed(t *testing.T) {
	fast := newReplica(minPred(t), 0, &Options{Epsilon: 1e-9})
	slow := newReplica(minPred(t), 0, &Options{NoIndexAgg: true, Epsilon: 1e-9})
	fast.consume, slow.consume = true, true
	batches := [][]storage.Tuple{
		{it(1, 9), it(2, 5), it(1, 7)},
		{it(3, 1), it(2, 6), it(1, 7)},
		{it(1, 2), it(4, 4)},
	}
	for _, b := range batches {
		fast.mergeFrame(frameOf(fast, b))
		slow.mergeFrame(frameOf(slow, b))
	}
	f, s := fast.materialize(), slow.materialize()
	if len(f) != len(s) {
		t.Fatalf("sizes differ: %d vs %d", len(f), len(s))
	}
	fm := map[int64]int64{}
	for _, r := range f {
		fm[r[0].Int()] = r[1].Int()
	}
	for _, r := range s {
		if fm[r[0].Int()] != r[1].Int() {
			t.Fatalf("group %d: %d vs %d", r[0].Int(), fm[r[0].Int()], r[1].Int())
		}
	}
	if fm[1] != 2 || fm[2] != 5 || fm[3] != 1 || fm[4] != 4 {
		t.Fatalf("wrong minima: %v", fm)
	}
}

func setPred(t *testing.T) *physical.Pred {
	t.Helper()
	schema := storage.NewSchema("s",
		storage.Column{Name: "a", Type: storage.TInt},
		storage.Column{Name: "b", Type: storage.TInt})
	pp := &plan.PredPlan{
		Name: "s", Schema: schema, Agg: storage.AggNone, GroupLen: 2,
		Paths: [][]int{{0, 1}},
	}
	return &physical.Pred{
		Plan:      pp,
		KeyTypes:  []storage.Type{storage.TInt, storage.TInt},
		KeyOrders: [][]int{{0, 1}},
		Lookups:   [][]int{{0}},
	}
}

func TestReplicaSetMergeAndIndex(t *testing.T) {
	rep := newReplica(setPred(t), 0, &Options{})
	rep.consume = true
	if !merge(rep, it(1, 2)) || merge(rep, it(1, 2)) {
		t.Fatal("set dedup broken")
	}
	merge(rep, it(1, 3))
	var matches int
	rep.incIdx[0].lookup([]storage.Value{storage.IntVal(1)}, func(storage.Tuple) bool {
		matches++
		return true
	})
	if matches != 2 {
		t.Fatalf("inc index matches = %d", matches)
	}
	if len(rep.takeDelta()) != 2 {
		t.Fatal("set deltas missing")
	}
}

// batchAdd is a test shim for outBatch.add that derives the wire hash
// (full tuple for sets, group prefix otherwise).
func batchAdd(b *outBatch, tu storage.Tuple) int {
	if b.agg == storage.AggNone {
		return b.add(tu.Hash(), tu)
	}
	return b.add(storage.HashValues(tu[:b.groupLen]), tu)
}

func TestOutBatchPartialAggregation(t *testing.T) {
	// Min batch keeps the best value per group.
	b := newOutBatch(minPred(t), true)
	batchAdd(b, it(1, 9))
	batchAdd(b, it(1, 4))
	batchAdd(b, it(1, 7))
	batchAdd(b, it(2, 3))
	if b.count != 2 {
		t.Fatalf("batch size = %d, want 2", b.count)
	}
	got := map[int64]int64{}
	for i := 0; i < b.count; i++ {
		tu := b.row(i)
		got[tu[0].Int()] = tu[1].Int()
	}
	if got[1] != 4 || got[2] != 3 {
		t.Fatalf("partial agg = %v", got)
	}
	// reset() clears without reallocating.
	b.reset()
	if b.count != 0 {
		t.Fatal("reset did not clear")
	}
	batchAdd(b, it(1, 8))
	if b.count != 1 {
		t.Fatalf("after reset: %d", b.count)
	}
	if tu := b.row(0); tu[0].Int() != 1 || tu[1].Int() != 8 {
		t.Fatalf("after reset row = %v", b.row(0))
	}
}

func TestOutBatchSetDedup(t *testing.T) {
	b := newOutBatch(setPred(t), true)
	batchAdd(b, it(1, 2))
	batchAdd(b, it(1, 2))
	batchAdd(b, it(2, 1))
	if b.count != 2 {
		t.Fatalf("dedup failed: %d", b.count)
	}
}

func TestOutBatchWithoutPartialAgg(t *testing.T) {
	b := newOutBatch(minPred(t), false)
	batchAdd(b, it(1, 9))
	batchAdd(b, it(1, 4))
	if b.count != 2 {
		t.Fatal("non-partial batch must keep everything")
	}
}

// TestOutBatchDedupGrowth exercises slot-table growth and generation
// reuse: far more distinct tuples than the initial dedup table, twice.
func TestOutBatchDedupGrowth(t *testing.T) {
	b := newOutBatch(setPred(t), true)
	for round := 0; round < 2; round++ {
		for i := int64(0); i < 500; i++ {
			batchAdd(b, it(i, i+1))
			batchAdd(b, it(i, i+1)) // duplicate must not count
		}
		if b.count != 500 {
			t.Fatalf("round %d: count = %d, want 500", round, b.count)
		}
		seen := map[[2]int64]bool{}
		for i := 0; i < b.count; i++ {
			tu := b.row(i)
			seen[[2]int64{tu[0].Int(), tu[1].Int()}] = true
		}
		if len(seen) != 500 {
			t.Fatalf("round %d: %d distinct rows", round, len(seen))
		}
		b.reset()
	}
}
