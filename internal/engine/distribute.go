package engine

import (
	"runtime"

	"repro/internal/physical"
	"repro/internal/storage"
)

// outBatch buffers wire tuples bound for one (destination, predicate,
// path) and performs the Distribute operator's partial aggregation
// (§6.2.1): extremum batches keep only the best value per group,
// count/sum batches deduplicate contributors, set batches deduplicate
// tuples.
//
// Tuples are stored flat — row i occupies words[i*width:(i+1)*width] —
// with the wire hash of every row kept alongside, and the dedup index
// is an open-addressed, epoch-stamped slot table: clearing the batch is
// a generation bump, not a reallocation, so a worker's out-buffers
// reach a steady state where add/flush cycles allocate nothing.
type outBatch struct {
	agg      storage.AggKind
	groupLen int
	valType  storage.Type
	partial  bool
	width    int
	// extCol extends the wire hash (group-key hash) with one trailing
	// column to form the dedup identity: the contributor column of
	// count/sum batches. -1 when the wire hash is the identity already.
	extCol int
	// keyCols are the partial-aggregation identity columns of the wire
	// layout (nil for set batches, which compare whole tuples).
	keyCols []int

	count  int
	hashes []uint64        // wire hash per buffered row
	words  []storage.Value // count*width, flat

	slots []dedupSlot
	mask  uint64
	gen   uint32
}

// dedupSlot is one open-addressed dedup entry: a batch row index
// stamped with the generation that wrote it, plus the row's dedup hash
// so probe collisions are rejected without loading the row's words.
// Slots from earlier generations read as empty.
type dedupSlot struct {
	hash uint64
	gen  uint32
	idx  int32
}

const outBatchMinSlots = 64

func newOutBatch(pred *physical.Pred, partial bool) *outBatch {
	b := &outBatch{
		agg:      pred.Plan.Agg,
		groupLen: pred.Plan.GroupLen,
		partial:  partial,
		width:    wireWidth(pred),
		extCol:   -1,
		gen:      1,
	}
	if b.agg != storage.AggNone {
		b.valType = pred.Plan.Schema.ColType(pred.Plan.Schema.Arity() - 1)
	}
	if partial {
		b.slots = make([]dedupSlot, outBatchMinSlots)
		b.mask = outBatchMinSlots - 1
		switch b.agg {
		case storage.AggNone:
			// identity = whole tuple
		case storage.AggMin, storage.AggMax:
			b.keyCols = upto(b.groupLen)
		case storage.AggCount:
			b.keyCols = upto(b.groupLen + 1) // group + contributor
			b.extCol = b.groupLen
		case storage.AggSum:
			// group + contributor (value sits between them).
			b.keyCols = append(upto(b.groupLen), b.groupLen+1)
			b.extCol = b.groupLen + 1
		}
	}
	return b
}

func upto(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// row returns the i-th buffered wire tuple as a view into the batch.
func (b *outBatch) row(i int) storage.Tuple {
	off := i * b.width
	return storage.Tuple(b.words[off : off+b.width : off+b.width])
}

// dedupHash derives the dedup identity hash of a wire tuple from its
// wire hash.
func (b *outBatch) dedupHash(h uint64, wire storage.Tuple) uint64 {
	if b.extCol >= 0 {
		return storage.ExtendHash(h, wire[b.extCol])
	}
	return h
}

// push appends a wire tuple's words and hash to the flat storage.
func (b *outBatch) push(h uint64, wire storage.Tuple) {
	b.hashes = append(b.hashes, h)
	b.words = append(b.words, wire...)
	b.count++
}

// add buffers a wire tuple (copying it, so the caller may reuse the
// buffer), merging it into the batch when partial aggregation applies,
// and returns the batch size. h is the tuple's wire hash.
func (b *outBatch) add(h uint64, wire storage.Tuple) int {
	if !b.partial {
		b.push(h, wire)
		return b.count
	}
	dh := b.dedupHash(h, wire)
	slot := dh & b.mask
	for {
		s := b.slots[slot]
		if s.gen != b.gen {
			break // empty under the current generation
		}
		if s.hash != dh {
			slot = (slot + 1) & b.mask
			continue
		}
		t := b.row(int(s.idx))
		if !sameKey(t, wire, b.agg, b.keyCols) {
			slot = (slot + 1) & b.mask
			continue
		}
		switch b.agg {
		case storage.AggNone, storage.AggCount:
			// Duplicate tuple / contributor: drop.
		case storage.AggMin:
			if storage.Compare(wire[b.groupLen], t[b.groupLen], b.valType) < 0 {
				copy(t, wire)
			}
		case storage.AggMax:
			if storage.Compare(wire[b.groupLen], t[b.groupLen], b.valType) > 0 {
				copy(t, wire)
			}
		case storage.AggSum:
			// Same contributor: the later contribution replaces.
			copy(t, wire)
		}
		return b.count
	}
	b.slots[slot] = dedupSlot{hash: dh, gen: b.gen, idx: int32(b.count)}
	b.push(h, wire)
	if uint64(b.count)*4 > uint64(len(b.slots))*3 {
		b.growSlots()
	}
	return b.count
}

// growSlots doubles the dedup table, re-stamping every buffered row
// from its cached wire hash.
func (b *outBatch) growSlots() {
	b.slots = make([]dedupSlot, 2*len(b.slots))
	b.mask = uint64(len(b.slots) - 1)
	b.gen = 1
	for i := 0; i < b.count; i++ {
		dh := b.dedupHash(b.hashes[i], b.row(i))
		slot := dh & b.mask
		for b.slots[slot].gen == b.gen {
			slot = (slot + 1) & b.mask
		}
		b.slots[slot] = dedupSlot{hash: dh, gen: b.gen, idx: int32(i)}
	}
}

// reset clears the batch for reuse, retaining every buffer. The dedup
// table is cleared by bumping the generation stamp.
func (b *outBatch) reset() {
	b.count = 0
	b.hashes = b.hashes[:0]
	b.words = b.words[:0]
	if !b.partial {
		return
	}
	b.gen++
	if b.gen == 0 { // generation wrapped: scrub stale stamps once
		for i := range b.slots {
			b.slots[i] = dedupSlot{}
		}
		b.gen = 1
	}
}

func sameKey(a, b storage.Tuple, agg storage.AggKind, keyCols []int) bool {
	if agg == storage.AggNone {
		return a.Equal(b)
	}
	for _, c := range keyCols {
		if a[c] != b[c] {
			return false
		}
	}
	return true
}

// flushBatch packages a batch's rows into BatchSize-bounded pooled
// frames and pushes them into the destination's inbox ring, then resets
// the batch. If a ring is full the worker drains its own inbox while
// waiting, which breaks producer/consumer cycles when every worker's
// ring is saturated. It runs only at iteration boundaries, where
// gathering into the replicas is safe.
func (w *worker) flushBatch(dest, predIdx, pathIdx int, b *outBatch) {
	q := w.run.queues[dest][w.id]
	inbox := w.run.inboxes[dest]
	// One clock refresh stamps the whole batch (the old code read
	// time.Now() per frame). Refreshing rather than reading matters for
	// the DWS statistics: frames flushed by one iteration would
	// otherwise share a stamp, and the arrival trackers skip zero gaps —
	// the consumer's λ estimate collapsed onto one sample per producer
	// iteration and the gates mis-sized ω, measurably slowing the
	// coordination-bound trajectory cells.
	sentAt := w.run.clk.Refresh()
	for start := 0; start < b.count; {
		n := w.run.opts.BatchSize
		if n > b.count-start {
			n = b.count - start
		}
		f := w.getFrame(b.width, n)
		f.pred = int32(predIdx)
		f.path = int32(pathIdx)
		f.sentAt = sentAt
		copy(f.hashes, b.hashes[start:start+n])
		copy(f.words, b.words[start*b.width:(start+n)*b.width])
		start += n
		w.run.det.Produce(w.id, n)
		w.run.derived.Add(int64(n))
		for !q.TryPush(f) {
			if w.canceled() {
				// The consumer may already have exited, leaving its
				// ring full forever. Drop the batch — the run returns
				// an error and every exchange byproduct is discarded
				// (the stranded Produce count only matters to a
				// fixpoint this run will never declare).
				b.reset()
				return
			}
			// Draining our own inbox here is what prevents the cycle
			// "every ring full, every producer blocked". Under the
			// Global strategy it admits next-round tuples slightly
			// early, which only adds them to a delta that the round
			// boundary would have delivered anyway.
			w.gather()
			runtime.Gosched()
		}
		// Flag the consumer's bitmap strictly after the push lands: the
		// consumer swaps the word to zero before scanning, so this order
		// guarantees the frame is either seen by the in-progress drain or
		// re-flagged for the next one — never silently stranded.
		inbox.Set(w.id)
	}
	b.reset()
}

// flushAll sends every buffered batch (end of a local iteration).
func (w *worker) flushAll() {
	for dest, preds := range w.outBufs {
		if preds == nil {
			continue
		}
		for predIdx, paths := range preds {
			for pathIdx, b := range paths {
				if b.count > 0 {
					w.flushBatch(dest, predIdx, pathIdx, b)
				}
			}
		}
	}
	w.flushPending = w.flushPending[:0]
}
