package engine

import (
	"runtime"
	"time"

	"repro/internal/physical"
	"repro/internal/storage"
)

// outBatch buffers wire tuples bound for one (destination, predicate,
// path) and performs the Distribute operator's partial aggregation
// (§6.2.1): extremum batches keep only the best value per group,
// count/sum batches deduplicate contributors, set batches deduplicate
// tuples.
type outBatch struct {
	agg      storage.AggKind
	groupLen int
	valType  storage.Type
	partial  bool

	tuples []storage.Tuple
	// dedup maps a key hash to tuple indexes (chained on collision).
	dedup map[uint64][]int32
	// keyCols are the partial-aggregation identity columns of the wire
	// layout.
	keyCols []int
}

func newOutBatch(pred *physical.Pred, partial bool) *outBatch {
	b := &outBatch{
		agg:      pred.Plan.Agg,
		groupLen: pred.Plan.GroupLen,
		partial:  partial,
	}
	if b.agg != storage.AggNone {
		b.valType = pred.Plan.Schema.ColType(pred.Plan.Schema.Arity() - 1)
	}
	if partial {
		b.dedup = make(map[uint64][]int32)
		switch b.agg {
		case storage.AggNone:
			// identity = whole tuple
		case storage.AggMin, storage.AggMax:
			b.keyCols = upto(b.groupLen)
		case storage.AggCount:
			b.keyCols = upto(b.groupLen + 1) // group + contributor
		case storage.AggSum:
			// group + contributor (value sits between them).
			b.keyCols = append(upto(b.groupLen), b.groupLen+1)
		}
	}
	return b
}

func upto(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// add appends a wire tuple, merging it into the batch when partial
// aggregation applies, and returns the batch size.
func (b *outBatch) add(wire storage.Tuple) int {
	if !b.partial {
		b.tuples = append(b.tuples, wire)
		return len(b.tuples)
	}
	var h uint64
	if b.agg == storage.AggNone {
		h = wire.Hash()
	} else {
		h = wire.HashOn(b.keyCols)
	}
	for _, idx := range b.dedup[h] {
		t := b.tuples[idx]
		if !sameKey(t, wire, b.agg, b.keyCols) {
			continue
		}
		switch b.agg {
		case storage.AggNone, storage.AggCount:
			// Duplicate tuple / contributor: drop.
		case storage.AggMin:
			if storage.Compare(wire[b.groupLen], t[b.groupLen], b.valType) < 0 {
				b.tuples[idx] = wire
			}
		case storage.AggMax:
			if storage.Compare(wire[b.groupLen], t[b.groupLen], b.valType) > 0 {
				b.tuples[idx] = wire
			}
		case storage.AggSum:
			// Same contributor: the later contribution replaces.
			b.tuples[idx] = wire
		}
		return len(b.tuples)
	}
	b.dedup[h] = append(b.dedup[h], int32(len(b.tuples)))
	b.tuples = append(b.tuples, wire)
	return len(b.tuples)
}

func sameKey(a, b storage.Tuple, agg storage.AggKind, keyCols []int) bool {
	if agg == storage.AggNone {
		return a.Equal(b)
	}
	for _, c := range keyCols {
		if a[c] != b[c] {
			return false
		}
	}
	return true
}

// take removes and returns the buffered tuples.
func (b *outBatch) take() []storage.Tuple {
	t := b.tuples
	b.tuples = nil
	if b.partial {
		b.dedup = make(map[uint64][]int32, len(t))
	}
	return t
}

// flushBatch packages tuples into BatchSize-bounded messages and pushes
// them into the destination's inbox ring. If a ring is full the worker
// drains its own inbox while waiting, which breaks producer/consumer
// cycles when every worker's ring is saturated. It runs only at
// iteration boundaries, where gathering into the replicas is safe.
func (w *worker) flushBatch(dest, predIdx, pathIdx int, tuples []storage.Tuple) {
	q := w.run.queues[dest][w.id]
	for len(tuples) > 0 {
		n := w.run.opts.BatchSize
		if n > len(tuples) {
			n = len(tuples)
		}
		chunk := tuples[:n]
		tuples = tuples[n:]
		w.run.det.Produce(len(chunk))
		m := message{pred: predIdx, path: pathIdx, sentAt: time.Now().UnixNano(), tuples: chunk}
		for !q.TryPush(m) {
			// Draining our own inbox here is what prevents the cycle
			// "every ring full, every producer blocked". Under the
			// Global strategy it admits next-round tuples slightly
			// early, which only adds them to a delta that the round
			// boundary would have delivered anyway.
			w.gather()
			runtime.Gosched()
		}
	}
}

// flushAll sends every buffered batch (end of a local iteration).
func (w *worker) flushAll() {
	for dest, preds := range w.outBufs {
		if preds == nil {
			continue
		}
		for predIdx, paths := range preds {
			for pathIdx, b := range paths {
				if len(b.tuples) > 0 {
					w.flushBatch(dest, predIdx, pathIdx, b.take())
				}
			}
		}
	}
}
