package engine

// Differential tests: the parallel engine and the independent naive
// oracle (internal/naive) must agree on every paper query over
// randomized datasets, for every coordination strategy. The two
// implementations share no planning or execution code, so agreement is
// strong evidence of correctness.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/coord"

	"repro/internal/naive"
	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/storage"
)

// diffConfigs is a trimmed strategy/worker matrix: the reference tests
// in engine_test.go already sweep the full allConfigs grid, so the
// differential suite samples one representative per strategy plus the
// sequential floor.
func diffConfigs() []Options {
	return []Options{
		{Workers: 3, Strategy: coord.Global, BatchSize: 8},
		{Workers: 4, Strategy: coord.SSP, BatchSize: 8},
		{Workers: 3, Strategy: coord.DWS, BatchSize: 8},
		{Workers: 1, Strategy: coord.DWS, BatchSize: 8},
	}
}

// runBoth evaluates src through the parallel engine (with the given
// options) and through the oracle, returning both relation maps.
func runBoth(t *testing.T, src string, schemas map[string]*storage.Schema,
	edb map[string][]storage.Tuple, params map[string]physical.Param,
	opts Options) (map[string][]storage.Tuple, map[string][]storage.Tuple) {
	t.Helper()
	pt := map[string]storage.Type{}
	pv := map[string]storage.Value{}
	for k, p := range params {
		pt[k] = p.Type
		pv[k] = p.Value
	}
	a, err := pcg.Analyze(parser.MustParse(src), schemas, pt)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := plan.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	syms := storage.NewSymbolTable()
	prog, err := physical.Compile(lp, params, syms)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, edb, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := naive.Eval(a, edb, syms, pv, naive.WithEpsilon(opts.Epsilon))
	if err != nil {
		t.Fatal(err)
	}
	return res.Relations, oracle
}

// assertSameRelation compares two tuple sets exactly (integer data).
func assertSameRelation(t *testing.T, name string, got, want []storage.Tuple) {
	t.Helper()
	g, w := sortedRows(got), sortedRows(want)
	if len(g) != len(w) {
		t.Fatalf("%s: engine has %d tuples, oracle %d", name, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s row %d: engine %s vs oracle %s", name, i, g[i], w[i])
		}
	}
}

func TestDifferentialTC(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		edges := randGraph(rng, 25+int(seed)*10, 60+int(seed)*30)
		for _, o := range diffConfigs() {
			got, want := runBoth(t, tcSrc, arcSchemas(),
				map[string][]storage.Tuple{"arc": pairs(edges)}, nil, o)
			assertSameRelation(t, fmt.Sprintf("tc/seed%d/%s", seed, cfgName(o)), got["tc"], want["tc"])
		}
	}
}

func TestDifferentialCC(t *testing.T) {
	src := `
		cc2(Y, min<Y>) :- arc(Y, _).
		cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
		cc(Y, min<Z>) :- cc2(Y, Z).
	`
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		base := randGraph(rng, 40, 70)
		var edges [][2]int64
		for _, e := range base {
			edges = append(edges, e, [2]int64{e[1], e[0]})
		}
		for _, o := range diffConfigs() {
			got, want := runBoth(t, src, arcSchemas(),
				map[string][]storage.Tuple{"arc": pairs(edges)}, nil, o)
			assertSameRelation(t, fmt.Sprintf("cc/seed%d/%s", seed, cfgName(o)), got["cc"], want["cc"])
		}
	}
}

func TestDifferentialSSSP(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		var edges [][3]int64
		for i := 0; i < 150; i++ {
			edges = append(edges, [3]int64{rng.Int63n(40), rng.Int63n(40), 1 + rng.Int63n(20)})
		}
		params := map[string]physical.Param{"start": {Value: storage.IntVal(edges[0][0]), Type: storage.TInt}}
		for _, o := range diffConfigs() {
			got, want := runBoth(t, ssspSrc, warcSchemas(),
				map[string][]storage.Tuple{"warc": triples(edges)}, params, o)
			assertSameRelation(t, fmt.Sprintf("sssp/seed%d/%s", seed, cfgName(o)), got["sp"], want["sp"])
		}
	}
}

func TestDifferentialAPSP(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		var edges [][3]int64
		for i := 0; i < 30; i++ {
			edges = append(edges, [3]int64{rng.Int63n(12), rng.Int63n(12), 1 + rng.Int63n(9)})
		}
		for _, o := range diffConfigs() {
			got, want := runBoth(t, apspSrc, warcSchemas(),
				map[string][]storage.Tuple{"warc": triples(edges)}, nil, o)
			assertSameRelation(t, fmt.Sprintf("apsp/seed%d/%s", seed, cfgName(o)), got["path"], want["path"])
		}
	}
}

func TestDifferentialDeliveryAndAttend(t *testing.T) {
	// Delivery on random forests.
	deliverySrc := `
		delivery(P, max<D>) :- basic(P, D).
		delivery(P, max<D>) :- assbl(P, S), delivery(S, D).
	`
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		var assbl, basic [][2]int64
		// Parts 0..29; each part i>0 gets parent rng(i); leaves get days.
		isParent := map[int64]bool{}
		for i := int64(1); i < 30; i++ {
			p := rng.Int63n(i)
			assbl = append(assbl, [2]int64{p, i})
			isParent[p] = true
		}
		for i := int64(0); i < 30; i++ {
			if !isParent[i] {
				basic = append(basic, [2]int64{i, 1 + rng.Int63n(50)})
			}
		}
		schemas := map[string]*storage.Schema{
			"assbl": intSchema("assbl", "p", "s"),
			"basic": intSchema("basic", "p", "d"),
		}
		edb := map[string][]storage.Tuple{"assbl": pairs(assbl), "basic": pairs(basic)}
		for _, o := range diffConfigs() {
			got, want := runBoth(t, deliverySrc, schemas, edb, nil, o)
			assertSameRelation(t, fmt.Sprintf("delivery/seed%d/%s", seed, cfgName(o)), got["delivery"], want["delivery"])
		}
	}

	// Attend on random friendship graphs.
	attendSrc := `
		attend(X) :- organizer(X).
		cnt(Y, count<X>) :- attend(X), friend(Y, X).
		attend(X) :- cnt(X, N), N >= 3.
	`
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		var friends [][2]int64
		for i := 0; i < 120; i++ {
			friends = append(friends, [2]int64{rng.Int63n(25), rng.Int63n(25)})
		}
		orgs := []storage.Tuple{{storage.IntVal(0)}, {storage.IntVal(1)}, {storage.IntVal(2)}}
		schemas := map[string]*storage.Schema{
			"organizer": intSchema("organizer", "x"),
			"friend":    intSchema("friend", "y", "x"),
		}
		edb := map[string][]storage.Tuple{"organizer": orgs, "friend": pairs(friends)}
		for _, o := range diffConfigs() {
			got, want := runBoth(t, attendSrc, schemas, edb, nil, o)
			assertSameRelation(t, fmt.Sprintf("attend/seed%d/%s", seed, cfgName(o)), got["attend"], want["attend"])
			assertSameRelation(t, fmt.Sprintf("cnt/seed%d/%s", seed, cfgName(o)), got["cnt"], want["cnt"])
		}
	}
}

func TestDifferentialSGWithNegation(t *testing.T) {
	src := `
		sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.
		sg(X, Y) :- arc(A, X), sg(A, B), arc(B, Y).
		node(X) :- arc(_, X).
		nosib(X) :- node(X), !sg(X, X).
	`
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(600 + seed))
		edges := randGraph(rng, 15, 25)
		for _, o := range diffConfigs() {
			got, want := runBoth(t, src, arcSchemas(),
				map[string][]storage.Tuple{"arc": pairs(edges)}, nil, o)
			assertSameRelation(t, fmt.Sprintf("sg/seed%d/%s", seed, cfgName(o)), got["sg"], want["sg"])
			assertSameRelation(t, fmt.Sprintf("nosib/seed%d/%s", seed, cfgName(o)), got["nosib"], want["nosib"])
		}
	}
}

func TestDifferentialPageRank(t *testing.T) {
	src := `
		rank(X, sum<(X, I)>) :- matrix(X, _, _), I = (1 - $alpha) / $vnum.
		rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), K = $alpha * (C / D).
	`
	schemas := map[string]*storage.Schema{
		"matrix": storage.NewSchema("matrix",
			storage.Column{Name: "x", Type: storage.TInt},
			storage.Column{Name: "y", Type: storage.TInt},
			storage.Column{Name: "d", Type: storage.TFloat}),
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		// No self-loops: a self-loop makes rank(X)'s contributor X
		// collide between the seed rule and the propagation rule, and
		// a keyed sum is only well-defined when each (group,
		// contributor) pair carries one value (see internal/naive).
		var edges [][2]int64
		for _, e := range randGraph(rng, 12, 30) {
			if e[0] != e[1] {
				edges = append(edges, e)
			}
		}
		deg := map[int64]int64{}
		verts := map[int64]bool{}
		for _, e := range edges {
			deg[e[0]]++
			verts[e[0]] = true
			verts[e[1]] = true
		}
		var matrix []storage.Tuple
		for _, e := range edges {
			matrix = append(matrix, storage.Tuple{
				storage.IntVal(e[0]), storage.IntVal(e[1]), storage.FloatVal(float64(deg[e[0]]))})
		}
		params := map[string]physical.Param{
			"alpha": {Value: storage.FloatVal(0.85), Type: storage.TFloat},
			"vnum":  {Value: storage.FloatVal(float64(len(verts))), Type: storage.TFloat},
		}
		o := Options{Workers: 3, Epsilon: 1e-12}
		got, want := runBoth(t, src, schemas,
			map[string][]storage.Tuple{"matrix": matrix}, params, o)
		// Floats: compare per-key with tolerance.
		gm := map[int64]float64{}
		for _, r := range got["rank"] {
			gm[r[0].Int()] = r[1].Float()
		}
		wm := map[int64]float64{}
		for _, r := range want["rank"] {
			wm[r[0].Int()] = r[1].Float()
		}
		if len(gm) != len(wm) {
			t.Fatalf("seed %d: %d vs %d ranked vertices", seed, len(gm), len(wm))
		}
		for k, v := range wm {
			if math.Abs(gm[k]-v) > 1e-6 {
				t.Fatalf("seed %d: rank[%d] = %g vs oracle %g", seed, k, gm[k], v)
			}
		}
	}
}

// TestDifferentialRandomChains runs randomized multi-strata programs:
// a recursive core, a derived aggregate stratum and a negation stratum.
func TestDifferentialRandomChains(t *testing.T) {
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
		outdeg(X, count<Y>) :- tc(X, Y).
		far(X, max<Y>) :- tc(X, Y).
		source(X) :- arc(X, _), !fed(X).
		fed(Y) :- arc(_, Y).
	`
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(800 + seed))
		edges := randGraph(rng, 20, 40)
		for _, o := range diffConfigs() {
			got, want := runBoth(t, src, arcSchemas(),
				map[string][]storage.Tuple{"arc": pairs(edges)}, nil, o)
			for _, rel := range []string{"tc", "outdeg", "far", "source", "fed"} {
				assertSameRelation(t, fmt.Sprintf("%s/seed%d/%s", rel, seed, cfgName(o)), got[rel], want[rel])
			}
		}
	}
}

// TestDifferentialSymbols exercises interned string columns end to end.
func TestDifferentialSymbols(t *testing.T) {
	src := `
		anc(X, Y) :- parent(X, Y).
		anc(X, Y) :- anc(X, Z), parent(Z, Y).
	`
	schemas := map[string]*storage.Schema{
		"parent": storage.NewSchema("parent",
			storage.Column{Name: "p", Type: storage.TSym},
			storage.Column{Name: "c", Type: storage.TSym}),
	}
	syms := storage.NewSymbolTable()
	names := []string{"ada", "bob", "cy", "dee", "eli", "fay"}
	var edb []storage.Tuple
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		a, b := names[rng.Intn(3)], names[3+rng.Intn(3)]
		edb = append(edb, storage.Tuple{storage.SymVal(syms.Intern(a)), storage.SymVal(syms.Intern(b))})
	}
	a, err := pcg.Analyze(parser.MustParse(src), schemas, nil)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := plan.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := physical.Compile(lp, nil, syms)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, map[string][]storage.Tuple{"parent": edb}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := naive.Eval(a, map[string][]storage.Tuple{"parent": edb}, syms, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, w := sortedRows(res.Relations["anc"]), sortedRows(oracle["anc"])
	sort.Strings(g)
	sort.Strings(w)
	if fmt.Sprint(g) != fmt.Sprint(w) {
		t.Fatalf("anc: %v vs %v", g, w)
	}
}
