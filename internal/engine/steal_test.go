package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/datasets"
	"repro/internal/storage"
)

// hubEDB builds a hub-skewed arc relation: Zipf-distributed sources
// concentrate most out-edges on a few nodes, so the hash partitions
// holding the hubs' join keys receive most of each recursive delta.
func hubEDB(n int64, m int, seed int64) map[string][]storage.Tuple {
	edges := datasets.Hub(n, m, 1.5, seed)
	return map[string][]storage.Tuple{"arc": datasets.EdgeTuples(edges)}
}

// TestStealDifferentialSkewed runs TC over a hub-skewed graph with the
// morsel scheduler on and off, under every strategy and several worker
// counts, and requires identical result relations. Stealing moves
// computation, never ownership — derived tuples route through the same
// hash partitioning either way, so the fixpoint must be bit-identical.
func TestStealDifferentialSkewed(t *testing.T) {
	edb := hubEDB(300, 1500, 11)
	prog := compileSrc(t, tcSrc, arcSchemas(), nil)
	for _, strat := range []coord.Kind{coord.Global, coord.SSP, coord.DWS} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s-w%d", strat, workers), func(t *testing.T) {
				off, err := Run(prog, edb, Options{Workers: workers, Strategy: strat, StealOff: true})
				if err != nil {
					t.Fatal(err)
				}
				on, err := Run(prog, edb, Options{Workers: workers, Strategy: strat})
				if err != nil {
					t.Fatal(err)
				}
				gotOff := sortedRows(off.Relations["tc"])
				gotOn := sortedRows(on.Relations["tc"])
				if len(gotOn) != len(gotOff) {
					t.Fatalf("row count diverged: steal on %d, off %d", len(gotOn), len(gotOff))
				}
				for i := range gotOn {
					if gotOn[i] != gotOff[i] {
						t.Fatalf("row %d diverged: %q vs %q", i, gotOn[i], gotOff[i])
					}
				}
				if n := off.Stats.Steal.MorselsExecuted; n != 0 {
					t.Fatalf("StealOff run executed %d morsels", n)
				}
			})
		}
	}
}

// TestStealStatsSkewed checks the scheduler's observability surface on
// the workload it exists for: a skewed run at 4 workers must publish
// morsels to the steal plane, record per-worker busy time for every
// worker, and — whenever any morsel was actually stolen — not be more
// imbalanced than the same run with stealing off (with slack, since
// busy-time measurement has coarse-clock granularity).
func TestStealStatsSkewed(t *testing.T) {
	edb := hubEDB(600, 6000, 13)
	prog := compileSrc(t, tcSrc, arcSchemas(), nil)
	opts := Options{Workers: 4, Strategy: coord.DWS}

	on, err := Run(prog, edb, opts)
	if err != nil {
		t.Fatal(err)
	}
	optsOff := opts
	optsOff.StealOff = true
	off, err := Run(prog, edb, optsOff)
	if err != nil {
		t.Fatal(err)
	}

	if got := len(on.Stats.BusyTime()); got != opts.Workers {
		t.Fatalf("BusyTime() has %d entries, want %d", got, opts.Workers)
	}
	st := on.Stats.Steal
	if st.MorselsExecuted == 0 {
		t.Fatalf("skewed 4-worker run published no morsels: %+v", st)
	}
	if st.MorselsStolen > st.MorselsExecuted {
		t.Fatalf("stolen (%d) exceeds executed (%d)", st.MorselsStolen, st.MorselsExecuted)
	}
	// Imbalance ratios live in [1, workers]; the comparison only means
	// something if thieves actually ran morsels (on one CPU the owner
	// can legitimately drain its own deque before any thief wakes).
	if ib := on.Stats.Imbalance(); ib != 0 && ib < 1-1e-9 {
		t.Fatalf("imbalance %v < 1", ib)
	}
	if st.MorselsStolen > 0 {
		ibOn, ibOff := on.Stats.Imbalance(), off.Stats.Imbalance()
		if ibOn > ibOff*1.5+0.25 {
			t.Fatalf("stealing worsened imbalance: on %.3f, off %.3f", ibOn, ibOff)
		}
	}
}

// TestStealCancelMidFixpoint cancels an unbounded recursion whose
// per-worker deltas are large enough to keep the steal plane active
// (cycle of 4096 ≫ 4 workers × the 256-row block size): the run must
// abort promptly with context.Canceled under every strategy — with
// morsels possibly in flight on peers' deques — and leak no
// goroutines. This is the termination-soundness check for the thief
// path: outstanding-morsel joins may not wedge on a canceled worker.
func TestStealCancelMidFixpoint(t *testing.T) {
	for _, strat := range []coord.Kind{coord.DWS, coord.SSP, coord.Global} {
		t.Run(strat.String(), func(t *testing.T) {
			base := runtime.NumGoroutine()
			prog := compileSrc(t, divergingSrc, arcSchemas(), nil)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			done := make(chan error, 1)
			go func() {
				_, err := RunContext(ctx, prog, cycleEDB(4096),
					Options{Workers: 4, Strategy: strat})
				done <- err
			}()

			time.Sleep(30 * time.Millisecond) // let sharing and stealing spin up
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("cancel did not stop the evaluation within 2s")
			}
			if n := waitGoroutines(base, time.Second); n > base {
				t.Fatalf("goroutines leaked: %d before, %d after", base, n)
			}
		})
	}
}
