package engine

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/storage"
)

func TestValueEq(t *testing.T) {
	if !valueEq(storage.IntVal(3), storage.TInt, storage.IntVal(3), storage.TInt) {
		t.Fatal("3 == 3")
	}
	if valueEq(storage.IntVal(3), storage.TInt, storage.IntVal(4), storage.TInt) {
		t.Fatal("3 != 4")
	}
	// Mixed int/float promote.
	if !valueEq(storage.IntVal(3), storage.TInt, storage.FloatVal(3.0), storage.TFloat) {
		t.Fatal("3 == 3.0 across types")
	}
	if valueEq(storage.IntVal(3), storage.TInt, storage.FloatVal(3.5), storage.TFloat) {
		t.Fatal("3 != 3.5")
	}
	// Symbols never equal numbers.
	if valueEq(storage.SymVal(3), storage.TSym, storage.IntVal(3), storage.TInt) {
		t.Fatal("sym 3 != int 3")
	}
	if !valueEq(storage.SymVal(3), storage.TSym, storage.SymVal(3), storage.TSym) {
		t.Fatal("same symbol id")
	}
}

func TestEvalCompareMixedTypes(t *testing.T) {
	cases := []struct {
		op   ast.CmpOp
		l    storage.Value
		lt   storage.Type
		r    storage.Value
		rt   storage.Type
		want bool
	}{
		{ast.Lt, storage.IntVal(1), storage.TInt, storage.FloatVal(1.5), storage.TFloat, true},
		{ast.Gt, storage.FloatVal(2.5), storage.TFloat, storage.IntVal(2), storage.TInt, true},
		{ast.Eq, storage.FloatVal(2.0), storage.TFloat, storage.IntVal(2), storage.TInt, true},
		{ast.Ne, storage.IntVal(-1), storage.TInt, storage.IntVal(1), storage.TInt, true},
		{ast.Le, storage.IntVal(5), storage.TInt, storage.IntVal(5), storage.TInt, true},
		{ast.Ge, storage.IntVal(4), storage.TInt, storage.IntVal(5), storage.TInt, false},
		{ast.Lt, storage.IntVal(-3), storage.TInt, storage.IntVal(-2), storage.TInt, true},
	}
	for i, c := range cases {
		if got := evalCompare(c.op, c.l, c.lt, c.r, c.rt); got != c.want {
			t.Errorf("case %d: %v", i, got)
		}
	}
}

func TestConvertVal(t *testing.T) {
	if convertVal(storage.IntVal(7), storage.TInt, storage.TInt).Int() != 7 {
		t.Fatal("identity conversion")
	}
	if convertVal(storage.IntVal(7), storage.TInt, storage.TFloat).Float() != 7.0 {
		t.Fatal("int→float")
	}
	if convertVal(storage.FloatVal(7.9), storage.TFloat, storage.TInt).Int() != 7 {
		t.Fatal("float→int truncation")
	}
}

// TestWireFormats pins the wire layout per aggregate kind by running a
// one-worker engine and inspecting the merged relation sizes.
func TestWireFormats(t *testing.T) {
	// count wire = group + contributor (arity stays 2 for cnt(Y, N));
	// sum wire = group + value + contributor. A program using both:
	src := `
		cnt(Y, count<X>) :- friend(Y, X).
		load(Y, sum<(X, W)>) :- fw(Y, X, W).
	`
	// Note: per (group, contributor) the contribution must be
	// functional — conflicting contributions would make replacement
	// order-dependent in any engine.
	edb := map[string][]storage.Tuple{
		"friend": {it(1, 10), it(1, 11), it(1, 10), it(2, 10)},
		"fw":     {it(1, 10, 9), it(1, 11, 7), it(1, 10, 9), it(2, 10, 1)},
	}
	schemas := map[string]*storage.Schema{
		"friend": intSchema("friend", "y", "x"),
		"fw":     intSchema("fw", "y", "x", "w"),
	}
	got, want := runBoth(t, src, schemas, edb, nil, Options{Workers: 2})
	assertSameRelation(t, "cnt", got["cnt"], want["cnt"])
	assertSameRelation(t, "load", got["load"], want["load"])
	// Distinct contributors: cnt(1)=2, cnt(2)=1; sums replace per
	// contributor: load(1)=9+7, load(2)=1.
	m := map[int64]int64{}
	for _, r := range got["cnt"] {
		m[r[0].Int()] = r[1].Int()
	}
	if m[1] != 2 || m[2] != 1 {
		t.Fatalf("cnt = %v", m)
	}
	s := map[int64]int64{}
	for _, r := range got["load"] {
		s[r[0].Int()] = r[1].Int()
	}
	if s[1] != 16 || s[2] != 1 {
		t.Fatalf("load = %v", s)
	}
}
