package engine

// Kernel op-coverage tests: drive the flattened join kernel through
// every op kind (joins at several depths, conditions, lets, stratified
// negation) and every aggregate probe source (full-key get, whole-tree
// scan, partial-prefix range), cross-checking each program against the
// independent naive oracle. A construction-time hook additionally
// asserts that the compiled kernels really contain the probe source the
// test claims to cover, so coverage cannot silently rot when planning
// changes.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/coord"
	"repro/internal/naive"
	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/storage"
)

// runBothPlan is runBoth with explicit plan build options (the agg
// probe-source tests need WithForceBroadcast to reach the scan and
// full-key cursor paths).
func runBothPlan(t *testing.T, src string, schemas map[string]*storage.Schema,
	edb map[string][]storage.Tuple, params map[string]physical.Param,
	bopts []plan.BuildOption, opts Options) (map[string][]storage.Tuple, map[string][]storage.Tuple) {
	t.Helper()
	pt := map[string]storage.Type{}
	pv := map[string]storage.Value{}
	for k, p := range params {
		pt[k] = p.Type
		pv[k] = p.Value
	}
	a, err := pcg.Analyze(parser.MustParse(src), schemas, pt)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := plan.Build(a, bopts...)
	if err != nil {
		t.Fatal(err)
	}
	syms := storage.NewSymbolTable()
	prog, err := physical.Compile(lp, params, syms)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, edb, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := naive.Eval(a, edb, syms, pv, naive.WithEpsilon(opts.Epsilon))
	if err != nil {
		t.Fatal(err)
	}
	return res.Relations, oracle
}

// captureKernelSrcs installs the kernel construction hook for the
// duration of fn and returns the set of probe sources compiled into any
// kernel while it ran.
func captureKernelSrcs(t *testing.T, fn func()) map[probeSrc]bool {
	t.Helper()
	seen := map[probeSrc]bool{}
	kernelHook = func(_ *physical.Rule, srcs []probeSrc) {
		for _, s := range srcs {
			seen[s] = true
		}
	}
	defer func() { kernelHook = nil }()
	fn()
	return seen
}

func kernelConfigs() []Options {
	return []Options{
		{Workers: 1, Strategy: coord.DWS, BatchSize: 8},
		{Workers: 4, Strategy: coord.DWS, BatchSize: 8},
		{Workers: 3, Strategy: coord.Global, BatchSize: 8},
	}
}

// TestKernelCondLetJoin drives the kernel through an index-probe join
// followed by a let and a condition inside the recursion: paths of
// bounded hop count.
func TestKernelCondLetJoin(t *testing.T) {
	src := `
		bp(X, Y, C) :- arc(X, Y), C = 1.
		bp(X, Z, C) :- bp(X, Y, C1), arc(Y, Z), C = C1 + 1, C <= 4.
	`
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		edges := randGraph(rng, 20, 45)
		for _, o := range kernelConfigs() {
			var got, want map[string][]storage.Tuple
			seen := captureKernelSrcs(t, func() {
				got, want = runBothPlan(t, src, arcSchemas(),
					map[string][]storage.Tuple{"arc": pairs(edges)}, nil, nil, o)
			})
			if !seen[srcBaseLookup] {
				t.Fatal("expected a base hash-index probe in the compiled kernels")
			}
			assertSameRelation(t, fmt.Sprintf("bp/seed%d/%s", seed, cfgName(o)), got["bp"], want["bp"])
		}
	}
}

// TestKernelMultiLevelJoins exercises backtracking across several join
// frames: a three-probe base rule and a recursive rule that descends
// two probe levels past the delta binding.
func TestKernelMultiLevelJoins(t *testing.T) {
	src := `
		quad(A, D) :- arc(A, B), arc(B, C), arc(C, D).
		tc3(X, Y) :- arc(X, Y).
		tc3(X, W) :- tc3(X, Y), arc(Y, Z), arc(Z, W), X != W.
	`
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(800 + seed))
		edges := randGraph(rng, 18, 40)
		for _, o := range kernelConfigs() {
			got, want := runBothPlan(t, src, arcSchemas(),
				map[string][]storage.Tuple{"arc": pairs(edges)}, nil, nil, o)
			assertSameRelation(t, fmt.Sprintf("quad/seed%d/%s", seed, cfgName(o)), got["quad"], want["quad"])
			assertSameRelation(t, fmt.Sprintf("tc3/seed%d/%s", seed, cfgName(o)), got["tc3"], want["tc3"])
		}
	}
}

// TestKernelNegation covers the anti-join frame against both a base
// relation and an earlier-stratum derived relation.
func TestKernelNegation(t *testing.T) {
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
		node(X) :- arc(X, _).
		node(Y) :- arc(_, Y).
		unlinked(X, Y) :- node(X), node(Y), !arc(X, Y).
		unreach(X, Y) :- node(X), node(Y), !tc(X, Y).
	`
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		edges := randGraph(rng, 14, 24)
		for _, o := range kernelConfigs() {
			got, want := runBothPlan(t, src, arcSchemas(),
				map[string][]storage.Tuple{"arc": pairs(edges)}, nil, nil, o)
			assertSameRelation(t, fmt.Sprintf("unlinked/seed%d/%s", seed, cfgName(o)), got["unlinked"], want["unlinked"])
			assertSameRelation(t, fmt.Sprintf("unreach/seed%d/%s", seed, cfgName(o)), got["unreach"], want["unreach"])
		}
	}
}

func apspEdges(seed int64) [][3]int64 {
	rng := rand.New(rand.NewSource(seed))
	var edges [][3]int64
	for i := 0; i < 30; i++ {
		edges = append(edges, [3]int64{rng.Int63n(12), rng.Int63n(12), 1 + rng.Int63n(9)})
	}
	return edges
}

// TestKernelAggPrefixProbe covers the partial-prefix B+-tree range
// cursor: non-linear APSP probes path(C, B, D2) with only the first
// group column bound.
func TestKernelAggPrefixProbe(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		edges := apspEdges(1000 + seed)
		for _, o := range kernelConfigs() {
			var got, want map[string][]storage.Tuple
			seen := captureKernelSrcs(t, func() {
				got, want = runBothPlan(t, apspSrc, warcSchemas(),
					map[string][]storage.Tuple{"warc": triples(edges)}, nil, nil, o)
			})
			if !seen[srcAggPrefix] {
				t.Fatal("expected a partial-prefix aggregate probe in the compiled kernels")
			}
			assertSameRelation(t, fmt.Sprintf("apsp/seed%d/%s", seed, cfgName(o)), got["path"], want["path"])
		}
	}
}

// TestKernelAggScanProbe covers the PrefixLen-0 whole-tree cursor:
// under forced broadcast the APSP replica key order starts with a group
// column the probe leaves unbound, so the probe degrades to an ordered
// scan with post-filters.
func TestKernelAggScanProbe(t *testing.T) {
	bopts := []plan.BuildOption{plan.WithForceBroadcast()}
	for seed := int64(0); seed < 3; seed++ {
		edges := apspEdges(1100 + seed)
		for _, o := range kernelConfigs() {
			var got, want map[string][]storage.Tuple
			seen := captureKernelSrcs(t, func() {
				got, want = runBothPlan(t, apspSrc, warcSchemas(),
					map[string][]storage.Tuple{"warc": triples(edges)}, nil, bopts, o)
			})
			if !seen[srcAggScan] {
				t.Fatal("expected a whole-tree aggregate scan in the compiled kernels")
			}
			assertSameRelation(t, fmt.Sprintf("apsp-bcast/seed%d/%s", seed, cfgName(o)), got["path"], want["path"])
		}
	}
}

// TestKernelAggGetProbe covers the fully-bound group-key probe (one
// B+-tree get): a hop-count program whose recursive rule re-probes the
// aggregate with its single group column bound. The sh(X, _) filter is
// monotone — groups only ever appear, never vanish — so the fixpoint is
// deterministic and the oracle must agree.
func TestKernelAggGetProbe(t *testing.T) {
	src := `
		sh(X, min<D>) :- start(X, D).
		sh(X, min<D>) :- sh(Y, D1), arc(Y, X), sh(X, _), D = D1 + 1.
	`
	schemas := map[string]*storage.Schema{
		"arc":   intSchema("arc", "x", "y"),
		"start": intSchema("start", "x", "d"),
	}
	bopts := []plan.BuildOption{plan.WithForceBroadcast()}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(1200 + seed))
		edges := randGraph(rng, 16, 36)
		// Every node present in the graph gets a starting distance, so
		// the recursive filter probe actually passes for most tuples.
		nodes := map[int64]bool{}
		for _, e := range edges {
			nodes[e[0]] = true
			nodes[e[1]] = true
		}
		var start [][2]int64
		for v := range nodes {
			start = append(start, [2]int64{v, 5 + v%7})
		}
		edb := map[string][]storage.Tuple{"arc": pairs(edges), "start": pairs(start)}
		for _, o := range kernelConfigs() {
			var got, want map[string][]storage.Tuple
			seen := captureKernelSrcs(t, func() {
				got, want = runBothPlan(t, src, schemas, edb, nil, bopts, o)
			})
			if !seen[srcAggGet] {
				t.Fatal("expected a fully-bound aggregate get in the compiled kernels")
			}
			assertSameRelation(t, fmt.Sprintf("sh/seed%d/%s", seed, cfgName(o)), got["sh"], want["sh"])
		}
	}
}
