package engine

import (
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/coord"
	"repro/internal/storage"
)

// Morsel-driven delta scheduling. Hash partitioning balances *state*,
// not *work*: on hub-skewed graphs the partition owning a hub's join
// key receives most of the delta (and each of its rows probes the
// hub's oversized bucket), so one worker grinds while the rest park —
// the load imbalance Fan et al. identify as the dominant scaling
// obstacle for shared-memory Datalog. The steal plane fixes this by
// decoupling *where a delta is evaluated* from *where its results
// live*:
//
//   - A worker whose gathered delta for one (pred, path) replica spans
//     more than one deltaBlock publishes the tail blocks as morsels on
//     its own Chase–Lev deque (shareDelta) and advertises their row
//     count in a padded per-worker atomic, then evaluates blocks
//     LIFO-locally (finishMorsels) — the common uncontended case costs
//     a few uncontended atomics per 256 rows.
//   - A worker that would otherwise wait — before parking, inside the
//     DWS/SSP gate backoffs, in a Global round it has no delta for —
//     picks the peer advertising the most pending rows and steals the
//     oldest morsel off its deque (trySteal), executing it with its
//     OWN kernels.
//
// Only computation moves. A morsel is stealable iff every rule variant
// its delta drives probes nothing but base/earlier-stratum relations
// (initSteal): those live in the run's immutable shared store, so the
// thief's kernels — compiled against that same store — derive exactly
// the tuples the owner's would. Derivations route through the normal
// hash-partitioned emit/Distribute path regardless of who executes,
// so state ownership, dedup scopes and result relations are untouched;
// with stealing on or off the engine derives the identical relation.
// Variants that probe recursive state (APSP's non-linear rule) read
// the owner's private replica and are never published, and broadcast
// predicates are excluded because their evaluation is intentionally
// replicated per worker.
//
// Lifetime: morsel rows are views into the replica's delta buffers,
// which takeDelta recycles on a later iteration. The owner therefore
// joins on its outstanding-morsel counter before leaving iterate
// (finishMorsels): no delta buffer is reused while a thief can still
// read it. While joining, the owner helps (steals from peers) and
// gathers its own inbox, so a thief blocked pushing into the owner's
// full ring always unblocks — the same discipline flushBatch uses.
//
// Termination stays sound: a thief runs morsels only while
// detector-active, crediting produced/consumed counters to its own
// shard (the double-scan TryFinish proof tolerates arbitrary shard
// attribution), and a parked worker's deque is empty by construction —
// iterate never returns with unfinished morsels — so the detector can
// never declare a fixpoint while stolen work is in flight. park only
// *peeks* the steal plane (stealAvailable) and unparks to claim work
// from the main loop, keeping the Produce/Consume-only-while-active
// discipline intact.

// morselCap bounds the morsels one worker can have published at once;
// the deque and the arena are both this size, so a push can only fail
// defensively. 2048 morsels × 256 rows covers a one-million-row delta
// wave per (pred, path) before overflow blocks simply run locally.
const morselCap = 2048

// morsel is one stealable unit: a block of delta rows for one
// (pred, path) replica. The rows slice is a view into the owner's
// delta buffer — valid until the owner's outstanding counter says
// every morsel of the iteration is done.
type morsel struct {
	pred, path int32
	rows       []storage.Tuple
}

// stealCacheLine matches the coherence granule padded elsewhere
// (spsc, deque, detector shards).
const stealCacheLine = 64

// stealShard is one worker's slot on the steal plane. rows is the
// load hint thieves rank victims by (pending stealable rows);
// outstanding is the published-but-unfinished morsel count the owner
// joins on. Each worker's shard owns its cache lines outright so
// thieves scanning the hints never ping-pong a neighbor's counters.
type stealShard struct {
	rows        atomic.Int64
	outstanding atomic.Int64
	_           [stealCacheLine - 16]byte
}

var stealLayoutProbe [2]stealShard

// Compile-time guards, spsc-style: a stealShard must tile cache lines
// exactly or adjacent workers' shards would share one.
var (
	_ [-(unsafe.Sizeof(stealLayoutProbe[0]) % stealCacheLine)]byte
	_ [-(unsafe.Offsetof(stealLayoutProbe[1].rows) % stealCacheLine)]byte
)

// initSteal decides whether the steal plane is on for this stratum and
// which (pred, path) deltas are safe to publish. Called before workers
// are constructed (newWorker sizes deques and arenas from stealOn).
func (run *stratumRun) initSteal() {
	run.stealable = make([][]bool, len(run.st.Preds))
	any := false
	for pi, p := range run.st.Preds {
		run.stealable[pi] = make([]bool, len(p.Plan.Paths))
		if p.Plan.Broadcast {
			continue
		}
		for path, rules := range run.variants[pi] {
			if len(rules) == 0 {
				continue
			}
			safe := true
			for _, r := range rules {
				for i := range r.Ops {
					if acc := r.Ops[i].Access; acc != nil && acc.PredIdx >= 0 {
						safe = false
						break
					}
				}
				if !safe {
					break
				}
			}
			run.stealable[pi][path] = safe
			any = any || safe
		}
	}
	run.stealOn = run.n > 1 && !run.opts.StealOff && any
	if run.stealOn {
		run.steal = make([]stealShard, run.n)
	}
}

// shareDelta publishes a stealable delta's tail blocks as morsels on
// this worker's deque and evaluates the first block immediately (the
// freshest rows, still cache-warm from the gather that merged them).
// The outstanding/rows counters are raised BEFORE the deque publish:
// if they trailed it, a fast thief could steal, finish and decrement
// first, letting the owner's join observe zero with the morsel still
// running.
func (w *worker) shareDelta(pi, path int, delta []storage.Tuple) {
	sh := &w.run.steal[w.id]
	for lo := deltaBlock; lo < len(delta); lo += deltaBlock {
		hi := lo + deltaBlock
		if hi > len(delta) {
			hi = len(delta)
		}
		rows := delta[lo:hi]
		if w.morselN == len(w.morselBuf) {
			// Arena exhausted — an enormous delta wave. Overflow blocks
			// run locally; the published prefix is already stealable.
			w.execMorselRows(pi, path, rows)
			continue
		}
		m := &w.morselBuf[w.morselN]
		m.pred, m.path, m.rows = int32(pi), int32(path), rows
		sh.outstanding.Add(1)
		sh.rows.Add(int64(len(rows)))
		if !w.deque.PushBottom(uint64(w.morselN)) {
			// Defensive: the deque is arena-sized, so this cannot fire
			// while the sizes stay matched.
			sh.outstanding.Add(-1)
			sh.rows.Add(-int64(len(rows)))
			w.execMorselRows(pi, path, rows)
			continue
		}
		w.morselN++
	}
	w.execMorselRows(pi, path, delta[:deltaBlock])
}

// execMorselRows drives one block of delta rows through every variant
// kernel for (pi, path), with the same per-block budget and cancel
// rechecks the unshared path performs. The elapsed time lands in the
// executing worker's busy counter — stolen blocks credit the thief,
// which is exactly what the imbalance ratio should see.
func (w *worker) execMorselRows(pi, path int, rows []storage.Tuple) {
	if w.canceled() ||
		(w.run.opts.MaxTuples > 0 && w.run.derived.Load() > w.run.opts.MaxTuples) {
		w.droppedDeltas = true
		return
	}
	clk := w.run.clk
	start := clk.Refresh()
	for _, k := range w.recKernels[pi][path] {
		w.execBlock(k, rows)
	}
	w.busyTime += time.Duration(clk.Refresh() - start)
}

// runMorsel executes one published morsel from victim's arena (victim
// may be w itself, popping its own deque). The outstanding decrement
// comes LAST: it is the release edge after which the victim may reuse
// both the arena slot and the delta buffer the rows view.
func (w *worker) runMorsel(victim int, idx uint64) {
	m := &w.run.workers[victim].morselBuf[idx]
	sh := &w.run.steal[victim]
	sh.rows.Add(-int64(len(m.rows)))
	w.execMorselRows(int(m.pred), int(m.path), m.rows)
	w.steal.MorselsExecuted++
	if victim != w.id {
		w.steal.MorselsStolen++
	}
	sh.outstanding.Add(-1)
}

// finishMorsels drains this worker's own deque LIFO, then joins on the
// morsels thieves claimed. The join is mandatory — morsel rows are
// views into delta buffers recycled by a later takeDelta — and it
// cannot deadlock: while waiting the worker keeps stealing from peers
// (help-first) and gathering its own inbox, so a thief stuck pushing
// into one of this worker's full rings always drains.
func (w *worker) finishMorsels() {
	if !w.run.stealOn {
		return
	}
	for {
		idx, ok := w.deque.PopBottom()
		if !ok {
			break
		}
		w.runMorsel(w.id, idx)
	}
	sh := &w.run.steal[w.id]
	if sh.outstanding.Load() > 0 {
		clk := w.run.clk
		start := clk.Refresh()
		b := coord.Backoff{Clk: clk}
		for sh.outstanding.Load() > 0 {
			if w.trySteal() {
				b.Reset()
				continue
			}
			w.gather()
			b.Pause()
		}
		w.waitTime += time.Duration(clk.Refresh() - start)
	}
	// All published morsels are done; the arena may be reused.
	w.morselN = 0
}

// trySteal claims and executes one morsel, preferring the peer
// advertising the most pending rows and sweeping the remaining
// advertisers once if that race is lost. Callers must be
// detector-active: executing a morsel produces and consumes exchange
// traffic, credited to this worker's shard.
func (w *worker) trySteal() bool {
	run := w.run
	if !run.stealOn {
		return false
	}
	best := -1
	var bestRows int64
	for v := range run.steal {
		if v == w.id {
			continue
		}
		if r := run.steal[v].rows.Load(); r > bestRows {
			best, bestRows = v, r
		}
	}
	if best < 0 {
		return false
	}
	if w.stealFrom(best) {
		return true
	}
	for v := range run.steal {
		if v == w.id || v == best || run.steal[v].rows.Load() <= 0 {
			continue
		}
		if w.stealFrom(v) {
			return true
		}
	}
	return false
}

// stealFrom attempts one steal against victim's deque.
func (w *worker) stealFrom(victim int) bool {
	w.steal.Attempts++
	idx, ok := w.run.workers[victim].deque.Steal()
	if !ok {
		w.steal.Failures++
		return false
	}
	w.runMorsel(victim, idx)
	return true
}

// stealWork runs stolen morsels until the plane is dry, then drains
// and flushes the derivations so they are fully distributed before the
// caller parks or hits a barrier. Returns whether anything ran.
func (w *worker) stealWork() bool {
	if !w.run.stealOn {
		return false
	}
	did := false
	for w.trySteal() {
		did = true
		if w.canceled() {
			break
		}
	}
	if did {
		w.drainSelf()
		w.flushAll()
	}
	return did
}

// stealAvailable peeks the load hints without claiming anything — the
// only steal-plane call legal while parked (detector-inactive).
func (w *worker) stealAvailable() bool {
	if !w.run.stealOn {
		return false
	}
	for v := range w.run.steal {
		if v != w.id && w.run.steal[v].rows.Load() > 0 {
			return true
		}
	}
	return false
}

// globalSteal gives an idle Global-round worker (no delta this round)
// a window to take morsels from the peers that do have one. The plane
// only fills once a peer enters iterate, so a single immediate probe
// would usually miss; the worker instead probes through one backoff
// escalation and heads to the barrier once the plane stays dry past a
// sleep tick.
func (w *worker) globalSteal() {
	if !w.run.stealOn {
		return
	}
	b := coord.Backoff{Clk: w.run.clk}
	for !w.canceled() {
		if w.stealWork() {
			b.Reset()
			continue
		}
		if b.Pause() {
			return
		}
	}
}
