package engine

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

// TestProberGuardDifferential runs a guarded transitive closure twice —
// once with the guard relation stored as ordinary EDB tuples, once
// served by a MembershipProber over a CountedSetRelation — and demands
// identical fixpoints across every strategy × worker configuration.
func TestProberGuardDifferential(t *testing.T) {
	src := `
		tc(X, Y) :- arc(X, Y), !seen(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y), !seen(X, Y).
	`
	schemas := map[string]*storage.Schema{
		"arc":  intSchema("arc", "x", "y"),
		"seen": intSchema("seen", "x", "y"),
	}
	arcs := pairs([][2]int64{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {2, 6}, {6, 3}})
	seen := pairs([][2]int64{{1, 3}, {2, 4}, {6, 5}})

	counted := storage.NewCountedSetRelation(schemas["seen"])
	for _, s := range seen {
		counted.Add(s)
	}

	prog := compileSrc(t, src, schemas, nil)
	for _, opts := range allConfigs() {
		stored := opts
		res, err := Run(prog, map[string][]storage.Tuple{"arc": arcs, "seen": seen}, stored)
		if err != nil {
			t.Fatalf("%s stored: %v", cfgName(opts), err)
		}
		probed := opts
		probed.Probers = map[string]MembershipProber{"seen": counted}
		res2, err := Run(prog, map[string][]storage.Tuple{"arc": arcs}, probed)
		if err != nil {
			t.Fatalf("%s probed: %v", cfgName(opts), err)
		}
		a, b := sortedRows(res.Relations["tc"]), sortedRows(res2.Relations["tc"])
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("%s: stored %d rows, probed %d", cfgName(opts), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: row %d differs: %s vs %s", cfgName(opts), i, a[i], b[i])
			}
		}
		// The guard must actually bite: seen pairs are reachable in arc.
		for _, row := range a {
			if row == "1,3" || row == "2,4" {
				t.Fatalf("%s: guarded tuple %s derived", cfgName(opts), row)
			}
		}
	}
}

// TestProberRejectsNonNegatedUse pins the validation contract: a probed
// relation may appear only under fully-bound negation.
func TestProberRejectsNonNegatedUse(t *testing.T) {
	schemas := map[string]*storage.Schema{
		"arc":  intSchema("arc", "x", "y"),
		"seen": intSchema("seen", "x", "y"),
	}
	counted := storage.NewCountedSetRelation(schemas["seen"])
	opts := Options{Workers: 1, Probers: map[string]MembershipProber{"seen": counted}}

	for _, tc := range []struct {
		name, src, want string
	}{
		{"join", `out(X, Y) :- arc(X, Y), seen(X, Y).`, "positive join"},
		{"scan", `out(X, Y) :- seen(X, Y), arc(X, Y).`, ""},
	} {
		prog := compileSrc(t, tc.src, schemas, nil)
		_, err := Run(prog, map[string][]storage.Tuple{"arc": pairs([][2]int64{{1, 2}})}, opts)
		if err == nil {
			t.Fatalf("%s: expected a validation error", tc.name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}
