package engine

import (
	"testing"

	"repro/internal/coord"
	"repro/internal/storage"
)

// benchTCEdges builds the exchange-heavy graph used by the end-to-end
// allocation benchmarks: a 400-node chain (deep recursion, many local
// iterations) plus skip edges that fan derivations across partitions.
func benchTCEdges() []storage.Tuple {
	var es [][2]int64
	const n = 400
	for i := int64(0); i < n-1; i++ {
		es = append(es, [2]int64{i, i + 1})
	}
	for i := int64(0); i < n; i += 7 {
		es = append(es, [2]int64{i, (i * 13) % n})
	}
	return pairs(es)
}

// BenchmarkExchangeTC runs transitive closure end to end with 4 DWS
// workers — the full hot path: emit, wire hashing, out-batch dedup,
// pooled frame exchange, gather, set merge, incremental join index.
// allocs/op here is the headline number for the allocation-free-hot-path
// work; the seed measured ~469k allocs per run on this exact workload.
func BenchmarkExchangeTC(b *testing.B) {
	src := `tc(X, Y) :- edge(X, Y).
	tc(X, Z) :- tc(X, Y), edge(Y, Z).`
	schemas := map[string]*storage.Schema{"edge": intSchema("edge", "x", "y")}
	prog := compileSrc(b, src, schemas, nil)
	edb := map[string][]storage.Tuple{"edge": benchTCEdges()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(prog, edb, Options{Workers: 4, Strategy: coord.DWS})
		if err != nil {
			b.Fatal(err)
		}
		if res.Relations["tc"] == nil {
			b.Fatal("missing tc")
		}
	}
}

// BenchmarkExchangeTC1W is the single-worker control: no SPSC exchange,
// everything flows through the flat self-pending buffers.
func BenchmarkExchangeTC1W(b *testing.B) {
	src := `tc(X, Y) :- edge(X, Y).
	tc(X, Z) :- tc(X, Y), edge(Y, Z).`
	schemas := map[string]*storage.Schema{"edge": intSchema("edge", "x", "y")}
	prog := compileSrc(b, src, schemas, nil)
	edb := map[string][]storage.Tuple{"edge": benchTCEdges()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, edb, Options{Workers: 1, Strategy: coord.DWS}); err != nil {
			b.Fatal(err)
		}
	}
}
