package engine

import (
	"testing"

	"repro/internal/coord"
	"repro/internal/storage"
)

// benchTCEdges builds the exchange-heavy graph used by the end-to-end
// allocation benchmarks: a 400-node chain (deep recursion, many local
// iterations) plus skip edges that fan derivations across partitions.
func benchTCEdges() []storage.Tuple {
	var es [][2]int64
	const n = 400
	for i := int64(0); i < n-1; i++ {
		es = append(es, [2]int64{i, i + 1})
	}
	for i := int64(0); i < n; i += 7 {
		es = append(es, [2]int64{i, (i * 13) % n})
	}
	return pairs(es)
}

// BenchmarkExchangeTC runs transitive closure end to end with 4 DWS
// workers — the full hot path: emit, wire hashing, out-batch dedup,
// pooled frame exchange, gather, set merge, incremental join index.
// allocs/op here is the headline number for the allocation-free-hot-path
// work; the seed measured ~469k allocs per run on this exact workload.
func BenchmarkExchangeTC(b *testing.B) {
	src := `tc(X, Y) :- edge(X, Y).
	tc(X, Z) :- tc(X, Y), edge(Y, Z).`
	schemas := map[string]*storage.Schema{"edge": intSchema("edge", "x", "y")}
	prog := compileSrc(b, src, schemas, nil)
	edb := map[string][]storage.Tuple{"edge": benchTCEdges()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(prog, edb, Options{Workers: 4, Strategy: coord.DWS})
		if err != nil {
			b.Fatal(err)
		}
		if res.Relations["tc"] == nil {
			b.Fatal("missing tc")
		}
	}
}

// BenchmarkExchangeTC1W is the single-worker control: no SPSC exchange,
// everything flows through the flat self-pending buffers.
func BenchmarkExchangeTC1W(b *testing.B) {
	src := `tc(X, Y) :- edge(X, Y).
	tc(X, Z) :- tc(X, Y), edge(Y, Z).`
	schemas := map[string]*storage.Schema{"edge": intSchema("edge", "x", "y")}
	prog := compileSrc(b, src, schemas, nil)
	edb := map[string][]storage.Tuple{"edge": benchTCEdges()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, edb, Options{Workers: 1, Strategy: coord.DWS}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelRecursiveProbe isolates the representative recursive
// hot loop — outer-bind a delta tuple, probe the base hash index, emit —
// on a single worker so allocs/op reflects the kernel itself rather
// than exchange machinery. The flattened kernel must keep this at zero
// allocations per probe: every allocation here is per-run setup.
func BenchmarkKernelRecursiveProbe(b *testing.B) {
	src := `tc(X, Y) :- edge(X, Y).
	tc(X, Z) :- tc(X, Y), edge(Y, Z).`
	schemas := map[string]*storage.Schema{"edge": intSchema("edge", "x", "y")}
	prog := compileSrc(b, src, schemas, nil)
	edb := map[string][]storage.Tuple{"edge": benchTCEdges()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, edb, Options{Workers: 1, Strategy: coord.DWS}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelAggProbe is the aggregate-path counterpart: APSP's
// non-linear recursion drives the B+-tree prefix cursor and the
// reusable aggregate row buffer on every probe.
func BenchmarkKernelAggProbe(b *testing.B) {
	src := `path(A, B, min<D>) :- warc(A, B, D).
	path(A, B, min<D>) :- path(A, C, D1), path(C, B, D2), D = D1 + D2.`
	schemas := map[string]*storage.Schema{"warc": intSchema("warc", "x", "y", "w")}
	prog := compileSrc(b, src, schemas, nil)
	var es [][3]int64
	const n = 60
	for i := int64(0); i < n; i++ {
		es = append(es, [3]int64{i, (i + 1) % n, 1 + i%9})
		es = append(es, [3]int64{i, (i * 7) % n, 3 + i%5})
	}
	edb := map[string][]storage.Tuple{"warc": triples(es)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, edb, Options{Workers: 1, Strategy: coord.DWS}); err != nil {
			b.Fatal(err)
		}
	}
}

// tcAllocsEDB builds a chain+skip edge relation of the given size for
// the allocation regression test.
func tcAllocsEDB(n int64) map[string][]storage.Tuple {
	var es [][2]int64
	for i := int64(0); i < n-1; i++ {
		es = append(es, [2]int64{i, i + 1})
	}
	for i := int64(0); i < n; i += 7 {
		es = append(es, [2]int64{i, (i * 13) % n})
	}
	return map[string][]storage.Tuple{"edge": pairs(es)}
}

// TestKernelAllocsPerDerivedTuple is the allocation regression guard
// for the flattened kernel: the marginal allocation cost of a derived
// tuple must stay far below one. Re-introducing a closure, callback or
// per-probe buffer in the hot loop adds at least one allocation per
// delta tuple and trips this immediately. Comparing two workload sizes
// cancels the per-run setup allocations (trees, kernels, worker state),
// which do not scale with the derivation count.
func TestKernelAllocsPerDerivedTuple(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow")
	}
	src := `tc(X, Y) :- edge(X, Y).
	tc(X, Z) :- tc(X, Y), edge(Y, Z).`
	schemas := map[string]*storage.Schema{"edge": intSchema("edge", "x", "y")}
	prog := compileSrc(t, src, schemas, nil)

	measure := func(n int64) (allocs float64, tuples int) {
		edb := tcAllocsEDB(n)
		res, err := Run(prog, edb, Options{Workers: 1, Strategy: coord.DWS})
		if err != nil {
			t.Fatal(err)
		}
		tuples = len(res.Relations["tc"])
		allocs = testing.AllocsPerRun(3, func() {
			if _, err := Run(prog, edb, Options{Workers: 1, Strategy: coord.DWS}); err != nil {
				t.Fatal(err)
			}
		})
		return allocs, tuples
	}

	allocsSmall, tuplesSmall := measure(100)
	allocsBig, tuplesBig := measure(260)
	extraTuples := tuplesBig - tuplesSmall
	if extraTuples < 10000 {
		t.Fatalf("workload too small to measure: only %d extra tuples", extraTuples)
	}
	perTuple := (allocsBig - allocsSmall) / float64(extraTuples)
	t.Logf("tc %d->%d tuples: %.0f -> %.0f allocs, %.4f allocs per derived tuple",
		tuplesSmall, tuplesBig, allocsSmall, allocsBig, perTuple)
	if perTuple > 0.5 {
		t.Fatalf("marginal allocations per derived tuple = %.3f, want < 0.5 "+
			"(a closure or per-probe buffer crept back into the kernel hot loop)", perTuple)
	}
}
