package engine

import (
	"repro/internal/ast"
	"repro/internal/physical"
	"repro/internal/storage"
)

// matchAccess applies an access's intra-atom equalities, post-checks
// and assignments to a candidate tuple, filling slots. It returns false
// when the tuple does not satisfy the access.
func (w *worker) matchAccess(acc *physical.Access, t storage.Tuple, slots []storage.Value) bool {
	for _, eq := range acc.EqCols {
		if t[eq[0]] != t[eq[1]] {
			return false
		}
	}
	if len(acc.PostCols) > 0 {
		colTypes := w.run.types[acc.Pred]
		for i, col := range acc.PostCols {
			src := acc.PostSrcs[i]
			if !valueEq(t[col], colTypes[col], src.Get(slots), src.Type) {
				return false
			}
		}
	}
	for _, a := range acc.Assign {
		slots[a.Slot] = t[a.Col]
	}
	return true
}

// valueEq compares two typed values for equality with int/float
// promotion.
func valueEq(a storage.Value, at storage.Type, b storage.Value, bt storage.Type) bool {
	if at == bt {
		return a == b
	}
	if at == storage.TSym || bt == storage.TSym {
		return false
	}
	return a.AsFloat(at) == b.AsFloat(bt)
}

// bindOuter applies a rule's outer access to the driving tuple.
func (w *worker) bindOuter(r *physical.Rule, t storage.Tuple) bool {
	return w.matchAccess(r.Outer, t, w.scratch[r])
}

// execOps runs the pipeline from op i onward; reaching the end emits
// the head. The single slot array per (worker, rule) backtracks
// naturally: deeper ops overwrite their slots per match.
func (w *worker) execOps(r *physical.Rule, i int) {
	slots := w.scratch[r]
	if i == len(r.Ops) {
		w.emit(r, slots)
		return
	}
	op := &r.Ops[i]
	switch op.Kind {
	case physical.OpCond:
		l := op.L.Eval(slots)
		rv := op.R.Eval(slots)
		if evalCompare(op.Cmp, l, op.L.Typ, rv, op.R.Typ) {
			w.execOps(r, i+1)
		}
	case physical.OpLet:
		v := op.Expr.Eval(slots)
		slots[op.Slot] = convertVal(v, op.Expr.Typ, op.SlotType)
		w.execOps(r, i+1)
	case physical.OpNeg:
		if !w.probeExists(op.Access, slots) {
			w.execOps(r, i+1)
		}
	case physical.OpJoin:
		w.probe(op.Access, slots, func(t storage.Tuple) {
			if w.matchAccess(op.Access, t, slots) {
				w.execOps(r, i+1)
			}
		})
	}
}

// probe streams the tuples matching an access's key.
func (w *worker) probe(acc *physical.Access, slots []storage.Value, fn func(storage.Tuple)) {
	var keyArr [8]storage.Value
	key := keyArr[:0]
	for _, src := range acc.KeySrcs {
		key = append(key, src.Get(slots))
	}
	visit := func(t storage.Tuple) bool { fn(t); return true }

	if acc.PredIdx < 0 {
		// Base or earlier-stratum relation through the global store.
		if acc.LookupIdx >= 0 {
			w.run.store.lookup(acc.Pred, acc.LookupIdx, key, visit)
			return
		}
		for _, t := range w.run.store.scan(acc.Pred) {
			fn(t)
		}
		return
	}

	rep := w.replicas[acc.PredIdx][acc.PathIdx]
	if !acc.AggProbe {
		if acc.LookupIdx >= 0 {
			rep.incIdx[acc.LookupIdx].lookup(key, visit)
			return
		}
		rep.set.ForEach(visit)
		return
	}

	// Aggregate replica probe: prefix scan over the path-ordered group
	// B+-tree, materializing (group..., aggregate) rows.
	row := make(storage.Tuple, rep.groupLen+1)
	emitRow := func(k storage.Tuple, v storage.Value) bool {
		for idx, col := range rep.keyOrder {
			row[col] = k[idx]
		}
		row[rep.groupLen] = v
		fn(row)
		return true
	}
	switch {
	case acc.PrefixLen == len(rep.keyOrder):
		if v, ok := rep.aggTree.Get(key); ok {
			emitRow(key, v)
		}
	case acc.PrefixLen == 0:
		rep.aggTree.Ascend(emitRow)
	default:
		rep.aggTree.AscendPrefix(key, emitRow)
	}
}

// probeExists is the anti-join probe (stratified negation).
func (w *worker) probeExists(acc *physical.Access, slots []storage.Value) bool {
	var keyArr [8]storage.Value
	key := keyArr[:0]
	for _, src := range acc.KeySrcs {
		key = append(key, src.Get(slots))
	}
	if acc.LookupIdx >= 0 {
		found := false
		w.run.store.lookup(acc.Pred, acc.LookupIdx, key, func(t storage.Tuple) bool {
			if w.negMatches(acc, t, slots) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	for _, t := range w.run.store.scan(acc.Pred) {
		if w.negMatches(acc, t, slots) {
			return true
		}
	}
	return false
}

func (w *worker) negMatches(acc *physical.Access, t storage.Tuple, slots []storage.Value) bool {
	for _, eq := range acc.EqCols {
		if t[eq[0]] != t[eq[1]] {
			return false
		}
	}
	colTypes := w.run.types[acc.Pred]
	for i, col := range acc.PostCols {
		src := acc.PostSrcs[i]
		if !valueEq(t[col], colTypes[col], src.Get(slots), src.Type) {
			return false
		}
	}
	return true
}

// evalCompare mirrors the compiled comparison semantics.
func evalCompare(op ast.CmpOp, l storage.Value, lt storage.Type, r storage.Value, rt storage.Type) bool {
	var c int
	if lt == storage.TFloat || rt == storage.TFloat {
		lf, rf := l.AsFloat(lt), r.AsFloat(rt)
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	} else {
		c = storage.Compare(l, r, lt)
	}
	switch op {
	case ast.Eq:
		return c == 0
	case ast.Ne:
		return c != 0
	case ast.Lt:
		return c < 0
	case ast.Le:
		return c <= 0
	case ast.Gt:
		return c > 0
	case ast.Ge:
		return c >= 0
	default:
		return false
	}
}

func convertVal(v storage.Value, from, to storage.Type) storage.Value {
	if from == to {
		return v
	}
	return storage.FromFloat(v.AsFloat(from), to)
}

// emit materializes a head derivation in wire format and routes it to
// every replica of the head predicate (the Distribute operator's
// routing step). The wire tuple is assembled in the worker's per-pred
// scratch buffer — every downstream consumer (out-batches, self-pending
// arena, set relations, caches) copies what it keeps — and its wire
// hash is computed exactly once here: the full-tuple hash for set
// semantics, the group-prefix hash for aggregates. Gather, the
// existence cache, delta coalescing and set dedup all reuse it.
func (w *worker) emit(r *physical.Rule, slots []storage.Value) {
	h := &r.Head
	pred := w.run.st.Preds[h.PredIdx]
	groupLen := pred.Plan.GroupLen

	wire := w.wireBufs[h.PredIdx]
	for i, src := range h.Cols {
		wire[i] = convertVal(src.Get(slots), src.Type, h.Types[i])
	}
	switch h.Agg {
	case storage.AggMin, storage.AggMax:
		wire[groupLen] = convertVal(h.AggVal.Get(slots), h.AggVal.Type, h.Types[groupLen])
	case storage.AggCount:
		wire[groupLen] = h.Contrib.Get(slots)
	case storage.AggSum:
		wire[groupLen] = convertVal(h.AggVal.Get(slots), h.AggVal.Type, h.Types[groupLen])
		wire[groupLen+1] = h.Contrib.Get(slots)
	}

	var wh uint64
	if h.Agg == storage.AggNone {
		wh = storage.HashValues(wire)
	} else {
		wh = storage.HashValues(wire[:groupLen])
	}

	if pred.Plan.Broadcast {
		for dest := 0; dest < w.run.n; dest++ {
			w.send(dest, h.PredIdx, 0, wh, wire)
		}
		return
	}
	for pathIdx, path := range pred.Plan.Paths {
		dest := int(storage.Mix(wire.HashOn(path)) % uint64(w.run.n))
		w.send(dest, h.PredIdx, pathIdx, wh, wire)
	}
}

// send buffers a wire tuple for a destination worker. Nothing is
// merged or pushed while a local iteration is still evaluating: the
// replica B+-trees must not mutate under an active probe, and
// Algorithm 2 merges R ← R ∪ δ only after the iteration. Self-bound
// tuples are copied into the worker's flat self-pending arena, remote
// ones into the per-destination batches; both drain in flushAll /
// drainSelf, and both copy, so wire may be reused by the next emit.
func (w *worker) send(dest, predIdx, pathIdx int, h uint64, wire storage.Tuple) {
	if dest == w.id {
		off := int32(len(w.selfWords))
		w.selfWords = append(w.selfWords, wire...)
		w.selfRefs = append(w.selfRefs, selfRef{
			pred: int32(predIdx), path: int32(pathIdx), off: off, hash: h,
		})
		return
	}
	w.outBufs[dest][predIdx][pathIdx].add(h, wire)
}
