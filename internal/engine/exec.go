package engine

import (
	"repro/internal/ast"
	"repro/internal/physical"
	"repro/internal/storage"
)

// valueEq compares two typed values for equality with int/float
// promotion.
func valueEq(a storage.Value, at storage.Type, b storage.Value, bt storage.Type) bool {
	if at == bt {
		return a == b
	}
	if at == storage.TSym || bt == storage.TSym {
		return false
	}
	return a.AsFloat(at) == b.AsFloat(bt)
}

// evalCompare mirrors the compiled comparison semantics.
func evalCompare(op ast.CmpOp, l storage.Value, lt storage.Type, r storage.Value, rt storage.Type) bool {
	var c int
	if lt == storage.TFloat || rt == storage.TFloat {
		lf, rf := l.AsFloat(lt), r.AsFloat(rt)
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	} else {
		c = storage.Compare(l, r, lt)
	}
	switch op {
	case ast.Eq:
		return c == 0
	case ast.Ne:
		return c != 0
	case ast.Lt:
		return c < 0
	case ast.Le:
		return c <= 0
	case ast.Gt:
		return c > 0
	case ast.Ge:
		return c >= 0
	default:
		return false
	}
}

func convertVal(v storage.Value, from, to storage.Type) storage.Value {
	if from == to {
		return v
	}
	return storage.FromFloat(v.AsFloat(from), to)
}

// emit materializes a head derivation in wire format and routes it to
// every replica of the head predicate (the Distribute operator's
// routing step). The wire tuple is assembled in the worker's per-pred
// scratch buffer — every downstream consumer (out-batches, self-pending
// arena, set relations, caches) copies what it keeps — and its wire
// hash is computed exactly once here: the full-tuple hash for set
// semantics, the group-prefix hash for aggregates. Gather, the
// existence cache, delta coalescing and set dedup all reuse it.
func (w *worker) emit(r *physical.Rule, slots []storage.Value) {
	h := &r.Head
	pred := w.run.st.Preds[h.PredIdx]
	groupLen := pred.Plan.GroupLen

	wire := w.wireBufs[h.PredIdx]
	for i, src := range h.Cols {
		wire[i] = convertVal(src.Get(slots), src.Type, h.Types[i])
	}
	switch h.Agg {
	case storage.AggMin, storage.AggMax:
		wire[groupLen] = convertVal(h.AggVal.Get(slots), h.AggVal.Type, h.Types[groupLen])
	case storage.AggCount:
		wire[groupLen] = h.Contrib.Get(slots)
	case storage.AggSum:
		wire[groupLen] = convertVal(h.AggVal.Get(slots), h.AggVal.Type, h.Types[groupLen])
		wire[groupLen+1] = h.Contrib.Get(slots)
	}

	var wh uint64
	if h.Agg == storage.AggNone {
		wh = storage.HashValues(wire)
	} else {
		wh = storage.HashValues(wire[:groupLen])
	}

	if pred.Plan.Broadcast {
		for dest := 0; dest < w.run.n; dest++ {
			w.send(dest, h.PredIdx, 0, wh, wire)
		}
		return
	}
	for pathIdx, path := range pred.Plan.Paths {
		dest := int(storage.Mix(wire.HashOn(path)) % uint64(w.run.n))
		w.send(dest, h.PredIdx, pathIdx, wh, wire)
	}
}

// send buffers a wire tuple for a destination worker. Nothing is
// merged or pushed while a local iteration is still evaluating: the
// replica B+-trees must not mutate under an active probe, and
// Algorithm 2 merges R ← R ∪ δ only after the iteration. Self-bound
// tuples are copied into the worker's flat self-pending arena, remote
// ones into the per-destination batches; both drain in flushAll /
// drainSelf, and both copy, so wire may be reused by the next emit.
func (w *worker) send(dest, predIdx, pathIdx int, h uint64, wire storage.Tuple) {
	if dest == w.id {
		off := int32(len(w.selfWords))
		w.selfWords = append(w.selfWords, wire...)
		w.selfRefs = append(w.selfRefs, selfRef{
			pred: int32(predIdx), path: int32(pathIdx), off: off, hash: h,
		})
		return
	}
	if w.outBufs[dest][predIdx][pathIdx].add(h, wire) == w.flushCap {
		// Crossed the row cap: schedule the batch for flushing at the
		// next point where no kernel cursor is live.
		w.flushPending = append(w.flushPending, flushKey{
			dest: int32(dest), pred: int32(predIdx), path: int32(pathIdx),
		})
	}
}
