package engine

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/storage"
)

// TestPreparedBaseMatchesColdRun checks that a run attaching a shared
// PreparedBase produces exactly the relations of a cold run, for every
// strategy × worker configuration.
func TestPreparedBaseMatchesColdRun(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	edges := pairs(randGraph(rng, 60, 200))
	schemas := arcSchemas()
	edb := map[string][]storage.Tuple{"arc": edges}
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`
	prog := compileSrc(t, src, schemas, nil)
	base := NewPreparedBase(schemas, edb)

	for _, opts := range allConfigs() {
		opts := opts
		t.Run(cfgName(opts), func(t *testing.T) {
			cold, err := Run(prog, edb, opts)
			if err != nil {
				t.Fatal(err)
			}
			warm := opts
			warm.Base = base
			got, err := Run(prog, edb, warm)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sortedRows(got.Relations["tc"]), sortedRows(cold.Relations["tc"])) {
				t.Fatalf("prepared-base run diverged from cold run: %d vs %d tuples",
					len(got.Relations["tc"]), len(cold.Relations["tc"]))
			}
		})
	}

	// The base was consulted: one miss per lookup signature at most,
	// hits for every rerun.
	st := base.Stats()
	if st.Misses == 0 {
		t.Fatalf("base never built an index (misses=0); Options.Base was ignored")
	}
	if st.Hits == 0 {
		t.Fatalf("base never served a cached index (hits=0) across %d runs", len(allConfigs()))
	}
	if int64(st.Indexes) != st.Misses {
		t.Fatalf("misses (%d) should equal distinct indexes built (%d)", st.Misses, st.Indexes)
	}
}

// TestPreparedBaseConcurrentRuns exercises the singleflight build path
// under -race: 8 concurrent RunContext calls share one fresh
// PreparedBase, so they race to build the same indexes and must all
// agree with the cold result.
func TestPreparedBaseConcurrentRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	edges := pairs(randGraph(rng, 80, 300))
	schemas := arcSchemas()
	edb := map[string][]storage.Tuple{"arc": edges}
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`
	prog := compileSrc(t, src, schemas, nil)
	cold, err := Run(prog, edb, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := sortedRows(cold.Relations["tc"])

	base := NewPreparedBase(schemas, edb)
	const runs = 8
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := Options{Workers: 1 + i%3, Base: base}
			results[i], errs[i] = RunContext(context.Background(), prog, edb, opts)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if got := sortedRows(results[i].Relations["tc"]); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d diverged from cold run: %d vs %d tuples", i, len(got), len(want))
		}
	}
	st := base.Stats()
	if st.Misses != int64(st.Indexes) {
		t.Fatalf("singleflight violated: %d builds for %d distinct indexes", st.Misses, st.Indexes)
	}
}

// TestPreparedBaseSetupFaster asserts the headline perf property at the
// engine level: a warm run's SetupDuration is a small fraction of a
// cold run's on a dataset large enough for index builds to register.
func TestPreparedBaseSetupFaster(t *testing.T) {
	// 60k edges in disjoint 2-chains: the arc index build is large
	// enough to register, while the transitive closure adds nothing, so
	// the measurement isolates setup.
	var chains [][2]int64
	for i := int64(0); i < 60000; i++ {
		chains = append(chains, [2]int64{2 * i, 2*i + 1})
	}
	edges := pairs(chains)
	schemas := arcSchemas()
	edb := map[string][]storage.Tuple{"arc": edges}
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`
	prog := compileSrc(t, src, schemas, nil)
	base := NewPreparedBase(schemas, edb)
	opts := Options{Workers: 2, Base: base}

	// First run builds into the base (cold); later runs attach (warm).
	cold, err := Run(prog, edb, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := cold.Stats.SetupDuration
	for i := 0; i < 3; i++ {
		res, err := Run(prog, edb, opts)
		if err != nil {
			t.Fatal(err)
		}
		if d := res.Stats.SetupDuration; d < warm {
			warm = d
		}
	}
	if warm >= cold.Stats.SetupDuration {
		t.Fatalf("warm setup (%v) not below cold setup (%v)", warm, cold.Stats.SetupDuration)
	}
}

func TestColSig(t *testing.T) {
	cases := []struct {
		cols []int
		want string
	}{
		{nil, ""},
		{[]int{0}, "0"},
		{[]int{0, 2}, "0,2"},
		{[]int{10, 3}, "10,3"},
	}
	for _, c := range cases {
		if got := colSig(c.cols); got != c.want {
			t.Errorf("colSig(%v) = %q, want %q", c.cols, got, c.want)
		}
	}
}

// TestPreparedBaseRebase pins the single-relation invalidation
// contract: rebasing after mutating one relation keeps every other
// relation's settled index entries (hits, no rebuild) and rebuilds only
// the changed one (a miss).
func TestPreparedBaseRebase(t *testing.T) {
	schemas := map[string]*storage.Schema{
		"arc":  intSchema("arc", "x", "y"),
		"node": intSchema("node", "x", "y"),
	}
	edb := map[string][]storage.Tuple{
		"arc":  pairs([][2]int64{{1, 2}, {2, 3}}),
		"node": pairs([][2]int64{{1, 1}, {2, 2}}),
	}
	base := NewPreparedBase(schemas, edb)
	// Build one index per relation.
	base.Indexes("arc", [][]int{{0}}, 1)
	base.Indexes("node", [][]int{{0}}, 1)
	st := base.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("cold builds: %+v", st)
	}
	arcIdx := base.Indexes("arc", [][]int{{0}}, 1)[0]
	nodeIdx := base.Indexes("node", [][]int{{0}}, 1)[0]

	edb2 := map[string][]storage.Tuple{
		"arc":  pairs([][2]int64{{1, 2}, {2, 3}, {3, 4}}),
		"node": edb["node"],
	}
	nb := base.Rebase(schemas, edb2, map[string]bool{"arc": true})
	if got := nb.Indexes("node", [][]int{{0}}, 1)[0]; got != nodeIdx {
		t.Fatalf("unchanged relation's index was rebuilt")
	}
	if got := nb.Indexes("arc", [][]int{{0}}, 1)[0]; got == arcIdx {
		t.Fatalf("changed relation's index survived the rebase")
	}
	if !nb.Indexes("arc", [][]int{{0}}, 1)[0].Contains([]storage.Value{storage.IntVal(3)}) {
		t.Fatalf("rebased arc index missing the new tuple")
	}
	// Counters are cumulative across the rebase: 2 cold + 2 post-rebase
	// requests of which node hit and arc missed (4+2 total requests).
	st = nb.Stats()
	if st.Hits < 2 || st.Misses != 3 {
		t.Fatalf("post-rebase counters: %+v", st)
	}
	// The old base is untouched.
	if got := base.Indexes("arc", [][]int{{0}}, 1)[0]; got != arcIdx {
		t.Fatalf("rebase mutated the receiver")
	}
}

// TestPreparedBaseDerive pins alias index sharing: a derived base maps
// renamed relations onto the receiver's snapshots and serves their
// settled indexes by pointer.
func TestPreparedBaseDerive(t *testing.T) {
	schemas := map[string]*storage.Schema{"arc": intSchema("arc", "x", "y")}
	edb := map[string][]storage.Tuple{"arc": pairs([][2]int64{{1, 2}, {2, 3}})}
	base := NewPreparedBase(schemas, edb)
	old := base.Indexes("arc", [][]int{{0}}, 1)[0]

	mid := pairs([][2]int64{{1, 2}})
	db := base.Derive(map[string]DerivedRel{
		"arc__ivmold": {SameAs: "arc"},
		"arc__ivmnew": {Tuples: mid},
	})
	if got := db.Indexes("arc__ivmold", [][]int{{0}}, 1)[0]; got != old {
		t.Fatalf("alias did not share the settled index")
	}
	if n := len(db.Tuples("arc__ivmnew")); n != 1 {
		t.Fatalf("fresh relation has %d tuples, want 1", n)
	}
	if db.Has("arc") {
		t.Fatalf("derive leaked an unlisted relation")
	}
}
