package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/storage"
)

// divergingSrc counts path lengths over a cyclic graph: on any cycle
// the step counter grows without bound, so evaluation never reaches a
// fixpoint — the workload cancellation exists for.
const divergingSrc = `
	p(X, Z) :- arc(X, Y), Z = 0.
	p(Y, M) :- p(X, N), arc(X, Y), M = N + 1.
`

// cycleEDB returns a directed n-cycle 0→1→…→n-1→0.
func cycleEDB(n int) map[string][]storage.Tuple {
	edges := make([][2]int64, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int64{int64(i), int64((i + 1) % n)}
	}
	return map[string][]storage.Tuple{"arc": pairs(edges)}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base (with a small slack for runtime housekeeping) or the deadline
// passes, and returns the final count.
func waitGoroutines(base int, deadline time.Duration) int {
	limit := time.Now().Add(deadline)
	for {
		n := runtime.NumGoroutine()
		if n <= base || time.Now().After(limit) {
			return n
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelMidRecursion cancels an unbounded recursion over a cyclic
// EDB mid-fixpoint: the run must return promptly with context.Canceled
// under every worker count and strategy, leaking no goroutines.
func TestCancelMidRecursion(t *testing.T) {
	strategies := []coord.Kind{coord.DWS, coord.SSP, coord.Global}
	for _, workers := range []int{1, 4, 8} {
		for _, strat := range strategies {
			t.Run(fmt.Sprintf("w%d_%s", workers, strat), func(t *testing.T) {
				base := runtime.NumGoroutine()
				prog := compileSrc(t, divergingSrc, arcSchemas(), nil)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()

				type outcome struct {
					res *Result
					err error
				}
				done := make(chan outcome, 1)
				go func() {
					res, err := RunContext(ctx, prog, cycleEDB(64),
						Options{Workers: workers, Strategy: strat})
					done <- outcome{res, err}
				}()

				time.Sleep(20 * time.Millisecond) // let the recursion spin up
				cancel()
				select {
				case o := <-done:
					if !errors.Is(o.err, context.Canceled) {
						t.Fatalf("err = %v, want context.Canceled", o.err)
					}
					var ce *CanceledError
					if !errors.As(o.err, &ce) {
						t.Fatalf("err = %v, want *CanceledError", o.err)
					}
					if o.res != nil {
						t.Fatal("canceled run must not return a result")
					}
				case <-time.After(500 * time.Millisecond):
					t.Fatal("cancel did not stop the evaluation within 500ms")
				}
				if n := waitGoroutines(base, time.Second); n > base {
					t.Fatalf("goroutines leaked: %d before, %d after", base, n)
				}
			})
		}
	}
}

// TestDeadlineMidRecursion is the acceptance criterion: a 50ms
// deadline over an unbounded recursion returns a deadline error in
// under 500ms with zero leaked goroutines.
func TestDeadlineMidRecursion(t *testing.T) {
	base := runtime.NumGoroutine()
	prog := compileSrc(t, divergingSrc, arcSchemas(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	res, err := RunContext(ctx, prog, cycleEDB(64), Options{Workers: 4, Strategy: coord.DWS})
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatal("deadline-exceeded run must not return a result")
	}
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("50ms deadline took %s to abort (want < 500ms)", elapsed)
	}
	if n := waitGoroutines(base, time.Second); n > base {
		t.Fatalf("goroutines leaked: %d before, %d after", base, n)
	}
}

// TestCancelBeforeStart: a context canceled before RunContext is
// called must abort without evaluating anything.
func TestCancelBeforeStart(t *testing.T) {
	prog := compileSrc(t, divergingSrc, arcSchemas(), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, prog, cycleEDB(8), Options{Workers: 2})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pre-canceled run hung")
	}
}

// TestRunContextCompletesNormally: an un-canceled context must not
// perturb a converging evaluation.
func TestRunContextCompletesNormally(t *testing.T) {
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`
	prog := compileSrc(t, src, arcSchemas(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := RunContext(ctx, prog, cycleEDB(16), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// TC of a 16-cycle is the complete relation: 16×16 pairs.
	if got := len(res.Relations["tc"]); got != 256 {
		t.Fatalf("tc of a 16-cycle = %d tuples, want 256", got)
	}
}
