package engine

import (
	"fmt"

	"repro/internal/physical"
	"repro/internal/storage"
)

// MembershipProber answers exact membership for a virtual relation —
// one whose tuples live in a caller-owned structure rather than in the
// run's relation store. The incremental view-maintenance plane
// (internal/ivm) registers the view's live counted fixpoint under a
// guard name so that generated delta rules can write `!t__ivmlive(...)`
// and have the anti-join probe the maintained state directly, with no
// per-refresh snapshot or index build over the old fixpoint.
//
// The engine calls ContainsTuple from every worker concurrently while
// a run is in flight; implementations must be safe for concurrent
// read-only use, and the registrar must not mutate the probed
// structure until RunContext returns. The tuple handed in is a
// reused buffer in the relation's schema column order — implementations
// must not retain it.
type MembershipProber interface {
	ContainsTuple(t storage.Tuple) bool
}

// validateProbers enforces the narrow contract under which a prober can
// replace a stored relation: every occurrence of a probed name must be
// a stratified negation whose key binds every column in schema order
// (a full-tuple anti-join). Positive joins and scans would need
// iteration, which a membership prober cannot provide; a partially
// bound negation would need an index walk. The compiler gives a
// fully-bound base negation a registered lookup over the bound columns
// in ascending column order, so the check below pins exactly that
// shape and the kernel can hand the probe key to ContainsTuple as-is.
func validateProbers(prog *physical.Program, probers map[string]MembershipProber) error {
	checkRule := func(r *physical.Rule) error {
		if r.Outer != nil {
			if _, ok := probers[r.Outer.Pred]; ok {
				return fmt.Errorf("prober relation %s used as a driving scan", r.Outer.Pred)
			}
		}
		for i := range r.Ops {
			op := &r.Ops[i]
			if op.Kind != physical.OpJoin && op.Kind != physical.OpNeg {
				continue
			}
			acc := op.Access
			if _, ok := probers[acc.Pred]; !ok {
				continue
			}
			if op.Kind != physical.OpNeg {
				return fmt.Errorf("prober relation %s used as a positive join", acc.Pred)
			}
			sch := prog.Plan.Analysis.Schemas[acc.Pred]
			if sch == nil {
				return fmt.Errorf("prober relation %s has no schema", acc.Pred)
			}
			if acc.LookupIdx < 0 || len(acc.KeyCols) != sch.Arity() {
				return fmt.Errorf("prober relation %s negated with a partially bound key (%d of %d columns)",
					acc.Pred, len(acc.KeyCols), sch.Arity())
			}
			for col, kc := range acc.KeyCols {
				if kc != col {
					return fmt.Errorf("prober relation %s negated with non-identity key order %v", acc.Pred, acc.KeyCols)
				}
			}
		}
		return nil
	}
	for _, st := range prog.Strata {
		for _, rules := range [][]*physical.Rule{st.BaseRules, st.RecRules} {
			for _, r := range rules {
				if err := checkRule(r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
