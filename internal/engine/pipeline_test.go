package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/coord"
	"repro/internal/storage"
)

// Tests for the staged probe pipeline, the tag/audit counters and the
// Bloom guards. The existing differential and kernel-coverage suites
// already run with the pipeline on (ProbeGroup defaults to 16), so the
// focus here is the knobs: group-size sweeps, Bloom on/off, and the
// counter surfaces.

// fanoutEDB builds a rooted tree with fixed fanout: every internal
// node's bucket in the arc-by-source index holds exactly `fanout` rows,
// so the audited-bucket walk has a deterministic skip profile.
func fanoutEDB(depth, fanout int) map[string][]storage.Tuple {
	var es [][2]int64
	next := int64(1)
	level := []int64{0}
	for d := 0; d < depth; d++ {
		var nl []int64
		for _, p := range level {
			for c := 0; c < fanout; c++ {
				es = append(es, [2]int64{p, next})
				nl = append(nl, next)
				next++
			}
		}
		level = nl
	}
	return map[string][]storage.Tuple{"arc": pairs(es)}
}

// TestPipelineGroupSweepIdentical runs TC and SG across probe group
// sizes (1 = serial fallback) and strategies; every configuration must
// produce the same fixpoint as the serial baseline.
func TestPipelineGroupSweepIdentical(t *testing.T) {
	progs := map[string]string{
		"tc": `tc(X, Y) :- arc(X, Y).
			tc(X, Z) :- tc(X, Y), arc(Y, Z).`,
		"sg": `sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.
			sg(X, Y) :- arc(A, X), sg(A, B), arc(B, Y).`,
	}
	rng := rand.New(rand.NewSource(41))
	edb := map[string][]storage.Tuple{"arc": pairs(randGraph(rng, 60, 150))}
	for name, src := range progs {
		prog := compileSrc(t, src, arcSchemas(), nil)
		for _, workers := range []int{1, 4} {
			var want []string
			for _, g := range []int{1, 2, 4, 8, 16, 32} {
				res, err := Run(prog, edb, Options{
					Workers: workers, Strategy: coord.DWS, ProbeGroup: g})
				if err != nil {
					t.Fatal(err)
				}
				got := sortedRows(res.Relations[name])
				if want == nil {
					want = got
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("%s w=%d G=%d: %d tuples, want %d", name, workers, g, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s w=%d G=%d row %d: %s vs %s", name, workers, g, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestBloomModesIdentical forces the Bloom guards fully on and fully
// off across strategies on a negation-bearing program (anti-joins are
// the guard's primary consumer) and requires identical results.
func TestBloomModesIdentical(t *testing.T) {
	src := `
		sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.
		sg(X, Y) :- arc(A, X), sg(A, B), arc(B, Y).
		node(X) :- arc(_, X).
		nosib(X) :- node(X), !sg(X, X).
	`
	prog := compileSrc(t, src, arcSchemas(), nil)
	rng := rand.New(rand.NewSource(43))
	edb := map[string][]storage.Tuple{"arc": pairs(randGraph(rng, 30, 60))}
	for _, o := range diffConfigs() {
		var want map[string][]string
		for _, mode := range []BloomMode{BloomOff, BloomAuto, BloomForce} {
			o.Bloom = mode
			res, err := Run(prog, edb, o)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string][]string{}
			for _, rel := range []string{"sg", "nosib"} {
				got[rel] = sortedRows(res.Relations[rel])
			}
			if want == nil {
				want = got
				continue
			}
			for rel := range want {
				if fmt.Sprint(got[rel]) != fmt.Sprint(want[rel]) {
					t.Fatalf("%s mode=%d: %d tuples vs %d under BloomOff",
						rel, mode, len(got[rel]), len(want[rel]))
				}
			}
		}
	}
}

// TestProbeCountersSurface checks Stats.Probe is populated and
// internally consistent, and that on a fanout-structured workload the
// audited directory eliminates the expected share of full-key
// compares: every probed bucket holds `fanout` same-key rows, so at
// most one compare per probe survives and the skip rate approaches
// (fanout-1)/fanout.
func TestProbeCountersSurface(t *testing.T) {
	src := `tc(X, Y) :- arc(X, Y).
		tc(X, Z) :- tc(X, Y), arc(Y, Z).`
	prog := compileSrc(t, src, arcSchemas(), nil)
	edb := fanoutEDB(5, 4)
	res, err := Run(prog, edb, Options{Workers: 2, Strategy: coord.DWS})
	if err != nil {
		t.Fatal(err)
	}
	pc := res.Stats.Probe
	if pc.TagProbes == 0 {
		t.Fatalf("no tag-lane probes counted: %+v", pc)
	}
	if pc.TagRejects > pc.TagProbes {
		t.Fatalf("more rejects than probes: %+v", pc)
	}
	if pc.KeyCompares == 0 {
		t.Fatalf("no key compares counted: %+v", pc)
	}
	if rate := pc.KeySkipRate(); rate < 0.5 {
		t.Fatalf("fanout-4 workload skip rate %.2f, want >= 0.5 (audit not engaging): %+v", rate, pc)
	}
	// Per-stratum counters must sum to the run total.
	var sum storage.ProbeCounters
	for _, st := range res.Stats.Strata {
		sum.Add(st.Probe)
	}
	if sum != pc {
		t.Fatalf("stratum probe counters %+v do not sum to run total %+v", sum, pc)
	}

	// Forced Bloom on the same run must register checks.
	res, err = Run(prog, edb, Options{Workers: 2, Strategy: coord.DWS, Bloom: BloomForce})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Probe.BloomChecks == 0 {
		t.Fatalf("BloomForce run recorded no bloom checks: %+v", res.Stats.Probe)
	}
}

// TestBloomGuardSkipsAntiJoinMisses drives a negation whose probes
// mostly miss and checks the guard actually skips directory walks
// under BloomAuto (anti-joins are always guarded).
func TestBloomGuardSkipsAntiJoinMisses(t *testing.T) {
	src := `
		node(X) :- arc(X, _).
		node(X) :- arc(_, X).
		sink(X) :- node(X), !arc(X, X).
	`
	prog := compileSrc(t, src, arcSchemas(), nil)
	rng := rand.New(rand.NewSource(47))
	// Almost no self-loops → the anti-join probe stream is miss-heavy.
	edb := map[string][]storage.Tuple{"arc": pairs(randGraph(rng, 400, 900))}
	res, err := Run(prog, edb, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pc := res.Stats.Probe
	if pc.BloomChecks == 0 {
		t.Fatalf("anti-join probes never consulted the guard: %+v", pc)
	}
	if pc.BloomSkips == 0 {
		t.Fatalf("miss-heavy anti-join produced no bloom skips: %+v", pc)
	}
}

// TestPipelineAllocsSteadyState extends the kernel allocation guard to
// the staged pipeline: the marginal allocation cost per derived tuple
// must stay ~0 for serial, default and maximum group sizes (the stage
// buffer is fixed worker scratch, so G must not change the answer).
func TestPipelineAllocsSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow")
	}
	src := `tc(X, Y) :- edge(X, Y).
	tc(X, Z) :- tc(X, Y), edge(Y, Z).`
	schemas := map[string]*storage.Schema{"edge": intSchema("edge", "x", "y")}
	prog := compileSrc(t, src, schemas, nil)
	for _, g := range []int{1, 16, 32} {
		opts := Options{Workers: 1, Strategy: coord.DWS, ProbeGroup: g}
		measure := func(n int64) (float64, int) {
			edb := tcAllocsEDB(n)
			res, err := Run(prog, edb, opts)
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(3, func() {
				if _, err := Run(prog, edb, opts); err != nil {
					t.Fatal(err)
				}
			})
			return allocs, len(res.Relations["tc"])
		}
		allocsSmall, tuplesSmall := measure(100)
		allocsBig, tuplesBig := measure(260)
		extra := tuplesBig - tuplesSmall
		perTuple := (allocsBig - allocsSmall) / float64(extra)
		t.Logf("G=%d: %d->%d tuples, %.4f allocs per derived tuple", g, tuplesSmall, tuplesBig, perTuple)
		if perTuple > 0.5 {
			t.Fatalf("G=%d: marginal allocations per derived tuple = %.3f, want < 0.5 "+
				"(the staged pipeline is allocating per probe)", g, perTuple)
		}
	}
}

// BenchmarkPipelineGroupSweep is the G ∈ {1,4,8,16,32} sweep on the
// single-worker TC hot loop — the headline microbenchmark for the
// staged pipeline (G=1 is the serial baseline).
func BenchmarkPipelineGroupSweep(b *testing.B) {
	src := `tc(X, Y) :- edge(X, Y).
	tc(X, Z) :- tc(X, Y), edge(Y, Z).`
	schemas := map[string]*storage.Schema{"edge": intSchema("edge", "x", "y")}
	prog := compileSrc(b, src, schemas, nil)
	edb := map[string][]storage.Tuple{"edge": benchTCEdges()}
	for _, g := range []int{1, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(prog, edb, Options{
					Workers: 1, Strategy: coord.DWS, ProbeGroup: g}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBloomModes compares Off/Auto/Force end to end on a workload
// mixing a recursive join (high hit rate — Auto should not guard) with
// a miss-heavy negation (Auto should guard).
func BenchmarkBloomModes(b *testing.B) {
	src := `
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- tc(X, Y), edge(Y, Z).
		node(X) :- edge(X, _).
		sink(X) :- node(X), !edge(X, X).
	`
	schemas := map[string]*storage.Schema{"edge": intSchema("edge", "x", "y")}
	prog := compileSrc(b, src, schemas, nil)
	edb := map[string][]storage.Tuple{"edge": benchTCEdges()}
	for _, m := range []struct {
		name string
		mode BloomMode
	}{{"off", BloomOff}, {"auto", BloomAuto}, {"force", BloomForce}} {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(prog, edb, Options{
					Workers: 1, Strategy: coord.DWS, Bloom: m.mode}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
