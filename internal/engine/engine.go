// Package engine executes compiled physical programs with the paper's
// parallel semi-naive evaluation (Algorithms 1 and 2): hash-partitioned
// worker goroutines exchange delta tuples through SPSC ring buffers,
// coordinated by the Global barrier scheme, the SSP bounded-staleness
// scheme, or the paper's DWS dynamic weight-based strategy; aggregates
// in recursion merge through access-ordered B+-trees with partial
// aggregation in Distribute and an existence cache in front of the
// index.
package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/physical"
	"repro/internal/spsc"
	"repro/internal/storage"
)

// frame is one fixed-size batch of wire-format tuples exchanged between
// workers. Tuple words are stored flat (row i occupies
// words[i*width:(i+1)*width]) with the wire hash of every row alongside
// — the full-tuple hash for set semantics, the group-key hash for
// aggregates — so the receiver merges without re-hashing. Frames are
// recycled producer-locally: a consumer returns each drained frame to
// the worker that sized it through a per-edge SPSC recycle ring, so the
// steady-state exchange path allocates nothing and no shared pool mutex
// or GC-emptied sync.Pool sits on the hot path.
type frame struct {
	pred   int32
	path   int32
	count  int32
	width  int32
	sentAt int64
	hashes []uint64
	words  []storage.Value
}

// row returns the i-th wire tuple as a view into the frame.
func (f *frame) row(i int) storage.Tuple {
	off := i * int(f.width)
	return storage.Tuple(f.words[off : off+int(f.width) : off+int(f.width)])
}

// runCancel is the per-run cancellation token shared by every stratum
// of one RunContext call. Workers poll the flag at safe points — loop
// tops, park spins, gate waits, per-block budget rechecks, full-ring
// flush retries — so a cancel lands within one backoff tick (≤50µs of
// sleep) plus at most one delta block of evaluation. Global-strategy
// workers blocked in a barrier cannot poll, so trigger also cancels
// every barrier registered so far, waking them.
type runCancel struct {
	flag atomic.Bool
	mu   sync.Mutex
	bars []*coord.Barrier
}

func (rc *runCancel) canceled() bool { return rc.flag.Load() }

// trigger flips the flag and releases every registered barrier.
func (rc *runCancel) trigger() {
	rc.flag.Store(true)
	rc.mu.Lock()
	bars := rc.bars
	rc.mu.Unlock()
	for _, b := range bars {
		b.Cancel()
	}
}

// register adds a stratum's barrier to the cancel set; if the run was
// already canceled the barrier is canceled on the spot (trigger may
// have run before this stratum started).
func (rc *runCancel) register(b *coord.Barrier) {
	rc.mu.Lock()
	rc.bars = append(rc.bars, b)
	canceled := rc.flag.Load()
	rc.mu.Unlock()
	if canceled {
		b.Cancel()
	}
}

// Run evaluates a compiled program against the given EDB relations.
func Run(prog *physical.Program, edb map[string][]storage.Tuple, opts Options) (*Result, error) {
	return RunContext(context.Background(), prog, edb, opts)
}

// RunContext is Run with cancellation: when ctx is canceled or its
// deadline passes, every worker aborts at its next safe point — even
// mid-fixpoint inside a diverging recursion — and the call returns a
// *CanceledError wrapping ctx's error (no result). A budget truncation
// (MaxTuples / MaxLocalIters) instead returns the partial Result
// together with a *BudgetError, so callers can distinguish "you told
// me to stop" from "the program outran its budget" and still inspect
// what was derived.
func RunContext(ctx context.Context, prog *physical.Program, edb map[string][]storage.Tuple, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	setupStart := time.Now()

	rc := &runCancel{}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				rc.trigger()
			case <-stop:
			}
		}()
	}

	// Per-query setup: register base relations and index them. A
	// relation covered by a shared PreparedBase attaches its memoized
	// index set (built at most once across all runs); everything else
	// builds cold, sharded over the run's worker budget.
	store := newRelStore(prog.Plan.Analysis.Schemas)
	if len(opts.Probers) > 0 {
		// Virtual relations: validate the narrow fully-bound-negation
		// contract up front (a prober cannot serve scans or joins),
		// then register the oracles. Probed names skip tuple/index
		// registration entirely below.
		if err := validateProbers(prog, opts.Probers); err != nil {
			return nil, err
		}
		for name, p := range opts.Probers {
			store.attachProber(name, p)
		}
	}
	register := func(name string, tuples []storage.Tuple) {
		if store.prober(name) != nil {
			return
		}
		lookups := prog.BaseLookups[name]
		if opts.Base != nil && opts.Base.Has(name) {
			store.attach(name, opts.Base.Tuples(name), opts.Base.Indexes(name, lookups, opts.Workers))
			return
		}
		store.add(name, tuples, lookups, opts.Workers)
	}
	for name := range prog.Plan.Analysis.EDB {
		register(name, edb[name])
	}
	// EDB relations loaded but never referenced still need storing for
	// completeness of scans.
	for name, tuples := range edb {
		if _, ok := store.tuples[name]; !ok {
			register(name, tuples)
		}
	}

	start := time.Now()
	res := &Result{
		Relations: make(map[string][]storage.Tuple),
		Stats: Stats{
			Workers:       opts.Workers,
			Strategy:      opts.Strategy,
			SetupDuration: start.Sub(setupStart),
		},
	}
	var budgetErr *BudgetError
	for si, st := range prog.Strata {
		if rc.canceled() {
			return nil, &CanceledError{Stratum: si, Err: ctx.Err()}
		}
		ss, err := runStratum(ctx, si, prog, st, store, opts, rc)
		if err != nil {
			return nil, err
		}
		res.Stats.Strata = append(res.Stats.Strata, *ss)
		res.Stats.Probe.Add(ss.Probe)
		res.Stats.Steal.Add(ss.Steal)
		if ss.Capped && budgetErr == nil {
			budgetErr = &BudgetError{Stratum: si, Preds: ss.Preds, Tuples: ss.TuplesDerived}
		}
	}
	for _, st := range prog.Strata {
		for _, p := range st.Preds {
			res.Relations[p.Plan.Name] = store.scan(p.Plan.Name)
		}
	}
	res.Stats.Duration = time.Since(start)
	if budgetErr != nil {
		return res, budgetErr
	}
	return res, nil
}

// stratumRun is the shared state of one stratum's parallel evaluation.
type stratumRun struct {
	prog  *physical.Program
	st    *physical.Stratum
	store *relStore
	opts  Options
	n     int

	// queues[consumer][producer] is the SPSC ring M_consumer^producer.
	queues [][]*spsc.Queue[*frame]
	// inboxes[consumer] is the wakeup bitmap over that consumer's
	// rings: bit j set means ring M_consumer^j may hold frames, so
	// gather visits only flagged rings and park spins on one word.
	inboxes []*coord.Inbox
	// recycle[owner][peer] is the SPSC ring through which consumer
	// `peer` hands drained frames back to the worker that sized them.
	recycle [][]*spsc.Queue[*frame]
	det     *coord.Detector
	bar     *coord.Barrier
	clock   *coord.Clock
	// clk is the engine-wide coarse clock: refreshed at iteration
	// boundaries and backoff sleeps, read everywhere a timestamp used
	// to cost a time.Now() syscall (frame sentAt stamps, gate
	// deadlines, wait accounting).
	clk *coord.CoarseClock

	// widths[pred] is the wire-tuple width of the predicate (full arity
	// for sets; group+value / group+contributor layouts for aggregates).
	widths []int

	// variants[pred][path] lists the delta variants driven by that
	// replica's deltas.
	variants [][][]*physical.Rule
	// consume[pred][path] marks replicas whose deltas are consumed.
	consume [][]bool
	// types caches column types per relation for comparisons.
	types map[string][]storage.Type

	// rc is the run-wide cancellation token; workers poll it at every
	// safe point (see runCancel).
	rc *runCancel

	// stealOn gates the morsel steal plane (>1 worker, not StealOff,
	// and at least one stealable delta stream — see steal.go).
	stealOn bool
	// stealable[pred][path] marks delta streams whose variants probe
	// only the immutable shared store and may therefore be evaluated
	// by any worker.
	stealable [][]bool
	// steal[i] is worker i's padded load-hint + outstanding-morsel
	// shard.
	steal []stealShard

	// derived counts every derivation that left a kernel — remote
	// sends plus self-bound tuples — so MaxTuples bounds total
	// derivation volume even at one worker, where nothing crosses a
	// ring (the detector only sees exchange traffic).
	derived atomic.Int64

	workers []*worker
	stats   StratumStats
	errMu   sync.Mutex
	err     error
}

// wireWidth returns the fixed wire-tuple width of a predicate.
func wireWidth(p *physical.Pred) int {
	pp := p.Plan
	switch pp.Agg {
	case storage.AggNone:
		return pp.Schema.Arity()
	case storage.AggMin, storage.AggMax, storage.AggCount:
		return pp.GroupLen + 1
	default: // AggSum: group + value + contributor
		return pp.GroupLen + 2
	}
}

func (run *stratumRun) fail(err error) {
	run.errMu.Lock()
	if run.err == nil {
		run.err = err
	}
	run.errMu.Unlock()
}

func runStratum(ctx context.Context, si int, prog *physical.Program, st *physical.Stratum, store *relStore, opts Options, rc *runCancel) (*StratumStats, error) {
	n := opts.Workers
	run := &stratumRun{
		prog:  prog,
		st:    st,
		store: store,
		opts:  opts,
		n:     n,
		det:   coord.NewDetector(n),
		bar:   coord.NewBarrier(n),
		clock: coord.NewClock(n, opts.Slack),
		clk:   coord.NewCoarseClock(),
		types: make(map[string][]storage.Type),
		rc:    rc,
	}
	rc.register(run.bar)
	begin := time.Now()

	// Recycle rings only need to hold frames awaiting reuse, not the
	// full data-ring backlog; overflow drops to the GC, so a small ring
	// keeps steady-state reuse while not doubling the n² ring memory
	// zeroed at every stratum start.
	recycleCap := opts.QueueCap / 16
	if recycleCap < 64 {
		recycleCap = 64
	}
	run.queues = make([][]*spsc.Queue[*frame], n)
	run.inboxes = make([]*coord.Inbox, n)
	run.recycle = make([][]*spsc.Queue[*frame], n)
	for i := range run.queues {
		run.queues[i] = make([]*spsc.Queue[*frame], n)
		run.inboxes[i] = coord.NewInbox(n)
		run.recycle[i] = make([]*spsc.Queue[*frame], n)
		for j := range run.queues[i] {
			if i != j {
				run.queues[i][j] = spsc.New[*frame](opts.QueueCap)
				run.recycle[i][j] = spsc.New[*frame](recycleCap)
			}
		}
	}
	run.widths = make([]int, len(st.Preds))
	for i, p := range st.Preds {
		run.widths[i] = wireWidth(p)
	}

	run.variants = make([][][]*physical.Rule, len(st.Preds))
	run.consume = make([][]bool, len(st.Preds))
	for i, p := range st.Preds {
		run.variants[i] = make([][]*physical.Rule, len(p.Plan.Paths))
		run.consume[i] = make([]bool, len(p.Plan.Paths))
	}
	for _, r := range st.RecRules {
		run.variants[r.OuterPredIdx][r.OuterPathIdx] = append(run.variants[r.OuterPredIdx][r.OuterPathIdx], r)
		run.consume[r.OuterPredIdx][r.OuterPathIdx] = true
	}

	typesOf := func(name string) []storage.Type {
		s := prog.Plan.Analysis.Schemas[name]
		ts := make([]storage.Type, s.Arity())
		for i := range ts {
			ts[i] = s.ColType(i)
		}
		return ts
	}
	collect := func(rules []*physical.Rule) {
		for _, r := range rules {
			if r.Outer != nil {
				if _, ok := run.types[r.Outer.Pred]; !ok {
					run.types[r.Outer.Pred] = typesOf(r.Outer.Pred)
				}
			}
			for _, op := range r.Ops {
				if op.Access != nil {
					if _, ok := run.types[op.Access.Pred]; !ok {
						run.types[op.Access.Pred] = typesOf(op.Access.Pred)
					}
				}
			}
		}
	}
	collect(st.BaseRules)
	collect(st.RecRules)
	run.initSteal()

	run.workers = make([]*worker, n)
	for i := 0; i < n; i++ {
		run.workers[i] = newWorker(run, i)
	}
	run.stats = StratumStats{
		Preds:      st.Logical.Stratum.Preds,
		Recursive:  st.Recursive,
		LocalIters: make([]int64, n),
		WaitTime:   make([]time.Duration, n),
		BusyTime:   make([]time.Duration, n),
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if run.opts.Strategy == coord.Global && st.Recursive {
				w.runGlobal()
			} else {
				w.runAsync()
			}
		}(run.workers[i])
	}
	wg.Wait()
	if run.err != nil {
		return nil, run.err
	}
	if rc.canceled() {
		// Workers bailed at safe points; their replicas may hold an
		// arbitrary prefix of the fixpoint. Nothing is materialized —
		// the whole run reports the context's error.
		return nil, &CanceledError{Stratum: si, Err: ctx.Err()}
	}

	// Materialize primary replicas into the global store.
	run.stats.ResultTuples = make(map[string]int)
	for pi, p := range st.Preds {
		var tuples []storage.Tuple
		if p.Plan.Broadcast {
			tuples = run.workers[0].replicas[pi][0].materialize()
		} else {
			for _, w := range run.workers {
				tuples = append(tuples, w.replicas[pi][0].materialize()...)
			}
		}
		store.add(p.Plan.Name, tuples, prog.BaseLookups[p.Plan.Name], opts.Workers)
		run.stats.ResultTuples[p.Plan.Name] = len(tuples)
	}
	for i, w := range run.workers {
		run.stats.LocalIters[i] = w.localIters
		run.stats.WaitTime[i] = w.waitTime
		run.stats.BusyTime[i] = w.busyTime
		run.stats.TuplesMerged += w.merged
		run.stats.Probe.Add(w.pc)
		run.stats.Steal.Add(w.steal)
		if w.droppedDeltas {
			run.stats.Capped = true
		}
	}
	run.stats.TuplesSent = run.det.Produced()
	run.stats.TuplesDerived = run.derived.Load()
	run.stats.Duration = time.Since(begin)
	return &run.stats, nil
}
