package engine

import (
	"repro/internal/physical"
	"repro/internal/storage"
)

// Staged, group-prefetched probe pipeline (AMAC-style). A recursive
// join's inner loop is a chain of dependent cache misses: hash the
// delta tuple's key, load a directory line, load an arena row — each
// load waiting on the previous one, one probe at a time. The memory
// subsystem can serve many misses concurrently; a serial probe loop
// never asks it to.
//
// execBlock restructures the delta-block loop so G independent probe
// chains are in flight at once, in three stages over each group of G
// driving tuples:
//
//	stage 1  bind + filter + hash every tuple's probe key, and issue a
//	         prefetch for the directory line the hash selects;
//	stage 2  resolve every cursor against the (by now resident)
//	         directory — Bloom guard first when enabled — and issue a
//	         prefetch for the first arena row / chain entry;
//	stage 3  run each member's full frame walk from its pre-resolved
//	         cursor.
//
// Only the rule's first join is staged — it is the probe the delta
// drives directly and by far the hottest; deeper joins run inside
// stage 3's walk as before. Correctness notes:
//
//   - Stages 1–2 keep no per-member slot state: later group members
//     clobber the kernel's shared slot array and key scratch, so stage
//     3 re-binds and re-filters each member (cheap: outer assigns plus
//     pre-join conds) before installing its resolved cursor. Only the
//     hash and cursor survive the stages, and neither depends on the
//     scratch.
//   - Cursors resolved in stage 2 stay valid across the merges stage 3
//     may trigger (self-drains / batch flushes between members): base
//     hash indexes are immutable, and an incIndex append/grow rewrites
//     chain links without dropping any entry reachable from a live
//     cursor position. A tuple merged after a member's cursor was
//     resolved is simply not seen by that member — it entered the
//     replica as a delta and semi-naive evaluation re-derives through
//     it when that delta is processed.
//   - The stage buffer is a fixed worker-owned array (maxProbeGroup),
//     so the steady state allocates nothing.
type probeStage struct {
	t        storage.Tuple
	h        uint64
	pos, end int
	inc      incCursor
	skip     bool
}

// maxProbeGroup bounds Options.ProbeGroup; the per-worker stage buffer
// is this fixed size. 32 chains already exceed what one core's miss
// queue sustains, so larger groups only cool the prefetched lines.
const maxProbeGroup = 32

// pipelineMinRows is the adaptive gate for a defaulted ProbeGroup: the
// staged pipeline engages only when the probed structure holds at
// least this many rows. While the directory, tag lane and arena sit in
// the cache hierarchy, every prefetch is a no-op the core still has to
// issue and the double bind (stages 1 and 3 both run prepare) is pure
// overhead — measured 5-20% slower than the serial walk on LLC-resident
// indexes. At 512K rows the slots, tags and arena together pass ~25MB,
// past the last-level cache of typical server parts, and the probe
// stream becomes the DRAM-latency-bound chain of dependent misses the
// pipeline exists to overlap. The gate errs toward serial: staging a
// cached index costs real time, while walking an oversized one serially
// only forfeits overlap. An explicit Options.ProbeGroup bypasses the
// gate (benchmarks, tests, hosts with small caches).
const pipelineMinRows = 1 << 19

// probeHot reports whether the kernel's pipeline frame currently
// probes a structure large enough to be worth staging (or the run
// pinned the pipeline on). Incremental indexes grow during evaluation,
// so the answer is re-checked per block.
func (w *worker) probeHot(k *kernel) bool {
	if w.run.opts.probeGroupPinned {
		return true
	}
	pf := &k.frames[k.pf]
	if k.pfSrc == srcBaseLookup {
		return pf.baseIdx.Len() >= pipelineMinRows
	}
	return len(pf.rep.incIdx[pf.acc.LookupIdx].ids) >= pipelineMinRows
}

// prepare binds the driving tuple and runs the frames ahead of the
// pipeline join — pure filters (conds) and lets — then builds that
// join's probe key into its scratch. It is the re-runnable prefix of
// exec: deterministic in t, touching only outer-bound slots.
func (k *kernel) prepare(t storage.Tuple) bool {
	if !k.bindOuter(t) {
		return false
	}
	slots := k.slots
	for i := 0; i < k.pf; i++ {
		f := &k.frames[i]
		if f.kind == physical.OpCond {
			if !evalCompare(f.cmp, f.l.Eval(slots), f.l.Typ, f.r.Eval(slots), f.r.Typ) {
				return false
			}
		} else { // OpLet: pf only covers cond/let prefixes
			slots[f.slot] = convertVal(f.expr.Eval(slots), f.expr.Typ, f.slotType)
		}
	}
	f := &k.frames[k.pf]
	key := f.key[:0]
	for _, src := range f.acc.KeySrcs {
		key = append(key, src.Get(slots))
	}
	f.key = key
	return true
}

// drainChecks runs the between-executions housekeeping: early self
// drains and capped batch flushes. Legal only when no kernel cursor is
// live (see selfDrainWords) — execBlock calls it after each member's
// walk completes, never mid-stage.
func (w *worker) drainChecks() {
	if len(w.selfWords) >= selfDrainWords {
		w.drainSelf()
	}
	if len(w.flushPending) > 0 {
		w.flushPendingBatches()
	}
}

// execBlock drives a block of delta tuples through one kernel. Rules
// whose first join is lookup-shaped go through the staged pipeline;
// everything else (scan-outer rules, aggregate probes, G=1) falls back
// to the serial per-tuple loop.
func (w *worker) execBlock(k *kernel, block []storage.Tuple) {
	g := w.probeGroup
	if k.pf < 0 || g <= 1 || !w.probeHot(k) {
		for _, t := range block {
			if k.bindOuter(t) {
				w.exec(k)
			}
			w.drainChecks()
		}
		return
	}
	pf := &k.frames[k.pf]
	for lo := 0; lo < len(block); lo += g {
		hi := lo + g
		if hi > len(block) {
			hi = len(block)
		}
		// Stage 1: hash the group's probe keys, prefetch directory
		// lines. Members failing the outer bind or a pre-join cond
		// drop out here.
		ns := 0
		if k.pfSrc == srcBaseLookup {
			idx := pf.baseIdx
			for _, t := range block[lo:hi] {
				if !k.prepare(t) {
					continue
				}
				st := &w.stages[ns]
				ns++
				st.t = t
				st.h = storage.HashValues(pf.key)
				st.skip = false
				idx.PrefetchBucket(st.h)
			}
		} else {
			ix := pf.rep.incIdx[pf.acc.LookupIdx]
			for _, t := range block[lo:hi] {
				if !k.prepare(t) {
					continue
				}
				st := &w.stages[ns]
				ns++
				st.t = t
				st.h = storage.HashValues(pf.key)
				st.skip = false
				ix.prefetchHead(st.h)
			}
		}
		// Stage 2: resolve cursors against the prefetched directory,
		// prefetch the first row each walk will read. Empty buckets and
		// Bloom-rejected probes drop out (the pipeline frame is the
		// rule's first join, so an empty cursor means the member derives
		// nothing).
		if k.pfSrc == srcBaseLookup {
			idx := pf.baseIdx
			for i := 0; i < ns; i++ {
				st := &w.stages[i]
				if pf.bloom == bloomGuard {
					pf.pc.BloomChecks++
					if !idx.MayContain(st.h) {
						pf.pc.BloomSkips++
						st.skip = true
						continue
					}
				}
				st.pos, st.end = idx.ProbeRange(st.h, pf.pc)
				if pf.bloom == bloomWarm {
					pf.bloomProbes++
					if st.pos < st.end {
						pf.bloomHits++
					}
					if pf.bloomProbes >= bloomWarmup {
						pf.decideBloom()
					}
				}
				if st.pos >= st.end {
					st.skip = true
					continue
				}
				idx.PrefetchRow(st.pos)
			}
		} else {
			ix := pf.rep.incIdx[pf.acc.LookupIdx]
			for i := 0; i < ns; i++ {
				st := &w.stages[i]
				st.inc = ix.seekHash(st.h)
				if st.inc.i < 0 {
					st.skip = true
					continue
				}
				ix.prefetchEntry(st.inc.i)
			}
		}
		// Stage 3: re-prepare each surviving member (the group clobbered
		// the shared scratch) and run its frame walk from the resolved
		// cursor.
		for i := 0; i < ns; i++ {
			st := &w.stages[i]
			if st.skip {
				continue
			}
			k.prepare(st.t)
			if k.pfSrc == srcBaseLookup {
				pf.pos, pf.end = st.pos, st.end
				pf.keyOK = false
			} else {
				pf.inc = st.inc
			}
			w.execLoop(k, k.pf, false)
			w.drainChecks()
		}
	}
}
