package storage

import (
	"math/rand"
	"testing"
)

func countedSchema(name string) *Schema {
	return NewSchema(name, Column{"x", TInt}, Column{"y", TInt})
}

func TestCountedSetRelationMultiset(t *testing.T) {
	r := NewCountedSetRelation(countedSchema("m"))
	ab := Tuple{Value(1), Value(2)}

	ord, fresh, revived := r.Add(ab)
	if !fresh || revived || ord != 0 {
		t.Fatalf("first add: ord=%d fresh=%v revived=%v", ord, fresh, revived)
	}
	ord2, fresh2, _ := r.Add(ab)
	if fresh2 || ord2 != 0 {
		t.Fatalf("duplicate add must reuse the ordinal: ord=%d fresh=%v", ord2, fresh2)
	}
	if r.CountAt(0) != 2 || r.Live() != 1 {
		t.Fatalf("count=%d live=%d, want 2/1", r.CountAt(0), r.Live())
	}

	if present, died := r.Remove(ab); !present || died {
		t.Fatalf("first remove of count-2 tuple: present=%v died=%v", present, died)
	}
	if present, died := r.Remove(ab); !present || !died {
		t.Fatalf("second remove must kill: present=%v died=%v", present, died)
	}
	if r.Live() != 0 || r.ContainsLive(ab) {
		t.Fatalf("tuple should be dead")
	}
	if present, _ := r.Remove(ab); present {
		t.Fatalf("removing a dead tuple must be a no-op")
	}
	if present, _ := r.Remove(Tuple{Value(9), Value(9)}); present {
		t.Fatalf("removing an absent tuple must be a no-op")
	}

	// Re-adding a dead tuple revives it in place.
	ord3, fresh3, revived3 := r.Add(ab)
	if ord3 != 0 || fresh3 || !revived3 {
		t.Fatalf("re-add: ord=%d fresh=%v revived=%v", ord3, fresh3, revived3)
	}
	if r.Len() != 1 || r.Live() != 1 {
		t.Fatalf("len=%d live=%d, want 1/1", r.Len(), r.Live())
	}
}

func TestCountedSetRelationKillRevive(t *testing.T) {
	r := NewCountedSetRelation(countedSchema("d"))
	for i := 0; i < 4; i++ {
		r.Add(Tuple{Value(i), Value(i + 1)})
	}
	victim := Tuple{Value(2), Value(3)}
	if !r.Kill(victim) {
		t.Fatalf("kill of a live tuple must report true")
	}
	if r.Kill(victim) {
		t.Fatalf("double kill must report false")
	}
	if r.Live() != 3 || r.ContainsLive(victim) {
		t.Fatalf("victim still live")
	}
	snap := r.LiveSnapshot()
	if len(snap) != 3 {
		t.Fatalf("live snapshot len %d, want 3", len(snap))
	}
	for _, s := range snap {
		if s.Equal(victim) {
			t.Fatalf("dead tuple in live snapshot")
		}
	}
	if !r.Revive(victim) {
		t.Fatalf("revive of a dead tuple must report true")
	}
	if r.Revive(victim) {
		t.Fatalf("revive of a live tuple must report false")
	}
	if r.Revive(Tuple{Value(99), Value(99)}) {
		t.Fatalf("revive of an absent tuple must report false")
	}
	if r.Live() != 4 || !r.ContainsTuple(victim) {
		t.Fatalf("victim not back: live=%d", r.Live())
	}
}

// TestCountedSetRelationFuzz cross-checks the counted relation against
// a map-based multiset model through random add/remove/kill/revive
// traffic, including enough distinct keys to force table growth.
func TestCountedSetRelationFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewCountedSetRelation(countedSchema("f"))
	model := map[[2]int64]int{}
	key := func() [2]int64 {
		return [2]int64{int64(rng.Intn(300)), int64(rng.Intn(300))}
	}
	tup := func(k [2]int64) Tuple { return Tuple{Value(k[0]), Value(k[1])} }
	for i := 0; i < 20000; i++ {
		k := key()
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // add
			r.Add(tup(k))
			model[k]++
		case 5, 6, 7: // remove
			present, _ := r.Remove(tup(k))
			if present != (model[k] > 0) {
				t.Fatalf("remove present=%v, model count %d", present, model[k])
			}
			if model[k] > 0 {
				model[k]--
			}
		case 8: // kill
			was := r.Kill(tup(k))
			if was != (model[k] > 0) {
				t.Fatalf("kill=%v, model count %d", was, model[k])
			}
			model[k] = 0
		case 9: // revive
			r.Revive(tup(k)) // model: revive only affects dead-but-seen; emulate below
			if model[k] == 0 {
				// Revive succeeds only if the tuple was inserted before;
				// mirror by checking the relation's own view.
				if r.ContainsLive(tup(k)) {
					model[k] = 1
				}
			}
		}
	}
	liveModel := 0
	for k, c := range model {
		if c > 0 {
			liveModel++
			if !r.ContainsLive(tup(k)) {
				t.Fatalf("model live %v missing from relation", k)
			}
		} else if r.ContainsLive(tup(k)) {
			t.Fatalf("model dead %v live in relation", k)
		}
	}
	if r.Live() != liveModel {
		t.Fatalf("live=%d, model=%d", r.Live(), liveModel)
	}
}
