package storage

import "testing"

// BenchmarkSetRelationInsert measures steady-state distinct-tuple
// insertion. The key buffer is reused across iterations — Insert copies
// into the arena, so this is exactly the engine's emit-side pattern.
func BenchmarkSetRelationInsert(b *testing.B) {
	r := NewSetRelation(pairSchema("tc"))
	buf := make(Tuple, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf[0] = IntVal(int64(i))
		buf[1] = IntVal(int64(i) * 3)
		r.Insert(buf)
	}
}

// BenchmarkSetRelationInsertHashed is the engine's actual hot path: the
// wire hash arrives precomputed with the tuple.
func BenchmarkSetRelationInsertHashed(b *testing.B) {
	r := NewSetRelation(pairSchema("tc"))
	buf := make(Tuple, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf[0] = IntVal(int64(i))
		buf[1] = IntVal(int64(i) * 3)
		r.InsertHashed(buf.Hash(), buf)
	}
}

// BenchmarkSetRelationInsertDup measures the duplicate (probe-only)
// path, which dominates once the fixpoint approaches saturation.
func BenchmarkSetRelationInsertDup(b *testing.B) {
	r := NewSetRelation(pairSchema("tc"))
	const live = 1 << 12
	buf := make(Tuple, 2)
	for i := 0; i < live; i++ {
		buf[0] = IntVal(int64(i))
		buf[1] = IntVal(int64(i) * 3)
		r.Insert(buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i) & (live - 1)
		buf[0] = IntVal(k)
		buf[1] = IntVal(k * 3)
		r.Insert(buf)
	}
}

// BenchmarkTupleHash measures the word-mix full-tuple hash on a
// typical 3-column tuple.
func BenchmarkTupleHash(b *testing.B) {
	t := Tuple{IntVal(123456), IntVal(789), IntVal(42)}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= t.Hash()
	}
	_ = sink
}

// BenchmarkTupleHashOn measures the column-subset hash used for
// partition routing.
func BenchmarkTupleHashOn(b *testing.B) {
	t := Tuple{IntVal(123456), IntVal(789), IntVal(42)}
	cols := []int{0, 2}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= t.HashOn(cols)
	}
	_ = sink
}
