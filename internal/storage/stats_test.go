package storage

import (
	"math"
	"math/rand"
	"testing"
)

func TestColumnDistinctsExactSmall(t *testing.T) {
	// 1000 rows: col 0 cycles through 10 values, col 1 is unique,
	// col 2 is constant. Under exactDistinctMax, so counts are exact.
	var tuples []Tuple
	for i := 0; i < 1000; i++ {
		tuples = append(tuples, Tuple{IntVal(int64(i % 10)), IntVal(int64(i)), IntVal(7)})
	}
	got := ColumnDistincts(tuples, 4)
	want := []int{10, 1000, 1}
	for c := range want {
		if got[c] != want[c] {
			t.Fatalf("col %d distinct = %d, want %d", c, got[c], want[c])
		}
	}
}

func TestColumnDistinctsEmpty(t *testing.T) {
	if got := ColumnDistincts(nil, 4); got != nil {
		t.Fatalf("empty input: %v, want nil", got)
	}
}

func TestColumnDistinctsLinearCountingAccuracy(t *testing.T) {
	// 40000 rows (past the exact cutoff): col 0 draws from 5000 values,
	// col 1 is unique. Linear counting at ~2 bits/row must land within
	// 10% of the truth — the cost model only needs the magnitude.
	rng := rand.New(rand.NewSource(11))
	n := 40000
	truth0 := map[int64]bool{}
	tuples := make([]Tuple, n)
	for i := range tuples {
		v := rng.Int63n(5000)
		truth0[v] = true
		tuples[i] = Tuple{IntVal(v), IntVal(int64(i))}
	}
	got := ColumnDistincts(tuples, 4)
	checks := []struct {
		col  int
		want int
	}{{0, len(truth0)}, {1, n}}
	for _, ck := range checks {
		rel := math.Abs(float64(got[ck.col])-float64(ck.want)) / float64(ck.want)
		if rel > 0.10 {
			t.Errorf("col %d estimate %d vs truth %d: %.1f%% off",
				ck.col, got[ck.col], ck.want, 100*rel)
		}
	}
}

func TestHashIndexDistinctKeys(t *testing.T) {
	// The two-pass index build counts distinct keys as a byproduct; the
	// count must be exact on both the serial and the sharded parallel
	// build paths (10k rows clears parallelBuildMin).
	var tuples []Tuple
	for i := 0; i < 10000; i++ {
		tuples = append(tuples, Tuple{IntVal(int64(i % 123)), IntVal(int64(i))})
	}
	for _, workers := range []int{1, 4} {
		idx := BuildHashIndexes(tuples, [][]int{{0}}, workers)[0]
		if got := idx.DistinctKeys(); got != 123 {
			t.Fatalf("workers=%d: DistinctKeys = %d, want 123", workers, got)
		}
	}
}
