package storage

import (
	"fmt"
	"math/rand"
	"testing"
)

// mapIndex is the reference implementation the flat index replaced: a
// Go map from key to bucket, buckets in original tuple order. Tests
// compare the flat build against it; the benchmark keeps it as the
// baseline.
type mapIndex struct {
	keyCols []int
	buckets map[string][]Tuple
}

func newMapIndex(tuples []Tuple, keyCols []int) *mapIndex {
	m := &mapIndex{keyCols: keyCols, buckets: make(map[string][]Tuple)}
	for _, t := range tuples {
		k := mapKey(t, keyCols)
		m.buckets[k] = append(m.buckets[k], t)
	}
	return m
}

func mapKey(t Tuple, cols []int) string {
	b := make([]byte, 0, 16*len(cols))
	for _, c := range cols {
		b = append(b, fmt.Sprintf("%x|", uint64(t[c]))...)
	}
	return string(b)
}

func (m *mapIndex) lookupAll(key []Value) []Tuple {
	t := make(Tuple, len(key))
	copy(t, key)
	cols := make([]int, len(key))
	for i := range cols {
		cols[i] = i
	}
	return m.buckets[mapKey(t, cols)]
}

// randTuples generates width-w tuples whose key columns draw from a
// small domain, so duplicate keys are common.
func randTuples(n, width, domain int, seed int64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Tuple, n)
	for i := range out {
		t := make(Tuple, width)
		for j := range t {
			t[j] = IntVal(int64(rng.Intn(domain)))
		}
		out[i] = t
	}
	return out
}

func keyOf(t Tuple, cols []int) []Value {
	k := make([]Value, len(cols))
	for i, c := range cols {
		k[i] = t[c]
	}
	return k
}

// assertSameIndex checks the flat index agrees with the map reference
// on every key that occurs, including per-bucket tuple order.
func assertSameIndex(t *testing.T, tuples []Tuple, keyCols []int, idx *HashIndex) {
	t.Helper()
	ref := newMapIndex(tuples, keyCols)
	if idx.Len() != len(tuples) {
		t.Fatalf("Len = %d, want %d", idx.Len(), len(tuples))
	}
	seen := make(map[string]bool)
	for _, tu := range tuples {
		k := mapKey(tu, keyCols)
		if seen[k] {
			continue
		}
		seen[k] = true
		key := keyOf(tu, keyCols)
		want := ref.buckets[k]
		got := idx.LookupAll(key)
		if len(got) != len(want) {
			t.Fatalf("key %v: %d matches, want %d", key, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("key %v row %d: got %v want %v (order must match insertion)", key, i, got[i], want[i])
			}
		}
		if !idx.Contains(key) {
			t.Fatalf("Contains(%v) = false for present key", key)
		}
	}
	// Absent keys must probe to empty.
	absent := []Value{IntVal(1 << 40)}
	for len(absent) < len(keyCols) {
		absent = append(absent, IntVal(1<<40))
	}
	if idx.Contains(absent) {
		t.Fatalf("Contains(absent) = true")
	}
	if got := idx.LookupAll(absent); len(got) != 0 {
		t.Fatalf("LookupAll(absent) returned %d rows", len(got))
	}
}

func TestFlatIndexMatchesMapReference(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		width   int
		domain  int
		keyCols []int
	}{
		{"single-col-dense-dups", 500, 2, 20, []int{0}},
		{"single-col-sparse", 500, 2, 100000, []int{0}},
		{"composite-key", 800, 3, 12, []int{0, 2}},
		{"all-cols-key", 300, 3, 8, []int{0, 1, 2}},
		{"one-key-everything", 200, 2, 1, []int{0}},
		{"tiny", 3, 2, 4, []int{1}},
		{"empty", 0, 2, 4, []int{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tuples := randTuples(tc.n, tc.width, tc.domain, 7)
			idx := NewHashIndex(tuples, tc.keyCols)
			assertSameIndex(t, tuples, tc.keyCols, idx)
		})
	}
}

func TestFlatIndexLookupEarlyStop(t *testing.T) {
	tuples := randTuples(100, 2, 1, 3) // all rows share one key
	idx := NewHashIndex(tuples, []int{0})
	calls := 0
	idx.Lookup(keyOf(tuples[0], []int{0}), func(Tuple) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("callback ran %d times, want 5 (early stop)", calls)
	}
}

// TestParallelBuildMatchesSequential drives BuildHashIndexes over a
// tuple set large enough to take the sharded path and checks every
// produced index byte-for-byte against the sequential build — same
// buckets, same per-bucket order.
func TestParallelBuildMatchesSequential(t *testing.T) {
	n := parallelBuildMin * 2
	tuples := randTuples(n, 3, 512, 11)
	lookups := [][]int{{0}, {1}, {0, 2}}
	par := BuildHashIndexes(tuples, lookups, 4)
	if len(par) != len(lookups) {
		t.Fatalf("got %d indexes, want %d", len(par), len(lookups))
	}
	for i, cols := range lookups {
		seq := NewHashIndex(tuples, cols)
		if par[i].Len() != seq.Len() {
			t.Fatalf("lookup %v: parallel Len %d != sequential %d", cols, par[i].Len(), seq.Len())
		}
		for _, tu := range tuples[:512] { // spot-check a prefix of keys
			key := keyOf(tu, cols)
			a, b := par[i].LookupAll(key), seq.LookupAll(key)
			if len(a) != len(b) {
				t.Fatalf("lookup %v key %v: %d vs %d rows", cols, key, len(a), len(b))
			}
			for j := range a {
				if !a[j].Equal(b[j]) {
					t.Fatalf("lookup %v key %v row %d: %v vs %v", cols, key, j, a[j], b[j])
				}
			}
		}
		assertSameIndex(t, tuples, cols, par[i])
	}
}

func TestParallelBuildSmallFallsBackToSequential(t *testing.T) {
	tuples := randTuples(64, 2, 8, 5)
	idxs := BuildHashIndexes(tuples, [][]int{{0}, {1}}, 8)
	for i, cols := range [][]int{{0}, {1}} {
		assertSameIndex(t, tuples, cols, idxs[i])
	}
}

func TestBuildHashIndexesEmptyLookups(t *testing.T) {
	if got := BuildHashIndexes(randTuples(10, 2, 4, 1), nil, 4); len(got) != 0 {
		t.Fatalf("expected no indexes, got %d", len(got))
	}
}

// mapRepackBuild replicates the build this PR replaced: hash-keyed map
// of append-grown buckets, repacked into one arena in bucket order. It
// is the benchmark baseline.
func mapRepackBuild(tuples []Tuple, keyCols []int) map[uint64][]Tuple {
	buckets := make(map[uint64][]Tuple, len(tuples))
	words := 0
	for _, t := range tuples {
		h := t.HashOn(keyCols)
		buckets[h] = append(buckets[h], t)
		words += len(t)
	}
	arena := make([]Value, 0, words)
	for h, bucket := range buckets {
		for i, t := range bucket {
			off := len(arena)
			arena = append(arena, t...)
			bucket[i] = Tuple(arena[off:len(arena):len(arena)])
		}
		buckets[h] = bucket
	}
	return buckets
}

// BenchmarkIndexBuild compares the flat two-pass counting build against
// the map-and-repack build it replaced (acceptance criterion: flat
// beats map).
func BenchmarkIndexBuild(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		tuples := randTuples(n, 2, n/4, 42)
		b.Run(fmt.Sprintf("flat/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NewHashIndex(tuples, []int{0})
			}
		})
		b.Run(fmt.Sprintf("map/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mapRepackBuild(tuples, []int{0})
			}
		})
	}
}

func BenchmarkIndexProbe(b *testing.B) {
	const n = 100_000
	tuples := randTuples(n, 2, n/4, 42)
	idx := NewHashIndex(tuples, []int{0})
	keys := make([][]Value, 1024)
	for i := range keys {
		keys[i] = keyOf(tuples[i*97%n], []int{0})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !idx.Contains(keys[i%len(keys)]) {
			b.Fatal("missing key")
		}
	}
}
