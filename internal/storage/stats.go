package storage

import (
	"math"
	"math/bits"
)

// exactDistinctMax is the relation size up to which per-column
// distincts are counted exactly with a small open-addressed table;
// larger relations switch to linear counting over a fixed bitmap.
const exactDistinctMax = 1 << 13

// ColumnDistincts estimates the number of distinct values in every
// column of tuples, using up to `workers` goroutines (one task per
// column). Small relations are counted exactly; larger ones use linear
// counting — a single pass setting hash bits in a fixed bitmap, with
// the estimate -m·ln(empty/m) — which stays within a few percent at
// the load factors the bitmap sizing below allows. The planner's cost
// model only needs order-of-magnitude fan-outs, so the estimator
// favors one cheap cache-friendly pass over sketch precision.
func ColumnDistincts(tuples []Tuple, workers int) []int {
	if len(tuples) == 0 {
		return nil
	}
	width := len(tuples[0])
	out := make([]int, width)
	n := len(tuples)
	runTasks(workers, width, func(c int) {
		if n <= exactDistinctMax {
			out[c] = exactColumnDistinct(tuples, c)
		} else {
			out[c] = linearCountColumn(tuples, c)
		}
	})
	return out
}

// exactColumnDistinct counts column c's distinct values with an
// open-addressed hash set sized for the relation.
func exactColumnDistinct(tuples []Tuple, c int) int {
	mask := uint64(nextPow2(2*len(tuples)) - 1)
	// Slot state: used flag kept separately so value 0 is representable.
	vals := make([]Value, mask+1)
	used := make([]bool, mask+1)
	distinct := 0
	for _, t := range tuples {
		v := t[c]
		i := Mix(uint64(v)) & mask
		for used[i] {
			if vals[i] == v {
				break
			}
			i = (i + 1) & mask
		}
		if !used[i] {
			used[i] = true
			vals[i] = v
			distinct++
		}
	}
	return distinct
}

// linearCountColumn estimates column c's distinct count by linear
// counting: set bit Mix(v) mod m in an m-bit bitmap, then estimate
// d ≈ -m·ln(Vn) where Vn is the fraction of bits still zero. The
// bitmap is sized at ~2 bits per row (capped), keeping the load factor
// in linear counting's accurate range for the estimates' use here.
func linearCountColumn(tuples []Tuple, c int) int {
	n := len(tuples)
	m := nextPow2(2 * n)
	const maxBits = 1 << 22 // 512 KiB bitmap cap
	if m > maxBits {
		m = maxBits
	}
	bitmapMask := uint64(m - 1)
	bitmap := make([]uint64, m/64)
	for _, t := range tuples {
		b := Mix(uint64(t[c])) & bitmapMask
		bitmap[b>>6] |= 1 << (b & 63)
	}
	ones := 0
	for _, w := range bitmap {
		ones += bits.OnesCount64(w)
	}
	empty := m - ones
	if empty == 0 {
		// Bitmap saturated: every value distinct as far as we can tell.
		return n
	}
	est := int(math.Round(-float64(m) * math.Log(float64(empty)/float64(m))))
	if est < 1 {
		est = 1
	}
	if est > n {
		est = n
	}
	return est
}
