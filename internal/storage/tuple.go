package storage

import (
	"math/bits"
	"strings"
)

// Tuple is one row of a relation: a flat slice of 64-bit values whose
// interpretation comes from the relation's schema.
type Tuple []Value

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two tuples are identical word-for-word.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// EqualOn reports whether t and o agree on the given columns, with o's
// columns taken from ocols positionally.
func (t Tuple) EqualOn(cols []int, o Tuple, ocols []int) bool {
	for i := range cols {
		if t[cols[i]] != o[ocols[i]] {
			return false
		}
	}
	return true
}

// Format renders a tuple under a schema for human-readable output.
func (t Tuple) Format(s *Schema, st *SymbolTable) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		ty := TInt
		if s != nil && i < len(s.Cols) {
			ty = s.Cols[i].Type
		}
		b.WriteString(Format(v, ty, st))
	}
	b.WriteByte(')')
	return b.String()
}

// Hash computes the 64-bit hash of the full tuple.
func (t Tuple) Hash() uint64 {
	return HashValues(t)
}

// HashOn computes a 64-bit hash over the listed columns only; it is the
// partitioning and join hash used throughout the engine. Hashing a
// column prefix [0, n) yields the same value as HashValues of that
// prefix, which lets the engine extend a cached group-key hash with
// trailing columns via ExtendHash instead of re-hashing.
func (t Tuple) HashOn(cols []int) uint64 {
	h := hashSeed
	for _, c := range cols {
		h = hashWord(h, uint64(t[c]))
	}
	return h
}

const hashSeed uint64 = 14695981039346656037

// hashWord folds one 64-bit word into the hash state. One multiply-
// rotate-multiply round per word (xxhash-style) replaces the original
// byte-at-a-time FNV-1a fold: same streaming shape, an eighth of the
// work, and strong enough avalanche in the low bits for the
// power-of-two open-addressed tables that consume these hashes.
func hashWord(h, w uint64) uint64 {
	w *= 0x9E3779B97F4A7C15
	w = bits.RotateLeft64(w, 31)
	w *= 0xC2B2AE3D27D4EB4F
	h ^= w
	return bits.RotateLeft64(h, 27)*5 + 0x52DCE729
}

// ExtendHash folds one more value into a streaming hash, so that
// ExtendHash(HashValues(vs[:n]), vs[n]) == HashValues(vs[:n+1]).
func ExtendHash(h uint64, v Value) uint64 {
	return hashWord(h, uint64(v))
}

// HashValues hashes an arbitrary value slice.
func HashValues(vs []Value) uint64 {
	h := hashSeed
	for _, v := range vs {
		h = hashWord(h, uint64(v))
	}
	return h
}

// Mix finalizes a hash for use as a partition discriminator; it applies
// a 64-bit avalanche so that consecutive keys spread across partitions.
func Mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
