package storage

// HashIndex is an equi-join index over a fixed tuple set: it maps the
// hash of the key columns to the matching tuples. Base relations are
// indexed once per partition before evaluation begins (Algorithm 1,
// line 3) and never mutated afterwards, so the index is built in one
// pass and read concurrently without synchronization.
type HashIndex struct {
	keyCols []int
	buckets map[uint64][]Tuple
}

// NewHashIndex builds an index over tuples on the given key columns.
func NewHashIndex(tuples []Tuple, keyCols []int) *HashIndex {
	idx := &HashIndex{
		keyCols: keyCols,
		buckets: make(map[uint64][]Tuple, len(tuples)),
	}
	for _, t := range tuples {
		h := t.HashOn(keyCols)
		idx.buckets[h] = append(idx.buckets[h], t)
	}
	return idx
}

// KeyCols returns the indexed columns.
func (idx *HashIndex) KeyCols() []int { return idx.keyCols }

// Lookup streams every tuple whose key columns equal key, in build
// order, until fn returns false.
func (idx *HashIndex) Lookup(key []Value, fn func(Tuple) bool) {
	h := HashValues(key)
	for _, t := range idx.buckets[h] {
		match := true
		for i, c := range idx.keyCols {
			if t[c] != key[i] {
				match = false
				break
			}
		}
		if match && !fn(t) {
			return
		}
	}
}

// LookupAll collects the matches for key into a fresh slice.
func (idx *HashIndex) LookupAll(key []Value) []Tuple {
	var out []Tuple
	idx.Lookup(key, func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}
