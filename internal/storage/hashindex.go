package storage

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/prefetch"
)

// HashIndex is an equi-join index over a fixed tuple set: it maps the
// hash of the key columns to the matching tuples. Base relations are
// indexed once per partition before evaluation begins (Algorithm 1,
// line 3) and never mutated afterwards, so the index is built bulk,
// read-only, and probed concurrently without synchronization.
//
// The layout is flat and pointer-free. All rows live in one contiguous
// Value arena in bucket order (row r occupies
// arena[r*width:(r+1)*width]), and an open-addressed slot directory
// maps a key hash to its [start, start+count) row range. The directory
// is split into one power-of-two region per build partition: a probe
// selects the region with the low hash bits and linearly probes inside
// it with the next bits, so partitions build independently (and in
// parallel) while probes stay two array reads plus a short linear
// scan. Neither the directory (plain uint64/uint32 slots) nor the
// arena (Value is a uint64) contains pointers, so a resident index
// adds nothing to GC scan work.
//
// Three memory-level-parallelism structures ride beside the directory:
//
//   - A Swiss-table-style tag lane: one byte per slot holding the top
//     hash bits (0 = empty). The linear probe scans the byte lane — 64
//     candidates per cache line instead of 4 — and loads the 16-byte
//     slot only on a tag match, so collision slots are rejected with a
//     one-byte compare.
//   - A build-time single-key audit: the scatter pass verifies that
//     every bucket's rows agree on the key columns (64-bit hash
//     collisions between *stored* keys are detected, not assumed
//     away). On an audited index a probe full-key-compares only the
//     bucket's first row; every further row is accepted without
//     touching its key words.
//   - A blocked Bloom filter over the distinct key hashes (bloom.go),
//     consulted by anti-joins and miss-heavy probes before the
//     directory walk.
type HashIndex struct {
	keyCols []int
	width   int
	n       int
	// pMask/pShift split the hash: low bits pick the region, the rest
	// seed the linear probe inside it.
	pMask  uint64
	pShift uint8
	dirs   [][]idxSlot
	// tags[p][i] mirrors dirs[p][i]: 0 for an empty slot, otherwise
	// tagOf(slot.hash).
	tags [][]uint8
	// keyed reports the build-time audit passed: every bucket holds a
	// single distinct key, so one verified row vouches for the rest.
	keyed bool
	// distinct is the number of distinct key values (= occupied slots),
	// captured for free during the counting pass; the planner's cost
	// model reads it via DistinctKeys.
	distinct int
	arena    []Value

	// Blocked Bloom filter over distinct key hashes (see bloom.go).
	bloom     []uint64
	bloomMask uint64
}

// idxSlot is one directory entry: a distinct key hash and its
// bucket-contiguous row range. count == 0 marks an empty slot.
type idxSlot struct {
	hash  uint64
	start uint32
	count uint32
}

// tagOf compresses a key hash into its one-byte lane tag: the top seven
// hash bits with the high bit forced on, so an occupied slot's tag is
// never 0 (the empty marker). The top bits are disjoint from both the
// partition bits (low) and the in-region probe bits (above pShift), so
// tag equality is nearly independent of slot placement.
func tagOf(h uint64) uint8 { return uint8(h>>56) | 0x80 }

// TagOf exposes the tag function for sibling probe structures (the
// engine's incremental join indexes keep the same one-byte lane beside
// their cached hashes).
func TagOf(h uint64) uint8 { return tagOf(h) }

// nextPow2 returns the smallest power of two >= n (minimum 2).
func nextPow2(n int) int {
	if n < 2 {
		return 2
	}
	return 1 << bits.Len(uint(n-1))
}

// NewHashIndex builds an index over tuples on the given key columns
// with the two-pass counting build: hash every tuple, find-or-insert
// the hash into the slot directory counting bucket sizes, prefix-sum
// the counts into bucket offsets, then scatter each tuple's words into
// its bucket's arena range. No per-bucket allocations, no map.
func NewHashIndex(tuples []Tuple, keyCols []int) *HashIndex {
	idx := &HashIndex{keyCols: keyCols, n: len(tuples), keyed: true}
	if idx.n == 0 {
		return idx
	}
	idx.width = len(tuples[0])
	hs := make([]uint64, idx.n)
	for i, t := range tuples {
		hs[i] = t.HashOn(keyCols)
	}
	idx.arena = make([]Value, idx.n*idx.width)
	idx.bloom = make([]uint64, bloomBlocks(idx.n, 1)*bloomBlockWords)
	idx.bloomMask = uint64(len(idx.bloom)/bloomBlockWords - 1)
	region, tags, keyed, distinct := buildRegion(tuples, idx.width, keyCols, 0, hs, nil, 0, idx.arena, idx.bloom, idx.bloomMask)
	idx.dirs = [][]idxSlot{region}
	idx.tags = [][]uint8{tags}
	idx.keyed = keyed
	idx.distinct = distinct
	return idx
}

// DistinctKeys returns the number of distinct key-column values in the
// indexed relation, counted exactly during the build's counting pass.
func (idx *HashIndex) DistinctKeys() int { return idx.distinct }

// buildRegion groups one partition's entries into buckets: an
// open-addressed slot region over the partition's distinct key hashes
// (plus its byte tag lane), the rows scattered bucket-contiguously into
// arena[rowBase*width:], the partition's distinct hashes added to the
// shared Bloom filter, and the single-key audit over the scattered
// buckets. hs lists the entries' key hashes; rows maps entries to tuple
// ordinals (nil means the identity, i.e. the whole relation in one
// partition). The three passes are count → prefix-sum → scatter; the
// scatter reuses each slot's start as its write cursor and the final
// fixup pass rewinds it, so the build needs no side arrays.
func buildRegion(tuples []Tuple, width int, keyCols []int, pShift uint8, hs []uint64, rows []uint32, rowBase int, arena []Value, bloom []uint64, bloomMask uint64) ([]idxSlot, []uint8, bool, int) {
	k := len(hs)
	if k == 0 {
		return nil, nil, true, 0
	}
	region := make([]idxSlot, nextPow2(2*k))
	mask := uint64(len(region) - 1)
	distinct := 0
	for _, h := range hs {
		i := (h >> pShift) & mask
		for {
			s := &region[i]
			if s.count == 0 {
				s.hash = h
				s.count = 1
				distinct++
				bloomAdd(bloom, bloomMask, h)
				break
			}
			if s.hash == h {
				s.count++
				break
			}
			i = (i + 1) & mask
		}
	}
	// Duplicate-heavy keys leave the region mostly empty; rebuilding at
	// the distinct-count size keeps probe scans short and memory
	// proportional to buckets, not rows.
	if small := nextPow2(2 * distinct); small < len(region)/4 {
		old := region
		region = make([]idxSlot, small)
		mask = uint64(len(region) - 1)
		for _, s := range old {
			if s.count == 0 {
				continue
			}
			i := (s.hash >> pShift) & mask
			for region[i].count != 0 {
				i = (i + 1) & mask
			}
			region[i] = s
		}
	}
	running := uint32(rowBase)
	for i := range region {
		if region[i].count != 0 {
			region[i].start = running
			running += region[i].count
		}
	}
	for j, h := range hs {
		i := (h >> pShift) & mask
		for region[i].hash != h || region[i].count == 0 {
			i = (i + 1) & mask
		}
		s := &region[i]
		r := int(s.start)
		s.start++
		t := tuples[j]
		if rows != nil {
			t = tuples[rows[j]]
		}
		copy(arena[r*width:(r+1)*width], t)
	}
	for i := range region {
		region[i].start -= region[i].count
	}
	// Tag lane: one byte per settled slot.
	tags := make([]uint8, len(region))
	for i := range region {
		if region[i].count != 0 {
			tags[i] = tagOf(region[i].hash)
		}
	}
	// Single-key audit: a bucket groups rows by 64-bit key hash, so rows
	// with *differing* key columns in one bucket are a true collision.
	// Verifying there is none lets probes compare only the first row of
	// a bucket; the remaining rows are accepted key-compare-free.
	keyed := true
audit:
	for i := range region {
		s := &region[i]
		if s.count < 2 {
			continue
		}
		base := arena[int(s.start)*width : (int(s.start)+1)*width]
		for r := int(s.start) + 1; r < int(s.start)+int(s.count); r++ {
			row := arena[r*width : (r+1)*width]
			for _, c := range keyCols {
				if row[c] != base[c] {
					keyed = false
					break audit
				}
			}
		}
	}
	return region, tags, keyed, distinct
}

// parallelBuildMin is the relation size below which the sharded build
// costs more in coordination than it saves; smaller relations build
// sequentially (still one per goroutine when several indexes are
// requested).
const parallelBuildMin = 8192

// BuildHashIndexes builds one index per lookup column set over the
// same tuples, using up to `workers` goroutines. Large relations use a
// sharded two-pass build: shards hash and count tuples per hash
// partition in parallel, the per-shard counts are stitched by prefix
// sums into disjoint scatter cursors, and each partition's bucket
// region then builds independently. The result is identical (including
// bucket order, which follows tuple order) to calling NewHashIndex per
// lookup. The Bloom filter's block count is at least the partition
// count, so phase D's concurrent bloomAdd calls land in
// partition-disjoint blocks.
func BuildHashIndexes(tuples []Tuple, lookups [][]int, workers int) []*HashIndex {
	out := make([]*HashIndex, len(lookups))
	if len(lookups) == 0 {
		return out
	}
	n := len(tuples)
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || n < parallelBuildMin {
		runTasks(workers, len(lookups), func(l int) {
			out[l] = NewHashIndex(tuples, lookups[l])
		})
		return out
	}

	width := len(tuples[0])
	nShards := workers
	if nShards > n {
		nShards = n
	}
	nParts := pickPartitions(n, workers)
	pMask := uint64(nParts - 1)
	pShift := uint8(bits.Len(uint(nParts - 1)))
	shardLo := func(s int) int { return s * n / nShards }

	// Per-index build state, allocated up front so the phases below are
	// pure array passes.
	type buildState struct {
		idx *HashIndex
		// hs[i] is tuple i's key hash (phase A).
		hs []uint64
		// counts[s][p] is shard s's tuple count in hash partition p
		// (phase A), stitched into shard-disjoint scatter cursors by
		// the prefix sums of phase B.
		counts [][]uint32
		// partStart[p] is partition p's first entry/row ordinal.
		partStart []uint32
		// partH/partRow are the entries regrouped in partition order
		// (phase C): shard-major, so tuple order is preserved within
		// every partition.
		partH   []uint64
		partRow []uint32
		// kflags[p] is partition p's single-key audit result (phase D),
		// AND-combined into idx.keyed afterwards.
		kflags []bool
		// dcounts[p] is partition p's distinct key count (phase D),
		// summed into idx.distinct afterwards. Partitions split the key
		// hash space, so per-partition distincts add exactly.
		dcounts []int
	}
	states := make([]*buildState, len(lookups))
	for l, cols := range lookups {
		blocks := bloomBlocks(n, nParts)
		st := &buildState{
			idx: &HashIndex{
				keyCols:   cols,
				width:     width,
				n:         n,
				pMask:     pMask,
				pShift:    pShift,
				dirs:      make([][]idxSlot, nParts),
				tags:      make([][]uint8, nParts),
				arena:     make([]Value, n*width),
				bloom:     make([]uint64, blocks*bloomBlockWords),
				bloomMask: uint64(blocks - 1),
			},
			hs:        make([]uint64, n),
			counts:    make([][]uint32, nShards),
			partStart: make([]uint32, nParts+1),
			partH:     make([]uint64, n),
			partRow:   make([]uint32, n),
			kflags:    make([]bool, nParts),
			dcounts:   make([]int, nParts),
		}
		for s := range st.counts {
			st.counts[s] = make([]uint32, nParts)
		}
		states[l] = st
		out[l] = st.idx
	}

	// Phase A: hash and count, parallel over (index, shard).
	runTasks(workers, len(lookups)*nShards, func(task int) {
		st, s := states[task/nShards], task%nShards
		cols, counts := st.idx.keyCols, st.counts[s]
		for i, hi := shardLo(s), shardLo(s+1); i < hi; i++ {
			h := tuples[i].HashOn(cols)
			st.hs[i] = h
			counts[h&pMask]++
		}
	})

	// Phase B: stitch the per-shard counts — partition offsets first,
	// then each shard's private write cursor inside every partition.
	for _, st := range states {
		var run uint32
		for p := 0; p < nParts; p++ {
			st.partStart[p] = run
			for s := 0; s < nShards; s++ {
				c := st.counts[s][p]
				st.counts[s][p] = run
				run += c
			}
		}
		st.partStart[nParts] = run
	}

	// Phase C: scatter entries into partition order, parallel over
	// (index, shard); the stitched cursors make every write disjoint.
	runTasks(workers, len(lookups)*nShards, func(task int) {
		st, s := states[task/nShards], task%nShards
		cur := st.counts[s]
		for i, hi := shardLo(s), shardLo(s+1); i < hi; i++ {
			h := st.hs[i]
			o := cur[h&pMask]
			cur[h&pMask] = o + 1
			st.partH[o] = h
			st.partRow[o] = uint32(i)
		}
	})

	// Phase D: build every partition's bucket region, tag lane and
	// Bloom blocks, and scatter its rows, parallel over (index,
	// partition) — regions, tag lanes, arena row ranges and Bloom
	// blocks are all disjoint by construction.
	runTasks(workers, len(lookups)*nParts, func(task int) {
		st, p := states[task/nParts], task%nParts
		lo, hi := st.partStart[p], st.partStart[p+1]
		st.idx.dirs[p], st.idx.tags[p], st.kflags[p], st.dcounts[p] = buildRegion(tuples, width, st.idx.keyCols, pShift,
			st.partH[lo:hi], st.partRow[lo:hi], int(lo), st.idx.arena, st.idx.bloom, st.idx.bloomMask)
	})
	for _, st := range states {
		for _, d := range st.dcounts {
			st.idx.distinct += d
		}
		st.idx.keyed = true
		for _, ok := range st.kflags {
			if !ok {
				st.idx.keyed = false
				break
			}
		}
	}
	return out
}

// pickPartitions sizes the partition grid: at least the worker count
// (so phase D parallelizes), growing with the relation so regions stay
// cache-sized, capped to keep per-shard count arrays trivial.
func pickPartitions(n, workers int) int {
	p := nextPow2(workers)
	for p < 1024 && p*8192 < n {
		p <<= 1
	}
	return p
}

// runTasks executes fn(0..n-1) on up to `workers` goroutines pulling
// from a shared atomic cursor.
func runTasks(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// KeyCols returns the indexed columns.
func (idx *HashIndex) KeyCols() []int { return idx.keyCols }

// Len returns the number of indexed rows.
func (idx *HashIndex) Len() int { return idx.n }

// Keyed reports that the build-time audit proved every bucket holds one
// distinct key: after a probe verifies a bucket's first row, the
// remaining rows need no key compare.
func (idx *HashIndex) Keyed() bool { return idx.keyed }

// rangeOf returns the [start, end) row range of the bucket whose key
// hash is h (0,0 when absent). The linear probe walks the one-byte tag
// lane and loads the 16-byte slot only on a tag match — the uncounted
// twin of ProbeRange, kept separate so the generic Lookup/Contains API
// stays free of counter plumbing.
func (idx *HashIndex) rangeOf(h uint64) (int, int) {
	if idx.n == 0 {
		return 0, 0
	}
	p := h & idx.pMask
	region := idx.dirs[p]
	if len(region) == 0 {
		return 0, 0
	}
	tags := idx.tags[p]
	mask := uint64(len(region) - 1)
	tg := tagOf(h)
	i := (h >> idx.pShift) & mask
	for {
		t := tags[i]
		if t == 0 {
			return 0, 0
		}
		if t == tg {
			s := &region[i]
			if s.hash == h {
				return int(s.start), int(s.start) + int(s.count)
			}
		}
		i = (i + 1) & mask
	}
}

// rangeOfNoTag is the pre-tag-lane probe (full-hash compare at every
// occupied slot). It is the A/B baseline for the tag-filter
// microbenchmarks and the oracle the property tests compare the tagged
// probe against; production paths never call it.
func (idx *HashIndex) rangeOfNoTag(h uint64) (int, int) {
	if idx.n == 0 {
		return 0, 0
	}
	region := idx.dirs[h&idx.pMask]
	if len(region) == 0 {
		return 0, 0
	}
	mask := uint64(len(region) - 1)
	i := (h >> idx.pShift) & mask
	for {
		s := &region[i]
		if s.count == 0 {
			return 0, 0
		}
		if s.hash == h {
			return int(s.start), int(s.start) + int(s.count)
		}
		i = (i + 1) & mask
	}
}

// ProbeRange is rangeOf for callers that already hold the key hash and
// a counter bag: the kernel's join cursors hash a probe key exactly
// once (often a group ahead of the walk, see internal/engine's staged
// pipeline) and pass the hash down.
func (idx *HashIndex) ProbeRange(h uint64, pc *ProbeCounters) (int, int) {
	if idx.n == 0 {
		return 0, 0
	}
	p := h & idx.pMask
	region := idx.dirs[p]
	if len(region) == 0 {
		return 0, 0
	}
	tags := idx.tags[p]
	mask := uint64(len(region) - 1)
	tg := tagOf(h)
	i := (h >> idx.pShift) & mask
	// Counters accumulate in registers and flush once: the walk is the
	// hottest loop in the engine and a per-slot read-modify-write
	// through the pointer would cost as much as the tag check itself.
	var probes, rejects int64
	start, end := 0, 0
	for {
		t := tags[i]
		if t == 0 {
			break
		}
		probes++
		if t == tg {
			s := &region[i]
			if s.hash == h {
				start, end = int(s.start), int(s.start)+int(s.count)
				break
			}
		} else {
			rejects++
		}
		i = (i + 1) & mask
	}
	pc.TagProbes += probes
	pc.TagRejects += rejects
	return start, end
}

// PrefetchBucket hints the directory lines a ProbeRange(h) call will
// touch — the tag byte and its slot — into L1. Issued a probe group
// ahead of the walk so the loads overlap.
func (idx *HashIndex) PrefetchBucket(h uint64) {
	if idx.n == 0 {
		return
	}
	p := h & idx.pMask
	region := idx.dirs[p]
	if len(region) == 0 {
		return
	}
	mask := uint64(len(region) - 1)
	i := (h >> idx.pShift) & mask
	prefetch.T0(unsafe.Pointer(&idx.tags[p][i]))
	prefetch.T0(unsafe.Pointer(&region[i]))
}

// PrefetchRow hints row r's arena line into L1.
func (idx *HashIndex) PrefetchRow(r int) {
	prefetch.T0(unsafe.Pointer(&idx.arena[r*idx.width]))
}

// BucketRange returns the [start, end) row-ordinal range of key's
// bucket. Hash collisions may remain, so callers must still compare
// the key columns (see MatchesKey). It exists for cursor-driven
// executors that walk matches inline instead of re-entering a callback
// per tuple; rows are resolved with RowAt.
func (idx *HashIndex) BucketRange(key []Value) (int, int) {
	return idx.rangeOf(HashValues(key))
}

// RowAt returns the r-th indexed row as a view into the arena; the
// tuple aliases the index and must not be mutated.
func (idx *HashIndex) RowAt(r int) Tuple {
	off := r * idx.width
	return Tuple(idx.arena[off : off+idx.width : off+idx.width])
}

// MatchesKey reports whether t's key columns equal key.
func (idx *HashIndex) MatchesKey(t Tuple, key []Value) bool {
	for i, c := range idx.keyCols {
		if t[c] != key[i] {
			return false
		}
	}
	return true
}

// Lookup streams every tuple whose key columns equal key, in build
// order, until fn returns false.
func (idx *HashIndex) Lookup(key []Value, fn func(Tuple) bool) {
	start, end := idx.rangeOf(HashValues(key))
	for r := start; r < end; r++ {
		t := idx.RowAt(r)
		if idx.MatchesKey(t, key) && !fn(t) {
			return
		}
	}
}

// Contains reports whether any tuple's key columns equal key. It is
// the anti-join existence probe: a direct walk of the bucket's arena
// range, with no callback and no closure allocation at the call site.
func (idx *HashIndex) Contains(key []Value) bool {
	start, end := idx.rangeOf(HashValues(key))
	for r := start; r < end; r++ {
		if idx.MatchesKey(idx.RowAt(r), key) {
			return true
		}
	}
	return false
}

// ContainsProbe is Contains with a caller-supplied hash and counter
// bag. On an audited (Keyed) index one key compare against the
// bucket's first row settles the answer for the whole bucket.
func (idx *HashIndex) ContainsProbe(h uint64, key []Value, pc *ProbeCounters) bool {
	start, end := idx.ProbeRange(h, pc)
	if start >= end {
		return false
	}
	pc.KeyCompares++
	if idx.MatchesKey(idx.RowAt(start), key) {
		return true
	}
	if idx.keyed {
		// The bucket holds a single distinct key and it is not ours:
		// the rest of the rows cannot match either.
		pc.KeySkips += int64(end - start - 1)
		return false
	}
	for r := start + 1; r < end; r++ {
		pc.KeyCompares++
		if idx.MatchesKey(idx.RowAt(r), key) {
			return true
		}
	}
	return false
}

// LookupAll collects the matches for key into a fresh slice.
func (idx *HashIndex) LookupAll(key []Value) []Tuple {
	var out []Tuple
	idx.Lookup(key, func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}
