package storage

// HashIndex is an equi-join index over a fixed tuple set: it maps the
// hash of the key columns to the matching tuples. Base relations are
// indexed once per partition before evaluation begins (Algorithm 1,
// line 3) and never mutated afterwards, so the index is built in one
// pass and read concurrently without synchronization.
type HashIndex struct {
	keyCols []int
	buckets map[uint64][]Tuple
}

// NewHashIndex builds an index over tuples on the given key columns.
// The tuples are repacked into one flat arena in bucket order, so a
// probe walks its candidates through contiguous memory instead of
// chasing per-tuple heap pointers — base-relation buckets are the
// hottest random reads in the join kernel.
func NewHashIndex(tuples []Tuple, keyCols []int) *HashIndex {
	idx := &HashIndex{
		keyCols: keyCols,
		buckets: make(map[uint64][]Tuple, len(tuples)),
	}
	words := 0
	for _, t := range tuples {
		h := t.HashOn(keyCols)
		idx.buckets[h] = append(idx.buckets[h], t)
		words += len(t)
	}
	arena := make([]Value, 0, words)
	for h, bucket := range idx.buckets {
		for i, t := range bucket {
			off := len(arena)
			arena = append(arena, t...)
			bucket[i] = Tuple(arena[off:len(arena):len(arena)])
		}
		idx.buckets[h] = bucket
	}
	return idx
}

// KeyCols returns the indexed columns.
func (idx *HashIndex) KeyCols() []int { return idx.keyCols }

// Lookup streams every tuple whose key columns equal key, in build
// order, until fn returns false.
func (idx *HashIndex) Lookup(key []Value, fn func(Tuple) bool) {
	h := HashValues(key)
	for _, t := range idx.buckets[h] {
		match := true
		for i, c := range idx.keyCols {
			if t[c] != key[i] {
				match = false
				break
			}
		}
		if match && !fn(t) {
			return
		}
	}
}

// Bucket returns the candidate tuples sharing key's bucket without
// filtering: hash collisions may remain, so callers must still compare
// the key columns (see MatchesKey). It exists for cursor-driven
// executors that walk matches inline instead of re-entering a callback
// per tuple; the returned slice aliases the index and must not be
// mutated.
func (idx *HashIndex) Bucket(key []Value) []Tuple {
	return idx.buckets[HashValues(key)]
}

// MatchesKey reports whether t's key columns equal key.
func (idx *HashIndex) MatchesKey(t Tuple, key []Value) bool {
	for i, c := range idx.keyCols {
		if t[c] != key[i] {
			return false
		}
	}
	return true
}

// LookupAll collects the matches for key into a fresh slice.
func (idx *HashIndex) LookupAll(key []Value) []Tuple {
	var out []Tuple
	idx.Lookup(key, func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}
