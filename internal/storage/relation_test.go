package storage

import (
	"testing"
	"testing/quick"
)

func pairSchema(name string) *Schema {
	return NewSchema(name, Column{"x", TInt}, Column{"y", TInt})
}

func TestSetRelationInsertDedup(t *testing.T) {
	r := NewSetRelation(pairSchema("tc"))
	if !r.Insert(Tuple{IntVal(1), IntVal(2)}) {
		t.Fatal("first insert should be new")
	}
	if r.Insert(Tuple{IntVal(1), IntVal(2)}) {
		t.Fatal("duplicate insert should report false")
	}
	if !r.Insert(Tuple{IntVal(2), IntVal(1)}) {
		t.Fatal("distinct tuple should be new")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestSetRelationContains(t *testing.T) {
	r := NewSetRelation(pairSchema("tc"))
	r.Insert(Tuple{IntVal(3), IntVal(4)})
	if !r.Contains(Tuple{IntVal(3), IntVal(4)}) {
		t.Error("inserted tuple should be contained")
	}
	if r.Contains(Tuple{IntVal(4), IntVal(3)}) {
		t.Error("reversed tuple should not be contained")
	}
}

func TestSetRelationInsertionOrderIteration(t *testing.T) {
	r := NewSetRelation(pairSchema("tc"))
	want := []int64{5, 1, 9, 3}
	for _, v := range want {
		r.Insert(Tuple{IntVal(v), IntVal(v)})
	}
	var got []int64
	r.ForEach(func(tu Tuple) bool {
		got = append(got, tu[0].Int())
		return true
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration order %v, want %v", got, want)
		}
	}
}

func TestSetRelationForEachEarlyStop(t *testing.T) {
	r := NewSetRelation(pairSchema("tc"))
	for i := int64(0); i < 10; i++ {
		r.Insert(Tuple{IntVal(i), IntVal(i)})
	}
	n := 0
	r.ForEach(func(Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("ForEach visited %d, want 3", n)
	}
}

// Property: a set relation behaves exactly like a map keyed on the
// tuple contents.
func TestSetRelationMatchesMapModel(t *testing.T) {
	f := func(pairs [][2]int16) bool {
		r := NewSetRelation(pairSchema("m"))
		model := map[[2]int16]bool{}
		for _, p := range pairs {
			isNew := !model[p]
			model[p] = true
			got := r.Insert(Tuple{IntVal(int64(p[0])), IntVal(int64(p[1]))})
			if got != isNew {
				return false
			}
		}
		return r.Len() == len(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSetRelationSnapshotStableAcrossGrowth is the aliasing regression
// test: a snapshot taken early must keep its contents (both the slice
// header and every tuple view) after the relation grows far past the
// capacity it had when the snapshot was taken.
func TestSetRelationSnapshotStableAcrossGrowth(t *testing.T) {
	r := NewSetRelation(pairSchema("tc"))
	for i := int64(0); i < 8; i++ {
		r.Insert(Tuple{IntVal(i), IntVal(i * 10)})
	}
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot len = %d, want 8", len(snap))
	}
	// Insert far past every internal capacity: the hash table regrows
	// multiple times and the arena rolls over several chunks.
	for i := int64(8); i < 5000; i++ {
		r.Insert(Tuple{IntVal(i), IntVal(i * 10)})
	}
	if len(snap) != 8 {
		t.Fatalf("snapshot length changed to %d", len(snap))
	}
	for i, tu := range snap {
		if tu[0].Int() != int64(i) || tu[1].Int() != int64(i)*10 {
			t.Fatalf("snapshot[%d] = (%d,%d), want (%d,%d)",
				i, tu[0].Int(), tu[1].Int(), i, i*10)
		}
	}
	// Appending to the snapshot must not overwrite the relation's later
	// views (the slice is full-sliced on return).
	_ = append(snap, Tuple{IntVal(-1), IntVal(-1)})
	if tu := r.At(8); tu[0].Int() != 8 {
		t.Fatalf("append through snapshot clobbered views: %v", tu)
	}
}

// TestSetRelationInsertCopies checks the copy-on-insert contract: the
// caller's buffer may be mutated and reused after Insert returns.
func TestSetRelationInsertCopies(t *testing.T) {
	r := NewSetRelation(pairSchema("tc"))
	buf := Tuple{IntVal(1), IntVal(2)}
	r.Insert(buf)
	buf[0], buf[1] = IntVal(7), IntVal(8)
	r.Insert(buf)
	if !r.Contains(Tuple{IntVal(1), IntVal(2)}) || !r.Contains(Tuple{IntVal(7), IntVal(8)}) {
		t.Fatal("Insert must copy the tuple out of the caller's buffer")
	}
}

func aggSchema(name string) *Schema {
	return NewSchema(name, Column{"k", TInt}, Column{"v", TInt})
}

func TestAggMinMerge(t *testing.T) {
	r := NewAggRelation(aggSchema("cc2"), AggMin)
	key := []Value{IntVal(7)}
	if ch, v := r.Merge(key, IntVal(5), 0); !ch || v.Int() != 5 {
		t.Fatalf("first merge = (%v,%d)", ch, v.Int())
	}
	if ch, _ := r.Merge(key, IntVal(9), 0); ch {
		t.Fatal("larger value must not change a min aggregate")
	}
	if ch, v := r.Merge(key, IntVal(2), 0); !ch || v.Int() != 2 {
		t.Fatalf("smaller value should win: (%v,%d)", ch, v.Int())
	}
	if got, _ := r.Get(key); got.Int() != 2 {
		t.Fatalf("Get = %d, want 2", got.Int())
	}
}

func TestAggMaxMerge(t *testing.T) {
	r := NewAggRelation(aggSchema("delivery"), AggMax)
	key := []Value{IntVal(1)}
	r.Merge(key, IntVal(5), 0)
	if ch, _ := r.Merge(key, IntVal(3), 0); ch {
		t.Fatal("smaller value must not change a max aggregate")
	}
	if ch, v := r.Merge(key, IntVal(8), 0); !ch || v.Int() != 8 {
		t.Fatal("larger value should win")
	}
}

func TestAggCountDistinctContributors(t *testing.T) {
	r := NewAggRelation(aggSchema("cnt"), AggCount)
	key := []Value{IntVal(1)}
	r.Merge(key, 0, IntVal(10))
	r.Merge(key, 0, IntVal(11))
	if ch, _ := r.Merge(key, 0, IntVal(10)); ch {
		t.Fatal("repeated contributor must not increase the count")
	}
	if v, _ := r.Get(key); v.Int() != 2 {
		t.Fatalf("count = %d, want 2", v.Int())
	}
}

func TestAggSumKeyedReplacement(t *testing.T) {
	r := NewAggRelation(aggSchema("rank"), AggSum)
	key := []Value{IntVal(1)}
	r.Merge(key, IntVal(10), IntVal(100))
	r.Merge(key, IntVal(5), IntVal(101))
	if v, _ := r.Get(key); v.Int() != 15 {
		t.Fatalf("sum = %d, want 15", v.Int())
	}
	// Contributor 100 revises its contribution from 10 to 3.
	if ch, v := r.Merge(key, IntVal(3), IntVal(100)); !ch || v.Int() != 8 {
		t.Fatalf("revised sum = (%v,%d), want (true,8)", ch, v.Int())
	}
	// Identical re-derivation is a no-op.
	if ch, _ := r.Merge(key, IntVal(3), IntVal(100)); ch {
		t.Fatal("identical contribution must not change the sum")
	}
}

func TestAggSumFloatEpsilon(t *testing.T) {
	s := NewSchema("rank", Column{"k", TInt}, Column{"v", TFloat})
	r := NewAggRelation(s, AggSum)
	r.SetEpsilon(1e-3)
	key := []Value{IntVal(1)}
	r.Merge(key, FloatVal(0.5), IntVal(1))
	if ch, _ := r.Merge(key, FloatVal(0.5000001), IntVal(1)); ch {
		t.Fatal("sub-epsilon change should not be reported")
	}
	if ch, _ := r.Merge(key, FloatVal(0.6), IntVal(1)); !ch {
		t.Fatal("super-epsilon change should be reported")
	}
}

func TestAggRelationContains(t *testing.T) {
	r := NewAggRelation(aggSchema("cc2"), AggMin)
	r.Merge([]Value{IntVal(1)}, IntVal(5), 0)
	if !r.Contains(Tuple{IntVal(1), IntVal(5)}) {
		t.Error("exact value should be contained")
	}
	if !r.Contains(Tuple{IntVal(1), IntVal(7)}) {
		t.Error("worse value should count as contained for min")
	}
	if r.Contains(Tuple{IntVal(1), IntVal(3)}) {
		t.Error("better value should not be contained")
	}
	if r.Contains(Tuple{IntVal(2), IntVal(5)}) {
		t.Error("missing key should not be contained")
	}
}

func TestAggRelationSnapshot(t *testing.T) {
	r := NewAggRelation(aggSchema("cc2"), AggMin)
	r.Merge([]Value{IntVal(1)}, IntVal(5), 0)
	r.Merge([]Value{IntVal(2)}, IntVal(3), 0)
	rows := r.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("snapshot len = %d", len(rows))
	}
	seen := map[int64]int64{}
	for _, row := range rows {
		seen[row[0].Int()] = row[1].Int()
	}
	if seen[1] != 5 || seen[2] != 3 {
		t.Fatalf("snapshot = %v", seen)
	}
}

// Property: min aggregate equals the model minimum per key.
func TestAggMinMatchesModel(t *testing.T) {
	f := func(entries [][2]int16) bool {
		r := NewAggRelation(aggSchema("m"), AggMin)
		model := map[int16]int16{}
		for _, e := range entries {
			k, v := e[0], e[1]
			if old, ok := model[k]; !ok || v < old {
				model[k] = v
			}
			r.Merge([]Value{IntVal(int64(k))}, IntVal(int64(v)), 0)
		}
		if r.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := r.Get([]Value{IntVal(int64(k))})
			if !ok || got.Int() != int64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashIndexLookup(t *testing.T) {
	tuples := []Tuple{
		{IntVal(1), IntVal(10)},
		{IntVal(1), IntVal(11)},
		{IntVal(2), IntVal(20)},
	}
	idx := NewHashIndex(tuples, []int{0})
	got := idx.LookupAll([]Value{IntVal(1)})
	if len(got) != 2 {
		t.Fatalf("lookup(1) returned %d tuples, want 2", len(got))
	}
	if len(idx.LookupAll([]Value{IntVal(3)})) != 0 {
		t.Fatal("lookup(3) should be empty")
	}
}

func TestHashIndexCompositeKey(t *testing.T) {
	tuples := []Tuple{
		{IntVal(1), IntVal(10), IntVal(100)},
		{IntVal(1), IntVal(11), IntVal(101)},
	}
	idx := NewHashIndex(tuples, []int{0, 1})
	got := idx.LookupAll([]Value{IntVal(1), IntVal(11)})
	if len(got) != 1 || got[0][2].Int() != 101 {
		t.Fatalf("composite lookup = %v", got)
	}
}

func TestHashIndexEarlyStop(t *testing.T) {
	tuples := []Tuple{{IntVal(1), IntVal(1)}, {IntVal(1), IntVal(2)}, {IntVal(1), IntVal(3)}}
	idx := NewHashIndex(tuples, []int{0})
	n := 0
	idx.Lookup([]Value{IntVal(1)}, func(Tuple) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestTupleHelpers(t *testing.T) {
	a := Tuple{IntVal(1), IntVal(2), IntVal(3)}
	b := a.Clone()
	b[0] = IntVal(9)
	if a[0].Int() != 1 {
		t.Fatal("Clone must not alias")
	}
	if !a.Equal(Tuple{IntVal(1), IntVal(2), IntVal(3)}) {
		t.Fatal("Equal broken")
	}
	if a.Equal(Tuple{IntVal(1), IntVal(2)}) {
		t.Fatal("length mismatch should be unequal")
	}
	if !a.EqualOn([]int{0, 2}, Tuple{IntVal(1), IntVal(3)}, []int{0, 1}) {
		t.Fatal("EqualOn broken")
	}
}

func TestHashOnIsKeyLocal(t *testing.T) {
	a := Tuple{IntVal(1), IntVal(2)}
	b := Tuple{IntVal(1), IntVal(99)}
	if a.HashOn([]int{0}) != b.HashOn([]int{0}) {
		t.Fatal("HashOn must depend only on key columns")
	}
	if a.Hash() == b.Hash() {
		t.Fatal("full hashes of distinct tuples collided (astronomically unlikely)")
	}
}

func TestSymbolTable(t *testing.T) {
	st := NewSymbolTable()
	a := st.Intern("a")
	b := st.Intern("b")
	if a == b {
		t.Fatal("distinct strings share an id")
	}
	if st.Intern("a") != a {
		t.Fatal("re-interning changed the id")
	}
	if s, ok := st.Lookup(a); !ok || s != "a" {
		t.Fatal("lookup failed")
	}
	if _, ok := st.Lookup(99); ok {
		t.Fatal("lookup of unknown id should fail")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := NewSchema("arc", Column{"src", TInt}, Column{"dst", TInt}, Column{"w", TFloat})
	if s.Arity() != 3 {
		t.Fatal("arity")
	}
	if s.ColIndex("dst") != 1 || s.ColIndex("nope") != -1 {
		t.Fatal("ColIndex")
	}
	if s.ColType(2) != TFloat {
		t.Fatal("ColType")
	}
	p := s.Project("out", []int{2, 0})
	if p.Arity() != 2 || p.Cols[0].Name != "w" || p.Cols[1].Name != "src" {
		t.Fatalf("Project = %v", p)
	}
	if s.String() != "arc(src:int, dst:int, w:float)" {
		t.Fatalf("String = %q", s.String())
	}
}
