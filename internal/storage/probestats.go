package storage

// ProbeCounters is the per-worker bag of memory-level probe statistics.
// Every counted probe entry point takes a *ProbeCounters owned by the
// calling worker (or test), so the hot path increments plain cache-hot
// int64s — no atomics, no sharing. The engine sums worker bags into
// StratumStats at the end of a stratum.
//
// Semantics are uniform across the probe structures (base hash-index
// directories and the incremental join indexes):
//
//   - TagProbes / TagRejects: occupied directory or chain positions
//     inspected through the 1-byte tag lane, and how many of them were
//     rejected by the tag alone — without loading the full slot entry
//     or cached 64-bit hash.
//   - KeyCompares / KeySkips: full-key compares against arena tuples
//     actually performed, vs. rows accepted without any key compare
//     because the bucket passed the build-time single-key audit and its
//     first row already verified the probe key.
//   - BloomChecks / BloomSkips: Bloom-guard consultations before a
//     bucket walk, and how many walks the guard skipped entirely.
type ProbeCounters struct {
	TagProbes   int64
	TagRejects  int64
	KeyCompares int64
	KeySkips    int64
	BloomChecks int64
	BloomSkips  int64
}

// Add accumulates another bag into c.
func (c *ProbeCounters) Add(o ProbeCounters) {
	c.TagProbes += o.TagProbes
	c.TagRejects += o.TagRejects
	c.KeyCompares += o.KeyCompares
	c.KeySkips += o.KeySkips
	c.BloomChecks += o.BloomChecks
	c.BloomSkips += o.BloomSkips
}

// TagRejectRate is the fraction of tag-lane inspections resolved by the
// one-byte compare alone.
func (c *ProbeCounters) TagRejectRate() float64 {
	if c.TagProbes == 0 {
		return 0
	}
	return float64(c.TagRejects) / float64(c.TagProbes)
}

// KeySkipRate is the fraction of arena rows accepted without a full-key
// compare — the share of full-key compares the tagged, audited
// directory eliminated relative to a per-row-compare walk.
func (c *ProbeCounters) KeySkipRate() float64 {
	total := c.KeyCompares + c.KeySkips
	if total == 0 {
		return 0
	}
	return float64(c.KeySkips) / float64(total)
}

// BloomSkipRate is the fraction of guarded probes the Bloom filter
// resolved without touching the directory.
func (c *ProbeCounters) BloomSkipRate() float64 {
	if c.BloomChecks == 0 {
		return 0
	}
	return float64(c.BloomSkips) / float64(c.BloomChecks)
}
