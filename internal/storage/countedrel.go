package storage

// CountedSetRelation is a SetRelation variant that keeps a per-tuple
// support count beside the membership table, for the incremental
// view-maintenance plane (internal/ivm). It shares SetRelation's
// layout — append-only tuple arena, 8-byte ordered view refs, an
// open-addressed insert-only table with inline hashes — plus one int32
// count lane parallel to views. Two client conventions share the type:
//
//   - EDB mirrors use the count as multiset multiplicity: Add on a
//     present tuple bumps it, Remove decrements, and the tuple is
//     "live" while the count is positive. This is what turns a raw
//     insert/delete stream into net set-level deltas.
//   - IDB fixpoints use the count as a DRed liveness flag: derived
//     tuples sit at 1, the over-delete pass Kills them to 0, and the
//     re-derive pass Revives survivors. A revived tuple keeps its
//     ordinal, so incremental indexes chained over ordinals stay
//     valid across delete batches.
//
// Entries are never physically removed (no tombstone compaction): a
// dead tuple keeps its arena block and ordinal so it can be revived or
// re-inserted without disturbing snapshots or indexes. Memory is
// therefore bounded by the set of distinct tuples ever held, not the
// current live set; callers that delete heavily rebuild from scratch
// (the view's full-recompute fallback does exactly that).
type CountedSetRelation struct {
	schema *Schema
	width  int
	arena  tupleArena
	views  []arenaRef
	counts []int32
	table  []setSlot
	mask   uint64
	live   int
}

// NewCountedSetRelation returns an empty counted relation over the
// schema.
func NewCountedSetRelation(schema *Schema) *CountedSetRelation {
	return &CountedSetRelation{
		schema: schema,
		width:  schema.Arity(),
		table:  newSlotTable(setMinTable),
		mask:   setMinTable - 1,
	}
}

// Schema returns the relation's typed shape.
func (r *CountedSetRelation) Schema() *Schema { return r.schema }

// Len reports the number of distinct tuples ever inserted (live or
// dead). Ordinals range over [0, Len()).
func (r *CountedSetRelation) Len() int { return len(r.views) }

// Live reports the number of tuples with a positive count.
func (r *CountedSetRelation) Live() int { return r.live }

// ordOf locates t's ordinal, or -1 if the tuple was never inserted.
func (r *CountedSetRelation) ordOf(h uint64, t Tuple) int {
	slot := h & r.mask
	for {
		s := r.table[slot]
		if s.idx < 0 {
			return -1
		}
		if s.hash == h && r.arena.tuple(r.views[s.idx], r.width).Equal(t) {
			return int(s.idx)
		}
		slot = (slot + 1) & r.mask
	}
}

// Add increments t's count, inserting it if absent. It returns the
// tuple's ordinal, whether the tuple is brand new (first insertion
// ever), and whether it came back from the dead (count 0 → 1; the
// ordinal, and any index entries chained on it, are reused).
func (r *CountedSetRelation) Add(t Tuple) (ord int, fresh, revived bool) {
	return r.AddHashed(t.Hash(), t)
}

// AddHashed is Add with a caller-supplied full-tuple hash.
func (r *CountedSetRelation) AddHashed(h uint64, t Tuple) (ord int, fresh, revived bool) {
	if i := r.ordOf(h, t); i >= 0 {
		if r.counts[i] == 0 {
			r.live++
			revived = true
		}
		r.counts[i]++
		return i, false, revived
	}
	slot := h & r.mask
	for r.table[slot].idx >= 0 {
		slot = (slot + 1) & r.mask
	}
	block, ref := r.arena.alloc(r.width)
	copy(block, t)
	ord = len(r.views)
	r.table[slot] = setSlot{hash: h, idx: int32(ord)}
	r.views = append(r.views, ref)
	r.counts = append(r.counts, 1)
	r.live++
	if uint64(len(r.views))*4 > uint64(len(r.table))*3 {
		r.grow()
	}
	return ord, true, false
}

// grow doubles the slot table, rehousing entries by cached hash.
func (r *CountedSetRelation) grow() {
	table := newSlotTable(2 * len(r.table))
	mask := uint64(len(table) - 1)
	for _, s := range r.table {
		if s.idx < 0 {
			continue
		}
		slot := s.hash & mask
		for table[slot].idx >= 0 {
			slot = (slot + 1) & mask
		}
		table[slot] = s
	}
	r.table = table
	r.mask = mask
}

// Remove decrements t's count. It reports whether the tuple was live
// before the call and whether this removal took it to zero.
func (r *CountedSetRelation) Remove(t Tuple) (present, died bool) {
	return r.RemoveHashed(t.Hash(), t)
}

// RemoveHashed is Remove with a caller-supplied hash. Removing an
// absent or already-dead tuple is a no-op reported as !present.
func (r *CountedSetRelation) RemoveHashed(h uint64, t Tuple) (present, died bool) {
	i := r.ordOf(h, t)
	if i < 0 || r.counts[i] == 0 {
		return false, false
	}
	r.counts[i]--
	if r.counts[i] == 0 {
		r.live--
		return true, true
	}
	return true, false
}

// Kill forces t's count to zero (the DRed over-delete). It reports
// whether the tuple was live.
func (r *CountedSetRelation) Kill(t Tuple) bool {
	i := r.ordOf(t.Hash(), t)
	if i < 0 || r.counts[i] == 0 {
		return false
	}
	r.counts[i] = 0
	r.live--
	return true
}

// Revive restores a dead tuple to count 1 (the DRed re-derive). It
// reports whether the tuple existed and was dead. The ordinal is
// unchanged, so ordinal-chained indexes need no append.
func (r *CountedSetRelation) Revive(t Tuple) bool {
	i := r.ordOf(t.Hash(), t)
	if i < 0 || r.counts[i] != 0 {
		return false
	}
	r.counts[i] = 1
	r.live++
	return true
}

// ContainsLive reports whether t is present with a positive count.
func (r *CountedSetRelation) ContainsLive(t Tuple) bool {
	return r.ContainsLiveHashed(t.Hash(), t)
}

// ContainsLiveHashed is ContainsLive with a caller-supplied hash.
func (r *CountedSetRelation) ContainsLiveHashed(h uint64, t Tuple) bool {
	i := r.ordOf(h, t)
	return i >= 0 && r.counts[i] > 0
}

// ContainsTuple implements the engine's membership-prober surface
// (engine.MembershipProber): guard negations generated by the ivm
// rewriter probe the live fixpoint through it while a delta program
// runs. Probes are read-only, so a run may call it from every worker
// concurrently as long as no mutation is interleaved — the view
// serializes refreshes, and applies results only after the run.
func (r *CountedSetRelation) ContainsTuple(t Tuple) bool {
	return r.ContainsLiveHashed(t.Hash(), t)
}

// At returns the i-th inserted tuple (live or dead) as its stable
// arena view.
func (r *CountedSetRelation) At(i int) Tuple { return r.arena.tuple(r.views[i], r.width) }

// CountAt returns the i-th tuple's current count.
func (r *CountedSetRelation) CountAt(i int) int { return int(r.counts[i]) }

// ForEachLive visits every live tuple in insertion order until fn
// returns false.
func (r *CountedSetRelation) ForEachLive(fn func(Tuple) bool) {
	for i, ref := range r.views {
		if r.counts[i] == 0 {
			continue
		}
		if !fn(r.arena.tuple(ref, r.width)) {
			return
		}
	}
}

// LiveSnapshot returns the live tuples in insertion order. Like
// SetRelation.Snapshot, the tuples alias the arena and stay valid and
// immutable for the relation's lifetime; the slice itself is fresh.
func (r *CountedSetRelation) LiveSnapshot() []Tuple {
	out := make([]Tuple, 0, r.live)
	for i, ref := range r.views {
		if r.counts[i] > 0 {
			out = append(out, r.arena.tuple(ref, r.width))
		}
	}
	return out
}
