package storage

import "sync"

// SymbolTable interns strings so that string-valued columns can be
// stored and joined as 64-bit integers. It is safe for concurrent use:
// parallel workers intern symbols while materializing join results.
type SymbolTable struct {
	mu   sync.RWMutex
	ids  map[string]int64
	strs []string
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]int64)}
}

// Intern returns the id for s, assigning a fresh one on first use.
func (t *SymbolTable) Intern(s string) int64 {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id = int64(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Lookup resolves an id back to its string.
func (t *SymbolTable) Lookup(id int64) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= int64(len(t.strs)) {
		return "", false
	}
	return t.strs[id], true
}

// Len reports the number of interned symbols.
func (t *SymbolTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.strs)
}
