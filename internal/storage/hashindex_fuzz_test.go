package storage

import (
	"math/rand"
	"testing"
)

// Property and fuzz coverage for the tagged directory: the byte tag
// lane, the single-key bucket audit and the Bloom guard are pure
// probe accelerations, so every counted probe entry point must agree
// with the map oracle — and with the untagged directory walk — on any
// build, including the degenerate shapes (zero rows, every row one
// key, adversarial same-bucket keys).

// oracleRows returns the oracle's bucket for key (nil when absent).
func oracleRows(m *mapIndex, key []Value) []Tuple {
	return m.lookupAll(key)
}

// checkProbeAgreement drives every probe surface over each distinct
// present key plus a batch of absent keys, comparing against the map
// oracle. It returns the counters accumulated over the present-key
// probes so callers can assert counting invariants.
func checkProbeAgreement(t *testing.T, tuples []Tuple, keyCols []int, idx *HashIndex) ProbeCounters {
	t.Helper()
	ref := newMapIndex(tuples, keyCols)
	var pc ProbeCounters
	seen := map[string]bool{}
	for _, tu := range tuples {
		mk := mapKey(tu, keyCols)
		if seen[mk] {
			continue
		}
		seen[mk] = true
		key := keyOf(tu, keyCols)
		h := HashValues(key)
		want := oracleRows(ref, key)

		if !idx.MayContain(h) {
			t.Fatalf("bloom rejected present key %v", key)
		}
		if !idx.ContainsProbe(h, key, &pc) {
			t.Fatalf("ContainsProbe(%v) = false for present key", key)
		}
		start, end := idx.ProbeRange(h, &pc)
		ns, ne := idx.rangeOfNoTag(h)
		if start != ns || end != ne {
			t.Fatalf("key %v: tagged range [%d,%d) != untagged [%d,%d)", key, start, end, ns, ne)
		}
		// The bucket groups rows by full hash; filtering it on the key
		// columns must reproduce the oracle bucket in order. The walk
		// mirrors the engine's audited-bucket discipline — one verified
		// row vouches for the rest of a Keyed bucket — so the oracle
		// comparison also validates the audit's skip soundness.
		var got []Tuple
		keyVerified := false
		for r := start; r < end; r++ {
			row := idx.RowAt(r)
			matched := false
			if keyVerified {
				pc.KeySkips++
				matched = true
			} else {
				pc.KeyCompares++
				matched = idx.MatchesKey(row, key)
				if matched && idx.Keyed() {
					keyVerified = true
				}
			}
			if matched {
				got = append(got, row)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("key %v: %d rows, oracle %d", key, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("key %v row %d: %v vs oracle %v", key, i, got[i], want[i])
			}
		}
	}
	// Absent keys: tagged and untagged walks agree, ContainsProbe says
	// no, and a Bloom rejection never contradicts the directory.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 256; i++ {
		key := make([]Value, len(keyCols))
		for j := range key {
			key[j] = IntVal(rng.Int63())
		}
		h := HashValues(key)
		want := len(oracleRows(ref, key)) > 0
		if got := idx.ContainsProbe(h, key, &pc); got != want {
			t.Fatalf("ContainsProbe(%v) = %v, oracle %v", key, got, want)
		}
		if want && !idx.MayContain(h) {
			t.Fatalf("bloom rejected present key %v", key)
		}
		s1, e1 := idx.ProbeRange(h, &pc)
		s2, e2 := idx.rangeOfNoTag(h)
		if s1 != s2 || e1 != e2 {
			t.Fatalf("absent key %v: tagged [%d,%d) != untagged [%d,%d)", key, s1, e1, s2, e2)
		}
	}
	return pc
}

func TestTaggedDirectoryProperties(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		width   int
		domain  int
		keyCols []int
	}{
		{"zero-rows", 0, 2, 4, []int{0}},
		{"one-row", 1, 2, 4, []int{0}},
		{"all-one-key", 400, 2, 1, []int{0}},
		{"dense-dups", 600, 3, 25, []int{0, 2}},
		{"sparse", 600, 2, 1 << 30, []int{0}},
		{"parallel-shape", parallelBuildMin * 2, 3, 300, []int{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tuples := randTuples(tc.n, tc.width, tc.domain, 31)
			idx := NewHashIndex(tuples, tc.keyCols)
			pc := checkProbeAgreement(t, tuples, tc.keyCols, idx)
			if tc.n > 1 && !idx.Keyed() {
				// randTuples draws 64-bit hashes from far fewer than 2^32
				// keys; a collision-induced audit failure here is
				// astronomically unlikely, so treat it as a bug.
				t.Fatalf("single-key audit unexpectedly failed")
			}
			if tc.name == "all-one-key" && pc.KeySkips == 0 {
				t.Fatalf("audited one-key bucket produced no key-compare skips: %+v", pc)
			}
		})
	}
}

// TestTaggedDirectoryParallelBuild re-runs the agreement suite over the
// sharded parallel build, whose tag lanes, Bloom blocks and audit flags
// are assembled per partition.
func TestTaggedDirectoryParallelBuild(t *testing.T) {
	tuples := randTuples(parallelBuildMin*2, 3, 400, 17)
	for _, idx := range BuildHashIndexes(tuples, [][]int{{0}, {0, 2}}, 4) {
		pc := checkProbeAgreement(t, tuples, idx.KeyCols(), idx)
		if pc.KeySkips == 0 {
			t.Fatalf("duplicate-heavy parallel build produced no key skips: %+v", pc)
		}
		if !idx.Keyed() {
			t.Fatalf("parallel single-key audit unexpectedly failed")
		}
	}
}

// TestSingleKeyAuditDetectsCollision plants two distinct stored keys in
// one bucket (same full 64-bit hash would be needed; instead the audit
// must also catch same-slot distinct keys only when their full hashes
// collide — which we can't fabricate through the public API — so this
// test instead verifies the audit flag goes false when buckets are
// forged to violate it). It builds the index normally, then corrupts
// one bucket's arena rows and re-runs the audit logic indirectly via a
// fresh build over tuples crafted to share a bucket.
func TestSingleKeyAuditDetectsCollision(t *testing.T) {
	// Force a collision at the buildRegion level: hand it two entries
	// with identical key hashes but different key columns.
	tuples := []Tuple{
		{IntVal(1), IntVal(10)},
		{IntVal(2), IntVal(20)},
	}
	hs := []uint64{0xdeadbeef, 0xdeadbeef} // forged: same "hash", different keys
	arena := make([]Value, 4)
	bloom := make([]uint64, bloomBlockWords)
	region, tags, keyed, _ := buildRegion(tuples, 2, []int{0}, 0, hs, nil, 0, arena, bloom, 0)
	if keyed {
		t.Fatalf("audit accepted a bucket holding two distinct keys")
	}
	if len(region) == 0 || len(tags) != len(region) {
		t.Fatalf("malformed region/tags: %d/%d", len(region), len(tags))
	}
	// The collided bucket must still hold both rows.
	n := 0
	for _, s := range region {
		n += int(s.count)
	}
	if n != 2 {
		t.Fatalf("collided bucket lost rows: %d", n)
	}
}

// TestBloomNoFalseNegatives checks the guard's one-sided contract over
// a large build: every present key passes, and the fill (and so the
// false-positive rate) stays within the sizing rule's design range.
func TestBloomNoFalseNegatives(t *testing.T) {
	tuples := randTuples(50_000, 2, 1<<40, 3)
	idx := NewHashIndex(tuples, []int{0})
	for _, tu := range tuples {
		if !idx.MayContain(HashValues(keyOf(tu, []int{0}))) {
			t.Fatalf("bloom false negative for %v", tu)
		}
	}
	if fill := idx.bloomFill(); fill > 0.5 {
		t.Fatalf("bloom fill %.2f exceeds design bound (sizing broken?)", fill)
	}
	if idx.BloomBits() < 50_000*bloomBitsPerRow/2 {
		t.Fatalf("bloom undersized: %d bits", idx.BloomBits())
	}
}

// FuzzTaggedDirectory feeds arbitrary byte strings decoded into small
// tuple sets through the full agreement check, so the corpus can find
// directory shapes (collision runs, wrap-around probes, shrink-rebuild
// boundaries) that the fixed cases miss.
func FuzzTaggedDirectory(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2), uint8(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0}, uint8(3), uint8(2))
	f.Add([]byte{255, 1, 255, 1}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, widthB, keyB uint8) {
		width := int(widthB)%3 + 1
		keyCols := make([]int, int(keyB)%width+1)
		for i := range keyCols {
			keyCols[i] = (int(keyB) + i) % width
		}
		var tuples []Tuple
		for i := 0; i+width <= len(data); i += width {
			tu := make(Tuple, width)
			for j := 0; j < width; j++ {
				tu[j] = IntVal(int64(data[i+j]) % 16) // small domain → heavy dups
			}
			tuples = append(tuples, tu)
		}
		idx := NewHashIndex(tuples, keyCols)
		checkProbeAgreement(t, tuples, keyCols, idx)
	})
}

// BenchmarkProbeTagAB is the tag-filter on/off A/B: the same probe
// stream through the tagged walk (ProbeRange) and the untagged
// full-hash walk it replaced (rangeOfNoTag).
func BenchmarkProbeTagAB(b *testing.B) {
	const n = 100_000
	tuples := randTuples(n, 2, n/4, 42)
	idx := NewHashIndex(tuples, []int{0})
	hashes := make([]uint64, 1024)
	for i := range hashes {
		hashes[i] = HashValues(keyOf(tuples[i*97%n], []int{0}))
	}
	b.Run("tagged", func(b *testing.B) {
		b.ReportAllocs()
		var pc ProbeCounters
		for i := 0; i < b.N; i++ {
			s, e := idx.ProbeRange(hashes[i%len(hashes)], &pc)
			if s >= e {
				b.Fatal("missing key")
			}
		}
	})
	b.Run("untagged", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, e := idx.rangeOfNoTag(hashes[i%len(hashes)])
			if s >= e {
				b.Fatal("missing key")
			}
		}
	})
}

// BenchmarkBloomGuardMiss measures the anti-join miss path: absent keys
// through the Bloom guard vs. straight directory walks.
func BenchmarkBloomGuardMiss(b *testing.B) {
	const n = 100_000
	tuples := randTuples(n, 2, 1<<40, 42)
	idx := NewHashIndex(tuples, []int{0})
	rng := rand.New(rand.NewSource(7))
	keys := make([][]Value, 1024)
	hashes := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = []Value{IntVal(rng.Int63())} // effectively all absent
		hashes[i] = HashValues(keys[i])
	}
	b.Run("bloom", func(b *testing.B) {
		var pc ProbeCounters
		for i := 0; i < b.N; i++ {
			j := i % len(keys)
			if idx.MayContain(hashes[j]) {
				idx.ContainsProbe(hashes[j], keys[j], &pc)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		var pc ProbeCounters
		for i := 0; i < b.N; i++ {
			j := i % len(keys)
			idx.ContainsProbe(hashes[j], keys[j], &pc)
		}
	})
}

func BenchmarkProbeCounted(b *testing.B) {
	// Counted vs uncounted probe on the same stream: the counter bag's
	// cost must be noise.
	const n = 100_000
	tuples := randTuples(n, 2, n/4, 42)
	idx := NewHashIndex(tuples, []int{0})
	keys := make([][]Value, 1024)
	hashes := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = keyOf(tuples[i*97%n], []int{0})
		hashes[i] = HashValues(keys[i])
	}
	b.Run("counted", func(b *testing.B) {
		var pc ProbeCounters
		for i := 0; i < b.N; i++ {
			j := i % len(keys)
			if !idx.ContainsProbe(hashes[j], keys[j], &pc) {
				b.Fatal("missing key")
			}
		}
	})
	b.Run("uncounted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !idx.Contains(keys[i%len(keys)]) {
				b.Fatal("missing key")
			}
		}
	})
}
