package storage

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is the typed shape of a relation. Schemas are immutable once
// shared with the engine.
type Schema struct {
	Name string
	Cols []Column
}

// NewSchema builds a schema from alternating column names and types.
func NewSchema(name string, cols ...Column) *Schema {
	return &Schema{Name: name, Cols: cols}
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Cols) }

// ColType returns the type of column i.
func (s *Schema) ColType(i int) Type { return s.Cols[i].Type }

// ColIndex finds a column by name, returning -1 when absent.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// String renders the schema as "name(col:type, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Project returns a schema holding the listed columns of s, named after
// the projection target.
func (s *Schema) Project(name string, cols []int) *Schema {
	out := &Schema{Name: name, Cols: make([]Column, len(cols))}
	for i, c := range cols {
		out.Cols[i] = s.Cols[c]
	}
	return out
}
