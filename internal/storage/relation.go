package storage

// Relation is the common surface of the two tuple containers used during
// semi-naive evaluation: deduplicating set relations and keyed aggregate
// relations.
type Relation interface {
	// Schema returns the relation's typed shape.
	Schema() *Schema
	// Len reports the number of (distinct) tuples currently held.
	Len() int
	// Insert adds a tuple, reporting whether the relation changed.
	Insert(t Tuple) bool
	// Contains reports whether the tuple (for sets: exactly; for
	// aggregates: its group key with a value at least as good) is
	// already represented.
	Contains(t Tuple) bool
	// ForEach visits every current tuple until fn returns false.
	ForEach(fn func(Tuple) bool)
	// Snapshot returns the current tuples. The result must not be
	// mutated.
	Snapshot() []Tuple
}

// SetRelation is a deduplicating tuple set with insertion-ordered
// iteration. It backs recursive predicates with set semantics such as
// tc and sg.
//
// Layout: tuple words live in an append-only chunked arena; views holds
// one stable Tuple header per distinct tuple, in insertion order; the
// full-tuple hash of every stored tuple is cached next to its slot; and
// membership is resolved through an open-addressed, power-of-two,
// insert-only hash table of view indexes (linear probing, no
// tombstones). Inserts copy the incoming tuple into the arena, so
// callers may reuse their buffers, and steady-state inserts perform no
// per-tuple allocation.
type SetRelation struct {
	schema *Schema
	arena  tupleArena
	views  []Tuple  // insertion order; each aliases arena memory
	hashes []uint64 // cached full-tuple hash per view
	table  []int32  // open-addressed slot -> view index, -1 = empty
	mask   uint64
}

const setMinTable = 16

// NewSetRelation returns an empty set relation over the schema.
func NewSetRelation(schema *Schema) *SetRelation {
	return &SetRelation{
		schema: schema,
		table:  newSlotTable(setMinTable),
		mask:   setMinTable - 1,
	}
}

func newSlotTable(n int) []int32 {
	t := make([]int32, n)
	for i := range t {
		t[i] = -1
	}
	return t
}

// Schema implements Relation.
func (r *SetRelation) Schema() *Schema { return r.schema }

// Len implements Relation.
func (r *SetRelation) Len() int { return len(r.views) }

// Insert adds t if absent and reports whether it was new. The tuple is
// copied into the relation's arena, so the caller's buffer may be
// reused immediately.
func (r *SetRelation) Insert(t Tuple) bool {
	_, added := r.InsertHashed(t.Hash(), t)
	return added
}

// InsertHashed is Insert for callers that already know t's full-tuple
// hash (the engine computes it once in Distribute and ships it with the
// tuple). It returns the stable arena-backed view of the tuple — valid
// for the relation's lifetime — and whether the tuple was new.
func (r *SetRelation) InsertHashed(h uint64, t Tuple) (Tuple, bool) {
	slot := h & r.mask
	for {
		idx := r.table[slot]
		if idx < 0 {
			break
		}
		if r.hashes[idx] == h && r.views[idx].Equal(t) {
			return r.views[idx], false
		}
		slot = (slot + 1) & r.mask
	}
	view := Tuple(r.arena.alloc(len(t)))
	copy(view, t)
	r.table[slot] = int32(len(r.views))
	r.views = append(r.views, view)
	r.hashes = append(r.hashes, h)
	if uint64(len(r.views))*4 > uint64(len(r.table))*3 {
		r.grow()
	}
	return view, true
}

// grow doubles the slot table, rehousing every view by its cached hash
// (tuples are never re-hashed).
func (r *SetRelation) grow() {
	table := newSlotTable(2 * len(r.table))
	mask := uint64(len(table) - 1)
	for idx, h := range r.hashes {
		slot := h & mask
		for table[slot] >= 0 {
			slot = (slot + 1) & mask
		}
		table[slot] = int32(idx)
	}
	r.table = table
	r.mask = mask
}

// Contains implements Relation.
func (r *SetRelation) Contains(t Tuple) bool {
	return r.ContainsHashed(t.Hash(), t)
}

// ContainsHashed is Contains with a caller-supplied full-tuple hash.
func (r *SetRelation) ContainsHashed(h uint64, t Tuple) bool {
	slot := h & r.mask
	for {
		idx := r.table[slot]
		if idx < 0 {
			return false
		}
		if r.hashes[idx] == h && r.views[idx].Equal(t) {
			return true
		}
		slot = (slot + 1) & r.mask
	}
}

// At returns the i-th inserted tuple as its stable arena view.
func (r *SetRelation) At(i int) Tuple { return r.views[i] }

// ForEach implements Relation.
func (r *SetRelation) ForEach(fn func(Tuple) bool) {
	for _, t := range r.views {
		if !fn(t) {
			return
		}
	}
}

// Snapshot implements Relation. The returned tuples alias the
// relation's arena, whose chunks are never moved or reused: a snapshot
// taken at any point stays valid — same length, same contents — no
// matter how many inserts (including table growth and new arena
// chunks) happen afterwards. Callers must not mutate the tuples.
func (r *SetRelation) Snapshot() []Tuple {
	return r.views[:len(r.views):len(r.views)]
}
