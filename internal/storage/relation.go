package storage

import (
	"unsafe"

	"repro/internal/prefetch"
)

// Relation is the common surface of the two tuple containers used during
// semi-naive evaluation: deduplicating set relations and keyed aggregate
// relations.
type Relation interface {
	// Schema returns the relation's typed shape.
	Schema() *Schema
	// Len reports the number of (distinct) tuples currently held.
	Len() int
	// Insert adds a tuple, reporting whether the relation changed.
	Insert(t Tuple) bool
	// Contains reports whether the tuple (for sets: exactly; for
	// aggregates: its group key with a value at least as good) is
	// already represented.
	Contains(t Tuple) bool
	// ForEach visits every current tuple until fn returns false.
	ForEach(fn func(Tuple) bool)
	// Snapshot returns the current tuples. The result must not be
	// mutated.
	Snapshot() []Tuple
}

// SetRelation is a deduplicating tuple set with insertion-ordered
// iteration. It backs recursive predicates with set semantics such as
// tc and sg.
//
// Layout: tuple words live in an append-only chunked arena, all at the
// schema's fixed width; views holds one 8-byte arena ref per distinct
// tuple, in insertion order; and membership is resolved through an
// open-addressed, power-of-two, insert-only hash table (linear probing,
// no tombstones) whose slots carry the stored tuple's full 64-bit hash
// inline, so probe collisions and duplicate confirmations resolve with
// one slot load before any tuple words are touched. Every hot array —
// refs, slots, and the word chunks themselves — is pointer-free, so a
// relation holding millions of tuples gives the garbage collector
// nothing to scan and append growth nothing to memclr beyond 8 bytes
// per tuple. Inserts copy the incoming tuple into the arena, so callers
// may reuse their buffers, and steady-state inserts perform no
// per-tuple allocation; tuple views handed out by At and InsertHashed
// are reconstructed slice headers into the arena, stable for the
// relation's lifetime.
type SetRelation struct {
	schema *Schema
	width  int
	arena  tupleArena
	views  []arenaRef // insertion order; each names arena memory
	table  []setSlot  // open-addressed; idx < 0 = empty
	mask   uint64
}

// setSlot is one membership-table entry: the view index plus its cached
// full-tuple hash.
type setSlot struct {
	hash uint64
	idx  int32
}

const setMinTable = 16

// NewSetRelation returns an empty set relation over the schema. All
// inserted tuples must have the schema's arity.
func NewSetRelation(schema *Schema) *SetRelation {
	return &SetRelation{
		schema: schema,
		width:  schema.Arity(),
		table:  newSlotTable(setMinTable),
		mask:   setMinTable - 1,
	}
}

func newSlotTable(n int) []setSlot {
	t := make([]setSlot, n)
	for i := range t {
		t[i].idx = -1
	}
	return t
}

// Schema implements Relation.
func (r *SetRelation) Schema() *Schema { return r.schema }

// Len implements Relation.
func (r *SetRelation) Len() int { return len(r.views) }

// Insert adds t if absent and reports whether it was new. The tuple is
// copied into the relation's arena, so the caller's buffer may be
// reused immediately.
func (r *SetRelation) Insert(t Tuple) bool {
	_, added := r.InsertHashed(t.Hash(), t)
	return added
}

// InsertHashed is Insert for callers that already know t's full-tuple
// hash (the engine computes it once in Distribute and ships it with the
// tuple). It returns the stable arena-backed view of the tuple — valid
// for the relation's lifetime — and whether the tuple was new.
func (r *SetRelation) InsertHashed(h uint64, t Tuple) (Tuple, bool) {
	slot := h & r.mask
	for {
		s := r.table[slot]
		if s.idx < 0 {
			break
		}
		if s.hash == h {
			if view := r.arena.tuple(r.views[s.idx], r.width); view.Equal(t) {
				return view, false
			}
		}
		slot = (slot + 1) & r.mask
	}
	block, ref := r.arena.alloc(r.width)
	copy(block, t)
	r.table[slot] = setSlot{hash: h, idx: int32(len(r.views))}
	r.views = append(r.views, ref)
	if uint64(len(r.views))*4 > uint64(len(r.table))*3 {
		r.grow()
	}
	return Tuple(block), true
}

// PrefetchSlot hints the membership-table line an InsertHashed(h, ...)
// or ContainsHashed(h, ...) call will probe first. The merge loops
// (internal/engine) issue it a fixed distance ahead of the walk: once
// the relation holds more than a few hundred thousand tuples the slot
// table outsizes L2 and the probe load is the merge path's dominant
// stall.
func (r *SetRelation) PrefetchSlot(h uint64) {
	prefetch.T0(unsafe.Pointer(&r.table[h&r.mask]))
}

// grow doubles the slot table, rehousing every entry by its cached hash
// (tuples are never re-hashed).
func (r *SetRelation) grow() {
	table := newSlotTable(2 * len(r.table))
	mask := uint64(len(table) - 1)
	for _, s := range r.table {
		if s.idx < 0 {
			continue
		}
		slot := s.hash & mask
		for table[slot].idx >= 0 {
			slot = (slot + 1) & mask
		}
		table[slot] = s
	}
	r.table = table
	r.mask = mask
}

// Contains implements Relation.
func (r *SetRelation) Contains(t Tuple) bool {
	return r.ContainsHashed(t.Hash(), t)
}

// ContainsHashed is Contains with a caller-supplied full-tuple hash.
func (r *SetRelation) ContainsHashed(h uint64, t Tuple) bool {
	slot := h & r.mask
	for {
		s := r.table[slot]
		if s.idx < 0 {
			return false
		}
		if s.hash == h && r.arena.tuple(r.views[s.idx], r.width).Equal(t) {
			return true
		}
		slot = (slot + 1) & r.mask
	}
}

// At returns the i-th inserted tuple as its stable arena view. The
// header is reconstructed from the packed ref — no allocation.
func (r *SetRelation) At(i int) Tuple { return r.arena.tuple(r.views[i], r.width) }

// ForEach implements Relation.
func (r *SetRelation) ForEach(fn func(Tuple) bool) {
	for _, ref := range r.views {
		if !fn(r.arena.tuple(ref, r.width)) {
			return
		}
	}
}

// Snapshot implements Relation. The returned tuples alias the
// relation's arena, whose chunks are never moved or reused: a snapshot
// taken at any point stays valid — same length, same contents — no
// matter how many inserts (including table growth and new arena
// chunks) happen afterwards. Callers must not mutate the tuples.
// Building the header slice allocates, so hot paths should iterate with
// Len/At or ForEach instead.
func (r *SetRelation) Snapshot() []Tuple {
	out := make([]Tuple, len(r.views))
	for i, ref := range r.views {
		out[i] = r.arena.tuple(ref, r.width)
	}
	return out
}
