package storage

// Relation is the common surface of the two tuple containers used during
// semi-naive evaluation: deduplicating set relations and keyed aggregate
// relations.
type Relation interface {
	// Schema returns the relation's typed shape.
	Schema() *Schema
	// Len reports the number of (distinct) tuples currently held.
	Len() int
	// Insert adds a tuple, reporting whether the relation changed.
	Insert(t Tuple) bool
	// Contains reports whether the tuple (for sets: exactly; for
	// aggregates: its group key with a value at least as good) is
	// already represented.
	Contains(t Tuple) bool
	// ForEach visits every current tuple until fn returns false.
	ForEach(fn func(Tuple) bool)
	// Snapshot returns the current tuples. The result must not be
	// mutated and is invalidated by subsequent inserts.
	Snapshot() []Tuple
}

// SetRelation is a deduplicating tuple set with insertion-ordered
// iteration. It backs recursive predicates with set semantics such as
// tc and sg.
type SetRelation struct {
	schema  *Schema
	buckets map[uint64][]int32
	tuples  []Tuple
}

// NewSetRelation returns an empty set relation over the schema.
func NewSetRelation(schema *Schema) *SetRelation {
	return &SetRelation{
		schema:  schema,
		buckets: make(map[uint64][]int32),
	}
}

// Schema implements Relation.
func (r *SetRelation) Schema() *Schema { return r.schema }

// Len implements Relation.
func (r *SetRelation) Len() int { return len(r.tuples) }

// Insert adds t if absent and reports whether it was new. The tuple is
// retained by reference; callers that reuse buffers must pass a copy.
func (r *SetRelation) Insert(t Tuple) bool {
	h := t.Hash()
	for _, idx := range r.buckets[h] {
		if r.tuples[idx].Equal(t) {
			return false
		}
	}
	r.buckets[h] = append(r.buckets[h], int32(len(r.tuples)))
	r.tuples = append(r.tuples, t)
	return true
}

// Contains implements Relation.
func (r *SetRelation) Contains(t Tuple) bool {
	h := t.Hash()
	for _, idx := range r.buckets[h] {
		if r.tuples[idx].Equal(t) {
			return true
		}
	}
	return false
}

// ForEach implements Relation.
func (r *SetRelation) ForEach(fn func(Tuple) bool) {
	for _, t := range r.tuples {
		if !fn(t) {
			return
		}
	}
}

// Snapshot implements Relation.
func (r *SetRelation) Snapshot() []Tuple { return r.tuples }
