// Package storage provides the typed value model, tuple representation,
// relation containers and hash indexes used by the DCDatalog engine.
//
// Values are flat 64-bit scalars whose interpretation (signed integer,
// IEEE-754 double, or interned symbol) is carried by the column type in
// the owning Schema, never by the value itself. This keeps tuples
// hashable and comparable as raw words on the hot paths of semi-naive
// evaluation while still supporting the float arithmetic that programs
// such as PageRank (Query 6 in the paper) require.
package storage

import (
	"fmt"
	"math"
	"strconv"
)

// Type enumerates the column types understood by the engine.
type Type uint8

const (
	// TInt is a 64-bit signed integer column.
	TInt Type = iota
	// TFloat is a 64-bit IEEE-754 floating point column.
	TFloat
	// TSym is an interned string column; the value is an index into a
	// SymbolTable.
	TSym
)

// String returns the lower-case name of the type as used by the parser
// in declarations such as ".decl arc(x:int, y:int)".
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TSym:
		return "sym"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType converts a type name from program text into a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "int", "number", "integer":
		return TInt, nil
	case "float", "double":
		return TFloat, nil
	case "sym", "symbol", "string":
		return TSym, nil
	default:
		return 0, fmt.Errorf("storage: unknown column type %q", s)
	}
}

// Value is an untyped 64-bit scalar. Interpretation is external: the
// schema's column type says whether the bits are an int64, a float64 or
// a symbol index.
type Value uint64

// IntVal packs a signed integer into a Value.
func IntVal(i int64) Value { return Value(uint64(i)) }

// Int unpacks a Value as a signed integer.
func (v Value) Int() int64 { return int64(v) }

// FloatVal packs a float64 into a Value.
func FloatVal(f float64) Value { return Value(math.Float64bits(f)) }

// Float unpacks a Value as a float64.
func (v Value) Float() float64 { return math.Float64frombits(uint64(v)) }

// SymVal packs a symbol index into a Value.
func SymVal(id int64) Value { return Value(uint64(id)) }

// Sym unpacks a Value as a symbol index.
func (v Value) Sym() int64 { return int64(v) }

// AsFloat reinterprets v of type t as a float64, promoting integers.
// Symbols cannot be promoted and yield NaN.
func (v Value) AsFloat(t Type) float64 {
	switch t {
	case TInt:
		return float64(v.Int())
	case TFloat:
		return v.Float()
	default:
		return math.NaN()
	}
}

// FromFloat packs f as a value of column type t, truncating for TInt.
func FromFloat(f float64, t Type) Value {
	if t == TFloat {
		return FloatVal(f)
	}
	return IntVal(int64(f))
}

// Compare orders two values of the same column type. It returns a
// negative number, zero, or a positive number when a sorts before,
// equal to, or after b.
func Compare(a, b Value, t Type) int {
	switch t {
	case TFloat:
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	default: // TInt and TSym order by signed integer value.
		ai, bi := a.Int(), b.Int()
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	}
}

// Format renders a value of column type t for output, resolving symbols
// through st when provided.
func Format(v Value, t Type, st *SymbolTable) string {
	switch t {
	case TFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case TSym:
		if st != nil {
			if s, ok := st.Lookup(v.Sym()); ok {
				return s
			}
		}
		return fmt.Sprintf("sym#%d", v.Sym())
	default:
		return strconv.FormatInt(v.Int(), 10)
	}
}
