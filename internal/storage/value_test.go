package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntValRoundTrip(t *testing.T) {
	for _, i := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 42} {
		if got := IntVal(i).Int(); got != i {
			t.Errorf("IntVal(%d).Int() = %d", i, got)
		}
	}
}

func TestFloatValRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1.5, -2.25, math.MaxFloat64, math.SmallestNonzeroFloat64} {
		if got := FloatVal(f).Float(); got != f {
			t.Errorf("FloatVal(%g).Float() = %g", f, got)
		}
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(i int64) bool {
		return IntVal(i).Int() == i
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(f float64) bool {
		return math.IsNaN(f) || FloatVal(f).Float() == f
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareInt(t *testing.T) {
	cases := []struct {
		a, b int64
		want int
	}{
		{1, 2, -1}, {2, 1, 1}, {3, 3, 0}, {-5, 5, -1}, {math.MinInt64, math.MaxInt64, -1},
	}
	for _, c := range cases {
		got := Compare(IntVal(c.a), IntVal(c.b), TInt)
		if sign(got) != c.want {
			t.Errorf("Compare(%d,%d) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareFloat(t *testing.T) {
	if Compare(FloatVal(1.5), FloatVal(2.5), TFloat) >= 0 {
		t.Error("1.5 should sort before 2.5")
	}
	if Compare(FloatVal(-0.0), FloatVal(0.0), TFloat) != 0 {
		t.Error("-0.0 and 0.0 should compare equal")
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	if err := quick.Check(func(a, b int64) bool {
		return sign(Compare(IntVal(a), IntVal(b), TInt)) == -sign(Compare(IntVal(b), IntVal(a), TInt))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestAsFloatPromotesInt(t *testing.T) {
	if got := IntVal(7).AsFloat(TInt); got != 7.0 {
		t.Errorf("AsFloat = %g, want 7", got)
	}
	if got := FloatVal(2.5).AsFloat(TFloat); got != 2.5 {
		t.Errorf("AsFloat = %g, want 2.5", got)
	}
	if !math.IsNaN(SymVal(3).AsFloat(TSym)) {
		t.Error("symbol promotion should be NaN")
	}
}

func TestFromFloat(t *testing.T) {
	if got := FromFloat(3.9, TInt).Int(); got != 3 {
		t.Errorf("FromFloat(3.9, TInt) = %d, want 3 (truncation)", got)
	}
	if got := FromFloat(3.9, TFloat).Float(); got != 3.9 {
		t.Errorf("FromFloat(3.9, TFloat) = %g", got)
	}
}

func TestParseType(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Type
	}{{"int", TInt}, {"integer", TInt}, {"number", TInt}, {"float", TFloat}, {"double", TFloat}, {"sym", TSym}, {"string", TSym}, {"symbol", TSym}} {
		got, err := ParseType(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseType(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestFormat(t *testing.T) {
	st := NewSymbolTable()
	id := st.Intern("alice")
	if got := Format(IntVal(-3), TInt, nil); got != "-3" {
		t.Errorf("Format int = %q", got)
	}
	if got := Format(FloatVal(0.5), TFloat, nil); got != "0.5" {
		t.Errorf("Format float = %q", got)
	}
	if got := Format(SymVal(id), TSym, st); got != "alice" {
		t.Errorf("Format sym = %q", got)
	}
	if got := Format(SymVal(99), TSym, st); got != "sym#99" {
		t.Errorf("Format unknown sym = %q", got)
	}
}

func TestTypeString(t *testing.T) {
	if TInt.String() != "int" || TFloat.String() != "float" || TSym.String() != "sym" {
		t.Error("type names changed")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
