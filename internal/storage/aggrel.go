package storage

import "math"

// AggKind enumerates the monotone aggregates supported in recursion
// (paper §2.1, §6.2.1).
type AggKind uint8

const (
	// AggNone marks a non-aggregated relation.
	AggNone AggKind = iota
	// AggMin keeps the minimum value per group.
	AggMin
	// AggMax keeps the maximum value per group.
	AggMax
	// AggCount counts distinct contributors per group (Query 4's
	// count<X> counts the distinct attending friends).
	AggCount
	// AggSum sums one value per distinct contributor per group; a
	// repeated contributor replaces its previous contribution
	// (Query 6's sum<(Y,K)> keyed sum).
	AggSum
)

// String names the aggregate as written in rule heads.
func (k AggKind) String() string {
	switch k {
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	default:
		return "none"
	}
}

// aggGroup is the per-key state of an aggregate relation.
type aggGroup struct {
	key Tuple // group-by values
	val Value // current aggregated value
	// contrib tracks per-contributor values for AggSum and presence for
	// AggCount; nil for min/max.
	contrib map[Value]Value
}

// AggRelation stores one row per group key and merges new derivations
// monotonically. The schema's last column is the aggregate output; all
// earlier columns form the group key. For AggSum/AggCount, merges carry
// an explicit contributor value, realizing the paper's pair of index
// structures (group-key index plus (group, contributor) index) as a
// two-level map.
type AggRelation struct {
	schema  *Schema
	kind    AggKind
	valType Type
	eps     float64 // change threshold for float sums (0 = exact)

	buckets map[uint64][]int32
	groups  []aggGroup
	keyLen  int
}

// NewAggRelation returns an empty aggregate relation. The group key is
// the schema prefix; the final column holds the aggregate of the given
// kind.
func NewAggRelation(schema *Schema, kind AggKind) *AggRelation {
	n := schema.Arity()
	return &AggRelation{
		schema:  schema,
		kind:    kind,
		valType: schema.ColType(n - 1),
		buckets: make(map[uint64][]int32),
		keyLen:  n - 1,
	}
}

// Kind returns the aggregate kind.
func (r *AggRelation) Kind() AggKind { return r.kind }

// SetEpsilon sets the minimum absolute change in a float aggregate that
// counts as an update. Non-positive means exact comparison. Programs
// with non-monotone float sums (PageRank) use this to converge.
func (r *AggRelation) SetEpsilon(eps float64) { r.eps = eps }

// Schema implements Relation.
func (r *AggRelation) Schema() *Schema { return r.schema }

// Len implements Relation.
func (r *AggRelation) Len() int { return len(r.groups) }

// lookup finds the group index for a key, or -1.
func (r *AggRelation) lookup(key []Value) int {
	h := HashValues(key)
	for _, idx := range r.buckets[h] {
		g := &r.groups[idx]
		eq := true
		for i := range key {
			if g.key[i] != key[i] {
				eq = false
				break
			}
		}
		if eq {
			return int(idx)
		}
	}
	return -1
}

// Get returns the current aggregate for the key.
func (r *AggRelation) Get(key []Value) (Value, bool) {
	idx := r.lookup(key)
	if idx < 0 {
		return 0, false
	}
	return r.groups[idx].val, true
}

// Merge folds a new derivation into the group identified by key. For
// min/max the contributor is ignored. It reports whether the aggregate
// changed and returns the post-merge value.
func (r *AggRelation) Merge(key []Value, v Value, contributor Value) (bool, Value) {
	idx := r.lookup(key)
	if idx < 0 {
		g := aggGroup{key: Tuple(key).Clone()}
		switch r.kind {
		case AggCount:
			g.contrib = map[Value]Value{contributor: 1}
			g.val = IntVal(1)
		case AggSum:
			g.contrib = map[Value]Value{contributor: v}
			g.val = v
		default:
			g.val = v
		}
		h := HashValues(key)
		r.buckets[h] = append(r.buckets[h], int32(len(r.groups)))
		r.groups = append(r.groups, g)
		return true, g.val
	}

	g := &r.groups[idx]
	switch r.kind {
	case AggMin:
		if Compare(v, g.val, r.valType) < 0 {
			g.val = v
			return true, v
		}
		return false, g.val
	case AggMax:
		if Compare(v, g.val, r.valType) > 0 {
			g.val = v
			return true, v
		}
		return false, g.val
	case AggCount:
		if _, seen := g.contrib[contributor]; seen {
			return false, g.val
		}
		g.contrib[contributor] = 1
		g.val = IntVal(g.val.Int() + 1)
		return true, g.val
	case AggSum:
		old, seen := g.contrib[contributor]
		if seen && old == v {
			return false, g.val
		}
		g.contrib[contributor] = v
		if r.valType == TFloat {
			sum := g.val.Float() + v.Float()
			if seen {
				sum -= old.Float()
			}
			prev := g.val.Float()
			g.val = FloatVal(sum)
			if r.eps > 0 && math.Abs(sum-prev) <= r.eps {
				return false, g.val
			}
			return true, g.val
		}
		sum := g.val.Int() + v.Int()
		if seen {
			sum -= old.Int()
		}
		changed := sum != g.val.Int()
		g.val = IntVal(sum)
		return changed, g.val
	default:
		if g.val != v {
			g.val = v
			return true, v
		}
		return false, g.val
	}
}

// Insert implements Relation by splitting the tuple into key and value.
// The contributor defaults to the aggregate value itself, which gives
// correct semantics when loading materialized rows.
func (r *AggRelation) Insert(t Tuple) bool {
	changed, _ := r.Merge(t[:r.keyLen], t[r.keyLen], t[r.keyLen])
	return changed
}

// Contains reports whether the group exists with a value at least as
// good as the tuple's (for min/max) or exactly equal (otherwise).
func (r *AggRelation) Contains(t Tuple) bool {
	cur, ok := r.Get(t[:r.keyLen])
	if !ok {
		return false
	}
	switch r.kind {
	case AggMin:
		return Compare(cur, t[r.keyLen], r.valType) <= 0
	case AggMax:
		return Compare(cur, t[r.keyLen], r.valType) >= 0
	default:
		return cur == t[r.keyLen]
	}
}

// ForEach implements Relation, materializing each group as key+value.
func (r *AggRelation) ForEach(fn func(Tuple) bool) {
	row := make(Tuple, r.keyLen+1)
	for i := range r.groups {
		g := &r.groups[i]
		copy(row, g.key)
		row[r.keyLen] = g.val
		if !fn(row) {
			return
		}
	}
}

// Snapshot implements Relation; rows are freshly materialized.
func (r *AggRelation) Snapshot() []Tuple {
	out := make([]Tuple, 0, len(r.groups))
	for i := range r.groups {
		g := &r.groups[i]
		row := make(Tuple, r.keyLen+1)
		copy(row, g.key)
		row[r.keyLen] = g.val
		out = append(out, row)
	}
	return out
}
