package storage

// tupleArena hands out tuple-sized []Value blocks carved from
// append-only chunks. Chunks are never reallocated or reused, so every
// block returned by alloc stays valid (and immutable, by convention)
// for the lifetime of the arena's owner — growth starts a fresh chunk
// instead of moving old data. This is what makes SetRelation snapshots
// and delta views stable across later inserts, and it collapses the
// engine's per-tuple allocations into one bulk allocation per chunk.
type tupleArena struct {
	cur      []Value // active chunk; len = used, cap = chunk size
	chunkCap int     // size of the most recently allocated chunk
	words    int     // total words handed out (stats)
}

const (
	arenaMinChunk = 1 << 9  // 512 words = 4 KiB
	arenaMaxChunk = 1 << 16 // 64 K words = 512 KiB
)

// alloc returns a block of n values. The block is full-sliced
// (len == cap) so appends by a confused caller cannot clobber
// neighbouring tuples.
func (a *tupleArena) alloc(n int) []Value {
	if cap(a.cur)-len(a.cur) < n {
		size := a.chunkCap * 2
		if size < arenaMinChunk {
			size = arenaMinChunk
		}
		if size > arenaMaxChunk {
			size = arenaMaxChunk
		}
		for size < n {
			size *= 2
		}
		// The retiring chunk stays alive through the views that point
		// into it; the arena itself only tracks the active one.
		a.chunkCap = size
		a.cur = make([]Value, 0, size)
	}
	off := len(a.cur)
	a.cur = a.cur[:off+n]
	a.words += n
	return a.cur[off : off+n : off+n]
}
