package storage

// tupleArena hands out tuple-sized []Value blocks carved from
// append-only chunks. Chunks are never reallocated or reused, so every
// block returned by alloc stays valid (and immutable, by convention)
// for the lifetime of the arena's owner — growth starts a fresh chunk
// instead of moving old data. This is what makes SetRelation snapshots
// and delta views stable across later inserts, and it collapses the
// engine's per-tuple allocations into one bulk allocation per chunk.
//
// The arena keeps every chunk it has ever opened, so a block can be
// named by the pointer-free pair (chunk index, word offset) — an
// arenaRef — instead of a Tuple header. Bulk containers (the set
// relation's view list, the engine's incremental join index) store
// 8-byte refs in place of 24-byte slice headers, which both shrinks
// them and leaves nothing for the garbage collector to scan: Value is
// word-sized, so the chunks themselves are pointer-free too.
type tupleArena struct {
	chunks   [][]Value // all chunks in allocation order; last is active
	chunkCap int       // size of the most recently allocated chunk
	words    int       // total words handed out (stats)
}

const (
	arenaMinChunk = 1 << 9  // 512 words = 4 KiB
	arenaMaxChunk = 1 << 16 // 64 K words = 512 KiB
)

// arenaRef names an arena block without a pointer: chunk index in the
// high 32 bits, word offset in the low 32. Chunks are capped at
// arenaMaxChunk words, so the offset always fits.
type arenaRef uint64

func makeRef(chunk, off int) arenaRef { return arenaRef(chunk)<<32 | arenaRef(off) }

// tuple reconstructs a block as a full-sliced Tuple of width w. It is
// a slice expression into the chunk — no allocation.
func (a *tupleArena) tuple(r arenaRef, w int) Tuple {
	off := int(r & 0xffffffff)
	return Tuple(a.chunks[r>>32][off : off+w : off+w])
}

// alloc returns a block of n values and its ref. The block is
// full-sliced (len == cap) so appends by a confused caller cannot
// clobber neighbouring tuples.
func (a *tupleArena) alloc(n int) ([]Value, arenaRef) {
	var cur []Value
	if len(a.chunks) > 0 {
		cur = a.chunks[len(a.chunks)-1]
	}
	if cap(cur)-len(cur) < n {
		size := a.chunkCap * 2
		if size < arenaMinChunk {
			size = arenaMinChunk
		}
		if size > arenaMaxChunk {
			size = arenaMaxChunk
		}
		for size < n {
			size *= 2
		}
		a.chunkCap = size
		cur = make([]Value, 0, size)
		a.chunks = append(a.chunks, cur)
	}
	ci := len(a.chunks) - 1
	off := len(cur)
	cur = cur[:off+n]
	a.chunks[ci] = cur
	a.words += n
	return cur[off : off+n : off+n], makeRef(ci, off)
}
