package storage

import "math/bits"

// Blocked Bloom filter over an index's distinct key hashes, used as a
// semi-join guard: a negative answer proves the key has no bucket, so
// anti-joins and miss-heavy probes skip the directory walk (and its
// random cache lines) after touching exactly one 64-byte block.
//
// Layout: bloomBlockWords (8) uint64 words per block — one cache line —
// with the block selected by the hash's low bits and two bit positions
// inside the block drawn from disjoint middle bits. Low-bit block
// selection is deliberate: it is a superset of the directory's
// partition bits, so during the sharded parallel build every partition
// writes a disjoint set of blocks and phase D needs no synchronization.
const (
	bloomBlockWords = 8   // 512 bits, one cache line
	bloomBitsPerRow = 12  // sizing rule: ~12 bits per indexed row
	bloomBlockBits  = 512 // bloomBlockWords * 64
)

// bloomBlocks sizes the filter for n rows: ~bloomBitsPerRow bits each,
// rounded up to a power of two of cache-line blocks, and at least
// minBlocks (the partition count, so parallel builds stay write-
// disjoint).
func bloomBlocks(n, minBlocks int) int {
	b := nextPow2((n*bloomBitsPerRow + bloomBlockBits - 1) / bloomBlockBits)
	if b < minBlocks {
		b = minBlocks
	}
	return b
}

// bloomAdd sets the key hash's two bits in its block. Only called
// during builds; blocks touched by concurrent build tasks are disjoint
// by construction (see the layout comment above).
func bloomAdd(bloom []uint64, mask, h uint64) {
	base := (h & mask) * bloomBlockWords
	p1 := (h >> 16) & (bloomBlockBits - 1)
	p2 := (h >> 25) & (bloomBlockBits - 1)
	bloom[base+(p1>>6)] |= 1 << (p1 & 63)
	bloom[base+(p2>>6)] |= 1 << (p2 & 63)
}

// MayContain reports whether a key with hash h could be present in the
// index: false proves absence, true means "walk the directory". An
// index built without a filter (empty index) answers true.
func (idx *HashIndex) MayContain(h uint64) bool {
	if idx.bloom == nil {
		return true
	}
	base := (h & idx.bloomMask) * bloomBlockWords
	p1 := (h >> 16) & (bloomBlockBits - 1)
	p2 := (h >> 25) & (bloomBlockBits - 1)
	if idx.bloom[base+(p1>>6)]&(1<<(p1&63)) == 0 {
		return false
	}
	return idx.bloom[base+(p2>>6)]&(1<<(p2&63)) != 0
}

// BloomBits reports the filter's size in bits (0 when absent) — used by
// tests and the design docs' sizing table.
func (idx *HashIndex) BloomBits() int { return len(idx.bloom) * 64 }

// bloomFill reports the filter's set-bit fraction, the direct input to
// its false-positive rate ((fill)^2 for two probe bits). Test-only
// diagnostics.
func (idx *HashIndex) bloomFill() float64 {
	if len(idx.bloom) == 0 {
		return 0
	}
	set := 0
	for _, w := range idx.bloom {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(len(idx.bloom)*64)
}
