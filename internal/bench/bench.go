package bench

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	dcdatalog "repro"
	"repro/internal/coord"
	"repro/internal/datasets"
	"repro/internal/des"
	"repro/internal/engine"
	"repro/internal/queries"
	"repro/internal/storage"
)

// Config scales and parameterizes the experiment suite.
type Config struct {
	// Scale multiplies the default (already paper-scaled-down) dataset
	// sizes; 1.0 targets minutes of total runtime on a laptop core.
	Scale float64
	// Workers is the engine parallelism (paper: up to 64 threads).
	Workers int
	// Seed drives the deterministic generators.
	Seed int64
	// StratCap bounds local iterations of diverging stratified
	// baselines; hitting it is reported as OOM, mirroring the paper's
	// out-of-memory columns for Soufflé-style evaluation.
	StratCap int
	// NoSteal disables morsel-driven work stealing in the tracking
	// suite (A/B comparisons; the steal report sets it per column).
	NoSteal bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 4 {
			c.Workers = 4
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.StratCap <= 0 {
		c.StratCap = 12
	}
	return c
}

func (c Config) scaled(n int64) int64 {
	v := int64(float64(n) * c.Scale)
	if v < 16 {
		v = 16
	}
	return v
}

// dataset is one named EDB instance.
type dataset struct {
	name string
	load func(db *dcdatalog.Database)
	opts []dcdatalog.Option // per-dataset options (params)
}

// measurement is one timed engine run.
type measurement struct {
	seconds float64
	setupNS int64  // pre-evaluation setup (base registration + index builds)
	note    string // "OOM", "NS", "ERR: ..." or empty
	tuples  int
	probe   storage.ProbeCounters // memory-level probe statistics
	steal   engine.StealStats     // morsel-scheduler activity
	// imbalance is max/mean per-worker busy time (1.0 = balanced).
	imbalance float64
	// demandRewritten reports whether the demand (magic-set) rewrite
	// applied; demandEst/demandActual are the planner's estimated vs
	// the engine's actual derivation counts where estimable.
	demandRewritten bool
	demandEst       int64
	demandActual    int64
}

// run executes one query configuration against a fresh database.
func run(ds dataset, src, output string, opts ...dcdatalog.Option) measurement {
	db := dcdatalog.NewDatabase()
	ds.load(db)
	all := append(append([]dcdatalog.Option(nil), ds.opts...), opts...)
	start := time.Now()
	res, err := db.Query(src, all...)
	elapsed := time.Since(start).Seconds()
	if errors.Is(err, dcdatalog.ErrBudgetExceeded) {
		// The run blew through its iteration or tuple budget with
		// deltas still pending: the stratified rewrite diverges or
		// explodes, the behaviour the paper reports as OOM.
		return measurement{seconds: elapsed, note: "OOM*"}
	}
	if err != nil {
		return measurement{note: "ERR: " + err.Error()}
	}
	stats := res.Stats()
	m := measurement{
		seconds:         elapsed,
		setupNS:         stats.SetupDuration.Nanoseconds(),
		tuples:          res.Len(output),
		probe:           stats.Probe,
		steal:           stats.Steal,
		imbalance:       stats.Imbalance(),
		demandRewritten: res.DemandRewritten(),
	}
	m.demandEst, m.demandActual = res.DemandCardinalities()
	return m
}

// engineSpec is one column of the comparison tables.
type engineSpec struct {
	name string
	opts []dcdatalog.Option
}

func engineSpecs(workers int) []engineSpec {
	return []engineSpec{
		{"DCDatalog(DWS)", []dcdatalog.Option{dcdatalog.WithWorkers(workers)}},
		{"Global(DeALS-MC-like)", []dcdatalog.Option{dcdatalog.WithWorkers(workers), dcdatalog.WithStrategy(dcdatalog.Global)}},
		{"SSP(s=5)", []dcdatalog.Option{dcdatalog.WithWorkers(workers), dcdatalog.WithStrategy(dcdatalog.SSP)}},
		{"1-thread", []dcdatalog.Option{dcdatalog.WithWorkers(1)}},
	}
}

// --- dataset builders -------------------------------------------------

func loadArcs(edges []datasets.Edge) func(*dcdatalog.Database) {
	return func(db *dcdatalog.Database) {
		db.MustDeclare("arc", dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int))
		if err := db.LoadTuples("arc", datasets.EdgeTuples(edges)); err != nil {
			panic(err)
		}
	}
}

func loadWArcs(edges []datasets.WEdge) func(*dcdatalog.Database) {
	return func(db *dcdatalog.Database) {
		db.MustDeclare("warc", dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int), dcdatalog.Col("w", dcdatalog.Int))
		if err := db.LoadTuples("warc", datasets.WEdgeTuples(edges)); err != nil {
			panic(err)
		}
	}
}

func loadBoM(bom datasets.BoM) func(*dcdatalog.Database) {
	return func(db *dcdatalog.Database) {
		db.MustDeclare("assbl", dcdatalog.Col("p", dcdatalog.Int), dcdatalog.Col("s", dcdatalog.Int))
		db.MustDeclare("basic", dcdatalog.Col("p", dcdatalog.Int), dcdatalog.Col("d", dcdatalog.Int))
		if err := db.LoadTuples("assbl", bom.Assbl); err != nil {
			panic(err)
		}
		if err := db.LoadTuples("basic", bom.Basic); err != nil {
			panic(err)
		}
	}
}

// matrixTuples converts edges into PageRank's matrix(src, dst, outdeg).
func matrixTuples(edges []datasets.Edge) ([]storage.Tuple, int) {
	deg := map[int64]int64{}
	verts := map[int64]bool{}
	for _, e := range edges {
		deg[e.Src]++
		verts[e.Src] = true
		verts[e.Dst] = true
	}
	out := make([]storage.Tuple, len(edges))
	for i, e := range edges {
		out[i] = storage.Tuple{storage.IntVal(e.Src), storage.IntVal(e.Dst), storage.FloatVal(float64(deg[e.Src]))}
	}
	return out, len(verts)
}

func loadMatrix(edges []datasets.Edge) (func(*dcdatalog.Database), int) {
	tuples, vnum := matrixTuples(edges)
	return func(db *dcdatalog.Database) {
		db.MustDeclare("matrix", dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int), dcdatalog.Col("d", dcdatalog.Float))
		if err := db.LoadTuples("matrix", tuples); err != nil {
			panic(err)
		}
	}, vnum
}

// whub returns the highest-out-degree vertex, the SSSP source.
func whub(edges []datasets.WEdge) int64 {
	deg := map[int64]int{}
	best, bestDeg := int64(0), -1
	for _, e := range edges {
		deg[e.Src]++
		if deg[e.Src] > bestDeg {
			best, bestDeg = e.Src, deg[e.Src]
		}
	}
	return best
}

// standIns builds the scaled real-graph substitutes. The default scale
// is 1/2048 of the paper's graphs, keeping RMAT's heavy-tail skew.
func (c Config) standIns() []struct {
	name  string
	graph datasets.RealGraph
} {
	const base = 1.0 / 8192
	s := base * c.Scale
	return []struct {
		name  string
		graph datasets.RealGraph
	}{
		{"livejournal", datasets.LiveJournalLike(s)},
		{"orkut", datasets.OrkutLike(s)},
		{"arabic", datasets.ArabicLike(s)},
		{"twitter", datasets.TwitterLike(s)},
	}
}

// --- stratified rewrites (Soufflé-style baselines) ---------------------

const ccStratSrc = `
	cc2all(Y, Z) :- arc(Y, _), Z = Y.
	cc2all(Y, Z) :- cc2all(X, Z), arc(X, Y).
	cc(Y, min<Z>) :- cc2all(Y, Z).
`

const ssspStratSrc = `
	spall(To, C) :- To = $start, C = 0.
	spall(To2, C) :- spall(To1, C1), warc(To1, To2, C2), C = C1 + C2.
	results(To, min<C>) :- spall(To, C).
`

const deliveryStratSrc = `
	dall(P, D) :- basic(P, D).
	dall(P, D) :- assbl(P, S), dall(S, D).
	results(P, max<D>) :- dall(P, D).
`

// Table2 reproduces the paper's headline comparison: five queries ×
// datasets × engines.
func Table2(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table 2: end-to-end query time (scaled datasets)",
		Header: []string{"Query", "Dataset", "DCDatalog(DWS)", "Global(DeALS-MC-like)", "SSP(s=5)", "1-thread", "Stratified(Souffle-like)"},
		Notes: []string{
			"OOM* = tuple/iteration budget exhausted with deltas pending (the divergence the paper reports as OOM)",
			"NS = the evaluation mode cannot express the query (paper Table 2 semantics)",
			fmt.Sprintf("datasets scaled for a single-host run (scale=%g, workers=%d); see EXPERIMENTS.md", cfg.Scale, cfg.Workers),
		},
	}
	specs := engineSpecs(cfg.Workers)
	addRow := func(query, dsName string, ds dataset, src, output, strat, stratOut string) {
		row := []string{query, dsName}
		for _, e := range specs {
			m := run(ds, src, output, e.opts...)
			row = append(row, cell(m.seconds, m.note))
		}
		if strat == "" {
			row = append(row, "NS")
		} else {
			m := run(ds, strat, stratOut,
				dcdatalog.WithWorkers(cfg.Workers),
				dcdatalog.WithMaxIterations(cfg.StratCap),
				dcdatalog.WithMaxTuples(2_000_000))
			row = append(row, cell(m.seconds, m.note))
		}
		t.Rows = append(t.Rows, row)
	}

	// SG on tree / uniform / RMAT graphs.
	sg := queries.SG()
	// SG's cost grows with Σ deg(A)·deg(B) over same-generation pairs,
	// so the skewed RMAT instances stay small by default (the paper's
	// RMAT-10K..40K sweep needed 32 cores); -scale grows them.
	sgDatasets := []struct {
		name  string
		edges []datasets.Edge
	}{
		{"tree-6", datasets.Tree(6, 2, 3, cfg.Seed)},
		{"g-300", datasets.Gnp(cfg.scaled(300), int(cfg.scaled(1200)), cfg.Seed)},
		{"rmat-64", datasets.RMATn(cfg.scaled(64), cfg.Seed)},
		{"rmat-128", datasets.RMATn(cfg.scaled(128), cfg.Seed)},
	}
	for _, d := range sgDatasets {
		ds := dataset{name: d.name, load: loadArcs(d.edges)}
		// SG has no aggregate: the stratified engine runs it as-is.
		addRow("SG", d.name, ds, sg.Source, "sg", sg.Source, "sg")
	}

	// Delivery on N-n BoM trees.
	delivery := queries.Delivery()
	for _, n := range []int64{20000, 40000, 80000} {
		bom := datasets.NTree(cfg.scaled(n), cfg.Seed)
		ds := dataset{name: fmt.Sprintf("n-%dk", n/1000), load: loadBoM(bom)}
		addRow("Delivery", ds.name, ds, delivery.Source, "results", deliveryStratSrc, "results")
	}

	// CC / SSSP / PR on the real-graph stand-ins.
	cc := queries.CC()
	sssp := queries.SSSP()
	pr := queries.PR()
	for _, g := range cfg.standIns() {
		edges := datasets.Undirect(g.graph.Generate(cfg.Seed))
		ds := dataset{name: g.name, load: loadArcs(edges)}
		addRow("CC", g.name, ds, cc.Source, "cc", ccStratSrc, "cc")

		wedges := datasets.Weight(edges, 100, cfg.Seed)
		wds := dataset{
			name: g.name,
			load: loadWArcs(wedges),
			opts: []dcdatalog.Option{dcdatalog.WithParam("start", whub(wedges))},
		}
		addRow("SSSP", g.name, wds, sssp.Source, "results", ssspStratSrc, "results")

		// PageRank on the two social-graph stand-ins (the paper's four;
		// the web graphs are omitted at default scale to keep the suite
		// fast — pass a larger -scale to add load). The convergence
		// epsilon bounds the float fixpoint.
		if g.name == "livejournal" || g.name == "orkut" {
			loadM, vnum := loadMatrix(edges)
			pds := dataset{
				name: g.name,
				load: loadM,
				opts: []dcdatalog.Option{
					dcdatalog.WithParam("alpha", 0.85),
					dcdatalog.WithParam("vnum", float64(vnum)),
					dcdatalog.WithEpsilon(1e-5),
				},
			}
			addRow("PageRank", g.name, pds, pr.Source, "results", "", "")
		}
	}
	return t
}

// Table3 reproduces the APSP comparison: the aligned two-way
// partitioning of DCDatalog against the broadcast replication the paper
// attributes to SociaLite/DDlog.
func Table3(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table 3: APSP, two-way partitioning vs broadcast (scaled RMAT)",
		Header: []string{"Dataset", "DCDatalog(two-way)", "Broadcast(SociaLite/DDlog-style)", "1-thread"},
		Notes:  []string{"broadcast replicates every new path tuple to all workers (§7.2)"},
	}
	apsp := queries.APSP()
	for _, n := range []int64{16, 32, 64, 128} {
		edges := datasets.Weight(datasets.RMATn(cfg.scaled(n), cfg.Seed), 100, cfg.Seed)
		ds := dataset{name: fmt.Sprintf("rmat-%d", n), load: loadWArcs(edges)}
		m1 := run(ds, apsp.Source, "apsp", dcdatalog.WithWorkers(cfg.Workers))
		m2 := run(ds, apsp.Source, "apsp", dcdatalog.WithWorkers(cfg.Workers), dcdatalog.WithBroadcastReplication())
		m3 := run(ds, apsp.Source, "apsp", dcdatalog.WithWorkers(1))
		t.Rows = append(t.Rows, []string{ds.name, cell(m1.seconds, m1.note), cell(m2.seconds, m2.note), cell(m3.seconds, m3.note)})
	}
	return t
}

// Table4 reproduces the optimization ablation: CC and SSSP with and
// without the §6.2 techniques (index-assisted aggregate merge,
// existence cache, partial aggregation).
func Table4(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table 4: effect of the §6.2 optimizations",
		Header: []string{"Query", "Dataset", "w/o", "w/", "speedup"},
	}
	cc := queries.CC()
	sssp := queries.SSSP()
	ablation := []dcdatalog.Option{
		dcdatalog.WithoutExistCache(),
		dcdatalog.WithoutIndexAgg(),
		dcdatalog.WithoutPartialAgg(),
	}
	for _, g := range cfg.standIns() {
		edges := datasets.Undirect(g.graph.Generate(cfg.Seed))
		ds := dataset{name: g.name, load: loadArcs(edges)}
		without := run(ds, cc.Source, "cc", append([]dcdatalog.Option{dcdatalog.WithWorkers(cfg.Workers)}, ablation...)...)
		with := run(ds, cc.Source, "cc", dcdatalog.WithWorkers(cfg.Workers))
		t.Rows = append(t.Rows, []string{"CC", g.name, cell(without.seconds, without.note), cell(with.seconds, with.note), speedup(without, with)})

		wedges := datasets.Weight(edges, 100, cfg.Seed)
		wds := dataset{name: g.name, load: loadWArcs(wedges),
			opts: []dcdatalog.Option{dcdatalog.WithParam("start", whub(wedges))}}
		without = run(wds, sssp.Source, "results", append([]dcdatalog.Option{dcdatalog.WithWorkers(cfg.Workers)}, ablation...)...)
		with = run(wds, sssp.Source, "results", dcdatalog.WithWorkers(cfg.Workers))
		t.Rows = append(t.Rows, []string{"SSSP", g.name, cell(without.seconds, without.note), cell(with.seconds, with.note), speedup(without, with)})
	}
	return t
}

func speedup(without, with measurement) string {
	if without.note != "" || with.note != "" || with.seconds <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", without.seconds/with.seconds)
}

// Figure1 reproduces the motivating SSSP-on-LiveJournal comparison.
func Figure1(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Figure 1: SSSP on the LiveJournal stand-in",
		Header: []string{"Engine", "Time", "Result tuples"},
	}
	g := cfg.standIns()[0]
	edges := datasets.Weight(datasets.Undirect(g.graph.Generate(cfg.Seed)), 100, cfg.Seed)
	ds := dataset{name: g.name, load: loadWArcs(edges),
		opts: []dcdatalog.Option{dcdatalog.WithParam("start", whub(edges))}}
	sssp := queries.SSSP()
	for _, e := range engineSpecs(cfg.Workers) {
		m := run(ds, sssp.Source, "results", e.opts...)
		t.Rows = append(t.Rows, []string{e.name, cell(m.seconds, m.note), fmt.Sprint(m.tuples)})
	}
	m := run(ds, ssspStratSrc, "results",
		dcdatalog.WithWorkers(cfg.Workers),
		dcdatalog.WithMaxIterations(cfg.StratCap),
		dcdatalog.WithMaxTuples(2_000_000))
	t.Rows = append(t.Rows, []string{"Stratified(Souffle-like)", cell(m.seconds, m.note), fmt.Sprint(m.tuples)})
	return t
}

// Figure3 replays the paper's worked coordination example on the
// discrete-event simulator: a fast worker and two straggler chains.
// Paper values: Global 128, SSP 88, DWS 67 time units.
func Figure3() *Table {
	t := &Table{
		Title:  "Figure 3: coordination strategies on the worked example (simulated time units)",
		Header: []string{"Strategy", "Simulated time", "Local iterations", "Idle time"},
		Notes:  []string{"paper reports Global=128, SSP=88, DWS=67 on its hand-drawn trace; the simulator reproduces the ordering and relative gaps"},
	}
	for _, k := range []coord.Kind{coord.Global, coord.SSP, coord.DWS} {
		r := des.Figure3(k)
		iters := 0
		idle := 0.0
		for i := range r.Iterations {
			iters += r.Iterations[i]
			idle += r.Waiting[i]
		}
		t.Rows = append(t.Rows, []string{k.String(), fmt.Sprintf("%.1f", r.Time), fmt.Sprint(iters), fmt.Sprintf("%.1f", idle)})
	}
	return t
}

// Figure8 compares the coordination strategies on CC and SSSP over the
// graph stand-ins using the real engine.
func Figure8(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Figure 8: coordination strategies (real engine)",
		Header: []string{"Query", "Dataset", "Global", "SSP(s=5)", "DWS"},
	}
	cc := queries.CC()
	sssp := queries.SSSP()
	strategies := []dcdatalog.Strategy{dcdatalog.Global, dcdatalog.SSP, dcdatalog.DWS}
	for _, g := range cfg.standIns() {
		edges := datasets.Undirect(g.graph.Generate(cfg.Seed))
		ds := dataset{name: g.name, load: loadArcs(edges)}
		row := []string{"CC", g.name}
		for _, s := range strategies {
			m := run(ds, cc.Source, "cc", dcdatalog.WithWorkers(cfg.Workers), dcdatalog.WithStrategy(s))
			row = append(row, cell(m.seconds, m.note))
		}
		t.Rows = append(t.Rows, row)

		wedges := datasets.Weight(edges, 100, cfg.Seed)
		wds := dataset{name: g.name, load: loadWArcs(wedges),
			opts: []dcdatalog.Option{dcdatalog.WithParam("start", whub(wedges))}}
		row = []string{"SSSP", g.name}
		for _, s := range strategies {
			m := run(wds, sssp.Source, "results", dcdatalog.WithWorkers(cfg.Workers), dcdatalog.WithStrategy(s))
			row = append(row, cell(m.seconds, m.note))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure9a reproduces the thread scale-up experiment twice: with the
// real engine on this host, and on the simulator modeling a 32-core
// machine (the paper's hardware; see DESIGN.md §5 on the single-core
// substitution).
func Figure9a(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	real := &Table{
		Title:  "Figure 9(a) — real engine: CC on the LiveJournal stand-in vs workers",
		Header: []string{"Workers", "Time", "Local iterations"},
		Notes:  []string{fmt.Sprintf("host has %d CPU(s); wall-clock speedup requires cores — see the simulated table", runtime.NumCPU())},
	}
	g := cfg.standIns()[0]
	edges := datasets.Undirect(g.graph.Generate(cfg.Seed))
	ds := dataset{name: g.name, load: loadArcs(edges)}
	cc := queries.CC()
	for _, w := range []int{1, 2, 4, 8} {
		db := dcdatalog.NewDatabase()
		ds.load(db)
		start := time.Now()
		res, err := db.Query(cc.Source, dcdatalog.WithWorkers(w))
		if err != nil {
			real.Rows = append(real.Rows, []string{fmt.Sprint(w), "ERR", ""})
			continue
		}
		stats := res.Stats()
		real.Rows = append(real.Rows, []string{
			fmt.Sprint(w),
			cell(time.Since(start).Seconds(), ""),
			fmt.Sprint(stats.TotalIters()),
		})
	}

	sim := &Table{
		Title:  "Figure 9(a) — simulated 32-core machine: CC makespan vs workers (DWS)",
		Header: []string{"Workers", "Simulated time", "Speedup"},
	}
	simEdges := datasets.Undirect(datasets.RMATn(cfg.scaled(4096), cfg.Seed))
	base := 0.0
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
		r := des.SimulateCC(simEdges, des.Config{Workers: w, Strategy: coord.DWS})
		if base == 0 {
			base = r.Time
		}
		sim.Rows = append(sim.Rows, []string{fmt.Sprint(w), fmt.Sprintf("%.0f", r.Time), fmt.Sprintf("%.2fx", base/r.Time)})
	}
	return []*Table{real, sim}
}

// Figure9b reproduces the data scale-up: CC, SSSP and Delivery on
// growing RMAT-n / N-n datasets.
func Figure9b(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Figure 9(b): data scale-up (DWS)",
		Header: []string{"Query", "Dataset", "Time", "Result tuples"},
		Notes:  []string{"paper sweeps RMAT 10M..160M vertices; scaled to 2K..32K here (×scale)"},
	}
	cc := queries.CC()
	sssp := queries.SSSP()
	delivery := queries.Delivery()
	for _, n := range []int64{2000, 4000, 8000, 16000, 32000} {
		edges := datasets.Undirect(datasets.RMATn(cfg.scaled(n), cfg.Seed))
		ds := dataset{name: fmt.Sprintf("rmat-%dk", n/1000), load: loadArcs(edges)}
		m := run(ds, cc.Source, "cc", dcdatalog.WithWorkers(cfg.Workers))
		t.Rows = append(t.Rows, []string{"CC", ds.name, cell(m.seconds, m.note), fmt.Sprint(m.tuples)})

		wedges := datasets.Weight(edges, 100, cfg.Seed)
		wds := dataset{name: ds.name, load: loadWArcs(wedges),
			opts: []dcdatalog.Option{dcdatalog.WithParam("start", whub(wedges))}}
		m = run(wds, sssp.Source, "results", dcdatalog.WithWorkers(cfg.Workers))
		t.Rows = append(t.Rows, []string{"SSSP", ds.name, cell(m.seconds, m.note), fmt.Sprint(m.tuples)})

		bom := datasets.NTree(cfg.scaled(n*4), cfg.Seed)
		bds := dataset{name: fmt.Sprintf("n-%dk", n*4/1000), load: loadBoM(bom)}
		m = run(bds, delivery.Source, "results", dcdatalog.WithWorkers(cfg.Workers))
		t.Rows = append(t.Rows, []string{"Delivery", bds.name, cell(m.seconds, m.note), fmt.Sprint(m.tuples)})
	}
	return t
}
