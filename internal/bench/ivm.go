package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	dcdatalog "repro"
	"repro/internal/datasets"
	"repro/internal/queries"
)

// ivmCell is one delta size of the incremental-vs-recompute sweep:
// absolute batch sizes probe the small-delta regime the view exists
// for, fractional ones walk churn up past the incremental/full
// crossover.
type ivmCell struct {
	label   string
	ops     int
	insFrac float64
}

func ivmSweep(edgeCount int) []ivmCell {
	// The single-op cells pin the two edge regimes (a pure insertion
	// rides the delta kernel, a pure deletion may trip the over-delete
	// budget); the rest are balanced insert/delete mixes.
	cells := []ivmCell{{"+1", 1, 1}, {"-1", 1, 0}, {"16", 16, 0.5}, {"256", 256, 0.5}}
	for _, f := range []struct {
		label string
		den   int
	}{{"1%", 100}, {"10%", 10}, {"100%", 1}} {
		n := edgeCount / f.den
		if n < 1 {
			n = 1
		}
		cells = append(cells, ivmCell{f.label, n, 0.5})
	}
	return cells
}

// ivmMeasurement is one delta size's interleaved A/B result.
type ivmMeasurement struct {
	cell        ivmCell
	incrNS      int64  // median refresh time, maintained arm
	fullNS      int64  // median refresh time, recompute arm
	mode        string // how the maintained arm actually refreshed
	deltaTuples int    // delta-kernel output of the maintained arm
}

// ivmArm is one database + materialized TC view.
type ivmArm struct {
	db   *dcdatalog.Database
	view *dcdatalog.View
}

func newIvmArm(edges []datasets.Edge, workers int, crossover float64) ivmArm {
	db := dcdatalog.NewDatabase()
	loadArcs(edges)(db)
	q := queries.TC()
	opts := []dcdatalog.Option{dcdatalog.WithWorkers(workers)}
	if crossover != 0 {
		opts = append(opts, dcdatalog.WithCrossover(crossover))
	}
	v, err := db.Materialize("tc", q.Source, opts...)
	if err != nil {
		panic(err)
	}
	return ivmArm{db: db, view: v}
}

// apply feeds a stream through the mutation path in order (an op may
// delete an edge an earlier op of the same batch inserted).
func (a ivmArm) apply(ops []datasets.UpdateOp) {
	for _, op := range ops {
		t := datasets.EdgeTuples([]datasets.Edge{op.Edge})
		var err error
		if op.Delete {
			err = a.db.DeleteTuples("arc", t)
		} else {
			err = a.db.InsertTuples("arc", t)
		}
		if err != nil {
			panic(err)
		}
	}
}

// refresh times one view refresh.
func (a ivmArm) refresh() (dcdatalog.RefreshStats, int64) {
	start := time.Now()
	st, err := a.view.Refresh(context.Background())
	if err != nil {
		panic(err)
	}
	return st, time.Since(start).Nanoseconds()
}

// invert reverses a stream so applying it rolls the EDB back to the
// state before the batch.
func invert(ops []datasets.UpdateOp) []datasets.UpdateOp {
	out := make([]datasets.UpdateOp, len(ops))
	for i, op := range ops {
		out[len(ops)-1-i] = datasets.UpdateOp{Edge: op.Edge, Delete: !op.Delete}
	}
	return out
}

func median(ns []int64) int64 {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[len(ns)/2]
}

// ivmMeasure runs the sweep on the tracking cell (TC over rmat-512):
// per delta size, interleaved A/B reps of (apply batch, refresh) on a
// maintained view versus a crossover-disabled twin whose every refresh
// is a full recompute, each rep rolled back by the inverted batch so
// all reps see the same EDB.
func ivmMeasure(cfg Config, reps int) []ivmMeasurement {
	cfg = cfg.withDefaults()
	edges := datasets.RMATn(cfg.scaled(512), cfg.Seed)
	n := cfg.scaled(512)

	incr := newIvmArm(edges, cfg.Workers, 0)  // default crossover
	full := newIvmArm(edges, cfg.Workers, -1) // incremental disabled

	var out []ivmMeasurement
	for ci, cell := range ivmSweep(len(edges)) {
		batch := datasets.UpdateStream(edges, n, cell.ops, cell.insFrac, 0, cfg.Seed+int64(ci)+1)
		if cell.label == "+1" {
			// A pendant source keeps the single-insertion cell honest:
			// vertex n is outside the graph, so tc(n, ·) tuples are
			// guaranteed fresh and the refresh does real delta work
			// instead of detecting a no-op.
			batch = []datasets.UpdateOp{{Edge: datasets.Edge{Src: n, Dst: edges[0].Src}}}
		}
		rollback := invert(batch)
		m := ivmMeasurement{cell: cell}
		var incrNS, fullNS []int64
		for rep := 0; rep < reps; rep++ {
			runtime.GC()
			incr.apply(batch)
			st, ns := incr.refresh()
			incrNS = append(incrNS, ns)
			m.mode, m.deltaTuples = st.Mode, st.DeltaTuples
			incr.apply(rollback)
			incr.refresh()

			full.apply(batch)
			_, ns = full.refresh()
			fullNS = append(fullNS, ns)
			full.apply(rollback)
			full.refresh()
		}
		m.incrNS, m.fullNS = median(incrNS), median(fullNS)
		out = append(out, m)
	}
	return out
}

// IvmReport renders the incremental-vs-recompute sweep as a table.
func IvmReport(cfg Config) *Table {
	t := &Table{
		Title:  "IVM: incremental refresh vs full recompute (TC, rmat-512)",
		Header: []string{"delta", "ops", "mode", "delta-tuples", "incremental", "recompute", "speedup"},
		Notes: []string{
			"interleaved A/B reps, median refresh time; each rep rolled back by the inverted batch",
			"the maintained arm falls back to a full recompute above the churn crossover (default 0.3)",
		},
	}
	for _, m := range ivmMeasure(cfg, 5) {
		t.Rows = append(t.Rows, []string{
			m.cell.label,
			fmt.Sprintf("%d", m.cell.ops),
			m.mode,
			fmt.Sprintf("%d", m.deltaTuples),
			cell(float64(m.incrNS)/1e9, ""),
			cell(float64(m.fullNS)/1e9, ""),
			fmt.Sprintf("%.1fx", float64(m.fullNS)/float64(m.incrNS)),
		})
	}
	return t
}

// ivmPoints renders the sweep as trajectory points: one per delta size
// and arm, distinguished by Note.
func ivmPoints(cfg Config) []BenchPoint {
	cfg = cfg.withDefaults()
	var points []BenchPoint
	for _, m := range ivmMeasure(cfg, 5) {
		points = append(points,
			BenchPoint{
				Query:          "TC-IVM",
				Dataset:        "rmat-512",
				Workers:        cfg.Workers,
				Seconds:        float64(m.incrNS) / 1e9,
				Note:           fmt.Sprintf("delta=%s mode=%s", m.cell.label, m.mode),
				IvmRefreshNS:   m.incrNS,
				IvmDeltaTuples: m.deltaTuples,
			},
			BenchPoint{
				Query:        "TC-IVM",
				Dataset:      "rmat-512",
				Workers:      cfg.Workers,
				Seconds:      float64(m.fullNS) / 1e9,
				Note:         fmt.Sprintf("delta=%s mode=recompute", m.cell.label),
				IvmRefreshNS: m.fullNS,
			},
		)
	}
	return points
}
