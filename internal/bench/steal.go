package bench

import (
	"fmt"

	dcdatalog "repro"
)

// StealReport runs the fixed tracking suite with the morsel scheduler
// on and off and reports what stealing did to each cell: wall time,
// the busy-time imbalance ratio (max/mean over workers — 1.0 is
// perfectly balanced), and the morsel counters. The hub-skewed cell is
// the one stealing exists for; the uniform cells double as its
// no-regression control.
func StealReport(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: fmt.Sprintf("Morsel stealing on vs off (tracking suite, %d workers)", cfg.Workers),
		Header: []string{"Query", "Dataset", "Mode", "Time", "Imbalance",
			"Morsels", "Stolen", "Attempts", "Failures"},
		Notes: []string{
			"Imbalance = max/mean per-worker busy time; 1.0 is perfectly balanced",
			"Morsels = delta blocks published to the steal plane; Stolen = executed by a non-owner",
			"off = WithoutStealing(): each worker evaluates only its own gathered delta",
		},
	}
	modes := []struct {
		name string
		opts []dcdatalog.Option
	}{
		{"steal", nil},
		{"off", []dcdatalog.Option{dcdatalog.WithoutStealing()}},
	}
	for _, j := range trackingJobs(cfg) {
		for _, mo := range modes {
			opts := append([]dcdatalog.Option{dcdatalog.WithWorkers(cfg.Workers)}, mo.opts...)
			m := run(j.ds, j.query.Source, j.query.Output, opts...)
			t.Rows = append(t.Rows, []string{
				j.query.Name, j.dsName, mo.name, cell(m.seconds, m.note),
				fmt.Sprintf("%.2f", m.imbalance),
				fmt.Sprint(m.steal.MorselsExecuted),
				fmt.Sprint(m.steal.MorselsStolen),
				fmt.Sprint(m.steal.Attempts),
				fmt.Sprint(m.steal.Failures),
			})
		}
	}
	return t
}
