package bench

import (
	"context"
	"fmt"
	"time"

	dcdatalog "repro"
)

// SetupReport measures cold vs warm setup time over the tracking-suite
// workloads. Cold is the first Exec of a freshly prepared program: the
// database's prepared base exists but holds no indexes yet, so every
// base-relation index is built from scratch. Warm is a later Exec of
// the same Prepared, which attaches the memoized indexes instead of
// building; it is reported as the minimum of three runs to strip
// scheduler noise. The ratio column is the headline of the
// prepared-base plane: warm setup should sit orders of magnitude below
// cold on any dataset large enough for the build to register.
func SetupReport(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Setup cost: cold first run vs warm prepared-base run",
		Header: []string{"Query", "Dataset", "Cold setup", "Warm setup", "Cold/Warm"},
		Notes: []string{
			"setup = base-relation registration + hash index build/attach, before evaluation starts",
			"warm = min of 3 repeat Execs of the same Prepared (indexes served from the shared base)",
		},
	}
	for _, j := range trackingJobs(cfg) {
		db := dcdatalog.NewDatabase()
		j.ds.load(db)
		opts := append(append([]dcdatalog.Option(nil), j.ds.opts...), dcdatalog.WithWorkers(cfg.Workers))
		prep, err := db.Prepare(j.query.Source, opts...)
		if err != nil {
			t.Rows = append(t.Rows, []string{j.query.Name, j.dsName, "ERR: " + err.Error(), "", ""})
			continue
		}
		res, err := prep.Exec(context.Background())
		if err != nil {
			t.Rows = append(t.Rows, []string{j.query.Name, j.dsName, "ERR: " + err.Error(), "", ""})
			continue
		}
		cold := res.Stats().SetupDuration
		warm := time.Duration(0)
		for i := 0; i < 3; i++ {
			res, err = prep.Exec(context.Background())
			if err != nil {
				break
			}
			if d := res.Stats().SetupDuration; warm == 0 || d < warm {
				warm = d
			}
		}
		if err != nil {
			t.Rows = append(t.Rows, []string{j.query.Name, j.dsName, cold.String(), "ERR: " + err.Error(), ""})
			continue
		}
		ratio := "-"
		if warm > 0 {
			ratio = fmt.Sprintf("%.0fx", float64(cold)/float64(warm))
		}
		t.Rows = append(t.Rows, []string{j.query.Name, j.dsName, cold.String(), warm.String(), ratio})
	}
	return t
}
