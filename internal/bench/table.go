// Package bench regenerates every table and figure of the paper's
// evaluation (§7) on scaled datasets: Table 2 (end-to-end engine
// comparison), Table 3 (APSP partitioned vs broadcast), Table 4
// (optimization ablation), Figure 1 (SSSP engine comparison), Figure 3
// (coordination worked example, simulated), Figure 8 (coordination
// strategies), Figure 9(a) (thread scale-up, real + simulated) and
// Figure 9(b) (data scale-up). Baseline systems are represented by the
// architectural mode the paper credits for their behaviour — see
// DESIGN.md §5 for the substitution table.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment: a titled grid plus footnotes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// cell formats one measurement.
func cell(seconds float64, note string) string {
	if note != "" {
		return note
	}
	switch {
	case seconds < 0.01:
		return fmt.Sprintf("%.4fs", seconds)
	case seconds < 1:
		return fmt.Sprintf("%.3fs", seconds)
	default:
		return fmt.Sprintf("%.2fs", seconds)
	}
}
