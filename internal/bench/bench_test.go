package bench

import (
	"strings"
	"testing"

	"repro/internal/datasets"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{Scale: 0.02, Workers: 2, Seed: 1, StratCap: 10}
}

func render(t *testing.T, tb *Table) string {
	t.Helper()
	var b strings.Builder
	tb.Render(&b)
	return b.String()
}

func TestTable3Structure(t *testing.T) {
	tb := Table3(tiny())
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := render(t, tb)
	for _, want := range []string{"APSP", "two-way", "Broadcast", "rmat-16"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	for _, row := range tb.Rows {
		for _, c := range row[1:] {
			if strings.HasPrefix(c, "ERR") {
				t.Fatalf("cell errored: %v", row)
			}
		}
	}
}

func TestFigure3Table(t *testing.T) {
	tb := Figure3()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := render(t, tb)
	for _, want := range []string{"global", "ssp", "dws", "128"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure9aTables(t *testing.T) {
	tabs := Figure9a(tiny())
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	sim := render(t, tabs[1])
	if !strings.Contains(sim, "64") || !strings.Contains(sim, "Speedup") {
		t.Fatalf("sim table:\n%s", sim)
	}
}

func TestCellFormatting(t *testing.T) {
	if cell(0.0001, "") != "0.0001s" {
		t.Fatalf("cell = %q", cell(0.0001, ""))
	}
	if cell(0.5, "") != "0.500s" {
		t.Fatalf("cell = %q", cell(0.5, ""))
	}
	if cell(12.345, "") != "12.35s" {
		t.Fatalf("cell = %q", cell(12.345, ""))
	}
	if cell(1, "OOM*") != "OOM*" {
		t.Fatal("note should win")
	}
}

func TestSpeedupFormatting(t *testing.T) {
	if got := speedup(measurement{seconds: 2}, measurement{seconds: 1}); got != "2.00x" {
		t.Fatalf("speedup = %q", got)
	}
	if got := speedup(measurement{note: "OOM*"}, measurement{seconds: 1}); got != "-" {
		t.Fatalf("speedup with note = %q", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Seed != 42 || c.StratCap != 12 || c.Workers < 4 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.scaled(1000) != 1000 {
		t.Fatal("scale 1 must be identity")
	}
	small := Config{Scale: 0.0001}.withDefaults()
	if small.scaled(1000) != 16 {
		t.Fatalf("floor = %d", small.scaled(1000))
	}
}

func TestStratifiedRewriteDivergesAndIsReported(t *testing.T) {
	// The stratified SSSP rewrite on a cyclic graph must hit the
	// iteration cap and be reported as OOM*, reproducing the paper's
	// Soufflé column.
	cfg := tiny()
	tb := Figure1(cfg)
	var stratCell string
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], "Stratified") {
			stratCell = row[1]
		}
	}
	if stratCell == "" {
		t.Fatalf("stratified row missing:\n%s", render(t, tb))
	}
	// On the (cyclic) LiveJournal stand-in the rewrite diverges.
	if !strings.Contains(stratCell, "OOM") {
		t.Fatalf("stratified SSSP should report OOM*, got %q", stratCell)
	}
}

func TestInvertRoundTrip(t *testing.T) {
	base := datasets.Gnp(32, 60, 3)
	ops := datasets.UpdateStream(base, 32, 40, 0.5, 0, 5)
	restored := datasets.ApplyUpdates(datasets.ApplyUpdates(base, ops), invert(ops))
	if len(restored) != len(base) {
		t.Fatalf("round trip: %d edges, want %d", len(restored), len(base))
	}
	want := make(map[datasets.Edge]bool, len(base))
	for _, e := range base {
		want[e] = true
	}
	for _, e := range restored {
		if !want[e] {
			t.Fatalf("round trip produced foreign edge %+v", e)
		}
	}
}

func TestIvmSweepSmall(t *testing.T) {
	// One interleaved rep at tiny scale: the sweep must produce one
	// incremental-arm and one recompute-arm point per cell, with the
	// pure-insertion cell staying on the delta kernel.
	cfg := Config{Scale: 0.05, Workers: 2, Seed: 1}
	ms := ivmMeasure(cfg, 1)
	if len(ms) != len(ivmSweep(0)) {
		t.Fatalf("measurements = %d, want %d", len(ms), len(ivmSweep(0)))
	}
	if ms[0].cell.label != "+1" || ms[0].mode != "incremental" {
		t.Fatalf("pure-insertion cell = %+v, want incremental", ms[0])
	}
	for _, m := range ms {
		if m.incrNS <= 0 || m.fullNS <= 0 {
			t.Fatalf("cell %s: non-positive timings %+v", m.cell.label, m)
		}
	}
}
