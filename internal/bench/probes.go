package bench

import (
	"fmt"

	dcdatalog "repro"
)

// ProbeReport runs the fixed tracking suite and reports how the
// memory-level probe machinery behaved: the tag lane's reject rate
// (directory walks cut short by the 1-byte tag), the audited-bucket
// key-skip rate (full-key compares eliminated after the first verified
// row), and the Bloom guard's skip rate. Each query runs twice — under
// the default adaptive guards and with the guards forced on — because
// the adaptive policy deliberately keeps the filters out of high-hit
// recursive probe streams, so the forced column shows the filter
// quality while the auto column shows the policy's restraint.
func ProbeReport(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Probe path: tag rejects, audited key skips, Bloom guards (tracking suite)",
		Header: []string{"Query", "Dataset", "Mode", "Time",
			"TagReject", "KeySkip", "BloomSkip", "BloomChecks"},
		Notes: []string{
			"TagReject = tag-lane mismatches / occupied slots inspected",
			"KeySkip = full-key compares eliminated by the single-key bucket audit",
			"BloomSkip = guarded probes answered by the filter without touching the directory",
			"auto guards anti-joins and demoted low-hit-rate probe streams; force guards every probe",
		},
	}
	modes := []struct {
		name string
		mode dcdatalog.BloomMode
	}{{"auto", dcdatalog.BloomAuto}, {"force", dcdatalog.BloomForce}}
	for _, j := range trackingJobs(cfg) {
		for _, mo := range modes {
			m := run(j.ds, j.query.Source, j.query.Output,
				dcdatalog.WithWorkers(cfg.Workers), dcdatalog.WithBloomGuards(mo.mode))
			t.Rows = append(t.Rows, []string{
				j.query.Name, j.dsName, mo.name, cell(m.seconds, m.note),
				pct(m.probe.TagRejectRate()),
				pct(m.probe.KeySkipRate()),
				pct(m.probe.BloomSkipRate()),
				fmt.Sprint(m.probe.BloomChecks),
			})
		}
	}
	return t
}

// pct renders a ratio as a percentage with sensible precision.
func pct(r float64) string {
	return fmt.Sprintf("%.1f%%", 100*r)
}
