package bench

import (
	"encoding/json"
	"io"
	"runtime"

	dcdatalog "repro"
	"repro/internal/datasets"
	"repro/internal/queries"
)

// BenchPoint is one machine-readable measurement in the repo's
// perf-trajectory record (BENCH_pr*.json): a query × dataset × worker
// count cell, comparable across PRs.
type BenchPoint struct {
	Query   string  `json:"query"`
	Dataset string  `json:"dataset"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// SetupNS is the pre-evaluation setup time (base-relation
	// registration + index builds) in nanoseconds; Seconds includes it.
	SetupNS int64  `json:"setup_ns"`
	Tuples  int    `json:"tuples"`
	Note    string `json:"note,omitempty"`
	// Probe-path counters (PR7): how the tagged directories, audited
	// buckets and Bloom guards behaved during the run. Counts are raw;
	// the *_rate fields are the derived ratios cmd/bench prints.
	ProbeTagProbes     int64   `json:"probe_tag_probes"`
	ProbeTagRejects    int64   `json:"probe_tag_rejects"`
	ProbeKeyCompares   int64   `json:"probe_key_compares"`
	ProbeKeySkips      int64   `json:"probe_key_skips"`
	ProbeBloomChecks   int64   `json:"probe_bloom_checks"`
	ProbeBloomSkips    int64   `json:"probe_bloom_skips"`
	ProbeTagRejectRate float64 `json:"probe_tag_reject_rate"`
	ProbeKeySkipRate   float64 `json:"probe_key_skip_rate"`
	ProbeBloomSkipRate float64 `json:"probe_bloom_skip_rate"`
	// Steal-plane counters (PR8): how the morsel scheduler behaved.
	// Imbalance is max/mean per-worker busy time — 1.0 is perfectly
	// balanced, and the skewed cells are where stealing should pull it
	// down.
	StealMorsels  int64   `json:"steal_morsels"`
	StealStolen   int64   `json:"steal_stolen"`
	StealAttempts int64   `json:"steal_attempts"`
	StealFailures int64   `json:"steal_failures"`
	Imbalance     float64 `json:"imbalance"`
	// IVM counters (PR9): materialized-view refresh wall time and
	// delta-kernel output for the "TC-IVM" sweep cells; zero elsewhere.
	IvmRefreshNS   int64 `json:"ivm_refresh_ns,omitempty"`
	IvmDeltaTuples int   `json:"ivm_delta_tuples,omitempty"`
	// Demand counters (PR10): whether the magic-set rewrite fired for
	// this cell (0/1, always emitted so the smoke check can assert the
	// field exists) and the planner's estimated vs the engine's actual
	// derivation counts for the estimable strata.
	DemandRewritten    int   `json:"demand_rewritten"`
	DemandEstTuples    int64 `json:"demand_est_tuples,omitempty"`
	DemandActualTuples int64 `json:"demand_actual_tuples,omitempty"`
}

// trackJob is one query × dataset cell of the fixed tracking suite.
type trackJob struct {
	query  queries.Query
	dsName string
	ds     dataset
}

// trackingJobs builds the suite's deterministic workloads (TC, CC,
// SSSP, SG), shared by Trajectory and SetupReport.
func trackingJobs(cfg Config) []trackJob {
	var jobs []trackJob

	tcEdges := datasets.RMATn(cfg.scaled(512), cfg.Seed)
	jobs = append(jobs, trackJob{queries.TC(), "rmat-512", dataset{load: loadArcs(tcEdges)}})

	ccEdges := datasets.Undirect(datasets.Gnp(cfg.scaled(8000), int(cfg.scaled(20000)), cfg.Seed))
	jobs = append(jobs, trackJob{queries.CC(), "gnp-8k", dataset{load: loadArcs(ccEdges)}})

	ssspEdges := datasets.Undirect(datasets.RMATn(cfg.scaled(16000), cfg.Seed))
	wedges := datasets.Weight(ssspEdges, 100, cfg.Seed)
	jobs = append(jobs, trackJob{queries.SSSP(), "rmat-16k", dataset{
		load: loadWArcs(wedges),
		opts: []dcdatalog.Option{dcdatalog.WithParam("start", whub(wedges))},
	}})

	sgEdges := datasets.Tree(6, 2, 3, cfg.Seed)
	jobs = append(jobs, trackJob{queries.SG(), "tree-6", dataset{load: loadArcs(sgEdges)}})

	// Hub-skewed cell (PR8): a Zipf-sourced graph whose top hubs own
	// most of the out-edges, so the partitions holding the hubs' join
	// keys receive most of each recursive delta. This is the workload
	// morsel stealing exists for; the uniform cells above double as its
	// no-regression control.
	hubEdges := datasets.Undirect(datasets.Hub(cfg.scaled(4000), int(cfg.scaled(24000)), 1.3, cfg.Seed))
	jobs = append(jobs, trackJob{queries.CC(), "hub-4k", dataset{load: loadArcs(hubEdges)}})

	// Bound point-query cells (PR10): single-source variants whose
	// consumer rule binds the recursion to a parameter, so the demand
	// rewrite can seed the fixpoint instead of computing the full
	// closure. The source is the graph's hub vertex — deterministic in
	// the seed, and the worst case for the unrewritten program.
	jobs = append(jobs, trackJob{queries.BoundTC(), "rmat-512", dataset{
		load: loadArcs(tcEdges),
		opts: []dcdatalog.Option{dcdatalog.WithParam("src", datasets.HubVertex(tcEdges))},
	}})
	// The SG source is the root's first child, not the hub: the tree's
	// hub is the root, which has no same-generation peers.
	jobs = append(jobs, trackJob{queries.BoundSG(), "tree-6", dataset{
		load: loadArcs(sgEdges),
		opts: []dcdatalog.Option{dcdatalog.WithParam("v", sgEdges[0].Dst)},
	}})

	return jobs
}

// Trajectory runs the fixed tracking suite — TC, CC, SSSP and SG under
// DWS at 1, 4, 8 and 16 workers — and returns the points. The datasets
// are deterministic in cfg.Seed so successive PRs measure identical
// workloads.
func Trajectory(cfg Config) []BenchPoint {
	cfg = cfg.withDefaults()
	workerCounts := []int{1, 4, 8, 16}

	var points []BenchPoint
	for _, j := range trackingJobs(cfg) {
		for _, w := range workerCounts {
			// Settle the heap between cells so one cell's garbage (and
			// the GC pacing it induced) cannot bleed into the next
			// measurement — without this, adding a cell to the suite
			// shifts the timings of every cell after it.
			runtime.GC()
			runtime.GC()
			opts := []dcdatalog.Option{dcdatalog.WithWorkers(w)}
			if cfg.NoSteal {
				opts = append(opts, dcdatalog.WithoutStealing())
			}
			m := run(j.ds, j.query.Source, j.query.Output, opts...)
			points = append(points, BenchPoint{
				Query:              j.query.Name,
				Dataset:            j.dsName,
				Workers:            w,
				Seconds:            m.seconds,
				SetupNS:            m.setupNS,
				Tuples:             m.tuples,
				Note:               m.note,
				ProbeTagProbes:     m.probe.TagProbes,
				ProbeTagRejects:    m.probe.TagRejects,
				ProbeKeyCompares:   m.probe.KeyCompares,
				ProbeKeySkips:      m.probe.KeySkips,
				ProbeBloomChecks:   m.probe.BloomChecks,
				ProbeBloomSkips:    m.probe.BloomSkips,
				ProbeTagRejectRate: m.probe.TagRejectRate(),
				ProbeKeySkipRate:   m.probe.KeySkipRate(),
				ProbeBloomSkipRate: m.probe.BloomSkipRate(),
				StealMorsels:       m.steal.MorselsExecuted,
				StealStolen:        m.steal.MorselsStolen,
				StealAttempts:      m.steal.Attempts,
				StealFailures:      m.steal.Failures,
				Imbalance:          m.imbalance,
				DemandRewritten:    boolInt(m.demandRewritten),
				DemandEstTuples:    m.demandEst,
				DemandActualTuples: m.demandActual,
			})
		}
	}
	// The IVM sweep (PR9): incremental refresh vs full recompute on the
	// TC tracking cell across delta sizes.
	points = append(points, ivmPoints(cfg)...)
	return points
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// WriteTrajectoryJSON renders the points as indented JSON.
func WriteTrajectoryJSON(w io.Writer, points []BenchPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}
