package bench

import (
	"fmt"
	"runtime"
	"sort"

	dcdatalog "repro"
	"repro/internal/datasets"
	"repro/internal/queries"
)

// demandReps is how many interleaved repetitions each A/B cell pools.
// Interleaving (on, off, on, off, ...) instead of batching makes the
// comparison robust against drift — thermal, GC pacing, or a noisy
// neighbour hits both arms equally.
const demandReps = 12

// DemandReport measures what the demand (magic-set) rewrite buys on the
// bound point-query cells, A/B against WithoutDemandRewrite() on the
// same data. The unbound TC cell is the no-regression control: the
// rewrite declines there, so both arms should be within noise.
func DemandReport(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Demand rewrite on vs off (%d interleaved reps, %d workers)", demandReps, cfg.Workers),
		Header: []string{"Query", "Dataset", "Rewritten", "On", "Off", "Speedup", "Tuples on/off"},
		Notes: []string{
			"On/Off = median wall time over interleaved reps with and without the demand rewrite",
			"Rewritten = whether the rewrite actually fired for the on arm (unbound cells decline)",
			"Tuples counts the output relation; bound cells restrict the recursive predicate, not the output",
		},
	}

	type abJob struct {
		query  queries.Query
		dsName string
		ds     dataset
	}
	var jobs []abJob

	tcEdges := datasets.RMATn(cfg.scaled(512), cfg.Seed)
	jobs = append(jobs, abJob{queries.BoundTC(), "rmat-512", dataset{
		load: loadArcs(tcEdges),
		opts: []dcdatalog.Option{dcdatalog.WithParam("src", datasets.HubVertex(tcEdges))},
	}})

	// The SG source is the root's first child — the root itself has no
	// same-generation peers.
	sgEdges := datasets.Tree(6, 2, 3, cfg.Seed)
	jobs = append(jobs, abJob{queries.BoundSG(), "tree-6", dataset{
		load: loadArcs(sgEdges),
		opts: []dcdatalog.Option{dcdatalog.WithParam("v", sgEdges[0].Dst)},
	}})

	// Control: unbound TC on the same graph. The rewrite declines (no
	// external bound site), so any on/off gap here is measurement noise
	// or an ordering regression.
	jobs = append(jobs, abJob{queries.TC(), "rmat-512", dataset{load: loadArcs(tcEdges)}})

	for _, j := range jobs {
		base := []dcdatalog.Option{dcdatalog.WithWorkers(cfg.Workers)}
		if cfg.NoSteal {
			base = append(base, dcdatalog.WithoutStealing())
		}
		var on, off []float64
		var onM, offM measurement
		for rep := 0; rep < demandReps; rep++ {
			runtime.GC()
			runtime.GC()
			onM = run(j.ds, j.query.Source, j.query.Output, base...)
			if onM.note != "" {
				break
			}
			on = append(on, onM.seconds)
			runtime.GC()
			runtime.GC()
			offM = run(j.ds, j.query.Source, j.query.Output,
				append(append([]dcdatalog.Option(nil), base...), dcdatalog.WithoutDemandRewrite())...)
			if offM.note != "" {
				break
			}
			off = append(off, offM.seconds)
		}
		if onM.note != "" || offM.note != "" {
			note := onM.note
			if note == "" {
				note = offM.note
			}
			t.Rows = append(t.Rows, []string{j.query.Name, j.dsName, "-", note, note, "-", "-"})
			continue
		}
		mOn, mOff := medianSecs(on), medianSecs(off)
		rewritten := "no"
		if onM.demandRewritten {
			rewritten = "yes"
		}
		t.Rows = append(t.Rows, []string{
			j.query.Name, j.dsName, rewritten,
			cell(mOn, ""), cell(mOff, ""),
			fmt.Sprintf("%.1fx", mOff/mOn),
			fmt.Sprintf("%d/%d", onM.tuples, offM.tuples),
		})
	}
	return t
}

// medianSecs is the median of a non-empty sample of wall times.
func medianSecs(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
