// Package queueing implements the G/G/1 statistics behind the paper's
// Dynamic Weight-based Strategy (§4.2): incremental arrival-rate and
// service-rate trackers, the buffer-weighted composition of per-producer
// arrival processes (Equation 1), and Kingman's heavy-traffic estimate
// of the mean queue length (Equation 2) from which each worker derives
// its proceed threshold ω_i and wait budget τ_i.
package queueing

import "math"

// welford accumulates a running mean and variance incrementally.
type welford struct {
	n    int64
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// addN folds in n identical samples of value x in O(1) — the closed form
// of Chan's parallel-variance merge with a zero-variance block of size n.
// It is exact: n repeated add(x) calls contribute the same mean shift and
// the same between-block term n0·n/(n0+n)·(x-mean)² to m2 (each add's
// d·(x-mean') terms telescope to exactly that sum), so trackers that
// spread one batch gap over hundreds of tuples no longer pay a loop per
// frame on the gather path.
func (w *welford) addN(x float64, n int64) {
	if n <= 0 {
		return
	}
	n0 := float64(w.n)
	nf := float64(n)
	d := x - w.mean
	w.n += n
	w.mean += d * nf / (n0 + nf)
	w.m2 += d * d * n0 * nf / (n0 + nf)
}

func (w *welford) variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// ArrivalTracker maintains the arrival statistics (λ_j, σ²_a,j) of one
// message buffer M_i^j. The consumer records each drained batch with
// the producer's send timestamp; per-tuple inter-arrival times are
// approximated by spreading the gap between batches across the batch.
type ArrivalTracker struct {
	lastArrival int64 // nanoseconds of the previous batch
	inter       welford
	tuples      int64
}

// Record notes a drained batch of n tuples stamped sentAt (nanoseconds).
func (a *ArrivalTracker) Record(n int, sentAt int64) {
	if n <= 0 {
		return
	}
	if a.lastArrival != 0 && sentAt > a.lastArrival {
		gap := float64(sentAt-a.lastArrival) / 1e9 / float64(n)
		a.inter.addN(gap, int64(n))
	}
	a.lastArrival = sentAt
	a.tuples += int64(n)
}

// Tuples returns the cumulative number of tuples observed; it serves as
// the buffer weight |M_i^j| in Equation 1.
func (a *ArrivalTracker) Tuples() int64 { return a.tuples }

// Lambda returns the mean arrival rate λ_j in tuples per second, or 0
// when unknown.
func (a *ArrivalTracker) Lambda() float64 {
	if a.inter.n == 0 || a.inter.mean <= 0 {
		return 0
	}
	return 1 / a.inter.mean
}

// SigmaA2 returns the variance σ²_a,j of per-tuple inter-arrival times.
func (a *ArrivalTracker) SigmaA2() float64 { return a.inter.variance() }

// ServiceTracker maintains the service statistics (μ, σ²_s) of a
// worker: the reciprocal of the average per-tuple computation time.
type ServiceTracker struct {
	per welford
}

// Record notes a local iteration that processed n tuples in d seconds.
func (s *ServiceTracker) Record(n int, d float64) {
	if n <= 0 || d <= 0 {
		return
	}
	per := d / float64(n)
	s.per.addN(per, int64(n))
}

// Mu returns the mean service rate μ in tuples per second, or 0 when
// unknown.
func (s *ServiceTracker) Mu() float64 {
	if s.per.n == 0 || s.per.mean <= 0 {
		return 0
	}
	return 1 / s.per.mean
}

// SigmaS2 returns the variance σ²_s of per-tuple service times.
func (s *ServiceTracker) SigmaS2() float64 { return s.per.variance() }

// Combine merges the per-producer arrival processes into the worker's
// aggregate (λ, σ²_a) following Equation 1, weighting each producer by
// its buffer volume. Producers with no observations are skipped.
func Combine(trackers []*ArrivalTracker) (lambda, sigmaA2 float64) {
	var wSum, invSum, varSum float64
	for _, t := range trackers {
		lj := t.Lambda()
		w := float64(t.Tuples())
		if lj <= 0 || w <= 0 {
			continue
		}
		wSum += w
		invSum += w / lj
		varSum += w * (t.SigmaA2() + 1/(lj*lj))
	}
	if wSum == 0 || invSum == 0 {
		return 0, 0
	}
	lambda = wSum / invSum
	sigmaA2 = varSum/wSum - 1/(lambda*lambda)
	if sigmaA2 < 0 {
		sigmaA2 = 0
	}
	return lambda, sigmaA2
}

// Kingman estimates the mean queue length L_q under the G/G/1 model
// (Equation 2): L_q ≈ ρ²(C²_a + C²_s) / (2(1-ρ)) with ρ = λ/μ,
// C²_a = λ²σ²_a and C²_s = μ²σ²_s. For ρ ≥ 1 the queue is unstable and
// the estimate is +Inf.
func Kingman(lambda, sigmaA2, mu, sigmaS2 float64) float64 {
	if lambda <= 0 || mu <= 0 {
		return 0
	}
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1)
	}
	ca2 := lambda * lambda * sigmaA2
	cs2 := mu * mu * sigmaS2
	return rho * rho * (ca2 + cs2) / (2 * (1 - rho))
}

// Decision is the (ω_i, τ_i) pair a worker derives each iteration.
type Decision struct {
	// Omega is the delta-cardinality threshold: proceed immediately
	// when |δR_i| ≥ Omega.
	Omega int
	// Tau is the maximum time in seconds to wait for more tuples.
	Tau float64
}

// Decide derives (ω_i, τ_i) from the worker's current statistics. When
// the queue is unstable (arrivals outpace service) waiting is pointless
// and the worker proceeds with whatever it has; when statistics are not
// yet warmed up it also proceeds immediately.
func Decide(lambda, sigmaA2, mu, sigmaS2 float64, maxWait float64) Decision {
	lq := Kingman(lambda, sigmaA2, mu, sigmaS2)
	if lq <= 0 || math.IsInf(lq, 1) || math.IsNaN(lq) {
		return Decision{Omega: 0, Tau: 0}
	}
	omega := int(math.Ceil(lq))
	tau := lq / lambda // mean waiting time in queue: L_q / λ
	if tau > maxWait {
		tau = maxWait
	}
	return Decision{Omega: omega, Tau: tau}
}
