package queueing

import (
	"math"
	"testing"
)

func TestArrivalTracker(t *testing.T) {
	var a ArrivalTracker
	// Batches of 10 tuples every 10ms → 1000 tuples/s.
	now := int64(1e9)
	for i := 0; i < 100; i++ {
		a.Record(10, now)
		now += 10e6
	}
	if a.Tuples() != 1000 {
		t.Fatalf("tuples = %d", a.Tuples())
	}
	l := a.Lambda()
	if l < 900 || l > 1100 {
		t.Fatalf("lambda = %g, want ≈1000", l)
	}
	// Perfectly regular arrivals have (near) zero variance.
	if a.SigmaA2() > 1e-12 {
		t.Fatalf("sigmaA2 = %g, want ~0", a.SigmaA2())
	}
}

func TestArrivalTrackerIgnoresEmptyAndBackwards(t *testing.T) {
	var a ArrivalTracker
	a.Record(0, 100)
	if a.Tuples() != 0 {
		t.Fatal("empty batch counted")
	}
	a.Record(5, 1e9)
	a.Record(5, 5e8) // clock went backwards: no interval recorded
	if a.Lambda() != 0 {
		t.Fatalf("lambda from backwards clock = %g", a.Lambda())
	}
}

func TestServiceTracker(t *testing.T) {
	var s ServiceTracker
	// 100 tuples in 0.1s → 1000 tuples/s.
	for i := 0; i < 10; i++ {
		s.Record(100, 0.1)
	}
	mu := s.Mu()
	if mu < 900 || mu > 1100 {
		t.Fatalf("mu = %g, want ≈1000", mu)
	}
	if s.SigmaS2() > 1e-12 {
		t.Fatalf("sigmaS2 = %g", s.SigmaS2())
	}
}

func TestCombineSingleProducer(t *testing.T) {
	var a ArrivalTracker
	now := int64(1e9)
	for i := 0; i < 50; i++ {
		a.Record(4, now)
		now += 4e6 // 1000 tuples/s
	}
	l, s2 := Combine([]*ArrivalTracker{&a})
	if math.Abs(l-a.Lambda()) > 1 {
		t.Fatalf("combined lambda = %g vs %g", l, a.Lambda())
	}
	if s2 < 0 {
		t.Fatalf("sigma² = %g", s2)
	}
}

func TestCombineWeightsByVolume(t *testing.T) {
	fast, slow := &ArrivalTracker{}, &ArrivalTracker{}
	now := int64(1e9)
	for i := 0; i < 100; i++ {
		fast.Record(10, now) // 10k tuples in total at 1000/s
		now += 10e6
	}
	now = int64(1e9)
	for i := 0; i < 2; i++ {
		slow.Record(1, now) // 2 tuples at 10/s
		now += 100e6
	}
	l, _ := Combine([]*ArrivalTracker{fast, slow})
	// The fast producer dominates by volume, so λ stays near 1000.
	if l < 500 {
		t.Fatalf("combined lambda = %g, should be dominated by the fast producer", l)
	}
}

func TestCombineEmpty(t *testing.T) {
	l, s2 := Combine(nil)
	if l != 0 || s2 != 0 {
		t.Fatal("empty combine should be zero")
	}
	l, s2 = Combine([]*ArrivalTracker{{}, {}})
	if l != 0 || s2 != 0 {
		t.Fatal("unwarmed trackers should combine to zero")
	}
}

func TestKingman(t *testing.T) {
	// M/M/1-like: λ=50, μ=100, exponential variances σ² = 1/rate².
	lq := Kingman(50, 1.0/(50*50), 100, 1.0/(100*100))
	// For M/M/1, L_q = ρ²/(1-ρ) = 0.25/0.5 = 0.5; Kingman is exact there.
	if math.Abs(lq-0.5) > 1e-9 {
		t.Fatalf("Lq = %g, want 0.5", lq)
	}
	if !math.IsInf(Kingman(100, 0, 50, 0), 1) {
		t.Fatal("unstable queue should be +Inf")
	}
	if Kingman(0, 0, 100, 0) != 0 {
		t.Fatal("no arrivals should give 0")
	}
	// Deterministic D/D/1: no variance → empty queue.
	if lq := Kingman(50, 0, 100, 0); lq != 0 {
		t.Fatalf("D/D/1 Lq = %g, want 0", lq)
	}
}

func TestKingmanGrowsWithLoad(t *testing.T) {
	prev := -1.0
	for _, rho := range []float64{0.2, 0.5, 0.8, 0.95} {
		mu := 100.0
		l := rho * mu
		lq := Kingman(l, 1/(l*l), mu, 1/(mu*mu))
		if lq <= prev {
			t.Fatalf("Lq not increasing at ρ=%g: %g <= %g", rho, lq, prev)
		}
		prev = lq
	}
}

func TestDecide(t *testing.T) {
	// Stable queue with variability → positive ω and τ.
	d := Decide(50, 1.0/(50*50), 100, 1.0/(100*100), 1.0)
	if d.Omega < 1 {
		t.Fatalf("omega = %d, want ≥ 1", d.Omega)
	}
	if d.Tau <= 0 || d.Tau > 1.0 {
		t.Fatalf("tau = %g", d.Tau)
	}
	// Unstable queue: never wait.
	d = Decide(200, 1e-6, 100, 1e-6, 1.0)
	if d.Omega != 0 || d.Tau != 0 {
		t.Fatalf("unstable decision = %+v, want zero", d)
	}
	// Cold start: never wait.
	d = Decide(0, 0, 0, 0, 1.0)
	if d.Omega != 0 || d.Tau != 0 {
		t.Fatalf("cold decision = %+v", d)
	}
	// τ is clamped to the timeout bound.
	d = Decide(1, 100, 2, 100, 0.01)
	if d.Tau > 0.01 {
		t.Fatalf("tau = %g not clamped", d.Tau)
	}
}

// TestWelfordAddNMatchesRepeatedAdd pins the closed-form bulk update to
// the loop it replaced: folding n identical samples in one step must
// leave count, mean and variance exactly where n individual adds would
// (up to float rounding, which the closed form actually reduces).
func TestWelfordAddNMatchesRepeatedAdd(t *testing.T) {
	samples := []struct {
		x float64
		n int64
	}{{0.5, 1}, {2.0, 37}, {0.125, 400}, {7.5, 3}, {2.0, 1000}, {1e-6, 256}}

	var bulk, loop welford
	for _, s := range samples {
		bulk.addN(s.x, s.n)
		for i := int64(0); i < s.n; i++ {
			loop.add(s.x)
		}
	}
	if bulk.n != loop.n {
		t.Fatalf("count: bulk %d, loop %d", bulk.n, loop.n)
	}
	relClose := func(a, b float64) bool {
		diff := math.Abs(a - b)
		scale := math.Max(math.Abs(a), math.Abs(b))
		return diff <= 1e-9*math.Max(scale, 1)
	}
	if !relClose(bulk.mean, loop.mean) {
		t.Fatalf("mean: bulk %g, loop %g", bulk.mean, loop.mean)
	}
	if !relClose(bulk.variance(), loop.variance()) {
		t.Fatalf("variance: bulk %g, loop %g", bulk.variance(), loop.variance())
	}
	// addN(x, 0) and addN(x, -1) must be no-ops.
	before := bulk
	bulk.addN(9.0, 0)
	bulk.addN(9.0, -1)
	if bulk != before {
		t.Fatal("addN with n ≤ 0 mutated the accumulator")
	}
}
