package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

func TestParseTC(t *testing.T) {
	prog, err := Parse(`
		.decl arc(x:int, y:int)
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Decls) != 1 || len(prog.Rules) != 2 {
		t.Fatalf("got %d decls, %d rules", len(prog.Decls), len(prog.Rules))
	}
	d := prog.DeclFor("arc")
	if d == nil || len(d.Cols) != 2 || d.Cols[0].Name != "x" || d.Cols[0].Type != "int" {
		t.Fatalf("decl = %+v", d)
	}
	r := prog.Rules[1]
	if r.Head.Pred != "tc" || len(r.Body) != 2 {
		t.Fatalf("rule = %s", r)
	}
	if len(r.Atoms()) != 2 {
		t.Fatal("body atoms")
	}
}

func TestParseArrowVariant(t *testing.T) {
	prog, err := Parse(`tc(X, Y) <- arc(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 || len(prog.Rules[0].Body) != 1 {
		t.Fatal("arrow variant not parsed")
	}
}

func TestParseAggregates(t *testing.T) {
	prog, err := Parse(`
		cc2(Y, min<Y>) :- arc(Y, _).
		cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
		delivery(P, max<D>) :- basic(P, D).
		cnt(Y, count<X>) :- attend(X), friend(Y, X).
		rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), K = C / D.
	`)
	if err != nil {
		t.Fatal(err)
	}
	agg, pos := prog.Rules[0].Head.HeadAgg()
	if agg == nil || agg.Kind != "min" || pos != 1 {
		t.Fatalf("min agg = %+v at %d", agg, pos)
	}
	agg, _ = prog.Rules[3].Head.HeadAgg()
	if agg.Kind != "count" || agg.Contributor == nil || agg.Value != nil {
		t.Fatalf("count agg = %+v", agg)
	}
	agg, _ = prog.Rules[4].Head.HeadAgg()
	if agg.Kind != "sum" || agg.Contributor == nil || agg.Value == nil {
		t.Fatalf("keyed sum agg = %+v", agg)
	}
	if agg.Contributor.(*ast.Var).Name != "Y" || agg.Value.(*ast.Var).Name != "K" {
		t.Fatalf("keyed sum parts = %s, %s", agg.Contributor, agg.Value)
	}
}

func TestParseConditionsAndArithmetic(t *testing.T) {
	prog, err := Parse(`
		sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
		sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.
		attend(X) :- cnt(X, N), N >= 3.
	`)
	if err != nil {
		t.Fatal(err)
	}
	cond := prog.Rules[0].Body[2].(*ast.Condition)
	if cond.Op != ast.Eq {
		t.Fatalf("op = %v", cond.Op)
	}
	bin, ok := cond.R.(*ast.Bin)
	if !ok || bin.Op != ast.Add {
		t.Fatalf("rhs = %s", cond.R)
	}
	if prog.Rules[1].Body[2].(*ast.Condition).Op != ast.Ne {
		t.Fatal("!= not parsed")
	}
	if prog.Rules[2].Body[1].(*ast.Condition).Op != ast.Ge {
		t.Fatal(">= not parsed")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := MustParse(`r(X) :- b(X, C, D), K = $alpha * (C / D) + 1.`)
	cond := prog.Rules[0].Body[1].(*ast.Condition)
	top := cond.R.(*ast.Bin)
	if top.Op != ast.Add {
		t.Fatalf("top op = %v, want +", top.Op)
	}
	mul := top.L.(*ast.Bin)
	if mul.Op != ast.Mul {
		t.Fatalf("left op = %v, want *", mul.Op)
	}
	if _, ok := mul.L.(*ast.Param); !ok {
		t.Fatal("param not parsed")
	}
}

func TestParseWildcardsAreUnique(t *testing.T) {
	prog := MustParse(`p(X) :- q(X, _, _).`)
	atom := prog.Rules[0].Body[0].(*ast.Atom)
	a := atom.Args[1].(*ast.Var).Name
	b := atom.Args[2].(*ast.Var).Name
	if a == b {
		t.Fatalf("wildcards share a name: %s", a)
	}
	if !strings.HasPrefix(a, "_") {
		t.Fatalf("wildcard name %q", a)
	}
}

func TestParseFactsAndConstants(t *testing.T) {
	prog := MustParse(`
		arc(1, 2).
		attend(john).
		weight(3, 4, 2.5).
		neg(-7).
	`)
	if len(prog.Rules) != 4 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	if !prog.Rules[0].IsFact() {
		t.Fatal("fact not recognized")
	}
	if s, ok := prog.Rules[1].Head.Args[0].(*ast.Str); !ok || s.Val != "john" {
		t.Fatal("symbol constant not parsed")
	}
	if n, ok := prog.Rules[2].Head.Args[2].(*ast.Num); !ok || !n.IsFloat || n.Float != 2.5 {
		t.Fatal("float literal not parsed")
	}
	if n := prog.Rules[3].Head.Args[0].(*ast.Num); n.Int != -7 {
		t.Fatalf("negative literal = %d", n.Int)
	}
}

func TestParseNegation(t *testing.T) {
	prog := MustParse(`unreach(X) :- node(X), !tc(1, X).`)
	neg, ok := prog.Rules[0].Body[1].(*ast.Negation)
	if !ok || neg.Atom.Pred != "tc" {
		t.Fatalf("negation = %v", prog.Rules[0].Body[1])
	}
}

func TestParseComments(t *testing.T) {
	prog := MustParse(`
		% transitive closure
		tc(X, Y) :- arc(X, Y). // base rule
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`)
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
}

func TestParseStringLiterals(t *testing.T) {
	prog := MustParse(`name(1, "Alice \"A\"\n").`)
	s := prog.Rules[0].Head.Args[1].(*ast.Str)
	if s.Val != "Alice \"A\"\n" {
		t.Fatalf("string = %q", s.Val)
	}
}

func TestParseParams(t *testing.T) {
	prog := MustParse(`sp(To, min<C>) :- To = $start, C = 0.`)
	cond := prog.Rules[0].Body[0].(*ast.Condition)
	if p, ok := cond.R.(*ast.Param); !ok || p.Name != "start" {
		t.Fatalf("param = %v", cond.R)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`tc(X, Y)`,                  // missing period
		`tc(X, Y :- arc(X, Y).`,     // unbalanced paren
		`.declx foo(x:int)`,         // unknown directive
		`tc(X) :- arc(X, .`,         // dangling comma
		`tc(X) :- X ~ 3.`,           // bad operator
		`tc(min<X>, Y) :- a(X,Y)`,   // missing final period
		`"dangling`,                 // unterminated string at top level
		`p(X) :- q(X), N >= .`,      // missing operand
		`p($) :- q(1).`,             // bad parameter
		`p(X) :- q(X), min<X> = 3.`, // aggregate outside head
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("tc(X, Y) :- arc(X Y).")
	if err == nil || !strings.Contains(err.Error(), "1:") {
		t.Fatalf("error should carry a position, got %v", err)
	}
}

func TestProgramRoundTripReparses(t *testing.T) {
	src := `
		.decl warc(a:int, b:int, c:float)
		sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
		rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), K = $alpha * (C / D).
		sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.
		unreach(X) :- node(X), !tc(1, X).
	`
	prog := MustParse(src)
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("rendered program failed to reparse: %v\n%s", err, prog.String())
	}
	if prog.String() != again.String() {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", prog.String(), again.String())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse(`broken(`)
}

func TestScientificNotation(t *testing.T) {
	prog := MustParse(`p(X) :- q(X, E), E < 1e-9.`)
	cond := prog.Rules[0].Body[1].(*ast.Condition)
	n := cond.R.(*ast.Num)
	if !n.IsFloat || n.Float != 1e-9 {
		t.Fatalf("literal = %+v", n)
	}
}

// TestParseNeverPanics feeds random byte soup to the parser: it must
// return errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// And some adversarial near-valid programs.
	for _, s := range []string{
		"p(", "p(X", "p(X)", "p(X) :-", "p(X) :- q(", "p(X) :- q(X),",
		"p(min<", "p(min<X", "p(min<X>", "p(sum<(X", "p(sum<(X,Y",
		".decl", ".decl p", ".decl p(", ".decl p(x", ".decl p(x:",
		"$", "$x", "p($x) :- q(1). extra", "p(X) :- X = .",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", s, r)
				}
			}()
			_, _ = Parse(s)
		}()
	}
}
