package parser

import (
	"fmt"
	"strconv"

	"repro/internal/ast"
)

// Parse compiles DCDatalog program text into an AST.
func Parse(src string) (*ast.Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseProgram()
}

// MustParse is Parse that panics on error, for tests and examples with
// known-good program text.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lex       *lexer
	cur       token
	wildcards int
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("parse error at %s: %s", p.cur.pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind) (token, error) {
	if p.cur.kind != kind {
		return token{}, p.errorf("expected %s, found %s %q", kind, p.cur.kind, p.cur.text)
	}
	t := p.cur
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) parseProgram() (*ast.Program, error) {
	prog := &ast.Program{}
	for p.cur.kind != tEOF {
		switch p.cur.kind {
		case tDirective:
			d, err := p.parseDirective()
			if err != nil {
				return nil, err
			}
			prog.Decls = append(prog.Decls, d)
		case tIdent:
			r, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			prog.Rules = append(prog.Rules, r)
		default:
			return nil, p.errorf("expected a declaration or rule, found %s %q", p.cur.kind, p.cur.text)
		}
	}
	return prog, nil
}

// parseDirective handles ".decl name(col:type, ...)".
func (p *parser) parseDirective() (*ast.Decl, error) {
	dir := p.cur
	if dir.text != "decl" {
		return nil, p.errorf("unknown directive .%s (only .decl is supported)", dir.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	d := &ast.Decl{Pos: dir.pos, Name: name.text}
	for {
		col, err := p.parseColDecl()
		if err != nil {
			return nil, err
		}
		d.Cols = append(d.Cols, col)
		if p.cur.kind != tComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseColDecl() (ast.ColDecl, error) {
	var name token
	var err error
	switch p.cur.kind {
	case tIdent, tVariable:
		name = p.cur
		if err = p.advance(); err != nil {
			return ast.ColDecl{}, err
		}
	default:
		return ast.ColDecl{}, p.errorf("expected column name, found %s %q", p.cur.kind, p.cur.text)
	}
	if _, err := p.expect(tColon); err != nil {
		return ast.ColDecl{}, err
	}
	ty, err := p.expect(tIdent)
	if err != nil {
		return ast.ColDecl{}, err
	}
	return ast.ColDecl{Name: name.text, Type: ty.text}, nil
}

// parseRule handles "head." and "head :- body."
func (p *parser) parseRule() (*ast.Rule, error) {
	head, err := p.parseAtom(true)
	if err != nil {
		return nil, err
	}
	r := &ast.Rule{Pos: head.Pos, Head: head}
	if p.cur.kind == tArrow {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			r.Body = append(r.Body, lit)
			if p.cur.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(tPeriod); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) parseLiteral() (ast.Literal, error) {
	if p.cur.kind == tBang {
		if err := p.advance(); err != nil {
			return nil, err
		}
		a, err := p.parseAtom(false)
		if err != nil {
			return nil, err
		}
		return &ast.Negation{Atom: a}, nil
	}
	// An identifier directly followed by '(' is a relational atom; any
	// other shape is a condition.
	if p.cur.kind == tIdent {
		save := *p // single-token lookahead via state copy
		saveLex := *p.lex
		if err := p.advance(); err != nil {
			return nil, err
		}
		isAtom := p.cur.kind == tLParen
		*p = save
		*p.lex = saveLex
		if isAtom {
			return p.parseAtom(false)
		}
	}
	return p.parseCondition()
}

func (p *parser) parseCondition() (*ast.Condition, error) {
	pos := p.cur.pos
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var op ast.CmpOp
	switch p.cur.kind {
	case tEq:
		op = ast.Eq
	case tNe:
		op = ast.Ne
	case tLAngle:
		op = ast.Lt
	case tLe:
		op = ast.Le
	case tRAngle:
		op = ast.Gt
	case tGe:
		op = ast.Ge
	default:
		return nil, p.errorf("expected a comparison operator, found %s %q", p.cur.kind, p.cur.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Condition{Pos: pos, Op: op, L: l, R: r}, nil
}

// parseAtom parses pred(arg, ...). Aggregate terms are legal only in
// rule heads (allowAgg).
func (p *parser) parseAtom(allowAgg bool) (*ast.Atom, error) {
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	a := &ast.Atom{Pos: name.pos, Pred: name.text}
	for {
		arg, err := p.parseArg(allowAgg)
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, arg)
		if p.cur.kind != tComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	return a, nil
}

func (p *parser) parseArg(allowAgg bool) (ast.Term, error) {
	if allowAgg && p.cur.kind == tIdent && ast.AggKindName[p.cur.text] {
		// Distinguish the aggregate "min<...>" from a constant named
		// "min": only the former is followed by '<'.
		save := *p
		saveLex := *p.lex
		kind := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind == tLAngle {
			return p.parseAggTail(kind)
		}
		*p = save
		*p.lex = saveLex
	}
	return p.parseTerm()
}

// parseAggTail parses the "<...>" following an aggregate keyword whose
// '<' is the current token.
func (p *parser) parseAggTail(kind string) (*ast.Agg, error) {
	if err := p.advance(); err != nil { // consume '<'
		return nil, err
	}
	agg := &ast.Agg{Kind: kind}
	if p.cur.kind == tLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		contrib, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tComma); err != nil {
			return nil, err
		}
		val, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		agg.Contributor, agg.Value = contrib, val
	} else {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if kind == "count" {
			agg.Contributor = t
		} else {
			agg.Value = t
		}
	}
	if _, err := p.expect(tRAngle); err != nil {
		return nil, err
	}
	return agg, nil
}

func (p *parser) parseTerm() (ast.Term, error) {
	switch p.cur.kind {
	case tVariable:
		name := p.cur.text
		if name == "_" {
			name = fmt.Sprintf("_w%d", p.wildcards)
			p.wildcards++
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ast.Var{Name: name}, nil
	case tInt:
		v, _ := strconv.ParseInt(p.cur.text, 10, 64)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ast.Num{Int: v}, nil
	case tFloat:
		v, _ := strconv.ParseFloat(p.cur.text, 64)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ast.Num{IsFloat: true, Float: v}, nil
	case tMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		n, ok := t.(*ast.Num)
		if !ok {
			return nil, p.errorf("'-' in a term must precede a numeric literal")
		}
		n.Int, n.Float = -n.Int, -n.Float
		return n, nil
	case tString:
		v := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ast.Str{Val: v}, nil
	case tParam:
		name := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ast.Param{Name: name}, nil
	case tIdent:
		// Lower-case identifiers in term position are symbol constants
		// (classic Datalog), e.g. organizer(john).
		v := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ast.Str{Val: v}, nil
	default:
		return nil, p.errorf("expected a term, found %s %q", p.cur.kind, p.cur.text)
	}
}

// parseExpr parses additive expressions.
func (p *parser) parseExpr() (ast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tPlus || p.cur.kind == tMinus {
		op := ast.Add
		if p.cur.kind == tMinus {
			op = ast.Sub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &ast.Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tStar || p.cur.kind == tSlash {
		op := ast.Mul
		if p.cur.kind == tSlash {
			op = ast.Div
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.cur.kind == tMinus {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Bin{Op: ast.Sub, L: &ast.Num{Int: 0}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	if p.cur.kind == tLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	e, ok := t.(ast.Expr)
	if !ok {
		return nil, p.errorf("aggregates are not allowed inside expressions")
	}
	return e, nil
}
