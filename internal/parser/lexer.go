// Package parser turns DCDatalog program text into the AST of package
// ast. The grammar follows the paper's notation with ASCII spellings:
//
//	.decl arc(x:int, y:int)
//	tc(X, Y) :- arc(X, Y).
//	tc(X, Y) :- tc(X, Z), arc(Z, Y).
//	cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
//	sp(T, min<C>) :- sp(F, C1), warc(F, T, C2), C = C1 + C2.
//
// Both ":-" and "<-" introduce rule bodies; "%"- and "//"-comments run
// to end of line; "_" is an anonymous variable; "$name" is a query
// parameter bound at execution time.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tVariable // leading upper-case or underscore identifier
	tInt
	tFloat
	tString
	tParam  // $name
	tLParen // (
	tRParen // )
	tComma  // ,
	tPeriod // .
	tArrow  // :- or <-
	tLAngle // <
	tRAngle // >
	tEq     // =
	tNe     // !=
	tLe     // <=
	tGe     // >=
	tPlus   // +
	tMinus  // -
	tStar   // *
	tSlash  // /
	tBang   // !
	tColon  // :
	tDirective
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of input"
	case tIdent:
		return "identifier"
	case tVariable:
		return "variable"
	case tInt:
		return "integer"
	case tFloat:
		return "float"
	case tString:
		return "string"
	case tParam:
		return "parameter"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tComma:
		return "','"
	case tPeriod:
		return "'.'"
	case tArrow:
		return "':-'"
	case tLAngle:
		return "'<'"
	case tRAngle:
		return "'>'"
	case tEq:
		return "'='"
	case tNe:
		return "'!='"
	case tLe:
		return "'<='"
	case tGe:
		return "'>='"
	case tPlus:
		return "'+'"
	case tMinus:
		return "'-'"
	case tStar:
		return "'*'"
	case tSlash:
		return "'/'"
	case tBang:
		return "'!'"
	case tColon:
		return "':'"
	case tDirective:
		return "directive"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is one lexical unit with its source position.
type token struct {
	kind tokKind
	text string
	pos  ast.Position
}

// lexer scans program text into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(pos ast.Position, format string, args ...any) error {
	return fmt.Errorf("parse error at %s: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	pos := ast.Position{Line: l.line, Col: l.col}
	if l.off >= len(l.src) {
		return token{kind: tEOF, pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case isAlpha(c):
		start := l.off
		for l.off < len(l.src) && (isAlpha(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.off]
		kind := tIdent
		if text[0] == '_' || (text[0] >= 'A' && text[0] <= 'Z') {
			kind = tVariable
		}
		return token{kind: kind, text: text, pos: pos}, nil
	case isDigit(c):
		return l.scanNumber(pos)
	}
	switch c {
	case '"':
		l.advance()
		var b strings.Builder
		for {
			if l.off >= len(l.src) {
				return token{}, l.errorf(pos, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && l.off < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteByte(esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		return token{kind: tString, text: b.String(), pos: pos}, nil
	case '$':
		l.advance()
		if !isAlpha(l.peekByte()) {
			return token{}, l.errorf(pos, "'$' must introduce a parameter name")
		}
		start := l.off
		for l.off < len(l.src) && (isAlpha(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		return token{kind: tParam, text: l.src[start:l.off], pos: pos}, nil
	case '(':
		l.advance()
		return token{kind: tLParen, text: "(", pos: pos}, nil
	case ')':
		l.advance()
		return token{kind: tRParen, text: ")", pos: pos}, nil
	case ',':
		l.advance()
		return token{kind: tComma, text: ",", pos: pos}, nil
	case '.':
		l.advance()
		if isAlpha(l.peekByte()) {
			start := l.off
			for l.off < len(l.src) && isAlpha(l.peekByte()) {
				l.advance()
			}
			return token{kind: tDirective, text: l.src[start:l.off], pos: pos}, nil
		}
		return token{kind: tPeriod, text: ".", pos: pos}, nil
	case ':':
		l.advance()
		if l.peekByte() == '-' {
			l.advance()
			return token{kind: tArrow, text: ":-", pos: pos}, nil
		}
		return token{kind: tColon, text: ":", pos: pos}, nil
	case '<':
		l.advance()
		switch l.peekByte() {
		case '-':
			l.advance()
			return token{kind: tArrow, text: "<-", pos: pos}, nil
		case '=':
			l.advance()
			return token{kind: tLe, text: "<=", pos: pos}, nil
		}
		return token{kind: tLAngle, text: "<", pos: pos}, nil
	case '>':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tGe, text: ">=", pos: pos}, nil
		}
		return token{kind: tRAngle, text: ">", pos: pos}, nil
	case '=':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
		}
		return token{kind: tEq, text: "=", pos: pos}, nil
	case '!':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tNe, text: "!=", pos: pos}, nil
		}
		return token{kind: tBang, text: "!", pos: pos}, nil
	case '+':
		l.advance()
		return token{kind: tPlus, text: "+", pos: pos}, nil
	case '-':
		l.advance()
		return token{kind: tMinus, text: "-", pos: pos}, nil
	case '*':
		l.advance()
		return token{kind: tStar, text: "*", pos: pos}, nil
	case '/':
		l.advance()
		return token{kind: tSlash, text: "/", pos: pos}, nil
	}
	return token{}, l.errorf(pos, "unexpected character %q", string(c))
}

func (l *lexer) scanNumber(pos ast.Position) (token, error) {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peekByte()) {
		l.advance()
	}
	isFloat := false
	if l.peekByte() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	if c := l.peekByte(); c == 'e' || c == 'E' {
		save := *l
		l.advance()
		if l.peekByte() == '+' || l.peekByte() == '-' {
			l.advance()
		}
		if isDigit(l.peekByte()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		} else {
			*l = save
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		if _, err := strconv.ParseFloat(text, 64); err != nil {
			return token{}, l.errorf(pos, "bad float literal %q", text)
		}
		return token{kind: tFloat, text: text, pos: pos}, nil
	}
	if _, err := strconv.ParseInt(text, 10, 64); err != nil {
		return token{}, l.errorf(pos, "bad integer literal %q", text)
	}
	return token{kind: tInt, text: text, pos: pos}, nil
}
