// Package dcdatalog is a parallel Datalog engine for shared-memory
// multicore machines, reproducing DCDatalog (Wu, Wang, Zaniolo —
// "Optimizing Parallel Recursive Datalog Evaluation on Multicore
// Machines", SIGMOD 2022).
//
// Programs are sets of rules with recursion, stratified negation and
// monotone aggregates in recursion (min, max, count, and the keyed sum
// of PageRank). Evaluation is parallel semi-naive over hash-partitioned
// worker goroutines exchanging deltas through single-producer
// single-consumer rings, coordinated by the paper's Dynamic
// Weight-based Strategy (default) or the Global/SSP baselines.
//
// Quick start:
//
//	db := dcdatalog.NewDatabase()
//	db.MustDeclare("arc", dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int))
//	db.MustLoad("arc", [][]any{{1, 2}, {2, 3}})
//	res, err := db.Query(`
//		tc(X, Y) :- arc(X, Y).
//		tc(X, Y) :- tc(X, Z), arc(Z, Y).
//	`)
//	rows := res.Rows("tc") // [[1 2] [1 3] [2 3]]
package dcdatalog

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"maps"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/engine"
	"repro/internal/ivm"
	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// Type is a column type.
type Type = storage.Type

// Column types.
const (
	// Int is a 64-bit signed integer column.
	Int = storage.TInt
	// Float is a 64-bit IEEE-754 column.
	Float = storage.TFloat
	// Sym is an interned string column.
	Sym = storage.TSym
)

// Tuple is one row of a relation (raw 64-bit values; see Result.Rows
// for decoded access).
type Tuple = storage.Tuple

// Column describes one attribute of a relation.
type Column = storage.Column

// Col builds a column descriptor.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Strategy selects the parallel coordination scheme.
type Strategy = coord.Kind

// Coordination strategies.
const (
	// Global coordinates with a barrier after every global iteration
	// (the DeALS-MC scheme).
	Global = coord.Global
	// SSP bounds staleness by a fixed slack s.
	SSP = coord.SSP
	// DWS is the paper's dynamic weight-based strategy (default).
	DWS = coord.DWS
)

// Database holds extensional relations and interned symbols.
type Database struct {
	syms *storage.SymbolTable

	// mu guards schemas, data and views. Loads and mutations take the
	// write lock; queries snapshot slice headers under the read lock.
	mu      sync.RWMutex
	schemas map[string]*storage.Schema
	data    map[string][]storage.Tuple
	views   map[string]*View

	// The shared prepared-base plane: one immutable snapshot of the
	// loaded relations plus a memoized per-lookup-signature index
	// cache, shared by every Prepared/Query on this database. version
	// bumps on every mutation so a stale snapshot is rebuilt rather
	// than served; changed tracks WHICH relations moved, so the rebuild
	// rebases — dropping only their index entries — instead of starting
	// cold.
	baseMu      sync.Mutex
	version     int64
	base        *engine.PreparedBase
	baseVersion int64
	changed     map[string]bool
	changedAll  bool
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		syms:    storage.NewSymbolTable(),
		schemas: make(map[string]*storage.Schema),
		data:    make(map[string][]storage.Tuple),
		views:   make(map[string]*View),
	}
}

// dirty records a mutation of the named relations (none = everything),
// invalidating their slice of the prepared-base snapshot.
func (db *Database) dirty(names ...string) {
	db.baseMu.Lock()
	db.version++
	if len(names) == 0 {
		db.changedAll = true
	} else {
		if db.changed == nil {
			db.changed = make(map[string]bool)
		}
		for _, n := range names {
			db.changed[n] = true
		}
	}
	db.baseMu.Unlock()
}

// snapshotData copies the relation map (slice headers only; appends
// happen on fresh backing past each snapshot's length, deletes swap in
// new slices, so a snapshot never observes later mutations).
func (db *Database) snapshotData() map[string][]storage.Tuple {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return maps.Clone(db.data)
}

// sharedBase returns the database's prepared base, (re)snapshotting if
// relations were mutated since the last call. When only some relations
// changed, the new base is a Rebase of the old: untouched relations
// keep their memoized indexes and only the changed ones rebuild on
// next use.
func (db *Database) sharedBase() *engine.PreparedBase {
	db.baseMu.Lock()
	defer db.baseMu.Unlock()
	if db.base == nil || db.baseVersion != db.version {
		data := db.snapshotData()
		if db.base != nil && !db.changedAll {
			db.base = db.base.Rebase(db.schemas, data, db.changed)
		} else {
			db.base = engine.NewPreparedBase(db.schemas, data)
		}
		db.changed = nil
		db.changedAll = false
		db.baseVersion = db.version
	}
	return db.base
}

// Prewarm snapshots the current relations into the shared
// prepared-base plane eagerly, so the first query pays only index
// builds, not snapshotting. Loading more data after Prewarm simply
// invalidates the snapshot; long-lived services (the dcserve dataset
// registry) call this once at registration time.
func (db *Database) Prewarm() { db.sharedBase() }

// BaseStats reports the shared EDB index cache counters: how many
// per-run index requests were served from the cache (Hits), how many
// performed a build (Misses), and how many distinct indexes are
// resident.
type BaseStats = engine.BaseStats

// BaseStats returns the database's current index-cache counters.
func (db *Database) BaseStats() BaseStats { return db.sharedBase().Stats() }

// Declare registers an extensional relation's schema.
func (db *Database) Declare(name string, cols ...Column) error {
	if len(cols) == 0 {
		return fmt.Errorf("dcdatalog: relation %q needs at least one column", name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.schemas[name]; ok {
		return fmt.Errorf("dcdatalog: relation %q already declared", name)
	}
	db.schemas[name] = storage.NewSchema(name, cols...)
	return nil
}

// MustDeclare is Declare that panics on error.
func (db *Database) MustDeclare(name string, cols ...Column) {
	if err := db.Declare(name, cols...); err != nil {
		panic(err)
	}
}

// DeclareSchema registers a prebuilt schema (as produced by
// internal/queries).
func (db *Database) DeclareSchema(s *storage.Schema) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.schemas[s.Name]; ok {
		return fmt.Errorf("dcdatalog: relation %q already declared", s.Name)
	}
	db.schemas[s.Name] = s
	return nil
}

// encodeRows converts Go value rows to tuples per the schema.
func (db *Database) encodeRows(name string, rows [][]any) ([]storage.Tuple, error) {
	db.mu.RLock()
	schema, ok := db.schemas[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dcdatalog: relation %q is not declared", name)
	}
	tuples := make([]storage.Tuple, 0, len(rows))
	for _, row := range rows {
		if len(row) != schema.Arity() {
			return nil, fmt.Errorf("dcdatalog: %s expects %d columns, got %d", name, schema.Arity(), len(row))
		}
		t := make(storage.Tuple, len(row))
		for i, v := range row {
			val, err := db.encode(v, schema.ColType(i))
			if err != nil {
				return nil, fmt.Errorf("dcdatalog: %s column %d: %v", name, i+1, err)
			}
			t[i] = val
		}
		tuples = append(tuples, t)
	}
	return tuples, nil
}

// mutate is the single write path: it applies the tuple batch to the
// relation, invalidates only that relation's slice of the prepared
// base, and forwards the change to every materialized view depending on
// it (views pick it up at their next Refresh). Deletes remove one
// occurrence per given tuple (multiset semantics); deleting an absent
// tuple is a no-op.
func (db *Database) mutate(name string, tuples []storage.Tuple, del bool) error {
	db.mu.Lock()
	schema, ok := db.schemas[name]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("dcdatalog: relation %q is not declared", name)
	}
	for _, t := range tuples {
		if len(t) != schema.Arity() {
			db.mu.Unlock()
			return fmt.Errorf("dcdatalog: %s expects arity %d, got %d", name, schema.Arity(), len(t))
		}
	}
	if del {
		batch := storage.NewCountedSetRelation(schema)
		for _, t := range tuples {
			batch.Add(t)
		}
		cur := db.data[name]
		kept := make([]storage.Tuple, 0, len(cur))
		for _, t := range cur {
			if present, _ := batch.Remove(t); present {
				continue
			}
			kept = append(kept, t)
		}
		db.data[name] = kept
	} else {
		db.data[name] = append(db.data[name], tuples...)
	}
	var notify []*View
	for _, v := range db.views {
		if v.deps[name] {
			notify = append(notify, v)
		}
	}
	db.mu.Unlock()
	db.dirty(name)
	muts := make([]ivm.Mutation, len(tuples))
	for i, t := range tuples {
		muts[i] = ivm.Mutation{Rel: name, Tuple: t, Delete: del}
	}
	for _, v := range notify {
		if err := v.v.Apply(muts); err != nil {
			return err
		}
	}
	return nil
}

// Load appends rows to a declared relation, converting Go values
// (int/int64/float64/string) per the schema.
func (db *Database) Load(name string, rows [][]any) error {
	tuples, err := db.encodeRows(name, rows)
	if err != nil {
		return err
	}
	return db.mutate(name, tuples, false)
}

// MustLoad is Load that panics on error.
func (db *Database) MustLoad(name string, rows [][]any) {
	if err := db.Load(name, rows); err != nil {
		panic(err)
	}
}

// LoadTuples appends pre-encoded tuples (bulk path for generators).
func (db *Database) LoadTuples(name string, tuples []Tuple) error {
	return db.mutate(name, tuples, false)
}

// Insert appends rows to a declared relation. Unlike Load it is meant
// for the mutation path of a live service: it invalidates only this
// relation's memoized indexes and feeds materialized views' delta
// queues.
func (db *Database) Insert(name string, rows [][]any) error {
	return db.Load(name, rows)
}

// InsertTuples is Insert for pre-encoded tuples.
func (db *Database) InsertTuples(name string, tuples []Tuple) error {
	return db.mutate(name, tuples, false)
}

// Delete removes one occurrence of each given row from a relation
// (multiset semantics; absent rows are no-ops).
func (db *Database) Delete(name string, rows [][]any) error {
	tuples, err := db.encodeRows(name, rows)
	if err != nil {
		return err
	}
	return db.mutate(name, tuples, true)
}

// DeleteTuples is Delete for pre-encoded tuples.
func (db *Database) DeleteTuples(name string, tuples []Tuple) error {
	return db.mutate(name, tuples, true)
}

// LoadTSV reads tab- or whitespace-separated rows into a declared
// relation.
func (db *Database) LoadTSV(name string, r io.Reader) error {
	tuples, err := db.ParseTSV(name, r)
	if err != nil {
		return err
	}
	return db.mutate(name, tuples, false)
}

// ParseTSV decodes tab- or whitespace-separated rows per a declared
// relation's schema without mutating the database. It feeds the
// insert/delete mutation paths of services that receive rows as text.
func (db *Database) ParseTSV(name string, r io.Reader) ([]Tuple, error) {
	db.mu.RLock()
	schema, ok := db.schemas[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dcdatalog: relation %q is not declared", name)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	var tuples []storage.Tuple
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != schema.Arity() {
			return nil, fmt.Errorf("dcdatalog: %s line %d: %d fields, want %d", name, line, len(fields), schema.Arity())
		}
		t := make(storage.Tuple, len(fields))
		for i, f := range fields {
			switch schema.ColType(i) {
			case storage.TInt:
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("dcdatalog: %s line %d: %v", name, line, err)
				}
				t[i] = storage.IntVal(v)
			case storage.TFloat:
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("dcdatalog: %s line %d: %v", name, line, err)
				}
				t[i] = storage.FloatVal(v)
			default:
				t[i] = storage.SymVal(db.syms.Intern(f))
			}
		}
		tuples = append(tuples, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tuples, nil
}

// Len reports the number of tuples currently stored in an extensional
// relation (0 when undeclared or empty).
func (db *Database) Len(name string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data[name])
}

// Relation returns the loaded tuples of an extensional relation. The
// result is a deep copy: mutating it (or the tuples inside) cannot
// corrupt the database's storage or any snapshot a running query holds.
func (db *Database) Relation(name string) []Tuple {
	db.mu.RLock()
	defer db.mu.RUnlock()
	src := db.data[name]
	if src == nil {
		return nil
	}
	out := make([]Tuple, len(src))
	for i, t := range src {
		c := make(storage.Tuple, len(t))
		copy(c, t)
		out[i] = c
	}
	return out
}

func (db *Database) encode(v any, t Type) (storage.Value, error) {
	switch x := v.(type) {
	case int:
		if t == storage.TFloat {
			return storage.FloatVal(float64(x)), nil
		}
		return storage.IntVal(int64(x)), nil
	case int64:
		if t == storage.TFloat {
			return storage.FloatVal(float64(x)), nil
		}
		return storage.IntVal(x), nil
	case float64:
		if t != storage.TFloat {
			return 0, fmt.Errorf("float value for %s column", t)
		}
		return storage.FloatVal(x), nil
	case string:
		if t != storage.TSym {
			return 0, fmt.Errorf("string value for %s column", t)
		}
		return storage.SymVal(db.syms.Intern(x)), nil
	default:
		return 0, fmt.Errorf("unsupported value type %T", v)
	}
}

// config collects query options.
type config struct {
	opts      engine.Options
	params    map[string]physical.Param
	broadcast bool
	crossover float64
	noDemand  bool
	// demand records the outcome of the demand (magic-set) rewrite
	// compile ran — applied, or declined with reasons.
	demand *rewrite.Result
}

// Option configures one query execution.
type Option func(*config, *Database) error

// WithWorkers sets the number of parallel workers.
func WithWorkers(n int) Option {
	return func(c *config, _ *Database) error { c.opts.Workers = n; return nil }
}

// WithStrategy selects the coordination strategy.
func WithStrategy(s Strategy) Option {
	return func(c *config, _ *Database) error { c.opts.Strategy = s; return nil }
}

// WithSlack sets the SSP staleness bound s.
func WithSlack(s int) Option {
	return func(c *config, _ *Database) error { c.opts.Slack = s; return nil }
}

// WithMaxWait caps DWS's per-decision wait budget τ.
func WithMaxWait(d time.Duration) Option {
	return func(c *config, _ *Database) error { c.opts.MaxWait = d; return nil }
}

// WithBatchSize sets the tuple count per exchanged message.
func WithBatchSize(n int) Option {
	return func(c *config, _ *Database) error { c.opts.BatchSize = n; return nil }
}

// WithEpsilon sets the convergence threshold for float sum aggregates.
func WithEpsilon(eps float64) Option {
	return func(c *config, _ *Database) error { c.opts.Epsilon = eps; return nil }
}

// WithMaxIterations bounds local iterations per worker (0 = fixpoint).
func WithMaxIterations(n int) Option {
	return func(c *config, _ *Database) error { c.opts.MaxLocalIters = n; return nil }
}

// WithMaxTuples bounds the total tuples exchanged per stratum (0 =
// unbounded); exceeding the budget stops evaluation short of the
// fixpoint and marks the stratum capped, the out-of-memory analogue
// for diverging programs.
func WithMaxTuples(n int64) Option {
	return func(c *config, _ *Database) error { c.opts.MaxTuples = n; return nil }
}

// WithoutExistCache disables the existence-check cache (ablation).
func WithoutExistCache() Option {
	return func(c *config, _ *Database) error { c.opts.NoExistCache = true; return nil }
}

// WithoutIndexAgg disables index-assisted aggregate merges (ablation).
func WithoutIndexAgg() Option {
	return func(c *config, _ *Database) error { c.opts.NoIndexAgg = true; return nil }
}

// WithoutPartialAgg disables partial aggregation in Distribute
// (ablation).
func WithoutPartialAgg() Option {
	return func(c *config, _ *Database) error { c.opts.NoPartialAgg = true; return nil }
}

// WithoutStealing disables morsel-driven work stealing: every worker
// evaluates only the delta it gathered, as before the steal plane
// existed (ablation and differential testing; skewed workloads at
// multiple workers lose their load balancing).
func WithoutStealing() Option {
	return func(c *config, _ *Database) error { c.opts.StealOff = true; return nil }
}

// BloomMode selects when join probes consult the Bloom guards built
// beside the base hash indexes: BloomAuto (default — anti-joins
// always, joins adaptively on low hit rates), BloomOff, BloomForce.
type BloomMode = engine.BloomMode

// Re-exported Bloom-guard policies.
const (
	BloomAuto  = engine.BloomAuto
	BloomOff   = engine.BloomOff
	BloomForce = engine.BloomForce
)

// WithBloomGuards sets the Bloom-guard policy for join and anti-join
// probes (ablation and differential testing; the default BloomAuto is
// right for production).
func WithBloomGuards(m BloomMode) Option {
	return func(c *config, _ *Database) error { c.opts.Bloom = m; return nil }
}

// WithProbeGroup sets G, the number of independent probe chains each
// worker keeps in flight in the staged join pipeline (0 = default 16,
// 1 = serial probes, clamped at 32).
func WithProbeGroup(g int) Option {
	return func(c *config, _ *Database) error { c.opts.ProbeGroup = g; return nil }
}

// WithBroadcastReplication forces broadcast replication of recursive
// relations instead of aligned partitioning — the APSP strategy the
// paper attributes to SociaLite/DDlog, kept as a comparison baseline.
func WithBroadcastReplication() Option {
	return func(c *config, _ *Database) error { c.broadcast = true; return nil }
}

// WithCrossover sets a materialized view's churn crossover: the
// fraction of changed tuples (relative to the mutated relations' size)
// above which Refresh falls back to a full recompute instead of delta
// propagation. 0 keeps the default (0.3); negative disables incremental
// maintenance. Only meaningful with Materialize.
func WithCrossover(x float64) Option {
	return func(c *config, _ *Database) error { c.crossover = x; return nil }
}

// WithoutDemandRewrite disables the demand (magic-set) rewrite for
// this compilation: bound queries then evaluate the full fixpoint and
// filter afterwards, as before the rewrite existed (ablation and A/B
// benchmarking). Like WithParam, it is a compile-time option, fixed at
// Prepare.
func WithoutDemandRewrite() Option {
	return func(c *config, _ *Database) error { c.noDemand = true; return nil }
}

// WithParam binds a $parameter (int, int64, float64 or string).
func WithParam(name string, value any) Option {
	return func(c *config, db *Database) error {
		var p physical.Param
		switch x := value.(type) {
		case int:
			p = physical.Param{Value: storage.IntVal(int64(x)), Type: storage.TInt}
		case int64:
			p = physical.Param{Value: storage.IntVal(x), Type: storage.TInt}
		case float64:
			p = physical.Param{Value: storage.FloatVal(x), Type: storage.TFloat}
		case string:
			p = physical.Param{Value: storage.SymVal(db.syms.Intern(x)), Type: storage.TSym}
		default:
			return fmt.Errorf("dcdatalog: unsupported parameter type %T for $%s", value, name)
		}
		c.params[name] = p
		return nil
	}
}

// ErrBudgetExceeded is returned (alongside the partial Result) when a
// WithMaxTuples or WithMaxIterations budget fires with deltas still
// pending: the fixpoint was NOT reached and the result is truncated.
// Match with errors.Is.
var ErrBudgetExceeded = engine.ErrBudgetExceeded

// Stats summarizes an execution.
type Stats = engine.Stats

// Result is a query's materialized output.
type Result struct {
	db       *Database
	analysis *pcg.Analysis
	res      *engine.Result
	// demandRewritten mirrors Prepared.DemandRewritten for results
	// obtained through Query.
	demandRewritten bool
	// demandEst/demandActual pair the cost model's estimated base
	// derivations with the engine's actual counts (see
	// demandCardinalities).
	demandEst    int64
	demandActual int64
}

// DemandRewritten reports whether the executed program had the demand
// (magic-set) rewrite applied.
func (r *Result) DemandRewritten() bool { return r.demandRewritten }

// DemandCardinalities returns the planner's estimated base-rule
// derivations and the engine's matching actual derived-tuple count,
// summed over the strata where the cost model had statistics. Both are
// zero when no stratum was estimable.
func (r *Result) DemandCardinalities() (est, actual int64) {
	return r.demandEst, r.demandActual
}

// Relation returns the raw tuples of a derived relation.
func (r *Result) Relation(name string) []Tuple { return r.res.Relations[name] }

// Rows decodes a derived relation into Go values per its schema.
func (r *Result) Rows(name string) [][]any {
	schema := r.analysis.Schemas[name]
	tuples := r.res.Relations[name]
	out := make([][]any, len(tuples))
	for i, t := range tuples {
		row := make([]any, len(t))
		for j, v := range t {
			switch schema.ColType(j) {
			case storage.TFloat:
				row[j] = v.Float()
			case storage.TSym:
				if s, ok := r.db.syms.Lookup(v.Sym()); ok {
					row[j] = s
				} else {
					row[j] = v.Sym()
				}
			default:
				row[j] = v.Int()
			}
		}
		out[i] = row
	}
	return out
}

// Len returns the cardinality of a derived relation.
func (r *Result) Len(name string) int { return len(r.res.Relations[name]) }

// Stats returns execution statistics.
func (r *Result) Stats() Stats { return r.res.Stats }

// compile runs the full front end for a query.
func (db *Database) compile(src string, opts []Option) (*physical.Program, *pcg.Analysis, *config, error) {
	c := &config{params: make(map[string]physical.Param)}
	c.opts.Strategy = coord.DWS // the paper's strategy is the default
	for _, o := range opts {
		if err := o(c, db); err != nil {
			return nil, nil, nil, err
		}
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, nil, nil, err
	}
	paramTypes := make(map[string]storage.Type, len(c.params))
	for k, p := range c.params {
		paramTypes[k] = p.Type
	}
	analysis, err := pcg.Analyze(prog, db.schemas, paramTypes)
	if err != nil {
		return nil, nil, nil, err
	}
	// Demand rewrite: when the program's recursive predicates are only
	// consumed through constant/$param-bound occurrences, guard the
	// recursion with magic predicates seeded from the bound values. The
	// rewritten program is plain Datalog and re-analyzes through pcg;
	// if that unexpectedly fails, fall back to the original program
	// rather than failing the query.
	if !c.noDemand {
		c.demand = rewrite.Apply(analysis)
		if c.demand.Rewritten() {
			ra, rerr := pcg.Analyze(c.demand.Program, db.schemas, paramTypes)
			if rerr != nil {
				c.demand.Program = nil
				c.demand.Declined = append(c.demand.Declined,
					fmt.Sprintf("rewritten program failed analysis: %v", rerr))
			} else {
				analysis = ra
			}
		}
	}
	bopts := []plan.BuildOption{plan.WithStats(db.sharedBase())}
	if c.broadcast {
		bopts = append(bopts, plan.WithForceBroadcast())
	}
	logical, err := plan.Build(analysis, bopts...)
	if err != nil {
		return nil, nil, nil, err
	}
	phys, err := physical.Compile(logical, c.params, db.syms)
	if err != nil {
		return nil, nil, nil, err
	}
	return phys, analysis, c, nil
}

// Prepared is a compiled program bound to its database: the parse,
// safety/stratification analysis, logical plan and physical compile
// have all run once, and the immutable physical.Program can be
// executed many times — concurrently — against the database's frozen
// relations. Parameters and replication strategy are baked in at
// Prepare; execution options (workers, strategy, budgets, timeouts)
// vary per Exec.
type Prepared struct {
	db        *Database
	phys      *physical.Program
	analysis  *pcg.Analysis
	opts      engine.Options
	params    map[string]physical.Param
	broadcast bool
	noDemand  bool
	demand    *rewrite.Result
}

// DemandRewritten reports whether Prepare applied the demand
// (magic-set) rewrite: the program's recursive cliques are guarded by
// generated magic predicates and derive only the demanded subset.
// Restricted relations (see DemandInfo) then hold that subset rather
// than the full fixpoint.
func (p *Prepared) DemandRewritten() bool {
	return p.demand != nil && p.demand.Rewritten()
}

// DemandInfo describes the demand rewrite's outcome: the generated
// magic predicates, the predicates whose extent is restricted to the
// demanded subset, and the per-clique reasons the rewrite was declined
// (all empty when compiled with WithoutDemandRewrite).
func (p *Prepared) DemandInfo() (magic, restricted, declined []string) {
	if p.demand == nil {
		return nil, nil, nil
	}
	for r := range p.demand.Restricted {
		restricted = append(restricted, r)
	}
	sort.Strings(restricted)
	return p.demand.Magic, restricted, p.demand.Declined
}

// Prepare compiles a program once for repeated execution. The returned
// Prepared is safe for concurrent Exec calls, including concurrent
// Insert/Delete mutations: each Exec captures the current prepared-base
// snapshot, and single-relation mutations invalidate only that
// relation's memoized indexes (the rest keep serving cache hits).
func (db *Database) Prepare(src string, opts ...Option) (*Prepared, error) {
	phys, analysis, c, err := db.compile(src, opts)
	if err != nil {
		return nil, err
	}
	db.sharedBase() // snapshot eagerly so Exec pays only index builds
	return &Prepared{
		db:        db,
		phys:      phys,
		analysis:  analysis,
		opts:      c.opts,
		params:    c.params,
		broadcast: c.broadcast,
		noDemand:  c.noDemand,
		demand:    c.demand,
	}, nil
}

// Exec runs the prepared program. Execution options may override the
// ones given at Prepare; compile-time options (WithParam,
// WithBroadcastReplication) are baked into the physical program and
// changing them here is an error — re-prepare instead. On budget
// truncation Exec returns the partial Result together with an error
// matching ErrBudgetExceeded; on context cancellation it returns a nil
// Result and an error matching ctx.Err().
func (p *Prepared) Exec(ctx context.Context, opts ...Option) (*Result, error) {
	c := &config{opts: p.opts, params: maps.Clone(p.params), broadcast: p.broadcast, noDemand: p.noDemand}
	for _, o := range opts {
		if err := o(c, p.db); err != nil {
			return nil, err
		}
	}
	if c.broadcast != p.broadcast || c.noDemand != p.noDemand || !paramsEqual(c.params, p.params) {
		return nil, fmt.Errorf("dcdatalog: parameters, replication and the demand rewrite are fixed at Prepare; re-prepare to change them")
	}
	c.opts.Base = p.db.sharedBase()
	res, err := engine.RunContext(ctx, p.phys, p.db.snapshotData(), c.opts)
	if res == nil {
		return nil, err
	}
	r := &Result{db: p.db, analysis: p.analysis, res: res, demandRewritten: p.DemandRewritten()}
	r.demandEst, r.demandActual = demandCardinalities(p.phys.Plan, res.Stats)
	return r, err
}

// demandCardinalities pairs the planner's estimated base derivations
// with the engine's actual derived-tuple counts, summed over the
// non-recursive strata where the cost model produced an estimate (the
// engine's per-stratum counter includes recursive derivations, so
// recursive strata are not comparable).
func demandCardinalities(lp *plan.Plan, stats engine.Stats) (est, actual int64) {
	for i, sp := range lp.Strata {
		if sp.EstBaseDerived < 0 || sp.Stratum.Recursive || i >= len(stats.Strata) {
			continue
		}
		est += sp.EstBaseDerived
		actual += stats.Strata[i].TuplesDerived
	}
	return est, actual
}

func paramsEqual(a, b map[string]physical.Param) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Query parses, plans and executes a program against the database.
func (db *Database) Query(src string, opts ...Option) (*Result, error) {
	return db.QueryContext(context.Background(), src, opts...)
}

// QueryContext is Query with cancellation: when ctx is canceled or
// its deadline passes, the parallel evaluation aborts mid-fixpoint —
// parked workers wake, gated workers bail, Global-strategy barriers
// release — and the call returns an error matching ctx.Err() (via
// errors.Is) instead of hanging on a diverging recursion.
func (db *Database) QueryContext(ctx context.Context, src string, opts ...Option) (*Result, error) {
	p, err := db.Prepare(src, opts...)
	if err != nil {
		return nil, err
	}
	return p.Exec(ctx)
}

// RefreshStats describes one materialized-view refresh (see
// internal/ivm).
type RefreshStats = ivm.RefreshStats

// ViewStats are a materialized view's cumulative refresh counters.
type ViewStats = ivm.Stats

// View is a registered materialized view: a program whose IDB fixpoint
// the database keeps warm across Insert/Delete mutations. Mutations of
// the view's extensional relations queue automatically; Refresh applies
// them — incrementally when the batch is small and the program is in
// the maintainable fragment, by full recompute otherwise.
type View struct {
	db   *Database
	name string
	deps map[string]bool
	v    *ivm.View
}

// Materialize compiles a program, runs it to fixpoint, and registers
// the result as a named materialized view. Execution options (workers,
// strategy, WithCrossover, ...) are baked in and used by every refresh.
func (db *Database) Materialize(name, src string, opts ...Option) (*View, error) {
	return db.MaterializeContext(context.Background(), name, src, opts...)
}

// MaterializeContext is Materialize with cancellation of the initial
// fixpoint computation.
func (db *Database) MaterializeContext(ctx context.Context, name, src string, opts ...Option) (*View, error) {
	c := &config{params: make(map[string]physical.Param)}
	c.opts.Strategy = coord.DWS
	for _, o := range opts {
		if err := o(c, db); err != nil {
			return nil, err
		}
	}
	if c.broadcast {
		return nil, fmt.Errorf("dcdatalog: broadcast replication is not supported for materialized views")
	}
	db.mu.RLock()
	if _, dup := db.views[name]; dup {
		db.mu.RUnlock()
		return nil, fmt.Errorf("dcdatalog: view %q already materialized", name)
	}
	schemas := maps.Clone(db.schemas)
	db.mu.RUnlock()
	iv, err := ivm.New(ctx, ivm.Config{
		Name:      name,
		Source:    src,
		Schemas:   schemas,
		Syms:      db.syms,
		Params:    c.params,
		Opts:      c.opts,
		Crossover: c.crossover,
	}, db.snapshotData())
	if err != nil {
		return nil, err
	}
	v := &View{db: db, name: name, v: iv, deps: make(map[string]bool)}
	for _, rel := range iv.EDBRelations() {
		v.deps[rel] = true
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.views[name]; dup {
		return nil, fmt.Errorf("dcdatalog: view %q already materialized", name)
	}
	db.views[name] = v
	return v, nil
}

// View returns a registered materialized view, nil when unknown.
func (db *Database) View(name string) *View {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.views[name]
}

// Views lists the registered materialized views, sorted by name.
func (db *Database) Views() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.views))
	for name := range db.views {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DropView unregisters a materialized view. Pending mutations are
// discarded with it.
func (db *Database) DropView(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.views[name]; !ok {
		return false
	}
	delete(db.views, name)
	return true
}

// Name returns the view's registered name.
func (v *View) Name() string { return v.name }

// Refresh brings the view up to date with every mutation applied since
// the previous refresh and reports how (see RefreshStats.Mode).
func (v *View) Refresh(ctx context.Context) (RefreshStats, error) {
	return v.v.Refresh(ctx)
}

// Stats returns the view's cumulative refresh counters.
func (v *View) Stats() ViewStats { return v.v.Stats() }

// Relation returns the raw maintained tuples of a derived relation.
func (v *View) Relation(pred string) []Tuple { return v.v.Relation(pred) }

// Relations lists the view's derived relations, sorted.
func (v *View) Relations() []string { return v.v.Relations() }

// Rows decodes a maintained relation into Go values per its schema.
func (v *View) Rows(pred string) [][]any {
	schema := v.v.Schema(pred)
	tuples := v.v.Relation(pred)
	out := make([][]any, len(tuples))
	for i, t := range tuples {
		row := make([]any, len(t))
		for j, val := range t {
			switch schema.ColType(j) {
			case storage.TFloat:
				row[j] = val.Float()
			case storage.TSym:
				if s, ok := v.db.syms.Lookup(val.Sym()); ok {
					row[j] = s
				} else {
					row[j] = val.Sym()
				}
			default:
				row[j] = val.Int()
			}
		}
		out[i] = row
	}
	return out
}

// Explain returns the logical plan and AND/OR tree of a program
// without executing it.
func (db *Database) Explain(src string, opts ...Option) (string, error) {
	phys, analysis, c, err := db.compile(src, opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if c.demand != nil {
		if c.demand.Rewritten() {
			fmt.Fprintf(&b, "demand rewrite: magic predicates %s\n", strings.Join(c.demand.Magic, ", "))
		} else if len(c.demand.Declined) > 0 {
			fmt.Fprintf(&b, "demand rewrite declined: %s\n", strings.Join(c.demand.Declined, "; "))
		}
	}
	b.WriteString(phys.Plan.Explain())
	for _, s := range analysis.Strata {
		for _, p := range s.Preds {
			fmt.Fprintf(&b, "\nAND/OR tree for %s:\n%s", p, analysis.AndOrTree(p))
		}
	}
	return b.String(), nil
}
