// Package dcdatalog is a parallel Datalog engine for shared-memory
// multicore machines, reproducing DCDatalog (Wu, Wang, Zaniolo —
// "Optimizing Parallel Recursive Datalog Evaluation on Multicore
// Machines", SIGMOD 2022).
//
// Programs are sets of rules with recursion, stratified negation and
// monotone aggregates in recursion (min, max, count, and the keyed sum
// of PageRank). Evaluation is parallel semi-naive over hash-partitioned
// worker goroutines exchanging deltas through single-producer
// single-consumer rings, coordinated by the paper's Dynamic
// Weight-based Strategy (default) or the Global/SSP baselines.
//
// Quick start:
//
//	db := dcdatalog.NewDatabase()
//	db.MustDeclare("arc", dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int))
//	db.MustLoad("arc", [][]any{{1, 2}, {2, 3}})
//	res, err := db.Query(`
//		tc(X, Y) :- arc(X, Y).
//		tc(X, Y) :- tc(X, Z), arc(Z, Y).
//	`)
//	rows := res.Rows("tc") // [[1 2] [1 3] [2 3]]
package dcdatalog

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"maps"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/pcg"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Type is a column type.
type Type = storage.Type

// Column types.
const (
	// Int is a 64-bit signed integer column.
	Int = storage.TInt
	// Float is a 64-bit IEEE-754 column.
	Float = storage.TFloat
	// Sym is an interned string column.
	Sym = storage.TSym
)

// Tuple is one row of a relation (raw 64-bit values; see Result.Rows
// for decoded access).
type Tuple = storage.Tuple

// Column describes one attribute of a relation.
type Column = storage.Column

// Col builds a column descriptor.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Strategy selects the parallel coordination scheme.
type Strategy = coord.Kind

// Coordination strategies.
const (
	// Global coordinates with a barrier after every global iteration
	// (the DeALS-MC scheme).
	Global = coord.Global
	// SSP bounds staleness by a fixed slack s.
	SSP = coord.SSP
	// DWS is the paper's dynamic weight-based strategy (default).
	DWS = coord.DWS
)

// Database holds extensional relations and interned symbols.
type Database struct {
	syms    *storage.SymbolTable
	schemas map[string]*storage.Schema
	data    map[string][]storage.Tuple

	// The shared prepared-base plane: one immutable snapshot of the
	// loaded relations plus a memoized per-lookup-signature index
	// cache, shared by every Prepared/Query on this database. version
	// bumps on every load so a stale snapshot is rebuilt rather than
	// served.
	baseMu      sync.Mutex
	version     int64
	base        *engine.PreparedBase
	baseVersion int64
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		syms:    storage.NewSymbolTable(),
		schemas: make(map[string]*storage.Schema),
		data:    make(map[string][]storage.Tuple),
	}
}

// dirty records a mutation of the loaded relations, invalidating the
// current prepared-base snapshot.
func (db *Database) dirty() {
	db.baseMu.Lock()
	db.version++
	db.baseMu.Unlock()
}

// sharedBase returns the database's prepared base, (re)snapshotting if
// relations were loaded since the last call. The snapshot copies slice
// headers only; building indexes is deferred to (and memoized across)
// the runs that need them.
func (db *Database) sharedBase() *engine.PreparedBase {
	db.baseMu.Lock()
	defer db.baseMu.Unlock()
	if db.base == nil || db.baseVersion != db.version {
		db.base = engine.NewPreparedBase(db.schemas, db.data)
		db.baseVersion = db.version
	}
	return db.base
}

// Prewarm snapshots the current relations into the shared
// prepared-base plane eagerly, so the first query pays only index
// builds, not snapshotting. Loading more data after Prewarm simply
// invalidates the snapshot; long-lived services (the dcserve dataset
// registry) call this once at registration time.
func (db *Database) Prewarm() { db.sharedBase() }

// BaseStats reports the shared EDB index cache counters: how many
// per-run index requests were served from the cache (Hits), how many
// performed a build (Misses), and how many distinct indexes are
// resident.
type BaseStats = engine.BaseStats

// BaseStats returns the database's current index-cache counters.
func (db *Database) BaseStats() BaseStats { return db.sharedBase().Stats() }

// Declare registers an extensional relation's schema.
func (db *Database) Declare(name string, cols ...Column) error {
	if len(cols) == 0 {
		return fmt.Errorf("dcdatalog: relation %q needs at least one column", name)
	}
	if _, ok := db.schemas[name]; ok {
		return fmt.Errorf("dcdatalog: relation %q already declared", name)
	}
	db.schemas[name] = storage.NewSchema(name, cols...)
	return nil
}

// MustDeclare is Declare that panics on error.
func (db *Database) MustDeclare(name string, cols ...Column) {
	if err := db.Declare(name, cols...); err != nil {
		panic(err)
	}
}

// DeclareSchema registers a prebuilt schema (as produced by
// internal/queries).
func (db *Database) DeclareSchema(s *storage.Schema) error {
	if _, ok := db.schemas[s.Name]; ok {
		return fmt.Errorf("dcdatalog: relation %q already declared", s.Name)
	}
	db.schemas[s.Name] = s
	return nil
}

// Load appends rows to a declared relation, converting Go values
// (int/int64/float64/string) per the schema.
func (db *Database) Load(name string, rows [][]any) error {
	schema, ok := db.schemas[name]
	if !ok {
		return fmt.Errorf("dcdatalog: relation %q is not declared", name)
	}
	for _, row := range rows {
		if len(row) != schema.Arity() {
			return fmt.Errorf("dcdatalog: %s expects %d columns, got %d", name, schema.Arity(), len(row))
		}
		t := make(storage.Tuple, len(row))
		for i, v := range row {
			val, err := db.encode(v, schema.ColType(i))
			if err != nil {
				return fmt.Errorf("dcdatalog: %s column %d: %v", name, i+1, err)
			}
			t[i] = val
		}
		db.data[name] = append(db.data[name], t)
	}
	db.dirty()
	return nil
}

// MustLoad is Load that panics on error.
func (db *Database) MustLoad(name string, rows [][]any) {
	if err := db.Load(name, rows); err != nil {
		panic(err)
	}
}

// LoadTuples appends pre-encoded tuples (bulk path for generators).
func (db *Database) LoadTuples(name string, tuples []Tuple) error {
	schema, ok := db.schemas[name]
	if !ok {
		return fmt.Errorf("dcdatalog: relation %q is not declared", name)
	}
	for _, t := range tuples {
		if len(t) != schema.Arity() {
			return fmt.Errorf("dcdatalog: %s expects arity %d, got %d", name, schema.Arity(), len(t))
		}
	}
	db.data[name] = append(db.data[name], tuples...)
	db.dirty()
	return nil
}

// LoadTSV reads tab- or whitespace-separated rows into a declared
// relation.
func (db *Database) LoadTSV(name string, r io.Reader) error {
	schema, ok := db.schemas[name]
	if !ok {
		return fmt.Errorf("dcdatalog: relation %q is not declared", name)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != schema.Arity() {
			return fmt.Errorf("dcdatalog: %s line %d: %d fields, want %d", name, line, len(fields), schema.Arity())
		}
		t := make(storage.Tuple, len(fields))
		for i, f := range fields {
			switch schema.ColType(i) {
			case storage.TInt:
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return fmt.Errorf("dcdatalog: %s line %d: %v", name, line, err)
				}
				t[i] = storage.IntVal(v)
			case storage.TFloat:
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return fmt.Errorf("dcdatalog: %s line %d: %v", name, line, err)
				}
				t[i] = storage.FloatVal(v)
			default:
				t[i] = storage.SymVal(db.syms.Intern(f))
			}
		}
		db.data[name] = append(db.data[name], t)
	}
	db.dirty()
	return sc.Err()
}

// Relation returns the loaded tuples of an extensional relation.
func (db *Database) Relation(name string) []Tuple { return db.data[name] }

func (db *Database) encode(v any, t Type) (storage.Value, error) {
	switch x := v.(type) {
	case int:
		if t == storage.TFloat {
			return storage.FloatVal(float64(x)), nil
		}
		return storage.IntVal(int64(x)), nil
	case int64:
		if t == storage.TFloat {
			return storage.FloatVal(float64(x)), nil
		}
		return storage.IntVal(x), nil
	case float64:
		if t != storage.TFloat {
			return 0, fmt.Errorf("float value for %s column", t)
		}
		return storage.FloatVal(x), nil
	case string:
		if t != storage.TSym {
			return 0, fmt.Errorf("string value for %s column", t)
		}
		return storage.SymVal(db.syms.Intern(x)), nil
	default:
		return 0, fmt.Errorf("unsupported value type %T", v)
	}
}

// config collects query options.
type config struct {
	opts      engine.Options
	params    map[string]physical.Param
	broadcast bool
}

// Option configures one query execution.
type Option func(*config, *Database) error

// WithWorkers sets the number of parallel workers.
func WithWorkers(n int) Option {
	return func(c *config, _ *Database) error { c.opts.Workers = n; return nil }
}

// WithStrategy selects the coordination strategy.
func WithStrategy(s Strategy) Option {
	return func(c *config, _ *Database) error { c.opts.Strategy = s; return nil }
}

// WithSlack sets the SSP staleness bound s.
func WithSlack(s int) Option {
	return func(c *config, _ *Database) error { c.opts.Slack = s; return nil }
}

// WithMaxWait caps DWS's per-decision wait budget τ.
func WithMaxWait(d time.Duration) Option {
	return func(c *config, _ *Database) error { c.opts.MaxWait = d; return nil }
}

// WithBatchSize sets the tuple count per exchanged message.
func WithBatchSize(n int) Option {
	return func(c *config, _ *Database) error { c.opts.BatchSize = n; return nil }
}

// WithEpsilon sets the convergence threshold for float sum aggregates.
func WithEpsilon(eps float64) Option {
	return func(c *config, _ *Database) error { c.opts.Epsilon = eps; return nil }
}

// WithMaxIterations bounds local iterations per worker (0 = fixpoint).
func WithMaxIterations(n int) Option {
	return func(c *config, _ *Database) error { c.opts.MaxLocalIters = n; return nil }
}

// WithMaxTuples bounds the total tuples exchanged per stratum (0 =
// unbounded); exceeding the budget stops evaluation short of the
// fixpoint and marks the stratum capped, the out-of-memory analogue
// for diverging programs.
func WithMaxTuples(n int64) Option {
	return func(c *config, _ *Database) error { c.opts.MaxTuples = n; return nil }
}

// WithoutExistCache disables the existence-check cache (ablation).
func WithoutExistCache() Option {
	return func(c *config, _ *Database) error { c.opts.NoExistCache = true; return nil }
}

// WithoutIndexAgg disables index-assisted aggregate merges (ablation).
func WithoutIndexAgg() Option {
	return func(c *config, _ *Database) error { c.opts.NoIndexAgg = true; return nil }
}

// WithoutPartialAgg disables partial aggregation in Distribute
// (ablation).
func WithoutPartialAgg() Option {
	return func(c *config, _ *Database) error { c.opts.NoPartialAgg = true; return nil }
}

// WithoutStealing disables morsel-driven work stealing: every worker
// evaluates only the delta it gathered, as before the steal plane
// existed (ablation and differential testing; skewed workloads at
// multiple workers lose their load balancing).
func WithoutStealing() Option {
	return func(c *config, _ *Database) error { c.opts.StealOff = true; return nil }
}

// BloomMode selects when join probes consult the Bloom guards built
// beside the base hash indexes: BloomAuto (default — anti-joins
// always, joins adaptively on low hit rates), BloomOff, BloomForce.
type BloomMode = engine.BloomMode

// Re-exported Bloom-guard policies.
const (
	BloomAuto  = engine.BloomAuto
	BloomOff   = engine.BloomOff
	BloomForce = engine.BloomForce
)

// WithBloomGuards sets the Bloom-guard policy for join and anti-join
// probes (ablation and differential testing; the default BloomAuto is
// right for production).
func WithBloomGuards(m BloomMode) Option {
	return func(c *config, _ *Database) error { c.opts.Bloom = m; return nil }
}

// WithProbeGroup sets G, the number of independent probe chains each
// worker keeps in flight in the staged join pipeline (0 = default 16,
// 1 = serial probes, clamped at 32).
func WithProbeGroup(g int) Option {
	return func(c *config, _ *Database) error { c.opts.ProbeGroup = g; return nil }
}

// WithBroadcastReplication forces broadcast replication of recursive
// relations instead of aligned partitioning — the APSP strategy the
// paper attributes to SociaLite/DDlog, kept as a comparison baseline.
func WithBroadcastReplication() Option {
	return func(c *config, _ *Database) error { c.broadcast = true; return nil }
}

// WithParam binds a $parameter (int, int64, float64 or string).
func WithParam(name string, value any) Option {
	return func(c *config, db *Database) error {
		var p physical.Param
		switch x := value.(type) {
		case int:
			p = physical.Param{Value: storage.IntVal(int64(x)), Type: storage.TInt}
		case int64:
			p = physical.Param{Value: storage.IntVal(x), Type: storage.TInt}
		case float64:
			p = physical.Param{Value: storage.FloatVal(x), Type: storage.TFloat}
		case string:
			p = physical.Param{Value: storage.SymVal(db.syms.Intern(x)), Type: storage.TSym}
		default:
			return fmt.Errorf("dcdatalog: unsupported parameter type %T for $%s", value, name)
		}
		c.params[name] = p
		return nil
	}
}

// ErrBudgetExceeded is returned (alongside the partial Result) when a
// WithMaxTuples or WithMaxIterations budget fires with deltas still
// pending: the fixpoint was NOT reached and the result is truncated.
// Match with errors.Is.
var ErrBudgetExceeded = engine.ErrBudgetExceeded

// Stats summarizes an execution.
type Stats = engine.Stats

// Result is a query's materialized output.
type Result struct {
	db       *Database
	analysis *pcg.Analysis
	res      *engine.Result
}

// Relation returns the raw tuples of a derived relation.
func (r *Result) Relation(name string) []Tuple { return r.res.Relations[name] }

// Rows decodes a derived relation into Go values per its schema.
func (r *Result) Rows(name string) [][]any {
	schema := r.analysis.Schemas[name]
	tuples := r.res.Relations[name]
	out := make([][]any, len(tuples))
	for i, t := range tuples {
		row := make([]any, len(t))
		for j, v := range t {
			switch schema.ColType(j) {
			case storage.TFloat:
				row[j] = v.Float()
			case storage.TSym:
				if s, ok := r.db.syms.Lookup(v.Sym()); ok {
					row[j] = s
				} else {
					row[j] = v.Sym()
				}
			default:
				row[j] = v.Int()
			}
		}
		out[i] = row
	}
	return out
}

// Len returns the cardinality of a derived relation.
func (r *Result) Len(name string) int { return len(r.res.Relations[name]) }

// Stats returns execution statistics.
func (r *Result) Stats() Stats { return r.res.Stats }

// compile runs the full front end for a query.
func (db *Database) compile(src string, opts []Option) (*physical.Program, *pcg.Analysis, *config, error) {
	c := &config{params: make(map[string]physical.Param)}
	c.opts.Strategy = coord.DWS // the paper's strategy is the default
	for _, o := range opts {
		if err := o(c, db); err != nil {
			return nil, nil, nil, err
		}
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, nil, nil, err
	}
	paramTypes := make(map[string]storage.Type, len(c.params))
	for k, p := range c.params {
		paramTypes[k] = p.Type
	}
	analysis, err := pcg.Analyze(prog, db.schemas, paramTypes)
	if err != nil {
		return nil, nil, nil, err
	}
	var bopts []plan.BuildOption
	if c.broadcast {
		bopts = append(bopts, plan.WithForceBroadcast())
	}
	logical, err := plan.Build(analysis, bopts...)
	if err != nil {
		return nil, nil, nil, err
	}
	phys, err := physical.Compile(logical, c.params, db.syms)
	if err != nil {
		return nil, nil, nil, err
	}
	return phys, analysis, c, nil
}

// Prepared is a compiled program bound to its database: the parse,
// safety/stratification analysis, logical plan and physical compile
// have all run once, and the immutable physical.Program can be
// executed many times — concurrently — against the database's frozen
// relations. Parameters and replication strategy are baked in at
// Prepare; execution options (workers, strategy, budgets, timeouts)
// vary per Exec.
type Prepared struct {
	db        *Database
	phys      *physical.Program
	analysis  *pcg.Analysis
	opts      engine.Options
	params    map[string]physical.Param
	broadcast bool
	// base is the database's prepared-base snapshot captured at
	// Prepare: every Exec attaches the same immutable tuple slices and
	// memoized hash indexes, so only the first execution (per lookup
	// signature) pays an index build.
	base *engine.PreparedBase
}

// Prepare compiles a program once for repeated execution. The returned
// Prepared is safe for concurrent Exec calls as long as the database's
// relations are not loaded into concurrently (load everything, then
// query — the dcserve dataset registry enforces this by construction).
func (db *Database) Prepare(src string, opts ...Option) (*Prepared, error) {
	phys, analysis, c, err := db.compile(src, opts)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		db:        db,
		phys:      phys,
		analysis:  analysis,
		opts:      c.opts,
		params:    c.params,
		broadcast: c.broadcast,
		base:      db.sharedBase(),
	}, nil
}

// Exec runs the prepared program. Execution options may override the
// ones given at Prepare; compile-time options (WithParam,
// WithBroadcastReplication) are baked into the physical program and
// changing them here is an error — re-prepare instead. On budget
// truncation Exec returns the partial Result together with an error
// matching ErrBudgetExceeded; on context cancellation it returns a nil
// Result and an error matching ctx.Err().
func (p *Prepared) Exec(ctx context.Context, opts ...Option) (*Result, error) {
	c := &config{opts: p.opts, params: maps.Clone(p.params), broadcast: p.broadcast}
	for _, o := range opts {
		if err := o(c, p.db); err != nil {
			return nil, err
		}
	}
	if c.broadcast != p.broadcast || !paramsEqual(c.params, p.params) {
		return nil, fmt.Errorf("dcdatalog: parameters and replication are fixed at Prepare; re-prepare to change them")
	}
	c.opts.Base = p.base
	res, err := engine.RunContext(ctx, p.phys, p.db.data, c.opts)
	if res == nil {
		return nil, err
	}
	return &Result{db: p.db, analysis: p.analysis, res: res}, err
}

func paramsEqual(a, b map[string]physical.Param) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Query parses, plans and executes a program against the database.
func (db *Database) Query(src string, opts ...Option) (*Result, error) {
	return db.QueryContext(context.Background(), src, opts...)
}

// QueryContext is Query with cancellation: when ctx is canceled or
// its deadline passes, the parallel evaluation aborts mid-fixpoint —
// parked workers wake, gated workers bail, Global-strategy barriers
// release — and the call returns an error matching ctx.Err() (via
// errors.Is) instead of hanging on a diverging recursion.
func (db *Database) QueryContext(ctx context.Context, src string, opts ...Option) (*Result, error) {
	p, err := db.Prepare(src, opts...)
	if err != nil {
		return nil, err
	}
	return p.Exec(ctx)
}

// Explain returns the logical plan and AND/OR tree of a program
// without executing it.
func (db *Database) Explain(src string, opts ...Option) (string, error) {
	phys, analysis, _, err := db.compile(src, opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(phys.Plan.Explain())
	for _, s := range analysis.Strata {
		for _, p := range s.Preds {
			fmt.Fprintf(&b, "\nAND/OR tree for %s:\n%s", p, analysis.AndOrTree(p))
		}
	}
	return b.String(), nil
}
