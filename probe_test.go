package dcdatalog

import (
	"context"
	"testing"

	"repro/internal/queries"
)

// TestBloomDifferentialAllQueries runs every paper query under each
// coordination strategy with the Bloom guards forced on and forced
// off — cold, and forced-on again through the warm prepared-base path
// (Prepare + two Execs, so the second Exec probes memoized indexes and
// their filters) — and requires identical results throughout.
// Float-valued queries (PR) compare within the differential suite's
// relative tolerance.
func TestBloomDifferentialAllQueries(t *testing.T) {
	strategies := []struct {
		name string
		s    Strategy
	}{{"global", Global}, {"ssp", SSP}, {"dws", DWS}}
	for _, q := range queries.All() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			load, params := paperQueryData(t, q)
			for _, st := range strategies {
				st := st
				t.Run(st.name, func(t *testing.T) {
					base := append([]Option{WithWorkers(3), WithStrategy(st.s)}, params...)

					off := NewDatabase()
					load(off)
					offRes, err := off.Query(q.Source, append(base, WithBloomGuards(BloomOff))...)
					if err != nil {
						t.Fatal(err)
					}

					on := NewDatabase()
					load(on)
					onRes, err := on.Query(q.Source, append(base, WithBloomGuards(BloomForce))...)
					if err != nil {
						t.Fatal(err)
					}
					assertSameRows(t, onRes.Rows(q.Output), offRes.Rows(q.Output))

					// Warm path: the second Exec attaches cached indexes
					// (and their Bloom filters) from the shared base.
					warm := NewDatabase()
					load(warm)
					prep, err := warm.Prepare(q.Source, append(base, WithBloomGuards(BloomForce))...)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := prep.Exec(context.Background()); err != nil {
						t.Fatal(err)
					}
					warmRes, err := prep.Exec(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					assertSameRows(t, warmRes.Rows(q.Output), offRes.Rows(q.Output))
				})
			}
		})
	}
}

// TestProbeStatsExposed checks the probe counters ride through the
// public Stats surface and that forcing the guards registers checks.
func TestProbeStatsExposed(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("arc", Col("x", Int), Col("y", Int))
	rows := make([][]any, 0, 64)
	for i := 0; i < 63; i++ {
		rows = append(rows, []any{i, i + 1})
	}
	db.MustLoad("arc", rows)
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Z) :- tc(X, Y), arc(Y, Z).
	`
	res, err := db.Query(src, WithWorkers(2), WithBloomGuards(BloomForce), WithProbeGroup(8))
	if err != nil {
		t.Fatal(err)
	}
	pc := res.Stats().Probe
	if pc.TagProbes == 0 || pc.KeyCompares == 0 {
		t.Fatalf("probe counters not populated: %+v", pc)
	}
	if pc.BloomChecks == 0 {
		t.Fatalf("forced bloom registered no checks: %+v", pc)
	}
}
