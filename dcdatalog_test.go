package dcdatalog

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"
)

func newTCDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	db.MustDeclare("arc", Col("x", Int), Col("y", Int))
	db.MustLoad("arc", [][]any{{1, 2}, {2, 3}, {3, 4}})
	return db
}

const tcProgram = `
	tc(X, Y) :- arc(X, Y).
	tc(X, Y) :- tc(X, Z), arc(Z, Y).
`

func TestQueryTC(t *testing.T) {
	db := newTCDB(t)
	res, err := db.Query(tcProgram, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len("tc") != 6 {
		t.Fatalf("tc size = %d, want 6", res.Len("tc"))
	}
	rows := res.Rows("tc")
	seen := map[[2]int64]bool{}
	for _, r := range rows {
		seen[[2]int64{r[0].(int64), r[1].(int64)}] = true
	}
	for _, want := range [][2]int64{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}} {
		if !seen[want] {
			t.Fatalf("missing %v in %v", want, rows)
		}
	}
}

func TestQueryAllStrategiesViaOptions(t *testing.T) {
	for _, s := range []Strategy{Global, SSP, DWS} {
		db := newTCDB(t)
		res, err := db.Query(tcProgram, WithStrategy(s), WithWorkers(3), WithSlack(2), WithBatchSize(4))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Len("tc") != 6 {
			t.Fatalf("%v: tc size = %d", s, res.Len("tc"))
		}
		if res.Stats().Strategy != s {
			t.Fatalf("stats strategy = %v", res.Stats().Strategy)
		}
	}
}

func TestQueryWithParams(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("warc", Col("x", Int), Col("y", Int), Col("w", Int))
	db.MustLoad("warc", [][]any{{0, 1, 5}, {1, 2, 3}, {0, 2, 10}})
	res, err := db.Query(`
		sp(To, min<C>) :- To = $start, C = 0.
		sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
	`, WithParam("start", 0))
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, r := range res.Rows("sp") {
		got[r[0].(int64)] = r[1].(int64)
	}
	if got[0] != 0 || got[1] != 5 || got[2] != 8 {
		t.Fatalf("sp = %v", got)
	}
}

func TestSymbolColumnsRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("parent", Col("p", Sym), Col("c", Sym))
	db.MustLoad("parent", [][]any{{"alice", "bob"}, {"bob", "carol"}})
	res, err := db.Query(`
		anc(X, Y) :- parent(X, Y).
		anc(X, Y) :- anc(X, Z), parent(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range res.Rows("anc") {
		got = append(got, r[0].(string)+">"+r[1].(string))
	}
	sort.Strings(got)
	want := []string{"alice>bob", "alice>carol", "bob>carol"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("anc = %v", got)
		}
	}
}

func TestLoadTSV(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("warc", Col("x", Int), Col("y", Int), Col("w", Float))
	err := db.LoadTSV("warc", strings.NewReader(`
		# comment
		1	2	0.5
		2	3	1.25
	`))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Relation("warc")) != 2 {
		t.Fatalf("warc = %v", db.Relation("warc"))
	}
	if got := db.Relation("warc")[1][2].Float(); got != 1.25 {
		t.Fatalf("weight = %g", got)
	}
	if err := db.LoadTSV("warc", strings.NewReader("1 2")); err == nil {
		t.Fatal("short row should fail")
	}
	if err := db.LoadTSV("warc", strings.NewReader("a b c")); err == nil {
		t.Fatal("non-numeric int should fail")
	}
	if err := db.LoadTSV("nope", strings.NewReader("")); err == nil {
		t.Fatal("undeclared relation should fail")
	}
}

func TestDeclareAndLoadErrors(t *testing.T) {
	db := NewDatabase()
	if err := db.Declare("r"); err == nil {
		t.Fatal("zero columns should fail")
	}
	db.MustDeclare("r", Col("x", Int))
	if err := db.Declare("r", Col("x", Int)); err == nil {
		t.Fatal("duplicate declaration should fail")
	}
	if err := db.Load("missing", [][]any{{1}}); err == nil {
		t.Fatal("loading undeclared relation should fail")
	}
	if err := db.Load("r", [][]any{{1, 2}}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if err := db.Load("r", [][]any{{"str"}}); err == nil {
		t.Fatal("string into int column should fail")
	}
	if err := db.Load("r", [][]any{{3.5}}); err == nil {
		t.Fatal("float into int column should fail")
	}
}

func TestQueryErrors(t *testing.T) {
	db := newTCDB(t)
	if _, err := db.Query(`tc(X, Y) :- `); err == nil {
		t.Fatal("syntax error should surface")
	}
	if _, err := db.Query(`p(X) :- unknown(X).`); err == nil {
		t.Fatal("unknown relation should surface")
	}
	if _, err := db.Query(`p(X) :- arc(X, Y), $p = 1.`); err == nil {
		t.Fatal("unbound parameter should surface")
	}
	if _, err := db.Query(tcProgram, WithParam("x", struct{}{})); err == nil {
		t.Fatal("bad parameter type should surface")
	}
}

func TestExplain(t *testing.T) {
	db := newTCDB(t)
	out, err := db.Explain(tcProgram)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stratum 0", "δtc", "AND/OR tree", "EDB arc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestAblationOptions(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("arc", Col("x", Int), Col("y", Int))
	db.MustLoad("arc", [][]any{{1, 2}, {2, 1}, {2, 3}, {3, 2}})
	src := `
		cc2(Y, min<Y>) :- arc(Y, _).
		cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
	`
	base, err := db.Query(src, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	abl, err := db.Query(src, WithWorkers(2), WithoutExistCache(), WithoutIndexAgg(), WithoutPartialAgg())
	if err != nil {
		t.Fatal(err)
	}
	if base.Len("cc2") != abl.Len("cc2") {
		t.Fatalf("ablation changed cardinality: %d vs %d", base.Len("cc2"), abl.Len("cc2"))
	}
}

func TestLoadTuplesBulk(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("arc", Col("x", Int), Col("y", Int))
	tuples := []Tuple{{1, 2}, {2, 3}}
	if err := db.LoadTuples("arc", tuples); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTuples("arc", []Tuple{{1}}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if err := db.LoadTuples("zzz", tuples); err == nil {
		t.Fatal("undeclared should fail")
	}
}

func TestWithMaxIterations(t *testing.T) {
	db := NewDatabase()
	res, err := db.Query(`
		num(X) :- X = 0.
		num(Y) :- num(X), Y = X + 1, Y < 100000.
	`, WithMaxIterations(10), WithWorkers(1))
	// Truncation is no longer silent: the capped run reports
	// ErrBudgetExceeded alongside the partial result.
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res == nil {
		t.Fatal("capped run must still return the partial result")
	}
	if res.Len("num") == 0 || res.Len("num") >= 100000 {
		t.Fatalf("num = %d", res.Len("num"))
	}
}

func TestQueryContextDeadline(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("arc", Col("x", Int), Col("y", Int))
	for i := 0; i < 8; i++ {
		db.MustLoad("arc", [][]any{{i, (i + 1) % 8}})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := db.QueryContext(ctx, `
		p(X, Z) :- arc(X, Y), Z = 0.
		p(Y, M) :- p(X, N), arc(X, Y), M = N + 1.
	`, WithWorkers(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatal("canceled query must not return a result")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline took %s to surface", elapsed)
	}
}

func TestPreparedReuse(t *testing.T) {
	db := newTCDB(t)
	p, err := db.Prepare(`
		out(Y) :- arc($src, Y).
	`, WithParam("src", 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := p.Exec(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Len("out") == 0 {
			t.Fatalf("run %d: no rows", i)
		}
	}
	// Exec-time options may tune execution but not recompile: changing
	// a parameter after Prepare is an error, not a silent rebind.
	if _, err := p.Exec(context.Background(), WithParam("src", 2)); err == nil {
		t.Fatal("changing a param at Exec must fail")
	}
	if _, err := p.Exec(context.Background(), WithWorkers(2)); err != nil {
		t.Fatalf("exec-time worker override: %v", err)
	}
}
