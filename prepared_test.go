package dcdatalog

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/datasets"
	"repro/internal/queries"
	"repro/internal/storage"
)

// paperQueryData builds a small deterministic EDB loader plus the
// required parameter options for one paper query.
func paperQueryData(t *testing.T, q queries.Query) (func(*Database), []Option) {
	t.Helper()
	seed := int64(5)
	edges := datasets.Gnp(100, 300, seed)
	declareAll := func(db *Database) {
		for _, s := range q.EDB {
			if err := db.DeclareSchema(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	switch q.Name {
	case "TC", "CC", "SG":
		return func(db *Database) {
			declareAll(db)
			if err := db.LoadTuples("arc", datasets.EdgeTuples(edges)); err != nil {
				t.Fatal(err)
			}
		}, nil
	case "SSSP", "APSP":
		w := datasets.Weight(edges, 100, seed)
		var opts []Option
		if q.Name == "SSSP" {
			opts = append(opts, WithParam("start", w[0].Src))
		}
		return func(db *Database) {
			declareAll(db)
			if err := db.LoadTuples("warc", datasets.WEdgeTuples(w)); err != nil {
				t.Fatal(err)
			}
		}, opts
	case "PR":
		deg := map[int64]int64{}
		verts := map[int64]bool{}
		for _, e := range edges {
			deg[e.Src]++
			verts[e.Src], verts[e.Dst] = true, true
		}
		tuples := make([]storage.Tuple, len(edges))
		for i, e := range edges {
			tuples[i] = storage.Tuple{storage.IntVal(e.Src), storage.IntVal(e.Dst), storage.FloatVal(float64(deg[e.Src]))}
		}
		vnum := float64(len(verts))
		return func(db *Database) {
			declareAll(db)
			if err := db.LoadTuples("matrix", tuples); err != nil {
				t.Fatal(err)
			}
		}, []Option{WithParam("alpha", 0.85), WithParam("vnum", vnum)}
	case "Attend":
		rng := rand.New(rand.NewSource(seed))
		var friends [][]any
		for i := 0; i < 200; i++ {
			friends = append(friends, []any{rng.Intn(30) + 1, rng.Intn(30) + 1})
		}
		return func(db *Database) {
			declareAll(db)
			db.MustLoad("organizer", [][]any{{1}, {2}, {3}})
			db.MustLoad("friend", friends)
		}, nil
	case "Delivery":
		bom := datasets.NTree(400, seed)
		return func(db *Database) {
			declareAll(db)
			if err := db.LoadTuples("assbl", bom.Assbl); err != nil {
				t.Fatal(err)
			}
			if err := db.LoadTuples("basic", bom.Basic); err != nil {
				t.Fatal(err)
			}
		}, nil
	}
	t.Fatalf("no data builder for query %s", q.Name)
	return nil, nil
}

// assertSameRows compares two decoded result sets. Rows are matched on
// their non-float columns (unique for every paper query: either the
// whole all-int row, or PageRank's vertex key); float columns compare
// within a relative tolerance, since parallel float summation makes
// sub-epsilon noise legitimate.
func assertSameRows(t *testing.T, got, want [][]any) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count diverged: %d vs %d", len(got), len(want))
	}
	key := func(r []any) string {
		s := ""
		for _, v := range r {
			if _, ok := v.(float64); ok {
				continue
			}
			s += fmt.Sprint(v) + ","
		}
		return s
	}
	byKey := func(rows [][]any) {
		sort.Slice(rows, func(i, j int) bool { return key(rows[i]) < key(rows[j]) })
	}
	byKey(got)
	byKey(want)
	for i := range got {
		if key(got[i]) != key(want[i]) {
			t.Fatalf("row %d key diverged: %v vs %v", i, got[i], want[i])
		}
		for j := range got[i] {
			g, ok := got[i][j].(float64)
			if !ok {
				continue
			}
			w := want[i][j].(float64)
			tol := 1e-6 * math.Max(1, math.Abs(w))
			if math.Abs(g-w) > tol {
				t.Fatalf("row %d col %d: %g vs %g (beyond tolerance)", i, j, g, w)
			}
		}
	}
}

// TestPreparedBaseDifferentialAllQueries runs every paper query under
// each coordination strategy twice — cold (fresh database, plain
// Query) and warm (one database, Prepare once, Exec repeatedly so the
// second Exec attaches cached indexes) — and requires identical
// results.
func TestPreparedBaseDifferentialAllQueries(t *testing.T) {
	strategies := []struct {
		name string
		s    Strategy
	}{{"global", Global}, {"ssp", SSP}, {"dws", DWS}}
	for _, q := range queries.All() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			load, params := paperQueryData(t, q)
			for _, st := range strategies {
				st := st
				t.Run(st.name, func(t *testing.T) {
					opts := append([]Option{WithWorkers(3), WithStrategy(st.s)}, params...)

					cold := NewDatabase()
					load(cold)
					coldRes, err := cold.Query(q.Source, opts...)
					if err != nil {
						t.Fatal(err)
					}

					warm := NewDatabase()
					load(warm)
					prep, err := warm.Prepare(q.Source, opts...)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := prep.Exec(context.Background()); err != nil {
						t.Fatal(err)
					}
					warmRes, err := prep.Exec(context.Background())
					if err != nil {
						t.Fatal(err)
					}

					assertSameRows(t, warmRes.Rows(q.Output), coldRes.Rows(q.Output))
					// Programs whose plan probes base relations must hit
					// the cache on the second Exec; APSP only scans warc,
					// so its cache legitimately stays empty.
					if bs := warm.BaseStats(); bs.Indexes > 0 && bs.Hits == 0 {
						t.Fatalf("second Exec should hit the shared index cache, stats: %+v", bs)
					}
				})
			}
		})
	}
}

// TestLoadInvalidatesPreparedBase checks the version guard: loading
// more tuples after queries must be reflected by later queries instead
// of being masked by a stale base snapshot.
func TestLoadInvalidatesPreparedBase(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("arc", Col("x", Int), Col("y", Int))
	db.MustLoad("arc", [][]any{{1, 2}, {2, 3}})
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`
	res, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Len("tc"); got != 3 {
		t.Fatalf("tc = %d, want 3", got)
	}
	db.MustLoad("arc", [][]any{{3, 4}})
	res, err = db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Len("tc"); got != 6 {
		t.Fatalf("after load, tc = %d, want 6 (stale prepared base served?)", got)
	}
}

// TestBaseStatsAccumulate checks the public counters move as queries
// warm the cache.
func TestBaseStatsAccumulate(t *testing.T) {
	db := NewDatabase()
	db.MustDeclare("arc", Col("x", Int), Col("y", Int))
	db.MustLoad("arc", [][]any{{1, 2}, {2, 3}, {3, 4}})
	src := `
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`
	for i := 0; i < 3; i++ {
		if _, err := db.Query(src); err != nil {
			t.Fatal(err)
		}
	}
	bs := db.BaseStats()
	if bs.Misses == 0 || bs.Indexes == 0 {
		t.Fatalf("no index was ever built through the base: %+v", bs)
	}
	if bs.Hits == 0 {
		t.Fatalf("repeat queries never hit the shared cache: %+v", bs)
	}
}
