// Benchmarks mirroring the paper's evaluation artifacts, one family per
// table/figure, on small fixed datasets so `go test -bench=.` finishes
// in minutes. The full scaled experiment suite (with the paper's row
// sets and OOM columns) is `go run ./cmd/bench -exp all`; EXPERIMENTS.md
// records the paper-vs-measured comparison.
package dcdatalog_test

import (
	"fmt"
	"testing"

	dcdatalog "repro"
	"repro/internal/coord"
	"repro/internal/datasets"
	"repro/internal/des"
	"repro/internal/queries"
	"repro/internal/storage"
)

const benchWorkers = 4

// strategies used across the comparison benchmarks.
var strategies = []struct {
	name string
	s    dcdatalog.Strategy
}{
	{"global", dcdatalog.Global},
	{"ssp", dcdatalog.SSP},
	{"dws", dcdatalog.DWS},
}

func arcDB(b *testing.B, edges []datasets.Edge) *dcdatalog.Database {
	b.Helper()
	db := dcdatalog.NewDatabase()
	db.MustDeclare("arc", dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int))
	if err := db.LoadTuples("arc", datasets.EdgeTuples(edges)); err != nil {
		b.Fatal(err)
	}
	return db
}

func warcDB(b *testing.B, edges []datasets.WEdge) *dcdatalog.Database {
	b.Helper()
	db := dcdatalog.NewDatabase()
	db.MustDeclare("warc", dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int), dcdatalog.Col("w", dcdatalog.Int))
	if err := db.LoadTuples("warc", datasets.WEdgeTuples(edges)); err != nil {
		b.Fatal(err)
	}
	return db
}

func mustQuery(b *testing.B, db *dcdatalog.Database, src string, opts ...dcdatalog.Option) *dcdatalog.Result {
	b.Helper()
	res, err := db.Query(src, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable2 covers the headline engine comparison: each paper
// query under each coordination strategy.
func BenchmarkTable2(b *testing.B) {
	b.Run("SG/tree6", func(b *testing.B) {
		edges := datasets.Tree(6, 2, 3, 1)
		db := arcDB(b, edges)
		src := queries.SG().Source
		for _, st := range strategies {
			b.Run(st.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers), dcdatalog.WithStrategy(st.s))
				}
			})
		}
	})
	b.Run("CC/rmat1k", func(b *testing.B) {
		edges := datasets.Undirect(datasets.RMATn(1024, 1))
		db := arcDB(b, edges)
		src := queries.CC().Source
		for _, st := range strategies {
			b.Run(st.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers), dcdatalog.WithStrategy(st.s))
				}
			})
		}
	})
	b.Run("SSSP/rmat1k", func(b *testing.B) {
		edges := datasets.Weight(datasets.Undirect(datasets.RMATn(1024, 1)), 100, 1)
		db := warcDB(b, edges)
		src := queries.SSSP().Source
		for _, st := range strategies {
			b.Run(st.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers),
						dcdatalog.WithStrategy(st.s), dcdatalog.WithParam("start", 0))
				}
			})
		}
	})
	b.Run("Delivery/n20k", func(b *testing.B) {
		bom := datasets.NTree(20000, 1)
		src := queries.Delivery().Source
		db := dcdatalog.NewDatabase()
		db.MustDeclare("assbl", dcdatalog.Col("p", dcdatalog.Int), dcdatalog.Col("s", dcdatalog.Int))
		db.MustDeclare("basic", dcdatalog.Col("p", dcdatalog.Int), dcdatalog.Col("d", dcdatalog.Int))
		if err := db.LoadTuples("assbl", bom.Assbl); err != nil {
			b.Fatal(err)
		}
		if err := db.LoadTuples("basic", bom.Basic); err != nil {
			b.Fatal(err)
		}
		for _, st := range strategies {
			b.Run(st.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers), dcdatalog.WithStrategy(st.s))
				}
			})
		}
	})
	b.Run("PageRank/rmat512", func(b *testing.B) {
		edges := datasets.RMATn(512, 1)
		deg := map[int64]int64{}
		verts := map[int64]bool{}
		for _, e := range edges {
			deg[e.Src]++
			verts[e.Src] = true
			verts[e.Dst] = true
		}
		var matrix []storage.Tuple
		for _, e := range edges {
			matrix = append(matrix, storage.Tuple{
				storage.IntVal(e.Src), storage.IntVal(e.Dst), storage.FloatVal(float64(deg[e.Src]))})
		}
		db := dcdatalog.NewDatabase()
		db.MustDeclare("matrix", dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int), dcdatalog.Col("d", dcdatalog.Float))
		if err := db.LoadTuples("matrix", matrix); err != nil {
			b.Fatal(err)
		}
		src := queries.PR().Source
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustQuery(b, db, src,
				dcdatalog.WithWorkers(benchWorkers),
				dcdatalog.WithParam("alpha", 0.85),
				dcdatalog.WithParam("vnum", float64(len(verts))),
				dcdatalog.WithEpsilon(1e-6))
		}
	})
}

// BenchmarkTable3 covers APSP: aligned two-way partitioning vs the
// broadcast replication baseline.
func BenchmarkTable3(b *testing.B) {
	edges := datasets.Weight(datasets.RMATn(32, 1), 100, 1)
	src := queries.APSP().Source
	b.Run("two-way", func(b *testing.B) {
		db := warcDB(b, edges)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers))
		}
	})
	b.Run("broadcast", func(b *testing.B) {
		db := warcDB(b, edges)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers), dcdatalog.WithBroadcastReplication())
		}
	})
}

// BenchmarkTable4 covers the §6.2 optimization ablation on CC.
func BenchmarkTable4(b *testing.B) {
	edges := datasets.Undirect(datasets.RMATn(1024, 1))
	db := arcDB(b, edges)
	src := queries.CC().Source
	b.Run("with-opts", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers))
		}
	})
	b.Run("without-opts", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers),
				dcdatalog.WithoutExistCache(), dcdatalog.WithoutIndexAgg(), dcdatalog.WithoutPartialAgg())
		}
	})
}

// BenchmarkFigure1 is the motivating SSSP comparison on the scaled
// LiveJournal stand-in.
func BenchmarkFigure1(b *testing.B) {
	g := datasets.LiveJournalLike(1.0 / 8192)
	edges := datasets.Weight(datasets.Undirect(g.Generate(1)), 100, 1)
	db := warcDB(b, edges)
	src := queries.SSSP().Source
	for _, st := range strategies {
		b.Run(st.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers),
					dcdatalog.WithStrategy(st.s), dcdatalog.WithParam("start", 0))
			}
		})
	}
}

// BenchmarkFigure3 replays the worked coordination example on the
// discrete-event simulator.
func BenchmarkFigure3(b *testing.B) {
	for _, k := range []coord.Kind{coord.Global, coord.SSP, coord.DWS} {
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := des.Figure3(k)
				if r.Time <= 0 {
					b.Fatal("simulation failed")
				}
			}
		})
	}
}

// BenchmarkFigure8 compares the coordination strategies on CC.
func BenchmarkFigure8(b *testing.B) {
	edges := datasets.Undirect(datasets.RMATn(2048, 1))
	db := arcDB(b, edges)
	src := queries.CC().Source
	for _, st := range strategies {
		b.Run("CC/"+st.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers), dcdatalog.WithStrategy(st.s))
			}
		})
	}
}

// BenchmarkFigure9a sweeps worker counts (thread scale-up).
func BenchmarkFigure9a(b *testing.B) {
	edges := datasets.Undirect(datasets.RMATn(2048, 1))
	db := arcDB(b, edges)
	src := queries.CC().Source
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustQuery(b, db, src, dcdatalog.WithWorkers(w))
			}
		})
	}
}

// BenchmarkFigure9b sweeps dataset sizes (data scale-up).
func BenchmarkFigure9b(b *testing.B) {
	src := queries.CC().Source
	for _, n := range []int64{512, 1024, 2048, 4096} {
		edges := datasets.Undirect(datasets.RMATn(n, 1))
		db := arcDB(b, edges)
		b.Run(fmt.Sprintf("rmat-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustQuery(b, db, src, dcdatalog.WithWorkers(benchWorkers))
			}
		})
	}
}
