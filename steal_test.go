package dcdatalog

import (
	"context"
	"testing"

	"repro/internal/queries"
)

// TestStealDifferentialAllQueries runs every paper query under each
// coordination strategy with the morsel scheduler on (the default) and
// off (WithoutStealing) — cold, and on again through the warm
// prepared-base path (Prepare + two Execs, so the second Exec attaches
// memoized indexes while thieves execute shared delta blocks) — and
// requires identical results throughout. Stealing only moves where a
// delta block is evaluated; derived tuples route through the same hash
// partitioning either way, so any divergence is a scheduler bug.
// Float-valued queries (PR) compare within the differential suite's
// relative tolerance.
func TestStealDifferentialAllQueries(t *testing.T) {
	strategies := []struct {
		name string
		s    Strategy
	}{{"global", Global}, {"ssp", SSP}, {"dws", DWS}}
	for _, q := range queries.All() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			load, params := paperQueryData(t, q)
			for _, st := range strategies {
				st := st
				t.Run(st.name, func(t *testing.T) {
					base := append([]Option{WithWorkers(4), WithStrategy(st.s)}, params...)

					off := NewDatabase()
					load(off)
					offRes, err := off.Query(q.Source, append(base, WithoutStealing())...)
					if err != nil {
						t.Fatal(err)
					}
					if n := offRes.Stats().Steal.MorselsExecuted; n != 0 {
						t.Fatalf("WithoutStealing run executed %d morsels", n)
					}

					on := NewDatabase()
					load(on)
					onRes, err := on.Query(q.Source, base...)
					if err != nil {
						t.Fatal(err)
					}
					assertSameRows(t, onRes.Rows(q.Output), offRes.Rows(q.Output))

					// Warm path: the second Exec reuses cached indexes from
					// the shared base while the steal plane stays live.
					warm := NewDatabase()
					load(warm)
					prep, err := warm.Prepare(q.Source, base...)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := prep.Exec(context.Background()); err != nil {
						t.Fatal(err)
					}
					warmRes, err := prep.Exec(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					assertSameRows(t, warmRes.Rows(q.Output), offRes.Rows(q.Output))
				})
			}
		})
	}
}
