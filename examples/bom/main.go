// Bill of materials: the paper's Delivery query (Query 8) — the
// delivery time of an assembled part is the max over its subparts,
// a max aggregate inside recursion that classic stratified engines
// cannot express directly.
//
//	go run ./examples/bom
package main

import (
	"fmt"
	"log"

	dcdatalog "repro"
	"repro/internal/datasets"
)

func main() {
	// A small hand-built product first.
	db := dcdatalog.NewDatabase()
	db.MustDeclare("assbl", dcdatalog.Col("part", dcdatalog.Sym), dcdatalog.Col("sub", dcdatalog.Sym))
	db.MustDeclare("basic", dcdatalog.Col("part", dcdatalog.Sym), dcdatalog.Col("days", dcdatalog.Int))
	db.MustLoad("assbl", [][]any{
		{"bike", "frame"}, {"bike", "wheel"},
		{"wheel", "rim"}, {"wheel", "spokes"}, {"wheel", "tire"},
	})
	db.MustLoad("basic", [][]any{
		{"frame", 14}, {"rim", 3}, {"spokes", 5}, {"tire", 7},
	})

	res, err := db.Query(`
		delivery(P, max<D>) :- basic(P, D).
		delivery(P, max<D>) :- assbl(P, S), delivery(S, D).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("delivery lead times:")
	for _, row := range res.Rows("delivery") {
		fmt.Printf("  %-7v %v days\n", row[0], row[1])
	}

	// Then the paper's N-n synthetic BoM at a laptop scale.
	bom := datasets.NTree(200000, 1)
	big := dcdatalog.NewDatabase()
	big.MustDeclare("assbl", dcdatalog.Col("p", dcdatalog.Int), dcdatalog.Col("s", dcdatalog.Int))
	big.MustDeclare("basic", dcdatalog.Col("p", dcdatalog.Int), dcdatalog.Col("d", dcdatalog.Int))
	if err := big.LoadTuples("assbl", bom.Assbl); err != nil {
		log.Fatal(err)
	}
	if err := big.LoadTuples("basic", bom.Basic); err != nil {
		log.Fatal(err)
	}
	bres, err := big.Query(`
		delivery(P, max<D>) :- basic(P, D).
		delivery(P, max<D>) :- assbl(P, S), delivery(S, D).
		root_days(D) :- delivery(P, D), P = 0.
	`, dcdatalog.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	stats := bres.Stats()
	fmt.Printf("\nN-200K: %d parts, %d delivery rows, root lead time %v days (%s, %d workers)\n",
		bom.Parts, bres.Len("delivery"), bres.Rows("root_days")[0][0],
		stats.Duration.Round(1e6), stats.Workers)
}
